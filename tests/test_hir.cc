/** @file Unit tests for the HIR program structures, builder, and printer. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "hir/builder.hh"
#include "hir/printer.hh"

using namespace hscd;
using namespace hscd::hir;

namespace {

Program
simpleProgram()
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.array("B", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 0, b.p("N") - 1, [&] {
            b.read("B", {b.v("i")});
            b.compute(2);
            b.write("A", {b.v("i")});
        });
    });
    return b.build();
}

} // namespace

TEST(Builder, SimpleProgramShape)
{
    Program p = simpleProgram();
    EXPECT_EQ(p.arrays().size(), 2u);
    EXPECT_EQ(p.procedures().size(), 1u);
    EXPECT_EQ(p.refCount(), 2u);
    EXPECT_EQ(p.main().name, "MAIN");
    ASSERT_EQ(p.main().body.size(), 1u);
    EXPECT_EQ(p.main().body[0]->kind(), StmtKind::Loop);
    const auto &loop = static_cast<const LoopStmt &>(*p.main().body[0]);
    EXPECT_TRUE(loop.parallel);
    EXPECT_EQ(loop.body.size(), 3u);
}

TEST(Builder, ParamsBoundInProgramEnv)
{
    Program p = simpleProgram();
    EXPECT_EQ(*p.params().lookup("N"), 8);
}

TEST(Builder, ArrayDimsByParamName)
{
    ProgramBuilder b;
    b.param("M", 4);
    b.array("X", {"M", "16"});
    b.proc("MAIN", [&] { b.compute(1); });
    Program p = b.build();
    const ArrayDecl &x = p.array(p.findArray("X"));
    ASSERT_EQ(x.dims.size(), 2u);
    EXPECT_EQ(x.dims[0], 4);
    EXPECT_EQ(x.dims[1], 16);
    EXPECT_EQ(x.elements(), 64);
}

TEST(Builder, UnknownArrayDimParamFatal)
{
    ProgramBuilder b;
    EXPECT_THROW(b.array("X", std::vector<std::string>{"NOPE"}),
                 FatalError);
}

TEST(Builder, DuplicateArrayFatal)
{
    ProgramBuilder b;
    b.array("A", std::vector<std::int64_t>{4});
    EXPECT_THROW(b.array("A", std::vector<std::int64_t>{4}), FatalError);
}

TEST(Builder, NonPositiveExtentFatal)
{
    ProgramBuilder b;
    EXPECT_THROW(b.array("A", std::vector<std::int64_t>{0}), FatalError);
}

TEST(Builder, MissingMainFatal)
{
    ProgramBuilder b;
    b.proc("SUB", [&] { b.compute(1); });
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, CallResolution)
{
    ProgramBuilder b;
    b.array("A", std::vector<std::int64_t>{4});
    b.proc("MAIN", [&] { b.call("SUB"); });
    b.proc("SUB", [&] { b.write("A", {b.c(0)}); });
    Program p = b.build();
    const auto &call = static_cast<const CallStmt &>(*p.main().body[0]);
    EXPECT_EQ(call.callee, p.findProcedure("SUB"));
}

TEST(Builder, UnresolvedCallFatal)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] { b.call("GHOST"); });
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, RecursionFatal)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] { b.call("A"); });
    b.proc("A", [&] { b.call("B"); });
    b.proc("B", [&] { b.call("A"); });
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, BarrierInsideDoallFatal)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] { b.barrier(); });
    });
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, BarrierInsideCalledProcFromDoallFatal)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] { b.call("SUB"); });
    });
    b.proc("SUB", [&] { b.barrier(); });
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Builder, WrongSubscriptCountFatal)
{
    ProgramBuilder b;
    b.array("A", std::vector<std::int64_t>{4, 4});
    EXPECT_THROW(
        b.proc("MAIN", [&] { b.read("A", {b.c(0)}); }), FatalError);
}

TEST(Builder, RefIdsSequential)
{
    ProgramBuilder b;
    b.array("A", std::vector<std::int64_t>{4});
    RefId r0 = invalidRef, r1 = invalidRef;
    b.proc("MAIN", [&] {
        r0 = b.read("A", {b.c(0)});
        r1 = b.write("A", {b.c(1)});
    });
    Program p = b.build();
    EXPECT_EQ(r0, 0u);
    EXPECT_EQ(r1, 1u);
    EXPECT_EQ(p.refInfo(r1).stmt->isWrite, true);
    EXPECT_EQ(p.refInfo(r0).stmt->isWrite, false);
}

TEST(Program, LayoutAssignsDisjointAlignedBases)
{
    Program p = simpleProgram();
    const ArrayDecl &a = p.array(p.findArray("A"));
    const ArrayDecl &bArr = p.array(p.findArray("B"));
    EXPECT_NE(a.base, 0u);
    EXPECT_EQ(a.base % 256, 0u);
    EXPECT_EQ(bArr.base % 256, 0u);
    // No overlap.
    EXPECT_TRUE(a.base + a.sizeBytes() <= bArr.base ||
                bArr.base + bArr.sizeBytes() <= a.base);
    EXPECT_GE(p.dataBytes(), a.sizeBytes() + bArr.sizeBytes());
}

TEST(Program, ElementAddrColumnMajor)
{
    ProgramBuilder b;
    b.array("M", std::vector<std::int64_t>{3, 5});
    b.proc("MAIN", [&] { b.compute(1); });
    Program p = b.build();
    ArrayId m = p.findArray("M");
    Addr base = p.array(m).base;
    EXPECT_EQ(p.elementAddr(m, {0, 0}), base);
    // Column-major: first subscript varies fastest.
    EXPECT_EQ(p.elementAddr(m, {1, 0}), base + wordBytes);
    EXPECT_EQ(p.elementAddr(m, {0, 1}), base + 3 * wordBytes);
    EXPECT_EQ(p.elementAddr(m, {2, 4}), base + (2 + 4 * 3) * wordBytes);
}

TEST(Program, ElementAddrOutOfRangePanics)
{
    Program p = simpleProgram();
    ArrayId a = p.findArray("A");
    EXPECT_THROW(p.elementAddr(a, {8}), PanicError);
    EXPECT_THROW(p.elementAddr(a, {-1}), PanicError);
}

TEST(Program, DescribeAddr)
{
    ProgramBuilder b;
    b.array("M", std::vector<std::int64_t>{3, 5});
    b.proc("MAIN", [&] { b.compute(1); });
    Program p = b.build();
    ArrayId m = p.findArray("M");
    EXPECT_EQ(p.describeAddr(p.elementAddr(m, {2, 4})), "M(2,4)");
    EXPECT_NE(p.describeAddr(0).find("unmapped"), std::string::npos);
}

TEST(Program, FindArrayFatalOnMissing)
{
    Program p = simpleProgram();
    EXPECT_THROW(p.findArray("ZZZ"), FatalError);
    EXPECT_THROW(p.findProcedure("ZZZ"), FatalError);
}

TEST(Printer, ContainsStructure)
{
    ProgramBuilder b;
    b.param("N", 4);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 1, [&] {
            b.doall("i", 0, b.p("N") - 1, [&] {
                b.write("A", {b.v("i")});
            });
            b.barrier();
        });
        b.critical([&] { b.read("A", {b.c(0)}); });
        b.ifUnknown(TakePolicy::Alternate,
                    [&] { b.compute(1); },
                    [&] { b.compute(2); });
        b.call("SUB");
    });
    b.proc("SUB", [&] { b.compute(3); });
    Program p = b.build();
    const std::string s = programToString(p);
    EXPECT_NE(s.find("PROGRAM MAIN"), std::string::npos);
    EXPECT_NE(s.find("SUBROUTINE SUB"), std::string::npos);
    EXPECT_NE(s.find("DOALL i = 0, N - 1"), std::string::npos);
    EXPECT_NE(s.find("DO t = 0, 1"), std::string::npos);
    EXPECT_NE(s.find("BARRIER"), std::string::npos);
    EXPECT_NE(s.find("CRITICAL"), std::string::npos);
    EXPECT_NE(s.find("IF (unknown#0) THEN"), std::string::npos);
    EXPECT_NE(s.find("ELSE"), std::string::npos);
    EXPECT_NE(s.find("CALL SUB"), std::string::npos);
    EXPECT_NE(s.find("A(i) = ..."), std::string::npos);
    EXPECT_NE(s.find("PARAMETER (N = 4)"), std::string::npos);
}

TEST(Printer, RefIdAnnotations)
{
    Program p = simpleProgram();
    const std::string s = programToString(p);
    EXPECT_NE(s.find("! ref 0"), std::string::npos);
    PrintOptions opts;
    opts.showRefIds = false;
    const std::string s2 = programToString(p, opts);
    EXPECT_EQ(s2.find("! ref"), std::string::npos);
}
