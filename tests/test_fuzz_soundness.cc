/**
 * @file
 * Fuzz soundness: every generated legal-DOALL program must (a) lint
 * with zero errors, (b) show zero under-markings against the
 * stale-marking oracle, and (c) run with zero shadow-epoch and
 * value-stamp violations under both TPI and SC.
 *
 * The negative direction (a corrupted marking must fire the oracle and
 * the shadow detector) lives in test_verify_oracle.cc; together they
 * show the zero counts here are meaningful, not vacuous.
 */

#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "program_gen.hh"
#include "sim/machine.hh"
#include "verify/verify.hh"

using namespace hscd;

namespace {

constexpr std::uint64_t fuzzSeeds = 200;

compiler::CompiledProgram
compiled(std::uint64_t seed,
         const compiler::AnalysisOptions &aopts = {})
{
    testgen::GenOptions g;
    g.seed = seed;
    return compiler::compileProgram(testgen::randomLegalProgram(g),
                                    aopts);
}

} // namespace

TEST(FuzzSoundness, LintAndOracleOverGeneratedCorpus)
{
    std::uint64_t inexact = 0;
    for (std::uint64_t seed = 1; seed <= fuzzSeeds; ++seed) {
        compiler::CompiledProgram cp = compiled(seed);
        verify::DiagnosticEngine d =
            verify::lintProgram(cp, "gen:" + std::to_string(seed));
        EXPECT_EQ(d.errors(), 0u)
            << "seed " << seed << ":\n" << d.renderText();

        verify::OracleReport rep = verify::oracleAnalyze(cp);
        EXPECT_TRUE(rep.underMarked.empty())
            << "seed " << seed << " under-marked ref "
            << (rep.underMarked.empty() ? hir::invalidRef
                                        : rep.underMarked.front());
        inexact += rep.inexactReads;
    }
    // The generator uses compile-time-opaque subscripts, so some reads
    // must widen: record that the conservative path is exercised.
    EXPECT_GT(inexact, 0u);
}

/**
 * The static MARK001 analysis must never contradict the runtime
 * checkers: over the same 200-seed corpus, compiled under a distance
 * budget tight enough to force clamped (over-conservative) marks,
 * every proven tighten rewrite is applied and the result must still
 * show zero oracle under-markings — and, on a sampled subset, zero
 * TPI runtime oracle / shadow-epoch / DOALL violations.
 */
TEST(FuzzSoundness, TightenNeverContradictsRuntimeOracle)
{
    compiler::AnalysisOptions aopts;
    aopts.maxDistance = 1;  // clamp hard so MARK001 actually fires
    const verify::LintOptions lopts;
    std::uint64_t rewrites = 0;
    for (std::uint64_t seed = 1; seed <= fuzzSeeds; ++seed) {
        compiler::CompiledProgram cp = compiled(seed, aopts);
        verify::OracleReport oracle = verify::oracleAnalyze(cp, lopts);
        ASSERT_TRUE(oracle.underMarked.empty()) << "seed " << seed;
        verify::PrecisionReport rep =
            verify::precisionAnalyze(cp, lopts, oracle);
        if (rep.overConservative.empty())
            continue;
        rewrites += rep.overConservative.size();
        verify::tightenMarking(cp, rep);

        verify::OracleReport after = verify::oracleAnalyze(cp, lopts);
        EXPECT_TRUE(after.underMarked.empty())
            << "seed " << seed << ": tighten under-marked ref "
            << after.underMarked.front();
        EXPECT_TRUE(verify::precisionAnalyze(cp, lopts, after)
                        .overConservative.empty())
            << "seed " << seed << ": tighten did not reach a fixpoint";

        if (seed % 17 == 0) {
            MachineConfig cfg;
            cfg.scheme = SchemeKind::TPI;
            cfg.procs = 8;
            cfg.shadowEpochCheck = true;
            sim::RunResult r = sim::simulate(cp, cfg);
            EXPECT_EQ(r.oracleViolations, 0u) << "seed " << seed;
            EXPECT_EQ(r.shadowViolations, 0u) << "seed " << seed;
            EXPECT_EQ(r.doallViolations, 0u) << "seed " << seed;
        }
    }
    // The budget clamp must have produced real rewrites, or the zero
    // violation counts above prove nothing.
    EXPECT_GT(rewrites, 0u);
}

TEST(FuzzSoundness, ShadowCleanUnderTpiAndSc)
{
    for (std::uint64_t seed = 1; seed <= fuzzSeeds; seed += 17) {
        compiler::CompiledProgram cp = compiled(seed);
        for (SchemeKind scheme : {SchemeKind::TPI, SchemeKind::SC}) {
            MachineConfig cfg;
            cfg.scheme = scheme;
            cfg.procs = 8;
            cfg.shadowEpochCheck = true;
            sim::RunResult r = sim::simulate(cp, cfg);
            EXPECT_EQ(r.oracleViolations, 0u)
                << "seed " << seed << " " << schemeName(scheme);
            EXPECT_EQ(r.shadowViolations, 0u)
                << "seed " << seed << " " << schemeName(scheme);
            EXPECT_EQ(r.doallViolations, 0u)
                << "seed " << seed << " " << schemeName(scheme);
        }
    }
}
