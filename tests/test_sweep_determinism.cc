/**
 * @file
 * The headline determinism guarantee of the sweep engine: the same
 * (benchmark x scheme) sweep run at --jobs 1, 2, and 8 must produce
 * byte-identical RunResult aggregates - cycle counts, miss breakdowns,
 * traffic, oracle verdicts, everything. Enforced forever by ctest; runs
 * under TSan in the sanitizer build.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hh"
#include "sweep.hh"

using namespace hscd;
using namespace hscd::bench;

namespace {

const std::vector<std::string> kBenchmarks = {"ADM", "OCEAN", "TRFD"};
const SchemeKind kSchemes[] = {SchemeKind::SC, SchemeKind::TPI,
                               SchemeKind::HW};

/** Build and run the reference 3x3 sweep at the given thread count. */
std::vector<sim::RunResult>
runSweep(unsigned jobs, const std::string &jsonPath = "")
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.jsonPath = jsonPath;
    Sweep sweep(opts, "determinism");
    for (const std::string &name : kBenchmarks)
        for (SchemeKind k : kSchemes)
            sweep.add(name, makeConfig(k), /*scale=*/1);
    sweep.run();
    std::vector<sim::RunResult> out;
    out.reserve(sweep.size());
    for (std::size_t i = 0; i < sweep.size(); ++i)
        out.push_back(sweep[i]);
    if (!jsonPath.empty()) {
        std::ostringstream devnull;
        sweep.finish(devnull); // emits the JSON file
    }
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/**
 * The provenance header's "jobs" field is, by contract, the only JSON
 * content allowed to vary with the thread count (the stdout analogue is
 * the wall-clock line). Blank it out - and require that it appears
 * exactly once, so nothing else can hide behind the mask.
 */
std::string
maskJobsLine(std::string s)
{
    const std::string key = "\"jobs\":";
    std::size_t at = s.find(key);
    EXPECT_NE(at, std::string::npos) << "provenance header missing";
    if (at == std::string::npos)
        return s;
    const std::size_t eol = s.find('\n', at);
    s.replace(at, eol - at, key + " <masked>");
    EXPECT_EQ(s.find(key, at + key.size() + 1), std::string::npos)
        << "\"jobs\" must appear exactly once (provenance only)";
    return s;
}

} // namespace

TEST(SweepDeterminism, IdenticalResultsAtJobs128)
{
    const std::vector<sim::RunResult> serial = runSweep(1);
    ASSERT_EQ(serial.size(), kBenchmarks.size() * 3);

    // Sanity: the cells are soundly coherent and nontrivial.
    for (const sim::RunResult &r : serial) {
        EXPECT_EQ(r.oracleViolations, 0u);
        EXPECT_EQ(r.doallViolations, 0u);
        EXPECT_GT(r.cycles, 0u);
        EXPECT_GT(r.reads, 0u);
    }

    for (unsigned jobs : {2u, 8u}) {
        const std::vector<sim::RunResult> parallel = runSweep(jobs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i], serial[i])
                << "cell " << i << " diverged at jobs=" << jobs << ": "
                << parallel[i].summary() << " vs " << serial[i].summary();
            EXPECT_EQ(parallel[i].fingerprint(), serial[i].fingerprint())
                << "fingerprint of cell " << i << " at jobs=" << jobs;
        }
    }
}

TEST(SweepDeterminism, JsonOutputIsByteIdenticalAcrossJobs)
{
    const std::string p1 = testing::TempDir() + "hscd_sweep_j1.json";
    const std::string p8 = testing::TempDir() + "hscd_sweep_j8.json";
    runSweep(1, p1);
    runSweep(8, p8);
    const std::string j1 = maskJobsLine(slurp(p1));
    const std::string j8 = maskJobsLine(slurp(p8));
    EXPECT_FALSE(j1.empty());
    EXPECT_EQ(j1, j8);
    EXPECT_NE(j1.find("\"fingerprint\""), std::string::npos);
    EXPECT_NE(j1.find("\"provenance\""), std::string::npos);
    std::remove(p1.c_str());
    std::remove(p8.c_str());
}

TEST(SweepDeterminism, RepeatedRunsAgreeAtFixedJobs)
{
    // Same jobs count twice: guards against any run-to-run state leak
    // (stats, RNG, cache) inside one process.
    const std::vector<sim::RunResult> a = runSweep(8);
    const std::vector<sim::RunResult> b = runSweep(8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "cell " << i;
}
