/** @file Tests for the version-control (Cheong-Veidenbaum) scheme. */

#include <gtest/gtest.h>

#include "hir/builder.hh"
#include "mem/vc_scheme.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::mem;
using namespace hscd::sim;
using compiler::MarkKind;

namespace {

struct Rig
{
    Rig()
        : root("m"), memory(1 << 20),
          network(&root, cfg.procs, cfg.networkRadix, cfg.maxNetworkLoad)
    {
        cfg.scheme = SchemeKind::VC;
        scheme = makeScheme(cfg, memory, network, &root);
    }

    AccessResult
    read(ProcId p, Addr a, std::uint32_t array,
         MarkKind mark = MarkKind::Normal)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.arrayId = array;
        op.mark = mark;
        op.now = ++now;
        return scheme->access(op);
    }

    AccessResult
    write(ProcId p, Addr a, std::uint32_t array, bool critical = false)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.arrayId = array;
        op.write = true;
        op.stamp = ++stamp;
        op.critical = critical;
        op.now = ++now;
        return scheme->access(op);
    }

    void boundary() { scheme->epochBoundary(++epoch); }

    VcScheme &vc() { return *dynamic_cast<VcScheme *>(scheme.get()); }

    MachineConfig cfg;
    stats::StatGroup root;
    MainMemory memory;
    net::Network network;
    std::unique_ptr<CoherenceScheme> scheme;
    Cycles now = 0;
    ValueStamp stamp = 0;
    EpochId epoch = 0;
};

} // namespace

TEST(VcScheme, VersionBumpsOnlyForWrittenArrays)
{
    Rig rig;
    rig.write(0, 0x100, 1);
    EXPECT_EQ(rig.vc().cvn(1), 0u);
    EXPECT_EQ(rig.vc().cvn(2), 0u);
    rig.boundary();
    EXPECT_EQ(rig.vc().cvn(1), 1u);
    EXPECT_EQ(rig.vc().cvn(2), 0u) << "untouched arrays keep their CVN";
    rig.boundary();
    EXPECT_EQ(rig.vc().cvn(1), 1u) << "no writes, no bump";
}

TEST(VcScheme, StaleCopyAgedOutByVersion)
{
    Rig rig;
    rig.read(1, 0x100, 1); // P1 caches (bvn = 0)
    rig.boundary();
    rig.write(0, 0x100, 1); // epoch 1 write
    rig.boundary();         // CVN(1) -> ... > bvn
    auto r = rig.read(1, 0x100, 1);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.observed, 1u);
    EXPECT_EQ(r.cls, MissClass::TrueShare);
}

TEST(VcScheme, WriterKeepsItsCopyAcrossTheBump)
{
    Rig rig;
    rig.write(0, 0x100, 1); // bvn = cvn+1 = 1
    rig.boundary();         // cvn -> 1
    auto r = rig.read(0, 0x100, 1);
    EXPECT_TRUE(r.hit) << "the producer's copy is the newest version";
    EXPECT_EQ(r.observed, 1u);
}

TEST(VcScheme, PerVariableGranularityOverInvalidates)
{
    // P1 caches element 0; P0 writes a DIFFERENT element of the same
    // array. TPI's per-word tags would keep P1's copy (with a suitable
    // d); VC ages the whole variable: P1 must refetch.
    Rig rig;
    rig.read(1, 0x100, 1);
    rig.boundary();
    rig.write(0, 0x900, 1); // same array, far-away element
    rig.boundary();
    auto r = rig.read(1, 0x100, 1);
    EXPECT_FALSE(r.hit) << "per-variable versioning loses the copy";
    EXPECT_EQ(r.cls, MissClass::Conservative)
        << "the data was actually fresh: an unnecessary miss";
}

TEST(VcScheme, DifferentArraysDoNotInterfere)
{
    Rig rig;
    rig.read(1, 0x100, 1);
    rig.boundary();
    rig.write(0, 0x10000, 2); // another array entirely
    rig.boundary();
    EXPECT_TRUE(rig.read(1, 0x100, 1).hit);
}

TEST(VcScheme, CriticalWriteNotVouchedPastTheBump)
{
    Rig rig;
    rig.write(0, 0x100, 1, true);  // lock-ordered: bvn = cvn
    rig.write(1, 0x100, 1, true);  // later lock owner, same epoch
    rig.boundary();
    auto r = rig.read(0, 0x100, 1);
    EXPECT_FALSE(r.hit) << "P0's copy may predate P1's update";
    EXPECT_EQ(r.observed, 2u);
}

TEST(VcScheme, BypassAlwaysFetches)
{
    Rig rig;
    rig.write(0, 0x100, 1);
    auto r = rig.read(0, 0x100, 1, MarkKind::Bypass);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.observed, 1u);
}

TEST(VcScheme, TimeReadDistanceIgnored)
{
    // VC has no distance operand: marks behave like plain loads.
    Rig rig;
    rig.read(0, 0x100, 1);
    MemOp op;
    op.proc = 0;
    op.addr = 0x100;
    op.arrayId = 1;
    op.mark = MarkKind::TimeRead;
    op.distance = 999;
    op.now = 100;
    auto r = rig.scheme->access(op);
    EXPECT_TRUE(r.hit) << "version still current: distance irrelevant";
}

TEST(VcMachine, WorkloadsCoherentUnderVc)
{
    for (const std::string &name : workloads::benchmarkNames()) {
        compiler::CompiledProgram cp =
            compiler::compileProgram(workloads::buildBenchmark(name, 1));
        MachineConfig cfg;
        cfg.scheme = SchemeKind::VC;
        cfg.procs = 4;
        RunResult r = simulate(cp, cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << name;
        EXPECT_EQ(r.doallViolations, 0u) << name;
    }
}

TEST(VcMachine, TpiBeatsVcOnPartialRewrites)
{
    // Each step rewrites only the low half of X but reads all of it: VC
    // ages the whole variable every step, TPI only the written words.
    hir::ProgramBuilder b;
    b.param("N", 256);
    b.array("X", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 7, [&] {
            b.doall("i", 0, 127, [&] {
                b.read("X", {b.v("i")});
                b.write("X", {b.v("i")});
            });
            b.doall("j", 128, 255, [&] { b.read("X", {b.v("j")}); });
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig tpi;
    tpi.scheme = SchemeKind::TPI;
    tpi.procs = 4;
    MachineConfig vc = tpi;
    vc.scheme = SchemeKind::VC;
    RunResult rt = simulate(cp, tpi);
    RunResult rv = simulate(cp, vc);
    EXPECT_EQ(rv.oracleViolations, 0u);
    EXPECT_LT(rt.readMisses, rv.readMisses)
        << "per-word timetags preserve the read-only half";
    EXPECT_GT(rv.missConservative, rt.missConservative);
}

TEST(VcMachine, SyncAndMigrationSafe)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microReduction(64, 2));
    MachineConfig cfg;
    cfg.scheme = SchemeKind::VC;
    cfg.procs = 4;
    RunResult r = simulate(cp, cfg);
    EXPECT_EQ(r.oracleViolations, 0u);

    compiler::AnalysisOptions no_aff;
    no_aff.assumeSerialAffinity = false;
    compiler::CompiledProgram cp2 = compiler::compileProgram(
        workloads::buildOcean(1), no_aff);
    cfg.migrationRate = 1.0;
    RunResult r2 = simulate(cp2, cfg);
    EXPECT_EQ(r2.oracleViolations, 0u);
}
