/**
 * @file
 * Property suite: every coherence scheme must return the freshest value
 * for every read of every randomly generated legal DOALL program, across
 * line sizes, timetag widths, schedulers, and associativities.
 */

#include <gtest/gtest.h>

#include "program_gen.hh"
#include "sim/machine.hh"

using namespace hscd;
using namespace hscd::sim;
using testgen::GenOptions;
using testgen::randomLegalProgram;

namespace {

struct PropCase
{
    SchemeKind scheme;
    unsigned lineBytes;
    unsigned timetagBits;
    SchedPolicy sched;
    unsigned assoc;
};

std::string
caseName(const testing::TestParamInfo<PropCase> &info)
{
    const PropCase &c = info.param;
    return std::string(schemeName(c.scheme)) + "_line" +
           std::to_string(c.lineBytes) + "_tag" +
           std::to_string(c.timetagBits) + "_" + schedName(c.sched) +
           "_a" + std::to_string(c.assoc);
}

class OracleProperty : public testing::TestWithParam<PropCase>
{
};

} // namespace

TEST_P(OracleProperty, RandomProgramsStayCoherent)
{
    const PropCase &pc = GetParam();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        GenOptions gen;
        gen.seed = seed * 7919;
        compiler::CompiledProgram cp =
            compiler::compileProgram(randomLegalProgram(gen));

        MachineConfig cfg;
        cfg.scheme = pc.scheme;
        cfg.procs = 4;
        cfg.cacheBytes = 4096; // small: stress replacement paths
        cfg.lineBytes = pc.lineBytes;
        cfg.timetagBits = pc.timetagBits;
        cfg.sched = pc.sched;
        cfg.assoc = pc.assoc;

        RunResult r = simulate(cp, cfg);
        ASSERT_EQ(r.doallViolations, 0u)
            << "generator produced an illegal program, seed " << seed;
        ASSERT_EQ(r.oracleViolations, 0u)
            << "stale read under " << schemeName(pc.scheme) << ", seed "
            << seed << "\nfirst: addr=" << std::hex
            << (r.firstViolations.empty()
                    ? 0
                    : r.firstViolations[0].addr)
            << std::dec << " ref="
            << (r.firstViolations.empty() ? 0
                                          : r.firstViolations[0].ref);
        EXPECT_GT(r.reads, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, OracleProperty,
    testing::Values(
        PropCase{SchemeKind::Base, 16, 8, SchedPolicy::Block, 1},
        PropCase{SchemeKind::SC, 16, 8, SchedPolicy::Block, 1},
        PropCase{SchemeKind::SC, 64, 8, SchedPolicy::Cyclic, 2},
        PropCase{SchemeKind::TPI, 16, 8, SchedPolicy::Block, 1},
        PropCase{SchemeKind::TPI, 64, 8, SchedPolicy::Cyclic, 1},
        PropCase{SchemeKind::TPI, 16, 3, SchedPolicy::Dynamic, 1},
        PropCase{SchemeKind::TPI, 4, 2, SchedPolicy::Dynamic, 2},
        PropCase{SchemeKind::TPI, 32, 4, SchedPolicy::Block, 4},
        PropCase{SchemeKind::HW, 16, 8, SchedPolicy::Block, 1},
        PropCase{SchemeKind::HW, 64, 8, SchedPolicy::Dynamic, 2},
        PropCase{SchemeKind::VC, 16, 8, SchedPolicy::Block, 1},
        PropCase{SchemeKind::VC, 64, 8, SchedPolicy::Cyclic, 2}),
    caseName);

TEST(OracleCrossScheme, SameCountsEverySchemeEverySeed)
{
    // All schemes execute the same reference stream for a given program.
    for (std::uint64_t seed : {3u, 11u, 29u}) {
        GenOptions gen;
        gen.seed = seed;
        compiler::CompiledProgram cp =
            compiler::compileProgram(randomLegalProgram(gen));
        MachineConfig cfg;
        cfg.procs = 4;
        cfg.scheme = SchemeKind::Base;
        RunResult base = simulate(cp, cfg);
        for (SchemeKind k :
             {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
        {
            cfg.scheme = k;
            RunResult r = simulate(cp, cfg);
            EXPECT_EQ(r.reads, base.reads) << schemeName(k);
            EXPECT_EQ(r.writes, base.writes) << schemeName(k);
        }
    }
}

TEST(OracleCrossScheme, TpiNeverMissesMoreThanSc)
{
    // Same marking, same direct-mapped cache: TPI's Time-Read check can
    // only turn SC's forced refetches into hits, never the reverse.
    // (Restricted to post-boot epochs: in epoch 0 TPI's side-filled
    // words have no representable EC-1 tag and boot invalid, a per-word
    // strictness SC does not share.)
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        GenOptions gen;
        gen.seed = seed * 131;
        gen.leadingBarrier = true;
        compiler::CompiledProgram cp =
            compiler::compileProgram(randomLegalProgram(gen));
        MachineConfig cfg;
        cfg.procs = 4;
        cfg.scheme = SchemeKind::SC;
        RunResult sc = simulate(cp, cfg);
        cfg.scheme = SchemeKind::TPI;
        RunResult tpi = simulate(cp, cfg);
        EXPECT_LE(tpi.readMisses, sc.readMisses) << "seed " << seed;
        EXPECT_EQ(tpi.oracleViolations, 0u);
    }
}

TEST(OracleCrossScheme, MigrationSafeCompilationProperty)
{
    // Compiled without the serial-affinity assumption, random programs
    // stay coherent even when serial tasks migrate every epoch.
    for (std::uint64_t seed : {5u, 17u}) {
        GenOptions gen;
        gen.seed = seed;
        compiler::AnalysisOptions opts;
        opts.assumeSerialAffinity = false;
        compiler::CompiledProgram cp =
            compiler::compileProgram(randomLegalProgram(gen), opts);
        MachineConfig cfg;
        cfg.procs = 4;
        cfg.scheme = SchemeKind::TPI;
        cfg.migrationRate = 1.0;
        RunResult r = simulate(cp, cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << "seed " << seed;
    }
}
