/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace hscd;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next32() == b.next32())
            ++same;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.below(10);
        EXPECT_LT(v, 10u);
    }
}

TEST(Rng, BelowZeroOrOneBound)
{
    Rng r(7);
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u) << "all values in [-2,2] should appear";
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 5000; ++i) {
        double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 5000, 0.5, 0.03);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng r(13);
    int counts[8] = {0};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(8)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, StreamsIndependent)
{
    Rng a(5, 1), b(5, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next32() == b.next32())
            ++same;
    EXPECT_LT(same, 4);
}
