/** @file Unit tests for common/strutil. */

#include <gtest/gtest.h>

#include "common/strutil.hh"

using namespace hscd;

TEST(Csprintf, PlainText)
{
    EXPECT_EQ(csprintf("hello"), "hello");
    EXPECT_EQ(csprintf(""), "");
}

TEST(Csprintf, PercentEscape)
{
    EXPECT_EQ(csprintf("100%%"), "100%");
    EXPECT_EQ(csprintf("%d%%", 42), "42%");
}

TEST(Csprintf, Integers)
{
    EXPECT_EQ(csprintf("%d", 42), "42");
    EXPECT_EQ(csprintf("%d", -7), "-7");
    EXPECT_EQ(csprintf("v=%u end", 123u), "v=123 end");
}

TEST(Csprintf, Width)
{
    EXPECT_EQ(csprintf("%5d", 42), "   42");
    EXPECT_EQ(csprintf("%-5d|", 42), "42   |");
    EXPECT_EQ(csprintf("%05d", 42), "00042");
}

TEST(Csprintf, Floats)
{
    EXPECT_EQ(csprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(csprintf("%.0f", 2.6), "3");
    EXPECT_EQ(csprintf("%8.3f", 1.5), "   1.500");
}

TEST(Csprintf, Hex)
{
    EXPECT_EQ(csprintf("%x", 255), "ff");
    EXPECT_EQ(csprintf("%X", 255), "FF");
}

TEST(Csprintf, Strings)
{
    EXPECT_EQ(csprintf("%s world", "hello"), "hello world");
    EXPECT_EQ(csprintf("%s", std::string("abc")), "abc");
}

TEST(Csprintf, MultipleArgs)
{
    EXPECT_EQ(csprintf("%s=%d (%.1f%%)", "hits", 9, 12.35),
              "hits=9 (12.3%)");
}

TEST(Csprintf, StateDoesNotLeakAcrossConversions)
{
    // A %x conversion must not leave later %d conversions in hex.
    EXPECT_EQ(csprintf("%x %d", 16, 16), "10 16");
    EXPECT_EQ(csprintf("%05d %d", 1, 1), "00001 1");
}

TEST(Csprintf, LengthModifiersIgnored)
{
    EXPECT_EQ(csprintf("%lld", static_cast<long long>(1) << 40),
              "1099511627776");
    EXPECT_EQ(csprintf("%zu", static_cast<std::size_t>(7)), "7");
}

TEST(Split, Basic)
{
    auto v = split("a,b,c", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "c");
}

TEST(Split, DropsEmptyByDefault)
{
    auto v = split(",a,,b,", ',');
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
}

TEST(Split, KeepEmpty)
{
    auto v = split("a,,b", ',', true);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], "");
}

TEST(Split, EmptyInput)
{
    EXPECT_TRUE(split("", ',').empty());
    auto v = split("", ',', true);
    ASSERT_EQ(v.size(), 1u);
}

TEST(Trim, Basic)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(ToLower, Basic)
{
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_EQ(toLower("123-X"), "123-x");
}

TEST(WithCommas, Basic)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
    EXPECT_EQ(withCommas(1000000000ULL), "1,000,000,000");
}

TEST(ParseBool, Accepts)
{
    EXPECT_TRUE(parseBool("1"));
    EXPECT_TRUE(parseBool("true"));
    EXPECT_TRUE(parseBool(" YES "));
    EXPECT_TRUE(parseBool("on"));
    EXPECT_FALSE(parseBool("0"));
    EXPECT_FALSE(parseBool("False"));
    EXPECT_FALSE(parseBool("no"));
    EXPECT_FALSE(parseBool("off"));
}

TEST(ParseBool, RejectsJunk)
{
    EXPECT_THROW(parseBool("maybe"), std::invalid_argument);
    EXPECT_THROW(parseBool(""), std::invalid_argument);
}
