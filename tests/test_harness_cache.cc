/**
 * @file
 * Regression test for the compiledBenchmark() cache: concurrent
 * first-touch from many threads used to race on an unsynchronized map
 * (and could hand out references into a map mid-mutation). The cache is
 * now insert-once and thread-safe; every caller for a key must get the
 * same long-lived object.
 *
 * The keys here use affinity=false so no other test in this binary has
 * already warmed them - the racy path was specifically concurrent
 * FIRST-touch.
 */

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hh"

using namespace hscd;
using namespace hscd::bench;

TEST(HarnessCache, ConcurrentFirstTouchSameKey)
{
    constexpr int kThreads = 8;
    std::vector<const compiler::CompiledProgram *> got(kThreads, nullptr);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&got, t] {
            got[t] = &compiledBenchmark("OCEAN", 1, /*affinity=*/false);
        });
    for (std::thread &th : threads)
        th.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t], got[0]) << "thread " << t
                                  << " got a different cache entry";
    ASSERT_NE(got[0], nullptr);
    EXPECT_GT(got[0]->program.dataBytes(), 0u);
}

TEST(HarnessCache, ConcurrentMixedKeysHammer)
{
    const std::vector<std::string> names = {"ADM", "QCD2", "TRFD"};
    constexpr int kThreads = 8;
    constexpr int kIters = 25;

    // pointers[t][k]: what thread t saw for key k on its last call.
    std::vector<std::vector<const compiler::CompiledProgram *>> pointers(
        kThreads, std::vector<const compiler::CompiledProgram *>(
                      names.size(), nullptr));

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int it = 0; it < kIters; ++it) {
                // Rotate the starting key per thread so first-touches
                // collide across different keys at once.
                for (std::size_t k = 0; k < names.size(); ++k) {
                    std::size_t key = (k + t) % names.size();
                    const compiler::CompiledProgram &cp =
                        compiledBenchmark(names[key], 1,
                                          /*affinity=*/false);
                    if (pointers[t][key])
                        ASSERT_EQ(pointers[t][key], &cp)
                            << "cache entry moved for " << names[key];
                    pointers[t][key] = &cp;
                }
            }
        });
    for (std::thread &th : threads)
        th.join();

    // All threads agree per key, and distinct keys are distinct objects.
    std::set<const compiler::CompiledProgram *> distinct;
    for (std::size_t k = 0; k < names.size(); ++k) {
        for (int t = 1; t < kThreads; ++t)
            EXPECT_EQ(pointers[t][k], pointers[0][k]);
        distinct.insert(pointers[0][k]);
    }
    EXPECT_EQ(distinct.size(), names.size());
}
