/**
 * @file
 * Regression tests for the compiledBenchmark() cache: concurrent
 * first-touch from many threads used to race on an unsynchronized map
 * (and could hand out references into a map mid-mutation). The cache is
 * thread-safe and hands out shared ownership; every caller for a key
 * must get the same object while it stays resident, and the LRU budget
 * must evict without dangling concurrent holders.
 *
 * The keys here use affinity=false so no other test in this binary has
 * already warmed them - the racy path was specifically concurrent
 * FIRST-touch.
 */

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hh"

using namespace hscd;
using namespace hscd::bench;

TEST(HarnessCache, ConcurrentFirstTouchSameKey)
{
    constexpr int kThreads = 8;
    std::vector<CompiledProgramPtr> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&got, t] {
            got[t] = compiledBenchmark("OCEAN", 1, /*affinity=*/false);
        });
    for (std::thread &th : threads)
        th.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get())
            << "thread " << t << " got a different cache entry";
    ASSERT_NE(got[0], nullptr);
    EXPECT_GT(got[0]->program.dataBytes(), 0u);
}

TEST(HarnessCache, ConcurrentMixedKeysHammer)
{
    const std::vector<std::string> names = {"ADM", "QCD2", "TRFD"};
    constexpr int kThreads = 8;
    constexpr int kIters = 25;

    // pointers[t][k]: what thread t saw for key k on its last call.
    std::vector<std::vector<CompiledProgramPtr>> pointers(
        kThreads, std::vector<CompiledProgramPtr>(names.size()));

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int it = 0; it < kIters; ++it) {
                // Rotate the starting key per thread so first-touches
                // collide across different keys at once.
                for (std::size_t k = 0; k < names.size(); ++k) {
                    std::size_t key = (k + t) % names.size();
                    CompiledProgramPtr cp =
                        compiledBenchmark(names[key], 1,
                                          /*affinity=*/false);
                    if (pointers[t][key])
                        ASSERT_EQ(pointers[t][key].get(), cp.get())
                            << "cache entry moved for " << names[key];
                    pointers[t][key] = std::move(cp);
                }
            }
        });
    for (std::thread &th : threads)
        th.join();

    // All threads agree per key, and distinct keys are distinct objects.
    std::set<const compiler::CompiledProgram *> distinct;
    for (std::size_t k = 0; k < names.size(); ++k) {
        for (int t = 1; t < kThreads; ++t)
            EXPECT_EQ(pointers[t][k].get(), pointers[0][k].get());
        distinct.insert(pointers[0][k].get());
    }
    EXPECT_EQ(distinct.size(), names.size());
}

TEST(HarnessCache, LruBudgetEvictsWithoutDangling)
{
    const CompiledCacheStats before = compiledCacheStats();

    // Tighten the budget to 2 and touch 4 distinct keys: at least two
    // evictions must happen, yet held shared_ptrs stay alive. Scale 2
    // with affinity=false makes the keys unique to this test, so every
    // touch is a fresh build.
    setCompiledCacheBudget(2);
    const std::vector<std::string> names = {"ADM", "FLO52", "QCD2",
                                            "TRFD"};
    std::vector<CompiledProgramPtr> held;
    for (const std::string &n : names)
        held.push_back(compiledBenchmark(n, 2, /*affinity=*/false));

    CompiledCacheStats after = compiledCacheStats();
    EXPECT_EQ(after.budget, 2u);
    EXPECT_LE(after.resident, 2u);
    EXPECT_GE(after.evictions, before.evictions + 2);
    EXPECT_GE(after.builds, before.builds + 4);

    // Every evicted program is still usable through its shared_ptr.
    for (std::size_t i = 0; i < names.size(); ++i) {
        ASSERT_NE(held[i], nullptr) << names[i];
        EXPECT_GT(held[i]->program.dataBytes(), 0u) << names[i];
    }

    // A re-fetch after eviction recompiles (a fresh build, possibly a
    // different address) but must yield an equivalent program.
    const CompiledProgramPtr again =
        compiledBenchmark(names.front(), 2, /*affinity=*/false);
    EXPECT_EQ(again->program.dataBytes(),
              held.front()->program.dataBytes());

    setCompiledCacheBudget(0); // restore the default for other tests
}
