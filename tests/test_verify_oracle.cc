/**
 * @file
 * Tests for the stale-marking soundness oracle and the runtime
 * shadow-epoch race detector.
 *
 * The centerpiece is the negative test: a program whose marking is
 * deliberately corrupted (a genuinely stale read overridden to Normal)
 * must be rejected by the oracle (ORACLE001, nonzero exit, a JSON
 * diagnostic naming the read) AND caught at run time by the
 * shadow-epoch detector under both TPI and SC.
 */

#include <gtest/gtest.h>

#include <string>

#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "sim/machine.hh"
#include "verify/verify.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using hir::ProgramBuilder;

namespace {

/**
 * Two write->read round trips over the same array with reversed
 * indexing, so every read crosses tasks. The second read (RefId 3) is
 * genuinely stale: the epoch-5 rewrite invalidates what epoch-3 reads
 * cached; its sound mark is TimeRead(2).
 */
compiler::CompiledProgram
roundTripProgram()
{
    ProgramBuilder b;
    b.param("N", 32);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 0, b.p("N") - 1, [&] { b.write("A", {b.v("i")}); });
        b.doall("i", 0, b.p("N") - 1,
                [&] { b.read("A", {b.p("N") - 1 - b.v("i")}); });
        b.doall("i", 0, b.p("N") - 1, [&] { b.write("A", {b.v("i")}); });
        b.doall("i", 0, b.p("N") - 1,
                [&] { b.read("A", {b.p("N") - 1 - b.v("i")}); });
    });
    return compiler::compileProgram(b.build());
}

constexpr hir::RefId staleRead = 3;

} // namespace

TEST(Oracle, RoundTripMarkingIsExactlyRequired)
{
    compiler::CompiledProgram cp = roundTripProgram();
    ASSERT_EQ(cp.marking.mark(staleRead).kind,
              compiler::MarkKind::TimeRead);
    EXPECT_EQ(cp.marking.mark(staleRead).distance, 2u);

    verify::OracleReport rep = verify::oracleAnalyze(cp);
    EXPECT_TRUE(rep.underMarked.empty());
    EXPECT_TRUE(rep.overMarked.empty())
        << "the compiler's marks match the word-exact requirement here";
    ASSERT_EQ(rep.required[staleRead].kind, verify::ReqKind::TimeRead);
    EXPECT_EQ(rep.required[staleRead].distance, 2u);
}

TEST(Oracle, UnderMarkedProgramIsRejected)
{
    compiler::CompiledProgram cp = roundTripProgram();
    cp.marking.overrideMark(
        staleRead, compiler::Mark{compiler::MarkKind::Normal,
                                  compiler::MarkReason::ReadOnly, 0});

    verify::OracleReport rep = verify::oracleAnalyze(cp);
    ASSERT_EQ(rep.underMarked.size(), 1u);
    EXPECT_EQ(rep.underMarked.front(), staleRead);

    verify::DiagnosticEngine d = verify::lintProgram(cp, "corrupted");
    EXPECT_GE(d.errors(), 1u);
    EXPECT_EQ(d.exitCode(false), 1) << "under-marking must fail the lint";

    bool found = false;
    for (const verify::Diagnostic &diag : d.diagnostics())
        if (diag.id == "ORACLE001" && diag.loc.ref == staleRead)
            found = true;
    EXPECT_TRUE(found) << d.renderText();

    // The JSON rendering names the offending read reference.
    const std::string js = d.renderJson();
    EXPECT_NE(js.find("\"id\": \"ORACLE001\""), std::string::npos);
    EXPECT_NE(js.find("\"ref\": 3"), std::string::npos);
    EXPECT_NE(js.find("A(N - i - 1)"), std::string::npos) << js;
}

TEST(Oracle, OverMarkingIsANoteNotAnError)
{
    // Corrupt in the conservative direction: Bypass instead of
    // TimeRead(2). Sound but wasteful -> ORACLE002 note, exit 0.
    compiler::CompiledProgram cp = roundTripProgram();
    cp.marking.overrideMark(
        staleRead, compiler::Mark{compiler::MarkKind::Bypass,
                                  compiler::MarkReason::Critical, 0});
    verify::OracleReport rep = verify::oracleAnalyze(cp);
    EXPECT_TRUE(rep.underMarked.empty());
    ASSERT_EQ(rep.overMarked.size(), 1u);
    EXPECT_EQ(rep.overMarked.front(), staleRead);
}

TEST(Oracle, WorkloadsHaveNoUnderMarking)
{
    for (const std::string &name : workloads::benchmarkNames()) {
        compiler::CompiledProgram cp = compiler::compileProgram(
            workloads::buildBenchmark(name, 1));
        verify::OracleReport rep = verify::oracleAnalyze(cp);
        EXPECT_TRUE(rep.underMarked.empty()) << name;
    }
}

TEST(Oracle, TrfdOverMarkingIsDetected)
{
    // The triangular subscripts in TRFD defeat the compiler's affine
    // cross-task separation test; the word-exact oracle proves the
    // same-epoch d=0 mark could soundly be a d<=2 Time-Read. This is
    // the precision finding the ORACLE002 note reports.
    compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::buildTrfd(1));
    verify::OracleReport rep = verify::oracleAnalyze(cp);
    EXPECT_TRUE(rep.underMarked.empty());
    EXPECT_FALSE(rep.overMarked.empty());

    verify::DiagnosticEngine d = verify::lintProgram(cp, "trfd");
    EXPECT_EQ(d.exitCode(true), 0)
        << "over-marking is a note; -Werror stays green";
}

TEST(ShadowDetector, CleanProgramHasNoViolations)
{
    compiler::CompiledProgram cp = roundTripProgram();
    for (SchemeKind scheme : {SchemeKind::TPI, SchemeKind::SC}) {
        MachineConfig cfg;
        cfg.scheme = scheme;
        cfg.shadowEpochCheck = true;
        sim::RunResult r = sim::simulate(cp, cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << schemeName(scheme);
        EXPECT_EQ(r.shadowViolations, 0u) << schemeName(scheme);
    }
}

TEST(ShadowDetector, CatchesStaleHitFromUnderMarking)
{
    compiler::CompiledProgram cp = roundTripProgram();
    cp.marking.overrideMark(
        staleRead, compiler::Mark{compiler::MarkKind::Normal,
                                  compiler::MarkReason::ReadOnly, 0});
    for (SchemeKind scheme : {SchemeKind::TPI, SchemeKind::SC}) {
        MachineConfig cfg;
        cfg.scheme = scheme;
        cfg.shadowEpochCheck = true;
        sim::RunResult r = sim::simulate(cp, cfg);
        EXPECT_GT(r.shadowViolations, 0u) << schemeName(scheme);
        ASSERT_FALSE(r.firstShadowViolations.empty());
        const sim::ShadowViolation &v = r.firstShadowViolations.front();
        EXPECT_EQ(v.ref, staleRead);
        EXPECT_NE(v.proc, v.writerProc)
            << "the stale hit reads another processor's write";
        EXPECT_LT(v.writerEpoch, v.epoch);
        // The value-stamp oracle agrees (a stale hit is also a wrong
        // observed value), but the shadow report attributes the writer.
        EXPECT_GT(r.oracleViolations, 0u) << schemeName(scheme);
    }
}

TEST(ShadowDetector, OffByDefaultAndCostsNothing)
{
    compiler::CompiledProgram cp = roundTripProgram();
    MachineConfig cfg;
    cfg.shadowEpochCheck = true;
    sim::RunResult checked = sim::simulate(cp, cfg);
    MachineConfig plain;
    sim::RunResult base = sim::simulate(cp, plain);
    checked.shadowViolations = base.shadowViolations;
    checked.firstShadowViolations = base.firstShadowViolations;
    EXPECT_EQ(checked, base)
        << "the detector observes; it must not perturb the simulation";
}
