/** @file Protocol-level tests driving the coherence schemes directly. */

#include <gtest/gtest.h>

#include "mem/base_scheme.hh"
#include "mem/coherence.hh"
#include "mem/directory_scheme.hh"
#include "mem/sc_scheme.hh"
#include "mem/tpi_scheme.hh"

using namespace hscd;
using namespace hscd::mem;
using compiler::MarkKind;

namespace {

struct Rig
{
    explicit Rig(MachineConfig c = {})
        : cfg(std::move(c)), root("m"), memory(1 << 20),
          network(&root, cfg.procs, cfg.networkRadix, cfg.maxNetworkLoad),
          scheme(makeScheme(cfg, memory, network, &root))
    {
    }

    AccessResult
    read(ProcId p, Addr a, MarkKind mark = MarkKind::Normal,
         std::uint32_t d = 0)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.mark = mark;
        op.distance = d;
        op.now = ++now;
        return scheme->access(op);
    }

    AccessResult
    write(ProcId p, Addr a)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.write = true;
        op.stamp = ++stamp;
        op.now = ++now;
        return scheme->access(op);
    }

    Cycles
    boundary()
    {
        return scheme->epochBoundary(++epoch);
    }

    MachineConfig cfg;
    stats::StatGroup root;
    MainMemory memory;
    net::Network network;
    std::unique_ptr<CoherenceScheme> scheme;
    Cycles now = 0;
    ValueStamp stamp = 0;
    EpochId epoch = 0;
};

MachineConfig
withScheme(SchemeKind k)
{
    MachineConfig c;
    c.scheme = k;
    return c;
}

} // namespace

// ---------------------------------------------------------------- BASE --

TEST(BaseScheme, ReadsAlwaysRemote)
{
    Rig rig(withScheme(SchemeKind::Base));
    rig.write(0, 0x100);
    auto r1 = rig.read(1, 0x100);
    auto r2 = rig.read(1, 0x100);
    EXPECT_FALSE(r1.hit);
    EXPECT_FALSE(r2.hit);
    EXPECT_EQ(r1.cls, MissClass::Uncached);
    EXPECT_EQ(r1.observed, 1u);
    EXPECT_GE(r1.stall, rig.cfg.baseMissCycles);
    EXPECT_EQ(rig.scheme->stats().readMisses.value(), 2u);
}

TEST(BaseScheme, WritesAreBufferedAndVisible)
{
    Rig rig(withScheme(SchemeKind::Base));
    auto w = rig.write(0, 0x200);
    EXPECT_EQ(w.stall, 1u);
    EXPECT_EQ(rig.memory.read(0x200), 1u);
    EXPECT_GT(rig.scheme->writeDrainTime(0), 0u);
    EXPECT_EQ(rig.scheme->writeDrainTime(1), 0u);
}

// ------------------------------------------------------------------ SC --

TEST(ScScheme, UnmarkedReadCachesLine)
{
    Rig rig(withScheme(SchemeKind::SC));
    auto r1 = rig.read(0, 0x100);
    EXPECT_FALSE(r1.hit);
    EXPECT_EQ(r1.cls, MissClass::Cold);
    auto r2 = rig.read(0, 0x104); // same line
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.stall, rig.cfg.hitCycles);
}

TEST(ScScheme, MarkedReadAlwaysRefetches)
{
    Rig rig(withScheme(SchemeKind::SC));
    rig.read(0, 0x100);
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, 3);
    EXPECT_FALSE(r.hit) << "SC cannot exploit the distance operand";
    EXPECT_EQ(r.cls, MissClass::Conservative)
        << "data was actually fresh: an unnecessary miss";
}

TEST(ScScheme, MarkedReadSeesNewData)
{
    Rig rig(withScheme(SchemeKind::SC));
    rig.read(1, 0x100);
    rig.boundary();
    rig.write(0, 0x100); // another processor updates memory
    rig.boundary();
    auto r = rig.read(1, 0x100, MarkKind::TimeRead, 1);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.observed, 1u) << "must observe the new value";
    EXPECT_EQ(r.cls, MissClass::TrueShare);
}

TEST(ScScheme, WriteThroughUpdatesMemoryImmediately)
{
    Rig rig(withScheme(SchemeKind::SC));
    rig.write(0, 0x300);
    EXPECT_EQ(rig.memory.read(0x300), 1u);
    // Write-allocate: the line is now cached.
    auto r = rig.read(0, 0x300);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.observed, 1u);
}

TEST(ScScheme, EvictionClassifiedAsReplacement)
{
    MachineConfig c = withScheme(SchemeKind::SC);
    c.cacheBytes = 256; // tiny: 16 lines
    c.lineBytes = 16;
    Rig rig(c);
    rig.read(0, 0x0);
    rig.read(0, 0x100); // conflicts (256B direct-mapped)
    auto r = rig.read(0, 0x0);
    EXPECT_EQ(r.cls, MissClass::Replacement);
}

// ----------------------------------------------------------------- TPI --

TEST(TpiScheme, TimeReadHitsFreshCopy)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.write(0, 0x100); // epoch 0: tt = 0
    rig.boundary();      // epoch 1
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, 1);
    EXPECT_TRUE(r.hit) << "tt=0 >= EC(1) - d(1): own copy provably fresh";
    EXPECT_EQ(r.observed, 1u);
    EXPECT_EQ(rig.scheme->stats().timeReadHits.value(), 1u);
}

TEST(TpiScheme, TimeReadMissesStaleCopy)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.read(1, 0x100);  // P1 caches the word in epoch 0
    rig.boundary();      // epoch 1
    rig.write(0, 0x100); // P0 writes (write-through)
    rig.boundary();      // epoch 2
    auto r = rig.read(1, 0x100, MarkKind::TimeRead, 1);
    EXPECT_FALSE(r.hit) << "P1's tt=0 < EC(2) - d(1) = 1";
    EXPECT_EQ(r.observed, 1u) << "refetch returns the new value";
    EXPECT_EQ(r.cls, MissClass::TrueShare);
}

TEST(TpiScheme, TimeReadPromotionPreservesLocality)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.write(0, 0x100); // epoch 0
    rig.boundary();      // 1
    auto r1 = rig.read(0, 0x100, MarkKind::TimeRead, 1);
    EXPECT_TRUE(r1.hit);
    rig.boundary();      // 2
    // Without promotion tt would still be 0 and this d=1 read would miss.
    auto r2 = rig.read(0, 0x100, MarkKind::TimeRead, 1);
    EXPECT_TRUE(r2.hit) << "promotion at the first Time-Read keeps "
                           "inter-task locality";
}

TEST(TpiScheme, ConservativeMissClassified)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.read(0, 0x100); // cache in epoch 0
    rig.boundary();
    rig.boundary();
    // Nothing was written; a d=1 Time-Read in epoch 2 misses anyway.
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, 1);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.cls, MissClass::Conservative)
        << "data was fresh; the miss is compiler conservatism";
}

TEST(TpiScheme, SideFilledWordsGetOlderTag)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.boundary(); // epoch 1 so EC-1 is meaningful
    rig.read(0, 0x100); // fills words 0x100..0x10c; accessed word tt=1
    // Accessed word: d=0 Time-Read hits (tt == EC).
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, 0).hit);
    // Side-filled word: tt = EC-1, a d=0 Time-Read must miss (another
    // task may have written it this epoch).
    EXPECT_FALSE(rig.read(0, 0x104, MarkKind::TimeRead, 0).hit);
    // ...but a d=1 Time-Read may hit.
    EXPECT_TRUE(rig.read(0, 0x108, MarkKind::TimeRead, 1).hit);
}

TEST(TpiScheme, WriteSetsCurrentTag)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.boundary();
    rig.write(0, 0x100);
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, 0).hit);
}

TEST(TpiScheme, BypassAlwaysFetches)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.write(0, 0x100);
    auto r1 = rig.read(0, 0x100, MarkKind::Bypass);
    EXPECT_FALSE(r1.hit);
    EXPECT_EQ(r1.observed, 1u);
    auto r2 = rig.read(0, 0x100, MarkKind::Bypass);
    EXPECT_FALSE(r2.hit);
    EXPECT_EQ(rig.scheme->stats().bypassReads.value(), 2u);
}

TEST(TpiScheme, BypassSeesOtherTasksWriteSameEpoch)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.read(1, 0x100);  // P1 caches old value (stamp 0)
    rig.write(0, 0x100); // P0 writes in the same epoch (critical section)
    auto r = rig.read(1, 0x100, MarkKind::Bypass);
    EXPECT_EQ(r.observed, 1u) << "bypass must observe lock-ordered write";
}

TEST(TpiScheme, TwoPhaseResetInvalidatesOldWords)
{
    MachineConfig c = withScheme(SchemeKind::TPI);
    c.timetagBits = 3; // phase = 4 epochs
    Rig rig(c);
    rig.read(0, 0x100); // tt = 0 in epoch 0
    Cycles stall = 0;
    for (int e = 1; e <= 4; ++e)
        stall += rig.boundary(); // epoch 4 crosses the phase boundary
    EXPECT_EQ(stall, c.twoPhaseResetCycles);
    EXPECT_EQ(rig.scheme->stats().tagResets.value(), 1u);
    // tt=0 < 4 - 4 + ... cutoff = 4-4 = 0? cutoff is EC - phase = 0,
    // tt(0) >= 0 survives the first reset; the next one kills it.
    for (int e = 5; e <= 8; ++e)
        stall += rig.boundary();
    auto r = rig.read(0, 0x100); // Normal read of an invalidated word
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.cls, MissClass::TagReset);
}

TEST(TpiScheme, WideTagsAvoidResetLonger)
{
    MachineConfig c = withScheme(SchemeKind::TPI);
    c.timetagBits = 8; // phase = 128
    Rig rig(c);
    rig.read(0, 0x100);
    for (int e = 1; e <= 100; ++e)
        rig.boundary();
    EXPECT_TRUE(rig.read(0, 0x100).hit);
    EXPECT_EQ(rig.scheme->stats().tagResets.value(), 0u);
}

TEST(TpiScheme, DistanceClampedToTagWindow)
{
    MachineConfig c = withScheme(SchemeKind::TPI);
    c.timetagBits = 3; // representable distance <= 7
    Rig rig(c);
    rig.write(0, 0x100); // tt = 0
    rig.boundary();
    rig.boundary();
    rig.boundary();      // EC = 3
    // d=100 clamps to 7; floor = 0; the copy (tt=0) may hit.
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, 100).hit);
}

// ------------------------------------------------------------------ HW --

TEST(DirectoryScheme, ReadSharing)
{
    Rig rig(withScheme(SchemeKind::HW));
    auto r0 = rig.read(0, 0x100);
    auto r1 = rig.read(1, 0x100);
    EXPECT_FALSE(r0.hit);
    EXPECT_FALSE(r1.hit);
    auto *d = dynamic_cast<DirectoryScheme *>(rig.scheme.get());
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->dirEntry(0x100).state, DirEntry::State::Shared);
    EXPECT_EQ(d->dirEntry(0x100).sharers, 0b11u);
    EXPECT_TRUE(rig.read(0, 0x100).hit);
    EXPECT_TRUE(rig.read(1, 0x100).hit);
}

TEST(DirectoryScheme, WriteInvalidatesSharers)
{
    Rig rig(withScheme(SchemeKind::HW));
    rig.read(0, 0x100);
    rig.read(1, 0x100);
    rig.write(0, 0x100); // upgrade: invalidate P1
    auto *d = dynamic_cast<DirectoryScheme *>(rig.scheme.get());
    EXPECT_EQ(d->dirEntry(0x100).state, DirEntry::State::Modified);
    EXPECT_EQ(d->dirEntry(0x100).owner, 0u);
    EXPECT_EQ(rig.scheme->stats().invalidationsSent.value(), 1u);
    auto r = rig.read(1, 0x100);
    EXPECT_FALSE(r.hit) << "P1 was invalidated";
    EXPECT_EQ(r.observed, 1u) << "owner flushed before memory served";
    EXPECT_EQ(r.cls, MissClass::TrueShare);
}

TEST(DirectoryScheme, FalseSharingClassification)
{
    Rig rig(withScheme(SchemeKind::HW));
    rig.read(1, 0x104); // P1 uses word 1 only
    rig.write(0, 0x100); // P0 writes word 0 of the same line
    auto r = rig.read(1, 0x104);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.cls, MissClass::FalseShare)
        << "invalidating write hit a word P1 never used";
}

TEST(DirectoryScheme, TrueSharingClassification)
{
    Rig rig(withScheme(SchemeKind::HW));
    rig.read(1, 0x100); // P1 uses word 0
    rig.write(0, 0x100); // P0 writes word 0
    auto r = rig.read(1, 0x100);
    EXPECT_EQ(r.cls, MissClass::TrueShare);
}

TEST(DirectoryScheme, WriteBackOnEviction)
{
    MachineConfig c = withScheme(SchemeKind::HW);
    c.cacheBytes = 256;
    c.lineBytes = 16;
    Rig rig(c);
    rig.write(0, 0x100);
    EXPECT_EQ(rig.memory.read(0x100), 0u) << "write-back: memory stale";
    rig.read(0, 0x200); // conflicting line evicts 0x100
    EXPECT_EQ(rig.memory.read(0x100), 1u) << "eviction wrote back";
    EXPECT_GE(rig.scheme->stats().writebackPackets.value(), 1u);
}

TEST(DirectoryScheme, DirtyRemoteReadFlushesOwner)
{
    Rig rig(withScheme(SchemeKind::HW));
    rig.write(0, 0x100);
    auto r = rig.read(1, 0x100);
    EXPECT_EQ(r.observed, 1u);
    EXPECT_GE(r.stall,
              rig.cfg.baseMissCycles + rig.cfg.dirtyMissExtraCycles);
    auto *d = dynamic_cast<DirectoryScheme *>(rig.scheme.get());
    EXPECT_EQ(d->dirEntry(0x100).state, DirEntry::State::Shared);
    EXPECT_EQ(rig.memory.read(0x100), 1u);
    // Previous owner keeps a shared copy.
    EXPECT_TRUE(rig.read(0, 0x100).hit);
}

TEST(DirectoryScheme, WriteHitInModifiedIsCheap)
{
    Rig rig(withScheme(SchemeKind::HW));
    rig.write(0, 0x100);
    auto w = rig.write(0, 0x104);
    EXPECT_TRUE(w.hit);
    EXPECT_EQ(w.stall, rig.cfg.hitCycles);
    EXPECT_EQ(rig.scheme->stats().writeMisses.value(), 1u);
}

TEST(DirectoryScheme, LimitedPointerOverflowPenalty)
{
    MachineConfig c = withScheme(SchemeKind::HW);
    c.directoryPtrs = 2;
    Rig rig(c);
    Cycles base_stall = rig.read(0, 0x100).stall;
    rig.read(1, 0x100);
    auto r3 = rig.read(2, 0x100); // third sharer overflows 2 pointers
    EXPECT_GT(r3.stall, base_stall);
    EXPECT_GE(r3.stall, base_stall + c.directoryOverflowCycles);
}

TEST(DirectoryScheme, EpochBoundaryIsFree)
{
    Rig rig(withScheme(SchemeKind::HW));
    EXPECT_EQ(rig.boundary(), 0u);
}

// -------------------------------------------------- write buffer modes --

TEST(WriteBufferAsCache, EliminatesRedundantWrites)
{
    MachineConfig c = withScheme(SchemeKind::TPI);
    c.writeBufferAsCache = true;
    Rig rig(c);
    rig.write(0, 0x100);
    rig.write(0, 0x100);
    rig.write(0, 0x100);
    EXPECT_EQ(rig.scheme->stats().writePackets.value(), 1u)
        << "repeat writes coalesce in the cache-organized buffer";
    rig.boundary(); // drain
    rig.write(0, 0x100);
    EXPECT_EQ(rig.scheme->stats().writePackets.value(), 2u)
        << "after the drain a new packet is needed";
}

TEST(WriteBufferPlain, EveryWriteIsAPacket)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.write(0, 0x100);
    rig.write(0, 0x100);
    EXPECT_EQ(rig.scheme->stats().writePackets.value(), 2u);
}
