/**
 * @file
 * Trace-ingestion frontend tests: the strict parser (every malformed
 * input is a structured FatalError with file:line context - never a
 * crash, never a silent skip), the conservative marking stub, and
 * deterministic replay of the checked-in sample trace across all five
 * schemes at any thread count.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/parallel.hh"
#include "sim/machine.hh"
#include "sim/result.hh"
#include "workloads/trace.hh"

using namespace hscd;
using namespace hscd::workloads;

namespace {

const SchemeKind kAllSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                                  SchemeKind::TPI, SchemeKind::HW,
                                  SchemeKind::VC};

/**
 * Assert that parsing @p text raises FatalError whose message contains
 * @p needle. The message must also carry the trace name and a line
 * number so users can find the bad record.
 */
void
expectTraceError(const std::string &text, const std::string &needle)
{
    try {
        parseTraceText(text, "t.trace");
        FAIL() << "expected FatalError containing '" << needle
               << "' for input:\n" << text;
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(needle), std::string::npos)
            << "message '" << msg << "' lacks '" << needle << "'";
        EXPECT_NE(msg.find("t.trace:"), std::string::npos)
            << "message '" << msg << "' lacks file:line context";
    }
}

std::string
samplePath()
{
    return std::string(HSCD_SOURCE_DIR) + "/tests/data/sample.trace";
}

} // namespace

// ---------------------------------------------------------------------
// Spec parsing.

TEST(TraceSpec, Recognizer)
{
    EXPECT_TRUE(isTraceSpec("trace:foo.trace"));
    EXPECT_TRUE(isTraceSpec("  TRACE:foo.trace  "));
    EXPECT_FALSE(isTraceSpec("gen:1"));
    EXPECT_FALSE(isTraceSpec("synth:streaming:1"));
    EXPECT_FALSE(isTraceSpec("ocean"));
    EXPECT_EQ(traceSpecPath("trace:/a/b.trace"), "/a/b.trace");
}

TEST(TraceSpec, EmptyPathFatal)
{
    EXPECT_THROW(traceSpecPath("trace:"), FatalError);
    EXPECT_THROW(traceSpecPath("ocean"), FatalError);
}

TEST(TraceSpec, MissingFileFatal)
{
    EXPECT_THROW(loadTraceSpec("trace:/nonexistent/x.trace"), FatalError);
}

// ---------------------------------------------------------------------
// Positive parsing.

TEST(TraceParse, MinimalRoundTrip)
{
    TraceWorkload t = parseTraceText("procs 2\n0 0 w 0\n1 0 r 1\n", "m");
    EXPECT_EQ(t.procs, 2u);
    EXPECT_EQ(t.reads, 1u);
    EXPECT_EQ(t.writes, 1u);
    EXPECT_EQ(t.epochs, 2u);
    // write, boundary, read.
    ASSERT_EQ(t.records.size(), 3u);
    EXPECT_EQ(t.records[0].type, sim::TraceRecord::Type::Access);
    EXPECT_TRUE(t.records[0].op.write);
    EXPECT_EQ(t.records[1].type, sim::TraceRecord::Type::Boundary);
    EXPECT_EQ(t.records[1].epoch, 1u);
    EXPECT_FALSE(t.records[2].op.write);
    // Conservative stub: reads are Time-Reads of distance 0.
    EXPECT_EQ(t.records[2].op.mark, compiler::MarkKind::TimeRead);
    EXPECT_EQ(t.records[2].op.distance, 0u);
    EXPECT_EQ(t.records[0].op.mark, compiler::MarkKind::Normal);
}

TEST(TraceParse, ProcsInferredFromMaxId)
{
    TraceWorkload t = parseTraceText("0 0 w\n5 4 r\n", "m");
    EXPECT_EQ(t.procs, 6u);
    EXPECT_EQ(t.epochs, 1u);
}

TEST(TraceParse, EpochGapEmitsEveryBoundary)
{
    TraceWorkload t = parseTraceText("0 0 w 0\n0 0 r 3\n", "m");
    // write, boundary(1), boundary(2), boundary(3), read.
    ASSERT_EQ(t.records.size(), 5u);
    EXPECT_EQ(t.records[1].epoch, 1u);
    EXPECT_EQ(t.records[2].epoch, 2u);
    EXPECT_EQ(t.records[3].epoch, 3u);
    EXPECT_EQ(t.epochs, 4u);
}

TEST(TraceParse, CommentsBlanksCrlfAndCaseAccepted)
{
    TraceWorkload t = parseTraceText(
        "# header\n\n  \t \nprocs 2\r\n0 0 W 0   # trailing\n1 4 R 0\r\n",
        "m");
    EXPECT_EQ(t.procs, 2u);
    EXPECT_EQ(t.reads, 1u);
    EXPECT_EQ(t.writes, 1u);
}

TEST(TraceParse, CompleteUnterminatedFinalLineAccepted)
{
    // No trailing newline, but the record is complete: accepted.
    TraceWorkload t = parseTraceText("0 0 w 0\n1 4 r 0", "m");
    EXPECT_EQ(t.reads, 1u);
    EXPECT_EQ(t.writes, 1u);
}

TEST(TraceParse, WriteStampsAreUniqueAndOrdered)
{
    TraceWorkload t = parseTraceText("0 0 w\n0 4 w\n0 0 r\n", "m");
    ASSERT_EQ(t.records.size(), 3u);
    EXPECT_EQ(t.records[0].op.stamp, 1u);
    EXPECT_EQ(t.records[1].op.stamp, 2u);
    EXPECT_EQ(t.records[2].op.stamp, 0u);
}

// ---------------------------------------------------------------------
// Negative parsing: every class of malformed input is a structured
// error (FatalError -> CLI exit 2), never a crash or a silent skip.

TEST(TraceParseError, MalformedLines)
{
    expectTraceError("bogus\n", "malformed access record");
    expectTraceError("0 0\n", "malformed access record");
    expectTraceError("0 0 x\n", "malformed access record");
    expectTraceError("0 0 w 1 extra\n", "malformed access record");
    expectTraceError("-1 0 w\n", "malformed access record");
    expectTraceError("0 0x10 w\n", "malformed access record");
    expectTraceError("0 0 w 99999999999999999999\n",
                     "malformed access record");
}

TEST(TraceParseError, OutOfRangeProc)
{
    expectTraceError("procs 2\n2 0 w\n", "processor id 2 out of range");
    expectTraceError("procs 2\n7 0 w\n", "declared procs 2");
    // Without a directive the hard cap still applies.
    expectTraceError("4096 0 w\n", "out of range");
}

TEST(TraceParseError, BadAddress)
{
    expectTraceError("0 6 w\n", "not word-aligned");
    expectTraceError("0 67108864 w\n", "out of range");
}

TEST(TraceParseError, NonMonotoneEpoch)
{
    expectTraceError("0 0 w 2\n0 0 w 1\n", "non-monotone epoch 1");
    expectTraceError("0 0 w 9999999\n", "out of range");
}

TEST(TraceParseError, TornFinalLine)
{
    // Incomplete record with no trailing newline: the torn tail of a
    // killed writer. Must be diagnosed as torn, not accepted.
    expectTraceError("0 0 w 0\n0 8", "torn final line");
    expectTraceError("procs 2\n0 0 w\n1", "torn final line");
}

TEST(TraceParseError, ProcsDirective)
{
    expectTraceError("procs\n", "malformed 'procs' directive");
    expectTraceError("procs two\n", "malformed 'procs' directive");
    expectTraceError("procs 0\n", "malformed 'procs' directive");
    expectTraceError("procs 2000\n", "out of range");
    expectTraceError("procs 2\nprocs 2\n0 0 w\n", "duplicate 'procs'");
    expectTraceError("0 0 w\nprocs 2\n", "must precede all accesses");
}

TEST(TraceParseError, EmptyTrace)
{
    expectTraceError("", "no accesses");
    expectTraceError("# only a comment\n", "no accesses");
    expectTraceError("procs 4\n", "no accesses");
}

// ---------------------------------------------------------------------
// Replay: the checked-in sample trace runs under every scheme, and the
// result is byte-identical at any --jobs level and across repeats.

TEST(TraceReplay, SampleLoadsWithExpectedShape)
{
    TraceWorkload t = loadTraceSpec("trace:" + samplePath());
    EXPECT_EQ(t.procs, 4u);
    EXPECT_EQ(t.epochs, 3u);
    EXPECT_EQ(t.reads, 16u);
    EXPECT_EQ(t.writes, 21u);
    EXPECT_GE(t.dataBytes, 64u);
}

TEST(TraceReplay, AllSchemesRunAndDiffer)
{
    TraceWorkload t = loadTraceSpec("trace:" + samplePath());
    std::vector<std::uint64_t> fps;
    for (SchemeKind k : kAllSchemes) {
        MachineConfig cfg;
        cfg.scheme = k;
        cfg.procs = 4;
        sim::RunResult r = runTrace(t, cfg);
        EXPECT_FALSE(r.abort.aborted()) << schemeName(k);
        EXPECT_EQ(r.reads, t.reads) << schemeName(k);
        EXPECT_EQ(r.writes, t.writes) << schemeName(k);
        EXPECT_EQ(r.epochs, t.epochs) << schemeName(k);
        EXPECT_GT(r.cycles, 0u) << schemeName(k);
        fps.push_back(r.fingerprint());
    }
    // Base invalidates everything; the smarter schemes must beat it.
    MachineConfig base;
    base.scheme = SchemeKind::Base;
    base.procs = 4;
    const Counter baseMisses = runTrace(t, base).readMisses;
    MachineConfig hw;
    hw.scheme = SchemeKind::HW;
    hw.procs = 4;
    EXPECT_LT(runTrace(t, hw).readMisses, baseMisses);
    // And at least two schemes must disagree somewhere, or the replay
    // plumbing is ignoring the scheme entirely.
    bool anyDiff = false;
    for (std::size_t i = 1; i < fps.size(); ++i)
        anyDiff = anyDiff || fps[i] != fps[0];
    EXPECT_TRUE(anyDiff);
}

TEST(TraceReplay, IdenticalAcrossJobsAndRepeats)
{
    TraceWorkload t = loadTraceSpec("trace:" + samplePath());
    for (SchemeKind k : kAllSchemes) {
        MachineConfig cfg;
        cfg.scheme = k;
        cfg.procs = 4;
        const sim::RunResult ref = runTrace(t, cfg);
        for (unsigned jobs : {1u, 2u, 8u}) {
            // Replay the same trace on several worker threads at once:
            // every result must be byte-identical to the reference.
            auto runs = parallelMap(jobs, 8, [&](std::size_t) {
                return runTrace(t, cfg);
            });
            for (const sim::RunResult &r : runs) {
                EXPECT_TRUE(r == ref) << schemeName(k);
                EXPECT_EQ(r.fingerprint(), ref.fingerprint())
                    << schemeName(k);
            }
        }
    }
}

TEST(TraceReplay, NarrowConfigWidenedToTraceProcs)
{
    TraceWorkload t = loadTraceSpec("trace:" + samplePath());
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 1; // narrower than the trace's 4: must be widened
    sim::RunResult r = runTrace(t, cfg);
    EXPECT_FALSE(r.abort.aborted());
    EXPECT_EQ(r.reads, t.reads);
}
