/** @file Tests for post/wait inter-task synchronization (Section 5). */

#include <gtest/gtest.h>

#include "hir/builder.hh"
#include "hir/printer.hh"
#include "sim/machine.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::sim;

namespace {

/**
 * Doacross scan: task i waits for task i-1's partial sum, extends it,
 * and posts flag i - a genuine cross-task dependence chain inside one
 * epoch. Every task posts flag 0 before waiting, which self-seeds task 1
 * and makes the chain deadlock-free under any schedule (a task only
 * waits on lower-numbered tasks, and posts always precede waits).
 */
compiler::CompiledProgram
doacross(std::int64_t n = 32)
{
    ProgramBuilder b;
    b.param("N", n);
    b.array("ACCUM", {"N"});
    b.array("DATA", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            b.write("DATA", {b.v("init")});
        });
        b.write("ACCUM", {b.c(0)});
        b.doall("i", 1, n - 1, [&] {
            b.read("DATA", {b.v("i")});
            b.compute(3);
            b.post(0); // seed: satisfies task 1's wait immediately
            b.wait(b.v("i") - 1);
            b.read("ACCUM", {b.v("i") - 1}); // the predecessor's result
            b.write("ACCUM", {b.v("i")});
            b.post(b.v("i"));
        });
        b.read("ACCUM", {b.p("N") - 1});
    });
    return compiler::compileProgram(b.build());
}

MachineConfig
cfg(SchemeKind k)
{
    MachineConfig c;
    c.scheme = k;
    c.procs = 4;
    return c;
}

} // namespace

TEST(Sync, BuilderAndPrinter)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.doall("i", 1, 7, [&] {
            b.wait(b.v("i") - 1);
            b.write("A", {b.v("i")});
            b.post(b.v("i"));
        });
    });
    Program p = b.build();
    const std::string s = programToString(p);
    EXPECT_NE(s.find("WAIT(i - 1)"), std::string::npos);
    EXPECT_NE(s.find("POST(i)"), std::string::npos);
}

TEST(Sync, PostWaitInsideCriticalRejected)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] {
            b.critical([&] { b.post(b.c(0)); });
        });
    });
    EXPECT_THROW(b.build(), FatalError);
}

TEST(Sync, EpochNodeFlagged)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.doall("i", 1, 7, [&] {
            b.wait(b.v("i") - 1);
            b.write("A", {b.v("i")});
            b.post(b.v("i"));
        });
        b.doall("j", 0, 7, [&] { b.read("A", {b.v("j")}); });
    });
    Program p = b.build();
    compiler::EpochGraph g = compiler::EpochGraph::build(p);
    bool saw_sync = false, saw_plain = false;
    for (const auto &n : g.nodes()) {
        if (n.parallel && n.hasSync)
            saw_sync = true;
        if (n.parallel && !n.hasSync)
            saw_plain = true;
    }
    EXPECT_TRUE(saw_sync);
    EXPECT_TRUE(saw_plain);
}

TEST(Sync, CrossTaskReadMarkedBypass)
{
    ProgramBuilder b;
    b.array("A", {32});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 1, 31, [&] {
            b.wait(b.v("i") - 1);
            r = b.read("A", {b.v("i") - 1}); // predecessor's write
            b.write("A", {b.v("i")});
            b.post(b.v("i"));
        });
    });
    Program p = b.build();
    compiler::EpochGraph g = compiler::EpochGraph::build(p);
    compiler::Marking m = compiler::Marking::run(p, g);
    EXPECT_EQ(m.mark(r).kind, compiler::MarkKind::Bypass);
    EXPECT_EQ(m.mark(r).reason, compiler::MarkReason::SyncOrdered);
}

TEST(Sync, OwnDataStaysCovered)
{
    // Sync in the epoch must not destroy provably same-task coverage.
    ProgramBuilder b;
    b.array("A", {32});
    b.array("B", {32});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 1, 31, [&] {
            b.write("A", {b.v("i")});
            r = b.read("A", {b.v("i")}); // own element: still covered
            b.wait(b.v("i") - 1);
            b.write("B", {b.v("i")});
            b.post(b.v("i"));
        });
    });
    Program p = b.build();
    compiler::EpochGraph g = compiler::EpochGraph::build(p);
    compiler::Marking m = compiler::Marking::run(p, g);
    EXPECT_EQ(m.mark(r).kind, compiler::MarkKind::Normal);
    EXPECT_EQ(m.mark(r).reason, compiler::MarkReason::Covered);
}

TEST(Sync, DoacrossCoherentUnderAllSchemes)
{
    compiler::CompiledProgram cp = doacross();
    for (SchemeKind k : {SchemeKind::Base, SchemeKind::SC, SchemeKind::TPI,
                         SchemeKind::HW})
    {
        RunResult r = simulate(cp, cfg(k));
        EXPECT_EQ(r.oracleViolations, 0u)
            << schemeName(k)
            << ": consumer must observe the producer's value";
        EXPECT_EQ(r.doallViolations, 0u)
            << "sync-ordered sharing is not a race";
    }
}

TEST(Sync, DoacrossSerializesExecution)
{
    compiler::CompiledProgram cp = doacross(64);
    RunResult r = simulate(cp, cfg(SchemeKind::TPI));
    // The chain forces ~n sequential hops: execution time must exceed a
    // perfectly parallel epoch's by a wide margin.
    EXPECT_GT(r.cycles, 64 * 30u) << "waits must serialize the pipeline";
}

TEST(Sync, DeadlockDetected)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] {
            b.wait(b.c(99)); // never posted
            b.write("A", {b.v("i")});
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig c = cfg(SchemeKind::TPI);
    Machine m(cp, c);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Sync, SerialPostWaitOrderEnforced)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.wait(b.c(0)); // nothing posted yet
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig c = cfg(SchemeKind::TPI);
    Machine m(cp, c);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Sync, SerialPostThenWaitFine)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.post(0);
        b.wait(0);
        b.read("A", {b.c(0)});
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    RunResult r = simulate(cp, cfg(SchemeKind::TPI));
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(Sync, PostDrainsWriteBuffer)
{
    // The consumer reads through memory (bypass); the post must have
    // pushed the producer's write out first. Verified by value: any
    // ordering bug shows up as an oracle violation on a long pipeline.
    compiler::CompiledProgram cp = doacross(48);
    for (SchedPolicy s :
         {SchedPolicy::Block, SchedPolicy::Cyclic, SchedPolicy::Dynamic})
    {
        MachineConfig c = cfg(SchemeKind::TPI);
        c.sched = s;
        RunResult r = simulate(cp, c);
        EXPECT_EQ(r.oracleViolations, 0u) << schedName(s);
    }
}
