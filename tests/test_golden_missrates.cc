/**
 * @file
 * Golden-value lock on the Figure 11 miss-rate table (EXPERIMENTS.md):
 * BASE / SC / VC / TPI / HW read miss rates on the six workloads at
 * scale=1. Future performance work must not silently change reproduced
 * paper numbers; an intentional change regenerates the table with
 *
 *   HSCD_PRINT_GOLDEN=1 ./tests/hscd_sweep_tests \
 *       --gtest_filter=GoldenMissRates.* 2>&1 | grep GOLDEN
 *
 * and pastes the emitted rows below.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

namespace {

struct GoldenRow
{
    const char *benchmark;
    // Read miss rates in percent: BASE, SC, VC, TPI, HW.
    double pct[5];
};

// Regenerate with HSCD_PRINT_GOLDEN=1 (see file comment).
const GoldenRow kGolden[] = {
    {"ADM", {100.0000, 90.6695, 21.8483, 21.2785, 15.6339}},
    {"FLO52", {100.0000, 100.0000, 29.0568, 22.3421, 24.9400}},
    {"OCEAN", {100.0000, 100.0000, 19.0454, 22.5622, 23.5670}},
    {"QCD2", {100.0000, 99.9068, 15.7310, 16.1426, 11.4916}},
    {"SPEC77", {100.0000, 66.1170, 14.7430, 15.1148, 29.4698}},
    {"TRFD", {100.0000, 100.0000, 12.2642, 14.3729, 11.5982}},
};

// Absolute tolerance in percentage points. Tight enough that a changed
// coherence decision trips it, loose enough for benign float jitter.
constexpr double kTolerance = 0.05;

const SchemeKind kSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                               SchemeKind::VC, SchemeKind::TPI,
                               SchemeKind::HW};

} // namespace

TEST(GoldenMissRates, F11TableAtScale1)
{
    const std::vector<std::string> names = workloads::benchmarkNames();
    ASSERT_EQ(names.size(), std::size(kGolden));

    SweepOptions opts; // default jobs: the table must not depend on it
    Sweep sweep(opts, "golden-f11");
    for (const std::string &name : names)
        for (SchemeKind k : kSchemes)
            sweep.add(name, makeConfig(k), /*scale=*/1);
    sweep.run();
    sweep.requireAllSound();

    const bool print = std::getenv("HSCD_PRINT_GOLDEN") != nullptr;
    std::size_t cell = 0;
    for (std::size_t b = 0; b < names.size(); ++b) {
        EXPECT_EQ(names[b], kGolden[b].benchmark);
        double measured[5];
        for (int s = 0; s < 5; ++s)
            measured[s] = 100.0 * sweep[cell++].readMissRate;
        if (print) {
            std::fprintf(stderr,
                         "GOLDEN     {\"%s\", {%.4f, %.4f, %.4f, %.4f, "
                         "%.4f}},\n",
                         names[b].c_str(), measured[0], measured[1],
                         measured[2], measured[3], measured[4]);
            continue;
        }
        for (int s = 0; s < 5; ++s) {
            EXPECT_NEAR(measured[s], kGolden[b].pct[s], kTolerance)
                << names[b] << " under " << schemeName(kSchemes[s])
                << ": the reproduced Figure 11 number moved; if this "
                   "change is intentional, regenerate the golden table "
                   "(see file comment) and update EXPERIMENTS.md";
        }
    }
}
