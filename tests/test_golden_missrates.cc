/**
 * @file
 * Golden-value locks on the reproduced paper tables (EXPERIMENTS.md):
 * the Figure 11 miss-rate table, the Figure 12 miss-kind breakdown, and
 * the Figure 13 traffic table, all at scale=1. Future performance work
 * must not silently change reproduced paper numbers; an intentional
 * change regenerates the tables with
 *
 *   HSCD_PRINT_GOLDEN=1 ./tests/hscd_sweep_tests \
 *       --gtest_filter=GoldenMissRates.* 2>&1 | grep GOLDEN
 *
 * and pastes the emitted rows below. The miss-kind and traffic rows are
 * raw event counters (exact integer equality): any change to a single
 * coherence decision anywhere in a run trips them, which is what pins
 * the epoch-stream fast path to the interpreter's behavior.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

namespace {

struct GoldenRow
{
    const char *benchmark;
    // Read miss rates in percent: BASE, SC, VC, TPI, HW.
    double pct[5];
};

// Regenerate with HSCD_PRINT_GOLDEN=1 (see file comment).
const GoldenRow kGolden[] = {
    {"ADM", {100.0000, 90.6695, 21.8483, 21.2785, 15.6339}},
    {"FLO52", {100.0000, 100.0000, 29.0568, 22.3421, 24.9400}},
    {"OCEAN", {100.0000, 100.0000, 19.0454, 22.5622, 23.5670}},
    {"QCD2", {100.0000, 99.9068, 15.7310, 16.1426, 11.4916}},
    {"SPEC77", {100.0000, 66.1170, 14.7430, 15.1148, 29.4698}},
    {"TRFD", {100.0000, 100.0000, 12.2642, 14.3729, 11.5982}},
};

// Absolute tolerance in percentage points. Tight enough that a changed
// coherence decision trips it, loose enough for benign float jitter.
constexpr double kTolerance = 0.05;

const SchemeKind kSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                               SchemeKind::VC, SchemeKind::TPI,
                               SchemeKind::HW};

} // namespace

namespace {

/** Figure 12: miss-kind breakdown, raw counters, one row per scheme. */
struct GoldenMissKinds
{
    const char *benchmark;
    // Per scheme (SC, TPI, HW): cold, replacement, trueShare,
    // falseShare, conservative, tagReset, uncached.
    unsigned long long kinds[3][7];
};

/** Figure 13: network traffic, raw counters, one row per scheme. */
struct GoldenTraffic
{
    const char *benchmark;
    // Per scheme (BASE, SC, TPI, HW): trafficPackets, trafficWords.
    unsigned long long traffic[4][2];
};

const SchemeKind kMissKindSchemes[] = {SchemeKind::SC, SchemeKind::TPI,
                                       SchemeKind::HW};
const SchemeKind kTrafficSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                                      SchemeKind::TPI, SchemeKind::HW};

// Regenerate with HSCD_PRINT_GOLDEN=1 (see file comment).
const GoldenMissKinds kGoldenMissKinds[] = {
    {"ADM", {{374, 0, 495, 0, 4223, 0, 0}, {374, 0, 504, 0, 301, 16, 0},
             {374, 0, 189, 315, 0, 0, 0}}},
    {"FLO52", {{44, 0, 252, 0, 2206, 0, 0}, {44, 0, 391, 0, 124, 0, 0},
               {44, 0, 178, 402, 0, 0, 0}}},
    {"OCEAN", {{701, 0, 828, 0, 15987, 0, 0}, {701, 0, 828, 0, 2423, 0, 0},
               {701, 0, 290, 3137, 0, 0, 0}}},
    {"QCD2", {{601, 0, 734, 0, 11532, 0, 0}, {601, 0, 878, 0, 600, 0, 0},
              {601, 0, 608, 271, 0, 0, 0}}},
    {"SPEC77", {{466, 0, 398, 0, 3226, 0, 0}, {466, 0, 431, 0, 38, 0, 0},
                {466, 0, 377, 980, 0, 0, 0}}},
    {"TRFD", {{606, 0, 594, 0, 9612, 0, 0}, {606, 0, 624, 0, 324, 0, 0},
              {606, 0, 561, 87, 0, 0, 0}}},
};

const GoldenTraffic kGoldenTraffic[] = {
    {"ADM", {{8388, 8388}, {8004, 23700}, {4107, 8112}, {3382, 5272}}},
    {"FLO52", {{3652, 3652}, {3749, 11546}, {1806, 3774}, {4222, 6512}}},
    {"OCEAN",
     {{24756, 24756}, {25396, 79864}, {11843, 25388}, {29539, 47844}}},
    {"QCD2", {{15811, 15811}, {16143, 55776}, {5371, 11536}, {7596, 12320}}},
    {"SPEC77", {{8823, 8823}, {7140, 20649}, {3985, 8029}, {13305, 23148}}},
    {"TRFD", {{16584, 16584}, {16746, 49668}, {7488, 12636}, {3966, 7008}}},
};

} // namespace

TEST(GoldenMissRates, F11TableAtScale1)
{
    const std::vector<std::string> names = workloads::benchmarkNames();
    ASSERT_EQ(names.size(), std::size(kGolden));

    SweepOptions opts; // default jobs: the table must not depend on it
    Sweep sweep(opts, "golden-f11");
    for (const std::string &name : names)
        for (SchemeKind k : kSchemes)
            sweep.add(name, makeConfig(k), /*scale=*/1);
    sweep.run();
    sweep.requireAllSound();

    const bool print = std::getenv("HSCD_PRINT_GOLDEN") != nullptr;
    std::size_t cell = 0;
    for (std::size_t b = 0; b < names.size(); ++b) {
        EXPECT_EQ(names[b], kGolden[b].benchmark);
        double measured[5];
        for (int s = 0; s < 5; ++s)
            measured[s] = 100.0 * sweep[cell++].readMissRate;
        if (print) {
            std::fprintf(stderr,
                         "GOLDEN     {\"%s\", {%.4f, %.4f, %.4f, %.4f, "
                         "%.4f}},\n",
                         names[b].c_str(), measured[0], measured[1],
                         measured[2], measured[3], measured[4]);
            continue;
        }
        for (int s = 0; s < 5; ++s) {
            EXPECT_NEAR(measured[s], kGolden[b].pct[s], kTolerance)
                << names[b] << " under " << schemeName(kSchemes[s])
                << ": the reproduced Figure 11 number moved; if this "
                   "change is intentional, regenerate the golden table "
                   "(see file comment) and update EXPERIMENTS.md";
        }
    }
}

TEST(GoldenMissRates, F12MissKindsAtScale1)
{
    const std::vector<std::string> names = workloads::benchmarkNames();
    const bool print = std::getenv("HSCD_PRINT_GOLDEN") != nullptr;
    if (!print) {
        ASSERT_EQ(names.size(), std::size(kGoldenMissKinds));
    }

    SweepOptions opts;
    Sweep sweep(opts, "golden-f12");
    for (const std::string &name : names)
        for (SchemeKind k : kMissKindSchemes)
            sweep.add(name, makeConfig(k), /*scale=*/1);
    sweep.run();
    sweep.requireAllSound();

    std::size_t cell = 0;
    for (std::size_t b = 0; b < names.size(); ++b) {
        unsigned long long got[3][7];
        for (int s = 0; s < 3; ++s) {
            const sim::RunResult &r = sweep[cell++];
            got[s][0] = r.missCold;
            got[s][1] = r.missReplacement;
            got[s][2] = r.missTrueShare;
            got[s][3] = r.missFalseShare;
            got[s][4] = r.missConservative;
            got[s][5] = r.missTagReset;
            got[s][6] = r.missUncached;
        }
        if (print) {
            std::fprintf(stderr, "GOLDEN     {\"%s\", {", names[b].c_str());
            for (int s = 0; s < 3; ++s)
                std::fprintf(
                    stderr, "{%llu, %llu, %llu, %llu, %llu, %llu, %llu}%s",
                    got[s][0], got[s][1], got[s][2], got[s][3], got[s][4],
                    got[s][5], got[s][6], s == 2 ? "" : ", ");
            std::fprintf(stderr, "}},\n");
            continue;
        }
        EXPECT_EQ(names[b], kGoldenMissKinds[b].benchmark);
        for (int s = 0; s < 3; ++s)
            for (int m = 0; m < 7; ++m)
                EXPECT_EQ(got[s][m], kGoldenMissKinds[b].kinds[s][m])
                    << names[b] << " under "
                    << schemeName(kMissKindSchemes[s]) << " kind " << m
                    << ": a Figure 12 miss-kind counter moved (exact "
                       "freeze; regenerate if intentional)";
    }
}

TEST(GoldenMissRates, F13TrafficAtScale1)
{
    const std::vector<std::string> names = workloads::benchmarkNames();
    const bool print = std::getenv("HSCD_PRINT_GOLDEN") != nullptr;
    if (!print) {
        ASSERT_EQ(names.size(), std::size(kGoldenTraffic));
    }

    SweepOptions opts;
    Sweep sweep(opts, "golden-f13");
    for (const std::string &name : names)
        for (SchemeKind k : kTrafficSchemes)
            sweep.add(name, makeConfig(k), /*scale=*/1);
    sweep.run();
    sweep.requireAllSound();

    std::size_t cell = 0;
    for (std::size_t b = 0; b < names.size(); ++b) {
        unsigned long long got[4][2];
        for (int s = 0; s < 4; ++s) {
            const sim::RunResult &r = sweep[cell++];
            got[s][0] = r.trafficPackets;
            got[s][1] = r.trafficWords;
        }
        if (print) {
            std::fprintf(stderr,
                         "GOLDEN     {\"%s\", {{%llu, %llu}, {%llu, %llu}, "
                         "{%llu, %llu}, {%llu, %llu}}},\n",
                         names[b].c_str(), got[0][0], got[0][1], got[1][0],
                         got[1][1], got[2][0], got[2][1], got[3][0],
                         got[3][1]);
            continue;
        }
        EXPECT_EQ(names[b], kGoldenTraffic[b].benchmark);
        for (int s = 0; s < 4; ++s) {
            EXPECT_EQ(got[s][0], kGoldenTraffic[b].traffic[s][0])
                << names[b] << " under " << schemeName(kTrafficSchemes[s])
                << ": Figure 13 packet count moved (exact freeze; "
                   "regenerate if intentional)";
            EXPECT_EQ(got[s][1], kGoldenTraffic[b].traffic[s][1])
                << names[b] << " under " << schemeName(kTrafficSchemes[s])
                << ": Figure 13 word count moved (exact freeze; "
                   "regenerate if intentional)";
        }
    }
}
