/** @file Tests for the consistency-model and topology options. */

#include <gtest/gtest.h>

#include "hir/builder.hh"
#include "network/kruskal_snir.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::sim;

namespace {

compiler::CompiledProgram &
writeHeavy()
{
    static compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::buildTrfd(1));
    return cp;
}

} // namespace

TEST(Consistency, SequentialStallsWriteThroughSchemes)
{
    for (SchemeKind k :
         {SchemeKind::SC, SchemeKind::TPI, SchemeKind::VC})
    {
        MachineConfig weak;
        weak.scheme = k;
        weak.procs = 4;
        MachineConfig seq = weak;
        seq.sequentialConsistency = true;
        RunResult rw = simulate(writeHeavy(), weak);
        RunResult rs = simulate(writeHeavy(), seq);
        EXPECT_EQ(rs.oracleViolations, 0u) << schemeName(k);
        // Every store now stalls for its full latency. SC's marked-read
        // misses already dominate its time, so its ratio is smaller.
        Cycles floor = k == SchemeKind::SC ? rw.cycles * 5 / 4
                                           : rw.cycles * 2;
        EXPECT_GT(rs.cycles, floor) << schemeName(k);
        EXPECT_EQ(rs.readMisses, rw.readMisses)
            << "consistency changes timing, not hits";
    }
}

TEST(Consistency, DirectoryLeastAffected)
{
    MachineConfig weak;
    weak.scheme = SchemeKind::HW;
    weak.procs = 4;
    MachineConfig seq = weak;
    seq.sequentialConsistency = true;
    RunResult rw = simulate(writeHeavy(), weak);
    RunResult rs = simulate(writeHeavy(), seq);
    double hw_ratio = double(rs.cycles) / double(rw.cycles);

    MachineConfig tweak = weak;
    tweak.scheme = SchemeKind::TPI;
    MachineConfig tseq = tweak;
    tseq.sequentialConsistency = true;
    double tpi_ratio = double(simulate(writeHeavy(), tseq).cycles) /
                       double(simulate(writeHeavy(), tweak).cycles);
    EXPECT_LT(hw_ratio, tpi_ratio)
        << "write-back hits in M keep HW cheaper under SC consistency";
}

TEST(Consistency, WeakModelWaitsAtBarriers)
{
    // Under weak consistency a write's latency is still paid at the next
    // boundary if nothing else covers it: a write-only program cannot be
    // faster than its drain time.
    hir::ProgramBuilder b;
    b.array("A", {64});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 63, [&] { b.write("A", {b.v("i")}); });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig cfg;
    cfg.procs = 4;
    cfg.scheme = SchemeKind::TPI;
    RunResult r = simulate(cp, cfg);
    EXPECT_GE(r.cycles, cfg.writeLatencyCycles)
        << "the final barrier drains the write buffer";
}

TEST(Topology, TorusHopCount)
{
    stats::StatGroup root("r");
    // 64 procs: k = 4, hops = ceil(3*4/4) = 3.
    net::Network t64(&root, 64, 2, 0.95, Topology::Torus3D);
    EXPECT_EQ(t64.stages(), 3u);
    // 512 procs: k = 8, hops = 6.
    net::Network t512(&root, 512, 2, 0.95, Topology::Torus3D);
    EXPECT_EQ(t512.stages(), 6u);
    EXPECT_EQ(t64.topology(), Topology::Torus3D);
}

TEST(Topology, ParseAndName)
{
    EXPECT_EQ(parseTopology("t3d"), Topology::Torus3D);
    EXPECT_EQ(parseTopology("MIN"), Topology::MIN);
    EXPECT_THROW(parseTopology("hypercube"), FatalError);
    EXPECT_STREQ(topologyName(Topology::Torus3D), "torus3d");
}

TEST(Topology, BothTopologiesCoherent)
{
    for (Topology topo : {Topology::MIN, Topology::Torus3D}) {
        MachineConfig cfg;
        cfg.scheme = SchemeKind::TPI;
        cfg.procs = 8;
        cfg.topology = topo;
        RunResult r = simulate(writeHeavy(), cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << topologyName(topo);
    }
}

TEST(Topology, ContentionStillMonotone)
{
    stats::StatGroup root("r");
    net::Network n(&root, 64, 2, 0.95, Topology::Torus3D);
    n.addTraffic(64 * 100, 0);
    n.endWindow(1000); // rho = 0.1
    double low = n.traversalWait();
    n.addTraffic(64 * 600, 0);
    n.endWindow(2000); // rho = 0.6
    EXPECT_GT(n.traversalWait(), low);
}
