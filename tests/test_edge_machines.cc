/** @file Degenerate machine shapes every scheme must still handle. */

#include <gtest/gtest.h>

#include "hir/builder.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::sim;

namespace {

compiler::CompiledProgram &
mixed()
{
    static compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microReduction(48, 2));
    return cp;
}

compiler::CompiledProgram &
jacobi()
{
    static compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microJacobi(96, 3));
    return cp;
}

} // namespace

TEST(EdgeMachines, SingleProcessorRunsEverything)
{
    for (SchemeKind k : {SchemeKind::Base, SchemeKind::SC, SchemeKind::VC,
                         SchemeKind::TPI, SchemeKind::HW})
    {
        MachineConfig cfg;
        cfg.scheme = k;
        cfg.procs = 1;
        RunResult r = simulate(jacobi(), cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << schemeName(k);
        EXPECT_GT(r.reads, 0u);
    }
}

TEST(EdgeMachines, SingleProcessorTpiStillSelfCoherent)
{
    // With one processor nothing can be stale, but Time-Reads still run
    // the tag machinery; conservative misses are allowed, wrong values
    // are not.
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 1;
    cfg.timetagBits = 2;
    RunResult r = simulate(mixed(), cfg);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(EdgeMachines, NonPowerOfTwoProcessorCounts)
{
    for (unsigned procs : {3u, 5u, 7u, 13u}) {
        MachineConfig cfg;
        cfg.scheme = SchemeKind::TPI;
        cfg.procs = procs;
        RunResult r = simulate(jacobi(), cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << procs << " procs";
        EXPECT_EQ(r.doallViolations, 0u);
    }
}

TEST(EdgeMachines, SingleWordLinesHaveNoSideFills)
{
    // 4-byte lines: no side-filled words, no spatial hits, no false
    // sharing anywhere.
    for (SchemeKind k : {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
    {
        MachineConfig cfg;
        cfg.scheme = k;
        cfg.procs = 4;
        cfg.lineBytes = 4;
        RunResult r = simulate(jacobi(), cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << schemeName(k);
        EXPECT_EQ(r.missFalseShare, 0u)
            << "one word per line cannot false-share";
    }
}

TEST(EdgeMachines, MoreProcessorsThanIterations)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microJacobi(16, 2));
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 32; // DOALLs have 14 iterations: most processors idle
    RunResult r = simulate(cp, cfg);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(EdgeMachines, TinyCacheThrashesButStaysCoherent)
{
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 4;
    cfg.cacheBytes = 128; // 8 lines
    RunResult r = simulate(jacobi(), cfg);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_GT(r.missReplacement, 0u);
}

TEST(EdgeMachines, HighAssociativityEqualsFullyAssociativeSets)
{
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 4;
    cfg.cacheBytes = 1024;
    cfg.assoc = 64; // 1 set of 64 ways
    RunResult r = simulate(jacobi(), cfg);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(EdgeMachines, SixtyFourProcessorsAllSchemes)
{
    for (SchemeKind k : {SchemeKind::SC, SchemeKind::VC, SchemeKind::TPI,
                         SchemeKind::HW})
    {
        MachineConfig cfg;
        cfg.scheme = k;
        cfg.procs = 64;
        RunResult r = simulate(jacobi(), cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << schemeName(k);
    }
}

TEST(EdgeMachines, DirectoryRejectsOver64Procs)
{
    compiler::CompiledProgram &cp = jacobi();
    MachineConfig cfg;
    cfg.scheme = SchemeKind::HW;
    cfg.procs = 65;
    EXPECT_THROW(Machine(cp, cfg), PanicError)
        << "full-map presence bits are 64-wide here";
}

TEST(EdgeMachines, EmptyProgramTerminates)
{
    hir::ProgramBuilder b;
    b.proc("MAIN", [&] {});
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    RunResult r = simulate(cp, cfg);
    EXPECT_EQ(r.reads, 0u);
    EXPECT_EQ(r.epochs, 0u);
}

TEST(EdgeMachines, ComputeOnlyProgramCostsItsCycles)
{
    hir::ProgramBuilder b;
    b.proc("MAIN", [&] { b.compute(123); });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    RunResult r = simulate(cp, cfg);
    EXPECT_EQ(r.cycles, 123u);
}
