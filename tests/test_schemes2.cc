/** @file Additional scheme-level edge-case and regression tests. */

#include <gtest/gtest.h>

#include "mem/base_scheme.hh"
#include "mem/coherence.hh"
#include "mem/directory_scheme.hh"
#include "mem/sc_scheme.hh"
#include "mem/tpi_scheme.hh"

using namespace hscd;
using namespace hscd::mem;
using compiler::MarkKind;

namespace {

struct Rig
{
    explicit Rig(MachineConfig c = {})
        : cfg(std::move(c)), root("m"), memory(1 << 20),
          network(&root, cfg.procs, cfg.networkRadix, cfg.maxNetworkLoad),
          scheme(makeScheme(cfg, memory, network, &root))
    {
    }

    AccessResult
    read(ProcId p, Addr a, MarkKind mark = MarkKind::Normal,
         std::uint32_t d = 0)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.mark = mark;
        op.distance = d;
        op.now = ++now;
        return scheme->access(op);
    }

    AccessResult
    write(ProcId p, Addr a, bool critical = false)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.write = true;
        op.stamp = ++stamp;
        op.critical = critical;
        op.now = ++now;
        return scheme->access(op);
    }

    Cycles boundary() { return scheme->epochBoundary(++epoch); }

    MachineConfig cfg;
    stats::StatGroup root;
    MainMemory memory;
    net::Network network;
    std::unique_ptr<CoherenceScheme> scheme;
    Cycles now = 0;
    ValueStamp stamp = 0;
    EpochId epoch = 0;
};

MachineConfig
withScheme(SchemeKind k)
{
    MachineConfig c;
    c.scheme = k;
    return c;
}

} // namespace

// Regression: the epoch-0 boot condition found by the fuzzer. A word
// side-filled in epoch 0 has no representable "EC - 1" timetag and must
// come up invalid, or a later exact-distance Time-Read hits stale data.
TEST(TpiEpochZero, SideFillInEpochZeroCannotServeTimeRead)
{
    Rig rig(withScheme(SchemeKind::TPI));
    // Epoch 0: P1 fills the line via word 0; word 1 is side-filled.
    rig.read(1, 0x100);
    // Epoch 0: P0 (the word's epoch owner) writes word 1 afterwards.
    rig.write(0, 0x104);
    rig.boundary(); // epoch 1
    // Exact marking: last write was in epoch 0, one boundary back.
    auto r = rig.read(1, 0x104, MarkKind::TimeRead, 1);
    EXPECT_EQ(r.observed, 1u) << "P1 must see P0's write, not the stale "
                                 "side-filled copy from the fill race";
}

TEST(TpiEpochZero, CriticalWriteInEpochZeroNotVouched)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.write(0, 0x100, true);  // lock-ordered write, epoch 0
    rig.write(1, 0x100, true);  // second lock owner, same epoch
    rig.boundary();
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, 1);
    EXPECT_EQ(r.observed, 2u) << "P0's copy predates P1's lock-ordered "
                                 "write and must not hit";
}

TEST(TpiCritical, CriticalWriteVouchedOnlyToPreviousEpoch)
{
    Rig rig(withScheme(SchemeKind::TPI));
    rig.boundary(); // epoch 1
    rig.write(0, 0x100, true);
    // Same epoch, d=0: must miss (tt == EC-1 < EC).
    EXPECT_FALSE(rig.read(0, 0x100, MarkKind::TimeRead, 0).hit);
    // d=1 may hit: the copy is vouched through epoch 0.
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, 1).hit);
}

TEST(TpiScheme2, NormalReadMissOnTagResetWordRefills)
{
    MachineConfig c = withScheme(SchemeKind::TPI);
    c.timetagBits = 2; // phase 2
    Rig rig(c);
    rig.read(0, 0x100);
    for (int i = 0; i < 8; ++i)
        rig.boundary();
    auto r = rig.read(0, 0x100); // word was invalidated by resets
    EXPECT_FALSE(r.hit);
    // The refill restores normal service.
    EXPECT_TRUE(rig.read(0, 0x100).hit);
}

TEST(TpiScheme2, EvictionClassifiedAsReplacement)
{
    MachineConfig c = withScheme(SchemeKind::TPI);
    c.cacheBytes = 256;
    c.lineBytes = 16;
    Rig rig(c);
    rig.read(0, 0x0);
    rig.read(0, 0x100); // conflicts in the 256-byte cache
    auto r = rig.read(0, 0x0);
    EXPECT_EQ(r.cls, MissClass::Replacement);
}

TEST(TpiScheme2, TimeReadMissRefillsInPlaceWithoutDuplicates)
{
    MachineConfig c = withScheme(SchemeKind::TPI);
    c.assoc = 2;
    Rig rig(c);
    rig.read(0, 0x100); // epoch 0 fill
    rig.boundary();
    rig.boundary();
    // d=1 misses (tt too old) and must refill the SAME frame.
    EXPECT_FALSE(rig.read(0, 0x100, MarkKind::TimeRead, 1).hit);
    rig.boundary();
    rig.write(1, 0x100); // epoch 3
    rig.boundary();
    // If a duplicate frame existed, this could hit the stale one.
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, 1);
    EXPECT_EQ(r.observed, 1u);
}

TEST(Directory2, EvictionUpdatesPresenceBits)
{
    MachineConfig c = withScheme(SchemeKind::HW);
    c.cacheBytes = 256;
    c.lineBytes = 16;
    Rig rig(c);
    rig.read(0, 0x100);
    auto *d = dynamic_cast<DirectoryScheme *>(rig.scheme.get());
    EXPECT_EQ(d->dirEntry(0x100).sharers, 1u);
    rig.read(0, 0x200); // evicts 0x100 (clean)
    EXPECT_EQ(d->dirEntry(0x100).sharers, 0u);
    EXPECT_EQ(d->dirEntry(0x100).state, DirEntry::State::Uncached);
}

TEST(Directory2, DirtyEvictionLeavesMemoryCurrent)
{
    MachineConfig c = withScheme(SchemeKind::HW);
    c.cacheBytes = 256;
    c.lineBytes = 16;
    Rig rig(c);
    rig.write(0, 0x100);
    rig.write(0, 0x104);
    rig.read(0, 0x200); // evict the dirty line
    EXPECT_EQ(rig.memory.read(0x100), 1u);
    EXPECT_EQ(rig.memory.read(0x104), 2u);
    auto *d = dynamic_cast<DirectoryScheme *>(rig.scheme.get());
    EXPECT_EQ(d->dirEntry(0x100).state, DirEntry::State::Uncached);
    // A later remote read needs no forward.
    auto r = rig.read(1, 0x100);
    EXPECT_EQ(r.observed, 1u);
    EXPECT_LT(r.stall, rig.cfg.baseMissCycles +
                           rig.cfg.dirtyMissExtraCycles);
}

TEST(Directory2, WriteMissToSharedLineInvalidatesAll)
{
    Rig rig(withScheme(SchemeKind::HW));
    rig.read(1, 0x100);
    rig.read(2, 0x100);
    rig.read(3, 0x100);
    rig.write(0, 0x100); // write miss, 3 sharers to invalidate
    EXPECT_EQ(rig.scheme->stats().invalidationsSent.value(), 3u);
    auto *d = dynamic_cast<DirectoryScheme *>(rig.scheme.get());
    EXPECT_EQ(d->dirEntry(0x100).state, DirEntry::State::Modified);
    EXPECT_EQ(d->dirEntry(0x100).owner, 0u);
    EXPECT_FALSE(rig.read(1, 0x100).hit);
}

TEST(Directory2, WriteMissToModifiedLineForwards)
{
    Rig rig(withScheme(SchemeKind::HW));
    rig.write(0, 0x100);
    rig.write(1, 0x104); // same line, write miss while P0 owns it
    EXPECT_EQ(rig.memory.read(0x100), 1u) << "owner flushed";
    auto *d = dynamic_cast<DirectoryScheme *>(rig.scheme.get());
    EXPECT_EQ(d->dirEntry(0x100).owner, 1u);
    auto r = rig.read(2, 0x100);
    EXPECT_EQ(r.observed, 1u);
}

TEST(Directory2, AccessedMaskDrivesClassification)
{
    Rig rig(withScheme(SchemeKind::HW));
    // P1 reads words 0 and 1 of the line.
    rig.read(1, 0x100);
    rig.read(1, 0x104);
    // P0 writes word 1: P1 used it -> true sharing.
    rig.write(0, 0x104);
    EXPECT_EQ(rig.read(1, 0x100).cls, MissClass::TrueShare);
}

TEST(Base2, MigrationDrainClearsCoalescingState)
{
    MachineConfig c = withScheme(SchemeKind::Base);
    c.writeBufferAsCache = true;
    Rig rig(c);
    rig.write(0, 0x100);
    rig.write(0, 0x100);
    EXPECT_EQ(rig.scheme->stats().writePackets.value(), 1u);
    rig.scheme->migrationDrain(0);
    rig.write(0, 0x100);
    EXPECT_EQ(rig.scheme->stats().writePackets.value(), 2u)
        << "after the drain the write must go out again";
}

TEST(Sc2, MarkedReadOfAbsentLineIsColdNotConservative)
{
    Rig rig(withScheme(SchemeKind::SC));
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, 1);
    EXPECT_EQ(r.cls, MissClass::Cold);
}

TEST(Sc2, BypassMarkAlsoRefetches)
{
    Rig rig(withScheme(SchemeKind::SC));
    rig.read(0, 0x100);
    auto r = rig.read(0, 0x100, MarkKind::Bypass);
    EXPECT_FALSE(r.hit);
}

TEST(DirNb, FullMapHasNoOverflowPenalty)
{
    Rig rig(withScheme(SchemeKind::HW)); // directoryPtrs = 0: full map
    Cycles first = rig.read(0, 0x100).stall;
    for (ProcId p = 1; p < 8; ++p) {
        auto r = rig.read(p, 0x100);
        EXPECT_LE(r.stall, first + 2) << "no pointer overflow in full map";
    }
}

TEST(DirNb, OverflowRecoversWhenSharersCollapse)
{
    MachineConfig c = withScheme(SchemeKind::HW);
    c.directoryPtrs = 2;
    Rig rig(c);
    rig.read(0, 0x100);
    rig.read(1, 0x100);
    auto over = rig.read(2, 0x100); // third sharer overflows 2 pointers
    EXPECT_GE(over.stall, rig.cfg.baseMissCycles +
                              rig.cfg.directoryOverflowCycles);
    rig.write(3, 0x100); // invalidate all; sharers collapse to {3}
    // Owner + one reader = 2 sharers: fits the pointers again; the dirty
    // forward dominates but no overflow penalty applies.
    auto r = rig.read(0, 0x100);
    EXPECT_LT(r.stall, rig.cfg.baseMissCycles +
                           rig.cfg.dirtyMissExtraCycles +
                           rig.cfg.directoryOverflowCycles);
}
