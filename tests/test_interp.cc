/** @file Unit tests for the resumable task-stream interpreter. */

#include <gtest/gtest.h>

#include "hir/builder.hh"
#include "sim/interp.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::sim;

namespace {

std::vector<TaskOp>
drain(TaskStream &s, std::size_t limit = 10000)
{
    std::vector<TaskOp> ops;
    while (ops.size() < limit) {
        TaskOp op = s.next();
        if (op.kind == TaskOp::Kind::End)
            break;
        ops.push_back(op);
    }
    return ops;
}

} // namespace

TEST(Interp, StraightLineOps)
{
    ProgramBuilder b;
    b.array("A", {16});
    b.proc("MAIN", [&] {
        b.read("A", {b.c(3)});
        b.compute(7);
        b.write("A", {b.c(3)});
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[0].kind, TaskOp::Kind::Ref);
    EXPECT_FALSE(ops[0].write);
    EXPECT_EQ(ops[0].addr, p.elementAddr(0, {3}));
    EXPECT_EQ(ops[1].kind, TaskOp::Kind::Compute);
    EXPECT_EQ(ops[1].cycles, 7u);
    EXPECT_TRUE(ops[2].write);
    EXPECT_EQ(s.next().kind, TaskOp::Kind::End);
}

TEST(Interp, SerialLoopIterates)
{
    ProgramBuilder b;
    b.array("A", {16});
    b.proc("MAIN", [&] {
        b.doserial("k", 2, 6, [&] { b.write("A", {b.v("k")}); }, 2);
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 3u); // k = 2, 4, 6
    EXPECT_EQ(ops[0].addr, p.elementAddr(0, {2}));
    EXPECT_EQ(ops[1].addr, p.elementAddr(0, {4}));
    EXPECT_EQ(ops[2].addr, p.elementAddr(0, {6}));
}

TEST(Interp, ZeroTripLoopSkipped)
{
    ProgramBuilder b;
    b.param("N", 0);
    b.array("A", {16});
    b.proc("MAIN", [&] {
        b.doserial("k", 0, b.p("N") - 1, [&] { b.write("A", {b.v("k")}); });
        b.compute(1);
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].kind, TaskOp::Kind::Compute);
}

TEST(Interp, NestedLoopOrder)
{
    ProgramBuilder b;
    b.array("A", {4, 4});
    b.proc("MAIN", [&] {
        b.doserial("i", 0, 1, [&] {
            b.doserial("j", 0, 1, [&] {
                b.write("A", {b.v("i"), b.v("j")});
            });
        });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].addr, p.elementAddr(0, {0, 0}));
    EXPECT_EQ(ops[1].addr, p.elementAddr(0, {0, 1}));
    EXPECT_EQ(ops[2].addr, p.elementAddr(0, {1, 0}));
    EXPECT_EQ(ops[3].addr, p.elementAddr(0, {1, 1}));
}

TEST(Interp, DoallYieldsBeginWithEvaluatedBounds)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.compute(1);
        b.doall("i", 0, b.p("N") - 1, [&] { b.write("A", {b.v("i")}); });
        b.compute(2);
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    EXPECT_EQ(s.next().kind, TaskOp::Kind::Compute);
    TaskOp d = s.next();
    ASSERT_EQ(d.kind, TaskOp::Kind::BeginDoall);
    EXPECT_EQ(d.lo, 0);
    EXPECT_EQ(d.hi, 7);
    EXPECT_EQ(d.step, 1);
    ASSERT_NE(d.doall, nullptr);
    // Master skips the body and resumes after the loop.
    TaskOp after = s.next();
    EXPECT_EQ(after.kind, TaskOp::Kind::Compute);
    EXPECT_EQ(after.cycles, 2u);
    EXPECT_EQ(s.next().kind, TaskOp::Kind::End);
}

TEST(Interp, TaskModeRunsAssignedIterations)
{
    ProgramBuilder b;
    b.array("A", {16});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.read("A", {b.v("i")});
            b.write("A", {b.v("i")});
        });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream master(p, ctx, p.main().body);
    TaskOp d = master.next();
    ASSERT_EQ(d.kind, TaskOp::Kind::BeginDoall);

    TaskStream task(p, ctx, *d.doall, master.env());
    task.addIteration(3);
    task.addIteration(7);
    auto ops = drain(task);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].addr, p.elementAddr(0, {3}));
    EXPECT_EQ(ops[1].addr, p.elementAddr(0, {3}));
    EXPECT_EQ(ops[2].addr, p.elementAddr(0, {7}));
    EXPECT_TRUE(ops[3].write);
}

TEST(Interp, TaskStreamCurrentIteration)
{
    ProgramBuilder b;
    b.array("A", {16});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream master(p, ctx, p.main().body);
    TaskOp d = master.next();
    TaskStream task(p, ctx, *d.doall, master.env());
    EXPECT_EQ(task.currentIteration(), -1);
    task.addIteration(5);
    task.next();
    EXPECT_EQ(task.currentIteration(), 5);
}

TEST(Interp, DynamicIterationAppend)
{
    ProgramBuilder b;
    b.array("A", {16});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream master(p, ctx, p.main().body);
    TaskOp d = master.next();
    TaskStream task(p, ctx, *d.doall, master.env());
    task.addIteration(0);
    EXPECT_EQ(task.next().kind, TaskOp::Kind::Ref);
    EXPECT_EQ(task.next().kind, TaskOp::Kind::End);
    task.addIteration(9);
    TaskOp op = task.next();
    ASSERT_EQ(op.kind, TaskOp::Kind::Ref);
    EXPECT_EQ(op.addr, p.elementAddr(0, {9}));
}

TEST(Interp, NestedDoallDemotedInsideTask)
{
    ProgramBuilder b;
    b.array("A", {4, 4});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] {
            b.doall("j", 0, 3, [&] {
                b.write("A", {b.v("j"), b.v("i")});
            });
        });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream master(p, ctx, p.main().body);
    TaskOp d = master.next();
    TaskStream task(p, ctx, *d.doall, master.env());
    task.addIteration(2);
    auto ops = drain(task);
    ASSERT_EQ(ops.size(), 4u) << "inner DOALL executes serially in-task";
    EXPECT_EQ(ops[1].addr, p.elementAddr(0, {1, 2}));
}

TEST(Interp, CriticalEmitsLockPairs)
{
    ProgramBuilder b;
    b.array("S", {4});
    b.proc("MAIN", [&] {
        b.critical([&] {
            b.read("S", {b.c(0)});
            b.write("S", {b.c(0)});
        });
        b.compute(1);
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[0].kind, TaskOp::Kind::LockAcquire);
    EXPECT_EQ(ops[1].kind, TaskOp::Kind::Ref);
    EXPECT_EQ(ops[2].kind, TaskOp::Kind::Ref);
    EXPECT_EQ(ops[3].kind, TaskOp::Kind::LockRelease);
    EXPECT_EQ(ops[4].kind, TaskOp::Kind::Compute);
}

TEST(Interp, BarrierYieldedAtTopLevel)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.compute(1);
        b.barrier();
        b.compute(2);
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_EQ(ops[1].kind, TaskOp::Kind::Barrier);
}

TEST(Interp, IfAlternatePolicy)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 3, [&] {
            b.ifUnknown(hir::TakePolicy::Alternate,
                        [&] { b.compute(1); },
                        [&] { b.compute(2); });
        });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].cycles, 1u);
    EXPECT_EQ(ops[1].cycles, 2u);
    EXPECT_EQ(ops[2].cycles, 1u);
    EXPECT_EQ(ops[3].cycles, 2u);
}

TEST(Interp, IfAlwaysAndNever)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.ifUnknown(hir::TakePolicy::Always, [&] { b.compute(1); },
                    [&] { b.compute(2); });
        b.ifUnknown(hir::TakePolicy::Never, [&] { b.compute(3); },
                    [&] { b.compute(4); });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].cycles, 1u);
    EXPECT_EQ(ops[1].cycles, 4u);
}

TEST(Interp, CallExecutesCallee)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.call("SUB");
        b.compute(9);
    });
    b.proc("SUB", [&] { b.write("A", {b.c(1)}); });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    // Calls bracket the callee with CallBoundary markers (used by the
    // prior-work flush-at-calls mode).
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].kind, TaskOp::Kind::CallBoundary);
    EXPECT_EQ(ops[1].kind, TaskOp::Kind::Ref);
    EXPECT_EQ(ops[2].kind, TaskOp::Kind::CallBoundary);
    EXPECT_EQ(ops[3].cycles, 9u);
}

TEST(Interp, UnknownSubscriptInBounds)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 31, [&] { b.read("A", {b.unknown()}); });
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    Addr base = p.array(0).base;
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 32u);
    for (const TaskOp &op : ops) {
        EXPECT_GE(op.addr, base);
        EXPECT_LT(op.addr, base + 8 * 4);
    }
}

TEST(Interp, LoopVarRestoredAfterLoop)
{
    ProgramBuilder b;
    b.param("k", 99);
    b.array("A", {128});
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 3, [&] { b.compute(1); });
        b.read("A", {b.v("k")}); // sees the param again
    });
    Program p = b.build();
    RunCtx ctx;
    TaskStream s(p, ctx, p.main().body);
    auto ops = drain(s);
    ASSERT_EQ(ops.size(), 5u);
    EXPECT_EQ(ops[4].addr, p.elementAddr(0, {99}));
}
