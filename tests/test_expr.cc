/** @file Unit tests for affine integer expressions. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "hir/expr.hh"

using namespace hscd;
using namespace hscd::hir;

TEST(Env, BindLookupUnbind)
{
    Env e;
    EXPECT_FALSE(e.lookup("i").has_value());
    e.bind("i", 3);
    EXPECT_EQ(*e.lookup("i"), 3);
    e.bind("i", 5);
    EXPECT_EQ(*e.lookup("i"), 5);
    e.unbind("i");
    EXPECT_FALSE(e.lookup("i").has_value());
}

TEST(Env, HashOrderInsensitive)
{
    Env a, b;
    a.bind("i", 1);
    a.bind("j", 2);
    b.bind("j", 2);
    b.bind("i", 1);
    EXPECT_EQ(a.mixHash(7), b.mixHash(7));
    b.bind("k", 3);
    EXPECT_NE(a.mixHash(7), b.mixHash(7));
}

TEST(IntExpr, ConstantBasics)
{
    IntExpr e = IntExpr::constant(5);
    EXPECT_TRUE(e.isConstant());
    EXPECT_EQ(e.constantValue(), 5);
    Env env;
    EXPECT_EQ(e.eval(env), 5);
}

TEST(IntExpr, AffineArithmetic)
{
    IntExpr i = IntExpr::var("i");
    IntExpr j = IntExpr::var("j");
    IntExpr e = i * 2 + j - 1;
    EXPECT_EQ(e.coeff("i"), 2);
    EXPECT_EQ(e.coeff("j"), 1);
    EXPECT_EQ(e.coeff("k"), 0);
    Env env;
    env.bind("i", 10);
    env.bind("j", 3);
    EXPECT_EQ(e.eval(env), 22);
}

TEST(IntExpr, TermsCancel)
{
    IntExpr i = IntExpr::var("i");
    IntExpr e = (i * 3) - (i * 3) + 7;
    EXPECT_TRUE(e.isConstant());
    EXPECT_EQ(e.constantValue(), 7);
}

TEST(IntExpr, ExprPlusExpr)
{
    IntExpr e = IntExpr::var("i") + IntExpr::var("j") + IntExpr::var("i");
    EXPECT_EQ(e.coeff("i"), 2);
    EXPECT_EQ(e.coeff("j"), 1);
}

TEST(IntExpr, Equality)
{
    IntExpr a = IntExpr::var("i") + 1;
    IntExpr b = IntExpr::var("i") + 1;
    IntExpr c = IntExpr::var("i") + 2;
    IntExpr d = IntExpr::var("j") + 1;
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
    EXPECT_FALSE(a == d);
}

TEST(IntExpr, ConstantDifference)
{
    IntExpr a = IntExpr::var("i") + 4;
    IntExpr b = IntExpr::var("i") + 1;
    auto d = a.constantDifference(b);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 3);

    IntExpr c = IntExpr::var("j") + 1;
    EXPECT_FALSE(a.constantDifference(c).has_value());

    IntExpr u = IntExpr::unknown(0) + 1;
    EXPECT_FALSE(u.constantDifference(b).has_value());
    EXPECT_FALSE(b.constantDifference(u).has_value());
}

TEST(IntExpr, UnknownEvaluatesDeterministically)
{
    IntExpr u = IntExpr::unknown(3);
    Env env;
    env.bind("i", 4);
    std::int64_t v1 = u.eval(env, 100);
    std::int64_t v2 = u.eval(env, 100);
    EXPECT_EQ(v1, v2);
    EXPECT_GE(v1, 0);
    EXPECT_LT(v1, 100);
    env.bind("i", 5);
    // Very likely different; at minimum still in range.
    std::int64_t v3 = u.eval(env, 100);
    EXPECT_GE(v3, 0);
    EXPECT_LT(v3, 100);
}

TEST(IntExpr, UnknownsWithDifferentIdsDiffer)
{
    Env env;
    env.bind("i", 1);
    int same = 0;
    for (std::uint32_t id = 0; id < 16; id += 2) {
        if (IntExpr::unknown(id).eval(env, 1 << 20) ==
            IntExpr::unknown(id + 1).eval(env, 1 << 20))
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(IntExpr, HasUnknownPropagates)
{
    IntExpr u = IntExpr::unknown(1) + IntExpr::var("i");
    EXPECT_TRUE(u.hasUnknown());
    EXPECT_FALSE((IntExpr::var("i") + 3).hasUnknown());
}

TEST(IntExpr, RangeAnalysis)
{
    IntExpr e = IntExpr::var("i") * 2 - IntExpr::var("j") + 5;
    std::map<std::string, Range> ranges{
        {"i", {0, 10}},
        {"j", {1, 3}},
    };
    auto r = e.range(ranges);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->lo, 0 * 2 - 3 + 5);
    EXPECT_EQ(r->hi, 10 * 2 - 1 + 5);
}

TEST(IntExpr, RangeUnboundVarFails)
{
    IntExpr e = IntExpr::var("i");
    std::map<std::string, Range> ranges;
    EXPECT_FALSE(e.range(ranges).has_value());
}

TEST(IntExpr, RangeUnknownFails)
{
    std::map<std::string, Range> ranges{{"i", {0, 4}}};
    EXPECT_FALSE(IntExpr::unknown(0).range(ranges).has_value());
}

TEST(IntExpr, Substitute)
{
    IntExpr e = IntExpr::var("i") * 3 + IntExpr::var("N") + 1;
    IntExpr s = e.substitute("N", 64);
    EXPECT_EQ(s.coeff("N"), 0);
    Env env;
    env.bind("i", 2);
    EXPECT_EQ(s.eval(env), 3 * 2 + 64 + 1);
}

TEST(IntExpr, EvalUnboundPanics)
{
    IntExpr e = IntExpr::var("i");
    Env env;
    EXPECT_THROW(e.eval(env), PanicError);
}

TEST(IntExpr, StrRendering)
{
    EXPECT_EQ(IntExpr::constant(0).str(), "0");
    EXPECT_EQ(IntExpr::constant(-4).str(), "-4");
    EXPECT_EQ((IntExpr::var("i") * 2 + 1).str(), "2*i + 1");
    EXPECT_EQ((IntExpr::var("i") - 1).str(), "i - 1");
    EXPECT_EQ((IntExpr::constant(0) - IntExpr::var("i")).str(), "-i");
}

TEST(IntExpr, MulByZeroAndNegative)
{
    IntExpr e = (IntExpr::var("i") + 3) * 0;
    EXPECT_TRUE(e.isConstant());
    EXPECT_EQ(e.constantValue(), 0);
    IntExpr n = (IntExpr::var("i") + 3) * -2;
    EXPECT_EQ(n.coeff("i"), -2);
    EXPECT_EQ(n.constantValue(), -6);
}
