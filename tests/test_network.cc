/** @file Unit tests for the Kruskal-Snir network model. */

#include <gtest/gtest.h>

#include "network/kruskal_snir.hh"

using namespace hscd;
using namespace hscd::net;

TEST(Network, StageCount)
{
    stats::StatGroup root("root");
    EXPECT_EQ(Network(&root, 16, 2, 0.95).stages(), 4u);
    stats::StatGroup r2("r2");
    EXPECT_EQ(Network(&r2, 64, 4, 0.95).stages(), 3u);
    stats::StatGroup r3("r3");
    EXPECT_EQ(Network(&r3, 1, 2, 0.95).stages(), 1u);
    stats::StatGroup r4("r4");
    EXPECT_EQ(Network(&r4, 17, 2, 0.95).stages(), 5u);
}

TEST(Network, NoTrafficNoDelay)
{
    stats::StatGroup root("root");
    Network n(&root, 16, 2, 0.95);
    n.endWindow(1000);
    EXPECT_DOUBLE_EQ(n.load(), 0.0);
    EXPECT_EQ(n.contentionDelay(2), 0u);
}

TEST(Network, LoadComputation)
{
    stats::StatGroup root("root");
    Network n(&root, 16, 2, 0.95);
    n.addTraffic(1600, 1600);
    n.endWindow(1000); // 1600 packets / (1000 cycles * 16 ports) = 0.1
    EXPECT_NEAR(n.load(), 0.1, 1e-9);
}

TEST(Network, DelayMonotoneInLoad)
{
    double prev = -1;
    for (double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        stats::StatGroup root("root");
        Network n(&root, 16, 2, 0.95);
        n.addTraffic(static_cast<Counter>(target * 16 * 1000), 0);
        n.endWindow(1000);
        double w = n.traversalWait();
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(Network, KruskalSnirFormula)
{
    stats::StatGroup root("root");
    Network n(&root, 16, 2, 0.95);
    n.addTraffic(8000, 0); // rho = 0.5
    n.endWindow(1000);
    // w = rho(1-1/k)/(2(1-rho)) per stage = 0.5*0.5/(2*0.5) = 0.25;
    // 4 stages -> 1.0 per traversal.
    EXPECT_NEAR(n.traversalWait(), 1.0, 1e-9);
    EXPECT_EQ(n.contentionDelay(2), 2u);
}

TEST(Network, LoadClamped)
{
    stats::StatGroup root("root");
    Network n(&root, 16, 2, 0.95);
    n.addTraffic(1000000, 0);
    n.endWindow(10);
    EXPECT_LE(n.load(), 0.95);
    // Finite delay even at the clamp.
    EXPECT_LT(n.contentionDelay(2), 1000u);
}

TEST(Network, WindowsAreIndependent)
{
    stats::StatGroup root("root");
    Network n(&root, 16, 2, 0.95);
    n.addTraffic(1600, 0);
    n.endWindow(1000);
    EXPECT_NEAR(n.load(), 0.1, 1e-9);
    // Quiet second window.
    n.endWindow(2000);
    EXPECT_DOUBLE_EQ(n.load(), 0.0);
}

TEST(Network, TotalsAccumulate)
{
    stats::StatGroup root("root");
    Network n(&root, 16, 2, 0.95);
    n.addTraffic(10, 40);
    n.addTraffic(5, 20);
    EXPECT_EQ(n.totalPackets(), 15u);
    EXPECT_EQ(n.totalWords(), 60u);
}

TEST(Network, ZeroLengthWindowKeepsLoad)
{
    stats::StatGroup root("root");
    Network n(&root, 16, 2, 0.95);
    n.addTraffic(1600, 0);
    n.endWindow(1000);
    double before = n.load();
    n.endWindow(1000); // no time elapsed
    EXPECT_DOUBLE_EQ(n.load(), before);
}
