/**
 * @file
 * Unit tests for the TPI model checker (src/mc): configuration
 * validation, the action encoding, determinism of the explorer, the
 * symmetry reduction, and the model-vs-implementation cross-check that
 * replays model paths on the real TpiScheme.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mc/explorer.hh"
#include "mc/replay.hh"

using namespace hscd;
using namespace hscd::mc;

namespace {

McConfig
tiny()
{
    // Smallest legal machine: trimmed horizon keeps each explore fast
    // enough to run many times inside one test binary.
    McConfig cfg;
    cfg.opsPerEpoch = 1;
    cfg.horizonEpochs = 3;
    return cfg;
}

} // namespace

TEST(McConfig, ValidatesBounds)
{
    EXPECT_NO_THROW(tiny().validate());
    McConfig bad = tiny();
    bad.procs = 9;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = tiny();
    bad.timetagBits = 4;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = tiny();
    bad.lineWords = 3; // does not divide words = 2
    EXPECT_THROW(bad.validate(), FatalError);
    bad = tiny();
    bad.faultBudget = 3;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(McConfig, HorizonCoversOneFullWraparound)
{
    // The default horizon must see at least one complete reset cycle
    // (2^n epochs) plus one more epoch, at every supported width.
    for (unsigned bits = 1; bits <= 3; ++bits) {
        McConfig cfg;
        cfg.timetagBits = bits;
        EXPECT_GT(cfg.horizon(), 2u * (1u << bits)) << "bits=" << bits;
        EXPECT_EQ(cfg.phase(), 1u << (bits - 1));
        EXPECT_EQ(cfg.dmax(), (1u << bits) - 1);
    }
}

TEST(McAction, EncodeDecodeRoundTrips)
{
    Action a;
    a.kind = Action::Kind::Read;
    a.proc = 2;
    a.word = 3;
    a.mark = compiler::MarkKind::TimeRead;
    a.distance = 7;
    a.fault = Action::Fault::TagFlip;
    a.faultWord = 1;
    a.faultBit = 3;
    EXPECT_EQ(Action::decode(a.encode()), a);

    Action b;
    b.kind = Action::Kind::Barrier;
    b.fault = Action::Fault::EpochFlip;
    b.flushProc = 2;
    EXPECT_EQ(Action::decode(b.encode()), b);

    Action c;
    c.kind = Action::Kind::Write;
    c.proc = 1;
    c.critical = true;
    c.fault = Action::Fault::DropAbort;
    EXPECT_EQ(Action::decode(c.encode()), c);
}

TEST(McExplorer, TinyConfigExploresCleanAndDeterministically)
{
    const McConfig cfg = tiny();
    const ExploreResult a = explore(cfg);
    EXPECT_TRUE(a.clean());
    EXPECT_FALSE(a.cex.has_value());
    EXPECT_GT(a.states, 1u);
    EXPECT_GT(a.transitions, a.states - 1); // graph, not a tree
    EXPECT_GT(a.completed, 0u);
    EXPECT_EQ(a.aborted, 0u); // no faults: nothing can abort

    const ExploreResult b = explore(cfg);
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.transitions, b.transitions);
    EXPECT_EQ(a.maxDepth, b.maxDepth);
}

TEST(McExplorer, SymmetryReductionPreservesTheVerdict)
{
    const McConfig cfg = tiny();
    ExploreOptions sym;
    ExploreOptions nosym;
    nosym.symmetry = false;
    const ExploreResult with = explore(cfg, sym);
    const ExploreResult without = explore(cfg, nosym);
    EXPECT_TRUE(with.clean());
    EXPECT_TRUE(without.clean());
    // Quotienting by processor renaming must only merge states.
    EXPECT_LT(with.states, without.states);
    EXPECT_EQ(with.maxDepth, without.maxDepth);
}

TEST(McExplorer, FaultBudgetWidensTheStateSpaceAndStaysClean)
{
    McConfig cfg = tiny();
    const ExploreResult base = explore(cfg);
    cfg.faultBudget = 1;
    const ExploreResult faulted = explore(cfg);
    EXPECT_TRUE(faulted.clean());
    EXPECT_GT(faulted.states, base.states);
    // net.drop exhaustion paths must reach the structured-abort
    // terminal, and mem.epoch flushes must still complete.
    EXPECT_GT(faulted.aborted, 0u);
    EXPECT_GT(faulted.completed, 0u);
}

TEST(McExplorer, StateCapReportsBoundedNotClean)
{
    McConfig cfg; // full default horizon: far more than 50 states
    ExploreOptions opt;
    opt.maxStates = 50;
    const ExploreResult res = explore(cfg, opt);
    EXPECT_TRUE(res.hitStateCap);
    EXPECT_FALSE(res.clean());
    EXPECT_FALSE(res.cex.has_value());
}

TEST(McReplay, RandomWalksAgreeWithTpiScheme)
{
    // The emitter turns a model path into a trace + fault script; the
    // real TpiScheme replay must reproduce every modelled outcome.
    for (unsigned faults = 0; faults <= 1; ++faults) {
        McConfig cfg;
        cfg.faultBudget = faults;
        std::uint64_t compared = 0;
        for (std::uint64_t seed = 1; seed <= 16; ++seed) {
            const std::vector<Action> path = randomWalk(cfg, seed);
            const CheckReport rep = crossCheck(cfg, path);
            EXPECT_TRUE(rep.ok)
                << "faults=" << faults << " seed=" << seed << ": "
                << rep.detail;
            compared += rep.compared;
        }
        EXPECT_GT(compared, 0u) << "vacuous cross-check";
    }
}

TEST(McReplay, WiderGeometriesAlsoAgree)
{
    // One walk per larger shape: 3 processors, 2 lines, 2-bit tags.
    for (McConfig cfg : {[] { McConfig c; c.procs = 3; return c; }(),
                         [] {
                             McConfig c;
                             c.words = 4;
                             c.opsPerEpoch = 1;
                             return c;
                         }(),
                         [] {
                             McConfig c;
                             c.timetagBits = 2;
                             c.horizonEpochs = 6;
                             c.opsPerEpoch = 1;
                             c.faultBudget = 1;
                             return c;
                         }()})
    {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            const CheckReport rep = crossCheck(cfg, randomWalk(cfg, seed));
            EXPECT_TRUE(rep.ok) << cfg.str() << " seed=" << seed << ": "
                                << rep.detail;
        }
    }
}
