/** @file Unit tests for the ASCII table renderer. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/table.hh"

using namespace hscd;

TEST(TextTable, BasicShape)
{
    TextTable t;
    t.col("name", TextTable::Align::Left).col("value");
    t.row().cell("alpha").cell(std::uint64_t{42});
    t.row().cell("b").cell(std::uint64_t{7});
    const std::string s = t.str();
    EXPECT_NE(s.find("| name  | value |"), std::string::npos);
    EXPECT_NE(s.find("| alpha |    42 |"), std::string::npos);
    EXPECT_NE(s.find("| b     |     7 |"), std::string::npos);
}

TEST(TextTable, DoublePrecision)
{
    TextTable t;
    t.col("v");
    t.row().cell(3.14159, 3);
    EXPECT_NE(t.str().find("3.142"), std::string::npos);
}

TEST(TextTable, RuleSeparatesSections)
{
    TextTable t;
    t.col("x");
    t.row().cell("a");
    t.rule();
    t.row().cell("b");
    const std::string s = t.str();
    // header rule + top + bottom + middle = 4 horizontal rules
    std::size_t count = 0;
    for (std::size_t pos = s.find("+--"); pos != std::string::npos;
         pos = s.find("+--", pos + 1))
        ++count;
    EXPECT_EQ(count, 4u);
}

TEST(TextTable, MissingTrailingCellsRenderEmpty)
{
    TextTable t;
    t.col("a").col("b");
    t.row().cell("only");
    EXPECT_NE(t.str().find("| only |"), std::string::npos);
}

TEST(TextTable, TooManyCellsPanics)
{
    TextTable t;
    t.col("a");
    t.row().cell("1");
    EXPECT_THROW(t.cell("2"), PanicError);
}

TEST(TextTable, CellBeforeRowPanics)
{
    TextTable t;
    t.col("a");
    EXPECT_THROW(t.cell("x"), PanicError);
}

TEST(TextTable, WidthGrowsWithContent)
{
    TextTable t;
    t.col("h");
    t.row().cell("a-very-long-cell");
    const std::string s = t.str();
    EXPECT_NE(s.find("| a-very-long-cell |"), std::string::npos);
}

TEST(TextTable, IntOverloads)
{
    TextTable t;
    t.col("a").col("b").col("c");
    t.row().cell(-3).cell(4u).cell(std::int64_t{-9});
    const std::string s = t.str();
    EXPECT_NE(s.find("-3"), std::string::npos);
    EXPECT_NE(s.find("4"), std::string::npos);
    EXPECT_NE(s.find("-9"), std::string::npos);
}
