/** @file Tests for trace capture, serialization, and replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/machine.hh"
#include "sim/trace.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::sim;

namespace {

struct Captured
{
    std::vector<TraceRecord> records;
    RunResult run;
    Addr dataBytes;
    MachineConfig cfg;
};

Captured
capture(SchemeKind k)
{
    static compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microJacobi(96, 4));
    Captured out;
    out.cfg.scheme = k;
    out.cfg.procs = 4;
    out.dataBytes = cp.program.dataBytes();
    Machine m(cp, out.cfg);
    TraceBuffer buf;
    m.setTraceSink(&buf);
    out.run = m.run();
    out.records = buf.take();
    return out;
}

} // namespace

TEST(Trace, CaptureShape)
{
    Captured c = capture(SchemeKind::TPI);
    Counter accesses = 0, boundaries = 0;
    for (const TraceRecord &r : c.records) {
        if (r.type == TraceRecord::Type::Access)
            ++accesses;
        else
            ++boundaries;
    }
    EXPECT_EQ(accesses, c.run.reads + c.run.writes);
    EXPECT_EQ(boundaries, c.run.epochs);
}

TEST(Trace, RoundTripSerialization)
{
    Captured c = capture(SchemeKind::TPI);
    std::stringstream ss;
    writeTrace(ss, c.records, c.cfg.procs, c.dataBytes);
    ParsedTrace parsed = readTrace(ss);
    EXPECT_EQ(parsed.procs, c.cfg.procs);
    EXPECT_EQ(parsed.dataBytes, c.dataBytes);
    ASSERT_EQ(parsed.records.size(), c.records.size());
    for (std::size_t i = 0; i < c.records.size(); ++i) {
        const TraceRecord &a = c.records[i];
        const TraceRecord &b = parsed.records[i];
        ASSERT_EQ(a.type, b.type) << "record " << i;
        if (a.type == TraceRecord::Type::Access) {
            EXPECT_EQ(a.op.proc, b.op.proc);
            EXPECT_EQ(a.op.addr, b.op.addr);
            EXPECT_EQ(a.op.write, b.op.write);
            EXPECT_EQ(a.op.mark, b.op.mark);
            EXPECT_EQ(a.op.distance, b.op.distance);
            EXPECT_EQ(a.op.stamp, b.op.stamp);
            EXPECT_EQ(a.op.critical, b.op.critical);
        } else {
            EXPECT_EQ(a.epoch, b.epoch);
        }
    }
}

TEST(Trace, ReplayReproducesMissCounts)
{
    // Replaying through an identical (direct-mapped) machine must give
    // byte-identical miss behaviour: hits and misses depend only on the
    // reference stream, not on absolute cycle times.
    for (SchemeKind k :
         {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
    {
        Captured c = capture(k);
        ReplayResult r = replayTrace(c.records, c.cfg, c.dataBytes);
        EXPECT_EQ(r.reads, c.run.reads) << schemeName(k);
        EXPECT_EQ(r.writes, c.run.writes) << schemeName(k);
        EXPECT_EQ(r.readMisses, c.run.readMisses) << schemeName(k);
        EXPECT_EQ(r.missConservative, c.run.missConservative)
            << schemeName(k);
        EXPECT_EQ(r.missFalseShare, c.run.missFalseShare)
            << schemeName(k);
    }
}

TEST(Trace, CrossSchemeReplay)
{
    // A TPI-compiled trace replays through the directory scheme (which
    // ignores the marks) and through SC (which uses them differently).
    Captured c = capture(SchemeKind::TPI);
    MachineConfig hw = c.cfg;
    hw.scheme = SchemeKind::HW;
    ReplayResult rh = replayTrace(c.records, hw, c.dataBytes);
    EXPECT_EQ(rh.reads, c.run.reads);
    EXPECT_GT(rh.readMisses, 0u);

    MachineConfig sc = c.cfg;
    sc.scheme = SchemeKind::SC;
    ReplayResult rs = replayTrace(c.records, sc, c.dataBytes);
    EXPECT_GE(rs.readMisses, c.run.readMisses)
        << "SC cannot beat TPI on the same marked trace";

    MachineConfig vc = c.cfg;
    vc.scheme = SchemeKind::VC;
    ReplayResult rv = replayTrace(c.records, vc, c.dataBytes);
    EXPECT_EQ(rv.reads, c.run.reads)
        << "traces carry the array ids the VC scheme needs";
}

TEST(Trace, MalformedInputsRejected)
{
    {
        std::istringstream in("");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H wrong-magic 1 4 1024\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H hscd-trace 1 4 1024\nX 1 2 3\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H hscd-trace 1 4 1024\nA 0 16 W\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H hscd-trace 1 4 1024\nA 0 16 R z 0 0 0\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
}

TEST(Trace, EmptyBodyIsFine)
{
    std::istringstream in("H hscd-trace 1 4 1024\n");
    ParsedTrace p = readTrace(in);
    EXPECT_TRUE(p.records.empty());
    MachineConfig cfg;
    cfg.procs = 4;
    ReplayResult r = replayTrace(p.records, cfg, p.dataBytes);
    EXPECT_EQ(r.reads, 0u);
    EXPECT_EQ(r.cycles, 0u);
}

TEST(Trace, ReplayRejectsOutOfRangeProcessor)
{
    Captured c = capture(SchemeKind::TPI);
    MachineConfig tiny = c.cfg;
    tiny.procs = 1;
    EXPECT_THROW(replayTrace(c.records, tiny, c.dataBytes), PanicError);
}
