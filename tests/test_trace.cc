/** @file Tests for trace capture, serialization, and replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "program_gen.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::sim;

namespace {

struct Captured
{
    std::vector<TraceRecord> records;
    RunResult run;
    Addr dataBytes;
    MachineConfig cfg;
};

Captured
capture(SchemeKind k)
{
    static compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microJacobi(96, 4));
    Captured out;
    out.cfg.scheme = k;
    out.cfg.procs = 4;
    out.dataBytes = cp.program.dataBytes();
    Machine m(cp, out.cfg);
    TraceBuffer buf;
    m.setTraceSink(&buf);
    out.run = m.run();
    out.records = buf.take();
    return out;
}

} // namespace

TEST(Trace, CaptureShape)
{
    Captured c = capture(SchemeKind::TPI);
    Counter accesses = 0, boundaries = 0;
    for (const TraceRecord &r : c.records) {
        if (r.type == TraceRecord::Type::Access)
            ++accesses;
        else
            ++boundaries;
    }
    EXPECT_EQ(accesses, c.run.reads + c.run.writes);
    EXPECT_EQ(boundaries, c.run.epochs);
}

TEST(Trace, RoundTripSerialization)
{
    Captured c = capture(SchemeKind::TPI);
    std::stringstream ss;
    writeTrace(ss, c.records, c.cfg.procs, c.dataBytes);
    ParsedTrace parsed = readTrace(ss);
    EXPECT_EQ(parsed.procs, c.cfg.procs);
    EXPECT_EQ(parsed.dataBytes, c.dataBytes);
    ASSERT_EQ(parsed.records.size(), c.records.size());
    for (std::size_t i = 0; i < c.records.size(); ++i) {
        const TraceRecord &a = c.records[i];
        const TraceRecord &b = parsed.records[i];
        ASSERT_EQ(a.type, b.type) << "record " << i;
        if (a.type == TraceRecord::Type::Access) {
            EXPECT_EQ(a.op.proc, b.op.proc);
            EXPECT_EQ(a.op.addr, b.op.addr);
            EXPECT_EQ(a.op.write, b.op.write);
            EXPECT_EQ(a.op.mark, b.op.mark);
            EXPECT_EQ(a.op.distance, b.op.distance);
            EXPECT_EQ(a.op.stamp, b.op.stamp);
            EXPECT_EQ(a.op.critical, b.op.critical);
        } else {
            EXPECT_EQ(a.epoch, b.epoch);
        }
    }
}

TEST(Trace, ReplayReproducesMissCounts)
{
    // Replaying through an identical (direct-mapped) machine must give
    // byte-identical miss behaviour: hits and misses depend only on the
    // reference stream, not on absolute cycle times.
    for (SchemeKind k :
         {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
    {
        Captured c = capture(k);
        ReplayResult r = replayTrace(c.records, c.cfg, c.dataBytes);
        EXPECT_EQ(r.reads, c.run.reads) << schemeName(k);
        EXPECT_EQ(r.writes, c.run.writes) << schemeName(k);
        EXPECT_EQ(r.readMisses, c.run.readMisses) << schemeName(k);
        EXPECT_EQ(r.missConservative, c.run.missConservative)
            << schemeName(k);
        EXPECT_EQ(r.missFalseShare, c.run.missFalseShare)
            << schemeName(k);
    }
}

TEST(Trace, CrossSchemeReplay)
{
    // A TPI-compiled trace replays through the directory scheme (which
    // ignores the marks) and through SC (which uses them differently).
    Captured c = capture(SchemeKind::TPI);
    MachineConfig hw = c.cfg;
    hw.scheme = SchemeKind::HW;
    ReplayResult rh = replayTrace(c.records, hw, c.dataBytes);
    EXPECT_EQ(rh.reads, c.run.reads);
    EXPECT_GT(rh.readMisses, 0u);

    MachineConfig sc = c.cfg;
    sc.scheme = SchemeKind::SC;
    ReplayResult rs = replayTrace(c.records, sc, c.dataBytes);
    EXPECT_GE(rs.readMisses, c.run.readMisses)
        << "SC cannot beat TPI on the same marked trace";

    MachineConfig vc = c.cfg;
    vc.scheme = SchemeKind::VC;
    ReplayResult rv = replayTrace(c.records, vc, c.dataBytes);
    EXPECT_EQ(rv.reads, c.run.reads)
        << "traces carry the array ids the VC scheme needs";
}

TEST(Trace, RoundTripPropertyOverGenPrograms)
{
    // Property: for random legal programs under every scheme, capture ->
    // serialize -> parse -> replay behaves exactly like replaying the
    // in-memory capture, and both reproduce the run's miss behaviour.
    const SchemeKind schemes[] = {SchemeKind::Base, SchemeKind::SC,
                                  SchemeKind::TPI, SchemeKind::HW,
                                  SchemeKind::VC};
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        testgen::GenOptions opt;
        opt.seed = seed;
        compiler::CompiledProgram cp =
            compiler::compileProgram(testgen::randomLegalProgram(opt));
        MachineConfig cfg;
        cfg.scheme = schemes[seed % std::size(schemes)];
        cfg.procs = 4;

        Machine m(cp, cfg);
        TraceBuffer buf;
        m.setTraceSink(&buf);
        RunResult run = m.run();
        std::vector<TraceRecord> captured = buf.take();

        std::stringstream ss;
        writeTrace(ss, captured, cfg.procs, cp.program.dataBytes());
        ParsedTrace parsed = readTrace(ss);
        ASSERT_EQ(parsed.records.size(), captured.size()) << "gen:" << seed;

        // Parsed records match the capture on every serialized field.
        for (std::size_t i = 0; i < captured.size(); ++i) {
            const TraceRecord &a = captured[i];
            const TraceRecord &b = parsed.records[i];
            ASSERT_EQ(a.type, b.type) << "gen:" << seed << " record " << i;
            if (a.type == TraceRecord::Type::Access) {
                ASSERT_EQ(a.op.proc, b.op.proc) << "gen:" << seed;
                ASSERT_EQ(a.op.addr, b.op.addr) << "gen:" << seed;
                ASSERT_EQ(a.op.write, b.op.write) << "gen:" << seed;
                ASSERT_EQ(a.op.mark, b.op.mark) << "gen:" << seed;
                ASSERT_EQ(a.op.distance, b.op.distance) << "gen:" << seed;
                ASSERT_EQ(a.op.stamp, b.op.stamp) << "gen:" << seed;
                ASSERT_EQ(a.op.critical, b.op.critical) << "gen:" << seed;
            } else {
                ASSERT_EQ(a.epoch, b.epoch) << "gen:" << seed;
            }
        }

        // Replaying the parsed trace equals replaying the capture, and
        // both reproduce the execution-driven run's miss counts.
        ReplayResult ro = replayTrace(captured, cfg, parsed.dataBytes);
        ReplayResult rp = replayTrace(parsed.records, cfg, parsed.dataBytes);
        EXPECT_EQ(ro.reads, rp.reads) << "gen:" << seed;
        EXPECT_EQ(ro.writes, rp.writes) << "gen:" << seed;
        EXPECT_EQ(ro.readMisses, rp.readMisses) << "gen:" << seed;
        EXPECT_EQ(ro.missConservative, rp.missConservative)
            << "gen:" << seed;
        EXPECT_EQ(ro.missFalseShare, rp.missFalseShare) << "gen:" << seed;
        EXPECT_EQ(ro.trafficWords, rp.trafficWords) << "gen:" << seed;
        EXPECT_EQ(ro.reads, run.reads) << "gen:" << seed;
        EXPECT_EQ(ro.writes, run.writes) << "gen:" << seed;
        EXPECT_EQ(ro.readMisses, run.readMisses) << "gen:" << seed;
    }
}

TEST(Trace, FastPathCapturesIdenticalTrace)
{
    // The epoch-stream fast path must emit the same event stream as the
    // interpreter, record for record - the trace sink sees simulation
    // order, so this pins event ordering, not just aggregate results.
    testgen::GenOptions opt;
    opt.seed = 3;
    compiler::CompiledProgram cp =
        compiler::compileProgram(testgen::randomLegalProgram(opt));
    for (SchemeKind k : {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW}) {
        MachineConfig cfg;
        cfg.scheme = k;
        cfg.procs = 4;

        auto capture = [&](bool fast) {
            MachineConfig c = cfg;
            c.fastPath = fast;
            Machine m(cp, c);
            TraceBuffer buf;
            m.setTraceSink(&buf);
            m.run();
            return buf.take();
        };
        std::vector<TraceRecord> legacy = capture(false);
        std::vector<TraceRecord> fast = capture(true);
        ASSERT_EQ(legacy.size(), fast.size()) << schemeName(k);
        for (std::size_t i = 0; i < legacy.size(); ++i) {
            const TraceRecord &a = legacy[i];
            const TraceRecord &b = fast[i];
            ASSERT_EQ(a.type, b.type) << schemeName(k) << " record " << i;
            ASSERT_EQ(a.op.proc, b.op.proc) << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.addr, b.op.addr) << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.write, b.op.write) << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.arrayId, b.op.arrayId)
                << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.mark, b.op.mark) << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.distance, b.op.distance)
                << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.stamp, b.op.stamp) << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.now, b.op.now) << schemeName(k) << " " << i;
            ASSERT_EQ(a.op.critical, b.op.critical)
                << schemeName(k) << " " << i;
            ASSERT_EQ(a.epoch, b.epoch) << schemeName(k) << " " << i;
        }
    }
}

TEST(Trace, MalformedInputsRejected)
{
    {
        std::istringstream in("");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H wrong-magic 1 4 1024\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H hscd-trace 1 4 1024\nX 1 2 3\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H hscd-trace 1 4 1024\nA 0 16 W\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
    {
        std::istringstream in("H hscd-trace 1 4 1024\nA 0 16 R z 0 0 0\n");
        EXPECT_THROW(readTrace(in), FatalError);
    }
}

TEST(Trace, EmptyBodyIsFine)
{
    std::istringstream in("H hscd-trace 1 4 1024\n");
    ParsedTrace p = readTrace(in);
    EXPECT_TRUE(p.records.empty());
    MachineConfig cfg;
    cfg.procs = 4;
    ReplayResult r = replayTrace(p.records, cfg, p.dataBytes);
    EXPECT_EQ(r.reads, 0u);
    EXPECT_EQ(r.cycles, 0u);
}

TEST(Trace, ReplayRejectsOutOfRangeProcessor)
{
    Captured c = capture(SchemeKind::TPI);
    MachineConfig tiny = c.cfg;
    tiny.procs = 1;
    EXPECT_THROW(replayTrace(c.records, tiny, c.dataBytes), PanicError);
}
