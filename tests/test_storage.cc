/** @file Tests for the Figure 5 storage-overhead model. */

#include <gtest/gtest.h>

#include "mem/storage_model.hh"

using namespace hscd;
using namespace hscd::mem;

TEST(Storage, FullMapMatchesPaperTotals)
{
    // P=1024, C=16K blocks: 2*C*P bits = 32 Mbit = 4 MB SRAM.
    StorageParams p;
    auto o = fullMapOverhead(p);
    EXPECT_DOUBLE_EQ(o.cacheSramBits, 2.0 * 16384 * 1024);
    EXPECT_EQ(formatBits(o.cacheSramBits), "4.0 MB");
    // (P+2)*M*P with M=512K: about 64.1 GB DRAM (paper: 64.5).
    EXPECT_NEAR(o.memoryDramBits / 8 / (1024.0 * 1024 * 1024), 64.1, 0.5);
}

TEST(Storage, TpiMatchesPaperTotal)
{
    // 8 * L * C * P bits = 8*4*16K*1024 = 512 Mbit = 64 MB SRAM only.
    StorageParams p;
    auto o = tpiOverhead(p);
    EXPECT_EQ(formatBits(o.cacheSramBits), "64.0 MB");
    EXPECT_DOUBLE_EQ(o.memoryDramBits, 0.0);
}

TEST(Storage, LimitlessBetweenTpiAndFullMap)
{
    StorageParams p;
    auto full = fullMapOverhead(p);
    auto lim = limitlessOverhead(p);
    auto tpi = tpiOverhead(p);
    EXPECT_LT(lim.memoryDramBits, full.memoryDramBits);
    EXPECT_GT(lim.memoryDramBits, 0.0);
    EXPECT_LT(tpi.totalBits(), full.totalBits());
    EXPECT_LT(tpi.totalBits(), lim.totalBits());
}

TEST(Storage, TpiScalesWithCacheNotMemory)
{
    StorageParams p;
    auto base = tpiOverhead(p);
    StorageParams big_mem = p;
    big_mem.memBlocks *= 16;
    EXPECT_DOUBLE_EQ(tpiOverhead(big_mem).totalBits(), base.totalBits())
        << "TPI overhead is independent of memory size";
    StorageParams big_cache = p;
    big_cache.cacheBlocks *= 2;
    EXPECT_DOUBLE_EQ(tpiOverhead(big_cache).totalBits(),
                     2 * base.totalBits());
    // Directory DRAM overhead grows quadratically with P.
    StorageParams big_p = p;
    big_p.procs *= 2;
    EXPECT_GT(fullMapOverhead(big_p).memoryDramBits,
              3.9 * fullMapOverhead(p).memoryDramBits);
}

TEST(Storage, FormatBits)
{
    EXPECT_EQ(formatBits(8.0), "1.0 B");
    EXPECT_EQ(formatBits(8.0 * 1024), "1.0 KB");
    EXPECT_EQ(formatBits(8.0 * 1024 * 1024 * 1536), "1.5 GB");
}

TEST(Storage, TimetagWidthScalesTpi)
{
    StorageParams p;
    p.timetagBits = 4;
    auto narrow = tpiOverhead(p);
    p.timetagBits = 8;
    auto wide = tpiOverhead(p);
    EXPECT_DOUBLE_EQ(wide.cacheSramBits, 2 * narrow.cacheSramBits);
}
