/**
 * @file
 * Generator determinism locks: the same (family, seed, scale) must
 * produce byte-identical HIR on any thread count and in any process.
 *
 * Thread independence is tested directly (parallelMap at --jobs
 * 1/2/8); process independence is pinned by in-source goldens - an
 * FNV-1a hash of the printed HIR per family, and the F12-style
 * miss-kind counter breakdown of seed 1 under every scheme. The hashes
 * were produced by an earlier build on another machine, so a generator
 * whose output depends on process state, pointer values, or libc
 * rand() trips them immediately. Intentional generator changes
 * regenerate both tables with
 *
 *   HSCD_PRINT_GOLDEN=1 ./tests/hscd_tests \
 *       --gtest_filter=SynthGolden.* 2>&1 | grep GOLDEN
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "compiler/analysis.hh"
#include "hir/printer.hh"
#include "sim/machine.hh"
#include "workloads/synth.hh"

using namespace hscd;
using namespace hscd::workloads;

namespace {

std::string
printed(const std::string &family, std::uint64_t seed, int scale = 1)
{
    return hir::programToString(buildSynth(family, seed, scale));
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

struct GoldenFamily
{
    const char *family;
    // FNV-1a of programToString at seed 1, scales 1 and 2.
    unsigned long long hirHash[2];
    // Seed 1, scale 1 miss-kind counters per scheme (BASE, SC, TPI,
    // HW, VC): cold, replacement, trueShare, falseShare, conservative,
    // tagReset, uncached.
    unsigned long long kinds[5][7];
};

// Regenerate with HSCD_PRINT_GOLDEN=1 (see file comment).
const GoldenFamily kGolden[] = {
    {"falseshare", {10386201950220122371ull, 4555899113842547115ull},
     {{0, 0, 0, 0, 0, 0, 400},
      {9, 0, 0, 0, 91, 0, 0},
      {9, 0, 0, 0, 0, 0, 0},
      {9, 0, 1, 21, 0, 0, 0},
      {9, 0, 0, 0, 0, 0, 0}}},
    {"migratory", {9796474701695320353ull, 3498867754523684004ull},
     {{0, 0, 0, 0, 0, 0, 135},
      {19, 0, 24, 0, 92, 0, 0},
      {19, 0, 24, 0, 1, 0, 0},
      {19, 0, 23, 0, 0, 0, 0},
      {19, 0, 24, 0, 1, 0, 0}}},
    {"prodcons", {230574408603721157ull, 16049893986990952791ull},
     {{0, 0, 0, 0, 0, 0, 390},
      {6, 0, 15, 0, 369, 0, 0},
      {6, 0, 29, 0, 3, 0, 0},
      {6, 0, 11, 60, 0, 0, 0},
      {6, 0, 29, 0, 3, 0, 0}}},
    {"reuse", {13311975948697950791ull, 4144737019507124053ull},
     {{0, 0, 0, 0, 0, 0, 960},
      {49, 0, 14, 0, 897, 0, 0},
      {49, 0, 14, 0, 0, 0, 0},
      {49, 0, 7, 7, 0, 0, 0},
      {49, 0, 14, 0, 0, 0, 0}}},
    {"stencil", {16262792082625097179ull, 5702108709764373826ull},
     {{0, 0, 0, 0, 0, 0, 1224},
      {27, 0, 26, 0, 1171, 0, 0},
      {27, 0, 26, 0, 36, 0, 0},
      {27, 0, 16, 25, 0, 0, 0},
      {27, 0, 36, 0, 4, 0, 0}}},
    {"streaming", {4557448046161154801ull, 12875138804751450811ull},
     {{0, 0, 0, 0, 0, 0, 128},
      {28, 0, 2, 0, 98, 0, 0},
      {28, 0, 2, 0, 0, 0, 0},
      {28, 0, 2, 0, 0, 0, 0},
      {28, 0, 2, 0, 0, 0, 0}}},
};

const SchemeKind kSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                               SchemeKind::TPI, SchemeKind::HW,
                               SchemeKind::VC};

} // namespace

/** Same (family, seed, scale): byte-identical at any --jobs level. */
TEST(SynthDeterminism, ByteIdenticalAcrossThreads)
{
    for (const std::string &family : synthFamilies()) {
        for (std::uint64_t seed : {1ull, 2ull, 23ull}) {
            const std::string ref = printed(family, seed);
            ASSERT_FALSE(ref.empty());
            EXPECT_EQ(printed(family, seed), ref) << family;
            for (unsigned jobs : {1u, 2u, 8u}) {
                auto got = parallelMap(jobs, 8, [&](std::size_t) {
                    return printed(family, seed);
                });
                for (const std::string &s : got)
                    EXPECT_EQ(s, ref)
                        << family << " seed " << seed << " at --jobs "
                        << jobs << " is not byte-identical";
            }
        }
    }
}

/** Seeds and scales actually matter: distinct output, larger output. */
TEST(SynthDeterminism, SeedsAndScalesVary)
{
    for (const std::string &family : synthFamilies()) {
        EXPECT_NE(printed(family, 1), printed(family, 2)) << family;
        EXPECT_NE(printed(family, 1, 2), printed(family, 1)) << family;
    }
    // Family identity matters too: same seed, different program.
    EXPECT_NE(printed("streaming", 1), printed("stencil", 1));
}

/**
 * Cross-process pin: HIR hashes and the miss-kind breakdown of seed 1
 * per family, frozen in-source (exact integer equality, F12-style).
 */
TEST(SynthGolden, Seed1HashesAndMissKinds)
{
    const std::vector<std::string> fams = synthFamilies();
    const bool print = std::getenv("HSCD_PRINT_GOLDEN") != nullptr;
    if (!print)
        ASSERT_EQ(fams.size(), std::size(kGolden));

    for (std::size_t i = 0; i < fams.size(); ++i) {
        const std::string &family = fams[i];
        unsigned long long hash[2];
        hash[0] = fnv1a(printed(family, 1, 1));
        hash[1] = fnv1a(printed(family, 1, 2));

        compiler::CompiledProgram cp =
            compiler::compileProgram(buildSynth(family, 1, 1));
        unsigned long long got[5][7];
        for (int s = 0; s < 5; ++s) {
            MachineConfig cfg;
            cfg.scheme = kSchemes[s];
            cfg.procs = 8;
            const sim::RunResult r = sim::simulate(cp, cfg);
            got[s][0] = r.missCold;
            got[s][1] = r.missReplacement;
            got[s][2] = r.missTrueShare;
            got[s][3] = r.missFalseShare;
            got[s][4] = r.missConservative;
            got[s][5] = r.missTagReset;
            got[s][6] = r.missUncached;
        }
        if (print) {
            std::fprintf(stderr, "GOLDEN     {\"%s\", {%lluull, %lluull},\n",
                         family.c_str(), hash[0], hash[1]);
            for (int s = 0; s < 5; ++s)
                std::fprintf(
                    stderr,
                    "GOLDEN      %s{%llu, %llu, %llu, %llu, %llu, %llu, "
                    "%llu}%s\n",
                    s == 0 ? "{" : " ", got[s][0], got[s][1], got[s][2],
                    got[s][3], got[s][4], got[s][5], got[s][6],
                    s == 4 ? "}}," : ",");
            continue;
        }
        EXPECT_EQ(family, kGolden[i].family);
        EXPECT_EQ(hash[0], kGolden[i].hirHash[0])
            << family << ": generated HIR changed (scale 1); if "
               "intentional, regenerate the goldens (see file comment)";
        EXPECT_EQ(hash[1], kGolden[i].hirHash[1])
            << family << ": generated HIR changed (scale 2)";
        for (int s = 0; s < 5; ++s)
            for (int m = 0; m < 7; ++m)
                EXPECT_EQ(got[s][m], kGolden[i].kinds[s][m])
                    << family << " under " << schemeName(kSchemes[s])
                    << " kind " << m << ": a miss-kind counter moved "
                    << "(exact freeze; regenerate if intentional)";
    }
}
