/** @file Second-pass coverage: logging, rendering, graph/marking edges. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "common/stats.hh"
#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "hir/printer.hh"
#include "network/kruskal_snir.hh"
#include "sim/interp.hh"
#include "sim/machine.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::compiler;

TEST(Log, FatalCarriesFormattedMessage)
{
    try {
        fatal("bad %s: %d", "value", 42);
        FAIL() << "fatal must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value: 42");
    }
}

TEST(Log, PanicThrowsUnderTests)
{
    EXPECT_TRUE(Log::throwOnPanic);
    EXPECT_THROW(panic("boom %d", 1), PanicError);
}

TEST(Log, AssertMacroFormats)
{
    try {
        hscd_assert(1 == 2, "context %s", "here");
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("1 == 2"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("context here"),
                  std::string::npos);
    }
}

TEST(Csprintf, ScientificAndOctal)
{
    EXPECT_EQ(csprintf("%o", 8), "10");
    const std::string e = csprintf("%.2e", 1234.5);
    EXPECT_NE(e.find("1.23e"), std::string::npos);
    EXPECT_EQ(csprintf("%+d", 5), "+5");
}

TEST(StatsRender, ScalarAndHistogramStrings)
{
    stats::StatGroup g("g");
    stats::Scalar s(&g, "s", "");
    s += 12;
    EXPECT_EQ(s.render(), "12");
    stats::Histogram h(&g, "h", "", 10.0, 2);
    h.sample(1);
    h.sample(11);
    const std::string r = h.render();
    EXPECT_NE(r.find("n=2"), std::string::npos);
    EXPECT_NE(r.find("ovf=1"), std::string::npos);
    stats::Average a(&g, "a", "");
    a.sample(2.0);
    EXPECT_NE(a.render().find("(n=1)"), std::string::npos);
    stats::Formula f(&g, "f", "", [] { return 0.5; });
    EXPECT_EQ(f.render(), "0.500000");
}

TEST(StatsGuard, BadHistogramShapePanics)
{
    stats::StatGroup g("g");
    EXPECT_THROW(stats::Histogram(&g, "h", "", 0.0, 4), PanicError);
}

TEST(Printer, IndentWidthOption)
{
    ProgramBuilder b;
    b.array("A", {4});
    b.proc("MAIN", [&] {
        b.doserial("i", 0, 1, [&] { b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    PrintOptions opts;
    opts.indentWidth = 4;
    std::ostringstream os;
    printProcedure(os, p, 0, opts);
    EXPECT_NE(os.str().find("\n        A(i)"), std::string::npos)
        << "body nested two levels deep indents 8 spaces";
}

TEST(Network, FlitBasedLoadCountsWords)
{
    stats::StatGroup root("r");
    net::Network n(&root, 4, 2, 0.95);
    n.addTraffic(1, 16); // one line transfer: 16 flits of occupancy
    n.endWindow(32);
    EXPECT_NEAR(n.load(), 16.0 / (32.0 * 4.0), 1e-9);
    // Header-only packets (invalidations) count one flit each.
    net::Network m(&root, 4, 2, 0.95);
    m.addTraffic(3, 0);
    m.endWindow(32);
    EXPECT_NEAR(m.load(), 3.0 / 128.0, 1e-9);
    // Overload clamps at the configured maximum.
    net::Network o(&root, 4, 2, 0.95);
    o.addTraffic(1, 1000);
    o.endWindow(4);
    EXPECT_NEAR(o.load(), 0.95, 1e-9);
}

TEST(Network, Radix4HasFewerStages)
{
    stats::StatGroup root("r");
    net::Network n2(&root, 16, 2, 0.95);
    net::Network n4(&root, 16, 4, 0.95);
    EXPECT_EQ(n2.stages(), 4u);
    EXPECT_EQ(n4.stages(), 2u);
}

TEST(EpochGraph2, NestedTimeLoopsCompoundCycleDistance)
{
    // DOALL inside two nested serial loops: the inner cycle is the
    // shortest (2 boundaries), so marking still uses 2.
    ProgramBuilder b;
    b.array("A", {16});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doserial("t1", 0, 2, [&] {
            b.doserial("t2", 0, 2, [&] {
                b.doall("i", 0, 15, [&] {
                    r = b.read("A", {b.v("i")});
                    b.write("A", {b.v("i")});
                });
            });
        });
    });
    Program p = b.build();
    CompiledProgram cp = compileProgram(std::move(p));
    EXPECT_EQ(cp.marking.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(cp.marking.mark(r).distance, 2u);
}

TEST(EpochGraph2, TwoDoallsInOneTimeLoopBody)
{
    // read in DOALL-1 of iteration t+1 vs write in DOALL-2 of iteration
    // t: exit(1) + entry(1) = 2; vs write in DOALL-1 itself: cycle = 4.
    ProgramBuilder b;
    b.array("A", {16});
    b.array("B", {16});
    RefId ra = invalidRef;
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 2, [&] {
            b.doall("i", 0, 15, [&] {
                ra = b.read("A", {b.v("i")});
                b.write("B", {b.v("i")});
            });
            b.doall("j", 0, 15, [&] {
                b.read("B", {b.v("j")});
                b.write("A", {b.v("j")});
            });
        });
    });
    CompiledProgram cp = compileProgram(b.build());
    EXPECT_EQ(cp.marking.mark(ra).distance, 2u);
}

TEST(EpochGraph2, UnknownWriteThreatensWholeArray)
{
    ProgramBuilder b;
    b.array("A", {64});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.unknown()}); });
        b.doall("j", 0, 15, [&] { r = b.read("A", {b.v("j") + 40}); });
    });
    CompiledProgram cp = compileProgram(b.build());
    EXPECT_EQ(cp.marking.mark(r).kind, MarkKind::TimeRead)
        << "an unanalyzable write covers every element";
}

TEST(EpochGraph2, SerialCriticalSectionStaysInEpoch)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.critical([&] { b.read("A", {b.c(0)}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    EXPECT_EQ(g.nodes().size(), 1u);
    EXPECT_TRUE(g.nodes()[0].refs[1].inCritical);
}

TEST(Marking2, WriteOnlyArrayReadsNothing)
{
    // Writes never make the WRITER stale; an array that is written but
    // never read yields no read marks at all.
    ProgramBuilder b;
    b.array("A", {16});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        b.doall("j", 0, 15, [&] { b.write("A", {b.v("j")}); });
    });
    CompiledProgram cp = compileProgram(b.build());
    EXPECT_EQ(cp.marking.stats().reads, 0u);
    EXPECT_EQ(cp.marking.stats().writes, 2u);
}

TEST(Marking2, MultiDimSeparationAcrossDims)
{
    // Write A(i, k) / read A(i, k) with parallel i: dim 0 pins the task;
    // write A(k, i) / read A(i, k) cannot be separated.
    ProgramBuilder b;
    b.array("A", {16, 16});
    b.array("B", {16, 16});
    RefId r_same = invalidRef, r_cross = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.doserial("k", 0, 15, [&] {
                r_same = b.read("A", {b.v("i"), b.v("k")});
                b.write("A", {b.v("i"), b.v("k")});
                r_cross = b.read("B", {b.v("i"), b.v("k")});
                b.write("B", {b.v("k"), b.v("i")});
            });
        });
    });
    CompiledProgram cp = compileProgram(b.build());
    // r_same: same task (dim 0 equal) and no enclosing cycle -> normal.
    EXPECT_EQ(cp.marking.mark(r_same).kind, MarkKind::Normal);
    // r_cross: transposed write collides across tasks -> d = 0.
    EXPECT_EQ(cp.marking.mark(r_cross).kind, MarkKind::TimeRead);
    EXPECT_EQ(cp.marking.mark(r_cross).distance, 0u);
}

TEST(Interp2, StepLoopsInTaskMode)
{
    ProgramBuilder b;
    b.array("A", {32});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 30, [&] { b.write("A", {b.v("i")}); }, 2);
    });
    Program p = b.build();
    sim::RunCtx ctx;
    sim::TaskStream master(p, ctx, p.main().body);
    sim::TaskOp d = master.next();
    ASSERT_EQ(d.kind, sim::TaskOp::Kind::BeginDoall);
    EXPECT_EQ(d.step, 2);
}

TEST(Interp2, HashBranchDeterministic)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 31, [&] {
            b.ifUnknown(TakePolicy::Hash, [&] { b.compute(1); },
                        [&] { b.compute(2); });
        });
    });
    Program p = b.build();
    auto run = [&] {
        sim::RunCtx ctx;
        sim::TaskStream s(p, ctx, p.main().body);
        std::vector<Cycles> cycles;
        for (sim::TaskOp op = s.next();
             op.kind != sim::TaskOp::Kind::End; op = s.next())
            cycles.push_back(op.cycles);
        return cycles;
    };
    auto a = run();
    auto bb = run();
    EXPECT_EQ(a, bb);
    // And both branches occur.
    EXPECT_NE(std::count(a.begin(), a.end(), 1u), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), 2u), 0);
}

TEST(MachineConfig2, ValidationErrors)
{
    MachineConfig c;
    c.procs = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = MachineConfig{};
    c.lineBytes = 24;
    EXPECT_THROW(c.validate(), FatalError);
    c = MachineConfig{};
    c.timetagBits = 1;
    EXPECT_THROW(c.validate(), FatalError);
    c = MachineConfig{};
    c.migrationRate = 2.0;
    EXPECT_THROW(c.validate(), FatalError);
    c = MachineConfig{};
    c.assoc = 3;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(MachineConfig2, ParseSchemesAndSchedules)
{
    EXPECT_EQ(parseScheme("VC"), SchemeKind::VC);
    EXPECT_EQ(parseScheme("directory"), SchemeKind::HW);
    EXPECT_THROW(parseScheme("mesi"), FatalError);
    EXPECT_EQ(parseSched("Dynamic"), SchedPolicy::Dynamic);
    EXPECT_THROW(parseSched("guided"), FatalError);
    EXPECT_STREQ(schemeName(SchemeKind::VC), "VC");
}

TEST(MachineConfig2, StrMentionsKeyFacts)
{
    MachineConfig c;
    c.scheme = SchemeKind::HW;
    const std::string s = c.str();
    EXPECT_NE(s.find("HW"), std::string::npos);
    EXPECT_NE(s.find("16 procs"), std::string::npos);
    EXPECT_NE(s.find("64KB"), std::string::npos);
}
