/**
 * @file
 * Differential equivalence tests for the epoch-stream fast path.
 *
 * The contract (src/sim/stream.hh) is strict: for every eligible
 * (program, config) the fast path produces a RunResult byte-identical to
 * the legacy per-access interpreter, which stays compiled behind
 * MachineConfig::fastPath = false as the oracle. Ineligible shapes
 * (dynamic self-scheduling, Alternate-policy unknown branches inside
 * DOALL bodies) must fall back to the interpreter and still agree
 * trivially.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "hir/builder.hh"
#include "program_gen.hh"
#include "sim/machine.hh"
#include "sim/stream.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::sim;

namespace {

MachineConfig
baseCfg(SchemeKind k, unsigned procs = 4)
{
    MachineConfig c;
    c.scheme = k;
    c.procs = procs;
    return c;
}

constexpr SchemeKind kAllSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                                      SchemeKind::TPI, SchemeKind::HW,
                                      SchemeKind::VC};

/** Run both paths and require field-by-field + fingerprint equality. */
::testing::AssertionResult
pathsAgree(const compiler::CompiledProgram &cp, MachineConfig cfg)
{
    cfg.fastPath = false;
    RunResult legacy = simulate(cp, cfg);
    cfg.fastPath = true;
    RunResult fast = simulate(cp, cfg);
    if (!(legacy == fast))
        return ::testing::AssertionFailure()
               << schemeName(cfg.scheme) << ": results differ\n  legacy: "
               << legacy.summary() << "\n  fast:   " << fast.summary();
    if (legacy.fingerprint() != fast.fingerprint())
        return ::testing::AssertionFailure()
               << schemeName(cfg.scheme) << ": fingerprints differ";
    return ::testing::AssertionSuccess();
}

} // namespace

/** Every paper workload (scale 1), every scheme: byte-identical. */
TEST(FastpathEquiv, BenchmarksAllSchemes)
{
    unsigned eligible = 0;
    for (const std::string &name : workloads::benchmarkNames()) {
        compiler::CompiledProgram cp =
            compiler::compileProgram(workloads::buildBenchmark(name, 1));
        for (SchemeKind k : kAllSchemes) {
            MachineConfig cfg = baseCfg(k);
            eligible += streamEligible(cp, cfg) ? 1 : 0;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << name;
        }
    }
    // The suite must not pass vacuously with every workload falling back
    // to the interpreter.
    EXPECT_GT(eligible, 0u);
}

/** 50-seed random legal-DOALL corpus, schemes rotating per seed. */
TEST(FastpathEquiv, FuzzCorpus)
{
    unsigned eligible = 0;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        testgen::GenOptions opt;
        opt.seed = seed;
        compiler::CompiledProgram cp =
            compiler::compileProgram(testgen::randomLegalProgram(opt));
        for (SchemeKind k : kAllSchemes) {
            MachineConfig cfg = baseCfg(k);
            if (streamEligible(cp, cfg))
                ++eligible;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "gen:" << seed;
        }
    }
    // Alternate-in-DOALL programs legitimately fall back, but a healthy
    // majority of the corpus must take the fast path.
    EXPECT_GT(eligible, 100u);
}

/** Config dimensions that feed the stream or the issue path. */
TEST(FastpathEquiv, ConfigVariations)
{
    testgen::GenOptions opt;
    opt.seed = 7;
    compiler::CompiledProgram cp =
        compiler::compileProgram(testgen::randomLegalProgram(opt));

    for (SchemeKind k : {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW}) {
        {
            MachineConfig cfg = baseCfg(k);
            cfg.sched = SchedPolicy::Cyclic;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "cyclic";
        }
        {
            MachineConfig cfg = baseCfg(k, 8);
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "procs=8";
        }
        {
            MachineConfig cfg = baseCfg(k);
            cfg.migrationRate = 0.5;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "migration";
        }
        {
            MachineConfig cfg = baseCfg(k);
            cfg.flushAtCalls = true;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "flushAtCalls";
        }
        {
            MachineConfig cfg = baseCfg(k);
            cfg.sequentialConsistency = true;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "seqConsistency";
        }
        {
            MachineConfig cfg = baseCfg(k);
            cfg.shadowEpochCheck = true;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "shadowEpochCheck";
        }
        {
            MachineConfig cfg = baseCfg(k);
            cfg.writeBufferAsCache = true;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << "writeBufferAsCache";
        }
    }
}

/** Dynamic self-scheduling is ineligible and must fall back cleanly. */
TEST(FastpathEquiv, DynamicSchedFallsBack)
{
    compiler::CompiledProgram cp = compiler::compileProgram(
        workloads::buildBenchmark(workloads::benchmarkNames().front(), 1));
    MachineConfig cfg = baseCfg(SchemeKind::TPI);
    cfg.sched = SchedPolicy::Dynamic;
    EXPECT_FALSE(streamEligible(cp, cfg));
    EXPECT_EQ(epochStream(cp, cfg), nullptr);
    EXPECT_TRUE(pathsAgree(cp, cfg));
}

/**
 * An Alternate-policy unknown branch inside a DOALL body makes branch
 * outcomes depend on cross-processor interleaving: ineligible.
 */
TEST(FastpathEquiv, AlternateInDoallFallsBack)
{
    hir::ProgramBuilder b;
    b.param("N", 32);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 31, [&] {
            b.ifUnknown(hir::TakePolicy::Alternate,
                        [&] { b.read("A", {b.v("i")}); },
                        [&] { b.compute(2); });
            b.write("A", {b.v("i")});
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig cfg = baseCfg(SchemeKind::TPI);
    EXPECT_FALSE(streamEligible(cp, cfg));
    EXPECT_EQ(epochStream(cp, cfg), nullptr);
    EXPECT_TRUE(pathsAgree(cp, cfg));

    // The same branch in serial code is recorded in master order: fine.
    hir::ProgramBuilder s;
    s.param("N", 32);
    s.array("A", {"N"});
    s.proc("MAIN", [&] {
        s.doserial("t", 0, 3, [&] {
            s.ifUnknown(hir::TakePolicy::Alternate,
                        [&] { s.write("A", {s.c(0)}); },
                        [&] { s.compute(2); });
            s.doall("i", 0, 31, [&] { s.write("A", {s.v("i")}); });
        });
    });
    compiler::CompiledProgram scp = compiler::compileProgram(s.build());
    EXPECT_TRUE(streamEligible(scp, cfg));
    EXPECT_TRUE(pathsAgree(scp, cfg));
}

/**
 * The generator now emits Alternate-policy branches inside DOALL bodies
 * too (tests/program_gen.hh): the corpus must actually contain such
 * programs, and on every one the fast path must refuse (fall back to
 * the interpreter, still byte-identical) rather than miscompile. Block
 * scheduling with a non-Dynamic policy is otherwise always eligible,
 * so ineligibility here isolates exactly the Alternate-in-DOALL shape.
 */
TEST(FastpathEquiv, GeneratedAlternateInDoallFallsBack)
{
    unsigned fallbacks = 0;
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        testgen::GenOptions opt;
        opt.seed = seed;
        compiler::CompiledProgram cp =
            compiler::compileProgram(testgen::randomLegalProgram(opt));
        MachineConfig cfg = baseCfg(SchemeKind::TPI);
        if (streamEligible(cp, cfg))
            continue;
        ++fallbacks;
        EXPECT_EQ(epochStream(cp, cfg), nullptr) << "gen:" << seed;
        for (SchemeKind k : kAllSchemes)
            EXPECT_TRUE(pathsAgree(cp, baseCfg(k))) << "gen:" << seed;
    }
    // The fallback shape must be exercised, or this test is vacuous.
    EXPECT_GT(fallbacks, 0u);
}

/**
 * The stream cache lives on the shared CompiledProgram; concurrent
 * simulations under different configs must build/reuse slots without
 * races (also runs under TSan via the tsan ctest label).
 */
TEST(FastpathEquiv, ConcurrentSharedProgramCache)
{
    compiler::CompiledProgram cp = compiler::compileProgram(
        workloads::buildBenchmark(workloads::benchmarkNames().front(), 1));

    struct Cell
    {
        MachineConfig cfg;
        RunResult expect;
    };
    std::vector<Cell> cells;
    for (SchemeKind k : kAllSchemes) {
        for (unsigned procs : {2u, 4u, 8u}) {
            Cell c;
            c.cfg = baseCfg(k, procs);
            c.expect = simulate(cp, c.cfg);
            cells.push_back(c);
        }
    }

    std::vector<RunResult> got(cells.size());
    std::vector<std::thread> threads;
    for (int rep = 0; rep < 2; ++rep) {
        threads.clear();
        for (std::size_t i = 0; i < cells.size(); ++i)
            threads.emplace_back([&, i] {
                got[i] = simulate(cp, cells[i].cfg);
            });
        for (std::thread &t : threads)
            t.join();
        for (std::size_t i = 0; i < cells.size(); ++i)
            EXPECT_TRUE(got[i] == cells[i].expect) << i;
    }
}
