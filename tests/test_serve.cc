/**
 * @file
 * Unit and behavior tests for the campaign-server subsystem
 * (src/serve/): the strict JSON parser, the submission grammar and
 * identity contract, the PR 4-format journal primitives - in
 * particular that a header torn inside the identity is rejected as
 * structurally invalid, never misparsed as a shorter foreign id - the
 * durable queue's crash recovery (torn tails compacted, foreign and
 * invalid journals set aside), admission control, and the NDJSON
 * request dispatch. Also pins the sweep engine's abort contract:
 * an expired --deadline-ms and a SIGTERM mid-campaign both exit with
 * verify::ExitAbort (4) after checkpointing, never 0.
 */

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness.hh"
#include "serve/journal.hh"
#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "sweep.hh"
#include "verify/diagnostic.hh"

using namespace hscd;
using namespace hscd::serve;

namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + name;
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** Deterministic synthetic cell: no simulator, microsecond-fast. */
sim::RunResult
fakeCell(const CampaignSpec &, std::size_t i)
{
    sim::RunResult r;
    r.tasks = 1 + i;
    r.parallelEpochs = 2;
    r.reads = 100 * (i + 1);
    r.writes = 10 * (i + 1);
    r.readHits = 90 * (i + 1);
    // A non-trivial double: must survive the journal bit-exactly.
    r.readMissRate = 0.1 + 1e-17 * double(i);
    return r;
}

CampaignSpec
smallSpec(const std::string &name, std::size_t cells)
{
    CampaignSpec spec;
    spec.name = name;
    for (std::size_t i = 0; i < cells; ++i) {
        CellSpec c;
        c.workload = "adm";
        c.scheme = "tpi";
        c.scale = 1;
        c.label = csprintf("cell-%d", int(i));
        spec.cells.push_back(std::move(c));
    }
    return spec;
}

/** Spin until campaign @p id completes (bounded). */
CampaignQueue::Status
awaitComplete(CampaignQueue &q, std::uint64_t id)
{
    for (int spins = 0; spins < 2000; ++spins) {
        CampaignQueue::Status st = q.status(id);
        if (st.complete)
            return st;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "campaign never completed";
    return q.status(id);
}

} // namespace

// --- JSON parser -------------------------------------------------------

TEST(ServeJson, ParsesScalarsObjectsArrays)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(
        R"({"a": 1.5, "b": "x\n\"y", "c": [true, false, null], "d": {}})",
        v, err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.get("a")->number, 1.5);
    EXPECT_EQ(v.get("b")->text, "x\n\"y");
    ASSERT_TRUE(v.get("c")->isArray());
    EXPECT_EQ(v.get("c")->items.size(), 3u);
    EXPECT_TRUE(v.get("c")->items[0].boolean);
    EXPECT_TRUE(v.get("d")->isObject());
}

TEST(ServeJson, RejectsTrailingGarbageAndDepthBomb)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{} trailing", v, err));
    EXPECT_FALSE(parseJson("{\"a\": }", v, err));
    EXPECT_FALSE(parseJson("", v, err));
    std::string bomb;
    for (int i = 0; i < 100; ++i)
        bomb += "[";
    EXPECT_FALSE(parseJson(bomb, v, err));
    EXPECT_NE(err.find("nest"), std::string::npos) << err;
}

TEST(ServeJson, DumpRoundTrips)
{
    JsonValue v;
    std::string err;
    const std::string in =
        R"({"op": "submit", "n": 3, "tags": ["a", "b"]})";
    ASSERT_TRUE(parseJson(in, v, err));
    JsonValue again;
    ASSERT_TRUE(parseJson(v.dump(), again, err)) << err;
    EXPECT_EQ(again.get("n")->number, 3);
    EXPECT_EQ(again.get("tags")->items[1].text, "b");
}

// --- journal primitives ------------------------------------------------

TEST(ServeJournal, HeaderRoundTrip)
{
    const std::string h = journalHeader("test-magic v1", 0xdeadbeef1234u);
    std::uint64_t id = 0;
    EXPECT_TRUE(parseJournalHeader(h, "test-magic v1", id));
    EXPECT_EQ(id, 0xdeadbeef1234u);
}

TEST(ServeJournal, TruncatedIdentityIsStructurallyInvalid)
{
    // The crash-recovery contract of satellite 3: a header torn inside
    // the 16-hex identity must be rejected as NOT-a-journal - never
    // misparsed as a shorter (foreign-looking) identity that would make
    // resume silently re-run or mis-attach.
    const std::string good = journalHeader("m v1", 0x0123456789abcdefu);
    std::uint64_t id = 0;
    ASSERT_TRUE(parseJournalHeader(good, "m v1", id));
    for (std::size_t cut = 1; cut <= 16; ++cut) {
        const std::string torn = good.substr(0, good.size() - cut);
        EXPECT_FALSE(parseJournalHeader(torn, "m v1", id))
            << "accepted a header missing " << cut << " identity bytes";
    }
}

TEST(ServeJournal, WrongMagicOrExtraBytesRejected)
{
    const std::string h = journalHeader("mine v1", 42);
    std::uint64_t id = 0;
    EXPECT_FALSE(parseJournalHeader(h, "other v1", id));
    EXPECT_FALSE(parseJournalHeader(h + "0", id ? "" : "mine v1", id));
    EXPECT_FALSE(parseJournalHeader(h + " x", "mine v1", id));
    std::string nonHex = h;
    nonHex[nonHex.size() - 1] = 'g';
    EXPECT_FALSE(parseJournalHeader(nonHex, "mine v1", id));
}

TEST(ServeJournal, ResultTokensRoundTripBitExactly)
{
    sim::RunResult r = fakeCell(CampaignSpec(), 7);
    r.readMissRate = 0.30000000000000004; // not representable cleanly
    std::ostringstream os;
    encodeResult(os, r);
    TokenReader tr(os.str());
    sim::RunResult back;
    ASSERT_TRUE(decodeResult(tr, back));
    EXPECT_EQ(back, r); // bit-exact via doubleBits
}

// --- protocol ----------------------------------------------------------

TEST(ServeProtocol, SubmitRoundTripsThroughRequestJson)
{
    CampaignSpec spec = smallSpec("round-trip", 3);
    spec.cells[1].workload = "synth:stencil:3";
    spec.cells[1].scheme = "hw";
    spec.cells[2].procs = 32;
    spec.cells[2].affinity = false;
    spec.faultSpec = "0.001:9";
    spec.timeoutMs = 5000;

    JsonValue req;
    std::string err;
    ASSERT_TRUE(parseJson(spec.toRequestJson(), req, err)) << err;
    CampaignSpec back;
    ASSERT_TRUE(parseSubmit(req, back, err)) << err;
    EXPECT_EQ(back.identity(), spec.identity());
    EXPECT_EQ(back.canonical(), spec.canonical());
    EXPECT_EQ(back.timeoutMs, 5000);
}

TEST(ServeProtocol, IdentityExcludesExecutionBudgets)
{
    CampaignSpec a = smallSpec("budgets", 2);
    CampaignSpec b = a;
    b.timeoutMs = 9999;
    b.deadlineMs = 123456;
    // An interrupted submission retried with different budgets must
    // attach to the same durable campaign.
    EXPECT_EQ(a.identity(), b.identity());
    CampaignSpec c = a;
    c.cells[0].scheme = "hw";
    EXPECT_NE(a.identity(), c.identity());
}

TEST(ServeProtocol, StrictRejections)
{
    auto tryParse = [](const std::string &json) {
        JsonValue req;
        CampaignSpec out;
        std::string err;
        EXPECT_TRUE(parseJson(json, req, err)) << err;
        const bool ok = parseSubmit(req, out, err);
        return ok ? std::string() : err;
    };
    EXPECT_NE(tryParse(R"({"op": "submit", "campaign": "x", "cells":
        [{"workload": "adm", "scheme": "tpi"}], "typo_field": 1})"),
              "");
    EXPECT_NE(tryParse(R"({"op": "submit", "campaign": "x", "cells":
        [{"workload": "nosuch", "scheme": "tpi"}]})"),
              "");
    EXPECT_NE(tryParse(R"({"op": "submit", "campaign": "x", "cells":
        [{"workload": "adm", "scheme": "nosuch"}]})"),
              "");
    EXPECT_NE(tryParse(R"({"op": "submit", "campaign": "x",
        "cells": []})"),
              "");
    EXPECT_NE(tryParse(R"({"op": "submit", "campaign": "x", "cells":
        [{"workload": "adm", "scheme": "tpi", "scale": 99}]})"),
              "");
}

// --- durable queue -----------------------------------------------------

TEST(ServeQueue, RunsPersistsAndRecovers)
{
    const std::string dir = freshDir("serve_q_basic");
    const CampaignSpec spec = smallSpec("basic", 4);
    std::string resultBytes;
    std::uint64_t id = 0;
    {
        CampaignQueue q(dir, QueueLimits(), fakeCell, 2);
        CampaignQueue::Admission a = q.submit(spec);
        ASSERT_EQ(a.status, CampaignQueue::Admission::Status::Accepted);
        id = a.id;

        // Idempotent resubmission.
        CampaignQueue::Admission again = q.submit(spec);
        EXPECT_EQ(again.status, CampaignQueue::Admission::Status::Dedup);
        EXPECT_EQ(again.id, id);

        CampaignQueue::Status st = awaitComplete(q, id);
        EXPECT_EQ(st.done, 4u);
        EXPECT_EQ(st.errors, 0u);
        ASSERT_FALSE(st.resultPath.empty());
        resultBytes = slurp(st.resultPath);
        EXPECT_NE(resultBytes.find("\"reads\": 400"), std::string::npos);
        q.shutdown(/*drain=*/true);
    }
    // A fresh process over the same state dir sees the finished
    // campaign without re-running anything.
    CampaignQueue q2(dir, QueueLimits(), fakeCell, 2);
    EXPECT_EQ(q2.recover(), 1u);
    CampaignQueue::Status st = q2.status(id);
    EXPECT_TRUE(st.complete);
    EXPECT_EQ(slurp(st.resultPath), resultBytes);
    q2.shutdown(true);
}

TEST(ServeQueue, TornJournalTailIsCompactedAndResumed)
{
    // Reference: run the campaign to completion in dir A.
    const std::string ref = freshDir("serve_q_torn_ref");
    const CampaignSpec spec = smallSpec("torn", 5);
    std::string refBytes, journal;
    {
        CampaignQueue q(ref, QueueLimits(), fakeCell, 1);
        CampaignQueue::Admission a = q.submit(spec);
        CampaignQueue::Status st = awaitComplete(q, a.id);
        refBytes = slurp(st.resultPath);
        q.shutdown(true);
        journal = slurp(ref + "/" + csprintf("%016x", a.id) + ".journal");
    }
    ASSERT_FALSE(refBytes.empty());

    // Crash image in dir B: the .req, plus the journal cut mid-record
    // exactly as kill -9 mid-append leaves it (header + 2 whole records
    // + half of the third, no newline).
    const std::string dir = freshDir("serve_q_torn");
    const std::string idHex = csprintf("%016x", spec.identity());
    {
        std::ofstream req(dir + "/" + idHex + ".req");
        req << spec.toRequestJson() << "\n";
    }
    std::istringstream lines(journal);
    std::string line, torn;
    for (int keep = 0; keep < 3 && std::getline(lines, line); ++keep)
        torn += line + "\n";
    ASSERT_TRUE(std::getline(lines, line));
    torn += line.substr(0, line.size() / 2);
    {
        std::ofstream j(dir + "/" + idHex + ".journal");
        j << torn;
    }

    CampaignQueue q(dir, QueueLimits(), fakeCell, 1);
    ASSERT_EQ(q.recover(), 1u);
    const CampaignQueue::Status st = awaitComplete(q, spec.identity());
    EXPECT_EQ(st.done, 5u);
    // The torn record was discarded, the two whole ones restored, and
    // the final aggregate is byte-identical to the uninterrupted run's.
    EXPECT_EQ(q.counters().cellsRestored, 2u);
    EXPECT_EQ(q.counters().cellsRun, 3u);
    EXPECT_EQ(slurp(st.resultPath), refBytes);
    q.shutdown(true);
}

TEST(ServeQueue, ForeignAndTornHeaderJournalsAreSetAside)
{
    const CampaignSpec spec = smallSpec("aside", 3);
    const std::string idHex = csprintf("%016x", spec.identity());

    // A sweep-format journal squatting on our key: its magic fails the
    // strict header parse, so it is structurally not ours - set aside
    // as .invalid, campaign re-run from scratch, nothing trusted.
    {
        const std::string dir = freshDir("serve_q_sweepmagic");
        {
            std::ofstream req(dir + "/" + idHex + ".req");
            req << spec.toRequestJson() << "\n";
            std::ofstream j(dir + "/" + idHex + ".journal");
            j << journalHeader("hscd-sweep-journal v1", spec.identity())
              << "\n0 ";
            encodeResult(j, fakeCell(spec, 0));
            j << " -\n";
        }
        CampaignQueue q(dir, QueueLimits(), fakeCell, 1);
        ASSERT_EQ(q.recover(), 1u);
        const CampaignQueue::Status st =
            awaitComplete(q, spec.identity());
        EXPECT_EQ(st.done, 3u);
        EXPECT_EQ(q.counters().cellsRestored, 0u);
        EXPECT_TRUE(fs::exists(dir + "/" + idHex + ".journal.invalid"));
        q.shutdown(true);
    }

    // A well-formed serve journal carrying a different identity (e.g.
    // a file copied between state dirs): refused as foreign.
    {
        const std::string dir = freshDir("serve_q_foreign");
        {
            std::ofstream req(dir + "/" + idHex + ".req");
            req << spec.toRequestJson() << "\n";
            std::ofstream j(dir + "/" + idHex + ".journal");
            j << journalHeader("hscd-serve-journal v1",
                               spec.identity() ^ 0xabcdu)
              << "\n";
        }
        CampaignQueue q(dir, QueueLimits(), fakeCell, 1);
        ASSERT_EQ(q.recover(), 1u);
        const CampaignQueue::Status st =
            awaitComplete(q, spec.identity());
        EXPECT_EQ(st.done, 3u);
        EXPECT_EQ(q.counters().cellsRestored, 0u);
        EXPECT_TRUE(fs::exists(dir + "/" + idHex + ".journal.foreign"));
        q.shutdown(true);
    }

    // Satellite 3, server side: a header torn inside the identity is
    // structurally invalid - set aside as .invalid, never misparsed.
    {
        const std::string dir = freshDir("serve_q_invalid");
        {
            std::ofstream req(dir + "/" + idHex + ".req");
            req << spec.toRequestJson() << "\n";
            const std::string good =
                journalHeader("hscd-serve-journal v1", spec.identity());
            std::ofstream j(dir + "/" + idHex + ".journal");
            j << good.substr(0, good.size() - 7); // torn mid-identity
        }
        CampaignQueue q(dir, QueueLimits(), fakeCell, 1);
        ASSERT_EQ(q.recover(), 1u);
        const CampaignQueue::Status st =
            awaitComplete(q, spec.identity());
        EXPECT_EQ(st.done, 3u);
        EXPECT_EQ(q.counters().cellsRestored, 0u);
        EXPECT_TRUE(fs::exists(dir + "/" + idHex + ".journal.invalid"));
        q.shutdown(true);
    }
}

TEST(ServeQueue, OverBoundSubmissionsAreShed)
{
    const std::string dir = freshDir("serve_q_shed");
    QueueLimits limits;
    limits.maxQueuedCells = 2;
    // Workers that never run (queue full before shutdown): block cells
    // from draining by submitting more than the bound at once.
    CampaignQueue q(dir, limits, fakeCell, 1);
    const CampaignSpec big = smallSpec("too-big", 5);
    CampaignQueue::Admission a = q.submit(big);
    EXPECT_EQ(a.status, CampaignQueue::Admission::Status::Shed);
    EXPECT_NE(a.error, "");
    EXPECT_EQ(q.counters().shed, 1u);
    // Nothing durable was left behind for a shed submission.
    EXPECT_FALSE(
        fs::exists(dir + "/" + csprintf("%016x", big.identity()) +
                   ".req"));
    q.shutdown(true);
}

// --- server request dispatch ------------------------------------------

TEST(ServeServer, DispatchesNdjsonRequests)
{
    ServerOptions opt;
    opt.stateDir = freshDir("serve_srv");
    opt.workers = 1;
    opt.extraStats = [] {
        return std::string("\"caches\": {\"compile\": {}}");
    };
    Server server(opt, fakeCell);

    std::string resp = server.handleRequestLine("{\"op\": \"healthz\"}");
    EXPECT_NE(resp.find("\"ok\": true"), std::string::npos) << resp;

    resp = server.handleRequestLine("not json at all");
    EXPECT_NE(resp.find("\"ok\": false"), std::string::npos) << resp;

    resp = server.handleRequestLine("{\"op\": \"nosuch\"}");
    EXPECT_NE(resp.find("\"ok\": false"), std::string::npos) << resp;
    EXPECT_EQ(server.queue().counters().rejected, 2u);

    const CampaignSpec spec = smallSpec("ndjson", 2);
    resp = server.handleRequestLine(spec.toRequestJson());
    EXPECT_NE(resp.find("\"status\": \"accepted\""), std::string::npos)
        << resp;
    const std::string idHex = csprintf("%016x", spec.identity());
    EXPECT_NE(resp.find(idHex), std::string::npos) << resp;

    awaitComplete(server.queue(), spec.identity());
    resp = server.handleRequestLine(
        csprintf("{\"op\": \"poll\", \"id\": \"%s\"}", idHex));
    EXPECT_NE(resp.find("\"status\": \"complete\""), std::string::npos)
        << resp;

    resp = server.handleRequestLine("{\"op\": \"stats\"}");
    EXPECT_NE(resp.find("hscd-serve-stats"), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"caches\""), std::string::npos) << resp;
    server.queue().shutdown(true);
}

// --- sweep abort contract (satellites 2 and 6) -------------------------

namespace {

/** Run a 4-cell sweep whose second cell triggers @p trip. */
void
sweepAbortScenario(bench::SweepOptions opts, std::function<void()> trip)
{
    bench::Sweep sweep(opts, "abort-contract");
    sweep.addCustom("ok-0", [] { return fakeCell(CampaignSpec(), 0); });
    sweep.addCustom("trip", [trip] {
        trip();
        return fakeCell(CampaignSpec(), 1);
    });
    for (int i = 2; i < 4; ++i)
        sweep.addCustom(csprintf("slow-%d", i), [i] {
            std::this_thread::sleep_for(std::chrono::milliseconds(80));
            return fakeCell(CampaignSpec(), std::size_t(i));
        });
    sweep.run();
    std::ostringstream devnull;
    sweep.finish(devnull); // must std::exit(ExitAbort), never return
    std::exit(0);
}

} // namespace

TEST(SweepAbort, ExpiredDeadlineExitsWithAbortCode)
{
    bench::SweepOptions opts;
    opts.jobs = 1;
    opts.deadlineMs = 1; // expires before the later cells start
    EXPECT_EXIT(sweepAbortScenario(opts, [] {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(30));
                }),
                testing::ExitedWithCode(verify::ExitAbort), "deadline");
}

TEST(SweepAbort, SigtermCheckpointsAndExitsWithAbortCode)
{
    EXPECT_EXIT(
        {
            // parse() installs the SIGINT/SIGTERM handlers.
            std::vector<std::string> argvStrs = {"sweep-abort-test"};
            std::vector<char *> argv = {argvStrs[0].data()};
            bench::SweepOptions opts =
                bench::SweepOptions::parse(1, argv.data());
            opts.jobs = 1;
            opts.checkpointPath =
                testing::TempDir() + "sweep_abort_sig.journal";
            std::remove(opts.checkpointPath.c_str());
            sweepAbortScenario(opts, [] { std::raise(SIGTERM); });
        },
        testing::ExitedWithCode(verify::ExitAbort),
        "skipped.*journaled");
}
