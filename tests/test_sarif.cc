/**
 * @file
 * SARIF renderer tests: structural 2.1.0 conformance of real lint
 * output, the stable rule table, the byte-identical-at-any-jobs
 * determinism contract, and a full-document golden snapshot over a
 * fixed diagnostic set. An intentional format change regenerates the
 * snapshot with
 *
 *   HSCD_PRINT_GOLDEN=1 ./tests/hscd_tests --gtest_filter=Sarif.Golden*
 *
 * and pastes the document emitted between the GOLDEN-BEGIN/END markers
 * below (the docs example and the schema version are contractual:
 * downstream SARIF viewers key on them).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "verify/verify.hh"

using namespace hscd;
using hir::ProgramBuilder;

namespace {

obs::Provenance
fixedProvenance()
{
    obs::Provenance prov;
    prov.schema = "hscd-lint";
    prov.version = 1;
    prov.tool = "hscd_lint";
    prov.configHash = 0x1234;
    prov.faultSpec = "off";
    prov.jobs = 8;  // must NOT appear in the output
    return prov;
}

/** A program that fires MARK001 (maxDistance=1 clamps a distance-3 read). */
verify::DiagnosticEngine
lintClampedKernel(const std::string &name)
{
    ProgramBuilder b;
    b.param("N", 16);
    b.array("A", {"N"});
    b.array("B", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("A", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("B", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("B", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1, [&] {
            b.read("A", {b.p("N") - 1 - b.v("i")});
        });
    });
    compiler::AnalysisOptions aopts;
    aopts.maxDistance = 1;
    compiler::CompiledProgram cp =
        compiler::compileProgram(b.build(), aopts);
    return verify::lintProgram(cp, name);
}

} // namespace

TEST(Sarif, StructuralConformanceOnRealLintOutput)
{
    std::vector<verify::DiagnosticEngine> engines;
    engines.push_back(lintClampedKernel("kernel"));
    ASSERT_GT(engines[0].diagnostics().size(), 0u);
    const std::string doc = verify::renderSarif(engines,
                                                fixedProvenance());

    // Top-level 2.1.0 shape.
    EXPECT_NE(doc.find("\"$schema\": "
                       "\"https://json.schemastore.org/sarif-2.1.0.json\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("\"columnKind\": \"utf16CodeUnits\""),
              std::string::npos);

    // The driver carries the FULL catalog as its rule table, fired or
    // not, so ruleIndex stays stable across runs.
    std::size_t nrules = 0;
    const verify::CatalogEntry *cat = verify::diagnosticCatalog(nrules);
    for (std::size_t i = 0; i < nrules; ++i)
        EXPECT_NE(doc.find("\"id\": \"" + std::string(cat[i].id) + "\""),
                  std::string::npos)
            << cat[i].id;

    // Every result's ruleIndex is its catalog index.
    for (const verify::Diagnostic &diag : engines[0].diagnostics()) {
        const std::string pair =
            "\"ruleId\": \"" + diag.id + "\",\n          \"ruleIndex\": " +
            std::to_string(verify::catalogIndex(diag.id)) + ",";
        EXPECT_NE(doc.find(pair), std::string::npos) << pair;
    }

    // Logical locations (the HIR has no files) and the provenance
    // properties, minus the jobs field.
    EXPECT_NE(doc.find("\"logicalLocations\""), std::string::npos);
    EXPECT_NE(doc.find("\"fullyQualifiedName\": \"kernel::MAIN"),
              std::string::npos);
    EXPECT_NE(doc.find("\"schema\": \"hscd-lint/1\""), std::string::npos);
    EXPECT_NE(doc.find("\"configHash\": \"0000000000001234\""),
              std::string::npos);
    EXPECT_EQ(doc.find("jobs"), std::string::npos)
        << "jobs may vary between runs and must stay out of SARIF";
}

TEST(Sarif, ByteIdenticalAtAnyJobsValue)
{
    const char *names[] = {"alpha", "beta", "gamma"};
    auto render = [&](unsigned jobs) {
        std::vector<verify::DiagnosticEngine> engines = parallelMap(
            jobs, 3,
            [&](std::size_t i) { return lintClampedKernel(names[i]); });
        return verify::renderSarif(engines, fixedProvenance());
    };
    const std::string serial = render(1);
    EXPECT_EQ(serial, render(4));
    EXPECT_NE(serial.find("\"alpha\""), std::string::npos);
    EXPECT_LT(serial.find("\"alpha\""), serial.find("\"gamma\""))
        << "results must keep input order, not completion order";
}

// --------------------------------------------------------------------
// Full-document golden snapshot over a fixed diagnostic set.
// --------------------------------------------------------------------

namespace {

// Regenerate with HSCD_PRINT_GOLDEN=1 (see file comment).
const char *kGoldenSarif = R"gold({
  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "hscd_lint",
          "informationUri": "https://example.invalid/hscd",
          "rules": [
            {
              "id": "HIR001",
              "name": "undefined-variable",
              "shortDescription": {"text": "an expression uses a variable with no enclosing loop or parameter binding"},
              "defaultConfiguration": {"level": "error"}
            },
            {
              "id": "HIR002",
              "name": "shadowed-variable",
              "shortDescription": {"text": "a loop index rebinds a live binding (outer loop index or program parameter)"},
              "defaultConfiguration": {"level": "warning"}
            },
            {
              "id": "HIR003",
              "name": "subscript-out-of-bounds",
              "shortDescription": {"text": "a subscript is provably outside [0, extent) for every dynamic instance"},
              "defaultConfiguration": {"level": "error"}
            },
            {
              "id": "HIR004",
              "name": "empty-doall",
              "shortDescription": {"text": "a DOALL's bounds are provably empty; it still costs two epoch boundaries"},
              "defaultConfiguration": {"level": "warning"}
            },
            {
              "id": "HIR005",
              "name": "single-trip-doall",
              "shortDescription": {"text": "a DOALL provably runs exactly one iteration (serial in effect)"},
              "defaultConfiguration": {"level": "note"}
            },
            {
              "id": "HIR006",
              "name": "wait-without-post",
              "shortDescription": {"text": "a wait on a provably-constant flag that no post can ever match (guaranteed deadlock)"},
              "defaultConfiguration": {"level": "error"}
            },
            {
              "id": "HIR007",
              "name": "post-without-wait",
              "shortDescription": {"text": "a post on a constant flag that no wait ever consumes (dead synchronization)"},
              "defaultConfiguration": {"level": "note"}
            },
            {
              "id": "GRAPH001",
              "name": "unreachable-epoch",
              "shortDescription": {"text": "an epoch node with no path from the program entry; its references are dead and its marks meaningless"},
              "defaultConfiguration": {"level": "warning"}
            },
            {
              "id": "GRAPH002",
              "name": "distance-exceeds-timetag",
              "shortDescription": {"text": "a Time-Read distance operand larger than the configured timetag width can represent; the compiler must saturate, not rely on hardware clamping"},
              "defaultConfiguration": {"level": "error"}
            },
            {
              "id": "GRAPH003",
              "name": "bypass-on-unprotected",
              "shortDescription": {"text": "a Bypass mark on a read that neither a critical section nor post/wait synchronization justifies"},
              "defaultConfiguration": {"level": "error"}
            },
            {
              "id": "GRAPH004",
              "name": "write-write-conflict",
              "shortDescription": {"text": "two DOALL tasks provably write the same word in one epoch instance with no lock or post/wait ordering (nondeterministic final value)"},
              "defaultConfiguration": {"level": "warning"}
            },
            {
              "id": "ORACLE001",
              "name": "under-marked-read",
              "shortDescription": {"text": "the compiler's mark is weaker than the word-exact oracle requires: a stale hit is reachable (soundness bug)"},
              "defaultConfiguration": {"level": "error"}
            },
            {
              "id": "ORACLE002",
              "name": "over-marked-reads",
              "shortDescription": {"text": "summary note: reads marked more conservatively than the word-exact oracle requires (precision loss, not unsoundness)"},
              "defaultConfiguration": {"level": "note"}
            },
            {
              "id": "MARK001",
              "name": "proven-over-conservative",
              "shortDescription": {"text": "a Time-Read (or Bypass) whose proven-minimal sound mark is strictly weaker: the exact minimal epoch distance is larger than marked, or the read is provably never stale; `--tighten` rewrites these"},
              "defaultConfiguration": {"level": "note"}
            },
            {
              "id": "MARK002",
              "name": "redundant-marking",
              "shortDescription": {"text": "a Time-Read dominated by an earlier Time-Read of a containing section in the same epoch at an equal-or-stricter distance: it can never refetch on TPI (modulo tag resets) yet costs a refetch on SC"},
              "defaultConfiguration": {"level": "note"}
            },
            {
              "id": "MARK003",
              "name": "distance-saturation",
              "shortDescription": {"text": "the true minimal epoch distance exceeds the 2^timetagBits - 1 window, so the saturated operand will refetch fresh data whenever the tag ages out (the static predictor of CONSERVATIVE misses)"},
              "defaultConfiguration": {"level": "note"}
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "GRAPH004",
          "ruleIndex": 10,
          "level": "warning",
          "message": {"text": "DOALL tasks 0 and 1 both write word 0 of A"},
          "locations": [
            {
              "logicalLocations": [
                {
                  "name": "A(0)",
                  "fullyQualifiedName": "kernel::MAIN::A(0)",
                  "kind": "member"
                }
              ]
            }
          ],
          "properties": {
            "program": "kernel",
            "refId": 7,
            "severity": "warning"
          }
        },
        {
          "ruleId": "MARK002",
          "ruleIndex": 14,
          "level": "note",
          "message": {"text": "Time-Read dominated by an earlier identical Time-Read"},
          "locations": [
            {
              "logicalLocations": [
                {
                  "name": "A(i)",
                  "fullyQualifiedName": "kernel::MAIN::A(i)",
                  "kind": "member"
                }
              ]
            }
          ],
          "properties": {
            "program": "kernel",
            "refId": 3,
            "severity": "note"
          }
        }
      ],
      "columnKind": "utf16CodeUnits",
      "properties": {
        "schema": "hscd-lint/1",
        "tool": "hscd_lint",
        "configHash": "0000000000001234",
        "fault": "off"
      }
    }
  ]
}
)gold";

} // namespace

TEST(Sarif, GoldenSnapshot)
{
    verify::DiagnosticEngine d("kernel");
    d.report("GRAPH004", verify::Severity::Warning,
             verify::SourceLoc{"MAIN", 7, "A(0)"},
             "DOALL tasks 0 and 1 both write word 0 of A");
    d.report("MARK002", verify::Severity::Note,
             verify::SourceLoc{"MAIN", 3, "A(i)"},
             "Time-Read dominated by an earlier identical Time-Read");
    std::vector<verify::DiagnosticEngine> engines;
    engines.push_back(std::move(d));
    const std::string doc = verify::renderSarif(engines,
                                                fixedProvenance());

    if (std::getenv("HSCD_PRINT_GOLDEN")) {
        std::fprintf(stderr, "GOLDEN-BEGIN\n%sGOLDEN-END\n",
                     doc.c_str());
        return;
    }
    EXPECT_EQ(doc, kGoldenSarif)
        << "SARIF format changed; regenerate the snapshot "
           "(HSCD_PRINT_GOLDEN=1, see file comment)";
}
