/**
 * @file
 * Random legal-DOALL program generator for property tests.
 *
 * Programs are built so that no DOALL carries a cross-task same-word
 * dependence (outside critical sections); the executor's race detector
 * re-checks this at run time, so the generator is itself under test.
 */

#ifndef HSCD_TESTS_PROGRAM_GEN_HH
#define HSCD_TESTS_PROGRAM_GEN_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "hir/builder.hh"

namespace hscd {
namespace testgen {

struct GenOptions
{
    std::uint64_t seed = 1;
    std::int64_t arraySize = 48;
    unsigned dataArrays = 3;
    unsigned phases = 4;          ///< top-level phases
    bool useCritical = true;
    bool useIf = true;
    bool useUnknown = true;
    bool useCalls = true;
    bool useSync = true;
    /**
     * Start MAIN with a barrier so no fill happens in epoch 0 (where
     * TPI's side-filled words boot invalid); used by cross-scheme
     * dominance properties.
     */
    bool leadingBarrier = false;
};

inline hir::Program
randomLegalProgram(const GenOptions &opt)
{
    using hir::ProgramBuilder;
    using hir::TakePolicy;
    Rng rng(opt.seed);
    ProgramBuilder b;
    const std::int64_t N = opt.arraySize;
    b.param("N", N);

    std::vector<std::string> arrays;
    for (unsigned a = 0; a < opt.dataArrays; ++a) {
        arrays.push_back("A" + std::to_string(a));
        b.array(arrays.back(), {"N"});
    }
    b.array("ACC", {4}); // critical-section accumulators

    // One DOALL epoch: pick a written array and a legal access pattern.
    auto doallPhase = [&](const std::string &ivar) {
        unsigned w = rng.below(opt.dataArrays);
        const std::string &written = arrays[w];
        bool split = rng.chance(0.3); // write evens, read odds
        std::int64_t off = rng.range(0, 2);
        std::int64_t hi = split ? N / 2 - 1 : N - 1 - off;
        b.doall(ivar, 0, hi, [&] {
            auto i = b.v(ivar);
            // Reads of arrays not written this epoch: any shape.
            for (unsigned r = 0; r < 1 + rng.below(3); ++r) {
                unsigned a = rng.below(opt.dataArrays);
                if (a == w)
                    continue;
                switch (rng.below(4)) {
                  case 0:
                    b.read(arrays[a], {i});
                    break;
                  case 1:
                    b.read(arrays[a],
                           {b.c(rng.range(0, N - 1))});
                    break;
                  case 2:
                    if (opt.useUnknown) {
                        b.read(arrays[a], {b.unknown()});
                        break;
                    }
                    [[fallthrough]];
                  default:
                    b.read(arrays[a], {i * (split ? 2 : 1)});
                    break;
                }
            }
            b.compute(1 + rng.below(4));
            if (split) {
                // Tasks write even elements, read odd ones: disjoint.
                b.read(written, {i * 2 + 1});
                b.write(written, {i * 2});
            } else {
                if (rng.chance(0.5))
                    b.read(written, {i + off}); // read-modify-write
                b.write(written, {i + off});
                if (rng.chance(0.3))
                    b.read(written, {i + off}); // covered read
            }
            if (opt.useCritical && rng.chance(0.35)) {
                std::int64_t slot = rng.range(0, 3);
                b.critical([&] {
                    b.read("ACC", {b.c(slot)});
                    b.write("ACC", {b.c(slot)});
                });
            }
            // Alternate-policy branch inside the DOALL body: legal (both
            // arms read-only on data this epoch) but stream-ineligible,
            // so the corpus exercises the fast path's refusal shapes too
            // (FastpathEquiv.GeneratedAlternateInDoallFallsBack).
            if (opt.useIf && rng.chance(0.12)) {
                unsigned a = rng.below(opt.dataArrays);
                // Reading the written array is only legal at the task's
                // own (covered) word; any shape goes for the others.
                hir::IntExpr sub =
                    a == w ? (split ? i * 2 : i + off) : i;
                b.ifUnknown(TakePolicy::Alternate,
                            [&] {
                                b.read(arrays[a], {sub});
                                b.compute(2);
                            },
                            [&] { b.compute(1); });
            }
        });
    };

    // Doacross chain: task i consumes task i-1's element, ordered by
    // post/wait. Self-seeding post(0) keeps it deadlock-free under any
    // schedule (posts precede waits; tasks only wait on lower tasks).
    auto syncPhase = [&](const std::string &ivar) {
        unsigned w = rng.below(opt.dataArrays);
        const std::string &written = arrays[w];
        b.doall(ivar, 1, N - 1, [&] {
            auto i = b.v(ivar);
            b.compute(1 + rng.below(3));
            b.post(0);
            b.wait(i - 1);
            b.read(written, {i - 1});
            b.write(written, {i});
            b.post(i);
        });
    };

    auto serialPhase = [&](const std::string &ivar) {
        unsigned a = rng.below(opt.dataArrays);
        std::int64_t lo = rng.range(0, N / 2);
        std::int64_t hi = lo + rng.range(0, N / 2 - 1);
        b.doserial(ivar, lo, hi, [&] {
            if (rng.chance(0.6))
                b.read(arrays[a], {b.v(ivar)});
            b.write(arrays[a], {b.v(ivar)});
        });
        if (rng.chance(0.4))
            b.read("ACC", {b.c(rng.range(0, 3))});
    };

    int uid = 0;
    auto phase = [&](auto &&self, int depth) -> void {
        std::string v = "i" + std::to_string(uid++);
        if (opt.useSync && depth == 0 && rng.chance(0.15)) {
            syncPhase(v);
            return;
        }
        switch (rng.below(depth > 0 ? 4u : 6u)) {
          case 0:
          case 1:
            doallPhase(v);
            break;
          case 2:
            serialPhase(v);
            break;
          case 3:
            if (opt.useIf) {
                TakePolicy pol =
                    rng.chance(0.5) ? TakePolicy::Alternate
                                    : TakePolicy::Hash;
                b.ifUnknown(pol, [&] { doallPhase(v); },
                            [&] { serialPhase(v + "e"); });
                break;
            }
            doallPhase(v);
            break;
          case 4: {
            // Time loop around one or two inner phases.
            b.doserial("t" + std::to_string(uid++), 0,
                       rng.range(1, 3), [&] {
                           self(self, depth + 1);
                           if (rng.chance(0.5))
                               self(self, depth + 1);
                       });
            break;
          }
          default:
            b.barrier();
            doallPhase(v);
            break;
        }
    };

    if (opt.useCalls && rng.chance(0.5)) {
        b.proc("MAIN", [&] {
            if (opt.leadingBarrier)
                b.barrier();
            phase(phase, 0);
            b.call("STEP");
            phase(phase, 0);
            b.call("STEP");
        });
        b.proc("STEP", [&] { phase(phase, 0); });
    } else {
        b.proc("MAIN", [&] {
            if (opt.leadingBarrier)
                b.barrier();
            for (unsigned p = 0; p < opt.phases; ++p)
                phase(phase, 0);
        });
    }
    return b.build();
}

} // namespace testgen
} // namespace hscd

#endif // HSCD_TESTS_PROGRAM_GEN_HH
