/**
 * @file
 * Determinism and resilience contract of the fault-injection harness:
 * the same (workload, config, fault_seed) produces byte-identical
 * RunResults at any --jobs and on both execution paths (fast path and
 * interpreter); a disabled plan is bit-for-bit identical to a build
 * without the fault axis; the checkpoint journal restarts an
 * interrupted sweep with byte-identical final JSON; and a throwing or
 * timed-out cell becomes a structured per-cell "error" instead of
 * killing the sweep.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "harness.hh"
#include "sweep.hh"

using namespace hscd;
using namespace hscd::bench;

namespace {

const std::vector<std::string> kBenchmarks = {"ADM", "OCEAN", "TRFD"};
const SchemeKind kSchemes[] = {SchemeKind::SC, SchemeKind::TPI,
                               SchemeKind::HW};

SweepOptions
faultOpts(unsigned jobs, const std::string &jsonPath = "")
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.jsonPath = jsonPath;
    opts.fault = fault::FaultPlan::parse("0.02:7");
    return opts;
}

/** Build and run the reference 3x3 faulted sweep. */
std::vector<sim::RunResult>
runFaultSweep(SweepOptions opts)
{
    Sweep sweep(opts, "fault-determinism");
    for (const std::string &name : kBenchmarks)
        for (SchemeKind k : kSchemes)
            sweep.add(name, makeConfig(k), /*scale=*/1);
    sweep.run();
    std::vector<sim::RunResult> out;
    out.reserve(sweep.size());
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        EXPECT_EQ(sweep.error(i), "");
        out.push_back(sweep[i]);
    }
    if (!opts.jsonPath.empty()) {
        std::ostringstream devnull;
        sweep.finish(devnull); // emits the JSON file
    }
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/**
 * Blank the provenance header's "jobs" line - the one field allowed to
 * differ across thread counts - and require it appears exactly once so
 * nothing else can hide behind the mask.
 */
std::string
maskJobsLine(std::string s)
{
    const std::string key = "\"jobs\":";
    std::size_t at = s.find(key);
    EXPECT_NE(at, std::string::npos) << "provenance header missing";
    if (at == std::string::npos)
        return s;
    const std::size_t eol = s.find('\n', at);
    s.replace(at, eol - at, key + " <masked>");
    EXPECT_EQ(s.find(key, at + key.size() + 1), std::string::npos)
        << "\"jobs\" must appear exactly once (provenance only)";
    return s;
}

} // namespace

TEST(FaultDeterminism, IdenticalResultsAtAnyJobs)
{
    const std::vector<sim::RunResult> serial = runFaultSweep(faultOpts(1));
    ASSERT_EQ(serial.size(), kBenchmarks.size() * 3);

    // Non-vacuous: the campaign injected faults somewhere.
    Counter injected = 0;
    for (const sim::RunResult &r : serial)
        injected += r.faultsInjected;
    EXPECT_GT(injected, 0u);

    for (unsigned jobs : {2u, 8u}) {
        const std::vector<sim::RunResult> parallel =
            runFaultSweep(faultOpts(jobs));
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i])
                << "cell " << i << " diverged at jobs=" << jobs << ": "
                << parallel[i].summary() << " vs " << serial[i].summary();
    }
}

TEST(FaultDeterminism, FaultedJsonIsByteIdenticalAcrossJobs)
{
    const std::string p1 = testing::TempDir() + "hscd_fault_j1.json";
    const std::string p8 = testing::TempDir() + "hscd_fault_j8.json";
    runFaultSweep(faultOpts(1, p1));
    runFaultSweep(faultOpts(8, p8));
    const std::string j1 = maskJobsLine(slurp(p1));
    EXPECT_FALSE(j1.empty());
    EXPECT_EQ(j1, maskJobsLine(slurp(p8)));
    EXPECT_NE(j1.find("\"faults_injected\""), std::string::npos);
    std::remove(p1.c_str());
    std::remove(p8.c_str());
}

TEST(FaultDeterminism, FastPathMatchesInterpreterUnderFaults)
{
    for (const std::string &name : kBenchmarks) {
        const CompiledProgramPtr prog = compiledBenchmark(name, 1);
        const compiler::CompiledProgram &cp = *prog;
        for (SchemeKind k : kSchemes) {
            MachineConfig cfg = makeConfig(k);
            cfg.fault = fault::FaultPlan::parse("0.02:11");
            cfg.shadowEpochCheck = true;
            cfg.fastPath = false;
            sim::RunResult legacy = sim::simulate(cp, cfg);
            cfg.fastPath = true;
            sim::RunResult fast = sim::simulate(cp, cfg);
            EXPECT_EQ(legacy, fast)
                << name << "/" << schemeName(k) << "\n  legacy: "
                << legacy.summary() << "\n  fast:   " << fast.summary();
        }
    }
}

TEST(FaultDeterminism, DisabledPlanKeepsLegacyJsonShape)
{
    const std::string path = testing::TempDir() + "hscd_nofault.json";
    SweepOptions opts;
    opts.jobs = 2;
    opts.jsonPath = path;
    std::vector<sim::RunResult> rs = runFaultSweep(opts);
    for (const sim::RunResult &r : rs) {
        EXPECT_EQ(r.faultsInjected, 0u);
        EXPECT_FALSE(r.aborted());
    }
    const std::string j = slurp(path);
    // None of the robustness-only keys may appear in fault-free output.
    EXPECT_EQ(j.find("\"faults_injected\""), std::string::npos);
    EXPECT_EQ(j.find("\"abort\""), std::string::npos);
    EXPECT_EQ(j.find("\"error\""), std::string::npos);
    EXPECT_EQ(j.find("\"shadow_violations\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(FaultDeterminism, ResumeReproducesByteIdenticalJson)
{
    const std::string json0 = testing::TempDir() + "hscd_ckpt_full.json";
    const std::string json1 = testing::TempDir() + "hscd_ckpt_res.json";
    const std::string ckpt = testing::TempDir() + "hscd_ckpt.journal";
    std::remove(ckpt.c_str());

    // Uninterrupted run, journaling as it goes.
    SweepOptions opts = faultOpts(4, json0);
    opts.checkpointPath = ckpt;
    runFaultSweep(opts);
    const std::string reference = slurp(json0);
    const std::string journal = slurp(ckpt);
    EXPECT_FALSE(journal.empty());

    // Full resume: every cell restored, output byte-identical.
    SweepOptions ropts = faultOpts(4, json1);
    ropts.checkpointPath = ckpt;
    ropts.resume = true;
    runFaultSweep(ropts);
    EXPECT_EQ(slurp(json1), reference);

    // Interrupted resume: keep the header and the first two records,
    // then a torn half-record exactly as a kill -9 mid-append leaves
    // it. The torn record and all missing cells are re-run; the final
    // JSON must still be byte-identical.
    std::istringstream all(journal);
    std::string line, torn;
    int keep = 3; // header + 2 records
    while (keep-- > 0 && std::getline(all, line))
        torn += line + "\n";
    torn += "5 12345 87"; // torn tail: truncated record, no newline
    {
        std::ofstream f(ckpt, std::ios::trunc);
        f << torn;
    }
    SweepOptions topts = faultOpts(4, json1);
    topts.checkpointPath = ckpt;
    topts.resume = true;
    runFaultSweep(topts);
    EXPECT_EQ(slurp(json1), reference);

    std::remove(json0.c_str());
    std::remove(json1.c_str());
    std::remove(ckpt.c_str());
}

TEST(FaultDeterminism, TornHeaderJournalIsRejected)
{
    // A checkpoint whose header was torn inside the 16-hex identity
    // (kill -9 before the header flushed whole) must be rejected as
    // not-a-journal - the old prefix parser would misparse the
    // truncated hash as a shorter, foreign-looking identity.
    const std::string ckpt = testing::TempDir() + "hscd_torn.journal";
    {
        SweepOptions opts;
        opts.jobs = 1;
        opts.checkpointPath = ckpt;
        Sweep sweep(opts, "torn-header");
        sweep.add("ADM", makeConfig(SchemeKind::SC), 1);
        sweep.run();
    }
    const std::string journal = slurp(ckpt);
    const std::size_t eol = journal.find('\n');
    ASSERT_NE(eol, std::string::npos);
    {
        // Keep the header minus its last 7 identity digits.
        std::ofstream f(ckpt, std::ios::trunc);
        f << journal.substr(0, eol - 7);
    }
    SweepOptions opts;
    opts.jobs = 1;
    opts.checkpointPath = ckpt;
    opts.resume = true;
    Sweep other(opts, "torn-header");
    other.add("ADM", makeConfig(SchemeKind::SC), 1);
    EXPECT_THROW(other.run(), FatalError);
    std::remove(ckpt.c_str());
}

TEST(FaultDeterminism, ForeignJournalIsRejected)
{
    const std::string ckpt = testing::TempDir() + "hscd_foreign.journal";
    {
        SweepOptions opts;
        opts.jobs = 1;
        opts.checkpointPath = ckpt;
        Sweep sweep(opts, "experiment-A");
        sweep.add("ADM", makeConfig(SchemeKind::SC), 1);
        sweep.run();
    }
    SweepOptions opts;
    opts.jobs = 1;
    opts.checkpointPath = ckpt;
    opts.resume = true;
    Sweep other(opts, "experiment-B");
    other.add("ADM", makeConfig(SchemeKind::SC), 1);
    EXPECT_THROW(other.run(), FatalError);
    std::remove(ckpt.c_str());
}

TEST(FaultDeterminism, ThrowingCellBecomesStructuredError)
{
    const std::string path = testing::TempDir() + "hscd_error.json";
    SweepOptions opts;
    opts.jobs = 2;
    opts.jsonPath = path;
    Sweep sweep(opts, "error-propagation");
    sweep.add("ADM", makeConfig(SchemeKind::SC), 1);
    const std::size_t bad = sweep.addCustom("exploder", []() -> sim::RunResult {
        throw std::runtime_error("boom: injected harness failure");
    });
    sweep.add("TRFD", makeConfig(SchemeKind::TPI), 1);
    sweep.run(); // must not throw

    EXPECT_EQ(sweep.error(0), "");
    EXPECT_EQ(sweep.error(bad), "boom: injected harness failure");
    EXPECT_EQ(sweep.error(2), "");
    EXPECT_GT(sweep[0].cycles, 0u);
    EXPECT_GT(sweep[2].cycles, 0u);

    std::ostringstream devnull;
    sweep.finish(devnull);
    const std::string j = slurp(path);
    EXPECT_NE(j.find("\"error\": \"boom: injected harness failure\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(FaultDeterminism, TimedOutCellIsIsolated)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.timeoutMs = 50;
    Sweep sweep(opts, "timeout");
    const std::size_t slow = sweep.addCustom("sleeper", []() -> sim::RunResult {
        std::this_thread::sleep_for(std::chrono::seconds(10));
        return {};
    });
    sweep.add("ADM", makeConfig(SchemeKind::SC), 1);
    sweep.run();
    EXPECT_NE(sweep.error(slow).find("timeout"), std::string::npos)
        << sweep.error(slow);
    EXPECT_EQ(sweep.error(1), "");
    EXPECT_GT(sweep[1].cycles, 0u);
}
