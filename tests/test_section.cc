/** @file Unit + property tests for the array-section algebra. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "compiler/section.hh"

using namespace hscd;
using namespace hscd::compiler;

namespace {

DimTriplet
t(std::int64_t lo, std::int64_t hi, std::int64_t stride = 1)
{
    return DimTriplet{lo, hi, stride};
}

/** Enumerate the elements of a triplet (test oracle). */
std::set<std::int64_t>
elems(const DimTriplet &d)
{
    std::set<std::int64_t> out;
    for (std::int64_t v = d.lo; v <= d.hi; v += d.stride)
        out.insert(v);
    return out;
}

bool
trueOverlap(const DimTriplet &a, const DimTriplet &b)
{
    auto ea = elems(a);
    for (std::int64_t v : elems(b))
        if (ea.count(v))
            return true;
    return false;
}

bool
trueContains(const DimTriplet &a, const DimTriplet &b)
{
    auto ea = elems(a);
    for (std::int64_t v : elems(b))
        if (!ea.count(v))
            return false;
    return true;
}

} // namespace

TEST(DimTriplet, CountAndEmpty)
{
    EXPECT_TRUE(t(3, 2).empty());
    EXPECT_EQ(t(3, 2).count(), 0);
    EXPECT_EQ(t(0, 9).count(), 10);
    EXPECT_EQ(t(0, 9, 3).count(), 4);
    EXPECT_EQ(t(5, 5).count(), 1);
}

TEST(DimTriplet, OverlapBasics)
{
    EXPECT_TRUE(t(0, 9).mayOverlap(t(5, 15)));
    EXPECT_FALSE(t(0, 4).mayOverlap(t(5, 9)));
    EXPECT_TRUE(t(0, 9).mayOverlap(t(9, 9)));
    EXPECT_FALSE(t(3, 2).mayOverlap(t(0, 9)));
}

TEST(DimTriplet, OverlapStrideResidues)
{
    // Evens vs odds: provably disjoint.
    EXPECT_FALSE(t(0, 100, 2).mayOverlap(t(1, 99, 2)));
    // Evens vs evens: overlap.
    EXPECT_TRUE(t(0, 100, 2).mayOverlap(t(50, 80, 2)));
    // stride 3 starting at 0 vs stride 3 starting at 1.
    EXPECT_FALSE(t(0, 90, 3).mayOverlap(t(1, 91, 3)));
    // gcd(4,6)=2, offsets 0 and 2: residues match mod 2 -> may overlap.
    EXPECT_TRUE(t(0, 100, 4).mayOverlap(t(2, 100, 6)));
    // gcd(4,6)=2, offsets 0 and 1: disjoint.
    EXPECT_FALSE(t(0, 100, 4).mayOverlap(t(1, 101, 6)));
}

TEST(DimTriplet, OverlapNeverFalseNegative)
{
    // Property: mayOverlap must be true whenever a real common element
    // exists (conservative direction).
    Rng rng(42);
    for (int iter = 0; iter < 3000; ++iter) {
        DimTriplet a{rng.range(-10, 30), 0, rng.range(1, 7)};
        a.hi = a.lo + rng.range(-2, 40);
        DimTriplet b{rng.range(-10, 30), 0, rng.range(1, 7)};
        b.hi = b.lo + rng.range(-2, 40);
        if (trueOverlap(a, b)) {
            EXPECT_TRUE(a.mayOverlap(b))
                << a.str() << " vs " << b.str();
        }
    }
}

TEST(DimTriplet, ContainsExactOnRandomTriplets)
{
    // contains() is a must-analysis: it may only say true when b really is
    // a subset of a.
    Rng rng(43);
    for (int iter = 0; iter < 3000; ++iter) {
        DimTriplet a{rng.range(-5, 20), 0, rng.range(1, 6)};
        a.hi = a.lo + rng.range(-2, 30);
        DimTriplet b{rng.range(-5, 20), 0, rng.range(1, 6)};
        b.hi = b.lo + rng.range(-2, 30);
        if (a.contains(b)) {
            EXPECT_TRUE(trueContains(a, b))
                << a.str() << " should contain " << b.str();
        }
    }
}

TEST(DimTriplet, ContainsBasics)
{
    EXPECT_TRUE(t(0, 9).contains(t(2, 5)));
    EXPECT_FALSE(t(0, 9).contains(t(2, 15)));
    EXPECT_TRUE(t(0, 10, 2).contains(t(2, 8, 2)));
    EXPECT_FALSE(t(0, 10, 2).contains(t(1, 9, 2)));
    EXPECT_TRUE(t(0, 10, 2).contains(t(4, 4)));
    EXPECT_FALSE(t(0, 10, 2).contains(t(3, 3)));
    EXPECT_TRUE(t(0, 100).contains(t(5, 4)));  // empty always contained
    EXPECT_TRUE(t(0, 12, 3).contains(t(0, 12, 6)));
    EXPECT_FALSE(t(0, 12, 4).contains(t(0, 12, 6)));
}

TEST(DimTriplet, HullCoversBoth)
{
    Rng rng(44);
    for (int iter = 0; iter < 2000; ++iter) {
        DimTriplet a{rng.range(-5, 20), 0, rng.range(1, 6)};
        a.hi = a.lo + rng.range(0, 30);
        DimTriplet b{rng.range(-5, 20), 0, rng.range(1, 6)};
        b.hi = b.lo + rng.range(0, 30);
        DimTriplet h = a.hull(b);
        EXPECT_TRUE(h.contains(a)) << h.str() << " !>= " << a.str();
        EXPECT_TRUE(h.contains(b)) << h.str() << " !>= " << b.str();
    }
}

TEST(DimTriplet, HullWithEmpty)
{
    EXPECT_EQ(t(5, 4).hull(t(0, 9, 3)), t(0, 9, 3));
    EXPECT_EQ(t(0, 9, 3).hull(t(5, 4)), t(0, 9, 3));
}

TEST(DimTriplet, Str)
{
    EXPECT_EQ(t(0, 9).str(), "0:9");
    EXPECT_EQ(t(0, 9, 2).str(), "0:9:2");
    EXPECT_EQ(t(4, 4).str(), "4");
    EXPECT_EQ(t(4, 3).str(), "<empty>");
}

TEST(RegularSection, WholeArray)
{
    hir::ArrayDecl decl{"A", {10, 20}, 0};
    RegularSection s = RegularSection::whole(decl, 3);
    EXPECT_EQ(s.array(), 3u);
    ASSERT_EQ(s.dims().size(), 2u);
    EXPECT_EQ(s.dims()[0], t(0, 9));
    EXPECT_EQ(s.dims()[1], t(0, 19));
    EXPECT_FALSE(s.empty());
}

TEST(RegularSection, OverlapRequiresSameArray)
{
    RegularSection a(0, {t(0, 9)});
    RegularSection b(1, {t(0, 9)});
    EXPECT_FALSE(a.mayOverlap(b));
    EXPECT_TRUE(a.mayOverlap(RegularSection(0, {t(5, 12)})));
}

TEST(RegularSection, OverlapAllDimsMustIntersect)
{
    RegularSection a(0, {t(0, 9), t(0, 9)});
    RegularSection row(0, {t(0, 9), t(20, 29)});
    EXPECT_FALSE(a.mayOverlap(row));
    RegularSection corner(0, {t(9, 12), t(9, 12)});
    EXPECT_TRUE(a.mayOverlap(corner));
}

TEST(RegularSection, Contains)
{
    RegularSection a(0, {t(0, 9), t(0, 9)});
    EXPECT_TRUE(a.contains(RegularSection(0, {t(1, 3), t(4, 4)})));
    EXPECT_FALSE(a.contains(RegularSection(0, {t(1, 3), t(4, 14)})));
    EXPECT_FALSE(a.contains(RegularSection(1, {t(1, 3), t(4, 4)})));
}

TEST(RegularSection, EmptyWhenAnyDimEmpty)
{
    RegularSection a(0, {t(0, 9), t(5, 4)});
    EXPECT_TRUE(a.empty());
    EXPECT_FALSE(a.mayOverlap(a));
}

TEST(SectionSet, AddAbsorbsContained)
{
    SectionSet s;
    s.add(RegularSection(0, {t(0, 9)}));
    s.add(RegularSection(0, {t(2, 5)}));
    EXPECT_EQ(s.terms().size(), 1u);
    s.add(RegularSection(0, {t(0, 20)}));
    EXPECT_EQ(s.terms().size(), 1u);
    EXPECT_EQ(s.terms()[0].dims()[0], t(0, 20));
}

TEST(SectionSet, OverlapQueries)
{
    SectionSet s;
    s.add(RegularSection(0, {t(0, 4)}));
    s.add(RegularSection(1, {t(10, 14)}));
    EXPECT_TRUE(s.mayOverlap(RegularSection(0, {t(4, 8)})));
    EXPECT_FALSE(s.mayOverlap(RegularSection(0, {t(5, 8)})));
    EXPECT_TRUE(s.mayOverlap(RegularSection(1, {t(14, 20)})));

    SectionSet o;
    o.add(RegularSection(1, {t(12, 13)}));
    EXPECT_TRUE(s.mayOverlap(o));
    SectionSet n;
    n.add(RegularSection(2, {t(0, 100)}));
    EXPECT_FALSE(s.mayOverlap(n));
}

TEST(SectionSet, WidensBeyondCapSoundly)
{
    SectionSet s(4);
    for (int i = 0; i < 12; ++i)
        s.add(RegularSection(0, {t(i * 10, i * 10 + 2)}));
    EXPECT_LE(s.terms().size(), 5u);
    // Everything ever added must still be covered (may-set soundness).
    for (int i = 0; i < 12; ++i)
        EXPECT_TRUE(s.mayOverlap(RegularSection(0, {t(i * 10, i * 10)})));
}

TEST(SectionSet, UnionWith)
{
    SectionSet a, b;
    a.add(RegularSection(0, {t(0, 4)}));
    b.add(RegularSection(0, {t(10, 14)}));
    b.add(RegularSection(3, {t(0, 1)}));
    a.unionWith(b);
    EXPECT_TRUE(a.mayOverlap(RegularSection(0, {t(12, 12)})));
    EXPECT_TRUE(a.mayOverlap(RegularSection(3, {t(1, 1)})));
    EXPECT_TRUE(a.mayOverlap(RegularSection(0, {t(2, 2)})));
}

TEST(Gcd64, Basics)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(-12, 18), 6);
    EXPECT_EQ(gcd64(0, 7), 7);
    EXPECT_EQ(gcd64(7, 0), 7);
    EXPECT_EQ(gcd64(1, 999), 1);
}
