/**
 * @file
 * The umbrella header must be self-contained and sufficient for the
 * README's quickstart flow end to end.
 */

#include <gtest/gtest.h>

#include "hscd/hscd.hh"

TEST(Umbrella, QuickstartFlowWorks)
{
    using namespace hscd;

    hir::ProgramBuilder b;
    b.param("N", 128);
    b.array("X", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 4, [&] {
            b.doall("i", 0, 127, [&] {
                b.read("X", {b.v("i")});
                b.compute(3);
                b.write("X", {b.v("i")});
            });
        });
    });

    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    sim::RunResult r = sim::simulate(cp, cfg);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_GT(r.timeReadHits, 0u);

    // Every public surface referenced by the header is reachable.
    EXPECT_EQ(workloads::benchmarkNames().size(), 6u);
    mem::StorageParams sp;
    EXPECT_GT(mem::tpiOverhead(sp).cacheSramBits, 0.0);
    EXPECT_FALSE(hir::programToString(cp.program).empty());
    EXPECT_STREQ(schemeName(SchemeKind::VC), "VC");
}

TEST(Umbrella, EveryBenchmarkThroughThePublicApi)
{
    using namespace hscd;
    for (const std::string &name : workloads::benchmarkNames()) {
        compiler::CompiledProgram cp = compiler::compileProgram(
            workloads::buildBenchmark(name, 1));
        MachineConfig cfg;
        cfg.procs = 4;
        cfg.scheme = SchemeKind::TPI;
        sim::Machine m(cp, cfg);
        sim::TraceBuffer trace;
        m.setTraceSink(&trace);
        sim::RunResult r = m.run();
        EXPECT_EQ(r.oracleViolations, 0u) << name;
        EXPECT_EQ(trace.records().size() > 0, true) << name;
    }
}
