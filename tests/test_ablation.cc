/** @file Tests for TPI mechanism ablations and executor metrics. */

#include <gtest/gtest.h>

#include "hir/builder.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::sim;

namespace {

compiler::CompiledProgram &
timeLoop()
{
    static compiler::CompiledProgram cp = [] {
        ProgramBuilder b;
        b.param("N", 128);
        b.array("X", {"N"});
        b.proc("MAIN", [&] {
            b.doserial("t", 0, 9, [&] {
                b.doall("i", 0, 127, [&] {
                    b.read("X", {b.v("i")});
                    b.write("X", {b.v("i")});
                });
            });
        });
        return compiler::compileProgram(b.build());
    }();
    return cp;
}

MachineConfig
tpi(unsigned procs = 4)
{
    MachineConfig c;
    c.scheme = SchemeKind::TPI;
    c.procs = procs;
    return c;
}

} // namespace

TEST(Ablation, NoDistanceStaysCoherentButSlower)
{
    RunResult full = simulate(timeLoop(), tpi());
    MachineConfig c = tpi();
    c.tpiUseDistance = false;
    RunResult nod = simulate(timeLoop(), c);
    EXPECT_EQ(nod.oracleViolations, 0u);
    EXPECT_GT(nod.readMisses, full.readMisses)
        << "without the distance operand the d=2 reuse is lost";
    EXPECT_GT(nod.cycles, full.cycles);
}

TEST(Ablation, NoPromotionStaysCoherent)
{
    MachineConfig c = tpi();
    c.tpiPromoteOnHit = false;
    RunResult r = simulate(timeLoop(), c);
    EXPECT_EQ(r.oracleViolations, 0u);
    RunResult full = simulate(timeLoop(), tpi());
    EXPECT_LE(r.timeReadHits, full.timeReadHits)
        << "promotion can only help";
}

TEST(Ablation, PromotionMattersForReadOnlyPhases)
{
    // X written once early, then Time-Read repeatedly at d matching only
    // the first interval: promotion keeps the hits coming.
    ProgramBuilder b;
    b.param("N", 64);
    b.array("X", {"N"});
    b.array("Y", {"N"});
    b.proc("MAIN", [&] {
        b.doall("w", 0, 63, [&] { b.write("X", {b.v("w")}); });
        b.doserial("t", 0, 7, [&] {
            b.doall("i", 0, 63, [&] {
                b.read("X", {b.v("i")});
                b.write("Y", {b.v("i")});
            });
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    RunResult with = simulate(cp, tpi());
    MachineConfig c = tpi();
    c.tpiPromoteOnHit = false;
    RunResult without = simulate(cp, c);
    EXPECT_EQ(without.oracleViolations, 0u);
    EXPECT_GT(with.timeReadHits, without.timeReadHits)
        << "only promotion carries freshness forward beyond d epochs";
    EXPECT_LT(with.cycles, without.cycles);
}

TEST(Ablation, FlagsDoNotAffectOtherSchemes)
{
    MachineConfig c;
    c.scheme = SchemeKind::HW;
    c.procs = 4;
    RunResult base = simulate(timeLoop(), c);
    c.tpiUseDistance = false;
    c.tpiPromoteOnHit = false;
    RunResult ablated = simulate(timeLoop(), c);
    EXPECT_EQ(base.cycles, ablated.cycles);
    EXPECT_EQ(base.readMisses, ablated.readMisses);
}

TEST(Metrics, BalancedDoallHasLowImbalance)
{
    RunResult r = simulate(timeLoop(), tpi());
    EXPECT_GE(r.imbalance(), 1.0);
    EXPECT_LT(r.imbalance(), 1.3);
    EXPECT_GT(r.busyMax, 0u);
    EXPECT_GT(r.busyAvg, 0.0);
}

TEST(Metrics, TriangularLoopUnbalancedUnderBlock)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::buildTrfd(1));
    MachineConfig block = tpi(8);
    RunResult rb = simulate(cp, block);
    MachineConfig cyc = tpi(8);
    cyc.sched = SchedPolicy::Cyclic;
    RunResult rc = simulate(cp, cyc);
    EXPECT_GT(rb.imbalance(), rc.imbalance())
        << "cyclic spreads the triangle across processors";
}

TEST(Metrics, SerialCyclesAccountedFor)
{
    // A serial-only program is all serial cycles.
    ProgramBuilder b;
    b.array("A", {32});
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 31, [&] { b.write("A", {b.v("k")}); });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    RunResult r = simulate(cp, tpi());
    EXPECT_EQ(r.serialCycles, r.cycles);
    EXPECT_EQ(r.busyMax, 0u);

    // The time loop is dominated by parallel work.
    RunResult rp = simulate(timeLoop(), tpi());
    EXPECT_LT(rp.serialCycles, rp.cycles);
}
