/**
 * @file
 * Differential scenario driver for the synthetic workload generators.
 *
 * For every family and seed, the generated program must (a) lint with
 * zero errors, (b) show zero under-markings against the stale-marking
 * oracle, (c) run shadow-clean (zero oracle / shadow-epoch / DOALL
 * violations) under TPI and SC, and (d) produce byte-identical
 * RunResults from the epoch-stream fast path and the per-access
 * interpreter across the whole scheme matrix. A generator that emits a
 * racy DOALL, a dishonest marking, or a shape the fast path
 * miscompiles fails here, per family, with the seed in the message.
 *
 * Seed count: 200 per family by default; HSCD_SYNTH_SEEDS overrides
 * (the `synth.soak` ctest entry widens it to 500).
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "compiler/analysis.hh"
#include "sim/machine.hh"
#include "sim/stream.hh"
#include "verify/verify.hh"
#include "workloads/synth.hh"

using namespace hscd;
using namespace hscd::workloads;

namespace {

constexpr SchemeKind kAllSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                                      SchemeKind::TPI, SchemeKind::HW,
                                      SchemeKind::VC};

unsigned
seedCount()
{
    if (const char *env = std::getenv("HSCD_SYNTH_SEEDS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 200;
}

/** Fast path vs interpreter: field-by-field + fingerprint equality. */
::testing::AssertionResult
pathsAgree(const compiler::CompiledProgram &cp, MachineConfig cfg)
{
    cfg.fastPath = false;
    sim::RunResult legacy = sim::simulate(cp, cfg);
    cfg.fastPath = true;
    sim::RunResult fast = sim::simulate(cp, cfg);
    if (!(legacy == fast))
        return ::testing::AssertionFailure()
               << schemeName(cfg.scheme) << ": results differ\n  legacy: "
               << legacy.summary() << "\n  fast:   " << fast.summary();
    if (legacy.fingerprint() != fast.fingerprint())
        return ::testing::AssertionFailure()
               << schemeName(cfg.scheme) << ": fingerprints differ";
    return ::testing::AssertionSuccess();
}

/** The full per-seed gauntlet for one family. */
void
runFamily(const std::string &family)
{
    const unsigned seeds = seedCount();
    unsigned eligible = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const std::string label =
            "synth:" + family + ":" + std::to_string(seed);
        compiler::CompiledProgram cp =
            compiler::compileProgram(buildSynth(family, seed, 1));

        // (a) lint-clean. The oracle runs once below, not inside lint.
        verify::LintOptions lo;
        lo.runOracle = false;
        verify::DiagnosticEngine d = verify::lintProgram(cp, label, lo);
        ASSERT_EQ(d.errors(), 0u) << label << ":\n" << d.renderText();

        // (b) zero under-markings: the generator's markings come from
        // the real Analysis pipeline and must be honest.
        verify::OracleReport rep = verify::oracleAnalyze(cp);
        ASSERT_TRUE(rep.underMarked.empty())
            << label << " under-marked ref " << rep.underMarked.front();

        // (d) fast path == interpreter on every scheme.
        for (SchemeKind k : kAllSchemes) {
            MachineConfig cfg;
            cfg.scheme = k;
            cfg.procs = 8;
            eligible += sim::streamEligible(cp, cfg) ? 1 : 0;
            EXPECT_TRUE(pathsAgree(cp, cfg)) << label;
        }

        // (c) shadow-clean under the timetag schemes (sampled: the
        // shadow checker is the slow exact-epoch cross-check).
        if (seed % 17 == 1) {
            for (SchemeKind k : {SchemeKind::TPI, SchemeKind::SC}) {
                MachineConfig cfg;
                cfg.scheme = k;
                cfg.procs = 8;
                cfg.shadowEpochCheck = true;
                sim::RunResult r = sim::simulate(cp, cfg);
                EXPECT_EQ(r.oracleViolations, 0u)
                    << label << " " << schemeName(k);
                EXPECT_EQ(r.shadowViolations, 0u)
                    << label << " " << schemeName(k);
                EXPECT_EQ(r.doallViolations, 0u)
                    << label << " " << schemeName(k);
                EXPECT_FALSE(r.abort.aborted())
                    << label << " " << schemeName(k);
            }
        }
    }
    // Must not pass vacuously with every seed falling back to the
    // interpreter (Alternate-in-DOALL shapes are tested elsewhere).
    EXPECT_GT(eligible, 0u) << family;
}

} // namespace

TEST(SynthDifferential, FamilyListComplete)
{
    const std::vector<std::string> fams = synthFamilies();
    ASSERT_EQ(fams.size(), 6u);
    for (const std::string &f : fams) {
        EXPECT_TRUE(isSynthFamily(f)) << f;
        EXPECT_TRUE(isSynthSpec("synth:" + f + ":1")) << f;
    }
    EXPECT_FALSE(isSynthFamily("ocean"));
    EXPECT_FALSE(isSynthSpec("trace:x"));
}

TEST(SynthDifferential, SpecParsing)
{
    SynthSpec s = parseSynthSpec("synth:stencil:42");
    EXPECT_EQ(s.family, "stencil");
    EXPECT_EQ(s.seed, 42u);
    EXPECT_EQ(s.str(), "synth:stencil:42");
    EXPECT_THROW(parseSynthSpec("synth:migratory"), FatalError);
    EXPECT_THROW(parseSynthSpec("synth:bogus:1"), FatalError);
    EXPECT_THROW(parseSynthSpec("synth:stencil:abc"), FatalError);
    EXPECT_THROW(parseSynthSpec("synth:"), FatalError);
    EXPECT_THROW(parseSynthSpec("gen:1"), FatalError);
    EXPECT_THROW(buildSynth("stencil", 1, 0), FatalError);
}

TEST(SynthDifferential, Streaming) { runFamily("streaming"); }
TEST(SynthDifferential, Reuse) { runFamily("reuse"); }
TEST(SynthDifferential, Prodcons) { runFamily("prodcons"); }
TEST(SynthDifferential, Stencil) { runFamily("stencil"); }
TEST(SynthDifferential, Migratory) { runFamily("migratory"); }
TEST(SynthDifferential, Falseshare) { runFamily("falseshare"); }
