/** @file Unit tests for the generic cache array. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace hscd;
using namespace hscd::mem;

namespace {

MachineConfig
smallConfig(unsigned assoc = 1)
{
    MachineConfig c;
    c.cacheBytes = 256; // 16 lines of 16B
    c.lineBytes = 16;
    c.assoc = assoc;
    return c;
}

} // namespace

TEST(CacheArray, Geometry)
{
    CacheArray<> c(smallConfig());
    EXPECT_EQ(c.wordsPerLine(), 4u);
    EXPECT_EQ(c.lineCount(), 16u);
    EXPECT_EQ(c.lineAddr(0x123), 0x120u);
    EXPECT_EQ(c.wordIndex(0x120), 0u);
    EXPECT_EQ(c.wordIndex(0x12c), 3u);
}

TEST(CacheArray, MissThenHit)
{
    CacheArray<> c(smallConfig());
    EXPECT_EQ(c.lookup(0x100, 1), nullptr);
    auto &line = c.victim(0x100, 1);
    EXPECT_FALSE(line.valid);
    line.valid = true;
    line.base = c.lineAddr(0x100);
    line.lastUse = 1;
    EXPECT_NE(c.lookup(0x104, 2), nullptr);
    EXPECT_EQ(c.lookup(0x104, 2), c.lookup(0x10c, 3));
}

TEST(CacheArray, DirectMappedConflict)
{
    CacheArray<> c(smallConfig());
    // 16 lines * 16B = 256B: addresses 0x100 and 0x200 conflict.
    auto &l1 = c.victim(0x100, 1);
    l1.valid = true;
    l1.base = 0x100;
    auto &l2 = c.victim(0x200, 2);
    EXPECT_EQ(&l1, &l2) << "same set, direct-mapped";
    EXPECT_TRUE(l2.valid) << "caller sees the eviction candidate";
}

TEST(CacheArray, AssociativityAvoidsConflict)
{
    CacheArray<> c(smallConfig(2));
    auto &l1 = c.victim(0x100, 1);
    l1.valid = true;
    l1.base = 0x100;
    l1.lastUse = 1;
    auto &l2 = c.victim(0x200, 2);
    EXPECT_NE(&l1, &l2) << "second way available";
    l2.valid = true;
    l2.base = 0x200;
    l2.lastUse = 2;
    EXPECT_NE(c.lookup(0x100, 3), nullptr);
    EXPECT_NE(c.lookup(0x200, 4), nullptr);
}

TEST(CacheArray, LruVictimSelection)
{
    CacheArray<> c(smallConfig(2));
    auto &a = c.victim(0x100, 1);
    a.valid = true;
    a.base = 0x100;
    a.lastUse = 1;
    auto &b = c.victim(0x200, 5);
    b.valid = true;
    b.base = 0x200;
    b.lastUse = 5;
    // Touch a to make b the LRU.
    c.lookup(0x100, 9);
    auto &v = c.victim(0x300, 10);
    EXPECT_EQ(v.base, 0x200u);
}

TEST(CacheArray, LookupDoesNotRegressLru)
{
    CacheArray<> c(smallConfig(2));
    auto &a = c.victim(0x100, 10);
    a.valid = true;
    a.base = 0x100;
    a.lastUse = 10;
    // A bookkeeping lookup at time 0 must not make the line look old.
    c.lookup(0x100, 0);
    EXPECT_EQ(c.peek(0x100)->lastUse, 10u);
}

TEST(CacheArray, InvalidateIf)
{
    CacheArray<> c(smallConfig());
    for (Addr base = 0; base < 8 * 16; base += 16) {
        auto &l = c.victim(base, 1);
        l.valid = true;
        l.base = base;
    }
    c.invalidateIf([](auto &l) { return l.base >= 4 * 16; });
    EXPECT_NE(c.lookup(0x00, 2), nullptr);
    EXPECT_NE(c.lookup(0x30, 2), nullptr);
    EXPECT_EQ(c.lookup(0x40, 2), nullptr);
    EXPECT_EQ(c.lookup(0x70, 2), nullptr);
}

TEST(CacheArray, ForEachLineVisitsOnlyValid)
{
    CacheArray<> c(smallConfig());
    auto &l = c.victim(0x100, 1);
    l.valid = true;
    l.base = 0x100;
    int count = 0;
    c.forEachLine([&](auto &) { ++count; });
    EXPECT_EQ(count, 1);
}

TEST(CacheArray, PerWordMetadataSized)
{
    struct Tag
    {
        int v = 7;
    };
    MachineConfig cfg = smallConfig();
    cfg.lineBytes = 32;
    cfg.cacheBytes = 512;
    CacheArray<Tag> c(cfg);
    auto &l = c.victim(0x100, 1);
    ASSERT_EQ(c.wordsPerLine(), 8u);
    // Every line's word metadata is default-initialized and writable
    // across the whole line (the flat backing store is sized for it).
    EXPECT_EQ(l.words[3].v, 7);
    l.words[7].v = 11;
    l.stamps[7] = 42;
    EXPECT_EQ(l.words[7].v, 11);
    EXPECT_EQ(l.stamps[7], 42u);
}
