/**
 * @file
 * Soak harness: a larger randomized validation sweep than the unit
 * suite runs — hundreds of random legal programs under randomized
 * machine configurations, every read checked by the value-stamp oracle.
 * Not registered with ctest (it takes tens of seconds); run it directly:
 *
 *   $ ./hscd_soak [rounds] [base-seed]
 */

#include <cstdlib>
#include <iostream>

#include "common/rng.hh"
#include "common/strutil.hh"
#include "program_gen.hh"
#include "sim/machine.hh"

using namespace hscd;
using namespace hscd::sim;

int
main(int argc, char **argv)
{
    const int rounds = argc > 1 ? std::atoi(argv[1]) : 300;
    const std::uint64_t base = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                        : 0xC0FFEE;
    Rng rng(base);
    Counter refs = 0;
    int failures = 0;

    for (int round = 0; round < rounds; ++round) {
        testgen::GenOptions gen;
        gen.seed = rng.next64();
        gen.arraySize = 32 + std::int64_t(rng.below(97));
        gen.phases = 3 + rng.below(4);
        gen.useSync = rng.chance(0.5);

        const bool migrate = rng.chance(0.25);
        compiler::AnalysisOptions opts;
        opts.assumeSerialAffinity = !migrate;
        opts.symbolicParams = rng.chance(0.2);
        compiler::CompiledProgram cp = compiler::compileProgram(
            testgen::randomLegalProgram(gen), opts);

        MachineConfig cfg;
        const SchemeKind kinds[] = {SchemeKind::Base, SchemeKind::SC,
                                    SchemeKind::VC, SchemeKind::TPI,
                                    SchemeKind::TPI, SchemeKind::HW};
        cfg.scheme = kinds[rng.below(6)];
        cfg.procs = 1 + rng.below(12);
        cfg.cacheBytes = std::uint64_t(512) << rng.below(6);
        cfg.lineBytes = 4u << rng.below(4);
        if (cfg.cacheBytes < cfg.lineBytes)
            cfg.cacheBytes = cfg.lineBytes * 8;
        cfg.assoc = 1u << rng.below(3);
        cfg.timetagBits = 2 + rng.below(7);
        cfg.sched = static_cast<SchedPolicy>(rng.below(3));
        cfg.dynamicChunk = 1 + rng.below(8);
        cfg.migrationRate = migrate ? 0.5 + 0.5 * rng.real() : 0.0;
        cfg.migrationSeed = rng.next64();
        cfg.writeBufferAsCache = rng.chance(0.3);
        cfg.sequentialConsistency = rng.chance(0.2);
        cfg.topology = rng.chance(0.3) ? Topology::Torus3D : Topology::MIN;
        cfg.tpiPromoteOnHit = !rng.chance(0.1);
        cfg.tpiUseDistance = !rng.chance(0.1);

        RunResult r;
        try {
            r = simulate(cp, cfg);
        } catch (const std::exception &e) {
            std::cerr << "round " << round << " seed " << gen.seed
                      << ": exception: " << e.what() << "\n";
            ++failures;
            continue;
        }
        refs += r.reads + r.writes;
        if (r.oracleViolations != 0 || r.doallViolations != 0) {
            std::cerr << csprintf(
                "round %d FAILED: seed=%d scheme=%s procs=%d line=%d "
                "tags=%d sched=%s mig=%.2f: %d stale, %d races\n", round,
                gen.seed, schemeName(cfg.scheme), cfg.procs, cfg.lineBytes,
                cfg.timetagBits, schedName(cfg.sched), cfg.migrationRate,
                r.oracleViolations, r.doallViolations);
            ++failures;
        }
    }

    std::cout << csprintf(
        "soak: %d rounds, %s simulated references, %d failures\n", rounds,
        withCommas(refs), failures);
    return failures == 0 ? 0 : 1;
}
