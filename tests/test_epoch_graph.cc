/** @file Unit tests for epoch partitioning and the epoch flow graph. */

#include <gtest/gtest.h>

#include "compiler/epoch_graph.hh"
#include "hir/builder.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::compiler;

namespace {

std::size_t
countParallel(const EpochGraph &g)
{
    std::size_t n = 0;
    for (const auto &node : g.nodes())
        n += node.parallel;
    return n;
}

const EpochNode &
firstParallel(const EpochGraph &g)
{
    for (const auto &node : g.nodes())
        if (node.parallel)
            return node;
    throw std::runtime_error("no parallel node");
}

} // namespace

TEST(EpochGraph, StraightLineSingleDoall)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.doall("i", 0, 15, [&] { b.read("A", {b.v("i")}); });
        b.read("A", {b.c(1)});
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);

    // serial-pre, DOALL, serial-post
    ASSERT_EQ(g.nodes().size(), 3u);
    EXPECT_FALSE(g.nodes()[0].parallel);
    EXPECT_TRUE(g.nodes()[1].parallel);
    EXPECT_FALSE(g.nodes()[2].parallel);
    EXPECT_EQ(g.nodes()[1].parallelVar, "i");
    EXPECT_EQ(g.nodes()[0].refs.size(), 1u);
    EXPECT_EQ(g.nodes()[1].refs.size(), 1u);
    EXPECT_EQ(g.nodes()[2].refs.size(), 1u);

    EXPECT_EQ(g.distance(0, 1), 1u);
    EXPECT_EQ(g.distance(1, 2), 1u);
    EXPECT_EQ(g.distance(0, 2), 2u);
    EXPECT_EQ(g.distance(2, 0), unreachableDist);
    EXPECT_EQ(g.cycleDistance(1), unreachableDist);
}

TEST(EpochGraph, TimeLoopCreatesCycle)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 9, [&] {
            b.doall("i", 0, 15, [&] {
                b.read("A", {b.v("i")});
                b.write("A", {b.v("i")});
            });
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);

    ASSERT_EQ(countParallel(g), 1u);
    const EpochNode &par = firstParallel(g);
    // Consecutive DOALL instances are separated by exit+entry boundaries.
    EXPECT_EQ(g.cycleDistance(par.id), 2u);
}

TEST(EpochGraph, BarrierSplitsSerialCode)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{4}});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.barrier();
        b.read("A", {b.c(0)});
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    ASSERT_EQ(g.nodes().size(), 2u);
    EXPECT_EQ(g.distance(0, 1), 1u);
}

TEST(EpochGraph, SerialLoopWithoutBoundaryStaysInEpoch)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 15, [&] { b.write("A", {b.v("k")}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    ASSERT_EQ(g.nodes().size(), 1u);
    EXPECT_EQ(g.nodes()[0].refs.size(), 1u);
    // Section spans the whole loop range.
    const RegularSection &s = g.nodes()[0].refs[0].section;
    EXPECT_EQ(s.dims()[0].lo, 0);
    EXPECT_EQ(s.dims()[0].hi, 15);
}

TEST(EpochGraph, ZeroTripLoopGetsBypassEdge)
{
    ProgramBuilder b;
    b.param("N", 0);
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        // hi = N-1 = -1 < lo: provably zero-trip is not required, only
        // "not provably >= 1 trip" - the bypass edge must exist.
        b.doserial("t", 0, b.p("N") - 1, [&] {
            b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        });
        b.read("A", {b.c(0)});
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    // pre(0) and post node must be connected with weight 0.
    NodeId post = invalidNode;
    for (const EpochNode &n : g.nodes())
        if (!n.refs.empty() && !n.refs[0].stmt->isWrite)
            post = n.id;
    ASSERT_NE(post, invalidNode);
    EXPECT_EQ(g.distance(0, post), 0u);
}

TEST(EpochGraph, DefiniteTripLoopHasNoBypass)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.doserial("t", 0, 3, [&] {
            b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        });
        b.read("A", {b.c(0)});
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    NodeId post = invalidNode;
    for (const EpochNode &n : g.nodes())
        if (!n.refs.empty() && !n.refs[0].stmt->isWrite)
            post = n.id;
    ASSERT_NE(post, invalidNode);
    // Must pass through the DOALL: 2 boundaries.
    EXPECT_EQ(g.distance(0, post), 2u);
}

TEST(EpochGraph, CallInlining)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.call("INIT");
        b.doall("i", 0, 15, [&] { b.read("A", {b.v("i")}); });
    });
    b.proc("INIT", [&] {
        b.doserial("k", 0, 15, [&] { b.write("A", {b.v("k")}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    // INIT's write lands in the entry serial node.
    EXPECT_EQ(g.nodes()[0].refs.size(), 1u);
    EXPECT_TRUE(g.nodes()[0].refs[0].stmt->isWrite);
    EXPECT_EQ(countParallel(g), 1u);
}

TEST(EpochGraph, CallWithBoundaryCreatesEpochs)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.call("PHASE");
        b.read("A", {b.c(0)});
    });
    b.proc("PHASE", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    EXPECT_EQ(countParallel(g), 1u);
    EXPECT_EQ(g.nodes().size(), 3u);
}

TEST(EpochGraph, SharedProcCalledTwiceOccursTwice)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.call("STEP");
        b.call("STEP");
    });
    b.proc("STEP", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    EXPECT_EQ(countParallel(g), 2u);
    // Same RefId occurs in both parallel nodes.
    RefId seen = invalidRef;
    int occurrences = 0;
    for (const EpochNode &n : g.nodes()) {
        for (const RefOccur &o : n.refs) {
            seen = o.ref;
            ++occurrences;
        }
    }
    EXPECT_EQ(occurrences, 2);
    EXPECT_EQ(seen, 0u);
}

TEST(EpochGraph, IfWithBoundaryBranches)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.ifUnknown(TakePolicy::Alternate, [&] {
            b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        });
        b.read("A", {b.c(0)});
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    NodeId post = invalidNode;
    for (const EpochNode &n : g.nodes())
        if (!n.refs.empty() && !n.refs[0].stmt->isWrite)
            post = n.id;
    ASSERT_NE(post, invalidNode);
    // else-path has no boundary: distance 0 pre -> post.
    EXPECT_EQ(g.distance(0, post), 0u);
    // Parallel write reaches post in 1 boundary.
    EXPECT_EQ(g.distance(firstParallel(g).id, post), 1u);
}

TEST(EpochGraph, DoallRefsCarryParallelContext)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{64}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.doserial("k", 0, 3, [&] {
                b.write("A", {b.v("i") * 4 + b.v("k")});
            });
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const EpochNode &par = firstParallel(g);
    ASSERT_EQ(par.refs.size(), 1u);
    const RefOccur &occ = par.refs[0];
    ASSERT_EQ(occ.loops.size(), 2u);
    EXPECT_TRUE(occ.loops[0].parallel);
    EXPECT_EQ(occ.loops[1].var, "k");
    // Section covers 0..63.
    EXPECT_EQ(occ.section.dims()[0].lo, 0);
    EXPECT_EQ(occ.section.dims()[0].hi, 63);
}

TEST(EpochGraph, StridedSectionFromCoefficient)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{64}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i") * 2}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const RegularSection &s = firstParallel(g).refs[0].section;
    EXPECT_EQ(s.dims()[0].stride, 2);
    EXPECT_EQ(s.dims()[0].lo, 0);
    EXPECT_EQ(s.dims()[0].hi, 30);
}

TEST(EpochGraph, UnknownSubscriptWidensToWholeDim)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{64}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.unknown()}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const RegularSection &s = firstParallel(g).refs[0].section;
    EXPECT_EQ(s.dims()[0].lo, 0);
    EXPECT_EQ(s.dims()[0].hi, 63);
    EXPECT_EQ(s.dims()[0].stride, 1);
}

TEST(EpochGraph, CoverageWithinTask)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.write("A", {b.v("i")});
            b.read("A", {b.v("i")});   // covered
            b.read("A", {b.v("i") + 1}); // not covered (different word)
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const EpochNode &par = firstParallel(g);
    ASSERT_EQ(par.refs.size(), 3u);
    EXPECT_TRUE(par.refs[1].covered);
    EXPECT_FALSE(par.refs[2].covered);
}

TEST(EpochGraph, CoverageNotAcrossConditional)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.ifUnknown(TakePolicy::Alternate,
                        [&] { b.write("A", {b.v("i")}); });
            b.read("A", {b.v("i")}); // conditional write doesn't dominate
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const EpochNode &par = firstParallel(g);
    for (const RefOccur &o : par.refs) {
        if (!o.stmt->isWrite) {
            EXPECT_FALSE(o.covered);
        }
    }
}

TEST(EpochGraph, CoverageSurvivesBothBranches)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.ifUnknown(TakePolicy::Alternate,
                        [&] { b.write("A", {b.v("i")}); },
                        [&] { b.write("A", {b.v("i")}); });
            b.read("A", {b.v("i")}); // written on every path
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const EpochNode &par = firstParallel(g);
    bool found_read = false;
    for (const RefOccur &o : par.refs) {
        if (!o.stmt->isWrite) {
            EXPECT_TRUE(o.covered);
            found_read = true;
        }
    }
    EXPECT_TRUE(found_read);
}

TEST(EpochGraph, CoverageLoopVarFiltering)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.array("B", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.doserial("k", 0, 3, [&] {
                b.write("A", {b.v("k")});
                b.write("B", {b.v("i")});
            });
            b.read("A", {b.c(0)});   // A(k) coverage dropped at loop exit
            b.read("B", {b.v("i")}); // loop-invariant write survives
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const EpochNode &par = firstParallel(g);
    for (const RefOccur &o : par.refs) {
        if (o.stmt->isWrite)
            continue;
        if (p.array(o.stmt->array).name == "A")
            EXPECT_FALSE(o.covered);
        else
            EXPECT_TRUE(o.covered);
    }
}

TEST(EpochGraph, CriticalCoverageRules)
{
    ProgramBuilder b;
    b.array("S", {std::int64_t{4}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.critical([&] {
                b.read("S", {b.c(0)});  // not covered: other lock owners
                b.write("S", {b.c(0)});
                b.read("S", {b.c(0)});  // covered by write in same block
            });
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const EpochNode &par = firstParallel(g);
    ASSERT_EQ(par.refs.size(), 3u);
    EXPECT_FALSE(par.refs[0].covered);
    EXPECT_TRUE(par.refs[0].inCritical);
    EXPECT_TRUE(par.refs[2].covered);
}

TEST(EpochGraph, CriticalWriteKillsOutsideCoverage)
{
    ProgramBuilder b;
    b.array("S", {std::int64_t{4}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.write("S", {b.c(0)});
            b.critical([&] { b.write("S", {b.c(0)}); });
            // Own write precedes, but another task's critical write may
            // intervene: coverage must be cancelled.
            b.read("S", {b.c(0)});
        });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const EpochNode &par = firstParallel(g);
    for (const RefOccur &o : par.refs) {
        if (!o.stmt->isWrite) {
            EXPECT_FALSE(o.covered);
        }
    }
}

TEST(EpochGraph, StrDumpHasNodes)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{4}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] { b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    EpochGraph g = EpochGraph::build(p);
    const std::string s = g.str();
    EXPECT_NE(s.find("E1(DOALL i)"), std::string::npos);
    EXPECT_NE(s.find("->E1(w1)"), std::string::npos);
}
