/** @file Unit tests for the Params key/value store. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"

using namespace hscd;

namespace {

Params
makeParams()
{
    Params p;
    p.define("procs", "16", "number of processors")
        .define("cache_kb", "64", "cache size in KB")
        .define("rate", "0.5", "a ratio")
        .define("name", "tpi", "scheme name")
        .define("verbose", "false", "chatter");
    return p;
}

} // namespace

TEST(Params, DefaultsVisible)
{
    Params p = makeParams();
    EXPECT_EQ(p.getInt("procs"), 16);
    EXPECT_EQ(p.getString("name"), "tpi");
    EXPECT_DOUBLE_EQ(p.getDouble("rate"), 0.5);
    EXPECT_FALSE(p.getBool("verbose"));
}

TEST(Params, SetOverrides)
{
    Params p = makeParams();
    p.set("procs", "64");
    EXPECT_EQ(p.getInt("procs"), 64);
}

TEST(Params, ParseAssignment)
{
    Params p = makeParams();
    p.parseAssignment("cache_kb=256");
    EXPECT_EQ(p.getUint("cache_kb"), 256u);
    p.parseAssignment(" name = hw ");
    EXPECT_EQ(p.getString("name"), "hw");
}

TEST(Params, ParseArgsMany)
{
    Params p = makeParams();
    p.parseArgs({"procs=4", "verbose=true"});
    EXPECT_EQ(p.getInt("procs"), 4);
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(Params, UnknownKeyFatal)
{
    Params p = makeParams();
    EXPECT_THROW(p.set("bogus", "1"), FatalError);
    EXPECT_THROW(p.getInt("bogus"), FatalError);
}

TEST(Params, DuplicateDefineFatal)
{
    Params p;
    p.define("x", "1");
    EXPECT_THROW(p.define("x", "2"), FatalError);
}

TEST(Params, BadIntegerFatal)
{
    Params p = makeParams();
    p.set("procs", "abc");
    EXPECT_THROW(p.getInt("procs"), FatalError);
    p.set("procs", "12x");
    EXPECT_THROW(p.getInt("procs"), FatalError);
}

TEST(Params, NegativeUintFatal)
{
    Params p = makeParams();
    p.set("procs", "-3");
    EXPECT_THROW(p.getUint("procs"), FatalError);
    EXPECT_EQ(p.getInt("procs"), -3);
}

TEST(Params, MissingEqualsFatal)
{
    Params p = makeParams();
    EXPECT_THROW(p.parseAssignment("procs16"), FatalError);
}

TEST(Params, HexIntegerAccepted)
{
    Params p = makeParams();
    p.set("cache_kb", "0x40");
    EXPECT_EQ(p.getInt("cache_kb"), 64);
}

TEST(Params, KeysInDefinitionOrder)
{
    Params p = makeParams();
    ASSERT_EQ(p.keys().size(), 5u);
    EXPECT_EQ(p.keys().front(), "procs");
    EXPECT_EQ(p.keys().back(), "verbose");
}

TEST(Params, DescribeMentionsValueAndDesc)
{
    Params p = makeParams();
    const std::string d = p.describe("procs");
    EXPECT_NE(d.find("procs=16"), std::string::npos);
    EXPECT_NE(d.find("number of processors"), std::string::npos);
}
