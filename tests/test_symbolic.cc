/** @file Tests for symbolic-parameter (size-range) compilation. */

#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "sim/machine.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::compiler;

namespace {

Program
rangedProgram(std::int64_t n)
{
    ProgramBuilder b;
    b.param("N", n, 16, 4096); // bound n, declared range [16, 4096]
    b.array("A", {4096});      // sized for the worst case
    b.array("B", {4096});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 3, [&] {
            b.doall("i", 0, b.p("N") - 1, [&] {
                b.read("A", {b.v("i")});
                b.write("A", {b.v("i")});
                b.read("B", {b.v("i")});
            });
            // Writes only the low half: concrete analysis can prove the
            // upper half read-only; symbolic analysis cannot separate
            // N/2-dependent bounds, so it stays conservative.
            b.doall("j", 0, b.p("N") - 1, [&] {
                b.write("B", {b.v("j")});
            });
        });
    });
    return b.build();
}

} // namespace

TEST(Symbolic, ParamRangeStoredAndDefaulted)
{
    ProgramBuilder b;
    b.param("N", 64, 16, 256);
    b.param("M", 8);
    b.proc("MAIN", [&] { b.compute(1); });
    Program p = b.build();
    EXPECT_EQ(p.paramRange("N").lo, 16);
    EXPECT_EQ(p.paramRange("N").hi, 256);
    EXPECT_EQ(p.paramRange("M").lo, 8);
    EXPECT_EQ(p.paramRange("M").hi, 8);
}

TEST(Symbolic, OutOfRangeValueRejected)
{
    ProgramBuilder b;
    EXPECT_THROW(b.param("N", 8, 16, 256), FatalError);
    ProgramBuilder b2;
    EXPECT_THROW(b2.param("N", 8, 16, 4), FatalError);
}

TEST(Symbolic, MarkingAtLeastAsConservative)
{
    Program p1 = rangedProgram(64);
    Program p2 = rangedProgram(64);
    AnalysisOptions conc;
    AnalysisOptions sym;
    sym.symbolicParams = true;
    CompiledProgram c = compileProgram(std::move(p1), conc);
    CompiledProgram s = compileProgram(std::move(p2), sym);
    EXPECT_GE(s.marking.stats().timeRead, c.marking.stats().timeRead);
    EXPECT_LE(s.marking.stats().normal, c.marking.stats().normal);
}

TEST(Symbolic, OneMarkingServesManySizes)
{
    // Compile once symbolically; the same marks must stay coherent when
    // the program is rebuilt (and run) at other sizes in the range.
    for (std::int64_t n : {16, 64, 128}) {
        AnalysisOptions sym;
        sym.symbolicParams = true;
        CompiledProgram cp = compileProgram(rangedProgram(n), sym);
        MachineConfig cfg;
        cfg.scheme = SchemeKind::TPI;
        cfg.procs = 4;
        sim::RunResult r = sim::simulate(cp, cfg);
        EXPECT_EQ(r.oracleViolations, 0u) << "N=" << n;
        EXPECT_EQ(r.doallViolations, 0u);
    }
}

TEST(Symbolic, RangeIncludingZeroTripsBypassEdge)
{
    // With N possibly 0 the loop may not execute: the bypass edge makes
    // the post-loop read's distance conservative (0 through the bypass).
    ProgramBuilder b;
    b.param("N", 8, 0, 64);
    b.array("A", {64});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("w", 0, 63, [&] { b.write("A", {b.v("w")}); });
        b.doserial("t", 0, b.p("N") - 1, [&] {
            b.doall("i", 0, 63, [&] { b.compute(1); });
        });
        r = b.read("A", {b.c(0)});
    });
    Program p = b.build();
    AnalysisOptions sym;
    sym.symbolicParams = true;
    CompiledProgram cp = compileProgram(std::move(p), sym);
    // Distance must be the bypass path (1), not through the loop (3).
    EXPECT_EQ(cp.marking.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(cp.marking.mark(r).distance, 1u);
}

TEST(Symbolic, ConcreteAnalysisUsesBoundValue)
{
    // Same program compiled concretely: the serial loop provably runs
    // (N = 8 >= 1), so the distance is through the loop.
    ProgramBuilder b;
    b.param("N", 8, 0, 64);
    b.array("A", {64});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("w", 0, 63, [&] { b.write("A", {b.v("w")}); });
        b.doserial("t", 0, b.p("N") - 1, [&] {
            b.doall("i", 0, 63, [&] { b.compute(1); });
        });
        r = b.read("A", {b.c(0)});
    });
    CompiledProgram cp = compileProgram(b.build());
    EXPECT_EQ(cp.marking.mark(r).distance, 3u)
        << "exit DOALL boundary + inner DOALL entry/exit";
}

TEST(Symbolic, StressWithMigrationAndNarrowTags)
{
    // The most hostile combination: symbolic marking (widest sections),
    // serial-task migration (affinity must be off), 2-bit tags (constant
    // two-phase resets), dynamic scheduling. Coherence must survive all
    // of it at once.
    AnalysisOptions opts;
    opts.symbolicParams = true;
    opts.assumeSerialAffinity = false;
    CompiledProgram cp = compileProgram(rangedProgram(128), opts);
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 8;
    cfg.timetagBits = 2;
    cfg.sched = SchedPolicy::Dynamic;
    cfg.migrationRate = 1.0;
    cfg.cacheBytes = 2048;
    sim::RunResult r = sim::simulate(cp, cfg);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.doallViolations, 0u);
}

TEST(Symbolic, UnknownParamNamePanics)
{
    ProgramBuilder b;
    b.proc("MAIN", [&] { b.compute(1); });
    Program p = b.build();
    EXPECT_THROW(p.paramRange("GHOST"), PanicError);
}
