/**
 * @file
 * Regression test for the two-phase tag-reset window on the epoch-stream
 * fast path: a narrower, faster cousin of test_fastpath_equiv.cc aimed
 * at one hand-written interleaving that marches a program across several
 * reset sweeps at a 2-bit tag width (phase = 2 epochs).
 *
 * The program writes array A in an early epoch, spins through enough
 * unrelated epochs for A's timetags to be retired by the reset sweeps,
 * then reads A back. Both execution paths must produce byte-identical
 * RunResults and, with observers attached, event-identical timelines
 * (including the TagReset instants the sweeps emit) - not merely equal
 * aggregate counters.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "hir/builder.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "sim/machine.hh"
#include "sim/stream.hh"

using namespace hscd;
using hir::ProgramBuilder;

namespace {

/** Write A, idle across reset sweeps on B, then read A back. */
compiler::CompiledProgram
resetWindowProgram(int idle_epochs)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.array("B", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        // Epoch 1: seed A with fresh timetags across all processors.
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        // Idle epochs touching only B: A's tags age one epoch per
        // boundary and cross at least two phase boundaries.
        b.doserial("k", 0, idle_epochs - 1, [&] {
            b.doall("i", 0, 15, [&] {
                b.read("B", {b.v("i")});
                b.write("B", {b.v("i")});
            });
        });
        // Final epoch: the marked reads of A arrive after the sweeps
        // have retired its tags - the reset window under test.
        b.doall("i", 0, 15, [&] { b.read("A", {b.v("i")}); });
    });
    return compiler::compileProgram(b.build());
}

struct ObservedRun
{
    sim::RunResult result;
    std::vector<obs::Timeline::Event> events;
    std::vector<obs::MetricSample> rows;
};

ObservedRun
runObserved(const compiler::CompiledProgram &cp, MachineConfig cfg,
            bool fast_path)
{
    cfg.fastPath = fast_path;
    sim::Machine m(cp, cfg);
    obs::Timeline tl;
    obs::MetricsRecorder rec(obs::MetricsSpec::parse("epoch"));
    m.setTimeline(&tl);
    m.setMetrics(&rec);
    ObservedRun out;
    out.result = m.run();
    out.events = tl.events();
    out.rows = rec.rows();
    return out;
}

MachineConfig
narrowTagConfig()
{
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.timetagBits = 2; // phase = 2 epochs: sweeps arrive quickly
    return cfg;
}

} // namespace

TEST(ResetWindow, InterpreterAndFastPathEmitIdenticalTimelines)
{
    const compiler::CompiledProgram cp = resetWindowProgram(6);
    const MachineConfig cfg = narrowTagConfig();
    ASSERT_TRUE(sim::streamEligible(cp, cfg))
        << "the hand-written program must actually take the fast path";

    const ObservedRun interp = runObserved(cp, cfg, /*fast_path=*/false);
    const ObservedRun fast = runObserved(cp, cfg, /*fast_path=*/true);

    // The interleaving must genuinely cross the reset window: the final
    // reads of A miss with TagReset class, and the sweeps show up as
    // TagReset instants on the timeline.
    EXPECT_GT(interp.result.missTagReset, 0u)
        << "program never reached the reset window";
    const auto isReset = [](const obs::Timeline::Event &e) {
        return e.kind == obs::Timeline::Kind::ResetWindow ||
               (e.kind == obs::Timeline::Kind::Instant &&
                e.sub == std::uint8_t(obs::Timeline::InstantKind::TagReset));
    };
    EXPECT_TRUE(std::any_of(interp.events.begin(), interp.events.end(),
                            isReset));

    EXPECT_EQ(interp.result, fast.result);
    EXPECT_EQ(interp.result.fingerprint(), fast.result.fingerprint());
    ASSERT_FALSE(interp.events.empty());
    EXPECT_EQ(interp.events, fast.events);
    EXPECT_EQ(interp.rows, fast.rows);
}

TEST(ResetWindow, SweepCountScalesWithIdleEpochs)
{
    // Sanity on the window geometry itself: lengthening the idle span
    // only adds reset work, and both paths agree at every length.
    const MachineConfig cfg = narrowTagConfig();
    Counter prev = 0;
    for (int idle : {4, 6, 8}) {
        const compiler::CompiledProgram cp = resetWindowProgram(idle);
        const ObservedRun interp =
            runObserved(cp, cfg, /*fast_path=*/false);
        const ObservedRun fast = runObserved(cp, cfg, /*fast_path=*/true);
        EXPECT_EQ(interp.result, fast.result) << "idle=" << idle;
        EXPECT_EQ(interp.events, fast.events) << "idle=" << idle;
        EXPECT_GE(interp.result.missTagReset, prev) << "idle=" << idle;
        prev = interp.result.missTagReset;
    }
}
