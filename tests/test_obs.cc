/**
 * @file
 * Observability layer contract tests: the metrics spec grammar and ring
 * buffer, JSON schema round-trips for both artifact kinds, the
 * fastpath-vs-interpreter event-identity guarantee, the zero-overhead
 * guard (attaching observers must not perturb the simulation), the
 * histogram percentile estimator, and the provenance primitives.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/stats.hh"
#include "compiler/analysis.hh"
#include "obs/metrics.hh"
#include "obs/profile.hh"
#include "obs/provenance.hh"
#include "obs/timeline.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;

namespace {

obs::MetricSample
sampleAt(std::uint64_t epoch)
{
    obs::MetricSample s;
    s.epoch = epoch;
    s.cycle = epoch * 1000;
    s.reads = epoch * 10;
    s.readMisses = epoch;
    s.networkLoad = 0.125 * double(epoch);
    return s;
}

} // namespace

TEST(MetricsSpec, GrammarRoundTrips)
{
    obs::MetricsSpec s = obs::MetricsSpec::parse("epoch");
    EXPECT_EQ(s.mode, obs::MetricsSpec::Mode::Epoch);
    EXPECT_EQ(s.every, 1u);
    EXPECT_EQ(obs::MetricsSpec::parse(s.str()), s);

    s = obs::MetricsSpec::parse("epoch:4");
    EXPECT_EQ(s.every, 4u);
    EXPECT_EQ(obs::MetricsSpec::parse(s.str()), s);

    s = obs::MetricsSpec::parse("cycles:500:cap=10");
    EXPECT_EQ(s.mode, obs::MetricsSpec::Mode::Cycles);
    EXPECT_EQ(s.every, 500u);
    EXPECT_EQ(s.cap, 10u);
    EXPECT_EQ(obs::MetricsSpec::parse(s.str()), s);

    EXPECT_FALSE(obs::MetricsSpec{}.enabled());
    EXPECT_TRUE(s.enabled());
}

TEST(MetricsSpec, MalformedSpecIsFatal)
{
    EXPECT_THROW(obs::MetricsSpec::parse("bogus"), FatalError);
    EXPECT_THROW(obs::MetricsSpec::parse("cycles"), FatalError);
    EXPECT_THROW(obs::MetricsSpec::parse("epoch:0"), FatalError);
    EXPECT_THROW(obs::MetricsSpec::parse("epoch:cap=0"), FatalError);
}

TEST(MetricsRecorder, RingKeepsNewestRows)
{
    obs::MetricsSpec spec = obs::MetricsSpec::parse("epoch:cap=4");
    obs::MetricsRecorder rec(spec);
    for (std::uint64_t e = 0; e < 10; ++e)
        rec.record(sampleAt(e));
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 6u);
    const std::vector<obs::MetricSample> rows = rec.rows();
    ASSERT_EQ(rows.size(), 4u);
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i], sampleAt(6 + i)) << "row " << i;
}

TEST(MetricsRecorder, JsonRoundTripsExactly)
{
    obs::MetricsRecorder rec(obs::MetricsSpec::parse("epoch:2"));
    for (std::uint64_t e = 0; e < 7; ++e)
        rec.record(sampleAt(e));

    obs::Provenance prov;
    prov.schema = "hscd-metrics";
    prov.tool = "test";
    prov.configHash = 0x1234;
    std::ostringstream os;
    rec.writeJson(os, prov);

    std::istringstream is(os.str());
    std::vector<obs::MetricSample> rows;
    std::string spec;
    ASSERT_TRUE(obs::readMetricsJson(is, rows, &spec));
    EXPECT_EQ(spec, "epoch:2:cap=65536");
    ASSERT_EQ(rows.size(), rec.rows().size());
    EXPECT_EQ(rows, rec.rows());
}

TEST(MetricsRecorder, ReaderRejectsForeignJson)
{
    std::istringstream is("{\"not\": \"ours\"}\n");
    std::vector<obs::MetricSample> rows;
    EXPECT_FALSE(obs::readMetricsJson(is, rows));
}

TEST(Timeline, PerfettoCountsRoundTrip)
{
    const unsigned procs = 4;
    obs::Timeline tl;
    tl.procSpan(0, 1, 100, 200);
    tl.procSpan(1, 1, 100, 180);
    tl.missFlow(0, 1, 0x40, 120, 101, /*cls=*/3, /*mark=*/1, /*dist=*/2);
    tl.missFlow(1, 1, 0x80, 130, 101, /*cls=*/5, /*mark=*/1, /*dist=*/1);
    tl.resetWindow(2, 260, 128);
    tl.instant(obs::Timeline::InstantKind::TagReset,
               obs::Timeline::memTrack(procs), 2, 260, 1);

    obs::Provenance prov;
    prov.schema = "hscd-trace";
    prov.tool = "test";
    std::ostringstream os;
    tl.writePerfetto(os, prov, procs, "test");

    std::istringstream is(os.str());
    obs::PerfettoCounts c;
    ASSERT_TRUE(obs::readPerfettoCounts(is, c));
    // Track naming: one process_name plus thread_name + thread_sort_index
    // for each processor track and the memory track.
    EXPECT_EQ(c.metadata, 1 + 2 * (procs + 1));
    // Slices: two epoch spans, two miss services, one reset window.
    EXPECT_EQ(c.slices, 5u);
    EXPECT_EQ(c.flowStarts, 2u); // one arrow per miss
    EXPECT_EQ(c.flowEnds, 2u);
    EXPECT_EQ(c.instants, 1u);
    EXPECT_EQ(tl.dropped(), 0u);
}

TEST(Timeline, CapDropsOnlyMissFlows)
{
    obs::Timeline tl(/*capEvents=*/2);
    tl.missFlow(0, 1, 0x40, 1, 100, 1, 1, 0);
    tl.missFlow(0, 1, 0x44, 2, 100, 1, 1, 0);
    tl.missFlow(0, 1, 0x48, 3, 100, 1, 1, 0); // over cap: dropped
    tl.procSpan(0, 1, 0, 10);                 // spans are never dropped
    EXPECT_EQ(tl.dropped(), 1u);
    ASSERT_EQ(tl.events().size(), 3u);
    EXPECT_EQ(tl.events().back().kind, obs::Timeline::Kind::ProcSpan);
}

namespace {

/** Run one workload with every observer attached. */
struct ObservedRun
{
    sim::RunResult result;
    std::vector<obs::Timeline::Event> events;
    std::vector<obs::MetricSample> rows;
};

ObservedRun
runObserved(const compiler::CompiledProgram &cp, bool fast_path)
{
    MachineConfig cfg;
    cfg.fastPath = fast_path;
    sim::Machine m(cp, cfg);
    obs::Timeline tl;
    obs::MetricsRecorder rec(obs::MetricsSpec::parse("epoch"));
    m.setTimeline(&tl);
    m.setMetrics(&rec);
    m.enableProfiling(true);
    ObservedRun out;
    out.result = m.run();
    out.events = tl.events();
    out.rows = rec.rows();
    return out;
}

} // namespace

TEST(ObsEquivalence, FastPathEmitsIdenticalTimeline)
{
    // The executor is the single producer of observability events, so
    // the interpreter and the epoch-stream fast path must emit
    // event-identical timelines and metric series, not merely equal
    // aggregates.
    const compiler::CompiledProgram cp = compiler::compileProgram(
        workloads::buildBenchmark("ocean", /*scale=*/1));
    const ObservedRun interp = runObserved(cp, /*fast_path=*/false);
    const ObservedRun fast = runObserved(cp, /*fast_path=*/true);

    EXPECT_EQ(interp.result, fast.result);
    ASSERT_FALSE(interp.events.empty());
    ASSERT_FALSE(interp.rows.empty());
    EXPECT_EQ(interp.events, fast.events);
    EXPECT_EQ(interp.rows, fast.rows);
}

TEST(ObsEquivalence, ObserversDoNotPerturbTheRun)
{
    // Zero-overhead guard, correctness half: attaching the recorders
    // must leave every simulated quantity (and the fingerprint) exactly
    // as an unobserved run produces it. The performance half is the
    // perf_smoke 2% gate.
    const compiler::CompiledProgram cp = compiler::compileProgram(
        workloads::buildBenchmark("qcd2", /*scale=*/1));
    MachineConfig cfg;
    sim::Machine plain_machine(cp, cfg);
    const sim::RunResult plain = plain_machine.run();
    const ObservedRun observed = runObserved(cp, cfg.fastPath);

    EXPECT_EQ(plain, observed.result);
    EXPECT_EQ(plain.fingerprint(), observed.result.fingerprint());
    // Profiling ran on the observed machine only; it must stay out of
    // the equality/fingerprint contract but still measure something.
    EXPECT_TRUE(observed.result.profile.any());
    EXPECT_FALSE(plain.profile.any());
}

TEST(PhaseProfile, RendersAndComparesAsDesigned)
{
    obs::PhaseProfile p;
    EXPECT_FALSE(p.any());
    p.execMs = 12.5;
    EXPECT_TRUE(p.any());
    EXPECT_NE(p.json().find("\"exec_ms\": 12.500"), std::string::npos);
    // Wall-clock is nondeterministic by nature, so the profile is
    // deliberately invisible to equality (see the header comment).
    obs::PhaseProfile q;
    EXPECT_TRUE(p == q);
}

TEST(HistogramPercentile, EstimatesFromBins)
{
    stats::StatGroup root("root");
    stats::Histogram h(&root, "lat", "", /*max=*/100.0, /*buckets=*/10);
    EXPECT_EQ(h.percentile(0.5), 0.0); // empty
    // 100 samples spread uniformly: one per unit in [0, 100).
    for (int i = 0; i < 100; ++i)
        h.sample(double(i));
    // Bin mass reports at the bin's upper edge (conservative).
    EXPECT_DOUBLE_EQ(h.percentile(0.05), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.00), 100.0);

    const std::string r = h.render();
    EXPECT_NE(r.find("p50="), std::string::npos);
    EXPECT_NE(r.find("p95="), std::string::npos);
    EXPECT_NE(r.find("p99="), std::string::npos);

    // Overflow mass reports as max.
    stats::Histogram ovf(&root, "ovf", "", 10.0, 2);
    ovf.sample(50.0);
    EXPECT_DOUBLE_EQ(ovf.percentile(0.99), 10.0);
}

TEST(StatGroupDump, ListsStatsInNameOrder)
{
    stats::StatGroup root("root");
    stats::Scalar zeta(&root, "zeta", "");
    stats::Scalar alpha(&root, "alpha", "");
    stats::StatGroup bchild("bravo", &root);
    stats::StatGroup achild("apple", &root);
    stats::Scalar ainner(&achild, "inner", "");
    stats::Scalar binner(&bchild, "inner", "");
    std::ostringstream os;
    root.dump(os, "");
    const std::string d = os.str();
    // Stats sort by name regardless of registration order, and child
    // groups sort among themselves - the listing is independent of
    // construction order (the --jobs determinism requirement).
    ASSERT_NE(d.find("root.zeta"), std::string::npos);
    ASSERT_NE(d.find("root.bravo.inner"), std::string::npos);
    EXPECT_LT(d.find("root.alpha"), d.find("root.zeta"));
    EXPECT_LT(d.find("root.apple.inner"), d.find("root.bravo.inner"));
}

TEST(Provenance, JsonCarriesEveryField)
{
    obs::Provenance p;
    p.schema = "hscd-test";
    p.tool = "unit";
    p.configHash = 0xdeadbeefull;
    p.faultSpec = "0.01:7:net";
    p.jobs = 8;
    const std::string j = p.json(0);
    EXPECT_NE(j.find("\"schema\": \"hscd-test/1\""), std::string::npos);
    EXPECT_NE(j.find("\"tool\": \"unit\""), std::string::npos);
    EXPECT_NE(j.find("\"config_hash\": \"00000000deadbeef\""),
              std::string::npos);
    EXPECT_NE(j.find("\"fault\": \"0.01:7:net\""), std::string::npos);
    EXPECT_NE(j.find("\"jobs\": 8"), std::string::npos);
}

TEST(Provenance, HashAndEscapePrimitives)
{
    // FNV-1a reference vectors.
    EXPECT_EQ(obs::fnv1a(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(obs::fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(obs::fnv1a("ab"), obs::fnv1a("ba"));

    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}
