/**
 * @file
 * The fault-injection subsystem: plan parsing, deterministic
 * counter-based draws, per-scheme recovery paths (retransmission, NACK
 * repair, epoch resync), structured aborts (protocol retry exhaustion,
 * deadlock), and the zero-overhead-when-off guarantee. The end-to-end
 * "never silently wrong" property over a generated corpus lives in the
 * FaultFuzz suite at the bottom; sweep/journal determinism lives in
 * test_fault_determinism.cc.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "compiler/analysis.hh"
#include "fault/injector.hh"
#include "fault/plan.hh"
#include "hir/builder.hh"
#include "program_gen.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;

namespace {

compiler::CompiledProgram
compiledWorkload(const std::string &name, int scale = 1)
{
    return compiler::compileProgram(workloads::buildBenchmark(name, scale));
}

MachineConfig
faultCfg(SchemeKind k, double rate, unsigned sites = fault::kSitesAll,
         std::uint64_t seed = 1)
{
    MachineConfig cfg;
    cfg.scheme = k;
    cfg.shadowEpochCheck = true;
    cfg.fault.rate = rate;
    cfg.fault.seed = seed;
    cfg.fault.sites = sites;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// FaultPlan: the --fault axis grammar.
// ---------------------------------------------------------------------

TEST(FaultPlan, ParseRateOnly)
{
    fault::FaultPlan p = fault::FaultPlan::parse("0.01");
    EXPECT_DOUBLE_EQ(p.rate, 0.01);
    EXPECT_EQ(p.seed, 1u);
    EXPECT_EQ(p.sites, fault::kSitesAll);
    EXPECT_TRUE(p.enabled());

    EXPECT_FALSE(fault::FaultPlan::parse("0").enabled());
}

TEST(FaultPlan, ParseSeedAndSites)
{
    fault::FaultPlan p = fault::FaultPlan::parse("0.5:42");
    EXPECT_DOUBLE_EQ(p.rate, 0.5);
    EXPECT_EQ(p.seed, 42u);

    EXPECT_EQ(fault::FaultPlan::parse("0.1:7:net").sites,
              fault::kSitesNet);
    EXPECT_EQ(fault::FaultPlan::parse("0.1:7:mem").sites,
              fault::kSitesMem);
    EXPECT_EQ(fault::FaultPlan::parse("0.1:7:dir").sites,
              fault::kSitesDir);
    EXPECT_EQ(fault::FaultPlan::parse("0.1:7:all").sites,
              fault::kSitesAll);
    EXPECT_EQ(fault::FaultPlan::parse("0.1:7:net.drop,mem.tag").sites,
              fault::siteBit(fault::Site::NetDrop) |
                  fault::siteBit(fault::Site::MemTagFlip));
}

TEST(FaultPlan, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(fault::FaultPlan::parse(""), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("bogus"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("-0.1"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("1.5"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("0.1:x"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("0.1:7:nosuchsite"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("0.1:7:net:extra"), FatalError);
}

TEST(FaultPlan, StrRoundTrips)
{
    for (const char *spec :
         {"0.01", "0.5:42", "0.001:7:net", "0.25:9:net.drop,dir"}) {
        fault::FaultPlan p = fault::FaultPlan::parse(spec);
        EXPECT_EQ(fault::FaultPlan::parse(p.str()), p) << spec;
    }
}

TEST(FaultPlan, PerCellPlansAreIndependentButStable)
{
    fault::FaultPlan base = fault::FaultPlan::parse("0.01:5:net");
    fault::FaultPlan c0 = fault::planForCell(base, 0);
    fault::FaultPlan c1 = fault::planForCell(base, 1);
    fault::FaultPlan c0again = fault::planForCell(base, 0);
    EXPECT_EQ(c0, c0again);
    EXPECT_NE(c0.seed, c1.seed);
    EXPECT_DOUBLE_EQ(c0.rate, base.rate);
    EXPECT_EQ(c0.sites, base.sites);
}

// ---------------------------------------------------------------------
// FaultInjector: counter-based determinism.
// ---------------------------------------------------------------------

TEST(FaultInjector, DrawsAreDeterministic)
{
    fault::FaultPlan p = fault::FaultPlan::parse("0.3:99");
    fault::FaultInjector a(p), b(p);
    for (int i = 0; i < 1000; ++i) {
        fault::Site s = static_cast<fault::Site>(i % fault::kNumSites);
        EXPECT_EQ(a.fire(s), b.fire(s));
        EXPECT_EQ(a.draw(s), b.draw(s));
    }
    EXPECT_EQ(a.stats().totalInjected(), b.stats().totalInjected());
    EXPECT_GT(a.stats().totalInjected(), 0u);
}

TEST(FaultInjector, RateZeroAndOneAreExtremes)
{
    fault::FaultPlan none = fault::FaultPlan::parse("0:1");
    none.rate = 0.0;
    fault::FaultInjector quiet(none);
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(quiet.fire(fault::Site::NetDrop));

    fault::FaultPlan always = fault::FaultPlan::parse("1:1");
    fault::FaultInjector loud(always);
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(loud.fire(fault::Site::NetDrop));
}

TEST(FaultInjector, DisabledSitesNeverFire)
{
    fault::FaultPlan p = fault::FaultPlan::parse("1:1:net.drop");
    fault::FaultInjector inj(p);
    EXPECT_TRUE(inj.fire(fault::Site::NetDrop));
    EXPECT_FALSE(inj.fire(fault::Site::MemTagFlip));
    EXPECT_FALSE(inj.fire(fault::Site::DirPresenceFlip));
    EXPECT_EQ(inj.stats().injected[static_cast<unsigned>(
                  fault::Site::MemTagFlip)],
              0u);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    fault::FaultPlan p1 = fault::FaultPlan::parse("0.5:1");
    fault::FaultPlan p2 = fault::FaultPlan::parse("0.5:2");
    fault::FaultInjector a(p1), b(p2);
    unsigned differs = 0;
    for (int i = 0; i < 200; ++i)
        differs += a.fire(fault::Site::NetDrop) !=
                   b.fire(fault::Site::NetDrop);
    EXPECT_GT(differs, 0u);
}

// ---------------------------------------------------------------------
// Machine-level behavior.
// ---------------------------------------------------------------------

TEST(FaultMachine, DisabledPlanIsBitForBitFree)
{
    compiler::CompiledProgram cp = compiledWorkload("OCEAN");
    for (SchemeKind k : {SchemeKind::TPI, SchemeKind::HW}) {
        MachineConfig plain;
        plain.scheme = k;
        MachineConfig off = plain;
        off.fault.rate = 0.0; // disabled, but seed/sites differ
        off.fault.seed = 123;
        off.fault.sites = fault::kSitesNet;
        sim::RunResult a = sim::simulate(cp, plain);
        sim::RunResult b = sim::simulate(cp, off);
        EXPECT_EQ(a, b) << schemeName(k);
        EXPECT_EQ(a.fingerprint(), b.fingerprint()) << schemeName(k);
        EXPECT_EQ(b.faultsInjected, 0u);
        EXPECT_FALSE(b.aborted());
    }
}

TEST(FaultMachine, RunsAreReproducible)
{
    compiler::CompiledProgram cp = compiledWorkload("TRFD");
    for (SchemeKind k : {SchemeKind::TPI, SchemeKind::HW}) {
        MachineConfig cfg = faultCfg(k, 0.02);
        sim::RunResult a = sim::simulate(cp, cfg);
        sim::RunResult b = sim::simulate(cp, cfg);
        EXPECT_EQ(a, b) << schemeName(k);
        EXPECT_GT(a.faultsInjected, 0u) << schemeName(k);
    }
}

TEST(FaultMachine, DroppedMessagesAreRetransmitted)
{
    compiler::CompiledProgram cp = compiledWorkload("OCEAN");
    MachineConfig cfg = faultCfg(SchemeKind::TPI, 0.05,
                                 fault::siteBit(fault::Site::NetDrop));
    sim::RunResult ref = sim::simulate(cp, faultCfg(SchemeKind::TPI, 0));
    sim::RunResult r = sim::simulate(cp, cfg);
    EXPECT_FALSE(r.aborted());
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_GT(r.faultRetries, 0u);
    EXPECT_GT(r.faultsRecovered, 0u);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.shadowViolations, 0u);
    // Drops cost latency, never work: same instruction stream.
    EXPECT_EQ(r.tasks, ref.tasks);
    EXPECT_EQ(r.reads, ref.reads);
    EXPECT_EQ(r.writes, ref.writes);
    EXPECT_GE(r.cycles, ref.cycles);
}

TEST(FaultMachine, RetryExhaustionAbortsStructured)
{
    compiler::CompiledProgram cp = compiledWorkload("OCEAN");
    MachineConfig cfg = faultCfg(SchemeKind::SC, 1.0,
                                 fault::siteBit(fault::Site::NetDrop));
    sim::RunResult r = sim::simulate(cp, cfg);
    ASSERT_TRUE(r.aborted());
    EXPECT_EQ(r.abort.kind, fault::AbortKind::Protocol);
    EXPECT_NE(r.abort.reason.find("retry budget"), std::string::npos)
        << r.abort.reason;
    EXPECT_FALSE(r.abort.snapshot.empty());
    EXPECT_GT(r.faultRetries, 0u);
    EXPECT_NE(r.summary().find("ABORTED"), std::string::npos);
}

TEST(FaultMachine, DuplicatesAndDelaysAreBenign)
{
    compiler::CompiledProgram cp = compiledWorkload("TRFD");
    const unsigned sites = fault::siteBit(fault::Site::NetDup) |
                           fault::siteBit(fault::Site::NetDelay) |
                           fault::siteBit(fault::Site::NetReorder);
    sim::RunResult ref = sim::simulate(cp, faultCfg(SchemeKind::HW, 0));
    sim::RunResult r =
        sim::simulate(cp, faultCfg(SchemeKind::HW, 0.1, sites));
    EXPECT_FALSE(r.aborted());
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.shadowViolations, 0u);
    EXPECT_EQ(r.tasks, ref.tasks);
    EXPECT_EQ(r.reads, ref.reads);
    EXPECT_EQ(r.writes, ref.writes);
}

TEST(FaultMachine, DirectoryCorruptionNeverSilent)
{
    compiler::CompiledProgram cp = compiledWorkload("OCEAN");
    sim::RunResult ref = sim::simulate(cp, faultCfg(SchemeKind::HW, 0));
    unsigned injected_somewhere = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        sim::RunResult r = sim::simulate(
            cp, faultCfg(SchemeKind::HW, 0.02, fault::kSitesDir, seed));
        injected_somewhere += r.faultsInjected > 0;
        if (r.aborted())
            continue; // detected
        if (r.oracleViolations || r.shadowViolations)
            continue; // detected (a cleared bit left a stale sharer)
        // Unflagged completion must mean identical work.
        EXPECT_EQ(r.tasks, ref.tasks) << "seed " << seed;
        EXPECT_EQ(r.reads, ref.reads) << "seed " << seed;
        EXPECT_EQ(r.writes, ref.writes) << "seed " << seed;
    }
    EXPECT_GT(injected_somewhere, 0u);
}

TEST(FaultMachine, EpochCounterFlipRecoversByResync)
{
    compiler::CompiledProgram cp = compiledWorkload("TRFD");
    sim::RunResult ref = sim::simulate(cp, faultCfg(SchemeKind::TPI, 0));
    sim::RunResult r = sim::simulate(
        cp, faultCfg(SchemeKind::TPI, 0.2,
                     fault::siteBit(fault::Site::MemEpochFlip)));
    EXPECT_FALSE(r.aborted());
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_GT(r.faultsRecovered, 0u);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.shadowViolations, 0u);
    // Flash invalidation costs misses and stall, never correctness.
    EXPECT_EQ(r.tasks, ref.tasks);
    EXPECT_GE(r.readMisses, ref.readMisses);
}

TEST(FaultMachine, DeadlockIsStructuredUnderFaultsFatalOtherwise)
{
    // A DOALL task waiting on a flag nobody posts: parked processors at
    // the end of the epoch.
    hir::ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] {
            b.post(b.c(1));
            b.wait(b.c(9)); // never posted
            b.read("A", {b.v("i")});
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());

    MachineConfig plain;
    plain.scheme = SchemeKind::TPI;
    EXPECT_THROW(sim::simulate(cp, plain), FatalError);

    MachineConfig cfg = faultCfg(SchemeKind::TPI, 1e-9);
    sim::RunResult r = sim::simulate(cp, cfg);
    ASSERT_TRUE(r.aborted());
    EXPECT_EQ(r.abort.kind, fault::AbortKind::Deadlock);
    EXPECT_FALSE(r.abort.snapshot.empty());
    EXPECT_NE(r.summary().find("deadlock"), std::string::npos);
}

TEST(FaultMachine, FingerprintStableWhenFaultFieldsDefault)
{
    // The fingerprint must not mix the new abort/fault fields unless
    // they are set: fault-free fingerprints are frozen in sweep JSON.
    sim::RunResult r;
    r.cycles = 1234;
    r.reads = 56;
    const std::uint64_t base = r.fingerprint();
    sim::RunResult loud = r;
    loud.faultsInjected = 1;
    EXPECT_NE(loud.fingerprint(), base);
    sim::RunResult aborted = r;
    aborted.abort.kind = fault::AbortKind::Watchdog;
    aborted.abort.reason = "x";
    EXPECT_NE(aborted.fingerprint(), base);
}

// ---------------------------------------------------------------------
// FaultFuzz: the PR 2 generated-program corpus under a low fault rate.
// Every run must be recovered, aborted, or flagged - never silently
// wrong relative to its fault-free reference.
// ---------------------------------------------------------------------

TEST(FaultFuzz, GeneratedCorpusNeverSilentlyWrong)
{
    constexpr std::uint64_t fuzzSeeds = 200;
    constexpr SchemeKind kSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                                       SchemeKind::TPI, SchemeKind::HW,
                                       SchemeKind::VC};
    std::uint64_t injected = 0, flagged = 0, aborted = 0;
    for (std::uint64_t seed = 1; seed <= fuzzSeeds; ++seed) {
        testgen::GenOptions g;
        g.seed = seed;
        compiler::CompiledProgram cp =
            compiler::compileProgram(testgen::randomLegalProgram(g));
        const SchemeKind k = kSchemes[seed % 5];

        sim::RunResult ref = sim::simulate(cp, faultCfg(k, 0));
        MachineConfig cfg = faultCfg(k, 1e-3);
        cfg.fault.seed = seed;
        sim::RunResult r = sim::simulate(cp, cfg);

        injected += r.faultsInjected;
        if (r.aborted()) {
            ++aborted;
            continue;
        }
        if (r.oracleViolations || r.shadowViolations ||
            r.doallViolations) {
            ++flagged;
            continue;
        }
        EXPECT_EQ(r.tasks, ref.tasks) << "seed " << seed;
        EXPECT_EQ(r.epochs, ref.epochs) << "seed " << seed;
        EXPECT_EQ(r.reads, ref.reads) << "seed " << seed;
        EXPECT_EQ(r.writes, ref.writes) << "seed " << seed;

        if (seed % 23 == 0) { // subsample the double-run determinism check
            sim::RunResult again = sim::simulate(cp, cfg);
            EXPECT_EQ(r, again) << "seed " << seed;
        }
    }
    // The corpus must actually exercise injection (not vacuously pass).
    EXPECT_GT(injected, 0u);
    SUCCEED() << "injected=" << injected << " flagged=" << flagged
              << " aborted=" << aborted;
}
