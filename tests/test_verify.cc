/**
 * @file
 * Unit tests for the verification subsystem: the diagnostic engine
 * (stable ids, JSON rendering, werror exit codes, deterministic output
 * across parallel lint jobs), the HIR well-formedness lints, the
 * epoch-graph lints, and the marking pass's timetag saturation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "verify/verify.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using hir::ProgramBuilder;

namespace {

bool
hasDiag(const verify::DiagnosticEngine &d, const std::string &id)
{
    for (const verify::Diagnostic &diag : d.diagnostics())
        if (diag.id == id)
            return true;
    return false;
}

verify::DiagnosticEngine
lintBuilt(ProgramBuilder &b, const verify::LintOptions &opts = {})
{
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    return verify::lintProgram(cp, "test", opts);
}

} // namespace

TEST(Diagnostics, CountsAndExitCodes)
{
    verify::DiagnosticEngine d("prog");
    EXPECT_EQ(d.exitCode(false), 0);
    EXPECT_EQ(d.exitCode(true), 0);

    d.report("HIR005", verify::Severity::Note, {}, "a note");
    EXPECT_EQ(d.notes(), 1u);
    EXPECT_EQ(d.exitCode(true), 0) << "notes never fail, even -Werror";

    d.report("HIR002", verify::Severity::Warning, {}, "a warning");
    EXPECT_EQ(d.exitCode(false), 0);
    EXPECT_EQ(d.exitCode(true), 1) << "warnings fail under -Werror";

    d.report("HIR001", verify::Severity::Error, {}, "an error");
    EXPECT_EQ(d.errors(), 1u);
    EXPECT_EQ(d.exitCode(false), 1);
    EXPECT_TRUE(d.failed(false));
}

TEST(Diagnostics, TextRenderingIsStable)
{
    verify::DiagnosticEngine d("p");
    verify::SourceLoc loc{"MAIN", 3, "A(i)"};
    d.report("GRAPH002", verify::Severity::Error, loc, "too far");
    const std::string text = d.renderText();
    EXPECT_NE(text.find("[GRAPH002]"), std::string::npos);
    EXPECT_NE(text.find("error"), std::string::npos);
    EXPECT_NE(text.find("A(i)"), std::string::npos);
    EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(Diagnostics, JsonEscaping)
{
    EXPECT_EQ(verify::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(verify::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(verify::jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(verify::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Diagnostics, JsonSchema)
{
    verify::DiagnosticEngine d("qcd2");
    d.report("ORACLE001", verify::Severity::Error,
             verify::SourceLoc{"MAIN", 7, "A(i+1)"}, "msg \"quoted\"");
    d.report("HIR007", verify::Severity::Note, {}, "program scope");
    const std::string js = d.renderJson();
    EXPECT_NE(js.find("\"program\": \"qcd2\""), std::string::npos);
    EXPECT_NE(js.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(js.find("\"notes\": 1"), std::string::npos);
    EXPECT_NE(js.find("\"id\": \"ORACLE001\""), std::string::npos);
    EXPECT_NE(js.find("\"ref\": 7"), std::string::npos);
    EXPECT_NE(js.find("\"msg \\\"quoted\\\"\""), std::string::npos);
    // Program-scope diagnostics carry a null ref, not a sentinel int.
    EXPECT_NE(js.find("\"ref\": null"), std::string::npos);
}

TEST(Diagnostics, ParallelLintingIsByteIdentical)
{
    // The determinism contract the CLI inherits from the sweep engine:
    // rendering after a parallelMap in input order is byte-identical at
    // any job count.
    const std::vector<std::string> names = workloads::benchmarkNames();
    auto render = [&](unsigned jobs) {
        std::vector<std::string> out = parallelMap(
            jobs, names.size(), [&](std::size_t i) {
                compiler::CompiledProgram cp = compiler::compileProgram(
                    workloads::buildBenchmark(names[i], 1));
                verify::DiagnosticEngine d =
                    verify::lintProgram(cp, names[i]);
                return d.renderText() + d.renderJson();
            });
        std::string all;
        for (const std::string &s : out)
            all += s;
        return all;
    };
    const std::string serial = render(1);
    EXPECT_EQ(serial, render(4));
}

TEST(HirLints, UndefinedVariable)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] { b.read("A", {b.v("nope")}); });
    auto d = lintBuilt(b);
    EXPECT_TRUE(hasDiag(d, "HIR001"));
    EXPECT_GE(d.errors(), 1u);
}

TEST(HirLints, CalleeMayUseCallerLoopVariable)
{
    // Virtual inlining: a callee using the caller's loop index is legal
    // and must NOT trigger HIR001.
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("KERNEL", [&] { b.read("A", {b.v("i")}); });
    b.proc("MAIN", [&] {
        b.doserial("i", 0, b.p("N") - 1, [&] { b.call("KERNEL"); });
    });
    auto d = lintBuilt(b);
    EXPECT_FALSE(hasDiag(d, "HIR001"));
}

TEST(HirLints, ShadowedVariable)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("i", 0, 3, [&] {
            b.doserial("i", 0, 3, [&] { b.read("A", {b.v("i")}); });
        });
    });
    auto d = lintBuilt(b);
    EXPECT_TRUE(hasDiag(d, "HIR002"));
    EXPECT_EQ(d.errors(), 0u);
    EXPECT_EQ(d.exitCode(true), 1);
}

TEST(HirLints, SubscriptOutOfBounds)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] { b.read("A", {b.c(99)}); });
    auto d = lintBuilt(b);
    EXPECT_TRUE(hasDiag(d, "HIR003"));
}

TEST(HirLints, EmptyAndSingleTripDoall)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 5, 2, [&] { b.write("A", {b.v("i")}); });
        b.doall("j", 3, 3, [&] { b.write("A", {b.v("j")}); });
    });
    auto d = lintBuilt(b);
    EXPECT_TRUE(hasDiag(d, "HIR004"));
    EXPECT_TRUE(hasDiag(d, "HIR005"));
}

TEST(HirLints, SyncPairing)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 3, [&] {
            b.write("A", {b.v("i")});
            b.post(b.c(3)); // never awaited -> HIR007
        });
    });
    auto d = lintBuilt(b);
    EXPECT_TRUE(hasDiag(d, "HIR007"));
    EXPECT_EQ(d.errors(), 0u);

    ProgramBuilder b2;
    b2.param("N", 8);
    b2.array("A", {"N"});
    b2.proc("MAIN", [&] {
        b2.doall("i", 0, 3, [&] {
            b2.post(b2.c(1));
            b2.wait(b2.c(9)); // never posted -> guaranteed deadlock
            b2.read("A", {b2.v("i")});
        });
    });
    auto d2 = lintBuilt(b2);
    EXPECT_TRUE(hasDiag(d2, "HIR006"));
    EXPECT_GE(d2.errors(), 1u);
}

TEST(GraphLints, DistanceExceedsTimetagWindow)
{
    // A hand-corrupted mark: distance 100 cannot be encoded in 4 bits.
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 0, b.p("N") - 1, [&] { b.write("A", {b.v("i")}); });
        b.doall("j", 0, b.p("N") - 1, [&] { b.read("A", {b.v("j")}); });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    const hir::RefId read_id = 1;
    ASSERT_FALSE(cp.program.refInfo(read_id).stmt->isWrite);
    cp.marking.overrideMark(
        read_id, compiler::Mark{compiler::MarkKind::TimeRead,
                                compiler::MarkReason::Stale, 100});
    verify::LintOptions opts;
    opts.timetagBits = 4;
    opts.runOracle = false;
    auto d = verify::lintProgram(cp, "t", opts);
    EXPECT_TRUE(hasDiag(d, "GRAPH002"));
}

TEST(GraphLints, UnjustifiedBypass)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", 0, b.p("N") - 1, [&] { b.write("A", {b.v("i")}); });
        b.doall("j", 0, b.p("N") - 1, [&] { b.read("A", {b.v("j")}); });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    // No critical section anywhere: Bypass(Critical) is unjustifiable.
    cp.marking.overrideMark(
        1, compiler::Mark{compiler::MarkKind::Bypass,
                          compiler::MarkReason::Critical, 0});
    verify::LintOptions opts;
    opts.runOracle = false;
    auto d = verify::lintProgram(cp, "t", opts);
    EXPECT_TRUE(hasDiag(d, "GRAPH003"));
}

TEST(MarkingClamp, DistanceSaturatesToTimetagWidth)
{
    // Distance from the write to the far read is 6 boundaries; with
    // 2-bit tags only d <= 3 is encodable, so the compiler saturates.
    auto build = [] {
        ProgramBuilder b;
        b.param("N", 8);
        b.array("A", {"N"});
        b.proc("MAIN", [&] {
            b.doall("i", 0, b.p("N") - 1,
                    [&] { b.write("A", {b.v("i")}); });
            b.barrier();
            b.barrier();
            b.barrier();
            b.barrier();
            b.doall("j", 0, b.p("N") - 1,
                    [&] { b.read("A", {b.v("j")}); });
        });
        return b.build();
    };

    compiler::AnalysisOptions wide;
    compiler::CompiledProgram cp_wide =
        compiler::compileProgram(build(), wide);
    const compiler::Mark &m_wide = cp_wide.marking.mark(1);
    ASSERT_EQ(m_wide.kind, compiler::MarkKind::TimeRead);
    EXPECT_EQ(m_wide.distance, 6u);

    compiler::AnalysisOptions narrow;
    narrow.timetagBits = 2;
    compiler::CompiledProgram cp_narrow =
        compiler::compileProgram(build(), narrow);
    const compiler::Mark &m_narrow = cp_narrow.marking.mark(1);
    ASSERT_EQ(m_narrow.kind, compiler::MarkKind::TimeRead);
    EXPECT_EQ(m_narrow.distance, 3u) << "saturated to 2^2 - 1";

    // And the saturated marking passes GRAPH002 at the same width.
    verify::LintOptions opts;
    opts.timetagBits = 2;
    auto d = verify::lintProgram(cp_narrow, "t", opts);
    EXPECT_FALSE(hasDiag(d, "GRAPH002"));
}

TEST(Workloads, AllSixLintCleanUnderWerror)
{
    for (const std::string &name : workloads::benchmarkNames()) {
        compiler::CompiledProgram cp = compiler::compileProgram(
            workloads::buildBenchmark(name, 1));
        auto d = verify::lintProgram(cp, name);
        EXPECT_EQ(d.exitCode(true), 0)
            << name << ":\n" << d.renderText();
    }
}
