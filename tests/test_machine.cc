/** @file End-to-end machine tests across all coherence schemes. */

#include <gtest/gtest.h>

#include "hir/builder.hh"
#include "sim/machine.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::sim;

namespace {

compiler::CompiledProgram
jacobiLike(int n = 64, int steps = 4)
{
    // do t { DOALL i: NEW(i) = f(OLD(i-1), OLD(i), OLD(i+1)); barrier;
    //         DOALL i: OLD(i) = NEW(i) }
    ProgramBuilder b;
    b.param("N", n);
    b.array("OLD", {"N"});
    b.array("NEW", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] {
            b.write("OLD", {b.v("init")});
        });
        b.doserial("t", 0, steps - 1, [&] {
            b.doall("i", 1, n - 2, [&] {
                b.read("OLD", {b.v("i") - 1});
                b.read("OLD", {b.v("i")});
                b.read("OLD", {b.v("i") + 1});
                b.compute(4);
                b.write("NEW", {b.v("i")});
            });
            b.doall("j", 1, n - 2, [&] {
                b.read("NEW", {b.v("j")});
                b.write("OLD", {b.v("j")});
            });
        });
    });
    return compiler::compileProgram(b.build());
}

MachineConfig
cfgFor(SchemeKind k, unsigned procs = 4)
{
    MachineConfig c;
    c.scheme = k;
    c.procs = procs;
    return c;
}

} // namespace

TEST(Machine, AllSchemesCoherentOnJacobi)
{
    compiler::CompiledProgram cp = jacobiLike();
    for (SchemeKind k : {SchemeKind::Base, SchemeKind::SC, SchemeKind::TPI,
                         SchemeKind::HW})
    {
        RunResult r = simulate(cp, cfgFor(k));
        EXPECT_EQ(r.oracleViolations, 0u) << schemeName(k);
        EXPECT_EQ(r.doallViolations, 0u) << schemeName(k);
        EXPECT_GT(r.reads, 0u);
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(Machine, SchemesAgreeOnReferenceCounts)
{
    compiler::CompiledProgram cp = jacobiLike();
    RunResult base = simulate(cp, cfgFor(SchemeKind::Base));
    for (SchemeKind k :
         {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
    {
        RunResult r = simulate(cp, cfgFor(k));
        EXPECT_EQ(r.reads, base.reads) << schemeName(k);
        EXPECT_EQ(r.writes, base.writes) << schemeName(k);
        EXPECT_EQ(r.epochs, base.epochs) << schemeName(k);
        EXPECT_EQ(r.tasks, base.tasks) << schemeName(k);
    }
}

TEST(Machine, DeterministicAcrossRuns)
{
    compiler::CompiledProgram cp = jacobiLike();
    RunResult a = simulate(cp, cfgFor(SchemeKind::TPI));
    RunResult b = simulate(cp, cfgFor(SchemeKind::TPI));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.readMisses, b.readMisses);
    EXPECT_EQ(a.trafficWords, b.trafficWords);
}

TEST(Machine, MissRateOrderingOnLocalityWorkload)
{
    // BASE caches nothing; SC refetches every marked read; TPI exploits
    // inter-task locality with an affine schedule; HW caches hardware-
    // coherently. Expect BASE >= SC >= TPI on read miss rate.
    compiler::CompiledProgram cp = jacobiLike(128, 6);
    double base = simulate(cp, cfgFor(SchemeKind::Base)).readMissRate;
    double sc = simulate(cp, cfgFor(SchemeKind::SC)).readMissRate;
    double tpi = simulate(cp, cfgFor(SchemeKind::TPI)).readMissRate;
    EXPECT_GE(base, sc);
    EXPECT_GT(sc, tpi) << "timetags must recover inter-task locality";
    EXPECT_DOUBLE_EQ(base, 1.0);
}

TEST(Machine, TpiTimeReadHitsOnStableSchedule)
{
    compiler::CompiledProgram cp = jacobiLike(128, 6);
    RunResult r = simulate(cp, cfgFor(SchemeKind::TPI));
    EXPECT_GT(r.timeReads, 0u);
    EXPECT_GT(r.timeReadHits, r.timeReads / 2)
        << "block scheduling re-runs iterations on the same processor; "
           "most Time-Reads should hit";
}

TEST(Machine, ExecutionTimeOrdering)
{
    // TPI must beat both BASE (no caching) and SC (no inter-task
    // locality). BASE vs SC is workload-dependent: with almost every
    // read marked, SC's line-grain refetches can cost more than BASE's
    // word fetches, as on this stencil.
    compiler::CompiledProgram cp = jacobiLike(128, 6);
    Cycles base = simulate(cp, cfgFor(SchemeKind::Base)).cycles;
    Cycles sc = simulate(cp, cfgFor(SchemeKind::SC)).cycles;
    Cycles tpi = simulate(cp, cfgFor(SchemeKind::TPI)).cycles;
    EXPECT_GT(base, tpi);
    EXPECT_GT(sc, tpi);
}

TEST(Machine, SerialOnlyProgramRunsOnProcZero)
{
    ProgramBuilder b;
    b.array("A", {32});
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 31, [&] {
            b.write("A", {b.v("k")});
            b.read("A", {b.v("k")});
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    RunResult r = simulate(cp, cfgFor(SchemeKind::TPI));
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.parallelEpochs, 0u);
    // Reads are covered by the preceding writes: all hits.
    EXPECT_EQ(r.readMisses, 0u);
}

TEST(Machine, CriticalSectionReduction)
{
    // Classic reduction: every task accumulates into S(0) under a lock.
    ProgramBuilder b;
    b.array("S", {4});
    b.array("A", {64});
    b.proc("MAIN", [&] {
        b.write("S", {b.c(0)});
        b.doall("i", 0, 63, [&] {
            b.read("A", {b.v("i")});
            b.critical([&] {
                b.read("S", {b.c(0)});
                b.write("S", {b.c(0)});
            });
        });
        b.read("S", {b.c(0)});
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    for (SchemeKind k : {SchemeKind::Base, SchemeKind::SC, SchemeKind::TPI,
                         SchemeKind::HW})
    {
        RunResult r = simulate(cp, cfgFor(k));
        EXPECT_EQ(r.oracleViolations, 0u)
            << schemeName(k) << ": lock-ordered updates must be seen";
        EXPECT_EQ(r.doallViolations, 0u) << schemeName(k);
    }
}

TEST(Machine, SchedulingPoliciesAllCoherent)
{
    compiler::CompiledProgram cp = jacobiLike(96, 4);
    for (SchedPolicy s :
         {SchedPolicy::Block, SchedPolicy::Cyclic, SchedPolicy::Dynamic})
    {
        MachineConfig c = cfgFor(SchemeKind::TPI);
        c.sched = s;
        RunResult r = simulate(cp, c);
        EXPECT_EQ(r.oracleViolations, 0u) << schedName(s);
    }
}

TEST(Machine, CyclicScheduleLosesTpiLocality)
{
    // Under block scheduling task i returns to the same processor each
    // time step; under cyclic it does too (same mapping), but dynamic
    // scheduling scrambles the mapping and Time-Read hits drop.
    compiler::CompiledProgram cp = jacobiLike(128, 6);
    MachineConfig blockc = cfgFor(SchemeKind::TPI);
    MachineConfig dync = cfgFor(SchemeKind::TPI);
    dync.sched = SchedPolicy::Dynamic;
    dync.dynamicChunk = 1;
    RunResult rb = simulate(cp, blockc);
    RunResult rd = simulate(cp, dync);
    EXPECT_EQ(rd.oracleViolations, 0u)
        << "correctness must not depend on the schedule";
    EXPECT_LE(rd.timeReadHits, rb.timeReadHits)
        << "hardware locality degrades, correctness does not";
}

TEST(Machine, HwFalseSharingAppearsWithWideLines)
{
    // Adjacent tasks write adjacent words: with 64-byte lines the HW
    // directory ping-pongs, the word-granular TPI does not.
    ProgramBuilder b;
    b.param("N", 256);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 5, [&] {
            b.doall("i", 0, 255, [&] {
                b.read("A", {b.v("i")});
                b.write("A", {b.v("i")});
            });
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());

    MachineConfig hw = cfgFor(SchemeKind::HW, 8);
    hw.lineBytes = 64;
    hw.sched = SchedPolicy::Cyclic; // adjacent words on different procs
    RunResult rhw = simulate(cp, hw);
    EXPECT_GT(rhw.missFalseShare, 0u);

    MachineConfig tpi = cfgFor(SchemeKind::TPI, 8);
    tpi.lineBytes = 64;
    tpi.sched = SchedPolicy::Cyclic;
    RunResult rtpi = simulate(cp, tpi);
    EXPECT_EQ(rtpi.missFalseShare, 0u)
        << "word-granularity coherence has no false sharing";
    EXPECT_EQ(rtpi.oracleViolations, 0u);
    EXPECT_EQ(rhw.oracleViolations, 0u);
}

TEST(Machine, MigrationBreaksAffinityAssumption)
{
    // Serial epochs write/read A with only-serial threats: compiled WITH
    // affinity the reads are Normal; if serial tasks then migrate, stale
    // copies are read - the oracle must catch it. Compiled WITHOUT
    // affinity the reads are Time-Reads and stay correct.
    ProgramBuilder b;
    b.array("A", {64});
    b.array("B", {64});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 19, [&] {
            b.doserial("k", 0, 63, [&] { b.write("A", {b.v("k")}); });
            b.doall("i", 0, 63, [&] { b.write("B", {b.v("i")}); });
            b.doserial("k2", 0, 63, [&] { b.read("A", {b.v("k2")}); });
        });
    });
    Program prog = b.build();

    compiler::AnalysisOptions with_aff;
    with_aff.assumeSerialAffinity = true;
    compiler::CompiledProgram cp_aff =
        compiler::compileProgram(std::move(prog), with_aff);

    MachineConfig mig = cfgFor(SchemeKind::TPI, 4);
    mig.migrationRate = 1.0;
    RunResult r_broken = simulate(cp_aff, mig);
    EXPECT_GT(r_broken.oracleViolations, 0u)
        << "affinity-compiled code is unsound under migration";

    // Rebuild the same program without the affinity assumption.
    ProgramBuilder b2;
    b2.array("A", {64});
    b2.array("B", {64});
    b2.proc("MAIN", [&] {
        b2.doserial("t", 0, 19, [&] {
            b2.doserial("k", 0, 63, [&] { b2.write("A", {b2.v("k")}); });
            b2.doall("i", 0, 63, [&] { b2.write("B", {b2.v("i")}); });
            b2.doserial("k2", 0, 63, [&] { b2.read("A", {b2.v("k2")}); });
        });
    });
    compiler::AnalysisOptions no_aff;
    no_aff.assumeSerialAffinity = false;
    compiler::CompiledProgram cp_no =
        compiler::compileProgram(b2.build(), no_aff);
    RunResult r_fixed = simulate(cp_no, mig);
    EXPECT_EQ(r_fixed.oracleViolations, 0u)
        << "migration-safe compilation keeps the scheme coherent";
}

TEST(Machine, IllegalDoallDetected)
{
    // Task i reads A(i+1), which task i+1 writes: a data race.
    ProgramBuilder b;
    b.array("A", {64});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 62, [&] {
            b.read("A", {b.v("i") + 1});
            b.write("A", {b.v("i")});
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    RunResult r = simulate(cp, cfgFor(SchemeKind::TPI));
    EXPECT_GT(r.doallViolations, 0u);
}

TEST(Machine, BarrierStatementForcesEpoch)
{
    ProgramBuilder b;
    b.array("A", {8});
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.barrier();
        b.read("A", {b.c(0)});
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    RunResult r = simulate(cp, cfgFor(SchemeKind::TPI));
    EXPECT_EQ(r.epochs, 1u);
    EXPECT_EQ(r.oracleViolations, 0u);
}

TEST(Machine, RunIsSingleShot)
{
    compiler::CompiledProgram cp = jacobiLike(16, 1);
    Machine m(cp, cfgFor(SchemeKind::TPI));
    m.run();
    EXPECT_THROW(m.run(), PanicError);
}

TEST(Machine, StatsDumpContainsSchemeCounters)
{
    compiler::CompiledProgram cp = jacobiLike(32, 2);
    Machine m(cp, cfgFor(SchemeKind::TPI));
    m.run();
    std::ostringstream os;
    m.statsRoot().dump(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("machine.scheme.reads"), std::string::npos);
    EXPECT_NE(s.find("machine.network.packets"), std::string::npos);
}

TEST(Machine, TinyTimetagsCauseTagResetMisses)
{
    // Read-only coefficient tables live in the cache indefinitely with
    // wide timetags; every two-phase reset of a narrow tag wipes them.
    ProgramBuilder b;
    b.param("N", 64);
    b.array("COEF", {"N"});
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        // COEF is never written: its reads stay unmarked normal reads
        // whose timetags are never refreshed.
        b.doserial("t", 0, 39, [&] {
            b.doall("i", 0, 63, [&] {
                b.read("COEF", {b.v("i")});
                b.read("A", {b.v("i")});
                b.write("A", {b.v("i")});
            });
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    MachineConfig narrow = cfgFor(SchemeKind::TPI);
    narrow.timetagBits = 2; // phase of 2 epochs: constant resets
    RunResult rn = simulate(cp, narrow);
    MachineConfig wide = cfgFor(SchemeKind::TPI);
    wide.timetagBits = 8;
    RunResult rw = simulate(cp, wide);
    EXPECT_EQ(rn.oracleViolations, 0u)
        << "narrow tags cost performance, never correctness";
    EXPECT_EQ(rw.oracleViolations, 0u);
    EXPECT_GT(rn.readMisses, rw.readMisses);
    EXPECT_GT(rn.missTagReset, 0u);
    EXPECT_EQ(rw.missTagReset, 0u);
    EXPECT_GT(rn.cycles, rw.cycles);
}

TEST(Machine, UnknownSubscriptsStayCoherent)
{
    ProgramBuilder b;
    b.array("X", {64});
    b.array("IDX", {64});
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 3, [&] {
            b.doall("i", 0, 63, [&] { b.write("X", {b.v("i")}); });
            b.doall("j", 0, 63, [&] { b.read("X", {b.unknown()}); });
        });
    });
    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    for (SchemeKind k :
         {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
    {
        RunResult r = simulate(cp, cfgFor(k));
        EXPECT_EQ(r.oracleViolations, 0u) << schemeName(k);
    }
}
