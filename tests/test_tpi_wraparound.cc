/**
 * @file
 * Direct unit tests for TpiScheme timetag wraparound at every supported
 * narrow width (timetagBits 1..3). Until now the wraparound machinery -
 * the n-bit tag window, the hardware distance clamp, and the two-phase
 * reset that retires tags before they can alias - was only exercised
 * indirectly through fuzzing; these tests pin the exact epoch at which
 * each width's tags expire and the exact boundary of the saturation
 * clamp.
 *
 * Geometry of an n-bit tag: phase = 2^(n-1) epochs, so a full reset
 * cycle spans 2 * phase = 2^n epochs and the largest usable Time-Read
 * distance is dmax = 2^n - 1. A word stamped tt in epoch EC survives
 * reset sweeps while tt >= EC - phase; a copy written in epoch 0
 * therefore dies at exactly EC = 2 * phase - one epoch before EC - tt
 * would alias to 0 modulo 2^n and a naive modular comparison would
 * falsely match a Time-Read of distance 0.
 */

#include <gtest/gtest.h>

#include "mem/coherence.hh"
#include "mem/tpi_scheme.hh"

using namespace hscd;
using namespace hscd::mem;
using compiler::MarkKind;

namespace {

struct Rig
{
    explicit Rig(unsigned bits, bool promote)
        : root("m"), memory(1 << 20)
    {
        cfg.scheme = SchemeKind::TPI;
        cfg.timetagBits = bits;
        cfg.tpiPromoteOnHit = promote;
        network = std::make_unique<net::Network>(
            &root, cfg.procs, cfg.networkRadix, cfg.maxNetworkLoad);
        scheme = makeScheme(cfg, memory, *network, &root);
    }

    AccessResult
    read(ProcId p, Addr a, MarkKind mark = MarkKind::Normal,
         std::uint32_t d = 0)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.mark = mark;
        op.distance = d;
        op.now = ++now;
        return scheme->access(op);
    }

    AccessResult
    write(ProcId p, Addr a)
    {
        MemOp op;
        op.proc = p;
        op.addr = a;
        op.write = true;
        op.stamp = ++stamp;
        op.now = ++now;
        return scheme->access(op);
    }

    void
    runToEpoch(EpochId target)
    {
        while (epoch < target)
            scheme->epochBoundary(++epoch);
    }

    MachineConfig cfg;
    stats::StatGroup root;
    MainMemory memory;
    std::unique_ptr<net::Network> network;
    std::unique_ptr<CoherenceScheme> scheme;
    Cycles now = 0;
    ValueStamp stamp = 0;
    EpochId epoch = 0;
};

class TpiWraparound : public testing::TestWithParam<unsigned>
{
  protected:
    unsigned bits() const { return GetParam(); }
    unsigned phase() const { return 1u << (bits() - 1); }
    unsigned dmax() const { return (1u << bits()) - 1; }
};

} // namespace

TEST_P(TpiWraparound, AgedCopyHitsExactlyUpToDmax)
{
    // Promotion off: reads must not refresh the tag, so the copy ages
    // one epoch per boundary and we can probe the window edge directly.
    Rig rig(bits(), /*promote=*/false);
    rig.write(0, 0x100); // tt = 0 in epoch 0
    rig.runToEpoch(dmax()); // age = dmax: the oldest a tag can get

    // Distance exactly dmax reaches back to the write.
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, dmax()).hit);
    // Any larger distance saturates to dmax in hardware - identical
    // decision, no wrap into a small effective distance.
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, dmax() + 1).hit);
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, 1000000).hit);
    // One epoch short of the copy's age: conservative miss (the
    // distance check, not the reset, rejects it; the copy's value still
    // matches memory). Probed last - the miss refills the line.
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, dmax() - 1);
    EXPECT_FALSE(r.hit) << "bits=" << bits();
    EXPECT_EQ(r.cls, MissClass::Conservative) << "bits=" << bits();
}

TEST_P(TpiWraparound, ResetKillsCopyBeforeTagAliasing)
{
    Rig rig(bits(), /*promote=*/false);
    rig.write(0, 0x100); // proc 0 caches the word, tt = 0, stamp 1

    // One epoch before the tag would alias, another processor produces
    // a new value; proc 0's copy is now stale in both tag and value.
    rig.runToEpoch(2 * phase() - 1);
    rig.write(1, 0x100); // stamp 2

    // Crossing into epoch 2^n retires tt = 0 (cutoff EC - phase > 0).
    // Without the reset, EC - tt = 2^n would wrap to 0 modulo 2^n and a
    // distance-0 Time-Read would falsely hit the stale copy.
    rig.runToEpoch(2 * phase());
    auto r = rig.read(0, 0x100, MarkKind::TimeRead, 0);
    EXPECT_FALSE(r.hit) << "bits=" << bits();
    EXPECT_EQ(r.cls, MissClass::TagReset) << "bits=" << bits();
    EXPECT_EQ(r.observed, 2u) << "the refill must fetch the new value";
    EXPECT_GE(rig.scheme->stats().tagResets.value(), 1u);
}

TEST_P(TpiWraparound, CopySurvivesUntilTheFatalSweep)
{
    // The sweep at EC = phase keeps tt = 0 (cutoff is 0); only the
    // sweep at EC = 2 * phase retires it. Verify the survival with a
    // maximally-permissive (hardware-clamped) distance at the last
    // epoch the copy can legally serve.
    Rig rig(bits(), /*promote=*/false);
    rig.write(0, 0x100);
    rig.runToEpoch(2 * phase() - 1);
    EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, 1000000).hit)
        << "bits=" << bits() << ": copy died a sweep early";
    rig.runToEpoch(2 * phase());
    EXPECT_FALSE(rig.read(0, 0x100, MarkKind::TimeRead, 1000000).hit)
        << "bits=" << bits() << ": copy outlived the fatal sweep";
}

TEST_P(TpiWraparound, PromotionOutrunsTheReset)
{
    // With promote-on-hit, every Time-Read hit re-stamps tt = EC, so a
    // copy read at least once per epoch never ages and survives any
    // number of reset sweeps - even at 1-bit tags where the raw window
    // is a single epoch.
    Rig rig(bits(), /*promote=*/true);
    rig.write(0, 0x100);
    for (EpochId e = 1; e <= EpochId(4 * phase() + 1); ++e) {
        rig.runToEpoch(e);
        EXPECT_TRUE(rig.read(0, 0x100, MarkKind::TimeRead, 1).hit)
            << "bits=" << bits() << " epoch " << e;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, TpiWraparound, testing::Values(1u, 2u, 3u),
                         [](const auto &info) {
                             return "bits" + std::to_string(info.param);
                         });
