/** @file Unit tests for interprocedural MOD/USE summaries. */

#include <gtest/gtest.h>

#include "compiler/summary.hh"
#include "hir/builder.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::compiler;

TEST(Summary, LeafProcedureSections)
{
    ProgramBuilder b;
    b.param("N", 32);
    b.array("A", {"N"});
    b.array("B", {"N"});
    b.proc("MAIN", [&] { b.call("KERNEL"); });
    b.proc("KERNEL", [&] {
        b.doserial("i", 0, b.p("N") - 1, [&] {
            b.read("B", {b.v("i")});
            b.write("A", {b.v("i")});
        });
    });
    Program p = b.build();
    auto sums = summarizeProcedures(p);
    const ProcSummary &k = sums[p.findProcedure("KERNEL")];
    ArrayId a = p.findArray("A");
    ArrayId bb = p.findArray("B");
    EXPECT_TRUE(k.mod.mayOverlap(RegularSection(a, {DimTriplet{0, 31}})));
    EXPECT_FALSE(k.mod.mayOverlap(RegularSection(bb, {DimTriplet{0, 31}})));
    EXPECT_TRUE(k.use.mayOverlap(RegularSection(bb, {DimTriplet{5, 5}})));
    EXPECT_EQ(k.directRefs, 2u);
    EXPECT_EQ(k.totalRefs, 2u);
    EXPECT_FALSE(k.hasBoundary);
}

TEST(Summary, PropagatesUpTheCallGraph)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] { b.call("MID"); });
    b.proc("MID", [&] {
        b.compute(1);
        b.call("LEAF");
    });
    b.proc("LEAF", [&] { b.write("A", {b.c(3)}); });
    Program p = b.build();
    auto sums = summarizeProcedures(p);
    ArrayId a = p.findArray("A");
    const RegularSection elem(a, {DimTriplet{3, 3}});
    EXPECT_TRUE(sums[p.findProcedure("LEAF")].mod.mayOverlap(elem));
    EXPECT_TRUE(sums[p.findProcedure("MID")].mod.mayOverlap(elem));
    EXPECT_TRUE(sums[p.findProcedure("MAIN")].mod.mayOverlap(elem));
    EXPECT_EQ(sums[p.findProcedure("MID")].directRefs, 0u);
    EXPECT_EQ(sums[p.findProcedure("MID")].totalRefs, 1u);
}

TEST(Summary, BoundaryFlagPropagates)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] { b.call("MID"); });
    b.proc("MID", [&] { b.call("PAR"); });
    b.proc("PAR", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    auto sums = summarizeProcedures(p);
    EXPECT_TRUE(sums[p.findProcedure("PAR")].hasBoundary);
    EXPECT_TRUE(sums[p.findProcedure("MID")].hasBoundary);
    EXPECT_TRUE(sums[p.findProcedure("MAIN")].hasBoundary);
}

TEST(Summary, BothBranchesCounted)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.ifUnknown(TakePolicy::Alternate,
                    [&] { b.write("A", {b.c(0)}); },
                    [&] { b.write("A", {b.c(8)}); });
    });
    Program p = b.build();
    auto sums = summarizeProcedures(p);
    ArrayId a = p.findArray("A");
    const ProcSummary &m = sums[p.findProcedure("MAIN")];
    EXPECT_TRUE(m.mod.mayOverlap(RegularSection(a, {DimTriplet{0, 0}})));
    EXPECT_TRUE(m.mod.mayOverlap(RegularSection(a, {DimTriplet{8, 8}})));
}

TEST(Summary, CallerLoopVarWidensToWholeDim)
{
    // LEAF reads A(i) where i is the *caller's* loop variable; a
    // standalone summary of LEAF cannot bound it.
    ProgramBuilder b;
    b.array("A", {std::int64_t{64}});
    b.proc("MAIN", [&] {
        b.doserial("i", 0, 3, [&] { b.call("LEAF"); });
    });
    b.proc("LEAF", [&] { b.read("A", {b.v("i")}); });
    Program p = b.build();
    auto sums = summarizeProcedures(p);
    const ProcSummary &leaf = sums[p.findProcedure("LEAF")];
    ASSERT_EQ(leaf.use.terms().size(), 1u);
    EXPECT_EQ(leaf.use.terms()[0].dims()[0].hi, 63);
}
