/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.hh"

using namespace hscd;
using namespace hscd::stats;

TEST(Stats, ScalarCounts)
{
    StatGroup g("g");
    Scalar s(&g, "s", "a counter");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 4;
    EXPECT_EQ(s.value(), 5u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, AverageMean)
{
    StatGroup g("g");
    Average a(&g, "a", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(Stats, HistogramBinsAndOverflow)
{
    StatGroup g("g");
    Histogram h(&g, "h", "", 100.0, 10);
    h.sample(5);     // bin 0
    h.sample(15);    // bin 1
    h.sample(99);    // bin 9
    h.sample(100);   // overflow
    h.sample(1000);  // overflow
    EXPECT_EQ(h.bins()[0], 1u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[9], 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_NEAR(h.mean(), (5 + 15 + 99 + 100 + 1000) / 5.0, 1e-9);
}

TEST(Stats, HistogramReset)
{
    StatGroup g("g");
    Histogram h(&g, "h", "", 10.0, 2);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bins()[0], 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Stats, HistogramPercentileEmptyContract)
{
    StatGroup g("g");
    Histogram h(&g, "h", "", 100.0, 10);
    // Empty histogram: every quantile - including degenerate and
    // out-of-range arguments - is defined and reports 0.0.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(-3.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(7.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(std::nan("")), 0.0);
    // render() on an empty histogram exercises the same path.
    EXPECT_NE(h.render().find("n=0"), std::string::npos);
    // Reset returns the histogram to the empty contract.
    h.sample(5.0);
    EXPECT_GT(h.percentile(0.5), 0.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Stats, HistogramPercentileClampsArgument)
{
    StatGroup g("g");
    Histogram h(&g, "h", "", 100.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(double(i));
    // q clamps into [0, 1]: below-range and NaN behave as q = 0 (rank
    // 1, first occupied bin edge), above-range as q = 1.
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(std::nan("")), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
    // The rank is a ceiling: the 0.01-quantile of 100 samples is the
    // 1st sample, still in the first bin.
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 10.0);
}

TEST(Stats, FormulaTracksInputs)
{
    StatGroup g("g");
    Scalar hits(&g, "hits", "");
    Scalar total(&g, "total", "");
    Formula rate(&g, "rate", "", [&] {
        return total.value() ? double(hits.value()) / total.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(rate.value(), 0.0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, GroupDumpContainsPathsAndDescs)
{
    StatGroup root("machine");
    StatGroup child("cache", &root);
    Scalar s(&child, "misses", "number of misses");
    s += 7;
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("machine.cache.misses = 7"), std::string::npos);
    EXPECT_NE(text.find("number of misses"), std::string::npos);
}

TEST(Stats, GroupResetAllRecurses)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Stats, LookupByDottedPath)
{
    StatGroup root("r");
    StatGroup child("c", &root);
    Scalar b(&child, "b", "");
    b += 2;
    const StatBase *found = root.lookup("c.b");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->render(), "2");
    EXPECT_EQ(root.lookup("c.zzz"), nullptr);
    EXPECT_EQ(root.lookup("x.b"), nullptr);
}

TEST(Stats, FindDirect)
{
    StatGroup root("r");
    Scalar a(&root, "a", "");
    EXPECT_EQ(root.find("a"), &a);
    EXPECT_EQ(root.find("nope"), nullptr);
}
