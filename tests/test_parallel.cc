/**
 * @file
 * Unit tests for the sweep thread pool (common/parallel.hh): result
 * ordering, exception propagation, zero/nested submission, and the
 * jobs=1 serial-degenerate case.
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"

using namespace hscd;

namespace {

void
napMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

TEST(Parallel, HardwareJobsIsPositive)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(Parallel, ResultsInSubmissionOrder)
{
    // Later tasks finish first (earlier ones sleep longer); the result
    // vector must still be in submission order.
    const std::size_t n = 24;
    std::vector<int> out = parallelMap(8, n, [&](std::size_t i) {
        napMs(i < 4 ? int(8 - 2 * i) : 0);
        return int(i) * 10;
    });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], int(i) * 10) << "index " << i;
}

TEST(Parallel, Jobs1RunsInlineOnCaller)
{
    const std::thread::id self = std::this_thread::get_id();
    std::vector<std::size_t> order;
    std::vector<std::thread::id> ids = parallelMap(1, 8, [&](std::size_t i) {
        order.push_back(i); // safe: inline execution is serial
        return std::this_thread::get_id();
    });
    for (const std::thread::id &id : ids)
        EXPECT_EQ(id, self);
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Parallel, ZeroTasks)
{
    std::vector<int> out = parallelMap(4, 0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());

    // An idle pool constructs, waits, and destructs cleanly.
    ThreadPool pool(4);
    pool.wait();
}

TEST(Parallel, ExceptionFromLowestIndexWins)
{
    // Index 9 throws immediately, index 2 throws late: the serial
    // equivalent would have reported index 2 first, so we must too.
    EXPECT_THROW(
        {
            try {
                parallelMap(8, 12, [&](std::size_t i) -> int {
                    if (i == 9)
                        throw std::runtime_error("late index");
                    if (i == 2) {
                        napMs(10);
                        throw std::runtime_error("early index");
                    }
                    return 0;
                });
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "early index");
                throw;
            }
        },
        std::runtime_error);
}

TEST(Parallel, Jobs1ExceptionStopsLikeASerialLoop)
{
    std::vector<std::size_t> executed;
    EXPECT_THROW(parallelMap(1, 8,
                             [&](std::size_t i) -> int {
                                 executed.push_back(i);
                                 if (i == 2)
                                     throw std::runtime_error("boom");
                                 return 0;
                             }),
                 std::runtime_error);
    // Inline mode must not run anything past the throwing index.
    EXPECT_EQ(executed, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Parallel, NestedSubmission)
{
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 6; ++i) {
        pool.submit([&pool, &done] {
            // Each parent enqueues two children onto the same pool.
            for (int c = 0; c < 2; ++c)
                pool.submit([&done] { ++done; });
            ++done;
        });
    }
    pool.wait(); // must cover children queued by running parents
    EXPECT_EQ(done.load(), 6 * 3);
}

TEST(Parallel, MoreJobsThanTasks)
{
    std::vector<int> out =
        parallelMap(16, 3, [](std::size_t i) { return int(i) + 1; });
    EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Parallel, ParallelForSideEffects)
{
    std::atomic<long> sum{0};
    parallelFor(8, 100, [&](std::size_t i) { sum += long(i); });
    EXPECT_EQ(sum.load(), 99L * 100 / 2);
}

TEST(Parallel, PoolReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 3; ++wave) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (wave + 1) * 10);
    }
}
