/**
 * @file
 * Scheme-level fuzzing: random epoch-structured access streams driven
 * straight into each coherence scheme, with an independent shadow model
 * checking every observed value and the directory invariants checked
 * after every operation.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "mc/explorer.hh"
#include "mc/replay.hh"
#include "mem/coherence.hh"
#include "mem/directory_scheme.hh"

using namespace hscd;
using namespace hscd::mem;
using compiler::MarkKind;

namespace {

/**
 * Generates a legal access stream: per epoch, each word has at most one
 * writing processor, and readers of a word never overlap its writer
 * within the epoch. Reads are issued as Time-Reads with the exact
 * distance to the last write epoch - the most aggressive sound marking.
 */
class Fuzzer
{
  public:
    Fuzzer(SchemeKind kind, std::uint64_t seed, unsigned line_bytes = 16,
           unsigned tag_bits = 8)
        : _rng(seed), _root("fuzz"), _memory(1 << 16),
          _cfg(), _epoch(0)
    {
        _cfg.scheme = kind;
        _cfg.procs = 4;
        _cfg.cacheBytes = 2048; // tiny: exercise eviction constantly
        _cfg.lineBytes = line_bytes;
        _cfg.timetagBits = tag_bits;
        _net = std::make_unique<net::Network>(&_root, _cfg.procs,
                                              _cfg.networkRadix,
                                              _cfg.maxNetworkLoad);
        _scheme = makeScheme(_cfg, _memory, *_net, &_root);
    }

    void
    runEpochs(int epochs, int ops_per_epoch)
    {
        for (int e = 0; e < epochs; ++e) {
            epochOps(ops_per_epoch);
            ++_epoch;
            _scheme->epochBoundary(_epoch);
        }
    }

    Counter violations() const { return _violations; }
    const CoherenceScheme &scheme() const { return *_scheme; }

  private:
    struct WordState
    {
        ValueStamp stamp = 0;
        EpochId lastWriteEpoch = 0;
        bool everWritten = false;
    };

    void
    epochOps(int count)
    {
        // Pre-assign this epoch's writers: a DOALL fixes who writes each
        // word before the epoch starts, and no other task may touch a
        // written word at all (even a read before the write is a race).
        std::map<std::uint64_t, ProcId> writer;
        for (int i = 0; i < count / 3; ++i)
            writer.emplace(_rng.below(256),
                           static_cast<ProcId>(_rng.below(_cfg.procs)));

        for (int i = 0; i < count; ++i) {
            ProcId p = static_cast<ProcId>(_rng.below(_cfg.procs));
            std::uint64_t word = _rng.below(256);
            Addr addr = 0x1000 + word * 4;
            auto w = writer.find(word);
            bool write = w != writer.end() && w->second == p &&
                         _rng.chance(0.6);

            if (!write && w != writer.end() && w->second != p)
                continue; // word owned by another task this epoch

            MemOp op;
            op.proc = p;
            op.addr = addr;
            op.arrayId = static_cast<std::uint32_t>(word / 32);
            op.now = ++_now;
            WordState &ws = _shadow[word];
            if (write) {
                op.write = true;
                op.stamp = ++_stamp;
                ws.stamp = op.stamp;
                ws.lastWriteEpoch = _epoch;
                ws.everWritten = true;
                _scheme->access(op);
            } else {
                op.mark = _rng.chance(0.2) ? MarkKind::Normal
                                           : MarkKind::TimeRead;
                // A Normal read is only sound for never-written data
                // here; anything else gets the exact-distance Time-Read.
                if (op.mark == MarkKind::Normal && ws.everWritten)
                    op.mark = MarkKind::TimeRead;
                if (op.mark == MarkKind::TimeRead) {
                    // Exact distance to the last write epoch (or huge
                    // when never written).
                    op.distance =
                        ws.everWritten
                            ? static_cast<std::uint32_t>(
                                  _epoch - ws.lastWriteEpoch)
                            : 1000000;
                }
                AccessResult res = _scheme->access(op);
                if (res.observed != ws.stamp)
                    ++_violations;
            }
            checkDirectoryInvariants(addr);
        }
    }

    void
    checkDirectoryInvariants(Addr addr)
    {
        auto *dir = dynamic_cast<DirectoryScheme *>(_scheme.get());
        if (!dir)
            return;
        const DirEntry &e = dir->dirEntry(addr);
        if (e.state == DirEntry::State::Modified) {
            ASSERT_NE(e.owner, invalidProc);
            ASSERT_EQ(e.sharers, std::uint64_t{1} << e.owner)
                << "modified lines have exactly the owner present";
        }
        if (e.state == DirEntry::State::Uncached) {
            ASSERT_EQ(e.sharers, 0u);
        }
    }

    Rng _rng;
    stats::StatGroup _root;
    MainMemory _memory;
    MachineConfig _cfg;
    std::unique_ptr<net::Network> _net;
    std::unique_ptr<CoherenceScheme> _scheme;
    std::map<std::uint64_t, WordState> _shadow;
    EpochId _epoch;
    Cycles _now = 0;
    ValueStamp _stamp = 0;
    Counter _violations = 0;
};

struct FuzzCase
{
    SchemeKind scheme;
    unsigned lineBytes;
    unsigned tagBits;
};

class SchemeFuzz : public testing::TestWithParam<FuzzCase>
{
};

} // namespace

TEST_P(SchemeFuzz, RandomStreamsNeverReadStale)
{
    const FuzzCase &fc = GetParam();
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Fuzzer f(fc.scheme, seed * 31, fc.lineBytes, fc.tagBits);
        f.runEpochs(40, 300);
        EXPECT_EQ(f.violations(), 0u)
            << schemeName(fc.scheme) << " seed " << seed;
        EXPECT_GT(f.scheme().stats().reads.value(), 0u);
    }
}

// ----------------------------------------------------- pinned corpus --
//
// Model-checker feedback into the fuzz corpus (ISSUE 6 satellite): the
// exhaustive explorer came back clean on every shipped configuration,
// so there are no violating traces to pin. What it *did* surface during
// development was a near-miss interleaving - a benign lowered-tag
// mem.tag flip whose copy legally ages past dmax and must miss
// conservatively rather than trip the wraparound invariants. These
// pinned walks keep that fault corner (and the exhaustively-verified
// acceptance shapes) replaying deterministically against the real
// TpiScheme on every build; a divergence here means the implementation
// drifted from the modelled semantics.
TEST(SchemeFuzz, PinnedModelCheckerTraces)
{
    struct Pin
    {
        unsigned bits;
        unsigned faults;
        std::uint64_t seed;
    };
    // Seeds chosen to exercise: fault-free wraparound at both narrow
    // widths, and faulted walks whose scripts fire mem.tag flips /
    // net.drops at the 1-bit acceptance shape.
    const Pin pins[] = {{1, 0, 3},  {1, 0, 11}, {2, 0, 5},
                        {1, 1, 2},  {1, 1, 7},  {1, 1, 13},
                        {1, 1, 29}, {2, 1, 17}};
    for (const Pin &pin : pins) {
        mc::McConfig cfg;
        cfg.timetagBits = pin.bits;
        cfg.faultBudget = pin.faults;
        if (pin.bits == 2) {
            cfg.horizonEpochs = 6;
            cfg.opsPerEpoch = 1;
        }
        const std::vector<mc::Action> path =
            mc::randomWalk(cfg, pin.seed);
        const mc::CheckReport rep = mc::crossCheck(cfg, path);
        EXPECT_TRUE(rep.ok)
            << "bits=" << pin.bits << " faults=" << pin.faults
            << " seed=" << pin.seed << ": " << rep.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeFuzz,
    testing::Values(FuzzCase{SchemeKind::Base, 16, 8},
                    FuzzCase{SchemeKind::SC, 16, 8},
                    FuzzCase{SchemeKind::SC, 64, 8},
                    FuzzCase{SchemeKind::TPI, 16, 8},
                    FuzzCase{SchemeKind::TPI, 16, 3},
                    FuzzCase{SchemeKind::TPI, 64, 4},
                    FuzzCase{SchemeKind::TPI, 4, 2},
                    FuzzCase{SchemeKind::HW, 16, 8},
                    FuzzCase{SchemeKind::HW, 64, 8},
                    FuzzCase{SchemeKind::VC, 16, 8},
                    FuzzCase{SchemeKind::VC, 64, 8}),
    [](const auto &info) {
        return std::string(schemeName(info.param.scheme)) + "_l" +
               std::to_string(info.param.lineBytes) + "_t" +
               std::to_string(info.param.tagBits);
    });
