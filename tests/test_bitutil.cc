/** @file Unit tests for bit utilities. */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

using namespace hscd;

TEST(BitUtil, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(BitUtil, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
}

TEST(BitUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}
