/** @file Unit tests for stale-reference detection / Time-Read marking. */

#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "hir/builder.hh"

using namespace hscd;
using namespace hscd::hir;
using namespace hscd::compiler;

namespace {

Marking
analyze(Program &p, const AnalysisOptions &opts = {})
{
    EpochGraph g = EpochGraph::build(p);
    return Marking::run(p, g, opts);
}

} // namespace

TEST(Marking, ReadOnlyDataIsNormal)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.array("B", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            r = b.read("B", {b.v("i")});
            b.write("A", {b.v("i")});
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::Normal);
    EXPECT_EQ(m.mark(r).reason, MarkReason::ReadOnly);
}

TEST(Marking, SerialInitThenParallelReadIsTimeRead1)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 15, [&] { b.write("A", {b.v("k")}); });
        b.doall("i", 0, 15, [&] { r = b.read("A", {b.v("i")}); });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 1u);
    EXPECT_EQ(m.mark(r).reason, MarkReason::Stale);
}

TEST(Marking, ParallelWriteThenSerialReadIsTimeRead1)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        r = b.read("A", {b.c(3)});
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 1u);
}

TEST(Marking, TimeLoopReadModifyWriteGetsCycleDistance)
{
    // The paper's flagship pattern: DOALL inside a serial time loop; the
    // task re-reads what some task wrote in the previous instance (2
    // boundaries back). Hardware timetags can preserve locality when the
    // scheduler is affine; the compiler must mark d=2.
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 9, [&] {
            b.doall("i", 0, 15, [&] {
                r = b.read("A", {b.v("i")});
                b.write("A", {b.v("i")});
            });
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 2u);
}

TEST(Marking, CoveredReadIsNormal)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 9, [&] {
            b.doall("i", 0, 15, [&] {
                b.write("A", {b.v("i")});
                r = b.read("A", {b.v("i")});
            });
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::Normal);
    EXPECT_EQ(m.mark(r).reason, MarkReason::Covered);
}

TEST(Marking, SerialAffinitySuppressesSerialThreats)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.array("B", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.doall("i", 0, 15, [&] { b.write("B", {b.v("i")}); });
        r = b.read("A", {b.c(0)});
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::Normal);
    EXPECT_EQ(m.mark(r).reason, MarkReason::SerialAffinity);
}

TEST(Marking, SerialAffinityOffMakesItStale)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.write("A", {b.c(0)});
        b.doall("i", 0, 15, [&] { b.compute(1); });
        r = b.read("A", {b.c(0)});
    });
    Program p = b.build();
    AnalysisOptions opts;
    opts.assumeSerialAffinity = false;
    Marking m = analyze(p, opts);
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 2u);
}

TEST(Marking, DisjointSectionsNoThreat)
{
    // Writers touch the lower half, readers the upper half.
    ProgramBuilder b;
    b.array("A", {std::int64_t{32}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        b.doall("j", 0, 15, [&] { r = b.read("A", {b.v("j") + 16}); });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::Normal);
    EXPECT_EQ(m.mark(r).reason, MarkReason::ReadOnly);
}

TEST(Marking, StridedDisjointSectionsNoThreat)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{64}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 31, [&] { b.write("A", {b.v("i") * 2}); });
        b.doall("j", 0, 30, [&] {
            r = b.read("A", {b.v("j") * 2 + 1});
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::Normal);
}

TEST(Marking, UnknownSubscriptForcesTimeRead)
{
    // The paper's X(f(i)) case.
    ProgramBuilder b;
    b.array("X", {std::int64_t{64}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("X", {b.v("i")}); });
        b.doall("j", 0, 15, [&] { r = b.read("X", {b.unknown()}); });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    // DOALL exit + DOALL entry, with the (empty) serial epoch between.
    EXPECT_EQ(m.mark(r).distance, 2u);
}

TEST(Marking, SameEpochFalseSharingStyleConflict)
{
    // Same DOALL: task i writes A(i), task i reads A(i+1) - the compiler
    // must flag the read (it touches another task's element).
    ProgramBuilder b;
    b.array("A", {std::int64_t{32}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            r = b.read("A", {b.v("i") + 1});
            b.write("A", {b.v("i")});
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    // read A(i+1) vs write A(i): delta = 1, coeff 1 -> same-instance
    // cross-task conflict -> d = 0.
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 0u);
    EXPECT_EQ(m.mark(r).reason, MarkReason::SameEpoch);
}

TEST(Marking, SameTaskDifferentDimIsNotConflict)
{
    // Write A(i,k), read A(i,k-1): dim 0 pins both refs to the same task.
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}, std::int64_t{8}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.doserial("k", 1, 7, [&] {
                r = b.read("A", {b.v("i"), b.v("k") - 1});
                b.write("A", {b.v("i"), b.v("k")});
            });
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    // No cross-task same-instance conflict and no cycle: normal.
    EXPECT_EQ(m.mark(r).kind, MarkKind::Normal);
}

TEST(Marking, CriticalReadsBypass)
{
    ProgramBuilder b;
    b.array("S", {std::int64_t{4}});
    RefId r0 = invalidRef, r1 = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.critical([&] {
                r0 = b.read("S", {b.c(0)});
                b.write("S", {b.c(0)});
                r1 = b.read("S", {b.c(0)});
            });
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r0).kind, MarkKind::Bypass);
    EXPECT_EQ(m.mark(r0).reason, MarkReason::Critical);
    EXPECT_EQ(m.mark(r1).kind, MarkKind::Normal);
    EXPECT_EQ(m.mark(r1).reason, MarkReason::Covered);
}

TEST(Marking, NonCriticalReadOfLockedDataBypasses)
{
    ProgramBuilder b;
    b.array("S", {std::int64_t{4}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.critical([&] { b.write("S", {b.c(0)}); });
            r = b.read("S", {b.c(0)});
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::Bypass);
}

TEST(Marking, JoinAcrossCallSitesIsConservative)
{
    // STEP's read is safe from the first call site (nothing written yet)
    // but stale from the second (after the DOALL wrote A): the single
    // static mark must be the conservative join.
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.call("STEP");
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        b.call("STEP");
    });
    b.proc("STEP", [&] {
        b.doall("j", 0, 15, [&] { r = b.read("A", {b.v("j")}); });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 2u);
}

TEST(Marking, BranchShortensDistance)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        b.ifUnknown(TakePolicy::Alternate, [&] {
            b.doall("j", 0, 15, [&] { b.compute(1); });
        });
        b.doall("k", 0, 15, [&] { r = b.read("A", {b.v("k")}); });
    });
    Program p = b.build();
    Marking m = analyze(p);
    // Shortest path skips the middle DOALL: d = 2 instead of 4.
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 2u);
}

TEST(Marking, WritesKeepWriteMark)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId w = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { w = b.write("A", {b.v("i")}); });
    });
    Program p = b.build();
    Marking m = analyze(p);
    EXPECT_EQ(m.mark(w).reason, MarkReason::WriteRef);
}

TEST(Marking, MaxDistanceCap)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    RefId r = invalidRef;
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
        for (int k = 0; k < 10; ++k)
            b.barrier();
        r = b.read("A", {b.c(0)});
    });
    Program p = b.build();
    AnalysisOptions opts;
    opts.maxDistance = 4;
    Marking m = analyze(p, opts);
    EXPECT_EQ(m.mark(r).kind, MarkKind::TimeRead);
    EXPECT_EQ(m.mark(r).distance, 4u);
}

TEST(Marking, StatsAccounting)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.array("B", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doserial("k", 0, 15, [&] { b.write("A", {b.v("k")}); });
        b.doall("i", 0, 15, [&] {
            b.read("A", {b.v("i")});   // time-read
            b.read("B", {b.v("i")});   // read-only
            b.write("A", {b.v("i")});
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    const MarkingStats &st = m.stats();
    EXPECT_EQ(st.reads, 2u);
    EXPECT_EQ(st.writes, 2u);
    EXPECT_EQ(st.timeRead, 1u);
    EXPECT_EQ(st.readOnly, 1u);
    EXPECT_EQ(st.distanceHist[1], 1u);
}

TEST(Marking, DescribeListsEveryRef)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.doall("i", 0, 15, [&] {
            b.read("A", {b.v("i")});
            b.write("A", {b.v("i")});
        });
    });
    Program p = b.build();
    Marking m = analyze(p);
    const std::string d = m.describe(p);
    EXPECT_NE(d.find("ref 0"), std::string::npos);
    EXPECT_NE(d.find("ref 1"), std::string::npos);
    EXPECT_NE(d.find("A(i)"), std::string::npos);
}

TEST(Marking, CompileProgramBundlesEverything)
{
    ProgramBuilder b;
    b.array("A", {std::int64_t{16}});
    b.proc("MAIN", [&] {
        b.call("STEP");
    });
    b.proc("STEP", [&] {
        b.doall("i", 0, 15, [&] { b.write("A", {b.v("i")}); });
    });
    CompiledProgram cp = compileProgram(b.build());
    EXPECT_EQ(cp.program.refCount(), 1u);
    EXPECT_GE(cp.graph.nodes().size(), 3u);
    EXPECT_EQ(cp.summaries.size(), 2u);
    EXPECT_TRUE(cp.summaries[cp.program.findProcedure("STEP")].hasBoundary);
    EXPECT_FALSE(
        cp.summaries[cp.program.findProcedure("STEP")].mod.empty());
}
