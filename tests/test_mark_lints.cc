/**
 * @file
 * Unit tests for the marking-precision analyzer: the generic dataflow
 * engine (both stock domains, both directions), each MARK diagnostic
 * with a triggering and a non-triggering program, the GRAPH004
 * write-write conflict lint, the proven-safe tighten rewrite
 * round-trip, and the diagnostic-catalog/docs pinning.
 *
 * Every trigger test is paired with a near-miss that must stay silent:
 * the precision passes feed `--tighten` and a `--werror` gate, so a
 * false positive is as much a bug as a false negative.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "sim/machine.hh"
#include "verify/verify.hh"

using namespace hscd;
using compiler::EpochEdge;
using compiler::unreachableDist;
using hir::ProgramBuilder;
using verify::FlowDir;
using verify::FlowGraph;

namespace {

bool
hasDiag(const verify::DiagnosticEngine &d, const std::string &id)
{
    for (const verify::Diagnostic &diag : d.diagnostics())
        if (diag.id == id)
            return true;
    return false;
}

verify::DiagnosticEngine
lintWith(ProgramBuilder &b, const compiler::AnalysisOptions &aopts = {},
         const verify::LintOptions &lopts = {})
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(b.build(), aopts);
    return verify::lintProgram(cp, "test", lopts);
}

FlowGraph
chain(std::size_t n, std::uint32_t weight)
{
    std::vector<std::vector<EpochEdge>> adj(n);
    for (std::size_t i = 0; i + 1 < n; ++i)
        adj[i].push_back(
            EpochEdge{static_cast<compiler::NodeId>(i + 1), weight});
    return FlowGraph(std::move(adj));
}

/**
 * write A | write B | write B | read A(reversed): every footprint is
 * concretely enumerable, and the stale read's true boundary distance is
 * 6 (the graph keeps an empty serial node between consecutive DOALLs,
 * so each spacer epoch contributes two boundaries).
 */
hir::RefId
staleAtThree(ProgramBuilder &b)
{
    hir::RefId stale = hir::invalidRef;
    b.param("N", 16);
    b.array("A", {"N"});
    b.array("B", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("A", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("B", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("B", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1, [&] {
            stale = b.read("A", {b.p("N") - 1 - b.v("i")});
        });
    });
    return stale;
}

} // namespace

// --------------------------------------------------------------------
// The dataflow engine itself, on hand-built flow graphs.
// --------------------------------------------------------------------

TEST(Dataflow, MinDistanceAlongAChain)
{
    FlowGraph g = chain(4, 1);
    std::vector<bool> gens{true, false, false, false};
    auto res = solveDataflow(g, FlowDir::Forward,
                             verify::MinDistanceDomain(gens));
    EXPECT_EQ(res.in[0], unreachableDist) << "nothing reaches the entry";
    EXPECT_EQ(res.out[0], 0u);
    EXPECT_EQ(res.in[1], 1u);
    EXPECT_EQ(res.in[2], 2u);
    EXPECT_EQ(res.in[3], 3u);
}

TEST(Dataflow, MinDistanceTakesTheShortestPath)
{
    // Diamond 0->{1,2}->3 where the 0->2->3 route crosses one boundary
    // and the 0->1->3 route crosses two: meet must pick 1.
    std::vector<std::vector<EpochEdge>> adj(4);
    adj[0] = {EpochEdge{1, 1}, EpochEdge{2, 0}};
    adj[1] = {EpochEdge{3, 1}};
    adj[2] = {EpochEdge{3, 1}};
    FlowGraph g(std::move(adj));
    std::vector<bool> gens{true, false, false, false};
    auto res = solveDataflow(g, FlowDir::Forward,
                             verify::MinDistanceDomain(gens));
    EXPECT_EQ(res.in[3], 1u);
}

TEST(Dataflow, BackwardRunsOverReversedEdges)
{
    FlowGraph g = chain(3, 1);
    std::vector<bool> gens{false, false, true};
    auto res = solveDataflow(g, FlowDir::Backward,
                             verify::MinDistanceDomain(gens));
    // Backward indexing is semantic: in[] holds the value at node exit.
    EXPECT_EQ(res.in[2], unreachableDist);
    EXPECT_EQ(res.in[1], 1u);
    EXPECT_EQ(res.in[0], 2u);
}

TEST(Dataflow, EpochFactsMeetIsIntersection)
{
    // Diamond with weight-0 edges: fact 0 is established on only one
    // branch, fact 1 on both; must-availability keeps only fact 1.
    std::vector<std::vector<EpochEdge>> adj(4);
    adj[0] = {EpochEdge{1, 0}, EpochEdge{2, 0}};
    adj[1] = {EpochEdge{3, 0}};
    adj[2] = {EpochEdge{3, 0}};
    FlowGraph g(std::move(adj));
    verify::EpochFactsDomain dom(2, {{}, {0, 1}, {1}, {}});
    auto res = solveDataflow(g, FlowDir::Forward, dom);
    ASSERT_FALSE(res.in[3].universal);
    EXPECT_FALSE(res.in[3].bits[0]);
    EXPECT_TRUE(res.in[3].bits[1]);
}

TEST(Dataflow, EpochFactsDieAtBoundariesAndKills)
{
    // 0 -(boundary)-> 1 -> 2 where node 1 is also a kill site: the fact
    // from node 0 must survive neither route into node 2.
    FlowGraph g = chain(3, 0);
    {
        FlowGraph boundary = chain(2, 1);
        verify::EpochFactsDomain dom(1, {{0}, {}});
        auto res = solveDataflow(boundary, FlowDir::Forward, dom);
        ASSERT_FALSE(res.in[1].universal);
        EXPECT_FALSE(res.in[1].bits[0])
            << "a weight>=1 edge must invalidate intra-epoch facts";
    }
    verify::EpochFactsDomain dom(1, {{0}, {}, {}},
                                 {false, true, false});
    auto res = solveDataflow(g, FlowDir::Forward, dom);
    EXPECT_TRUE(res.in[1].bits[0]) << "fact reaches the kill node";
    EXPECT_FALSE(res.in[2].bits[0]) << "the kill node must clear it";
}

// --------------------------------------------------------------------
// MARK001: proven over-conservative marks and the tighten rewrite.
// --------------------------------------------------------------------

TEST(MarkLints, Mark001FiresWhenTheBudgetClampsADistance)
{
    // --max-distance=1 forces TimeRead(1) where the machine-window
    // requirement is TimeRead(6): provably over-conservative.
    ProgramBuilder b;
    staleAtThree(b);
    compiler::AnalysisOptions aopts;
    aopts.maxDistance = 1;
    verify::DiagnosticEngine d = lintWith(b, aopts);
    EXPECT_TRUE(hasDiag(d, "MARK001")) << d.renderText();
}

TEST(MarkLints, Mark001SilentWhenTheMarkingIsMinimal)
{
    ProgramBuilder b;
    staleAtThree(b);
    verify::DiagnosticEngine d = lintWith(b);
    EXPECT_FALSE(hasDiag(d, "MARK001")) << d.renderText();
}

TEST(MarkLints, TightenRewritesToTheOracleRequirementAndStaysSound)
{
    ProgramBuilder b;
    const hir::RefId stale = staleAtThree(b);
    compiler::AnalysisOptions aopts;
    aopts.maxDistance = 1;
    compiler::CompiledProgram cp =
        compiler::compileProgram(b.build(), aopts);
    ASSERT_EQ(cp.marking.mark(stale).kind, compiler::MarkKind::TimeRead);
    ASSERT_EQ(cp.marking.mark(stale).distance, 1u);

    const verify::LintOptions lopts;
    verify::OracleReport oracle = verify::oracleAnalyze(cp, lopts);
    verify::PrecisionReport rep =
        verify::precisionAnalyze(cp, lopts, oracle);
    ASSERT_FALSE(rep.overConservative.empty());
    bool sawStale = false;
    for (const verify::Tighten &t : rep.overConservative) {
        if (t.ref != stale)
            continue;
        sawStale = true;
        EXPECT_EQ(t.toKind, compiler::MarkKind::TimeRead);
        EXPECT_EQ(t.toDistance, 6u);
    }
    EXPECT_TRUE(sawStale);

    verify::tightenMarking(cp, rep);
    EXPECT_EQ(cp.marking.mark(stale).distance, 6u);

    // The rewritten program must re-lint clean of MARK001 and survive
    // the runtime checkers: zero oracle, shadow, and DOALL violations.
    verify::OracleReport after = verify::oracleAnalyze(cp, lopts);
    EXPECT_TRUE(after.underMarked.empty());
    EXPECT_TRUE(
        verify::precisionAnalyze(cp, lopts, after).overConservative
            .empty());

    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.shadowEpochCheck = true;
    sim::RunResult r = sim::simulate(cp, cfg);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_EQ(r.shadowViolations, 0u);
    EXPECT_EQ(r.doallViolations, 0u);
}

// --------------------------------------------------------------------
// MARK002: Time-Reads dominated by an earlier equivalent Time-Read.
// --------------------------------------------------------------------

TEST(MarkLints, Mark002FiresOnALockstepRepeatedTimeRead)
{
    ProgramBuilder b;
    b.param("N", 16);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("A", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1, [&] {
            b.read("A", {b.p("N") - 1 - b.v("i")});
            b.compute(4);
            b.read("A", {b.p("N") - 1 - b.v("i")});
        });
    });
    verify::DiagnosticEngine d = lintWith(b);
    EXPECT_TRUE(hasDiag(d, "MARK002")) << d.renderText();
}

TEST(MarkLints, Mark002SilentWhenFootprintsDiffer)
{
    // A(i) vs A(N-1-i): the earlier read covers a different word per
    // task, so no per-task containment proof exists.
    ProgramBuilder b;
    b.param("N", 16);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("A", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1, [&] {
            b.read("A", {b.v("i")});
            b.read("A", {b.p("N") - 1 - b.v("i")});
        });
    });
    verify::DiagnosticEngine d = lintWith(b);
    EXPECT_FALSE(hasDiag(d, "MARK002")) << d.renderText();
}

TEST(MarkLints, Mark002SilentAcrossEpochBoundaries)
{
    // The identical read repeats in the NEXT epoch: the availability
    // fact dies at the boundary (a mid-epoch tag reset or conflicting
    // write may intervene), so no domination claim is sound.
    ProgramBuilder b;
    b.param("N", 16);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("A", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1, [&] {
            b.read("A", {b.p("N") - 1 - b.v("i")});
        });
        b.doall("i", b.c(0), b.p("N") - 1, [&] {
            b.read("A", {b.p("N") - 1 - b.v("i")});
        });
    });
    verify::DiagnosticEngine d = lintWith(b);
    EXPECT_FALSE(hasDiag(d, "MARK002")) << d.renderText();
}

// --------------------------------------------------------------------
// MARK003: timetag-window saturation.
// --------------------------------------------------------------------

namespace {

/** write A, then @p spacers B-epochs, then read A: distance spacers+1. */
void
spacedReadback(ProgramBuilder &b, int spacers)
{
    b.param("N", 8);
    b.array("A", {"N"});
    b.array("B", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("A", {b.v("i")}); });
        for (int s = 0; s < spacers; ++s)
            b.doall("i", b.c(0), b.p("N") - 1,
                    [&] { b.write("B", {b.v("i")}); });
        b.doall("i", b.c(0), b.p("N") - 1, [&] {
            b.read("A", {b.p("N") - 1 - b.v("i")});
        });
    });
}

} // namespace

TEST(MarkLints, Mark003FiresWhenTheProvenDistanceExceedsTheWindow)
{
    // 2-bit tags: window 3, true distance 6. The compiler saturates the
    // mark to 3 and the dataflow lower bound proves every such
    // Time-Read misses CONSERVATIVE.
    ProgramBuilder b;
    spacedReadback(b, 5);
    compiler::AnalysisOptions aopts;
    aopts.timetagBits = 2;
    verify::LintOptions lopts;
    lopts.timetagBits = 2;
    verify::DiagnosticEngine d = lintWith(b, aopts, lopts);
    EXPECT_TRUE(hasDiag(d, "MARK003")) << d.renderText();
}

TEST(MarkLints, Mark003SilentWhenTheWindowCovers)
{
    ProgramBuilder b;
    spacedReadback(b, 5);
    verify::DiagnosticEngine d = lintWith(b);
    EXPECT_FALSE(hasDiag(d, "MARK003")) << d.renderText();
}

// --------------------------------------------------------------------
// GRAPH004: proven same-epoch write-write conflicts.
// --------------------------------------------------------------------

TEST(MarkLints, Graph004FiresWhenEveryTaskWritesOneWord)
{
    ProgramBuilder b;
    b.param("N", 8);
    b.array("A", {"N"});
    b.proc("MAIN", [&] {
        b.doall("i", b.c(0), b.p("N") - 1,
                [&] { b.write("A", {b.c(0)}); });
    });
    verify::DiagnosticEngine d = lintWith(b);
    EXPECT_TRUE(hasDiag(d, "GRAPH004")) << d.renderText();
}

TEST(MarkLints, Graph004SilentOnDisjointOrLockedWrites)
{
    {
        ProgramBuilder b;
        b.param("N", 8);
        b.array("A", {"N"});
        b.proc("MAIN", [&] {
            b.doall("i", b.c(0), b.p("N") - 1,
                    [&] { b.write("A", {b.v("i")}); });
        });
        verify::DiagnosticEngine d = lintWith(b);
        EXPECT_FALSE(hasDiag(d, "GRAPH004")) << d.renderText();
    }
    {
        // Same shared word, but lock-protected: mutual exclusion makes
        // the outcome schedule-independent at word granularity.
        ProgramBuilder b;
        b.param("N", 8);
        b.array("A", {"N"});
        b.proc("MAIN", [&] {
            b.doall("i", b.c(0), b.p("N") - 1, [&] {
                b.critical([&] { b.write("A", {b.c(0)}); });
            });
        });
        verify::DiagnosticEngine d = lintWith(b);
        EXPECT_FALSE(hasDiag(d, "GRAPH004")) << d.renderText();
    }
}

// --------------------------------------------------------------------
// Catalog integrity and the generated docs file.
// --------------------------------------------------------------------

TEST(Catalog, MarkFamilyIsCatalogedUnderThePrecisionPass)
{
    for (const char *id : {"MARK001", "MARK002", "MARK003"}) {
        const verify::CatalogEntry *e = verify::catalogLookup(id);
        ASSERT_NE(e, nullptr) << id;
        EXPECT_STREQ(e->pass, "marking-precision") << id;
        EXPECT_EQ(e->severity, verify::Severity::Note) << id;
    }
    const verify::CatalogEntry *g4 = verify::catalogLookup("GRAPH004");
    ASSERT_NE(g4, nullptr);
    EXPECT_EQ(g4->severity, verify::Severity::Warning);
}

TEST(Catalog, DocsFileMatchesGeneratedMarkdown)
{
    const std::string path =
        std::string(HSCD_SOURCE_DIR) + "/docs/DIAGNOSTICS.md";
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "missing " << path;
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    EXPECT_EQ(text, verify::catalogMarkdown())
        << "docs/DIAGNOSTICS.md is stale; regenerate with "
           "`hscd_lint --catalog > docs/DIAGNOSTICS.md`";
}
