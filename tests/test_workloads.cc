/**
 * @file
 * Workload validation: every benchmark builds, compiles, runs legally
 * (no data races) and coherently (no stale reads) under every scheme,
 * and exhibits its characteristic behaviour.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::sim;
using namespace hscd::workloads;

namespace {

MachineConfig
cfg(SchemeKind k, unsigned procs = 8)
{
    MachineConfig c;
    c.scheme = k;
    c.procs = procs;
    return c;
}

} // namespace

class BenchmarkSuite : public testing::TestWithParam<std::string>
{
};

TEST_P(BenchmarkSuite, BuildsAndCompiles)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(buildBenchmark(GetParam(), 1));
    EXPECT_GT(cp.program.refCount(), 5u);
    EXPECT_GT(cp.graph.nodes().size(), 3u);
    EXPECT_GT(cp.marking.stats().reads, 0u);
    EXPECT_GT(cp.marking.stats().timeRead, 0u)
        << "every benchmark should have potentially-stale reads";
}

TEST_P(BenchmarkSuite, CoherentUnderAllSchemes)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(buildBenchmark(GetParam(), 1));
    for (SchemeKind k : {SchemeKind::Base, SchemeKind::SC, SchemeKind::TPI,
                         SchemeKind::HW})
    {
        RunResult r = simulate(cp, cfg(k, 4));
        EXPECT_EQ(r.doallViolations, 0u)
            << GetParam() << " must be a legal DOALL program";
        EXPECT_EQ(r.oracleViolations, 0u)
            << GetParam() << " under " << schemeName(k);
        EXPECT_GT(r.parallelEpochs, 0u);
    }
}

TEST_P(BenchmarkSuite, CoherentAtWideLinesAndNarrowTags)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(buildBenchmark(GetParam(), 1));
    for (SchemeKind k : {SchemeKind::TPI, SchemeKind::HW}) {
        MachineConfig c = cfg(k, 4);
        c.lineBytes = 64;
        c.timetagBits = 3;
        RunResult r = simulate(cp, c);
        EXPECT_EQ(r.oracleViolations, 0u)
            << GetParam() << " under " << schemeName(k);
    }
}

INSTANTIATE_TEST_SUITE_P(Perfect, BenchmarkSuite,
                         testing::Values("ADM", "FLO52", "OCEAN", "QCD2",
                                         "SPEC77", "TRFD"),
                         [](const auto &info) { return info.param; });

TEST(Workloads, RegistryRoundTrip)
{
    for (const std::string &name : benchmarkNames()) {
        hir::Program p = buildBenchmark(name, 1);
        EXPECT_GT(p.refCount(), 0u) << name;
    }
    EXPECT_THROW(buildBenchmark("nope"), FatalError);
    EXPECT_EQ(benchmarkNames().size(), 6u);
}

TEST(Workloads, ScaleGrowsWork)
{
    for (const std::string &name : benchmarkNames()) {
        compiler::CompiledProgram s1 =
            compiler::compileProgram(buildBenchmark(name, 1));
        compiler::CompiledProgram s2 =
            compiler::compileProgram(buildBenchmark(name, 2));
        RunResult r1 = simulate(s1, cfg(SchemeKind::TPI, 4));
        RunResult r2 = simulate(s2, cfg(SchemeKind::TPI, 4));
        EXPECT_GT(r2.reads, r1.reads) << name;
    }
}

TEST(Workloads, TrfdHasRedundantWriteTraffic)
{
    // TRFD rewrites accumulator words ~M times: the cache-organized write
    // buffer must remove most of the write-through packets.
    compiler::CompiledProgram cp =
        compiler::compileProgram(buildTrfd(1));
    MachineConfig plain = cfg(SchemeKind::TPI, 8);
    MachineConfig coalescing = cfg(SchemeKind::TPI, 8);
    coalescing.writeBufferAsCache = true;
    RunResult rp = simulate(cp, plain);
    RunResult rc = simulate(cp, coalescing);
    EXPECT_LT(rc.writePackets, rp.writePackets / 2)
        << "redundant-write elimination should at least halve TRFD's "
           "write traffic";
    EXPECT_EQ(rc.oracleViolations, 0u);
}

TEST(Workloads, MicrokernelsCoherent)
{
    std::vector<hir::Program> programs;
    programs.push_back(microJacobi(64, 3));
    programs.push_back(microMatmul(10));
    programs.push_back(microReduction(64, 2));
    programs.push_back(microTranspose(12, 2));
    programs.push_back(microPipeline(64, 2));
    programs.push_back(microLu(12));
    programs.push_back(microFft(64, 2));
    for (hir::Program &p : programs) {
        compiler::CompiledProgram cp =
            compiler::compileProgram(std::move(p));
        for (SchemeKind k :
             {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
        {
            RunResult r = simulate(cp, cfg(k, 4));
            EXPECT_EQ(r.oracleViolations, 0u) << schemeName(k);
            EXPECT_EQ(r.doallViolations, 0u);
        }
    }
}

TEST(Workloads, LuShrinkingParallelismUnbalancesBlocks)
{
    compiler::CompiledProgram cp = compiler::compileProgram(microLu(24));
    MachineConfig c = cfg(SchemeKind::TPI, 8);
    RunResult r = simulate(cp, c);
    EXPECT_EQ(r.oracleViolations, 0u);
    EXPECT_GT(r.imbalance(), 1.2)
        << "trailing updates shrink: block chunks go idle";
}

TEST(Workloads, FftShuffleDefeatsAffinity)
{
    // The perfect shuffle moves every element across tasks each round:
    // Time-Read hits should be rare even under block scheduling.
    compiler::CompiledProgram cp =
        compiler::compileProgram(microFft(256, 4));
    RunResult r = simulate(cp, cfg(SchemeKind::TPI, 8));
    EXPECT_EQ(r.oracleViolations, 0u);
    double hit = r.timeReads
                     ? double(r.timeReadHits) / double(r.timeReads)
                     : 0.0;
    // Spatial side-fills still serve ~3 of 4 word reads; the temporal
    // (cross-round) component that stencils enjoy (~88% hit rate, see
    // MissRateOrderingOnLocalityWorkload) is gone.
    EXPECT_LT(hit, 0.85) << "all-to-all motion breaks processor affinity";
}

TEST(Workloads, Spec77BroadcastReadsAreTimeReads)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(buildSpec77(1));
    RunResult r = simulate(cp, cfg(SchemeKind::TPI, 4));
    EXPECT_GT(r.timeReads, r.reads / 4)
        << "broadcast reads of freshly written coefficients dominate";
}

TEST(Workloads, AdmVerticalSolveHasCoveredLocality)
{
    compiler::CompiledProgram cp = compiler::compileProgram(buildAdm(1));
    const auto &st = cp.marking.stats();
    EXPECT_GT(st.covered + st.readOnly, 0u)
        << "tridiagonal sweeps should yield compiler-proven-fresh reads";
    RunResult r = simulate(cp, cfg(SchemeKind::TPI, 4));
    EXPECT_EQ(r.oracleViolations, 0u);
}
