/**
 * @file
 * hscd_inspect: query observability artifacts and instrumented runs.
 *
 * Answers "what happened?" questions about a simulation from four
 * sources: a metrics time-series JSON (`--metrics FILE`, written by the
 * bench `--metrics/--metrics-out` flags), a Perfetto timeline
 * (`--perfetto FILE`, written by `--trace-out`), a recorded text trace
 * (`--trace FILE`, outcomes re-derived with a modelled infinite-capacity
 * TPI cache), or an in-process run of a workload (`--workload NAME`,
 * exact scheme verdicts via the TraceSink outcome stream).
 *
 *   hscd_inspect --metrics metrics.json summary
 *   hscd_inspect --metrics metrics.json epoch 12
 *   hscd_inspect --workload ocean line 0x1a40
 *   hscd_inspect --workload ocean why-miss 3 0x1a40
 *   hscd_inspect --workload ocean why-miss auto
 *
 * `why-miss` is the flagship query: for a Time-Read miss it reconstructs
 * the word's timetag from the outcome stream (fills stamp the demanded
 * word with the fill epoch and its line-mates with epoch-1; a passing
 * Time-Read promotes to the current epoch; a write stamps the write
 * epoch, or epoch-1 under a lock) and reports whether the miss was
 * TRUE-SHARE (a foreign write landed after the timetag - no marking
 * distance could have kept the copy) or CONSERVATIVE (the data was still
 * fresh - the compiler's distance was simply too small, and the report
 * states the distance that would have hit).
 *
 * Exit codes per the verify::ExitCode contract: 0 success, 1 the query
 * matched nothing, 2 usage error, 5 unreadable input.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/strutil.hh"
#include "compiler/analysis.hh"
#include "mem/coherence.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "verify/diagnostic.hh"
#include "workloads/trace.hh"
#include "workloads/workloads.hh"

namespace {

using namespace hscd;

using ULL = unsigned long long;

struct CliOptions
{
    std::string metricsPath;
    std::string perfettoPath;
    std::string tracePath;
    std::string workload;
    SchemeKind scheme = SchemeKind::TPI;
    int scale = 1;
    unsigned procs = 0; ///< 0 keeps the Figure 8 default
    std::size_t limit = 64;
    std::string missClass; ///< why-miss auto: restrict to this class
    std::string command;
    std::vector<std::string> args;
};

void
usage(const char *argv0)
{
    std::string names;
    for (const std::string &n : workloads::benchmarkNames())
        names += (names.empty() ? "" : "|") + n;
    std::printf(
        "usage: %s [sources] <command> [args]\n"
        "\n"
        "Commands:\n"
        "  summary                 totals from every given source\n"
        "  epoch <n>               per-interval detail for epoch n\n"
        "  line <addr>             event timeline of one cache line\n"
        "  why-miss <proc> <addr>  attribute Time-Read misses at addr\n"
        "  why-miss auto           explain the first attributable miss\n"
        "\n"
        "Sources (at least one):\n"
        "  --metrics FILE    metrics series JSON (bench --metrics)\n"
        "  --perfetto FILE   Perfetto timeline JSON (bench --trace-out)\n"
        "  --trace FILE      recorded text trace; outcomes re-derived\n"
        "                    with a modelled infinite-capacity TPI cache\n"
        "  --workload NAME   run NAME in-process (%s)\n"
        "                    and inspect the exact scheme verdicts\n"
        "\n"
        "Workload-mode options:\n"
        "  --scheme S        base|sc|tpi|hw|vc (default tpi)\n"
        "  --scale N         workload problem scale (default 1)\n"
        "  --procs N         processor count (default: Figure 8)\n"
        "\n"
        "Other:\n"
        "  --limit N         max events listed by `line` (default 64)\n"
        "  --class C         why-miss auto: pick a miss of class C\n"
        "                    (e.g. true-share, conservative)\n"
        "  --help            this text\n",
        argv0, names.c_str());
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                std::exit(verify::ExitUsage);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(verify::ExitSuccess);
        } else if (a == "--metrics") {
            opt.metricsPath = value("--metrics");
        } else if (a == "--perfetto") {
            opt.perfettoPath = value("--perfetto");
        } else if (a == "--trace") {
            opt.tracePath = value("--trace");
        } else if (a == "--workload") {
            opt.workload = value("--workload");
        } else if (a == "--scheme") {
            try {
                opt.scheme = parseScheme(value("--scheme"));
            } catch (const FatalError &) {
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--scale") {
            opt.scale = std::atoi(value("--scale").c_str());
        } else if (a == "--procs") {
            opt.procs = static_cast<unsigned>(
                std::strtoul(value("--procs").c_str(), nullptr, 10));
        } else if (a == "--limit") {
            opt.limit = static_cast<std::size_t>(
                std::strtoull(value("--limit").c_str(), nullptr, 10));
        } else if (a == "--class") {
            opt.missClass = value("--class");
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        } else {
            positional.push_back(a);
        }
    }
    if (positional.empty()) {
        std::fprintf(stderr, "%s: no command given\n", argv[0]);
        usage(argv[0]);
        std::exit(verify::ExitUsage);
    }
    opt.command = positional.front();
    opt.args.assign(positional.begin() + 1, positional.end());
    if (opt.metricsPath.empty() && opt.perfettoPath.empty() &&
        opt.tracePath.empty() && opt.workload.empty()) {
        std::fprintf(stderr, "%s: no source given (--metrics, --perfetto, "
                             "--trace or --workload)\n", argv[0]);
        std::exit(verify::ExitUsage);
    }
    return opt;
}

std::uint64_t
parseNumber(const std::string &s, const char *what)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0') {
        std::fprintf(stderr, "hscd_inspect: bad %s '%s'\n", what,
                     s.c_str());
        std::exit(verify::ExitUsage);
    }
    return v;
}

// ---------------------------------------------------------------------
// Outcome stream: one record per memory reference with its verdict.

struct Outcome
{
    mem::MemOp op;
    bool hit = false;
    Cycles stall = 0;
    mem::MissClass cls = mem::MissClass::None;
    EpochId epoch = 0;
};

struct Source
{
    std::vector<Outcome> recs;
    EpochId epochs = 0;      ///< last epoch id seen
    unsigned lineBytes = 16;
    bool exact = false;      ///< scheme verdicts vs. modelled cache
    bool promote = true;     ///< Time-Read hits refresh the timetag
    sim::RunResult run;      ///< workload mode only
    bool hasRun = false;
    std::string what;        ///< banner: where the outcomes came from
};

/** Record the exact scheme verdict of every reference during a run. */
class OutcomeLog : public sim::TraceSink
{
  public:
    void onAccess(const mem::MemOp &) override {}

    void
    onBoundary(EpochId epoch) override
    {
        if (epoch > epochs)
            epochs = epoch;
    }

    void
    onOutcome(const mem::MemOp &op, const mem::AccessResult &res,
              EpochId epoch) override
    {
        recs.push_back({op, res.hit, res.stall, res.cls, epoch});
    }

    std::vector<Outcome> recs;
    EpochId epochs = 0;
};

Source
runWorkload(const CliOptions &opt)
{
    // trace:<file> replays an external trace through the chosen scheme
    // with the exact per-access verdict stream (same path the compiled
    // workloads use); the strict parser makes malformed input exit 2.
    if (workloads::isTraceSpec(opt.workload)) {
        Source src;
        try {
            const workloads::TraceWorkload t =
                workloads::loadTraceSpec(opt.workload);
            MachineConfig cfg;
            cfg.scheme = opt.scheme;
            cfg.procs = opt.procs ? opt.procs : t.procs;
            if (cfg.procs < t.procs)
                cfg.procs = t.procs;
            OutcomeLog log;
            src.run = workloads::runTrace(t, cfg, &log);
            src.hasRun = true;
            src.exact = true;
            src.lineBytes = cfg.lineBytes;
            src.promote = cfg.tpiPromoteOnHit;
            src.recs = std::move(log.recs);
            src.epochs = log.epochs;
            src.what = csprintf(
                "trace %s (scheme %s, %d procs, exact)", t.source,
                schemeName(cfg.scheme), cfg.procs);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "hscd_inspect: %s\n", e.what());
            std::exit(verify::ExitUsage);
        }
        return src;
    }
    compiler::AnalysisOptions aopts;
    aopts.assumeSerialAffinity = true;
    compiler::CompiledProgram cp;
    try {
        cp = compiler::compileProgram(
            workloads::buildBenchmark(opt.workload, opt.scale), aopts);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "hscd_inspect: %s\n", e.what());
        std::exit(verify::ExitUsage);
    }
    MachineConfig cfg;
    cfg.scheme = opt.scheme;
    if (opt.procs)
        cfg.procs = opt.procs;
    sim::Machine m(cp, cfg);
    OutcomeLog log;
    m.setTraceSink(&log);

    Source src;
    src.run = m.run();
    src.hasRun = true;
    src.exact = true;
    src.lineBytes = cfg.lineBytes;
    src.promote = cfg.tpiPromoteOnHit;
    src.recs = std::move(log.recs);
    src.epochs = log.epochs;
    src.what = csprintf("workload %s (scheme %s, scale %d, exact)",
                        opt.workload, schemeName(cfg.scheme), opt.scale);
    return src;
}

/**
 * Re-derive outcomes for a recorded trace with a modelled TPI cache:
 * infinite capacity (no replacement misses), word timetags with demand/
 * side fill, promote-on-hit, and the paper's write stamping. Good
 * enough for why-miss attribution when only the trace survived; the
 * --workload mode is exact and preferred.
 */
Source
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "hscd_inspect: cannot read '%s'\n",
                     path.c_str());
        std::exit(verify::ExitInternal);
    }
    sim::ParsedTrace t = sim::readTrace(is);

    Source src;
    src.exact = false;
    src.what = csprintf("trace %s (%d procs, modelled TPI cache)", path,
                        int(t.procs));

    struct WordState
    {
        bool valid = false;
        EpochId tt = 0;
    };
    std::map<std::pair<ProcId, Addr>, WordState> cache;
    std::set<std::pair<ProcId, Addr>> lineCached;
    std::map<Addr, std::pair<EpochId, ProcId>> lastWrite;
    const Addr lineMask = ~Addr(src.lineBytes - 1);
    EpochId epoch = 0;
    // Fetch a line: the demanded word is vouched through the current
    // epoch, its line-mates through epoch-1 (invalid in epoch 0).
    auto fillLine = [&](ProcId proc, Addr demanded) {
        const Addr base = demanded & lineMask;
        lineCached.insert({proc, base});
        for (Addr a = base; a < base + src.lineBytes; a += 4) {
            WordState &st = cache[{proc, a}];
            if (a == demanded) {
                st.valid = true;
                st.tt = epoch;
            } else {
                st.valid = epoch > 0;
                st.tt = epoch ? epoch - 1 : 0;
            }
        }
    };
    for (const sim::TraceRecord &r : t.records) {
        if (r.type == sim::TraceRecord::Type::Boundary) {
            epoch = r.epoch;
            if (epoch > src.epochs)
                src.epochs = epoch;
            continue;
        }
        const mem::MemOp &op = r.op;
        Outcome o;
        o.op = op;
        o.epoch = epoch;
        const Addr word = op.addr & ~Addr(3);
        const bool present =
            lineCached.count({op.proc, op.addr & lineMask}) != 0;
        if (op.write) {
            o.hit = present;
            if (!present)
                fillLine(op.proc, word); // write-allocate
            WordState &st = cache[{op.proc, word}];
            if (!op.critical) {
                st.valid = true;
                st.tt = epoch;
            } else {
                st.valid = epoch > 0;
                st.tt = epoch ? epoch - 1 : 0;
            }
            lastWrite[word] = {epoch, op.proc};
        } else if (op.mark == compiler::MarkKind::Bypass) {
            o.hit = false; // uncached single-word fetch, unclassified
        } else {
            const WordState st = cache[{op.proc, word}];
            bool fresh = true;
            if (st.valid && op.mark == compiler::MarkKind::TimeRead) {
                const EpochId floor =
                    epoch >= op.distance ? epoch - op.distance : 0;
                fresh = st.tt >= floor;
            }
            if (present && st.valid && fresh) {
                o.hit = true;
                if (op.mark == compiler::MarkKind::TimeRead)
                    cache[{op.proc, word}].tt = epoch; // promote
            } else {
                o.hit = false;
                if (!present) {
                    o.cls = mem::MissClass::Cold;
                } else if (!st.valid) {
                    o.cls = mem::MissClass::TagReset;
                } else {
                    auto lw = lastWrite.find(word);
                    const bool stale = lw != lastWrite.end() &&
                                       lw->second.second != op.proc &&
                                       lw->second.first > st.tt &&
                                       lw->second.first <= epoch;
                    o.cls = stale ? mem::MissClass::TrueShare
                                  : mem::MissClass::Conservative;
                }
                fillLine(op.proc, word);
            }
        }
        src.recs.push_back(o);
    }
    return src;
}

const char *
markName(compiler::MarkKind m)
{
    switch (m) {
      case compiler::MarkKind::Normal: return "normal";
      case compiler::MarkKind::TimeRead: return "time-read";
      case compiler::MarkKind::Bypass: return "bypass";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Timetag reconstruction for one (processor, word) pair.

struct WordHistory
{
    bool valid = false;
    EpochId tt = 0;
    std::string source = "never cached";
    EpochId sourceEpoch = 0;
    /** Writes to the word by *other* processors, in stream order. */
    std::vector<std::pair<EpochId, ProcId>> foreignWrites;
};

/**
 * Replay outcomes [0, end) and reconstruct what processor @p p's cached
 * copy of @p word looked like: the timetag the hardware would compare
 * against a Time-Read floor, and where that timetag came from. Follows
 * the TPI stamping rules exactly (demand fill = fill epoch, side fill =
 * epoch-1, promote-on-hit, write = epoch or epoch-1 under a lock).
 * Evictions are invisible in the stream, but every query site branches
 * on the scheme's own miss class first, so a replaced copy is never
 * misattributed.
 */
WordHistory
replayWord(const Source &s, ProcId p, Addr word, std::size_t end)
{
    WordHistory h;
    const Addr lineMask = ~Addr(s.lineBytes - 1);
    const Addr line = word & lineMask;
    // A line-mate fill vouches for this word only up to epoch-1; in
    // epoch 0 there is no representable EC-1, so the tag stays invalid.
    auto sideFill = [&h](EpochId e) {
        h.valid = e > 0;
        h.tt = e ? e - 1 : 0;
        h.source = e ? "side fill" : "side fill (epoch 0: invalid)";
        h.sourceEpoch = e;
    };
    for (std::size_t i = 0; i < end && i < s.recs.size(); ++i) {
        const Outcome &o = s.recs[i];
        const Addr w = o.op.addr & ~Addr(3);
        const bool sameLine = (o.op.addr & lineMask) == line;
        if (o.op.write) {
            if (o.op.proc != p) {
                if (w == word &&
                    (h.foreignWrites.empty() ||
                     h.foreignWrites.back() !=
                         std::make_pair(o.epoch, o.op.proc)))
                    h.foreignWrites.emplace_back(o.epoch, o.op.proc);
                continue;
            }
            if (!sameLine)
                continue;
            // A write miss allocates the whole line before stamping
            // the written word, so a missing write to a line-mate
            // side-fills this word too.
            if (!o.hit && w != word)
                sideFill(o.epoch);
            if (w == word) {
                if (!o.op.critical) {
                    h.valid = true;
                    h.tt = o.epoch;
                    h.source = "write";
                } else if (o.epoch) {
                    h.valid = true;
                    h.tt = o.epoch - 1;
                    h.source = "critical write";
                } else {
                    h.valid = false;
                    h.tt = 0;
                    h.source = "critical write (epoch 0: invalid)";
                }
                h.sourceEpoch = o.epoch;
            }
            continue;
        }
        // Bypass reads go around the cache: no fill, no tag change.
        if (o.op.proc != p || o.op.mark == compiler::MarkKind::Bypass)
            continue;
        if (!o.hit) {
            // A read miss (re)fetches the whole line.
            if (!sameLine || o.cls == mem::MissClass::Uncached)
                continue;
            if (w == word) {
                h.valid = true;
                h.tt = o.epoch;
                h.source = "demand fill";
                h.sourceEpoch = o.epoch;
            } else {
                sideFill(o.epoch);
            }
        } else if (w == word && s.promote &&
                   o.op.mark == compiler::MarkKind::TimeRead) {
            h.tt = o.epoch;
            h.source = "time-read promote";
            h.sourceEpoch = o.epoch;
        }
    }
    return h;
}

// ---------------------------------------------------------------------
// Commands over the outcome stream.

void
explainOne(const Source &s, std::size_t idx, unsigned seq, unsigned total)
{
    const Outcome &o = s.recs[idx];
    const ProcId p = o.op.proc;
    const Addr word = o.op.addr & ~Addr(3);
    const EpochId floor =
        o.epoch >= o.op.distance ? o.epoch - o.op.distance : 0;

    std::printf("  miss %u/%u: epoch %llu, cycle %llu, time-read d=%u "
                "(floor = %llu)%s\n",
                seq, total, ULL(o.epoch), ULL(o.op.now), o.op.distance,
                ULL(floor),
                s.exact ? csprintf(", scheme class: %s",
                                   mem::missClassName(o.cls)).c_str()
                        : "");

    // Misses the scheme already blames on cache shape are not marking
    // questions; say so instead of second-guessing.
    if (o.cls == mem::MissClass::Cold ||
        o.cls == mem::MissClass::Replacement) {
        std::printf("    verdict: %s - no live copy to vouch for; the "
                    "timetag was never consulted.\n",
                    o.cls == mem::MissClass::Cold ? "COLD (first touch)"
                                                  : "CAPACITY (evicted)");
        return;
    }

    const WordHistory h = replayWord(s, p, word, idx);
    if (o.cls == mem::MissClass::TagReset) {
        // The line was present but the word's tag invalid: either the
        // two-phase reset wiped it, or an epoch-0 fill never vouched.
        if (!h.valid && h.source != "never cached")
            std::printf("    verdict: INVALID TAG - the word's tag was "
                        "never set (%s); no distance could hit.\n",
                        h.source.c_str());
        else
            std::printf("    verdict: TAG-RESET - the copy was "
                        "invalidated by timetag wraparound (two-phase "
                        "reset), not by the marking distance.\n");
        return;
    }
    if (!h.valid) {
        std::printf("    no reconstructable copy before this miss "
                    "(%s).\n",
                    h.source == "never cached" ? "first touch in the "
                                                 "stream"
                                               : h.source.c_str());
        return;
    }
    std::printf("    cached timetag = %llu (%s in epoch %llu); "
                "%llu < floor %llu so the Time-Read cannot vouch.\n",
                ULL(h.tt), h.source.c_str(), ULL(h.sourceEpoch),
                ULL(h.tt), ULL(floor));

    // Foreign write after the timetag but not after the reader's epoch?
    const std::pair<EpochId, ProcId> *staleBy = nullptr;
    const std::pair<EpochId, ProcId> *lastForeign = nullptr;
    for (const auto &fw : h.foreignWrites) {
        lastForeign = &fw;
        if (!staleBy && fw.first > h.tt && fw.first <= o.epoch)
            staleBy = &fw;
    }
    if (staleBy) {
        std::printf("    foreign write in (%llu, %llu]: epoch %llu by "
                    "proc %u - the copy really was stale.\n",
                    ULL(h.tt), ULL(o.epoch), ULL(staleBy->first),
                    unsigned(staleBy->second));
        std::printf("    verdict: TRUE-SHARE - timetag state is "
                    "correct; no marking distance could have kept "
                    "this copy.\n");
    } else {
        if (lastForeign)
            std::printf("    foreign writes in (%llu, %llu]: none "
                        "(last foreign write: epoch %llu by proc %u).\n",
                        ULL(h.tt), ULL(o.epoch), ULL(lastForeign->first),
                        unsigned(lastForeign->second));
        else
            std::printf("    foreign writes in (%llu, %llu]: none "
                        "(no other processor ever wrote this word).\n",
                        ULL(h.tt), ULL(o.epoch));
        std::printf("    verdict: CONSERVATIVE - the data was still "
                    "fresh; a marking distance d >= %llu (epoch - "
                    "timetag) would have hit.\n",
                    ULL(o.epoch - h.tt));
    }
    if (s.exact) {
        const mem::MissClass want = staleBy ? mem::MissClass::TrueShare
                                            : mem::MissClass::Conservative;
        std::printf("    (reconstruction %s the scheme's %s "
                    "classification)\n",
                    o.cls == want ? "agrees with" : "DISAGREES with",
                    mem::missClassName(o.cls));
    }
}

int
cmdWhyMiss(const Source &s, const CliOptions &opt)
{
    ProcId p = 0;
    Addr addr = 0;
    if (opt.args.size() == 1 && opt.args[0] == "auto") {
        // Pick the first Time-Read miss the marking layer can answer
        // for: the scheme blames staleness or conservatism, not shape.
        bool found = false;
        for (const Outcome &o : s.recs) {
            if (o.op.write || o.hit ||
                o.op.mark != compiler::MarkKind::TimeRead)
                continue;
            if (o.cls != mem::MissClass::TrueShare &&
                o.cls != mem::MissClass::Conservative)
                continue;
            if (!opt.missClass.empty() &&
                opt.missClass != mem::missClassName(o.cls))
                continue;
            p = o.op.proc;
            addr = o.op.addr;
            found = true;
            break;
        }
        if (!found) {
            std::printf("why-miss auto: no attributable Time-Read miss "
                        "in %s\n", s.what.c_str());
            return verify::ExitDiagnostics;
        }
        std::printf("why-miss auto: picked proc %u, addr %#llx\n",
                    unsigned(p), ULL(addr));
    } else if (opt.args.size() == 2) {
        p = static_cast<ProcId>(parseNumber(opt.args[0], "proc"));
        addr = parseNumber(opt.args[1], "addr");
    } else {
        std::fprintf(stderr, "hscd_inspect: why-miss needs <proc> <addr> "
                             "or 'auto'\n");
        return verify::ExitUsage;
    }

    const Addr word = addr & ~Addr(3);
    std::vector<std::size_t> misses, trMisses;
    for (std::size_t i = 0; i < s.recs.size(); ++i) {
        const Outcome &o = s.recs[i];
        if (o.op.write || o.hit || o.op.proc != p ||
            (o.op.addr & ~Addr(3)) != word)
            continue;
        misses.push_back(i);
        if (o.op.mark == compiler::MarkKind::TimeRead)
            trMisses.push_back(i);
    }
    std::printf("why-miss: proc %u, word %#llx in %s\n", unsigned(p),
                ULL(word), s.what.c_str());
    if (trMisses.empty()) {
        std::printf("  no Time-Read misses at this word by this "
                    "processor (%d other misses).\n", int(misses.size()));
        return verify::ExitDiagnostics;
    }
    for (std::size_t k = 0; k < trMisses.size(); ++k)
        explainOne(s, trMisses[k], unsigned(k + 1),
                   unsigned(trMisses.size()));
    return verify::ExitSuccess;
}

int
cmdLine(const Source &s, const CliOptions &opt)
{
    if (opt.args.size() != 1) {
        std::fprintf(stderr, "hscd_inspect: line needs <addr>\n");
        return verify::ExitUsage;
    }
    const Addr addr = parseNumber(opt.args[0], "addr");
    const Addr lineMask = ~Addr(s.lineBytes - 1);
    const Addr base = addr & lineMask;

    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < s.recs.size(); ++i)
        if ((s.recs[i].op.addr & lineMask) == base)
            hits.push_back(i);
    std::printf("line %#llx (%u bytes) in %s: %d events\n", ULL(base),
                s.lineBytes, s.what.c_str(), int(hits.size()));
    if (hits.empty())
        return verify::ExitDiagnostics;

    std::printf("  %-7s %-10s %-5s %-12s %-22s %s\n", "epoch", "cycle",
                "proc", "addr", "op", "result");
    const std::size_t shown = std::min(hits.size(), opt.limit);
    for (std::size_t k = 0; k < shown; ++k) {
        const Outcome &o = s.recs[hits[k]];
        std::string opdesc = o.op.write
                                 ? std::string(o.op.critical
                                                   ? "W (critical)"
                                                   : "W")
                                 : csprintf("R %s", markName(o.op.mark));
        if (!o.op.write && o.op.mark == compiler::MarkKind::TimeRead)
            opdesc += csprintf(" d=%d", int(o.op.distance));
        std::string result;
        if (o.hit)
            result = "hit";
        else if (o.cls == mem::MissClass::None)
            result = csprintf("miss (stall %d)", int(o.stall));
        else
            result = csprintf("MISS %s (stall %d)",
                              mem::missClassName(o.cls), int(o.stall));
        std::printf("  %-7llu %-10llu %-5u %#-12llx %-22s %s\n",
                    ULL(o.epoch), ULL(o.op.now), unsigned(o.op.proc),
                    ULL(o.op.addr), opdesc.c_str(), result.c_str());
    }
    if (shown < hits.size())
        std::printf("  ... %d more events (raise --limit)\n",
                    int(hits.size() - shown));
    return verify::ExitSuccess;
}

void
outcomeTotals(const Source &s, EpochId only_epoch, bool filter)
{
    Counter reads = 0, writes = 0, misses = 0, timeReads = 0,
            timeReadHits = 0;
    std::map<mem::MissClass, Counter> byClass;
    for (const Outcome &o : s.recs) {
        if (filter && o.epoch != only_epoch)
            continue;
        if (o.op.write) {
            ++writes;
            continue;
        }
        ++reads;
        if (o.op.mark == compiler::MarkKind::TimeRead) {
            ++timeReads;
            if (o.hit)
                ++timeReadHits;
        }
        if (!o.hit) {
            ++misses;
            if (o.cls != mem::MissClass::None)
                ++byClass[o.cls];
        }
    }
    std::printf("  reads %llu (misses %llu, rate %.4f), writes %llu\n",
                ULL(reads), ULL(misses),
                reads ? double(misses) / double(reads) : 0.0, ULL(writes));
    if (timeReads)
        std::printf("  time-reads %llu, hits %llu (%.4f)\n",
                    ULL(timeReads), ULL(timeReadHits),
                    double(timeReadHits) / double(timeReads));
    for (const auto &kv : byClass)
        std::printf("    miss class %-12s %llu\n",
                    mem::missClassName(kv.first), ULL(kv.second));
}

// ---------------------------------------------------------------------
// Metrics-file commands.

std::vector<std::uint64_t>
sampleValues(const obs::MetricSample &s)
{
    return {
#define HSCD_METRIC_VALUE(name) s.name,
        HSCD_METRIC_U64_FIELDS(HSCD_METRIC_VALUE)
#undef HSCD_METRIC_VALUE
    };
}

const std::vector<std::string> &
sampleNames()
{
    static const std::vector<std::string> names = {
#define HSCD_METRIC_NAME(name) #name,
        HSCD_METRIC_U64_FIELDS(HSCD_METRIC_NAME)
#undef HSCD_METRIC_NAME
    };
    return names;
}

std::vector<obs::MetricSample>
loadMetrics(const std::string &path, std::string *spec)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "hscd_inspect: cannot read '%s'\n",
                     path.c_str());
        std::exit(verify::ExitInternal);
    }
    std::vector<obs::MetricSample> rows;
    if (!obs::readMetricsJson(is, rows, spec)) {
        std::fprintf(stderr, "hscd_inspect: '%s' is not a metrics series "
                             "(schema hscd-metrics)\n", path.c_str());
        std::exit(verify::ExitInternal);
    }
    return rows;
}

int
metricsEpoch(const std::string &path, EpochId n)
{
    std::string spec;
    const std::vector<obs::MetricSample> rows = loadMetrics(path, &spec);
    if (rows.empty()) {
        std::printf("metrics %s: no rows\n", path.c_str());
        return verify::ExitDiagnostics;
    }
    std::size_t at = rows.size();
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (rows[i].epoch == n) {
            at = i;
            break;
        }
    if (at == rows.size()) {
        std::printf("metrics %s: no sample at epoch %llu (retained "
                    "window: epoch %llu..%llu)\n", path.c_str(), ULL(n),
                    ULL(rows.front().epoch), ULL(rows.back().epoch));
        return verify::ExitDiagnostics;
    }
    const obs::MetricSample &cur = rows[at];
    const obs::MetricSample prev =
        at ? rows[at - 1] : obs::MetricSample{};
    std::printf("metrics %s (spec %s): epoch %llu vs previous sample "
                "(epoch %llu)\n", path.c_str(), spec.c_str(), ULL(n),
                at ? ULL(prev.epoch) : 0ull);
    const std::vector<std::uint64_t> c = sampleValues(cur);
    const std::vector<std::uint64_t> p = sampleValues(prev);
    const std::vector<std::string> &names = sampleNames();
    std::printf("  %-18s %14s %14s\n", "counter", "cumulative", "delta");
    for (std::size_t i = 0; i < names.size(); ++i) {
        // epoch/cycle are coordinates, not counters; print plainly.
        if (names[i] == "epoch" || names[i] == "cycle") {
            std::printf("  %-18s %14llu\n", names[i].c_str(), ULL(c[i]));
            continue;
        }
        std::printf("  %-18s %14llu %14lld\n", names[i].c_str(),
                    ULL(c[i]),
                    static_cast<long long>(c[i]) -
                        static_cast<long long>(p[i]));
    }
    std::printf("  %-18s %14.6f\n", "networkLoad", cur.networkLoad);
    return verify::ExitSuccess;
}

void
metricsSummary(const std::string &path)
{
    std::string spec;
    const std::vector<obs::MetricSample> rows = loadMetrics(path, &spec);
    std::printf("metrics %s: spec %s, %d samples\n", path.c_str(),
                spec.c_str(), int(rows.size()));
    if (rows.empty())
        return;
    const obs::MetricSample &last = rows.back();
    std::printf("  window: epoch %llu..%llu, cycle %llu..%llu\n",
                ULL(rows.front().epoch), ULL(last.epoch),
                ULL(rows.front().cycle), ULL(last.cycle));
    std::printf("  totals: reads %llu (misses %llu, rate %.4f), writes "
                "%llu\n", ULL(last.reads), ULL(last.readMisses),
                last.reads ? double(last.readMisses) / double(last.reads)
                           : 0.0, ULL(last.writes));
    std::printf("  misses: cold %llu, repl %llu, true-share %llu, "
                "false-share %llu, conservative %llu, tag-reset %llu, "
                "uncached %llu\n", ULL(last.missCold),
                ULL(last.missReplacement), ULL(last.missTrueShare),
                ULL(last.missFalseShare), ULL(last.missConservative),
                ULL(last.missTagReset), ULL(last.missUncached));
    std::printf("  time-reads %llu (hits %llu), traffic %llu packets / "
                "%llu words, tag resets %llu, faults %llu\n",
                ULL(last.timeReads), ULL(last.timeReadHits),
                ULL(last.trafficPackets), ULL(last.trafficWords),
                ULL(last.tagResets), ULL(last.faultsInjected));
}

void
perfettoSummary(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "hscd_inspect: cannot read '%s'\n",
                     path.c_str());
        std::exit(verify::ExitInternal);
    }
    obs::PerfettoCounts c;
    if (!obs::readPerfettoCounts(is, c)) {
        std::fprintf(stderr, "hscd_inspect: '%s' is not one of our "
                             "Perfetto timelines\n", path.c_str());
        std::exit(verify::ExitInternal);
    }
    std::printf("perfetto %s: %llu slices (epoch spans + miss services "
                "+ reset windows), %llu/%llu flow arrows, %llu instants, "
                "%llu track-metadata records\n", path.c_str(),
                ULL(c.slices), ULL(c.flowStarts), ULL(c.flowEnds),
                ULL(c.instants), ULL(c.metadata));
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);

    // Build the outcome stream when any command needs one.
    const bool wantOutcomes =
        !opt.workload.empty() || !opt.tracePath.empty();
    Source src;
    if (!opt.workload.empty())
        src = runWorkload(opt);
    else if (!opt.tracePath.empty())
        src = loadTrace(opt.tracePath);

    if (opt.command == "summary") {
        if (!opt.metricsPath.empty())
            metricsSummary(opt.metricsPath);
        if (!opt.perfettoPath.empty())
            perfettoSummary(opt.perfettoPath);
        if (wantOutcomes) {
            std::printf("%s: %d references, %llu epochs\n",
                        src.what.c_str(), int(src.recs.size()),
                        ULL(src.epochs));
            if (src.hasRun)
                std::printf("  %s\n", src.run.summary().c_str());
            outcomeTotals(src, 0, false);
        }
        return verify::ExitSuccess;
    }
    if (opt.command == "epoch") {
        if (opt.args.size() != 1) {
            std::fprintf(stderr, "hscd_inspect: epoch needs <n>\n");
            return verify::ExitUsage;
        }
        const EpochId n = parseNumber(opt.args[0], "epoch");
        if (!opt.metricsPath.empty())
            return metricsEpoch(opt.metricsPath, n);
        if (wantOutcomes) {
            std::printf("epoch %llu in %s:\n", ULL(n), src.what.c_str());
            outcomeTotals(src, n, true);
            return verify::ExitSuccess;
        }
        std::fprintf(stderr, "hscd_inspect: epoch needs --metrics, "
                             "--workload or --trace\n");
        return verify::ExitUsage;
    }
    if (opt.command == "line" || opt.command == "why-miss") {
        if (!wantOutcomes) {
            std::fprintf(stderr, "hscd_inspect: %s needs --workload or "
                                 "--trace\n", opt.command.c_str());
            return verify::ExitUsage;
        }
        return opt.command == "line" ? cmdLine(src, opt)
                                     : cmdWhyMiss(src, opt);
    }
    std::fprintf(stderr, "hscd_inspect: unknown command '%s'\n",
                 opt.command.c_str());
    usage(argv[0]);
    return verify::ExitUsage;
}
