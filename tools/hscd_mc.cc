/**
 * @file
 * hscd_mc: exhaustive model checker for TPI + two-phase reset.
 *
 * Explores every interleaving of a small TPI machine (2-3 processors,
 * a few words, 1-3 timetag bits) under the compiler's conflict-freedom
 * contract, including every firing pattern of a bounded fault budget
 * (mem.tag flips, mem.epoch flushes, net.drop retry/abort), and checks:
 *
 *   - no-stale-read: a read hit never returns a stale value unless an
 *     injected fault raised a tag (the documented oracle escape hatch);
 *   - bounded-tag-age + modular-agreement: the two-phase reset schedule
 *     keeps every consultable tag within one modular period, so n-bit
 *     hardware tag arithmetic never wraps into a false hit;
 *   - deadlock-freedom and the bounded-liveness verdict: exploration
 *     exhausts the space and every terminal state either completed the
 *     horizon or carries a structured protocol abort.
 *
 * A violation is emitted as the shortest action path and replayed
 * through the real TpiScheme (scripted faults at exact injection
 * opportunities) to confirm the implementation reproduces it. Clean
 * runs still cross-check a batch of pseudo-random full paths against
 * the implementation, outcome by outcome, so the model cannot silently
 * drift away from the code it abstracts.
 *
 *   hscd_mc                                  # 2p/2w/1-bit, no faults
 *   hscd_mc --faults 1 --sites mem,net.drop  # every 1-fault pattern
 *   hscd_mc --procs 3 --words 4 --bits 2 --json out.json
 *
 * Exit codes follow the verify::ExitCode contract: 0 clean exhaustive
 * verdict, 1 state-capped (not exhaustive), 2 usage error, 3 invariant
 * violation or model/implementation divergence, 5 harness error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/strutil.hh"
#include "fault/plan.hh"
#include "mc/explorer.hh"
#include "mc/replay.hh"
#include "obs/provenance.hh"
#include "verify/diagnostic.hh"

namespace {

using namespace hscd;

struct CliOptions
{
    mc::McConfig model;
    std::string sitesSpec = "all";
    bool symmetry = true;
    std::uint64_t maxStates = 8'000'000;
    std::uint64_t xcheck = 32;
    bool verbose = false;
    std::string jsonPath;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Exhaustively model-checks the TPI timetag protocol: explores\n"
        "every legal interleaving (and every fault firing pattern, when\n"
        "a budget is given) of a small machine, checks the no-stale-read\n"
        "and timetag-wraparound invariants, and cross-checks paths\n"
        "against the real TpiScheme via scripted trace replay.\n"
        "\n"
        "Options:\n"
        "  --procs N       processors, 2..3 (default 2)\n"
        "  --words N       shared words, 1..4 (default 2)\n"
        "  --line-words N  words per cache line (default 2)\n"
        "  --bits N        timetag bits, 1..3 (default 1)\n"
        "  --epochs N      explored horizon (default 2*2^bits+1)\n"
        "  --ops N         references per processor per epoch (default 2)\n"
        "  --faults N      injected-fault budget per run, 0..2 (default 0)\n"
        "  --sites SPEC    fault sites (mem, net.drop, mem.tag, all, ...)\n"
        "  --no-critical   skip lock-ordered (critical) writes\n"
        "  --no-promote    model tpiPromoteOnHit=false machines\n"
        "  --no-symmetry   disable processor symmetry reduction\n"
        "  --max-states N  abandon past N states (default 8000000)\n"
        "  --xcheck N      random full paths replayed on the real scheme\n"
        "                  (default 32; 0 disables)\n"
        "  --json PATH     write a machine-readable verdict to PATH\n"
        "  --verbose       print per-phase detail\n"
        "  --help          this text\n",
        argv0);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                std::exit(verify::ExitUsage);
            }
            return argv[++i];
        };
        auto number = [&](const char *flag) {
            const std::string v = value(flag);
            char *end = nullptr;
            double d = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || d < 0) {
                std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0],
                             flag, v.c_str());
                std::exit(verify::ExitUsage);
            }
            return d;
        };
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(verify::ExitSuccess);
        } else if (a == "--procs") {
            opt.model.procs = unsigned(number("--procs"));
        } else if (a == "--words") {
            opt.model.words = unsigned(number("--words"));
        } else if (a == "--line-words") {
            opt.model.lineWords = unsigned(number("--line-words"));
        } else if (a == "--bits") {
            opt.model.timetagBits = unsigned(number("--bits"));
        } else if (a == "--epochs") {
            opt.model.horizonEpochs = unsigned(number("--epochs"));
        } else if (a == "--ops") {
            opt.model.opsPerEpoch = unsigned(number("--ops"));
        } else if (a == "--faults") {
            opt.model.faultBudget = unsigned(number("--faults"));
        } else if (a == "--sites") {
            opt.sitesSpec = value("--sites");
            try {
                opt.model.faultSites =
                    fault::FaultPlan::parse("1:1:" + opt.sitesSpec).sites;
            } catch (const FatalError &) {
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--no-critical") {
            opt.model.allowCritical = false;
        } else if (a == "--no-promote") {
            opt.model.promote = false;
        } else if (a == "--no-symmetry") {
            opt.symmetry = false;
        } else if (a == "--max-states") {
            opt.maxStates = std::uint64_t(number("--max-states"));
        } else if (a == "--xcheck") {
            opt.xcheck = std::uint64_t(number("--xcheck"));
        } else if (a == "--json") {
            opt.jsonPath = value("--json");
        } else if (a == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        }
    }
    return opt;
}

struct XcheckTally
{
    std::uint64_t paths = 0;
    std::uint64_t outcomes = 0;
    bool ok = true;
    std::string detail;
};

void
writeJsonReport(const CliOptions &opt, const mc::ExploreResult &res,
                const XcheckTally &xc, const char *verdict,
                bool cexReplayOk)
{
    std::ofstream os(opt.jsonPath);
    if (!os) {
        warn("cannot write --json file '%s'", opt.jsonPath);
        return;
    }
    const mc::McConfig &m = opt.model;

    obs::Provenance prov;
    prov.schema = "hscd-mc";
    prov.tool = "mc";
    prov.configHash = obs::fnv1a(csprintf(
        "%s:sites=%s:sym=%d:cap=%d:xcheck=%d", m.str(), opt.sitesSpec,
        opt.symmetry ? 1 : 0, int(opt.maxStates), int(opt.xcheck)));
    prov.faultSpec = m.faultBudget == 0
                         ? "off"
                         : csprintf("budget=%d:sites=%s", m.faultBudget,
                                    opt.sitesSpec);

    os << "{\n  \"provenance\": " << prov.json(2) << ",\n";
    os << csprintf(
        "  \"config\": {\"procs\": %d, \"words\": %d, \"line_words\": %d,"
        " \"bits\": %d, \"epochs\": %d, \"ops\": %d, \"faults\": %d,"
        " \"sites\": \"%s\", \"critical\": %s, \"promote\": %s,"
        " \"symmetry\": %s},\n",
        m.procs, m.words, m.lineWords, m.timetagBits, m.horizon(),
        m.opsPerEpoch, m.faultBudget, obs::jsonEscape(opt.sitesSpec),
        m.allowCritical ? "true" : "false", m.promote ? "true" : "false",
        opt.symmetry ? "true" : "false");
    os << csprintf(
        "  \"results\": {\"states\": %d, \"transitions\": %d,"
        " \"depth\": %d, \"completed\": %d, \"aborted\": %d,"
        " \"xcheck_paths\": %d, \"xcheck_outcomes\": %d,"
        " \"verdict\": \"%s\"}",
        res.states, res.transitions, res.maxDepth, res.completed,
        res.aborted, xc.paths, xc.outcomes, verdict);
    if (res.cex) {
        os << csprintf(",\n  \"counterexample\": {\"invariant\": \"%s\","
                       " \"detail\": \"%s\", \"replay_ok\": %s,"
                       " \"steps\": [",
                       mc::invariantName(res.cex->invariant),
                       obs::jsonEscape(res.cex->detail),
                       cexReplayOk ? "true" : "false");
        for (std::size_t i = 0; i < res.cex->path.size(); ++i)
            os << csprintf("%s\"%s\"", i ? ", " : "",
                           obs::jsonEscape(res.cex->path[i].str()));
        os << "]}";
    }
    os << "\n}\n";
}

int
run(const CliOptions &opt)
{
    const mc::McConfig &m = opt.model;
    std::printf("mc: %s symmetry=%d\n", m.str().c_str(),
                opt.symmetry ? 1 : 0);

    mc::ExploreOptions eopt;
    eopt.symmetry = opt.symmetry;
    eopt.maxStates = opt.maxStates;
    mc::ExploreResult res = mc::explore(m, eopt);

    std::printf("mc: explored %llu states, %llu transitions, depth %llu\n",
                (unsigned long long)res.states,
                (unsigned long long)res.transitions,
                (unsigned long long)res.maxDepth);
    std::printf("mc: terminals: %llu completed, %llu aborted\n",
                (unsigned long long)res.completed,
                (unsigned long long)res.aborted);

    bool cexReplayOk = false;
    XcheckTally xc;
    const char *verdict = "clean";

    if (res.cex) {
        verdict = "counterexample";
        std::printf("mc: %s", res.cex->str().c_str());
        // A counterexample is only real if the implementation walks the
        // same path to the same outcomes; divergence means the model is
        // wrong, which is its own finding.
        mc::CheckReport rep = mc::crossCheck(m, res.cex->path);
        cexReplayOk = rep.ok;
        if (rep.ok) {
            std::printf("mc: counterexample replays identically on "
                        "TpiScheme (%llu outcomes)\n",
                        (unsigned long long)rep.compared);
        } else {
            std::printf("mc: counterexample does NOT replay on "
                        "TpiScheme: %s\n", rep.detail.c_str());
        }
    } else if (res.hitStateCap) {
        verdict = "bounded";
        std::printf("mc: state cap %llu reached - verdict is bounded, "
                    "not exhaustive\n",
                    (unsigned long long)opt.maxStates);
    } else {
        for (std::uint64_t i = 0; i < opt.xcheck; ++i) {
            std::vector<mc::Action> path = mc::randomWalk(m, i + 1);
            mc::CheckReport rep = mc::crossCheck(m, path);
            ++xc.paths;
            xc.outcomes += rep.compared;
            if (!rep.ok) {
                xc.ok = false;
                xc.detail = rep.detail;
                verdict = "divergence";
                std::printf("mc: model/implementation divergence on "
                            "path %llu: %s\n", (unsigned long long)(i + 1),
                            rep.detail.c_str());
                if (opt.verbose) {
                    for (const mc::Action &a : path)
                        std::printf("    %s\n", a.str().c_str());
                }
                break;
            }
        }
        if (xc.ok && xc.paths > 0)
            std::printf("mc: cross-check: %llu/%llu paths agree with "
                        "TpiScheme (%llu outcomes)\n",
                        (unsigned long long)xc.paths,
                        (unsigned long long)xc.paths,
                        (unsigned long long)xc.outcomes);
    }

    std::printf("mc: verdict %s\n", verdict);
    if (!opt.jsonPath.empty())
        writeJsonReport(opt, res, xc, verdict, cexReplayOk);

    if (res.cex || !xc.ok)
        return verify::ExitViolation;
    if (res.hitStateCap)
        return verify::ExitDiagnostics;
    return verify::ExitSuccess;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt = parseArgs(argc, argv);
    try {
        opt.model.validate();
    } catch (const FatalError &) {
        return verify::ExitUsage;
    }
    try {
        return run(opt);
    } catch (const FatalError &) {
        return verify::ExitInternal;
    }
}
