/**
 * @file
 * hscd_lint: run the coherence soundness verifier over programs.
 *
 * Lints any mix of the six Perfect-Club-like workloads and seeded
 * random programs (`gen:<seed>`) through the full pass pipeline: HIR
 * well-formedness lints, epoch-graph structural lints, and the
 * stale-marking soundness oracle.
 *
 *   hscd_lint                      # all six workloads, text output
 *   hscd_lint --werror ocean qcd2  # two workloads, warnings are fatal
 *   hscd_lint --json gen:42        # one generated program, JSON
 *
 * Exit code: 0 clean, 1 errors (or warnings under --werror), 2 on a
 * usage error, per the verify::ExitCode contract. Output is rendered in
 * input order after all programs are linted, so it is byte-identical at
 * any --jobs.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/strutil.hh"
#include "compiler/analysis.hh"
#include "obs/provenance.hh"
#include "program_gen.hh"
#include "verify/verify.hh"
#include "workloads/workloads.hh"

namespace {

using namespace hscd;

struct CliOptions
{
    bool json = false;
    bool werror = false;
    bool listOnly = false;
    unsigned jobs = 1;
    int scale = 1;
    verify::LintOptions lint;
    std::vector<std::string> targets;
};

bool
strcaseeq(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

void
usage(const char *argv0)
{
    std::string names;
    for (const std::string &n : workloads::benchmarkNames())
        names += (names.empty() ? "" : "|") + n;
    std::printf(
        "usage: %s [options] [target...]\n"
        "\n"
        "Targets: any of the six workloads (%s),\n"
        "         gen:<seed> for a random legal-DOALL program, or\n"
        "         'all' for all six workloads (also the default).\n"
        "\n"
        "Options:\n"
        "  --json             render diagnostics as JSON\n"
        "  --werror           warnings also produce exit code 1\n"
        "  --jobs=N           lint N programs concurrently (default 1)\n"
        "  --scale=N          workload problem scale (default 1)\n"
        "  --timetag-bits=N   timetag width checked by GRAPH002/oracle\n"
        "  --no-oracle        skip the stale-marking soundness oracle\n"
        "  --list             list targets and exit\n"
        "  --help             this text\n",
        argv0, names.c_str());
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const std::string &prefix) {
            return a.substr(prefix.size());
        };
        if (a == "--json") {
            opt.json = true;
        } else if (a == "--werror") {
            opt.werror = true;
        } else if (a == "--list") {
            opt.listOnly = true;
        } else if (a == "--no-oracle") {
            opt.lint.runOracle = false;
        } else if (a.rfind("--jobs=", 0) == 0) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(value("--jobs=").c_str(), nullptr, 10));
            if (opt.jobs == 0)
                opt.jobs = 1;
        } else if (a.rfind("--scale=", 0) == 0) {
            opt.scale = std::atoi(value("--scale=").c_str());
        } else if (a.rfind("--timetag-bits=", 0) == 0) {
            opt.lint.timetagBits = static_cast<unsigned>(
                std::atoi(value("--timetag-bits=").c_str()));
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        } else if (a == "all") {
            for (const std::string &n : workloads::benchmarkNames())
                opt.targets.push_back(n);
        } else {
            opt.targets.push_back(a);
        }
    }
    if (opt.targets.empty())
        opt.targets = workloads::benchmarkNames();
    for (const std::string &t : opt.targets) {
        if (t.rfind("gen:", 0) == 0)
            continue;
        bool known = false;
        for (const std::string &n : workloads::benchmarkNames())
            if (strcaseeq(t, n))
                known = true;
        if (!known) {
            std::fprintf(stderr, "%s: unknown target '%s'\n", argv[0],
                         t.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        }
    }
    return opt;
}

hir::Program
buildTarget(const std::string &name, int scale)
{
    if (name.rfind("gen:", 0) == 0) {
        testgen::GenOptions g;
        g.seed = std::strtoull(name.substr(4).c_str(), nullptr, 10);
        return testgen::randomLegalProgram(g);
    }
    return workloads::buildBenchmark(name, scale);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt = parseArgs(argc, argv);

    if (opt.listOnly) {
        for (const std::string &t : opt.targets)
            std::printf("%s\n", t.c_str());
        return 0;
    }

    compiler::AnalysisOptions aopts;
    aopts.timetagBits = opt.lint.timetagBits;

    // Lint in parallel, render strictly in input order: the output is
    // byte-identical at any --jobs (same contract as the sweep engine).
    std::vector<verify::DiagnosticEngine> results = parallelMap(
        opt.jobs, opt.targets.size(), [&](std::size_t i) {
            compiler::CompiledProgram cp = compiler::compileProgram(
                buildTarget(opt.targets[i], opt.scale), aopts);
            return verify::lintProgram(cp, opt.targets[i], opt.lint);
        });

    if (opt.json) {
        // Provenance header object first, then one diagnostics object
        // per target (same contract as the sweep/metrics artifacts).
        obs::Provenance prov;
        prov.schema = "hscd-lint";
        prov.tool = "lint";
        std::string key = csprintf("scale=%d:timetag=%d:oracle=%d",
                                   opt.scale, int(opt.lint.timetagBits),
                                   int(opt.lint.runOracle));
        for (const std::string &t : opt.targets)
            key += ":" + t;
        prov.configHash = obs::fnv1a(key);
        prov.jobs = opt.jobs;
        std::printf("{\"provenance\": %s}\n", prov.json(0).c_str());
    }

    int exit_code = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const verify::DiagnosticEngine &d = results[i];
        if (opt.json) {
            std::fputs(d.renderJson().c_str(), stdout);
            std::fputc('\n', stdout);
        } else {
            std::fputs(d.renderText().c_str(), stdout);
        }
        exit_code = std::max(exit_code, d.exitCode(opt.werror));
    }
    return exit_code;
}
