/**
 * @file
 * hscd_lint: run the coherence soundness verifier over programs.
 *
 * Lints any mix of the six Perfect-Club-like workloads and seeded
 * random programs (`gen:<seed>`) through the full pass pipeline: HIR
 * well-formedness lints, epoch-graph structural lints, the
 * stale-marking soundness oracle, and the marking-precision analyses.
 *
 *   hscd_lint                      # all six workloads, text output
 *   hscd_lint --werror ocean qcd2  # two workloads, warnings are fatal
 *   hscd_lint --json gen:42        # one generated program, JSON
 *   hscd_lint --sarif=out.sarif    # also write a SARIF 2.1.0 log
 *   hscd_lint --tighten trfd       # rewrite proven-over-conservative
 *                                  # marks, re-verify, and report the
 *                                  # TPI CONSERVATIVE-miss delta
 *   hscd_lint --catalog            # print docs/DIAGNOSTICS.md content
 *
 * Exit code: 0 clean, 1 errors (or warnings under --werror), 2 on a
 * usage error, 3 when a post-tighten runtime check flags a violation,
 * per the verify::ExitCode contract. Output is rendered in input order
 * after all programs are linted, so both stdout and the SARIF file are
 * byte-identical at any --jobs.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/strutil.hh"
#include "compiler/analysis.hh"
#include "mem/machine_config.hh"
#include "obs/provenance.hh"
#include "program_gen.hh"
#include "sim/machine.hh"
#include "verify/catalog.hh"
#include "verify/precision.hh"
#include "verify/sarif.hh"
#include "verify/verify.hh"
#include "workloads/synth.hh"
#include "workloads/trace.hh"
#include "workloads/workloads.hh"

namespace {

using namespace hscd;

struct CliOptions
{
    bool json = false;
    bool werror = false;
    bool listOnly = false;
    bool catalog = false;
    bool tighten = false;
    bool symbolic = false;
    bool conservative = false;
    unsigned maxDistance = 255;       ///< compiler distance budget
    std::string sarifPath;
    unsigned jobs = 1;
    int scale = 1;
    verify::LintOptions lint;
    std::vector<std::string> targets;
};

/** Everything one target produces (rendered later, in input order). */
struct TargetResult
{
    verify::DiagnosticEngine diags{""};
    // trace:<file> targets are parse-validated and summarized instead
    // of linted (a trace has no HIR to lint); non-empty when used.
    std::string traceNote;
    // --tighten extras:
    bool tightenRan = false;
    bool tightenRefused = false;       ///< pre-tighten lint failed
    std::size_t rewrites = 0;
    verify::DiagnosticEngine post{""}; ///< re-lint after the rewrite
    std::uint64_t missBefore = 0;
    std::uint64_t missAfter = 0;
    std::uint64_t violations = 0;      ///< oracle+shadow+doall, after
};

bool
strcaseeq(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

void
usage(const char *argv0)
{
    std::string names;
    for (const std::string &n : workloads::benchmarkNames())
        names += (names.empty() ? "" : "|") + n;
    std::printf(
        "usage: %s [options] [target...]\n"
        "\n"
        "Targets: any of the six workloads (%s),\n"
        "         gen:<seed> for a random legal-DOALL program,\n"
        "         synth:<family>:<seed> for a synthetic workload\n"
        "         (families: falseshare, migratory, prodcons, reuse,\n"
        "         stencil, streaming),\n"
        "         trace:<file> to strictly parse-validate an external\n"
        "         memory trace (exit 2 on malformed input), or\n"
        "         'all' for all six workloads (also the default).\n"
        "\n"
        "Options:\n"
        "  --json             render diagnostics as JSON\n"
        "  --sarif=FILE       also write a SARIF 2.1.0 log to FILE\n"
        "  --werror           warnings also produce exit code 1\n"
        "  --tighten          rewrite proven-over-conservative marks\n"
        "                     (MARK001), re-lint, and re-simulate TPI\n"
        "                     with the runtime checkers on\n"
        "  --symbolic         mark against declared parameter ranges\n"
        "                     (separate-compilation style) instead of\n"
        "                     the bound problem size\n"
        "  --conservative     compile a migration-safe marking (no\n"
        "                     serial-processor-affinity reasoning); the\n"
        "                     verified machine still pins serial epochs,\n"
        "                     so --tighten can win the precision back\n"
        "  --max-distance=N   compiler Time-Read distance budget (an\n"
        "                     operand-width limit; default 255). The\n"
        "                     oracle still verifies against the full\n"
        "                     timetag window, so a small budget is what\n"
        "                     --tighten provably relaxes\n"
        "  --catalog          print the diagnostic catalog markdown\n"
        "  --jobs=N           lint N programs concurrently (default 1)\n"
        "  --scale=N          workload problem scale (default 1)\n"
        "  --timetag-bits=N   timetag width checked by GRAPH002/oracle\n"
        "  --no-oracle        skip the oracle and the MARK/GRAPH004\n"
        "                     passes that build on it\n"
        "  --list             list targets and exit\n"
        "  --help             this text\n",
        argv0, names.c_str());
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const std::string &prefix) {
            return a.substr(prefix.size());
        };
        if (a == "--json") {
            opt.json = true;
        } else if (a == "--werror") {
            opt.werror = true;
        } else if (a == "--list") {
            opt.listOnly = true;
        } else if (a == "--catalog") {
            opt.catalog = true;
        } else if (a == "--tighten") {
            opt.tighten = true;
        } else if (a == "--symbolic") {
            opt.symbolic = true;
        } else if (a == "--conservative") {
            opt.conservative = true;
        } else if (a.rfind("--max-distance=", 0) == 0) {
            opt.maxDistance = static_cast<unsigned>(
                std::atoi(value("--max-distance=").c_str()));
        } else if (a.rfind("--sarif=", 0) == 0) {
            opt.sarifPath = value("--sarif=");
        } else if (a == "--no-oracle") {
            opt.lint.runOracle = false;
        } else if (a.rfind("--jobs=", 0) == 0) {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(value("--jobs=").c_str(), nullptr, 10));
            if (opt.jobs == 0)
                opt.jobs = 1;
        } else if (a.rfind("--scale=", 0) == 0) {
            opt.scale = std::atoi(value("--scale=").c_str());
        } else if (a.rfind("--timetag-bits=", 0) == 0) {
            opt.lint.timetagBits = static_cast<unsigned>(
                std::atoi(value("--timetag-bits=").c_str()));
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        } else if (a == "all") {
            for (const std::string &n : workloads::benchmarkNames())
                opt.targets.push_back(n);
        } else {
            opt.targets.push_back(a);
        }
    }
    if (opt.tighten && !opt.lint.runOracle) {
        std::fprintf(stderr,
                     "--tighten needs the oracle (drop --no-oracle)\n");
        std::exit(verify::ExitUsage);
    }
    if (opt.targets.empty())
        opt.targets = workloads::benchmarkNames();
    for (const std::string &t : opt.targets) {
        if (t.rfind("gen:", 0) == 0)
            continue;
        if (workloads::isSynthSpec(t)) {
            try {
                workloads::parseSynthSpec(t);
            } catch (const FatalError &) {
                // fatal() already emitted the reason.
                std::exit(verify::ExitUsage);
            }
            continue;
        }
        if (workloads::isTraceSpec(t)) {
            try {
                workloads::traceSpecPath(t);
            } catch (const FatalError &) {
                std::exit(verify::ExitUsage);
            }
            continue;
        }
        bool known = false;
        for (const std::string &n : workloads::benchmarkNames())
            if (strcaseeq(t, n))
                known = true;
        if (!known) {
            std::fprintf(stderr, "%s: unknown target '%s'\n", argv[0],
                         t.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        }
    }
    return opt;
}

hir::Program
buildTarget(const std::string &name, int scale)
{
    if (name.rfind("gen:", 0) == 0) {
        testgen::GenOptions g;
        g.seed = std::strtoull(name.substr(4).c_str(), nullptr, 10);
        return testgen::randomLegalProgram(g);
    }
    return workloads::buildBenchmark(name, scale);
}

/** TPI machine matching the lint's timetag width, checkers armed. */
MachineConfig
tightenConfig(const CliOptions &opt)
{
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.timetagBits = opt.lint.timetagBits;
    cfg.shadowEpochCheck = true;
    return cfg;
}

TargetResult
lintOne(const CliOptions &opt, const std::string &target)
{
    if (workloads::isTraceSpec(target)) {
        // Strict parse (fatal -> exit 2 in main); summarize on success.
        const workloads::TraceWorkload t =
            workloads::loadTraceSpec(target);
        TargetResult r;
        r.traceNote = csprintf(
            "trace[%s]: parse ok: procs=%d reads=%d writes=%d "
            "epochs=%d footprint=%d bytes\n",
            t.source, t.procs, t.reads, t.writes, t.epochs,
            t.dataBytes);
        return r;
    }
    compiler::AnalysisOptions aopts;
    aopts.timetagBits = opt.lint.timetagBits;
    aopts.symbolicParams = opt.symbolic;
    aopts.assumeSerialAffinity = !opt.conservative;
    aopts.maxDistance = opt.maxDistance;

    TargetResult r;
    compiler::CompiledProgram cp = compiler::compileProgram(
        buildTarget(target, opt.scale), aopts);
    r.diags = verify::lintProgram(cp, target, opt.lint);
    if (!opt.tighten)
        return r;

    // Tighten only a program the verifier accepts: rewriting marks on
    // top of real errors would launder them into "tightened" output.
    if (r.diags.failed(opt.werror)) {
        r.tightenRefused = true;
        return r;
    }
    r.tightenRan = true;

    const MachineConfig cfg = tightenConfig(opt);
    const sim::RunResult before = sim::simulate(cp, cfg);
    r.missBefore = before.missConservative;

    verify::AnalysisCache cache;
    const verify::OracleReport &oracle = cache.oracle(cp, opt.lint);
    const verify::PrecisionReport prep =
        verify::precisionAnalyze(cp, opt.lint, oracle);
    verify::tightenMarking(cp, prep);
    r.rewrites = prep.overConservative.size();

    // Re-verify the rewritten marking end to end: the static oracle
    // must stay clean and the runtime checkers must stay silent.
    r.post = verify::lintProgram(cp, target + ":tightened", opt.lint);
    const sim::RunResult after = sim::simulate(cp, cfg);
    r.missAfter = after.missConservative;
    r.violations = after.oracleViolations + after.shadowViolations +
                   after.doallViolations;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt = parseArgs(argc, argv);

    if (opt.catalog) {
        std::fputs(verify::catalogMarkdown().c_str(), stdout);
        return 0;
    }
    if (opt.listOnly) {
        for (const std::string &t : opt.targets)
            std::printf("%s\n", t.c_str());
        return 0;
    }

    // Lint in parallel, render strictly in input order: the output is
    // byte-identical at any --jobs (same contract as the sweep engine).
    std::vector<TargetResult> results;
    try {
        results = parallelMap(
            opt.jobs, opt.targets.size(),
            [&](std::size_t i) { return lintOne(opt, opt.targets[i]); });
    } catch (const FatalError &) {
        // User error (bad trace file, malformed spec); the reason was
        // already emitted by fatal().
        return verify::ExitUsage;
    }

    obs::Provenance prov;
    prov.schema = "hscd-lint";
    prov.tool = "lint";
    std::string key = csprintf(
        "scale=%d:timetag=%d:oracle=%d:tighten=%d:symbolic=%d:"
        "conservative=%d:maxdist=%d",
        opt.scale, int(opt.lint.timetagBits), int(opt.lint.runOracle),
        int(opt.tighten), int(opt.symbolic), int(opt.conservative),
        int(opt.maxDistance));
    for (const std::string &t : opt.targets)
        key += ":" + t;
    prov.configHash = obs::fnv1a(key);
    prov.jobs = opt.jobs;

    if (opt.json) {
        // Provenance header object first, then one diagnostics object
        // per target (same contract as the sweep/metrics artifacts).
        std::printf("{\"provenance\": %s}\n", prov.json(0).c_str());
    }

    int exit_code = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const TargetResult &r = results[i];
        if (!r.traceNote.empty()) {
            std::fputs(r.traceNote.c_str(), stdout);
            continue;
        }
        if (opt.json) {
            std::fputs(r.diags.renderJson().c_str(), stdout);
            std::fputc('\n', stdout);
        } else {
            std::fputs(r.diags.renderText().c_str(), stdout);
        }
        exit_code = std::max(exit_code, r.diags.exitCode(opt.werror));

        if (opt.tighten && r.tightenRefused) {
            std::printf("tighten[%s]: refused (lint failed)\n",
                        opt.targets[i].c_str());
        } else if (opt.tighten && r.tightenRan) {
            if (!opt.json)
                std::fputs(r.post.renderText().c_str(), stdout);
            std::printf(
                "tighten[%s]: rewrites=%zu conservative-misses "
                "%llu -> %llu violations=%llu\n",
                opt.targets[i].c_str(), r.rewrites,
                static_cast<unsigned long long>(r.missBefore),
                static_cast<unsigned long long>(r.missAfter),
                static_cast<unsigned long long>(r.violations));
            // A violation or a post-tighten lint error means the
            // rewrite broke soundness: flag it, never report success.
            if (r.violations > 0 || r.post.errors() > 0)
                exit_code =
                    std::max(exit_code, int(verify::ExitViolation));
        }
    }

    if (!opt.sarifPath.empty()) {
        std::vector<verify::DiagnosticEngine> engines;
        engines.reserve(results.size());
        for (TargetResult &r : results)
            engines.push_back(std::move(r.diags));
        const std::string sarif = verify::renderSarif(engines, prov);
        std::FILE *f = std::fopen(opt.sarifPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         opt.sarifPath.c_str());
            return verify::ExitInternal;
        }
        std::fputs(sarif.c_str(), f);
        std::fclose(f);
    }
    return exit_code;
}
