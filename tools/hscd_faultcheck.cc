/**
 * @file
 * hscd_faultcheck: fault-injection campaign driver.
 *
 * Fans a corpus of fault seeds across the coherence schemes and asserts
 * the robustness contract end to end: every faulted run must either
 *
 *   - complete clean (faults absorbed: retransmissions, NACK repairs,
 *     epoch resyncs) and execute exactly the same work as the
 *     fault-free reference run (tasks, epochs, reads, writes), or
 *   - stop itself with a structured abort (protocol retry exhaustion,
 *     watchdog, deadlock), or
 *   - be flagged by the soundness oracles (value-stamp, shadow-epoch,
 *     DOALL race) when an injected corruption reached architectural
 *     state.
 *
 * What is never acceptable is a *silent* corruption: a run that
 * completes unflagged but did different work than the reference. The
 * campaign counts exactly that and fails (exit 3) if it ever happens.
 *
 *   hscd_faultcheck                         # 100 seeds, all schemes
 *   hscd_faultcheck --rates 1e-4,1e-3,0.01  # fault-rate sweep table
 *   hscd_faultcheck --seeds 500 --sites net --jobs 16
 *
 * Exit codes follow the verify::ExitCode contract: 0 clean campaign,
 * 2 usage error, 3 silent corruption detected, 5 harness error.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/strutil.hh"
#include "fault/plan.hh"
#include "obs/provenance.hh"
#include "program_gen.hh"
#include "serve/json.hh"
#include "serve/net.hh"
#include "serve/protocol.hh"
#include "sim/machine.hh"
#include "verify/diagnostic.hh"
#include "workloads/synth.hh"
#include "workloads/trace.hh"
#include "workloads/workloads.hh"

namespace {

using namespace hscd;

struct CliOptions
{
    std::vector<double> rates = {1e-4, 1e-3, 1e-2};
    std::uint64_t seeds = 100;
    std::uint64_t seedBase = 1;
    unsigned sites = fault::kSitesAll;
    std::string sitesSpec = "all";
    unsigned jobs = 0;
    int scale = 1;
    std::vector<SchemeKind> schemes = {SchemeKind::Base, SchemeKind::SC,
                                       SchemeKind::TPI, SchemeKind::HW,
                                       SchemeKind::VC};
    bool verbose = false;
    std::string jsonPath;
    /** Workload specs to fan across; empty = the six benchmarks. */
    std::vector<std::string> workloadSpecs;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Runs a fault-injection campaign: `seeds` fault seeds per\n"
        "(rate x scheme), each seed picking one of the six workloads,\n"
        "and verifies that no run is ever silently wrong - every fault\n"
        "is either recovered, aborted, or flagged by the oracles.\n"
        "\n"
        "Options:\n"
        "  --seeds N        fault seeds per (rate x scheme) (default 100)\n"
        "  --seed-base N    first fault seed (default 1)\n"
        "  --rates R,R,...  fault rates to sweep (default 1e-4,1e-3,1e-2)\n"
        "  --sites LIST     site mask: all|net|mem|dir or site names\n"
        "                   (default all)\n"
        "  --schemes L,L    schemes to fan across (default all five)\n"
        "  --workloads L,L  workload specs the seeds rotate over:\n"
        "                   benchmark names, gen:<seed>,\n"
        "                   synth:<family>:<seed>, or trace:<file>\n"
        "                   (default: the six benchmarks)\n"
        "  --scale N        workload problem scale (default 1)\n"
        "  --jobs N         run cells on N threads (default: all)\n"
        "  --json PATH      write the campaign table as JSON (with a\n"
        "                   provenance header) to PATH\n"
        "  --verbose        print each non-clean run\n"
        "  --help           this text\n",
        argv0);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                std::exit(verify::ExitUsage);
            }
            return argv[++i];
        };
        auto number = [&](const char *flag) {
            const std::string v = value(flag);
            char *end = nullptr;
            double d = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0') {
                std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0],
                             flag, v.c_str());
                std::exit(verify::ExitUsage);
            }
            return d;
        };
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(verify::ExitSuccess);
        } else if (a == "--seeds") {
            opt.seeds = static_cast<std::uint64_t>(number("--seeds"));
        } else if (a == "--seed-base") {
            opt.seedBase =
                static_cast<std::uint64_t>(number("--seed-base"));
        } else if (a == "--scale") {
            opt.scale = static_cast<int>(number("--scale"));
        } else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(number("--jobs"));
        } else if (a == "--verbose") {
            opt.verbose = true;
        } else if (a == "--json") {
            opt.jsonPath = value("--json");
        } else if (a == "--rates") {
            opt.rates.clear();
            std::string v = value("--rates");
            std::size_t pos = 0;
            while (pos <= v.size()) {
                std::size_t comma = v.find(',', pos);
                if (comma == std::string::npos)
                    comma = v.size();
                const std::string tok = v.substr(pos, comma - pos);
                char *end = nullptr;
                double r = std::strtod(tok.c_str(), &end);
                if (end == tok.c_str() || *end != '\0' || r < 0 ||
                    r > 1) {
                    std::fprintf(stderr, "%s: bad rate '%s'\n", argv[0],
                                 tok.c_str());
                    std::exit(verify::ExitUsage);
                }
                opt.rates.push_back(r);
                pos = comma + 1;
            }
            if (opt.rates.empty()) {
                std::fprintf(stderr, "%s: --rates needs at least one\n",
                             argv[0]);
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--sites") {
            opt.sitesSpec = value("--sites");
            try {
                // Reuse the plan grammar: rate/seed are dummies here.
                opt.sites =
                    fault::FaultPlan::parse("1:1:" + opt.sitesSpec).sites;
            } catch (const FatalError &) {
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--workloads") {
            opt.workloadSpecs.clear();
            std::string v = value("--workloads");
            for (const std::string &tok : split(v, ',')) {
                const std::string t = trim(tok);
                bool ok = t.rfind("gen:", 0) == 0 ||
                          workloads::isTraceSpec(t);
                if (workloads::isSynthSpec(t)) {
                    try {
                        workloads::parseSynthSpec(t);
                        ok = true;
                    } catch (const FatalError &) {
                        std::exit(verify::ExitUsage);
                    }
                }
                for (const std::string &n : workloads::benchmarkNames())
                    if (toLower(t) == toLower(n))
                        ok = true;
                if (!ok) {
                    std::fprintf(stderr,
                                 "%s: unknown workload spec '%s'\n",
                                 argv[0], t.c_str());
                    std::exit(verify::ExitUsage);
                }
                opt.workloadSpecs.push_back(t);
            }
            if (opt.workloadSpecs.empty()) {
                std::fprintf(stderr,
                             "%s: --workloads needs at least one\n",
                             argv[0]);
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--schemes") {
            opt.schemes.clear();
            std::string v = value("--schemes");
            std::size_t pos = 0;
            while (pos <= v.size()) {
                std::size_t comma = v.find(',', pos);
                if (comma == std::string::npos)
                    comma = v.size();
                try {
                    opt.schemes.push_back(
                        parseScheme(v.substr(pos, comma - pos)));
                } catch (const FatalError &) {
                    std::exit(verify::ExitUsage);
                }
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        }
    }
    return opt;
}

/** One faulted run and how it ended. */
enum class Verdict
{
    Clean,     ///< completed, no faults actually injected
    Recovered, ///< completed, injected faults all absorbed
    Aborted,   ///< structured abort (detected)
    Flagged,   ///< oracle/shadow/race violation (detected)
    Silent,    ///< completed unflagged but did different work - BAD
    Internal,  ///< harness exception - BAD
};

struct CellOut
{
    Verdict verdict = Verdict::Internal;
    sim::RunResult run;
    std::string error;
};

struct TableRow
{
    std::uint64_t runs = 0, clean = 0, recovered = 0, aborted = 0,
                  flagged = 0, silent = 0, internal = 0;
    std::uint64_t injected = 0, retries = 0;
};

std::string
rowJson(const TableRow &t)
{
    return csprintf(
        "{\"runs\": %d, \"clean\": %d, \"recovered\": %d, "
        "\"aborted\": %d, \"flagged\": %d, \"silent\": %d, "
        "\"internal\": %d, \"injected\": %d, \"retries\": %d}",
        int(t.runs), int(t.clean), int(t.recovered), int(t.aborted),
        int(t.flagged), int(t.silent), int(t.internal), int(t.injected),
        int(t.retries));
}

/**
 * Machine-readable campaign report: a provenance header (config hash
 * over everything that shapes the corpus), the campaign parameters, one
 * row per (rate x scheme), totals, and the verdict. Deterministic at
 * any --jobs except the provenance "jobs" field itself.
 */
void
writeJsonReport(const CliOptions &opt,
                const std::map<std::pair<double, int>, TableRow> &rows,
                const TableRow &total, const char *verdict)
{
    std::ofstream os(opt.jsonPath);
    if (!os) {
        warn("cannot write --json file '%s'", opt.jsonPath);
        return;
    }
    std::string rates, schemes;
    for (double r : opt.rates)
        rates += csprintf("%s%.9g", rates.empty() ? "" : ",", r);
    for (SchemeKind k : opt.schemes)
        schemes += csprintf("%s%s", schemes.empty() ? "" : ",",
                            schemeName(k));

    obs::Provenance prov;
    prov.schema = "hscd-faultcheck";
    prov.tool = "faultcheck";
    prov.configHash = obs::fnv1a(csprintf(
        "rates=%s:seeds=%d:base=%d:sites=%s:schemes=%s:scale=%d", rates,
        int(opt.seeds), int(opt.seedBase), opt.sitesSpec, schemes,
        opt.scale));
    prov.faultSpec = csprintf("rates=%s:sites=%s", rates, opt.sitesSpec);
    prov.jobs = opt.jobs;

    os << "{\n  \"provenance\": " << prov.json(2) << ",\n";
    os << csprintf("  \"seeds\": %d,\n  \"seed_base\": %d,\n"
                   "  \"scale\": %d,\n  \"sites\": \"%s\",\n",
                   int(opt.seeds), int(opt.seedBase), opt.scale,
                   obs::jsonEscape(opt.sitesSpec).c_str());
    os << "  \"rows\": [\n";
    bool first = true;
    for (double rate : opt.rates) {
        for (SchemeKind k : opt.schemes) {
            auto it = rows.find({rate, static_cast<int>(k)});
            if (it == rows.end())
                continue;
            os << csprintf("%s    {\"rate\": %.9g, \"scheme\": \"%s\", "
                           "\"row\": %s}",
                           first ? "" : ",\n", rate, schemeName(k),
                           rowJson(it->second).c_str());
            first = false;
        }
    }
    os << "\n  ],\n";
    os << "  \"total\": " << rowJson(total) << ",\n";
    os << csprintf("  \"verdict\": \"%s\"\n}\n", verdict);
}

// --- --server: the kill -9 chaos harness for hscd_serve ---------------
//
// Proves the durable-queue contract end to end: a campaign whose server
// is SIGKILLed and restarted repeatedly must produce an aggregate
// byte-identical (modulo the provenance "jobs" field) to an
// uninterrupted run's, with zero silent corruptions, and submissions
// past the admission bound must come back as structured shed errors.

namespace chaos {

struct ChaosOptions
{
    std::string serverBin; ///< default: <dir of argv[0]>/hscd_serve
    std::string stateRoot; ///< default: mkdtemp under TMPDIR
    std::size_t cells = 500;
    unsigned kills = 5;
    unsigned jobs = 2;
    int scale = 1;
    std::string faultSpec; ///< optional fault axis for the campaign
    std::vector<std::string> workloads; ///< cell specs to rotate over
    std::vector<std::string> schemes = {"sc", "tpi", "hw"};
    bool keep = false; ///< keep the state root (debugging)
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s --server [options]\n"
        "\n"
        "Chaos-tests the resident campaign server: runs one campaign\n"
        "to completion on an untouched server (the reference), then\n"
        "re-runs it while SIGKILLing and restarting the server\n"
        "mid-campaign, and requires the recovered aggregate to be\n"
        "byte-identical. Also checks that over-bound submissions are\n"
        "shed as structured errors, never dropped silently.\n"
        "\n"
        "Options:\n"
        "  --server-bin PATH  hscd_serve binary (default: next to %s)\n"
        "  --state-dir DIR    working root (default: a fresh tempdir,\n"
        "                     removed on success, kept on failure)\n"
        "  --cells N          campaign size (default 500)\n"
        "  --kills N          SIGKILL/restart cycles (default 5)\n"
        "  --jobs N           server worker threads (default 2)\n"
        "  --scale N          workload problem scale (default 1)\n"
        "  --fault SPEC       fault plan for the campaign (default off)\n"
        "  --workloads L,L    cell specs to rotate over (benchmarks,\n"
        "                     synth:<f>:<s>, trace:<file>; default: the\n"
        "                     six benchmarks plus two synth families)\n"
        "  --schemes L,L      schemes to rotate over (default sc,tpi,hw)\n"
        "  --keep             keep the state root even on success\n"
        "\n"
        "Exit: 0 clean, 2 usage, 3 corruption/contract violation,\n"
        "5 harness error.\n",
        argv0, argv0);
}

ChaosOptions
parseChaosArgs(int argc, char **argv)
{
    ChaosOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                std::exit(verify::ExitUsage);
            }
            return argv[++i];
        };
        auto number = [&](const char *flag) {
            const std::string v = value(flag);
            char *end = nullptr;
            double d = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || d < 0) {
                std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0],
                             flag, v.c_str());
                std::exit(verify::ExitUsage);
            }
            return d;
        };
        if (a == "--server") {
            // mode marker, already consumed by main()
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(verify::ExitSuccess);
        } else if (a == "--server-bin") {
            opt.serverBin = value("--server-bin");
        } else if (a == "--state-dir") {
            opt.stateRoot = value("--state-dir");
        } else if (a == "--cells") {
            opt.cells = static_cast<std::size_t>(number("--cells"));
        } else if (a == "--kills") {
            opt.kills = static_cast<unsigned>(number("--kills"));
        } else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(number("--jobs"));
        } else if (a == "--scale") {
            opt.scale = static_cast<int>(number("--scale"));
        } else if (a == "--fault") {
            opt.faultSpec = value("--fault");
        } else if (a == "--workloads") {
            for (const std::string &tok : split(value("--workloads"), ','))
                opt.workloads.push_back(trim(tok));
        } else if (a == "--schemes") {
            opt.schemes.clear();
            for (const std::string &tok : split(value("--schemes"), ','))
                opt.schemes.push_back(trim(tok));
        } else if (a == "--keep") {
            opt.keep = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        }
    }
    if (opt.serverBin.empty()) {
        std::string self = argv[0];
        const std::size_t slash = self.rfind('/');
        opt.serverBin = (slash == std::string::npos
                             ? std::string(".")
                             : self.substr(0, slash)) +
                        "/hscd_serve";
    }
    if (opt.workloads.empty())
        opt.workloads = {"adm",  "flo52",  "ocean",
                         "qcd2", "spec77", "trfd",
                         "synth:stencil:3", "synth:migratory:7"};
    if (opt.cells == 0 || opt.kills == 0 || opt.schemes.empty()) {
        std::fprintf(stderr, "%s: --cells, --kills and --schemes must "
                             "be non-zero\n", argv[0]);
        std::exit(verify::ExitUsage);
    }
    return opt;
}

/** A running hscd_serve child plus the client channel to it. */
class ServerHandle
{
  public:
    ~ServerHandle() { stop(SIGKILL); }

    /** fork/exec the server; stdout+stderr append to server.log. */
    bool spawn(const ChaosOptions &opt, const std::string &stateDir,
               const std::vector<std::string> &extraArgs = {})
    {
        _stateDir = stateDir;
        std::vector<std::string> args = {opt.serverBin, "--state-dir",
                                         stateDir, "--jobs",
                                         csprintf("%d", int(opt.jobs))};
        args.insert(args.end(), extraArgs.begin(), extraArgs.end());
        std::vector<char *> cargs;
        cargs.reserve(args.size() + 1);
        for (std::string &s : args)
            cargs.push_back(s.data());
        cargs.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            std::perror("fork");
            return false;
        }
        if (pid == 0) {
            const std::string log = stateDir + "/server.log";
            const int fd = ::open(log.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, 1);
                ::dup2(fd, 2);
                ::close(fd);
            }
            ::execv(cargs[0], cargs.data());
            std::perror("execv");
            std::_Exit(127);
        }
        _pid = pid;
        return true;
    }

    /**
     * Connect to <stateDir>/sock, retrying while the server boots.
     * A freshly-recovering server may compact journals first, so the
     * window is generous.
     */
    bool connect(double timeoutMs = 10000)
    {
        const std::string sock = _stateDir + "/sock";
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(timeoutMs));
        std::string error;
        while (std::chrono::steady_clock::now() < deadline) {
            serve::Fd fd = serve::connectUnix(sock, error);
            if (fd.valid()) {
                _ch = std::make_unique<serve::LineChannel>(std::move(fd));
                return true;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        std::fprintf(stderr, "connect %s: %s\n", sock.c_str(),
                     error.c_str());
        return false;
    }

    /** One request line -> one parsed response. */
    bool rpc(const std::string &req, serve::JsonValue &resp)
    {
        std::string line;
        if (!_ch || !_ch->writeLine(req) || !_ch->readLine(line))
            return false;
        std::string error;
        return serve::parseJson(line, resp, error);
    }

    /** Signal the child and reap it. Returns the wait status. */
    int stop(int sig)
    {
        if (_pid <= 0)
            return 0;
        _ch.reset();
        ::kill(_pid, sig);
        int status = 0;
        ::waitpid(_pid, &status, 0);
        _pid = -1;
        return status;
    }

    pid_t pid() const { return _pid; }

  private:
    std::string _stateDir;
    pid_t _pid = -1;
    std::unique_ptr<serve::LineChannel> _ch;
};

std::string
slurpFile(const std::string &path)
{
    std::ifstream f(path);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** Blank the provenance "jobs" line - the one field allowed to vary. */
std::string
maskJobs(std::string s)
{
    const std::string key = "\"jobs\":";
    const std::size_t at = s.find(key);
    if (at == std::string::npos)
        return s;
    const std::size_t eol = s.find('\n', at);
    s.replace(at, eol - at, key + " <masked>");
    return s;
}

/** The mixed campaign both runs execute. */
serve::CampaignSpec
buildCampaign(const ChaosOptions &opt)
{
    serve::CampaignSpec spec;
    spec.name = "chaos";
    spec.faultSpec = opt.faultSpec;
    spec.cells.reserve(opt.cells);
    for (std::size_t i = 0; i < opt.cells; ++i) {
        serve::CellSpec c;
        c.workload = opt.workloads[i % opt.workloads.size()];
        c.scheme = opt.schemes[(i / opt.workloads.size()) %
                               opt.schemes.size()];
        c.scale = opt.scale;
        c.label = csprintf("%s/%s#%d", c.workload, c.scheme, int(i));
        spec.cells.push_back(std::move(c));
    }
    return spec;
}

struct PollState
{
    bool ok = false;
    bool complete = false;
    std::size_t done = 0;
    std::string resultPath;
};

PollState
poll(ServerHandle &server, const std::string &idHex)
{
    PollState st;
    serve::JsonValue resp;
    if (!server.rpc(csprintf("{\"op\": \"poll\", \"id\": \"%s\"}", idHex),
                    resp))
        return st;
    const serve::JsonValue *ok = resp.get("ok");
    if (!ok || !ok->isBool() || !ok->boolean)
        return st;
    st.ok = true;
    if (const serve::JsonValue *d = resp.get("done"))
        st.done = static_cast<std::size_t>(d->number);
    if (const serve::JsonValue *s = resp.get("status"))
        st.complete = s->text == "complete";
    if (const serve::JsonValue *r = resp.get("result"))
        st.resultPath = r->text;
    return st;
}

/** Submit; true when accepted or deduplicated, with the id in @p id. */
bool
submit(ServerHandle &server, const serve::CampaignSpec &spec,
       std::string &id)
{
    serve::JsonValue resp;
    if (!server.rpc(spec.toRequestJson(), resp))
        return false;
    const serve::JsonValue *ok = resp.get("ok");
    const serve::JsonValue *jid = resp.get("id");
    if (!ok || !ok->isBool() || !ok->boolean || !jid || !jid->isString())
        return false;
    id = jid->text;
    return true;
}

int
run(int argc, char **argv)
{
    const ChaosOptions opt = parseChaosArgs(argc, argv);
    namespace fs = std::filesystem;

    std::string root = opt.stateRoot;
    if (root.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        std::string templ = std::string(tmp && *tmp ? tmp : "/tmp") +
                            "/hscd-chaos-XXXXXX";
        std::vector<char> buf(templ.begin(), templ.end());
        buf.push_back('\0');
        if (!::mkdtemp(buf.data())) {
            std::perror("mkdtemp");
            return verify::ExitInternal;
        }
        root = buf.data();
    }
    std::error_code ec;
    fs::create_directories(root + "/ref", ec);
    fs::create_directories(root + "/chaos", ec);
    fs::create_directories(root + "/shed", ec);

    const serve::CampaignSpec spec = buildCampaign(opt);
    std::printf("== hscd_faultcheck --server: %d cells "
                "(%d workloads x %d schemes), %d kills, state in %s ==\n",
                int(spec.cells.size()), int(opt.workloads.size()),
                int(opt.schemes.size()), int(opt.kills), root.c_str());

    auto harnessFail = [&](const char *what) {
        std::fprintf(stderr, "FAIL (harness): %s; server log under %s\n",
                     what, root.c_str());
        return verify::ExitInternal;
    };

    // --- Phase 1: uninterrupted reference run -------------------------
    std::string refBytes;
    {
        ServerHandle server;
        if (!server.spawn(opt, root + "/ref") || !server.connect())
            return harnessFail("cannot start reference server");
        std::string id;
        if (!submit(server, spec, id))
            return harnessFail("reference submit refused");
        PollState st;
        while (!(st = poll(server, id)).complete) {
            if (!st.ok)
                return harnessFail("reference poll failed");
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
        refBytes = slurpFile(st.resultPath);
        if (refBytes.empty())
            return harnessFail("reference aggregate missing");
        const int status = server.stop(SIGTERM);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            return harnessFail("reference server did not drain to 0");
        std::printf("[chaos] reference: %d cells complete, %d aggregate "
                    "bytes\n",
                    int(spec.cells.size()), int(refBytes.size()));
    }

    // --- Phase 2: the same campaign under kill -9 fire ----------------
    // Kill k fires once journaled progress crosses (k+1)/(kills+1) of
    // the campaign; resubmission after each restart is idempotent
    // (accepted before the .req landed, dedup after).
    std::string chaosBytes;
    std::uint64_t restored = 0;
    {
        const std::string dir = root + "/chaos";
        unsigned killed = 0;
        std::string id;
        PollState st;
        while (true) {
            ServerHandle server;
            if (!server.spawn(opt, dir) || !server.connect())
                return harnessFail("cannot (re)start chaos server");
            if (!submit(server, spec, id))
                return harnessFail("chaos submit refused");
            const std::size_t threshold =
                killed < opt.kills
                    ? (spec.cells.size() * (killed + 1)) /
                          (opt.kills + 1)
                    : spec.cells.size() + 1; // past the last kill: finish
            while (true) {
                st = poll(server, id);
                if (!st.ok)
                    return harnessFail("chaos poll failed");
                if (st.complete || st.done >= threshold)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
            if (!st.complete && killed < opt.kills) {
                server.stop(SIGKILL);
                ++killed;
                std::printf("[chaos] kill %d/%d at %d/%d journaled "
                            "cells\n",
                            int(killed), int(opt.kills), int(st.done),
                            int(spec.cells.size()));
                continue;
            }
            // Complete (possibly with fewer kills than asked for when
            // the campaign outran the schedule - report honestly).
            serve::JsonValue stats;
            if (server.rpc("{\"op\": \"stats\"}", stats)) {
                if (const serve::JsonValue *c = stats.get("counters"))
                    if (const serve::JsonValue *r =
                            c->get("cells_restored"))
                        restored = static_cast<std::uint64_t>(r->number);
            }
            chaosBytes = slurpFile(st.resultPath);
            const int status = server.stop(SIGTERM);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                return harnessFail("chaos server did not drain to 0");
            if (killed < opt.kills) {
                std::fprintf(stderr,
                             "FAIL: campaign finished after only %d of "
                             "%d kills - raise --cells\n",
                             int(killed), int(opt.kills));
                return verify::ExitViolation;
            }
            break;
        }
        std::printf("[chaos] survived %d kills; %d cells restored from "
                    "journals across restarts\n",
                    int(killed), int(restored));
    }

    // --- Phase 3: byte-identical aggregate ----------------------------
    bool corrupted = false;
    if (chaosBytes.empty()) {
        std::fprintf(stderr, "FAIL: chaos aggregate missing\n");
        corrupted = true;
    } else if (maskJobs(refBytes) != maskJobs(chaosBytes)) {
        std::fprintf(stderr,
                     "FAIL: SILENT CORRUPTION - chaos aggregate differs "
                     "from reference (%d vs %d bytes); see %s\n",
                     int(chaosBytes.size()), int(refBytes.size()),
                     root.c_str());
        corrupted = true;
    } else {
        std::printf("[chaos] aggregate byte-identical to reference "
                    "(%d bytes, jobs field masked)\n",
                    int(refBytes.size()));
    }

    // --- Phase 4: backpressure is a structured shed, not a drop -------
    bool shedOk = false;
    {
        ServerHandle server;
        if (!server.spawn(opt, root + "/shed",
                          {"--max-queued-cells", "10"}) ||
            !server.connect())
            return harnessFail("cannot start shed server");
        serve::CampaignSpec big = buildCampaign(opt);
        big.name = "chaos-shed"; // distinct identity from the real one
        serve::JsonValue resp;
        if (!server.rpc(big.toRequestJson(), resp))
            return harnessFail("shed rpc failed");
        const serve::JsonValue *ok = resp.get("ok");
        const serve::JsonValue *status = resp.get("status");
        const serve::JsonValue *retry = resp.get("retry");
        shedOk = ok && ok->isBool() && !ok->boolean && status &&
                 status->text == "shed" && retry && retry->isBool() &&
                 retry->boolean;
        if (shedOk)
            std::printf("[chaos] over-bound submission shed with a "
                        "structured retryable error\n");
        else
            std::fprintf(stderr, "FAIL: over-bound submission was not "
                                 "shed structurally\n");
        server.stop(SIGTERM);
    }

    if (corrupted || !shedOk) {
        std::printf("\nverdict: contract VIOLATED (state kept in %s)\n",
                    root.c_str());
        return verify::ExitViolation;
    }
    std::printf("\nverdict: zero silent corruptions across %d kills of a "
                "%d-cell campaign; backpressure structured\n",
                int(opt.kills), int(spec.cells.size()));
    if (!opt.keep && opt.stateRoot.empty())
        fs::remove_all(root, ec);
    return verify::ExitSuccess;
}

} // namespace chaos

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--server")
            return chaos::run(argc, argv);

    const CliOptions opt = parseArgs(argc, argv);
    const std::vector<std::string> benchmarks =
        opt.workloadSpecs.empty() ? workloads::benchmarkNames()
                                  : opt.workloadSpecs;

    // Load each workload once, up front (shared across all runs):
    // compiled HIR for names/gen:/synth: specs, parsed records for
    // trace: specs. A bad spec or malformed trace is a usage error.
    std::map<std::string, compiler::CompiledProgram> programs;
    std::map<std::string, workloads::TraceWorkload> traces;
    try {
        for (const std::string &name : benchmarks) {
            if (workloads::isTraceSpec(name)) {
                traces.emplace(name, workloads::loadTraceSpec(name));
            } else if (name.rfind("gen:", 0) == 0) {
                testgen::GenOptions g;
                g.seed = std::strtoull(name.substr(4).c_str(), nullptr,
                                       10);
                programs.emplace(name,
                                 compiler::compileProgram(
                                     testgen::randomLegalProgram(g)));
            } else {
                programs.emplace(
                    name, compiler::compileProgram(
                              workloads::buildBenchmark(name, opt.scale)));
            }
        }
    } catch (const FatalError &) {
        // fatal() already emitted the reason (file:line for traces).
        return verify::ExitUsage;
    }

    // One faulted run (or its fault-free reference when cfg.fault is
    // disabled). Trace workloads replay through the scheme directly;
    // they carry no value oracle, so corruption there surfaces as an
    // abort or as differing work counts (the Silent check below).
    auto runOne = [&](const std::string &name, const MachineConfig &cfg) {
        auto t = traces.find(name);
        if (t != traces.end())
            return workloads::runTrace(t->second, cfg);
        return sim::simulate(programs.at(name), cfg);
    };

    // Fault-free reference per (scheme, workload): the "same work"
    // baseline completed runs are checked against.
    std::map<std::pair<int, std::string>, sim::RunResult> refs;
    for (SchemeKind k : opt.schemes) {
        for (const std::string &name : benchmarks) {
            MachineConfig cfg;
            cfg.scheme = k;
            cfg.shadowEpochCheck = true;
            refs.emplace(std::make_pair(static_cast<int>(k), name),
                         runOne(name, cfg));
        }
    }

    struct Cell
    {
        double rate;
        SchemeKind scheme;
        std::uint64_t seed;
        const std::string *benchmark;
    };
    std::vector<Cell> cells;
    for (double rate : opt.rates)
        for (SchemeKind k : opt.schemes)
            for (std::uint64_t s = 0; s < opt.seeds; ++s) {
                Cell c;
                c.rate = rate;
                c.scheme = k;
                c.seed = opt.seedBase + s;
                c.benchmark = &benchmarks[s % benchmarks.size()];
                cells.push_back(c);
            }

    std::printf("== hscd_faultcheck: %d runs (%d rates x %d schemes x "
                "%d seeds), sites=%s, scale=%d ==\n",
                int(cells.size()), int(opt.rates.size()),
                int(opt.schemes.size()), int(opt.seeds),
                opt.sitesSpec.c_str(), opt.scale);

    std::vector<CellOut> outs = parallelMap(
        opt.jobs, cells.size(), [&](std::size_t i) {
            const Cell &c = cells[i];
            CellOut out;
            MachineConfig cfg;
            cfg.scheme = c.scheme;
            cfg.shadowEpochCheck = true;
            cfg.fault.rate = c.rate;
            cfg.fault.seed = c.seed;
            cfg.fault.sites = opt.sites;
            try {
                out.run = runOne(*c.benchmark, cfg);
            } catch (const std::exception &e) {
                out.error = e.what();
                out.verdict = Verdict::Internal;
                return out;
            }
            const sim::RunResult &r = out.run;
            if (r.aborted()) {
                out.verdict = Verdict::Aborted;
            } else if (r.oracleViolations || r.shadowViolations ||
                       r.doallViolations) {
                out.verdict = Verdict::Flagged;
            } else {
                // Completed and unflagged: it must have done exactly the
                // reference run's work, or the fault silently changed
                // the computation.
                const sim::RunResult &ref = refs.at(
                    {static_cast<int>(c.scheme), *c.benchmark});
                const bool same_work = r.tasks == ref.tasks &&
                                       r.epochs == ref.epochs &&
                                       r.parallelEpochs ==
                                           ref.parallelEpochs &&
                                       r.reads == ref.reads &&
                                       r.writes == ref.writes;
                if (!same_work)
                    out.verdict = Verdict::Silent;
                else if (r.faultsInjected == 0)
                    out.verdict = Verdict::Clean;
                else
                    out.verdict = Verdict::Recovered;
            }
            return out;
        });

    // Aggregate and render in deterministic (rate, scheme) order.
    std::map<std::pair<double, int>, TableRow> rows;
    TableRow total;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const CellOut &o = outs[i];
        TableRow &row = rows[{c.rate, static_cast<int>(c.scheme)}];
        for (TableRow *t : {&row, &total}) {
            ++t->runs;
            t->injected += o.run.faultsInjected;
            t->retries += o.run.faultRetries;
            switch (o.verdict) {
              case Verdict::Clean: ++t->clean; break;
              case Verdict::Recovered: ++t->recovered; break;
              case Verdict::Aborted: ++t->aborted; break;
              case Verdict::Flagged: ++t->flagged; break;
              case Verdict::Silent: ++t->silent; break;
              case Verdict::Internal: ++t->internal; break;
            }
        }
        const bool bad = o.verdict == Verdict::Silent ||
                         o.verdict == Verdict::Internal;
        if (bad || (opt.verbose && o.verdict != Verdict::Clean &&
                    o.verdict != Verdict::Recovered)) {
            std::printf(
                "  [%s] rate=%g scheme=%s seed=%llu %s: %s\n",
                bad ? "FAIL" : "info", c.rate, schemeName(c.scheme),
                static_cast<unsigned long long>(c.seed),
                c.benchmark->c_str(),
                !o.error.empty() ? o.error.c_str()
                                 : o.run.summary().c_str());
        }
    }

    std::printf("\n%-10s %-6s %6s %6s %10s %8s %8s %7s %10s %9s\n",
                "rate", "scheme", "runs", "clean", "recovered", "aborted",
                "flagged", "silent", "injected", "retries");
    for (double rate : opt.rates) {
        for (SchemeKind k : opt.schemes) {
            const TableRow &t = rows[{rate, static_cast<int>(k)}];
            std::printf(
                "%-10g %-6s %6d %6d %10d %8d %8d %7d %10d %9d\n", rate,
                schemeName(k), int(t.runs), int(t.clean),
                int(t.recovered), int(t.aborted), int(t.flagged),
                int(t.silent), int(t.injected), int(t.retries));
        }
    }
    std::printf("%-10s %-6s %6d %6d %10d %8d %8d %7d %10d %9d\n", "total",
                "-", int(total.runs), int(total.clean),
                int(total.recovered), int(total.aborted),
                int(total.flagged), int(total.silent),
                int(total.injected), int(total.retries));

    const char *verdict = total.internal ? "internal-error"
                          : total.silent ? "silent-corruption"
                                         : "clean";
    if (!opt.jsonPath.empty())
        writeJsonReport(opt, rows, total, verdict);

    if (total.internal) {
        std::printf("\nverdict: %d harness errors - campaign invalid\n",
                    int(total.internal));
        return verify::ExitInternal;
    }
    if (total.silent) {
        std::printf("\nverdict: %d SILENT CORRUPTIONS across %d runs\n",
                    int(total.silent), int(total.runs));
        return verify::ExitViolation;
    }
    std::printf("\nverdict: zero silent corruptions across %d faulted "
                "runs (%d recovered, %d aborted, %d flagged)\n",
                int(total.runs), int(total.recovered), int(total.aborted),
                int(total.flagged));
    return verify::ExitSuccess;
}
