/**
 * @file
 * hscd_faultcheck: fault-injection campaign driver.
 *
 * Fans a corpus of fault seeds across the coherence schemes and asserts
 * the robustness contract end to end: every faulted run must either
 *
 *   - complete clean (faults absorbed: retransmissions, NACK repairs,
 *     epoch resyncs) and execute exactly the same work as the
 *     fault-free reference run (tasks, epochs, reads, writes), or
 *   - stop itself with a structured abort (protocol retry exhaustion,
 *     watchdog, deadlock), or
 *   - be flagged by the soundness oracles (value-stamp, shadow-epoch,
 *     DOALL race) when an injected corruption reached architectural
 *     state.
 *
 * What is never acceptable is a *silent* corruption: a run that
 * completes unflagged but did different work than the reference. The
 * campaign counts exactly that and fails (exit 3) if it ever happens.
 *
 *   hscd_faultcheck                         # 100 seeds, all schemes
 *   hscd_faultcheck --rates 1e-4,1e-3,0.01  # fault-rate sweep table
 *   hscd_faultcheck --seeds 500 --sites net --jobs 16
 *
 * Exit codes follow the verify::ExitCode contract: 0 clean campaign,
 * 2 usage error, 3 silent corruption detected, 5 harness error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/strutil.hh"
#include "fault/plan.hh"
#include "obs/provenance.hh"
#include "program_gen.hh"
#include "sim/machine.hh"
#include "verify/diagnostic.hh"
#include "workloads/synth.hh"
#include "workloads/trace.hh"
#include "workloads/workloads.hh"

namespace {

using namespace hscd;

struct CliOptions
{
    std::vector<double> rates = {1e-4, 1e-3, 1e-2};
    std::uint64_t seeds = 100;
    std::uint64_t seedBase = 1;
    unsigned sites = fault::kSitesAll;
    std::string sitesSpec = "all";
    unsigned jobs = 0;
    int scale = 1;
    std::vector<SchemeKind> schemes = {SchemeKind::Base, SchemeKind::SC,
                                       SchemeKind::TPI, SchemeKind::HW,
                                       SchemeKind::VC};
    bool verbose = false;
    std::string jsonPath;
    /** Workload specs to fan across; empty = the six benchmarks. */
    std::vector<std::string> workloadSpecs;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Runs a fault-injection campaign: `seeds` fault seeds per\n"
        "(rate x scheme), each seed picking one of the six workloads,\n"
        "and verifies that no run is ever silently wrong - every fault\n"
        "is either recovered, aborted, or flagged by the oracles.\n"
        "\n"
        "Options:\n"
        "  --seeds N        fault seeds per (rate x scheme) (default 100)\n"
        "  --seed-base N    first fault seed (default 1)\n"
        "  --rates R,R,...  fault rates to sweep (default 1e-4,1e-3,1e-2)\n"
        "  --sites LIST     site mask: all|net|mem|dir or site names\n"
        "                   (default all)\n"
        "  --schemes L,L    schemes to fan across (default all five)\n"
        "  --workloads L,L  workload specs the seeds rotate over:\n"
        "                   benchmark names, gen:<seed>,\n"
        "                   synth:<family>:<seed>, or trace:<file>\n"
        "                   (default: the six benchmarks)\n"
        "  --scale N        workload problem scale (default 1)\n"
        "  --jobs N         run cells on N threads (default: all)\n"
        "  --json PATH      write the campaign table as JSON (with a\n"
        "                   provenance header) to PATH\n"
        "  --verbose        print each non-clean run\n"
        "  --help           this text\n",
        argv0);
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                std::exit(verify::ExitUsage);
            }
            return argv[++i];
        };
        auto number = [&](const char *flag) {
            const std::string v = value(flag);
            char *end = nullptr;
            double d = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0') {
                std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0],
                             flag, v.c_str());
                std::exit(verify::ExitUsage);
            }
            return d;
        };
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(verify::ExitSuccess);
        } else if (a == "--seeds") {
            opt.seeds = static_cast<std::uint64_t>(number("--seeds"));
        } else if (a == "--seed-base") {
            opt.seedBase =
                static_cast<std::uint64_t>(number("--seed-base"));
        } else if (a == "--scale") {
            opt.scale = static_cast<int>(number("--scale"));
        } else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(number("--jobs"));
        } else if (a == "--verbose") {
            opt.verbose = true;
        } else if (a == "--json") {
            opt.jsonPath = value("--json");
        } else if (a == "--rates") {
            opt.rates.clear();
            std::string v = value("--rates");
            std::size_t pos = 0;
            while (pos <= v.size()) {
                std::size_t comma = v.find(',', pos);
                if (comma == std::string::npos)
                    comma = v.size();
                const std::string tok = v.substr(pos, comma - pos);
                char *end = nullptr;
                double r = std::strtod(tok.c_str(), &end);
                if (end == tok.c_str() || *end != '\0' || r < 0 ||
                    r > 1) {
                    std::fprintf(stderr, "%s: bad rate '%s'\n", argv[0],
                                 tok.c_str());
                    std::exit(verify::ExitUsage);
                }
                opt.rates.push_back(r);
                pos = comma + 1;
            }
            if (opt.rates.empty()) {
                std::fprintf(stderr, "%s: --rates needs at least one\n",
                             argv[0]);
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--sites") {
            opt.sitesSpec = value("--sites");
            try {
                // Reuse the plan grammar: rate/seed are dummies here.
                opt.sites =
                    fault::FaultPlan::parse("1:1:" + opt.sitesSpec).sites;
            } catch (const FatalError &) {
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--workloads") {
            opt.workloadSpecs.clear();
            std::string v = value("--workloads");
            for (const std::string &tok : split(v, ',')) {
                const std::string t = trim(tok);
                bool ok = t.rfind("gen:", 0) == 0 ||
                          workloads::isTraceSpec(t);
                if (workloads::isSynthSpec(t)) {
                    try {
                        workloads::parseSynthSpec(t);
                        ok = true;
                    } catch (const FatalError &) {
                        std::exit(verify::ExitUsage);
                    }
                }
                for (const std::string &n : workloads::benchmarkNames())
                    if (toLower(t) == toLower(n))
                        ok = true;
                if (!ok) {
                    std::fprintf(stderr,
                                 "%s: unknown workload spec '%s'\n",
                                 argv[0], t.c_str());
                    std::exit(verify::ExitUsage);
                }
                opt.workloadSpecs.push_back(t);
            }
            if (opt.workloadSpecs.empty()) {
                std::fprintf(stderr,
                             "%s: --workloads needs at least one\n",
                             argv[0]);
                std::exit(verify::ExitUsage);
            }
        } else if (a == "--schemes") {
            opt.schemes.clear();
            std::string v = value("--schemes");
            std::size_t pos = 0;
            while (pos <= v.size()) {
                std::size_t comma = v.find(',', pos);
                if (comma == std::string::npos)
                    comma = v.size();
                try {
                    opt.schemes.push_back(
                        parseScheme(v.substr(pos, comma - pos)));
                } catch (const FatalError &) {
                    std::exit(verify::ExitUsage);
                }
                pos = comma + 1;
            }
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        }
    }
    return opt;
}

/** One faulted run and how it ended. */
enum class Verdict
{
    Clean,     ///< completed, no faults actually injected
    Recovered, ///< completed, injected faults all absorbed
    Aborted,   ///< structured abort (detected)
    Flagged,   ///< oracle/shadow/race violation (detected)
    Silent,    ///< completed unflagged but did different work - BAD
    Internal,  ///< harness exception - BAD
};

struct CellOut
{
    Verdict verdict = Verdict::Internal;
    sim::RunResult run;
    std::string error;
};

struct TableRow
{
    std::uint64_t runs = 0, clean = 0, recovered = 0, aborted = 0,
                  flagged = 0, silent = 0, internal = 0;
    std::uint64_t injected = 0, retries = 0;
};

std::string
rowJson(const TableRow &t)
{
    return csprintf(
        "{\"runs\": %d, \"clean\": %d, \"recovered\": %d, "
        "\"aborted\": %d, \"flagged\": %d, \"silent\": %d, "
        "\"internal\": %d, \"injected\": %d, \"retries\": %d}",
        int(t.runs), int(t.clean), int(t.recovered), int(t.aborted),
        int(t.flagged), int(t.silent), int(t.internal), int(t.injected),
        int(t.retries));
}

/**
 * Machine-readable campaign report: a provenance header (config hash
 * over everything that shapes the corpus), the campaign parameters, one
 * row per (rate x scheme), totals, and the verdict. Deterministic at
 * any --jobs except the provenance "jobs" field itself.
 */
void
writeJsonReport(const CliOptions &opt,
                const std::map<std::pair<double, int>, TableRow> &rows,
                const TableRow &total, const char *verdict)
{
    std::ofstream os(opt.jsonPath);
    if (!os) {
        warn("cannot write --json file '%s'", opt.jsonPath);
        return;
    }
    std::string rates, schemes;
    for (double r : opt.rates)
        rates += csprintf("%s%.9g", rates.empty() ? "" : ",", r);
    for (SchemeKind k : opt.schemes)
        schemes += csprintf("%s%s", schemes.empty() ? "" : ",",
                            schemeName(k));

    obs::Provenance prov;
    prov.schema = "hscd-faultcheck";
    prov.tool = "faultcheck";
    prov.configHash = obs::fnv1a(csprintf(
        "rates=%s:seeds=%d:base=%d:sites=%s:schemes=%s:scale=%d", rates,
        int(opt.seeds), int(opt.seedBase), opt.sitesSpec, schemes,
        opt.scale));
    prov.faultSpec = csprintf("rates=%s:sites=%s", rates, opt.sitesSpec);
    prov.jobs = opt.jobs;

    os << "{\n  \"provenance\": " << prov.json(2) << ",\n";
    os << csprintf("  \"seeds\": %d,\n  \"seed_base\": %d,\n"
                   "  \"scale\": %d,\n  \"sites\": \"%s\",\n",
                   int(opt.seeds), int(opt.seedBase), opt.scale,
                   obs::jsonEscape(opt.sitesSpec).c_str());
    os << "  \"rows\": [\n";
    bool first = true;
    for (double rate : opt.rates) {
        for (SchemeKind k : opt.schemes) {
            auto it = rows.find({rate, static_cast<int>(k)});
            if (it == rows.end())
                continue;
            os << csprintf("%s    {\"rate\": %.9g, \"scheme\": \"%s\", "
                           "\"row\": %s}",
                           first ? "" : ",\n", rate, schemeName(k),
                           rowJson(it->second).c_str());
            first = false;
        }
    }
    os << "\n  ],\n";
    os << "  \"total\": " << rowJson(total) << ",\n";
    os << csprintf("  \"verdict\": \"%s\"\n}\n", verdict);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseArgs(argc, argv);
    const std::vector<std::string> benchmarks =
        opt.workloadSpecs.empty() ? workloads::benchmarkNames()
                                  : opt.workloadSpecs;

    // Load each workload once, up front (shared across all runs):
    // compiled HIR for names/gen:/synth: specs, parsed records for
    // trace: specs. A bad spec or malformed trace is a usage error.
    std::map<std::string, compiler::CompiledProgram> programs;
    std::map<std::string, workloads::TraceWorkload> traces;
    try {
        for (const std::string &name : benchmarks) {
            if (workloads::isTraceSpec(name)) {
                traces.emplace(name, workloads::loadTraceSpec(name));
            } else if (name.rfind("gen:", 0) == 0) {
                testgen::GenOptions g;
                g.seed = std::strtoull(name.substr(4).c_str(), nullptr,
                                       10);
                programs.emplace(name,
                                 compiler::compileProgram(
                                     testgen::randomLegalProgram(g)));
            } else {
                programs.emplace(
                    name, compiler::compileProgram(
                              workloads::buildBenchmark(name, opt.scale)));
            }
        }
    } catch (const FatalError &) {
        // fatal() already emitted the reason (file:line for traces).
        return verify::ExitUsage;
    }

    // One faulted run (or its fault-free reference when cfg.fault is
    // disabled). Trace workloads replay through the scheme directly;
    // they carry no value oracle, so corruption there surfaces as an
    // abort or as differing work counts (the Silent check below).
    auto runOne = [&](const std::string &name, const MachineConfig &cfg) {
        auto t = traces.find(name);
        if (t != traces.end())
            return workloads::runTrace(t->second, cfg);
        return sim::simulate(programs.at(name), cfg);
    };

    // Fault-free reference per (scheme, workload): the "same work"
    // baseline completed runs are checked against.
    std::map<std::pair<int, std::string>, sim::RunResult> refs;
    for (SchemeKind k : opt.schemes) {
        for (const std::string &name : benchmarks) {
            MachineConfig cfg;
            cfg.scheme = k;
            cfg.shadowEpochCheck = true;
            refs.emplace(std::make_pair(static_cast<int>(k), name),
                         runOne(name, cfg));
        }
    }

    struct Cell
    {
        double rate;
        SchemeKind scheme;
        std::uint64_t seed;
        const std::string *benchmark;
    };
    std::vector<Cell> cells;
    for (double rate : opt.rates)
        for (SchemeKind k : opt.schemes)
            for (std::uint64_t s = 0; s < opt.seeds; ++s) {
                Cell c;
                c.rate = rate;
                c.scheme = k;
                c.seed = opt.seedBase + s;
                c.benchmark = &benchmarks[s % benchmarks.size()];
                cells.push_back(c);
            }

    std::printf("== hscd_faultcheck: %d runs (%d rates x %d schemes x "
                "%d seeds), sites=%s, scale=%d ==\n",
                int(cells.size()), int(opt.rates.size()),
                int(opt.schemes.size()), int(opt.seeds),
                opt.sitesSpec.c_str(), opt.scale);

    std::vector<CellOut> outs = parallelMap(
        opt.jobs, cells.size(), [&](std::size_t i) {
            const Cell &c = cells[i];
            CellOut out;
            MachineConfig cfg;
            cfg.scheme = c.scheme;
            cfg.shadowEpochCheck = true;
            cfg.fault.rate = c.rate;
            cfg.fault.seed = c.seed;
            cfg.fault.sites = opt.sites;
            try {
                out.run = runOne(*c.benchmark, cfg);
            } catch (const std::exception &e) {
                out.error = e.what();
                out.verdict = Verdict::Internal;
                return out;
            }
            const sim::RunResult &r = out.run;
            if (r.aborted()) {
                out.verdict = Verdict::Aborted;
            } else if (r.oracleViolations || r.shadowViolations ||
                       r.doallViolations) {
                out.verdict = Verdict::Flagged;
            } else {
                // Completed and unflagged: it must have done exactly the
                // reference run's work, or the fault silently changed
                // the computation.
                const sim::RunResult &ref = refs.at(
                    {static_cast<int>(c.scheme), *c.benchmark});
                const bool same_work = r.tasks == ref.tasks &&
                                       r.epochs == ref.epochs &&
                                       r.parallelEpochs ==
                                           ref.parallelEpochs &&
                                       r.reads == ref.reads &&
                                       r.writes == ref.writes;
                if (!same_work)
                    out.verdict = Verdict::Silent;
                else if (r.faultsInjected == 0)
                    out.verdict = Verdict::Clean;
                else
                    out.verdict = Verdict::Recovered;
            }
            return out;
        });

    // Aggregate and render in deterministic (rate, scheme) order.
    std::map<std::pair<double, int>, TableRow> rows;
    TableRow total;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const CellOut &o = outs[i];
        TableRow &row = rows[{c.rate, static_cast<int>(c.scheme)}];
        for (TableRow *t : {&row, &total}) {
            ++t->runs;
            t->injected += o.run.faultsInjected;
            t->retries += o.run.faultRetries;
            switch (o.verdict) {
              case Verdict::Clean: ++t->clean; break;
              case Verdict::Recovered: ++t->recovered; break;
              case Verdict::Aborted: ++t->aborted; break;
              case Verdict::Flagged: ++t->flagged; break;
              case Verdict::Silent: ++t->silent; break;
              case Verdict::Internal: ++t->internal; break;
            }
        }
        const bool bad = o.verdict == Verdict::Silent ||
                         o.verdict == Verdict::Internal;
        if (bad || (opt.verbose && o.verdict != Verdict::Clean &&
                    o.verdict != Verdict::Recovered)) {
            std::printf(
                "  [%s] rate=%g scheme=%s seed=%llu %s: %s\n",
                bad ? "FAIL" : "info", c.rate, schemeName(c.scheme),
                static_cast<unsigned long long>(c.seed),
                c.benchmark->c_str(),
                !o.error.empty() ? o.error.c_str()
                                 : o.run.summary().c_str());
        }
    }

    std::printf("\n%-10s %-6s %6s %6s %10s %8s %8s %7s %10s %9s\n",
                "rate", "scheme", "runs", "clean", "recovered", "aborted",
                "flagged", "silent", "injected", "retries");
    for (double rate : opt.rates) {
        for (SchemeKind k : opt.schemes) {
            const TableRow &t = rows[{rate, static_cast<int>(k)}];
            std::printf(
                "%-10g %-6s %6d %6d %10d %8d %8d %7d %10d %9d\n", rate,
                schemeName(k), int(t.runs), int(t.clean),
                int(t.recovered), int(t.aborted), int(t.flagged),
                int(t.silent), int(t.injected), int(t.retries));
        }
    }
    std::printf("%-10s %-6s %6d %6d %10d %8d %8d %7d %10d %9d\n", "total",
                "-", int(total.runs), int(total.clean),
                int(total.recovered), int(total.aborted),
                int(total.flagged), int(total.silent),
                int(total.injected), int(total.retries));

    const char *verdict = total.internal ? "internal-error"
                          : total.silent ? "silent-corruption"
                                         : "clean";
    if (!opt.jsonPath.empty())
        writeJsonReport(opt, rows, total, verdict);

    if (total.internal) {
        std::printf("\nverdict: %d harness errors - campaign invalid\n",
                    int(total.internal));
        return verify::ExitInternal;
    }
    if (total.silent) {
        std::printf("\nverdict: %d SILENT CORRUPTIONS across %d runs\n",
                    int(total.silent), int(total.runs));
        return verify::ExitViolation;
    }
    std::printf("\nverdict: zero silent corruptions across %d faulted "
                "runs (%d recovered, %d aborted, %d flagged)\n",
                int(total.runs), int(total.recovered), int(total.aborted),
                int(total.flagged));
    return verify::ExitSuccess;
}
