/**
 * @file
 * hscd_serve: the resident campaign server.
 *
 * Keeps the compile and stream caches warm across sweep submissions so
 * a fleet of short-lived clients (CI jobs, notebooks, the chaos
 * harness) shares one simulator process instead of each paying the
 * compile cost. Clients speak line-delimited JSON over an AF_UNIX
 * socket (default `<state-dir>/sock`) or loopback TCP; the grammar
 * lives in src/serve/protocol.hh and DESIGN.md section 15.
 *
 *   hscd_serve --state-dir /tmp/hscd                # unix socket
 *   hscd_serve --state-dir /tmp/hscd --tcp --port 0 # loopback TCP
 *   curl --unix-socket /tmp/hscd/sock http://x/stats
 *
 * Crash safety: every accepted campaign is durable in the state
 * directory before the "accepted" response is sent, and every finished
 * cell is journaled before it counts. `kill -9` at any point loses at
 * most in-flight cells; the next start recovers the rest and the final
 * aggregate is byte-identical to an uninterrupted run's (the chaos
 * harness `hscd_faultcheck --server` asserts exactly this).
 *
 * Exit codes follow the verify::ExitCode contract:
 *   0  graceful drain, no journaled work left behind
 *   2  usage error (bad flags, cannot bind)
 *   4  interrupted with checkpoint: SIGTERM/SIGINT drained in-flight
 *      cells but durable queued work remains for the next start
 *   5  internal harness error
 */

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/log.hh"
#include "common/strutil.hh"
#include "harness.hh"
#include "serve/server.hh"
#include "sim/stream.hh"
#include "verify/diagnostic.hh"
#include "workloads/trace.hh"
#include "workloads/workloads.hh"

namespace {

using namespace hscd;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Resident campaign server: accepts batched sweep submissions\n"
        "over line-delimited JSON, executes them on a durable work\n"
        "queue, and writes one aggregate JSON per campaign into the\n"
        "state directory. Crash-safe: kill -9 loses at most in-flight\n"
        "cells; restart with the same --state-dir resumes the rest.\n"
        "\n"
        "Options:\n"
        "  --state-dir DIR   durable queue + socket + results\n"
        "                    (default serve-state)\n"
        "  --socket PATH     AF_UNIX socket path\n"
        "                    (default <state-dir>/sock)\n"
        "  --tcp             listen on loopback TCP instead\n"
        "  --port N          TCP port (default 0 = ephemeral, printed)\n"
        "  --jobs N          simulation worker threads (default 1)\n"
        "  --max-queued-cells N    backpressure threshold: submissions\n"
        "                          past this are shed (default 100000)\n"
        "  --max-campaign-cells N  per-submission cell cap\n"
        "                          (default 50000)\n"
        "  --max-campaigns N       resident campaign cap (default 256)\n"
        "  --max-connections N     concurrent client cap (default 32)\n"
        "  --compile-cache N       compiled-program LRU budget\n"
        "                          (default 64 entries)\n"
        "  --help            this text\n",
        argv0);
}

serve::ServerOptions
parseArgs(int argc, char **argv, std::size_t &compileBudget)
{
    serve::ServerOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s requires an argument\n",
                             argv[0], flag);
                std::exit(verify::ExitUsage);
            }
            return argv[++i];
        };
        auto number = [&](const char *flag) {
            const std::string v = value(flag);
            char *end = nullptr;
            double d = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || d < 0) {
                std::fprintf(stderr, "%s: bad %s value '%s'\n", argv[0],
                             flag, v.c_str());
                std::exit(verify::ExitUsage);
            }
            return d;
        };
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            std::exit(verify::ExitSuccess);
        } else if (a == "--state-dir") {
            opt.stateDir = value("--state-dir");
        } else if (a == "--socket") {
            opt.socketPath = value("--socket");
        } else if (a == "--tcp") {
            opt.useTcp = true;
        } else if (a == "--port") {
            opt.tcpPort = static_cast<std::uint16_t>(number("--port"));
        } else if (a == "--jobs") {
            opt.workers = static_cast<unsigned>(number("--jobs"));
        } else if (a == "--max-queued-cells") {
            opt.limits.maxQueuedCells =
                static_cast<std::size_t>(number("--max-queued-cells"));
        } else if (a == "--max-campaign-cells") {
            opt.limits.maxCampaignCells =
                static_cast<std::size_t>(number("--max-campaign-cells"));
        } else if (a == "--max-campaigns") {
            opt.limits.maxCampaigns =
                static_cast<std::size_t>(number("--max-campaigns"));
        } else if (a == "--max-connections") {
            opt.maxConnections =
                static_cast<std::size_t>(number("--max-connections"));
        } else if (a == "--compile-cache") {
            compileBudget =
                static_cast<std::size_t>(number("--compile-cache"));
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         a.c_str());
            usage(argv[0]);
            std::exit(verify::ExitUsage);
        }
    }
    if (opt.stateDir.empty()) {
        std::fprintf(stderr, "%s: --state-dir must not be empty\n",
                     argv[0]);
        std::exit(verify::ExitUsage);
    }
    return opt;
}

/**
 * Trace workloads are file-backed; load each spec once and share it
 * across cells and campaigns (compiled benchmarks and synth programs
 * already go through the LRU'd compiledBenchmark cache).
 */
class TraceCache
{
  public:
    const workloads::TraceWorkload &get(const std::string &spec)
    {
        std::lock_guard<std::mutex> lk(_mu);
        auto it = _traces.find(spec);
        if (it == _traces.end())
            it = _traces.emplace(spec, workloads::loadTraceSpec(spec))
                     .first;
        return it->second;
    }

  private:
    std::mutex _mu;
    std::map<std::string, workloads::TraceWorkload> _traces;
};

/** Run one cell with no budget: dispatch on the workload spec. */
sim::RunResult
runCellDirect(TraceCache &traces, const serve::CampaignSpec &spec,
              std::size_t i)
{
    const serve::CellSpec &c = spec.cells[i];
    const MachineConfig cfg = spec.cellConfig(i);
    if (workloads::isTraceSpec(c.workload))
        return workloads::runTrace(traces.get(c.workload), cfg);
    // Benchmark names and synth:<family>:<seed> specs both go through
    // the compiled-program cache (buildBenchmark accepts either).
    return bench::runBenchmark(c.workload, cfg, c.scale, c.affinity);
}

/**
 * The CellFn handed to the queue: runCellDirect under the campaign's
 * per-cell timeout. Same watchdog shape as the sweep engine: the cell
 * runs on its own thread and is abandoned (detached) past the budget;
 * a timeout becomes a structured cell error via FatalError.
 */
sim::RunResult
runCellGuarded(TraceCache &traces, const serve::CampaignSpec &spec,
               std::size_t i)
{
    if (spec.timeoutMs <= 0)
        return runCellDirect(traces, spec, i);

    struct Shared
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        sim::RunResult result;
        std::string error;
    };
    auto sh = std::make_shared<Shared>();
    std::thread worker([sh, &traces, spec, i] {
        sim::RunResult r;
        std::string err;
        try {
            r = runCellDirect(traces, spec, i);
        } catch (const std::exception &e) {
            err = e.what();
            if (err.empty())
                err = "unhandled exception";
        } catch (...) {
            err = "unhandled non-standard exception";
        }
        {
            std::lock_guard<std::mutex> lk(sh->m);
            sh->result = std::move(r);
            sh->error = std::move(err);
            sh->done = true;
        }
        sh->cv.notify_all();
    });

    std::unique_lock<std::mutex> lk(sh->m);
    const bool finished = sh->cv.wait_for(
        lk, std::chrono::duration<double, std::milli>(spec.timeoutMs),
        [&] { return sh->done; });
    if (finished) {
        lk.unlock();
        worker.join();
        if (!sh->error.empty())
            throw FatalError(sh->error);
        return sh->result;
    }
    lk.unlock();
    worker.detach();
    fatal("timeout: cell still running after %.0f ms", spec.timeoutMs);
}

/** The `"caches": {...}` fragment appended to /stats. */
std::string
cacheStatsFragment()
{
    const bench::CompiledCacheStats cc = bench::compiledCacheStats();
    const sim::StreamCacheStats sc = sim::streamCacheStats();
    return csprintf(
        "\"caches\": {\"compile\": {\"hits\": %d, \"builds\": %d, "
        "\"evictions\": %d, \"resident\": %d, \"budget\": %d}, "
        "\"stream\": {\"hits\": %d, \"builds\": %d, \"evictions\": %d}}",
        int(cc.hits), int(cc.builds), int(cc.evictions), int(cc.resident),
        int(cc.budget), int(sc.hits), int(sc.builds), int(sc.evictions));
}

serve::Server *g_server = nullptr;
volatile std::sig_atomic_t g_signalled = 0;

extern "C" void
serveSignalHandler(int)
{
    // First signal: graceful drain (requestStop is async-signal-safe).
    // Second: the drain itself is stuck - abandon ship. The durable
    // queue makes this safe; it is exactly the kill -9 path.
    if (g_signalled)
        std::_Exit(verify::ExitAbort);
    g_signalled = 1;
    if (g_server)
        g_server->requestStop(/*drain=*/true);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t compileBudget = 0;
    serve::ServerOptions opt = parseArgs(argc, argv, compileBudget);
    if (compileBudget)
        bench::setCompiledCacheBudget(compileBudget);
    opt.extraStats = cacheStatsFragment;

    TraceCache traces;
    serve::Server server(
        opt, [&traces](const serve::CampaignSpec &spec, std::size_t i) {
            return runCellGuarded(traces, spec, i);
        });
    g_server = &server;

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = serveSignalHandler;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // A client vanishing mid-response must not kill the server.
    signal(SIGPIPE, SIG_IGN);

    try {
        const std::size_t recovered = server.recover();
        if (recovered)
            std::printf("[serve] recovered %d durable campaign%s from %s\n",
                        int(recovered), recovered == 1 ? "" : "s",
                        opt.stateDir.c_str());

        std::string error;
        if (!server.start(error)) {
            std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
            return verify::ExitUsage;
        }
        if (opt.useTcp)
            std::printf("[serve] listening on 127.0.0.1:%u, state in %s, "
                        "%u worker%s\n",
                        unsigned(server.port()), opt.stateDir.c_str(),
                        server.queue().workers(),
                        server.queue().workers() == 1 ? "" : "s");
        else
            std::printf("[serve] listening on %s, state in %s, "
                        "%u worker%s\n",
                        server.socketPath().c_str(), opt.stateDir.c_str(),
                        server.queue().workers(),
                        server.queue().workers() == 1 ? "" : "s");
        std::fflush(stdout);

        const std::size_t unfinished = server.serve();
        if (unfinished) {
            std::printf("[serve] interrupted: %d journaled cell%s remain "
                        "durable in %s (restart to resume)\n",
                        int(unfinished), unfinished == 1 ? "" : "s",
                        opt.stateDir.c_str());
            return verify::ExitAbort;
        }
        std::printf("[serve] drained clean\n");
        return verify::ExitSuccess;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return verify::ExitInternal;
    }
}
