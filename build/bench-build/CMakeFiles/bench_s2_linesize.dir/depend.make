# Empty dependencies file for bench_s2_linesize.
# This may be replaced when dependencies are built.
