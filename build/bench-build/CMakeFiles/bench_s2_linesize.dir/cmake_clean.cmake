file(REMOVE_RECURSE
  "../bench/bench_s2_linesize"
  "../bench/bench_s2_linesize.pdb"
  "CMakeFiles/bench_s2_linesize.dir/bench_s2_linesize.cc.o"
  "CMakeFiles/bench_s2_linesize.dir/bench_s2_linesize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s2_linesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
