# Empty dependencies file for bench_s4_writebuffer.
# This may be replaced when dependencies are built.
