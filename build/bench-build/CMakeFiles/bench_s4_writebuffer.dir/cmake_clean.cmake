file(REMOVE_RECURSE
  "../bench/bench_s4_writebuffer"
  "../bench/bench_s4_writebuffer.pdb"
  "CMakeFiles/bench_s4_writebuffer.dir/bench_s4_writebuffer.cc.o"
  "CMakeFiles/bench_s4_writebuffer.dir/bench_s4_writebuffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s4_writebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
