file(REMOVE_RECURSE
  "../bench/bench_a3_interproc"
  "../bench/bench_a3_interproc.pdb"
  "CMakeFiles/bench_a3_interproc.dir/bench_a3_interproc.cc.o"
  "CMakeFiles/bench_a3_interproc.dir/bench_a3_interproc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_interproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
