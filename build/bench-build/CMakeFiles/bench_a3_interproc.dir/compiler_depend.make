# Empty compiler generated dependencies file for bench_a3_interproc.
# This may be replaced when dependencies are built.
