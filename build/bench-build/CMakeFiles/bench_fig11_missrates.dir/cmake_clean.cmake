file(REMOVE_RECURSE
  "../bench/bench_fig11_missrates"
  "../bench/bench_fig11_missrates.pdb"
  "CMakeFiles/bench_fig11_missrates.dir/bench_fig11_missrates.cc.o"
  "CMakeFiles/bench_fig11_missrates.dir/bench_fig11_missrates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
