file(REMOVE_RECURSE
  "../bench/bench_a2_sched"
  "../bench/bench_a2_sched.pdb"
  "CMakeFiles/bench_a2_sched.dir/bench_a2_sched.cc.o"
  "CMakeFiles/bench_a2_sched.dir/bench_a2_sched.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
