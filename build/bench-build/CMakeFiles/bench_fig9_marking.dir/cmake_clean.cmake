file(REMOVE_RECURSE
  "../bench/bench_fig9_marking"
  "../bench/bench_fig9_marking.pdb"
  "CMakeFiles/bench_fig9_marking.dir/bench_fig9_marking.cc.o"
  "CMakeFiles/bench_fig9_marking.dir/bench_fig9_marking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_marking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
