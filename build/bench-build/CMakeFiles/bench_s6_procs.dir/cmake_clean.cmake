file(REMOVE_RECURSE
  "../bench/bench_s6_procs"
  "../bench/bench_s6_procs.pdb"
  "CMakeFiles/bench_s6_procs.dir/bench_s6_procs.cc.o"
  "CMakeFiles/bench_s6_procs.dir/bench_s6_procs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s6_procs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
