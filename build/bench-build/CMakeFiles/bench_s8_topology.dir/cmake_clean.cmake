file(REMOVE_RECURSE
  "../bench/bench_s8_topology"
  "../bench/bench_s8_topology.pdb"
  "CMakeFiles/bench_s8_topology.dir/bench_s8_topology.cc.o"
  "CMakeFiles/bench_s8_topology.dir/bench_s8_topology.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s8_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
