# Empty compiler generated dependencies file for bench_s8_topology.
# This may be replaced when dependencies are built.
