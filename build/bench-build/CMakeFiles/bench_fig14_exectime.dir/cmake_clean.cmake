file(REMOVE_RECURSE
  "../bench/bench_fig14_exectime"
  "../bench/bench_fig14_exectime.pdb"
  "CMakeFiles/bench_fig14_exectime.dir/bench_fig14_exectime.cc.o"
  "CMakeFiles/bench_fig14_exectime.dir/bench_fig14_exectime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
