file(REMOVE_RECURSE
  "../bench/bench_s7_consistency"
  "../bench/bench_s7_consistency.pdb"
  "CMakeFiles/bench_s7_consistency.dir/bench_s7_consistency.cc.o"
  "CMakeFiles/bench_s7_consistency.dir/bench_s7_consistency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s7_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
