# Empty dependencies file for bench_s7_consistency.
# This may be replaced when dependencies are built.
