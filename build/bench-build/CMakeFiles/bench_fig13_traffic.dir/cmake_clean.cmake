file(REMOVE_RECURSE
  "../bench/bench_fig13_traffic"
  "../bench/bench_fig13_traffic.pdb"
  "CMakeFiles/bench_fig13_traffic.dir/bench_fig13_traffic.cc.o"
  "CMakeFiles/bench_fig13_traffic.dir/bench_fig13_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
