# Empty compiler generated dependencies file for bench_s1_timetag.
# This may be replaced when dependencies are built.
