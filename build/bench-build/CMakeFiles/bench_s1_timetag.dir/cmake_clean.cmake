file(REMOVE_RECURSE
  "../bench/bench_s1_timetag"
  "../bench/bench_s1_timetag.pdb"
  "CMakeFiles/bench_s1_timetag.dir/bench_s1_timetag.cc.o"
  "CMakeFiles/bench_s1_timetag.dir/bench_s1_timetag.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s1_timetag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
