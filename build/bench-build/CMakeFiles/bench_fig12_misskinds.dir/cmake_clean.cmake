file(REMOVE_RECURSE
  "../bench/bench_fig12_misskinds"
  "../bench/bench_fig12_misskinds.pdb"
  "CMakeFiles/bench_fig12_misskinds.dir/bench_fig12_misskinds.cc.o"
  "CMakeFiles/bench_fig12_misskinds.dir/bench_fig12_misskinds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_misskinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
