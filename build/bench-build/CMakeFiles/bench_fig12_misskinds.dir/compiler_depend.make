# Empty compiler generated dependencies file for bench_fig12_misskinds.
# This may be replaced when dependencies are built.
