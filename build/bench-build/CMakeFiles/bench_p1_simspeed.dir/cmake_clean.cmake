file(REMOVE_RECURSE
  "../bench/bench_p1_simspeed"
  "../bench/bench_p1_simspeed.pdb"
  "CMakeFiles/bench_p1_simspeed.dir/bench_p1_simspeed.cc.o"
  "CMakeFiles/bench_p1_simspeed.dir/bench_p1_simspeed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
