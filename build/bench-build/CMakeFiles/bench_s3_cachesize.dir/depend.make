# Empty dependencies file for bench_s3_cachesize.
# This may be replaced when dependencies are built.
