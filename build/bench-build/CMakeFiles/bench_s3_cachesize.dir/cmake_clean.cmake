file(REMOVE_RECURSE
  "../bench/bench_s3_cachesize"
  "../bench/bench_s3_cachesize.pdb"
  "CMakeFiles/bench_s3_cachesize.dir/bench_s3_cachesize.cc.o"
  "CMakeFiles/bench_s3_cachesize.dir/bench_s3_cachesize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s3_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
