file(REMOVE_RECURSE
  "../bench/bench_s5_migration"
  "../bench/bench_s5_migration.pdb"
  "CMakeFiles/bench_s5_migration.dir/bench_s5_migration.cc.o"
  "CMakeFiles/bench_s5_migration.dir/bench_s5_migration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s5_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
