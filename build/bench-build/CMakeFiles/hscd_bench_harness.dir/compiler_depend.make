# Empty compiler generated dependencies file for hscd_bench_harness.
# This may be replaced when dependencies are built.
