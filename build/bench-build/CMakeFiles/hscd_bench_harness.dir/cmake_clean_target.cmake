file(REMOVE_RECURSE
  "libhscd_bench_harness.a"
)
