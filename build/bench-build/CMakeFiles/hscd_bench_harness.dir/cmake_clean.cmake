file(REMOVE_RECURSE
  "CMakeFiles/hscd_bench_harness.dir/harness.cc.o"
  "CMakeFiles/hscd_bench_harness.dir/harness.cc.o.d"
  "libhscd_bench_harness.a"
  "libhscd_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
