file(REMOVE_RECURSE
  "../bench/bench_t1_misslatency"
  "../bench/bench_t1_misslatency.pdb"
  "CMakeFiles/bench_t1_misslatency.dir/bench_t1_misslatency.cc.o"
  "CMakeFiles/bench_t1_misslatency.dir/bench_t1_misslatency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_misslatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
