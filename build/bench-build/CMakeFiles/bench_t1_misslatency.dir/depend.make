# Empty dependencies file for bench_t1_misslatency.
# This may be replaced when dependencies are built.
