
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ablation.cc" "tests/CMakeFiles/hscd_tests.dir/test_ablation.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_ablation.cc.o.d"
  "/root/repo/tests/test_bitutil.cc" "tests/CMakeFiles/hscd_tests.dir/test_bitutil.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_bitutil.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/hscd_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/hscd_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_edge_machines.cc" "tests/CMakeFiles/hscd_tests.dir/test_edge_machines.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_edge_machines.cc.o.d"
  "/root/repo/tests/test_epoch_graph.cc" "tests/CMakeFiles/hscd_tests.dir/test_epoch_graph.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_epoch_graph.cc.o.d"
  "/root/repo/tests/test_expr.cc" "tests/CMakeFiles/hscd_tests.dir/test_expr.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_expr.cc.o.d"
  "/root/repo/tests/test_fuzz_schemes.cc" "tests/CMakeFiles/hscd_tests.dir/test_fuzz_schemes.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_fuzz_schemes.cc.o.d"
  "/root/repo/tests/test_hir.cc" "tests/CMakeFiles/hscd_tests.dir/test_hir.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_hir.cc.o.d"
  "/root/repo/tests/test_interp.cc" "tests/CMakeFiles/hscd_tests.dir/test_interp.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_interp.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/hscd_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_marking.cc" "tests/CMakeFiles/hscd_tests.dir/test_marking.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_marking.cc.o.d"
  "/root/repo/tests/test_misc2.cc" "tests/CMakeFiles/hscd_tests.dir/test_misc2.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_misc2.cc.o.d"
  "/root/repo/tests/test_models.cc" "tests/CMakeFiles/hscd_tests.dir/test_models.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_models.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/hscd_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_property.cc" "tests/CMakeFiles/hscd_tests.dir/test_property.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_property.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/hscd_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_schemes.cc" "tests/CMakeFiles/hscd_tests.dir/test_schemes.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_schemes.cc.o.d"
  "/root/repo/tests/test_schemes2.cc" "tests/CMakeFiles/hscd_tests.dir/test_schemes2.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_schemes2.cc.o.d"
  "/root/repo/tests/test_section.cc" "tests/CMakeFiles/hscd_tests.dir/test_section.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_section.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/hscd_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_storage.cc" "tests/CMakeFiles/hscd_tests.dir/test_storage.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_storage.cc.o.d"
  "/root/repo/tests/test_strutil.cc" "tests/CMakeFiles/hscd_tests.dir/test_strutil.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_strutil.cc.o.d"
  "/root/repo/tests/test_summary.cc" "tests/CMakeFiles/hscd_tests.dir/test_summary.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_summary.cc.o.d"
  "/root/repo/tests/test_symbolic.cc" "tests/CMakeFiles/hscd_tests.dir/test_symbolic.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_symbolic.cc.o.d"
  "/root/repo/tests/test_sync.cc" "tests/CMakeFiles/hscd_tests.dir/test_sync.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_sync.cc.o.d"
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/hscd_tests.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_table.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/hscd_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_umbrella.cc" "tests/CMakeFiles/hscd_tests.dir/test_umbrella.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_umbrella.cc.o.d"
  "/root/repo/tests/test_vc.cc" "tests/CMakeFiles/hscd_tests.dir/test_vc.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_vc.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/hscd_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/hscd_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hscd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/hscd_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/hscd_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hscd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/hscd_network.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hscd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hscd_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
