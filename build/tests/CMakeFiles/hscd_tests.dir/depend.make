# Empty dependencies file for hscd_tests.
# This may be replaced when dependencies are built.
