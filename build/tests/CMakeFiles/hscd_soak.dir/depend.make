# Empty dependencies file for hscd_soak.
# This may be replaced when dependencies are built.
