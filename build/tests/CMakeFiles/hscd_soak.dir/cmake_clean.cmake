file(REMOVE_RECURSE
  "CMakeFiles/hscd_soak.dir/soak_main.cc.o"
  "CMakeFiles/hscd_soak.dir/soak_main.cc.o.d"
  "hscd_soak"
  "hscd_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
