file(REMOVE_RECURSE
  "CMakeFiles/doacross.dir/doacross.cpp.o"
  "CMakeFiles/doacross.dir/doacross.cpp.o.d"
  "doacross"
  "doacross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doacross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
