# Empty dependencies file for doacross.
# This may be replaced when dependencies are built.
