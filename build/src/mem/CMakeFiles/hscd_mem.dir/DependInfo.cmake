
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/base_scheme.cc" "src/mem/CMakeFiles/hscd_mem.dir/base_scheme.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/base_scheme.cc.o.d"
  "/root/repo/src/mem/coherence.cc" "src/mem/CMakeFiles/hscd_mem.dir/coherence.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/coherence.cc.o.d"
  "/root/repo/src/mem/directory_scheme.cc" "src/mem/CMakeFiles/hscd_mem.dir/directory_scheme.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/directory_scheme.cc.o.d"
  "/root/repo/src/mem/machine_config.cc" "src/mem/CMakeFiles/hscd_mem.dir/machine_config.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/machine_config.cc.o.d"
  "/root/repo/src/mem/sc_scheme.cc" "src/mem/CMakeFiles/hscd_mem.dir/sc_scheme.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/sc_scheme.cc.o.d"
  "/root/repo/src/mem/storage_model.cc" "src/mem/CMakeFiles/hscd_mem.dir/storage_model.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/storage_model.cc.o.d"
  "/root/repo/src/mem/tpi_scheme.cc" "src/mem/CMakeFiles/hscd_mem.dir/tpi_scheme.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/tpi_scheme.cc.o.d"
  "/root/repo/src/mem/vc_scheme.cc" "src/mem/CMakeFiles/hscd_mem.dir/vc_scheme.cc.o" "gcc" "src/mem/CMakeFiles/hscd_mem.dir/vc_scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/hscd_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/hscd_network.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hscd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/hscd_hir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
