file(REMOVE_RECURSE
  "libhscd_mem.a"
)
