# Empty compiler generated dependencies file for hscd_mem.
# This may be replaced when dependencies are built.
