file(REMOVE_RECURSE
  "CMakeFiles/hscd_mem.dir/base_scheme.cc.o"
  "CMakeFiles/hscd_mem.dir/base_scheme.cc.o.d"
  "CMakeFiles/hscd_mem.dir/coherence.cc.o"
  "CMakeFiles/hscd_mem.dir/coherence.cc.o.d"
  "CMakeFiles/hscd_mem.dir/directory_scheme.cc.o"
  "CMakeFiles/hscd_mem.dir/directory_scheme.cc.o.d"
  "CMakeFiles/hscd_mem.dir/machine_config.cc.o"
  "CMakeFiles/hscd_mem.dir/machine_config.cc.o.d"
  "CMakeFiles/hscd_mem.dir/sc_scheme.cc.o"
  "CMakeFiles/hscd_mem.dir/sc_scheme.cc.o.d"
  "CMakeFiles/hscd_mem.dir/storage_model.cc.o"
  "CMakeFiles/hscd_mem.dir/storage_model.cc.o.d"
  "CMakeFiles/hscd_mem.dir/tpi_scheme.cc.o"
  "CMakeFiles/hscd_mem.dir/tpi_scheme.cc.o.d"
  "CMakeFiles/hscd_mem.dir/vc_scheme.cc.o"
  "CMakeFiles/hscd_mem.dir/vc_scheme.cc.o.d"
  "libhscd_mem.a"
  "libhscd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
