file(REMOVE_RECURSE
  "CMakeFiles/hscd_compiler.dir/analysis.cc.o"
  "CMakeFiles/hscd_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/hscd_compiler.dir/epoch_graph.cc.o"
  "CMakeFiles/hscd_compiler.dir/epoch_graph.cc.o.d"
  "CMakeFiles/hscd_compiler.dir/marking.cc.o"
  "CMakeFiles/hscd_compiler.dir/marking.cc.o.d"
  "CMakeFiles/hscd_compiler.dir/secbuild.cc.o"
  "CMakeFiles/hscd_compiler.dir/secbuild.cc.o.d"
  "CMakeFiles/hscd_compiler.dir/section.cc.o"
  "CMakeFiles/hscd_compiler.dir/section.cc.o.d"
  "CMakeFiles/hscd_compiler.dir/summary.cc.o"
  "CMakeFiles/hscd_compiler.dir/summary.cc.o.d"
  "libhscd_compiler.a"
  "libhscd_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
