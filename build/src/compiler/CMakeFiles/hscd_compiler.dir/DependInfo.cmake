
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/hscd_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/hscd_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/epoch_graph.cc" "src/compiler/CMakeFiles/hscd_compiler.dir/epoch_graph.cc.o" "gcc" "src/compiler/CMakeFiles/hscd_compiler.dir/epoch_graph.cc.o.d"
  "/root/repo/src/compiler/marking.cc" "src/compiler/CMakeFiles/hscd_compiler.dir/marking.cc.o" "gcc" "src/compiler/CMakeFiles/hscd_compiler.dir/marking.cc.o.d"
  "/root/repo/src/compiler/secbuild.cc" "src/compiler/CMakeFiles/hscd_compiler.dir/secbuild.cc.o" "gcc" "src/compiler/CMakeFiles/hscd_compiler.dir/secbuild.cc.o.d"
  "/root/repo/src/compiler/section.cc" "src/compiler/CMakeFiles/hscd_compiler.dir/section.cc.o" "gcc" "src/compiler/CMakeFiles/hscd_compiler.dir/section.cc.o.d"
  "/root/repo/src/compiler/summary.cc" "src/compiler/CMakeFiles/hscd_compiler.dir/summary.cc.o" "gcc" "src/compiler/CMakeFiles/hscd_compiler.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hir/CMakeFiles/hscd_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hscd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
