# Empty compiler generated dependencies file for hscd_compiler.
# This may be replaced when dependencies are built.
