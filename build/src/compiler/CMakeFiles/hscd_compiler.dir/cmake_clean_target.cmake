file(REMOVE_RECURSE
  "libhscd_compiler.a"
)
