file(REMOVE_RECURSE
  "CMakeFiles/hscd_workloads.dir/adm.cc.o"
  "CMakeFiles/hscd_workloads.dir/adm.cc.o.d"
  "CMakeFiles/hscd_workloads.dir/flo52.cc.o"
  "CMakeFiles/hscd_workloads.dir/flo52.cc.o.d"
  "CMakeFiles/hscd_workloads.dir/micro.cc.o"
  "CMakeFiles/hscd_workloads.dir/micro.cc.o.d"
  "CMakeFiles/hscd_workloads.dir/ocean.cc.o"
  "CMakeFiles/hscd_workloads.dir/ocean.cc.o.d"
  "CMakeFiles/hscd_workloads.dir/qcd2.cc.o"
  "CMakeFiles/hscd_workloads.dir/qcd2.cc.o.d"
  "CMakeFiles/hscd_workloads.dir/registry.cc.o"
  "CMakeFiles/hscd_workloads.dir/registry.cc.o.d"
  "CMakeFiles/hscd_workloads.dir/spec77.cc.o"
  "CMakeFiles/hscd_workloads.dir/spec77.cc.o.d"
  "CMakeFiles/hscd_workloads.dir/trfd.cc.o"
  "CMakeFiles/hscd_workloads.dir/trfd.cc.o.d"
  "libhscd_workloads.a"
  "libhscd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
