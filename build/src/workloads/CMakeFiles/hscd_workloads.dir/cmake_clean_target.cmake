file(REMOVE_RECURSE
  "libhscd_workloads.a"
)
