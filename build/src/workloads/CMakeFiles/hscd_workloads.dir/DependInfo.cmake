
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adm.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/adm.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/adm.cc.o.d"
  "/root/repo/src/workloads/flo52.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/flo52.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/flo52.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/micro.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/micro.cc.o.d"
  "/root/repo/src/workloads/ocean.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/ocean.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/ocean.cc.o.d"
  "/root/repo/src/workloads/qcd2.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/qcd2.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/qcd2.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/spec77.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/spec77.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/spec77.cc.o.d"
  "/root/repo/src/workloads/trfd.cc" "src/workloads/CMakeFiles/hscd_workloads.dir/trfd.cc.o" "gcc" "src/workloads/CMakeFiles/hscd_workloads.dir/trfd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hir/CMakeFiles/hscd_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hscd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
