# Empty compiler generated dependencies file for hscd_workloads.
# This may be replaced when dependencies are built.
