file(REMOVE_RECURSE
  "CMakeFiles/hscd_common.dir/config.cc.o"
  "CMakeFiles/hscd_common.dir/config.cc.o.d"
  "CMakeFiles/hscd_common.dir/log.cc.o"
  "CMakeFiles/hscd_common.dir/log.cc.o.d"
  "CMakeFiles/hscd_common.dir/stats.cc.o"
  "CMakeFiles/hscd_common.dir/stats.cc.o.d"
  "CMakeFiles/hscd_common.dir/strutil.cc.o"
  "CMakeFiles/hscd_common.dir/strutil.cc.o.d"
  "CMakeFiles/hscd_common.dir/table.cc.o"
  "CMakeFiles/hscd_common.dir/table.cc.o.d"
  "libhscd_common.a"
  "libhscd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
