# Empty compiler generated dependencies file for hscd_common.
# This may be replaced when dependencies are built.
