file(REMOVE_RECURSE
  "libhscd_common.a"
)
