file(REMOVE_RECURSE
  "libhscd_network.a"
)
