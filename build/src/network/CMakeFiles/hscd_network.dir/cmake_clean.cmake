file(REMOVE_RECURSE
  "CMakeFiles/hscd_network.dir/kruskal_snir.cc.o"
  "CMakeFiles/hscd_network.dir/kruskal_snir.cc.o.d"
  "libhscd_network.a"
  "libhscd_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
