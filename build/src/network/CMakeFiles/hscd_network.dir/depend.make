# Empty dependencies file for hscd_network.
# This may be replaced when dependencies are built.
