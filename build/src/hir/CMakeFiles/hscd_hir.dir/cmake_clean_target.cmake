file(REMOVE_RECURSE
  "libhscd_hir.a"
)
