file(REMOVE_RECURSE
  "CMakeFiles/hscd_hir.dir/builder.cc.o"
  "CMakeFiles/hscd_hir.dir/builder.cc.o.d"
  "CMakeFiles/hscd_hir.dir/expr.cc.o"
  "CMakeFiles/hscd_hir.dir/expr.cc.o.d"
  "CMakeFiles/hscd_hir.dir/printer.cc.o"
  "CMakeFiles/hscd_hir.dir/printer.cc.o.d"
  "CMakeFiles/hscd_hir.dir/program.cc.o"
  "CMakeFiles/hscd_hir.dir/program.cc.o.d"
  "libhscd_hir.a"
  "libhscd_hir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_hir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
