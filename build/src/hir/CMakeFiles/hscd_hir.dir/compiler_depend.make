# Empty compiler generated dependencies file for hscd_hir.
# This may be replaced when dependencies are built.
