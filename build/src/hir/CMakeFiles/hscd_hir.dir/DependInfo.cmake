
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hir/builder.cc" "src/hir/CMakeFiles/hscd_hir.dir/builder.cc.o" "gcc" "src/hir/CMakeFiles/hscd_hir.dir/builder.cc.o.d"
  "/root/repo/src/hir/expr.cc" "src/hir/CMakeFiles/hscd_hir.dir/expr.cc.o" "gcc" "src/hir/CMakeFiles/hscd_hir.dir/expr.cc.o.d"
  "/root/repo/src/hir/printer.cc" "src/hir/CMakeFiles/hscd_hir.dir/printer.cc.o" "gcc" "src/hir/CMakeFiles/hscd_hir.dir/printer.cc.o.d"
  "/root/repo/src/hir/program.cc" "src/hir/CMakeFiles/hscd_hir.dir/program.cc.o" "gcc" "src/hir/CMakeFiles/hscd_hir.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hscd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
