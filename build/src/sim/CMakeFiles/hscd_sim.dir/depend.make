# Empty dependencies file for hscd_sim.
# This may be replaced when dependencies are built.
