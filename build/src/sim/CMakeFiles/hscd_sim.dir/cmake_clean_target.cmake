file(REMOVE_RECURSE
  "libhscd_sim.a"
)
