file(REMOVE_RECURSE
  "CMakeFiles/hscd_sim.dir/interp.cc.o"
  "CMakeFiles/hscd_sim.dir/interp.cc.o.d"
  "CMakeFiles/hscd_sim.dir/machine.cc.o"
  "CMakeFiles/hscd_sim.dir/machine.cc.o.d"
  "CMakeFiles/hscd_sim.dir/trace.cc.o"
  "CMakeFiles/hscd_sim.dir/trace.cc.o.d"
  "libhscd_sim.a"
  "libhscd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hscd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
