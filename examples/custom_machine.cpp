/**
 * @file
 * Build a custom workload against the public API and sweep a machine
 * parameter from the command line - the "bring your own kernel" example.
 *
 *   $ ./custom_machine [key=value...]
 *   $ ./custom_machine scheme=hw procs=64 line_bytes=64 sched=dynamic
 */

#include <iostream>

#include "common/table.hh"
#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "sim/machine.hh"

using namespace hscd;

namespace {

/** A blocked 2-D heat solve with a halo exchange feel. */
hir::Program
heatSolver(std::int64_t n, int steps)
{
    hir::ProgramBuilder b;
    b.param("N", n);
    b.array("T0", {"N", "N"});
    b.array("T1", {"N", "N"});
    b.proc("MAIN", [&] {
        b.doserial("bi", 0, n - 1, [&] {
            b.doserial("bj", 0, n - 1, [&] {
                b.write("T0", {b.v("bi"), b.v("bj")});
            });
        });
        b.doserial("t", 0, steps - 1, [&] {
            b.doall("i", 1, n - 2, [&] {
                b.doserial("j", 1, n - 2, [&] {
                    b.read("T0", {b.v("i") - 1, b.v("j")});
                    b.read("T0", {b.v("i") + 1, b.v("j")});
                    b.read("T0", {b.v("i"), b.v("j") - 1});
                    b.read("T0", {b.v("i"), b.v("j") + 1});
                    b.compute(5);
                    b.write("T1", {b.v("i"), b.v("j")});
                });
            });
            b.doall("i2", 1, n - 2, [&] {
                b.doserial("j2", 1, n - 2, [&] {
                    b.read("T1", {b.v("i2"), b.v("j2")});
                    b.write("T0", {b.v("i2"), b.v("j2")});
                });
            });
        });
    });
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    Params params = MachineConfig::params();
    for (int a = 1; a < argc; ++a)
        params.parseAssignment(argv[a]);
    MachineConfig cfg = MachineConfig::fromParams(params);

    compiler::CompiledProgram cp =
        compiler::compileProgram(heatSolver(48, 4));

    std::cout << "running 48x48 heat solver on: " << cfg.str() << "\n\n";
    {
        sim::Machine m(cp, cfg);
        sim::RunResult r = m.run();
        std::cout << r.summary() << "\n\n";

        TextTable t;
        t.col("miss class", TextTable::Align::Left).col("count");
        t.row().cell("cold").cell(r.missCold);
        t.row().cell("replacement").cell(r.missReplacement);
        t.row().cell("true sharing").cell(r.missTrueShare);
        t.row().cell("false sharing").cell(r.missFalseShare);
        t.row().cell("conservative").cell(r.missConservative);
        t.row().cell("tag reset").cell(r.missTagReset);
        t.row().cell("uncached").cell(r.missUncached);
        t.print(std::cout);

        std::cout << "\nfull statistics tree:\n";
        m.statsRoot().dump(std::cout);
        return r.oracleViolations == 0 ? 0 : 1;
    }
}
