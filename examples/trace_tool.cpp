/**
 * @file
 * Trace workflow tool: capture a benchmark's memory-event trace to a
 * file, or replay a trace file through any coherence scheme.
 *
 *   $ ./trace_tool capture OCEAN ocean.trace
 *   $ ./trace_tool replay ocean.trace scheme=hw line_bytes=64
 */

#include <fstream>
#include <iostream>

#include "common/strutil.hh"
#include "compiler/analysis.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "workloads/workloads.hh"

using namespace hscd;

namespace {

int
doCapture(const std::string &bench, const std::string &path)
{
    compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::buildBenchmark(bench, 2));
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    sim::Machine m(cp, cfg);
    sim::TraceBuffer buf;
    m.setTraceSink(&buf);
    sim::RunResult r = m.run();

    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path);
    sim::writeTrace(os, buf.records(), cfg.procs,
                    cp.program.dataBytes());
    std::cout << csprintf("captured %d records (%d refs, %d epochs) "
                          "from %s into %s\n",
                          buf.records().size(), r.reads + r.writes,
                          r.epochs, bench, path);
    return 0;
}

int
doReplay(const std::string &path, const std::vector<std::string> &args)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '%s'", path);
    sim::ParsedTrace trace = sim::readTrace(is);

    Params params = MachineConfig::params();
    params.parseArgs(args);
    MachineConfig cfg = MachineConfig::fromParams(params);
    cfg.procs = trace.procs; // the trace fixes the processor count

    sim::ReplayResult r =
        sim::replayTrace(trace.records, cfg, trace.dataBytes);
    std::cout << csprintf(
        "replayed %d records on %s: reads=%d misses=%d (%.2f%%) "
        "conservative=%d false-share=%d traffic=%d words cycles=%d\n",
        trace.records.size(), schemeName(cfg.scheme), r.reads,
        r.readMisses, 100.0 * r.readMissRate, r.missConservative,
        r.missFalseShare, r.trafficWords, r.cycles);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.size() >= 3 && args[0] == "capture")
        return doCapture(args[1], args[2]);
    if (args.size() >= 2 && args[0] == "replay")
        return doReplay(args[1], {args.begin() + 2, args.end()});
    std::cerr << "usage:\n  trace_tool capture <benchmark> <file>\n"
                 "  trace_tool replay <file> [key=value...]\n";
    return 64;
}
