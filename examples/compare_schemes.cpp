/**
 * @file
 * Compare all four coherence schemes on one benchmark.
 *
 *   $ ./compare_schemes [benchmark] [key=value...]
 *   $ ./compare_schemes TRFD procs=32 line_bytes=64
 */

#include <iostream>

#include "common/table.hh"
#include "compiler/analysis.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "OCEAN";
    Params params = MachineConfig::params();
    for (int a = 2; a < argc; ++a)
        params.parseAssignment(argv[a]);

    compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::buildBenchmark(name, 2));
    std::cout << "benchmark " << name << ": " << cp.program.refCount()
              << " static refs, " << cp.graph.nodes().size()
              << " epoch nodes, "
              << cp.marking.stats().timeRead << " time-reads\n\n";

    TextTable t;
    t.col("scheme", TextTable::Align::Left)
        .col("cycles")
        .col("vs HW")
        .col("miss %")
        .col("avg miss lat")
        .col("traffic words")
        .col("unnecessary misses");
    Cycles hw_cycles = 0;
    struct Entry
    {
        SchemeKind k;
        sim::RunResult r;
    };
    std::vector<Entry> rows;
    for (SchemeKind k : {SchemeKind::Base, SchemeKind::SC, SchemeKind::VC,
                         SchemeKind::TPI, SchemeKind::HW})
    {
        MachineConfig cfg = MachineConfig::fromParams(params);
        cfg.scheme = k;
        sim::RunResult r = sim::simulate(cp, cfg);
        if (r.oracleViolations) {
            std::cerr << schemeName(k) << ": COHERENCE VIOLATION\n";
            return 1;
        }
        if (k == SchemeKind::HW)
            hw_cycles = r.cycles;
        rows.push_back({k, std::move(r)});
    }
    for (const Entry &e : rows) {
        t.row()
            .cell(schemeName(e.k))
            .cell(e.r.cycles)
            .cell(double(e.r.cycles) / double(hw_cycles), 2)
            .cell(100.0 * e.r.readMissRate, 2)
            .cell(e.r.avgMissLatency, 1)
            .cell(e.r.trafficWords)
            .cell(e.r.unnecessaryMisses());
    }
    t.print(std::cout);
    return 0;
}
