/**
 * @file
 * Batch experiment runner: sweep schemes x benchmarks under a common
 * machine configuration and emit CSV for external analysis.
 *
 *   $ ./sweep [key=value...] > results.csv
 *   $ ./sweep line_bytes=64 procs=32 sched=dynamic > results.csv
 *
 * Columns: benchmark, scheme, and the headline metrics of RunResult.
 */

#include <iostream>

#include "compiler/analysis.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;

int
main(int argc, char **argv)
{
    Params params = MachineConfig::params();
    for (int a = 1; a < argc; ++a)
        params.parseAssignment(argv[a]);

    std::cout << "benchmark,scheme,cycles,epochs,reads,writes,"
                 "read_misses,miss_rate,avg_miss_latency,time_reads,"
                 "time_read_hits,miss_cold,miss_replacement,"
                 "miss_true_share,miss_false_share,miss_conservative,"
                 "miss_tag_reset,traffic_words,busy_max,busy_avg,"
                 "imbalance,oracle_violations\n";

    for (const std::string &name : workloads::benchmarkNames()) {
        compiler::CompiledProgram cp =
            compiler::compileProgram(workloads::buildBenchmark(name, 2));
        for (SchemeKind k : {SchemeKind::Base, SchemeKind::SC,
                             SchemeKind::VC, SchemeKind::TPI,
                             SchemeKind::HW})
        {
            MachineConfig cfg = MachineConfig::fromParams(params);
            cfg.scheme = k;
            sim::RunResult r = sim::simulate(cp, cfg);
            std::cout << name << ',' << schemeName(k) << ',' << r.cycles
                      << ',' << r.epochs << ',' << r.reads << ','
                      << r.writes << ',' << r.readMisses << ','
                      << r.readMissRate << ',' << r.avgMissLatency << ','
                      << r.timeReads << ',' << r.timeReadHits << ','
                      << r.missCold << ',' << r.missReplacement << ','
                      << r.missTrueShare << ',' << r.missFalseShare << ','
                      << r.missConservative << ',' << r.missTagReset
                      << ',' << r.trafficWords << ',' << r.busyMax << ','
                      << r.busyAvg << ',' << r.imbalance() << ','
                      << r.oracleViolations << '\n';
            if (r.oracleViolations != 0) {
                std::cerr << "coherence violation in " << name << "/"
                          << schemeName(k) << "\n";
                return 1;
            }
        }
    }
    return 0;
}
