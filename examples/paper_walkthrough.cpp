/**
 * @file
 * Walkthrough of the paper's motivating example (its Figure 1 / Section
 * 2 discussion): a four-epoch program in which
 *
 *   - the read of X in epoch 2 follows a parallel write in epoch 1
 *     (a stale-reference sequence: must be marked),
 *   - the reads in epoch 3 "are issued by the same processor" as the
 *     epoch-1 writes, but the compiler cannot prove the scheduling -
 *     the TPI timetags recover those hits at run time,
 *   - the read of X(f(i)) in epoch 4 "cannot be analyzed precisely at
 *     compile time due to the unknown index value".
 *
 * The example prints the compiler's verdict for each reference and then
 * runs the program under SC and TPI to show the hardware recovering what
 * the compiler had to give up.
 */

#include <iostream>

#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "hir/printer.hh"
#include "sim/machine.hh"

using namespace hscd;

int
main()
{
    const std::int64_t n = 256;
    hir::ProgramBuilder b;
    b.param("N", n);
    b.array("X", {"N"});
    b.array("Y", {"N"});

    hir::RefId read2 = hir::invalidRef;
    hir::RefId read3 = hir::invalidRef;
    hir::RefId read4 = hir::invalidRef;

    b.proc("MAIN", [&] {
        // Epoch 1: DOALL writes X.
        b.doall("i1", 0, n - 1, [&] {
            b.compute(2);
            b.write("X", {b.v("i1")});
        });
        // Epoch 2: reads X written one epoch ago -> Time-Read(d).
        b.doall("i2", 0, n - 1, [&] {
            read2 = b.read("X", {b.v("i2")});
            b.write("Y", {b.v("i2")});
        });
        // Epoch 3: the same elements again; with an affine schedule the
        // same processor re-reads its epoch-2 data, but the compiler
        // cannot know the scheduling, so this is marked too.
        b.doall("i3", 0, n - 1, [&] {
            read3 = b.read("X", {b.v("i3")});
            b.compute(3);
        });
        // Epoch 4: X(f(i)) - unanalyzable subscript, whole-array threat.
        b.doall("i4", 0, n - 1, [&] {
            read4 = b.read("X", {b.unknown()});
        });
    });

    compiler::CompiledProgram cp = compiler::compileProgram(b.build());
    std::cout << hir::programToString(cp.program) << "\n";
    std::cout << "compiler verdicts (the paper's discussion, verbatim):\n";
    std::cout << "  epoch-2 read X(i): "
              << cp.marking.mark(read2).str() << "\n";
    std::cout << "  epoch-3 read X(i): "
              << cp.marking.mark(read3).str()
              << "   <- same processor at run time, unknowable "
                 "statically\n";
    std::cout << "  epoch-4 read X(f(i)): "
              << cp.marking.mark(read4).str()
              << "   <- unknown subscript\n\n";

    for (SchemeKind k : {SchemeKind::SC, SchemeKind::TPI}) {
        MachineConfig cfg;
        cfg.scheme = k;
        sim::RunResult r = sim::simulate(cp, cfg);
        double hit = r.timeReads
                         ? 100.0 * double(r.timeReadHits) /
                               double(r.timeReads)
                         : 0.0;
        std::cout << schemeName(k) << ": miss rate "
                  << 100.0 * r.readMissRate << "%, marked-read hit rate "
                  << hit << "%, cycles " << r.cycles
                  << (k == SchemeKind::TPI
                          ? "  <- timetags recover the epoch-3 reuse"
                          : "")
                  << "\n";
        if (r.oracleViolations)
            return 1;
    }
    return 0;
}
