/**
 * @file
 * Quickstart: build a small parallel program, run the coherence
 * compiler, and simulate it under the TPI scheme.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "hir/printer.hh"
#include "sim/machine.hh"

using namespace hscd;

int
main()
{
    // 1. Describe the parallelized program (what Polaris would emit):
    //    a time loop around a DOALL that updates a vector in place.
    hir::ProgramBuilder b;
    b.param("N", 512);
    b.array("X", {"N"});
    b.array("COEF", {"N"}); // read-only table
    b.proc("MAIN", [&] {
        b.doserial("init", 0, 511, [&] { b.write("X", {b.v("init")}); });
        b.doserial("t", 0, 9, [&] {
            b.doall("i", 0, 511, [&] {
                b.read("X", {b.v("i")});     // written 2 epochs ago
                b.read("COEF", {b.v("i")});  // never written: no marking
                b.compute(3);
                b.write("X", {b.v("i")});
            });
        });
    });
    hir::Program program = b.build();
    std::cout << "--- program ---\n"
              << hir::programToString(program) << "\n";

    // 2. Run the coherence compiler: epoch partitioning + Time-Read
    //    marking with epoch distances.
    compiler::CompiledProgram cp =
        compiler::compileProgram(std::move(program));
    std::cout << "--- epoch flow graph ---\n" << cp.graph.str() << "\n";
    std::cout << "--- reference marking ---\n"
              << cp.marking.describe(cp.program) << "\n";

    // 3. Simulate on a 16-processor T3D-like machine under TPI.
    MachineConfig cfg; // the paper's Figure 8 defaults
    cfg.scheme = SchemeKind::TPI;
    sim::RunResult r = sim::simulate(cp, cfg);

    std::cout << "--- run ---\n" << r.summary() << "\n";
    std::cout << "time-read hit rate: "
              << (r.timeReads ? 100.0 * double(r.timeReadHits) /
                                    double(r.timeReads)
                              : 0.0)
              << "% (block scheduling keeps tasks on their processors,"
                 " so the timetags recover the inter-task locality)\n";
    return r.oracleViolations == 0 ? 0 : 1;
}
