/**
 * @file
 * Inter-task communication example (paper Section 5): a doacross-style
 * wavefront where task i consumes task i-1's result within a single
 * epoch, ordered by post/wait flags. Shows the compiler marking the
 * sync-ordered reads as bypass and the executor honouring release
 * semantics (the producer's write buffer drains at the post).
 *
 *   $ ./doacross [n]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/analysis.hh"
#include "hir/builder.hh"
#include "hir/printer.hh"
#include "sim/machine.hh"

using namespace hscd;

int
main(int argc, char **argv)
{
    const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 64;

    hir::ProgramBuilder b;
    b.param("N", n);
    b.array("WAVE", {"N"});
    b.array("LOCAL", {"N"});
    b.proc("MAIN", [&] {
        b.write("WAVE", {b.c(0)});
        b.doall("i", 1, n - 1, [&] {
            b.compute(20);               // independent local work
            b.write("LOCAL", {b.v("i")});
            b.post(0);                   // seed for task 1's wait
            b.wait(b.v("i") - 1);        // predecessor's result ready
            b.read("WAVE", {b.v("i") - 1});
            b.compute(4);
            b.write("WAVE", {b.v("i")});
            b.post(b.v("i"));
        });
        b.read("WAVE", {b.p("N") - 1});
    });

    compiler::CompiledProgram cp =
        compiler::compileProgram(b.build());
    std::cout << hir::programToString(cp.program) << "\n";
    std::cout << "marking (note bypass(sync) on the wavefront read):\n"
              << cp.marking.describe(cp.program) << "\n";

    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 8;
    sim::RunResult r = sim::simulate(cp, cfg);
    std::cout << r.summary() << "\n";
    std::cout << "the wavefront serializes the epoch: busy imbalance "
              << r.imbalance() << ", but every value arrives intact ("
              << r.oracleViolations << " stale reads).\n";
    return r.oracleViolations == 0 ? 0 : 1;
}
