/**
 * @file
 * Compiler explorer: dump every compile-time artifact - the pseudo-
 * Fortran source, the epoch flow graph, per-procedure MOD/USE summaries,
 * and the final reference marking - for a chosen workload.
 *
 *   $ ./compiler_explorer [benchmark|micro-name] [--no-affinity]
 *                         [--symbolic]
 */

#include <cstring>
#include <iostream>

#include "compiler/analysis.hh"
#include "hir/printer.hh"
#include "workloads/workloads.hh"

using namespace hscd;

namespace {

hir::Program
buildByName(const std::string &name)
{
    if (name == "jacobi")
        return workloads::microJacobi(64, 3);
    if (name == "matmul")
        return workloads::microMatmul(8);
    if (name == "reduction")
        return workloads::microReduction(64, 2);
    if (name == "transpose")
        return workloads::microTranspose(8, 2);
    if (name == "pipeline")
        return workloads::microPipeline(64, 2);
    if (name == "lu")
        return workloads::microLu(10);
    if (name == "fft")
        return workloads::microFft(64, 2);
    return workloads::buildBenchmark(name, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "jacobi";
    compiler::AnalysisOptions opts;
    for (int a = 2; a < argc; ++a) {
        if (std::strcmp(argv[a], "--no-affinity") == 0)
            opts.assumeSerialAffinity = false;
        if (std::strcmp(argv[a], "--symbolic") == 0)
            opts.symbolicParams = true;
    }

    compiler::CompiledProgram cp =
        compiler::compileProgram(buildByName(name), opts);

    std::cout << "=============== source (" << name << ") ===============\n";
    hir::printProgram(std::cout, cp.program);

    std::cout << "\n=============== epoch flow graph ===============\n";
    std::cout << cp.graph.str();

    std::cout << "\n=============== procedure summaries ===============\n";
    for (hir::ProcIndex p = 0; p < cp.program.procedures().size(); ++p) {
        const compiler::ProcSummary &s = cp.summaries[p];
        std::cout << cp.program.procedures()[p].name << ": "
                  << (s.hasBoundary ? "crosses epochs" : "epoch-local")
                  << ", " << s.directRefs << " direct / " << s.totalRefs
                  << " total refs\n"
                  << "  MOD " << s.mod.str() << "\n"
                  << "  USE " << s.use.str() << "\n";
    }

    std::cout << "\n=============== reference marking ===============\n";
    std::cout << cp.marking.describe(cp.program);

    const compiler::MarkingStats &st = cp.marking.stats();
    std::cout << "\nreads " << st.reads << ": " << st.readOnly
              << " read-only, " << st.covered << " covered, "
              << st.affinity << " affinity, " << st.timeRead
              << " time-read, " << st.bypass << " bypass\n";
    return 0;
}
