/**
 * @file
 * W1: the synthetic workload families (seed 1, scale 2) under every
 * scheme. Each family isolates one sharing pattern - streaming,
 * dense reuse, producer-consumer, stencil halos, migratory chunks,
 * line-level false sharing - so the scheme ranking per row shows which
 * pattern favors which coherence strategy, and how those verdicts
 * compare with the Perfect Club kernels of Figure 11 (EXPERIMENTS.md
 * carries the pinned table and the flips).
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/synth.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "W1",
                "synthetic families, read miss rate (percent), seed 1, "
                "scale 2",
                cfg);

    const SchemeKind schemes[] = {SchemeKind::Base, SchemeKind::SC,
                                  SchemeKind::VC, SchemeKind::TPI,
                                  SchemeKind::HW};
    const std::vector<std::string> families = workloads::synthFamilies();

    Sweep sweep(opts, "W1");
    for (const std::string &f : families)
        for (SchemeKind k : schemes)
            sweep.add("synth:" + f + ":1", makeConfig(k), /*scale=*/2);
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("family", TextTable::Align::Left)
        .col("reads")
        .col("BASE%")
        .col("SC%")
        .col("VC%")
        .col("TPI%")
        .col("HW%")
        .col("ranking", TextTable::Align::Left);
    std::size_t cell = 0;
    for (const std::string &f : families) {
        double pct[5];
        Counter reads = 0;
        for (int s = 0; s < 5; ++s) {
            const sim::RunResult &r = sweep[cell++];
            reads = r.reads;
            pct[s] = 100.0 * r.readMissRate;
        }
        t.row().cell(f).cell(reads);
        for (int s = 0; s < 5; ++s)
            t.cell(pct[s], 2);
        // Rank best-to-worst by miss rate (stable: ties keep the
        // BASE, SC, VC, TPI, HW declaration order).
        int order[5] = {0, 1, 2, 3, 4};
        std::stable_sort(order, order + 5,
                         [&](int a, int b) { return pct[a] < pct[b]; });
        std::string rank;
        for (int s = 0; s < 5; ++s)
            rank += std::string(schemeName(schemes[order[s]])) +
                    (s == 4 ? "" : " < ");
        t.cell(rank);
    }
    t.print(std::cout);
    std::cout << "\nranking reads best-to-worst by read miss rate; see "
                 "EXPERIMENTS.md (W1) for the pinned table and how the "
                 "verdicts compare with the Figure 11 kernels.\n";
    sweep.finish(std::cout);
    return 0;
}
