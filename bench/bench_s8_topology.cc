/**
 * @file
 * S8: interconnect topology. The Cray T3D the paper targets is a 3-D
 * torus; the simulation used a multistage-network model [24]. This
 * experiment runs both analytic topologies and checks that the scheme
 * comparison is insensitive to the choice (the paper's conclusions do
 * not hinge on the MIN).
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S8",
                "MIN vs 3-D torus interconnect (64 processors)", cfg);

    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S8");
    for (const std::string &name : names) {
        for (SchemeKind k : {SchemeKind::TPI, SchemeKind::HW}) {
            for (Topology topo : {Topology::MIN, Topology::Torus3D}) {
                MachineConfig cc = makeConfig(k);
                cc.procs = 64; // higher load: contention becomes visible
                cc.topology = topo;
                sweep.add(name + "/" + schemeName(k) + "/" +
                              (topo == Topology::MIN ? "min" : "torus"),
                          name, cc);
            }
        }
    }
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("TPI min")
        .col("TPI torus")
        .col("HW min")
        .col("HW torus")
        .col("TPI/HW min")
        .col("TPI/HW torus");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        Cycles c[2][2];
        for (int i = 0; i < 2; ++i)
            for (int j = 0; j < 2; ++j)
                c[i][j] = sweep[cell++].cycles;
        t.row()
            .cell(name)
            .cell(c[0][0])
            .cell(c[0][1])
            .cell(c[1][0])
            .cell(c[1][1])
            .cell(double(c[0][0]) / double(c[1][0]), 2)
            .cell(double(c[0][1]) / double(c[1][1]), 2);
    }
    t.print(std::cout);
    std::cout
        << "\nthe TPI/HW ratio is identical across topologies: the "
           "coherence comparison does not depend on the interconnect "
           "model. (At P = 64 the agreement is exact by algebra: a "
           "radix-2 MIN's 6 half-discounted stages contend like the "
           "4-ary torus's 3 full-rate hops - 6*rho*(1-1/2) = 3*rho.)\n";
    sweep.finish(std::cout);
    return 0;
}
