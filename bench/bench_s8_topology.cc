/**
 * @file
 * S8: interconnect topology. The Cray T3D the paper targets is a 3-D
 * torus; the simulation used a multistage-network model [24]. This
 * experiment runs both analytic topologies and checks that the scheme
 * comparison is insensitive to the choice (the paper's conclusions do
 * not hinge on the MIN).
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S8",
                "MIN vs 3-D torus interconnect (64 processors)", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("TPI min")
        .col("TPI torus")
        .col("HW min")
        .col("HW torus")
        .col("TPI/HW min")
        .col("TPI/HW torus");
    for (const std::string &name : workloads::benchmarkNames()) {
        Cycles c[2][2];
        int i = 0;
        for (SchemeKind k : {SchemeKind::TPI, SchemeKind::HW}) {
            int j = 0;
            for (Topology topo : {Topology::MIN, Topology::Torus3D}) {
                MachineConfig cc = makeConfig(k);
                cc.procs = 64; // higher load: contention becomes visible
                cc.topology = topo;
                sim::RunResult r = runBenchmark(name, cc);
                requireSound(r, name);
                c[i][j++] = r.cycles;
            }
            ++i;
        }
        t.row()
            .cell(name)
            .cell(c[0][0])
            .cell(c[0][1])
            .cell(c[1][0])
            .cell(c[1][1])
            .cell(double(c[0][0]) / double(c[1][0]), 2)
            .cell(double(c[0][1]) / double(c[1][1]), 2);
    }
    t.print(std::cout);
    std::cout
        << "\nthe TPI/HW ratio is identical across topologies: the "
           "coherence comparison does not depend on the interconnect "
           "model. (At P = 64 the agreement is exact by algebra: a "
           "radix-2 MIN's 6 half-discounted stages contend like the "
           "4-ary torus's 3 full-rate hops - 6*rho*(1-1/2) = 3*rho.)\n";
    return 0;
}
