/**
 * @file
 * Figure 5: storage overhead of a full-map directory, a LimitLess
 * (DirNB-i) directory, and the TPI timetags, as functions of P, L, C, M.
 */

#include <iostream>

#include "common/table.hh"
#include "mem/storage_model.hh"

using namespace hscd;
using namespace hscd::mem;

int
main()
{
    std::cout << "== F5: coherence storage overhead (paper Figure 5) ==\n";
    std::cout << "P procs, L words/block, C cache blocks/node, M memory "
                 "blocks/node, i = 10 LimitLess pointers, 8-bit tags\n\n";

    {
        StorageParams p; // the paper's P = 1024 design point
        TextTable t;
        t.col("scheme", TextTable::Align::Left)
            .col("cache SRAM formula", TextTable::Align::Left)
            .col("memory DRAM formula", TextTable::Align::Left)
            .col("SRAM")
            .col("DRAM");
        auto full = fullMapOverhead(p);
        auto lim = limitlessOverhead(p);
        auto tpi = tpiOverhead(p);
        t.row()
            .cell("full-map directory")
            .cell("2*C*P")
            .cell("(P+2)*M*P")
            .cell(formatBits(full.cacheSramBits))
            .cell(formatBits(full.memoryDramBits));
        t.row()
            .cell("LimitLess DirNB-10")
            .cell("2*C*P")
            .cell("(i+2)*M*P")
            .cell(formatBits(lim.cacheSramBits))
            .cell(formatBits(lim.memoryDramBits));
        t.row()
            .cell("TPI (this paper)")
            .cell("8*L*C*P")
            .cell("none")
            .cell(formatBits(tpi.cacheSramBits))
            .cell("0.0 B");
        std::cout << "P = 1024, L = 4, C = 16K blocks, M = 512K blocks\n";
        t.print(std::cout);
    }

    {
        // Scaling with the processor count: the directory DRAM overhead
        // grows as P^2 while TPI stays proportional to total cache.
        TextTable t;
        t.col("P").col("full-map total").col("LimitLess total")
            .col("TPI total");
        for (std::uint64_t procs : {64u, 256u, 1024u, 4096u}) {
            StorageParams p;
            p.procs = procs;
            t.row()
                .cell(procs)
                .cell(formatBits(fullMapOverhead(p).totalBits()))
                .cell(formatBits(limitlessOverhead(p).totalBits()))
                .cell(formatBits(tpiOverhead(p).totalBits()));
        }
        std::cout << "\nscaling with P (L=4, C=16K, M=512K per node):\n";
        t.print(std::cout);
    }

    {
        // Timetag width knob (TPI's only cost lever).
        TextTable t;
        t.col("timetag bits").col("TPI SRAM");
        for (unsigned bits : {2u, 4u, 8u, 16u}) {
            StorageParams p;
            p.timetagBits = bits;
            t.row().cell(bits).cell(
                formatBits(tpiOverhead(p).cacheSramBits));
        }
        std::cout << "\nTPI overhead vs timetag width (P = 1024):\n";
        t.print(std::cout);
    }
    return 0;
}
