/**
 * @file
 * A2: scheduling study - load imbalance vs locality. Triangular loops
 * (TRFD) unbalance block schedules; dynamic self-scheduling rebalances
 * but scrambles TPI's processor affinity. Reports both effects plus the
 * dynamic chunk-size trade-off.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "A2",
                "scheduling: load balance vs processor affinity", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("schedule", TextTable::Align::Left)
        .col("imbalance")
        .col("time-read hit %")
        .col("cycles");
    for (const std::string &name : workloads::benchmarkNames()) {
        for (SchedPolicy s : {SchedPolicy::Block, SchedPolicy::Cyclic,
                              SchedPolicy::Dynamic})
        {
            MachineConfig c = makeConfig(SchemeKind::TPI);
            c.sched = s;
            sim::RunResult r = runBenchmark(name, c);
            requireSound(r, name);
            double hit = r.timeReads ? 100.0 * double(r.timeReadHits) /
                                           double(r.timeReads)
                                     : 0.0;
            t.row()
                .cell(name)
                .cell(schedName(s))
                .cell(r.imbalance(), 2)
                .cell(hit, 1)
                .cell(r.cycles);
        }
        t.rule();
    }
    t.print(std::cout);

    std::cout << "\ndynamic chunk size on TRFD (triangular loops):\n";
    TextTable d;
    d.col("chunk").col("imbalance").col("time-read hit %").col("cycles");
    for (unsigned chunk : {1u, 2u, 4u, 8u, 16u}) {
        MachineConfig c = makeConfig(SchemeKind::TPI);
        c.sched = SchedPolicy::Dynamic;
        c.dynamicChunk = chunk;
        sim::RunResult r = runBenchmark("TRFD", c);
        requireSound(r, "TRFD");
        double hit = r.timeReads ? 100.0 * double(r.timeReadHits) /
                                       double(r.timeReads)
                                 : 0.0;
        d.row()
            .cell(chunk)
            .cell(r.imbalance(), 2)
            .cell(hit, 1)
            .cell(r.cycles);
    }
    d.print(std::cout);
    return 0;
}
