/**
 * @file
 * Parallel sweep engine for the experiment binaries.
 *
 * Every figure/table binary is a (scheme x workload x config) sweep of
 * independent simulations. The engine runs those cells on a thread pool
 * and aggregates the results in **submission order**, so the printed
 * tables and the JSON results file are bit-identical at any --jobs
 * value (--jobs 1 runs inline, reproducing the historical serial
 * behavior exactly). Determinism is enforced forever by
 * tests/test_sweep_determinism.cc and tests/test_fault_determinism.cc.
 *
 * Resilience (PR 4): cells are isolated from each other. A cell that
 * throws becomes a structured "error" field in the JSON instead of
 * killing the sweep; `--timeout-ms` bounds each cell's wall clock;
 * `--checkpoint PATH` journals every completed cell so an interrupted
 * sweep restarted with `--resume` skips finished work and still writes
 * byte-identical final output; `--fault SPEC` threads a fault-injection
 * plan through every cell (each cell gets an independent per-cell seed
 * derived from the campaign seed, see fault::planForCell).
 *
 * Typical binary structure:
 *
 *   SweepOptions opts = SweepOptions::parse(argc, argv);
 *   Sweep sweep(opts, "F11");
 *   for (...) sweep.add(name, cfg);      // phase 1: enqueue cells
 *   sweep.run();                         // phase 2: simulate (parallel)
 *   ... sweep[i] ...                     // phase 3: render in add order
 *   sweep.finish(std::cout);             // JSON + wall-clock line
 */

#ifndef HSCD_BENCH_SWEEP_HH
#define HSCD_BENCH_SWEEP_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "fault/plan.hh"
#include "harness.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "obs/timeline.hh"
#include "sim/result.hh"

namespace hscd {
namespace bench {

/** Command-line options shared by every sweep binary. */
struct SweepOptions
{
    /** Worker threads; 0 means hardware concurrency, 1 means serial. */
    unsigned jobs = 0;
    /** Write machine-readable results here ("" disables). */
    std::string jsonPath;
    /** Fault-injection campaign applied to every cell (default: off). */
    fault::FaultPlan fault;
    /** Per-cell wall-clock budget in ms; 0 disables the timeout. */
    double timeoutMs = 0;
    /**
     * Whole-campaign wall-clock budget in ms; 0 disables it. On expiry
     * the remaining cells are skipped (transient, never journaled) and
     * the sweep exits verify::ExitAbort after checkpointing.
     */
    double deadlineMs = 0;
    /** Journal completed cells here ("" disables checkpointing). */
    std::string checkpointPath;
    /** Skip cells already recorded in the checkpoint journal. */
    bool resume = false;
    /** Write a Perfetto timeline of the observed cell ("" disables). */
    std::string traceOut;
    /** Metrics sampling spec for the observed cell ("" disables). */
    std::string metricsSpec;
    /** Metrics series output path (defaults to "metrics.json"). */
    std::string metricsOut = "metrics.json";
    /** Label substring picking the observed cell (default: cell 0). */
    std::string observeCell;
    /** Profile every cell's phases into the JSON output. */
    bool profile = false;

    /**
     * Parse `--jobs/-j N`, `--json PATH`, `--fault SPEC`,
     * `--timeout-ms N`, `--deadline-ms N`, `--checkpoint PATH`,
     * `--resume`, `--trace-out PATH`, `--metrics SPEC`,
     * `--metrics-out PATH`, `--cell SUBSTR` and `--profile` (plus
     * --help); exits with verify::ExitUsage on anything unrecognized so
     * typos never silently change a sweep. Also installs the
     * SIGINT/SIGTERM handlers that map a graceful interrupt onto
     * verify::ExitAbort.
     */
    static SweepOptions parse(int argc, char **argv);
};

class Sweep
{
  public:
    Sweep(SweepOptions opts, std::string experiment);

    /**
     * Enqueue one runBenchmark() cell; returns its index. The label
     * (default "benchmark/scheme") only feeds the JSON output. When the
     * options carry a fault plan, the cell's config gets the derived
     * per-cell plan before it is captured.
     */
    std::size_t add(const std::string &benchmark, const MachineConfig &cfg,
                    int scale = 2, bool affinity = true);
    std::size_t add(std::string label, const std::string &benchmark,
                    const MachineConfig &cfg, int scale = 2,
                    bool affinity = true);

    /** Enqueue an arbitrary simulation cell (custom program, etc.). */
    std::size_t addCustom(std::string label,
                          std::function<sim::RunResult()> runCell);

    /**
     * Simulate every cell on opts.jobs threads. Results land in add()
     * order regardless of completion order; callable once. Never throws
     * for a failing cell: exceptions, timeouts and aborts become
     * per-cell state queryable via error()/operator[].
     */
    void run();

    std::size_t size() const { return _cells.size(); }

    /**
     * Result of cell @p i (run() must have completed). For an errored
     * cell this is the default RunResult; check error() first.
     */
    const sim::RunResult &operator[](std::size_t i) const;

    /** Harness error for cell @p i ("" when the cell ran to an end). */
    const std::string &error(std::size_t i) const;

    /**
     * requireSound() on every completed cell, labelled for blame; a
     * harness error (exception/timeout) exits verify::ExitInternal.
     */
    void requireAllSound() const;

    /**
     * Epilogue: emit the JSON file when --json was given and print the
     * wall-clock line (the only output allowed to vary across --jobs).
     */
    void finish(std::ostream &os) const;

    const SweepOptions &options() const { return _opts; }

    /** Provenance stamped on every JSON artifact this sweep writes. */
    obs::Provenance provenance(const std::string &schema) const;

  private:
    struct Cell
    {
        std::string label;
        std::string benchmark; ///< empty for custom cells
        std::string scheme;    ///< empty for custom cells
        int scale = 0;
        bool affinity = true;
        MachineConfig cfg;     ///< meaningful only when hasCfg
        bool hasCfg = false;
        std::function<sim::RunResult()> runCell;
    };

    /** Per-cell outcome: a result, or a harness error explaining why. */
    struct Outcome
    {
        sim::RunResult result;
        std::string error;
        /**
         * True for cells skipped by a signal or --deadline-ms: never
         * journaled (a --resume must re-run them) and excused from
         * soundness checks; their presence turns the process exit code
         * into verify::ExitAbort.
         */
        bool transient = false;
    };

    Outcome runGuarded(std::size_t i) const;
    std::uint64_t journalIdentity() const;
    /** Exit verify::ExitAbort if any cell was skipped (signal/deadline). */
    void exitIfAborted() const;
    void writeJson() const;
    /** Attach recorders to the observed cell (run() prologue). */
    void setupObservers();
    /** Write --trace-out / metrics artifacts (finish() epilogue). */
    void writeObservability(std::ostream &os) const;

    SweepOptions _opts;
    std::string _experiment;
    std::vector<Cell> _cells;
    std::vector<Outcome> _results;
    /** Recorders for the observed cell (null when not requested). */
    std::unique_ptr<obs::Timeline> _timeline;
    std::unique_ptr<obs::MetricsRecorder> _metrics;
    std::size_t _obsIndex = static_cast<std::size_t>(-1);
    double _wallMs = 0;
    bool _ran = false;
};

} // namespace bench
} // namespace hscd

#endif // HSCD_BENCH_SWEEP_HH
