/**
 * @file
 * Parallel sweep engine for the experiment binaries.
 *
 * Every figure/table binary is a (scheme x workload x config) sweep of
 * independent simulations. The engine runs those cells on a thread pool
 * and aggregates the results in **submission order**, so the printed
 * tables and the JSON results file are bit-identical at any --jobs
 * value (--jobs 1 runs inline, reproducing the historical serial
 * behavior exactly). Determinism is enforced forever by
 * tests/test_sweep_determinism.cc.
 *
 * Typical binary structure:
 *
 *   SweepOptions opts = SweepOptions::parse(argc, argv);
 *   Sweep sweep(opts, "F11");
 *   for (...) sweep.add(name, cfg);      // phase 1: enqueue cells
 *   sweep.run();                         // phase 2: simulate (parallel)
 *   ... sweep[i] ...                     // phase 3: render in add order
 *   sweep.finish(std::cout);             // JSON + wall-clock line
 */

#ifndef HSCD_BENCH_SWEEP_HH
#define HSCD_BENCH_SWEEP_HH

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "harness.hh"
#include "sim/result.hh"

namespace hscd {
namespace bench {

/** Command-line options shared by every sweep binary. */
struct SweepOptions
{
    /** Worker threads; 0 means hardware concurrency, 1 means serial. */
    unsigned jobs = 0;
    /** Write machine-readable results here ("" disables). */
    std::string jsonPath;

    /**
     * Parse `--jobs/-j N` and `--json PATH` (plus --help); fatal() on
     * anything unrecognized so typos never silently change a sweep.
     */
    static SweepOptions parse(int argc, char **argv);
};

class Sweep
{
  public:
    Sweep(SweepOptions opts, std::string experiment);

    /**
     * Enqueue one runBenchmark() cell; returns its index. The label
     * (default "benchmark/scheme") only feeds the JSON output.
     */
    std::size_t add(const std::string &benchmark, const MachineConfig &cfg,
                    int scale = 2, bool affinity = true);
    std::size_t add(std::string label, const std::string &benchmark,
                    const MachineConfig &cfg, int scale = 2,
                    bool affinity = true);

    /** Enqueue an arbitrary simulation cell (custom program, etc.). */
    std::size_t addCustom(std::string label,
                          std::function<sim::RunResult()> runCell);

    /**
     * Simulate every cell on opts.jobs threads. Results land in add()
     * order regardless of completion order; callable once.
     */
    void run();

    std::size_t size() const { return _cells.size(); }

    /** Result of cell @p i (run() must have completed). */
    const sim::RunResult &operator[](std::size_t i) const;

    /** requireSound() on every completed cell, labelled for blame. */
    void requireAllSound() const;

    /**
     * Epilogue: emit the JSON file when --json was given and print the
     * wall-clock line (the only output allowed to vary across --jobs).
     */
    void finish(std::ostream &os) const;

    const SweepOptions &options() const { return _opts; }

  private:
    struct Cell
    {
        std::string label;
        std::string benchmark; ///< empty for custom cells
        std::string scheme;    ///< empty for custom cells
        int scale = 0;
        bool affinity = true;
        std::function<sim::RunResult()> runCell;
    };

    void writeJson() const;

    SweepOptions _opts;
    std::string _experiment;
    std::vector<Cell> _cells;
    std::vector<sim::RunResult> _results;
    double _wallMs = 0;
    bool _ran = false;
};

} // namespace bench
} // namespace hscd

#endif // HSCD_BENCH_SWEEP_HH
