#include "harness.hh"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/log.hh"
#include "common/strutil.hh"
#include "verify/diagnostic.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace bench {

MachineConfig
makeConfig(SchemeKind scheme)
{
    MachineConfig c; // defaults are the paper's Figure 8 values
    c.scheme = scheme;
    return c;
}

void
printHeader(std::ostream &os, const std::string &experiment,
            const std::string &what, const MachineConfig &cfg)
{
    os << "== " << experiment << ": " << what << " ==\n";
    os << csprintf(
        "config (Figure 8): %d procs | %dKB %s cache, %dB lines | "
        "hit %d cy | base miss %d cy | %d-bit timetags | two-phase reset "
        "%d cy | Kruskal-Snir MIN radix %d\n",
        cfg.procs, cfg.cacheBytes / 1024,
        cfg.assoc == 1 ? "direct-mapped"
                       : csprintf("%d-way", cfg.assoc).c_str(),
        cfg.lineBytes, cfg.hitCycles, cfg.baseMissCycles, cfg.timetagBits,
        cfg.twoPhaseResetCycles, cfg.networkRadix);
}

const compiler::CompiledProgram &
compiledBenchmark(const std::string &name, int scale, bool affinity)
{
    // Insert-once, thread-safe: entries are heap-allocated and never
    // erased, so a returned reference stays valid for the process
    // lifetime even while other threads keep inserting. (The previous
    // unsynchronized map raced on concurrent first-touch and could hand
    // out references into a map mid-mutation.)
    using Key = std::tuple<std::string, int, bool>;
    static std::mutex mtx;
    static std::map<Key, std::unique_ptr<compiler::CompiledProgram>> cache;

    Key key{toLower(name), scale, affinity};
    {
        std::lock_guard<std::mutex> lk(mtx);
        auto it = cache.find(key);
        if (it != cache.end())
            return *it->second;
    }

    // Compile outside the lock so independent programs compile in
    // parallel; compilation is deterministic, so if two threads race on
    // the same key the losers' copies are equivalent and discarded.
    compiler::AnalysisOptions opts;
    opts.assumeSerialAffinity = affinity;
    auto cp = std::make_unique<compiler::CompiledProgram>(
        compiler::compileProgram(workloads::buildBenchmark(name, scale),
                                 opts));

    std::lock_guard<std::mutex> lk(mtx);
    auto it = cache.try_emplace(std::move(key), std::move(cp)).first;
    return *it->second;
}

sim::RunResult
runBenchmark(const std::string &name, const MachineConfig &cfg, int scale,
             bool affinity)
{
    return sim::simulate(compiledBenchmark(name, scale, affinity), cfg);
}

sim::RunResult
runBenchmarkObserved(const std::string &name, const MachineConfig &cfg,
                     int scale, bool affinity, const RunObservers &o)
{
    obs::PhaseProfile pre;
    const compiler::CompiledProgram *cp;
    {
        obs::PhaseTimer t(o.profile ? &pre.compileMs : nullptr);
        cp = &compiledBenchmark(name, scale, affinity);
    }
    std::unique_ptr<sim::Machine> m;
    {
        obs::PhaseTimer t(o.profile ? &pre.scheduleMs : nullptr);
        m = std::make_unique<sim::Machine>(*cp, cfg);
    }
    m->setTimeline(o.timeline);
    m->setMetrics(o.metrics);
    m->enableProfiling(o.profile);
    sim::RunResult r = m->run();
    if (o.profile) {
        r.profile.compileMs += pre.compileMs;
        r.profile.scheduleMs += pre.scheduleMs;
    }
    return r;
}

obs::Timeline::Naming
timelineNaming()
{
    obs::Timeline::Naming n;
    n.missClass = [](std::uint8_t v) {
        return std::string(
            mem::missClassName(static_cast<mem::MissClass>(v)));
    };
    n.markKind = [](std::uint8_t v) {
        switch (static_cast<compiler::MarkKind>(v)) {
          case compiler::MarkKind::Normal: return std::string("normal");
          case compiler::MarkKind::TimeRead:
            return std::string("time-read");
          case compiler::MarkKind::Bypass: return std::string("bypass");
        }
        return csprintf("mark%d", unsigned(v));
    };
    return n;
}

void
requireSound(const sim::RunResult &r, const std::string &label)
{
    // Exit codes follow verify::ExitCode: 3 for a detected soundness
    // violation, 4 for a structured abort - distinguishable from usage
    // errors (2) by campaign drivers and CI.
    if (r.oracleViolations != 0 || r.doallViolations != 0 ||
        r.shadowViolations != 0) {
        warn("%s: %d oracle / %d race / %d shadow violations - "
             "experiment invalid",
             label, r.oracleViolations, r.doallViolations,
             r.shadowViolations);
        std::exit(verify::ExitViolation);
    }
    if (r.aborted()) {
        warn("%s: run aborted (%s: %s) - experiment invalid", label,
             fault::abortKindName(r.abort.kind), r.abort.reason);
        std::exit(verify::ExitAbort);
    }
}

} // namespace bench
} // namespace hscd
