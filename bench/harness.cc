#include "harness.hh"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "common/log.hh"
#include "common/strutil.hh"
#include "verify/diagnostic.hh"
#include "workloads/workloads.hh"

namespace hscd {
namespace bench {

MachineConfig
makeConfig(SchemeKind scheme)
{
    MachineConfig c; // defaults are the paper's Figure 8 values
    c.scheme = scheme;
    return c;
}

void
printHeader(std::ostream &os, const std::string &experiment,
            const std::string &what, const MachineConfig &cfg)
{
    os << "== " << experiment << ": " << what << " ==\n";
    os << csprintf(
        "config (Figure 8): %d procs | %dKB %s cache, %dB lines | "
        "hit %d cy | base miss %d cy | %d-bit timetags | two-phase reset "
        "%d cy | Kruskal-Snir MIN radix %d\n",
        cfg.procs, cfg.cacheBytes / 1024,
        cfg.assoc == 1 ? "direct-mapped"
                       : csprintf("%d-way", cfg.assoc).c_str(),
        cfg.lineBytes, cfg.hitCycles, cfg.baseMissCycles, cfg.timetagBits,
        cfg.twoPhaseResetCycles, cfg.networkRadix);
}

namespace {

// Compile cache: LRU-bounded so a resident campaign server can stay up
// for weeks without the program cache growing monotonically. Entries
// hand out shared_ptrs, so eviction can never dangle a program a
// concurrent run is still simulating - the last holder frees it.
struct CompileCache
{
    using Key = std::tuple<std::string, int, bool>;
    struct Entry
    {
        CompiledProgramPtr program;
        std::uint64_t lastUse = 0;
    };

    std::mutex mtx;
    std::map<Key, Entry> entries;
    std::uint64_t clock = 0;
    std::size_t budget = kDefaultBudget;
    CompiledCacheStats stats;

    static constexpr std::size_t kDefaultBudget = 64;
};

CompileCache &
compileCache()
{
    static CompileCache cache;
    return cache;
}

} // namespace

CompiledProgramPtr
compiledBenchmark(const std::string &name, int scale, bool affinity)
{
    CompileCache &cc = compileCache();
    CompileCache::Key key{toLower(name), scale, affinity};
    {
        std::lock_guard<std::mutex> lk(cc.mtx);
        auto it = cc.entries.find(key);
        if (it != cc.entries.end()) {
            it->second.lastUse = ++cc.clock;
            ++cc.stats.hits;
            return it->second.program;
        }
    }

    // Compile outside the lock so independent programs compile in
    // parallel; compilation is deterministic, so if two threads race on
    // the same key the losers' copies are equivalent and discarded.
    compiler::AnalysisOptions opts;
    opts.assumeSerialAffinity = affinity;
    auto cp = std::make_shared<const compiler::CompiledProgram>(
        compiler::compileProgram(workloads::buildBenchmark(name, scale),
                                 opts));

    std::lock_guard<std::mutex> lk(cc.mtx);
    auto [it, inserted] = cc.entries.try_emplace(std::move(key));
    if (inserted) {
        it->second.program = std::move(cp);
        ++cc.stats.builds;
        // Evict least-recently-used entries beyond the budget (never
        // the one just inserted). In-flight holders keep their program
        // alive through their shared_ptr.
        while (cc.entries.size() > cc.budget) {
            auto victim = cc.entries.end();
            for (auto e = cc.entries.begin(); e != cc.entries.end(); ++e)
                if (e != it && (victim == cc.entries.end() ||
                                e->second.lastUse < victim->second.lastUse))
                    victim = e;
            if (victim == cc.entries.end())
                break;
            cc.entries.erase(victim);
            ++cc.stats.evictions;
        }
    } else {
        ++cc.stats.hits; // lost a racing compile of the same key
    }
    it->second.lastUse = ++cc.clock;
    return it->second.program;
}

CompiledCacheStats
compiledCacheStats()
{
    CompileCache &cc = compileCache();
    std::lock_guard<std::mutex> lk(cc.mtx);
    CompiledCacheStats s = cc.stats;
    s.resident = cc.entries.size();
    s.budget = cc.budget;
    return s;
}

void
setCompiledCacheBudget(std::size_t maxPrograms)
{
    CompileCache &cc = compileCache();
    std::lock_guard<std::mutex> lk(cc.mtx);
    cc.budget = maxPrograms ? maxPrograms
                            : CompileCache::kDefaultBudget;
    while (cc.entries.size() > cc.budget) {
        auto victim = cc.entries.begin();
        for (auto e = cc.entries.begin(); e != cc.entries.end(); ++e)
            if (e->second.lastUse < victim->second.lastUse)
                victim = e;
        cc.entries.erase(victim);
        ++cc.stats.evictions;
    }
}

sim::RunResult
runBenchmark(const std::string &name, const MachineConfig &cfg, int scale,
             bool affinity)
{
    // The shared_ptr pins the program (and its stream cache) for the
    // duration of the run, even if the LRU evicts it meanwhile.
    const CompiledProgramPtr cp = compiledBenchmark(name, scale, affinity);
    return sim::simulate(*cp, cfg);
}

sim::RunResult
runBenchmarkObserved(const std::string &name, const MachineConfig &cfg,
                     int scale, bool affinity, const RunObservers &o)
{
    obs::PhaseProfile pre;
    CompiledProgramPtr cp;
    {
        obs::PhaseTimer t(o.profile ? &pre.compileMs : nullptr);
        cp = compiledBenchmark(name, scale, affinity);
    }
    std::unique_ptr<sim::Machine> m;
    {
        obs::PhaseTimer t(o.profile ? &pre.scheduleMs : nullptr);
        m = std::make_unique<sim::Machine>(*cp, cfg);
    }
    m->setTimeline(o.timeline);
    m->setMetrics(o.metrics);
    m->enableProfiling(o.profile);
    sim::RunResult r = m->run();
    if (o.profile) {
        r.profile.compileMs += pre.compileMs;
        r.profile.scheduleMs += pre.scheduleMs;
    }
    return r;
}

obs::Timeline::Naming
timelineNaming()
{
    obs::Timeline::Naming n;
    n.missClass = [](std::uint8_t v) {
        return std::string(
            mem::missClassName(static_cast<mem::MissClass>(v)));
    };
    n.markKind = [](std::uint8_t v) {
        switch (static_cast<compiler::MarkKind>(v)) {
          case compiler::MarkKind::Normal: return std::string("normal");
          case compiler::MarkKind::TimeRead:
            return std::string("time-read");
          case compiler::MarkKind::Bypass: return std::string("bypass");
        }
        return csprintf("mark%d", unsigned(v));
    };
    return n;
}

void
requireSound(const sim::RunResult &r, const std::string &label)
{
    // Exit codes follow verify::ExitCode: 3 for a detected soundness
    // violation, 4 for a structured abort - distinguishable from usage
    // errors (2) by campaign drivers and CI.
    if (r.oracleViolations != 0 || r.doallViolations != 0 ||
        r.shadowViolations != 0) {
        warn("%s: %d oracle / %d race / %d shadow violations - "
             "experiment invalid",
             label, r.oracleViolations, r.doallViolations,
             r.shadowViolations);
        std::exit(verify::ExitViolation);
    }
    if (r.aborted()) {
        warn("%s: run aborted (%s: %s) - experiment invalid", label,
             fault::abortKindName(r.abort.kind), r.abort.reason);
        std::exit(verify::ExitAbort);
    }
}

} // namespace bench
} // namespace hscd
