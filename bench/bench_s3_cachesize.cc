/**
 * @file
 * S3: cache-size sweep, 16 KB to 1 MB. Coherence misses are insensitive
 * to capacity, so the TPI/HW gap is stable while replacement misses
 * vanish with size.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S3", "cache-size sweep (16KB - 1MB)", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left).col("KB");
    t.col("TPI miss%").col("TPI repl%").col("HW miss%").col("HW repl%");
    for (const std::string &name : workloads::benchmarkNames()) {
        for (std::uint64_t kb : {16u, 64u, 256u, 1024u}) {
            MachineConfig ct = makeConfig(SchemeKind::TPI);
            ct.cacheBytes = kb * 1024;
            MachineConfig ch = makeConfig(SchemeKind::HW);
            ch.cacheBytes = kb * 1024;
            sim::RunResult rt = runBenchmark(name, ct);
            sim::RunResult rh = runBenchmark(name, ch);
            requireSound(rt, name);
            requireSound(rh, name);
            auto repl = [](const sim::RunResult &r) {
                return r.readMisses ? 100.0 * double(r.missReplacement) /
                                          double(r.readMisses)
                                    : 0.0;
            };
            t.row()
                .cell(name)
                .cell(kb)
                .cell(100.0 * rt.readMissRate, 2)
                .cell(repl(rt), 1)
                .cell(100.0 * rh.readMissRate, 2)
                .cell(repl(rh), 1);
        }
        t.rule();
    }
    t.print(std::cout);
    return 0;
}
