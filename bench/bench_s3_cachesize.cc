/**
 * @file
 * S3: cache-size sweep, 16 KB to 1 MB. Coherence misses are insensitive
 * to capacity, so the TPI/HW gap is stable while replacement misses
 * vanish with size.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S3", "cache-size sweep (16KB - 1MB)", cfg);

    const std::uint64_t sizes[] = {16u, 64u, 256u, 1024u};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S3");
    for (const std::string &name : names) {
        for (std::uint64_t kb : sizes) {
            MachineConfig ct = makeConfig(SchemeKind::TPI);
            ct.cacheBytes = kb * 1024;
            MachineConfig ch = makeConfig(SchemeKind::HW);
            ch.cacheBytes = kb * 1024;
            sweep.add(name + "/TPI/" + std::to_string(kb) + "KB", name,
                      ct);
            sweep.add(name + "/HW/" + std::to_string(kb) + "KB", name,
                      ch);
        }
    }
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left).col("KB");
    t.col("TPI miss%").col("TPI repl%").col("HW miss%").col("HW repl%");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        for (std::uint64_t kb : sizes) {
            const sim::RunResult &rt = sweep[cell++];
            const sim::RunResult &rh = sweep[cell++];
            auto repl = [](const sim::RunResult &r) {
                return r.readMisses ? 100.0 * double(r.missReplacement) /
                                          double(r.readMisses)
                                    : 0.0;
            };
            t.row()
                .cell(name)
                .cell(kb)
                .cell(100.0 * rt.readMissRate, 2)
                .cell(repl(rt), 1)
                .cell(100.0 * rh.readMissRate, 2)
                .cell(repl(rh), 1);
        }
        t.rule();
    }
    t.print(std::cout);
    sweep.finish(std::cout);
    return 0;
}
