/**
 * @file
 * T1: average read miss latency, TPI vs the HW directory, at 16-byte and
 * 64-byte lines (the paper's average-miss-latency table). The paper
 * reports TPI flat (~136 / ~355 cycles) while HW grows on QCD2 and TRFD
 * (145.5 / 405.4 and 149.1 / 418.6) because dirty-remote forwards and
 * invalidation traffic lengthen its misses.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "T1",
                "average read miss latency (cycles), TPI vs HW", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("TPI 16B")
        .col("TPI 64B")
        .col("HW 16B")
        .col("HW 64B");
    // The paper's table lists these five benchmarks.
    for (const std::string &name :
         {std::string("SPEC77"), std::string("OCEAN"),
          std::string("FLO52"), std::string("QCD2"), std::string("TRFD")})
    {
        t.row().cell(name);
        for (SchemeKind k : {SchemeKind::TPI, SchemeKind::HW}) {
            for (unsigned line : {16u, 64u}) {
                MachineConfig c = makeConfig(k);
                c.lineBytes = line;
                sim::RunResult r = runBenchmark(name, c);
                requireSound(r, name);
                t.cell(r.avgMissLatency, 1);
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nexpected shape: TPI roughly flat per line size; HW "
                 "inflated on the write-shared codes (QCD2, TRFD) by "
                 "3-hop dirty misses and invalidations.\n";
    return 0;
}
