/**
 * @file
 * S7: consistency-model sensitivity. The paper simulates weak
 * consistency and notes (footnote to the traffic discussion) that under
 * sequential consistency "both reads and writes are affected" - the
 * write-through schemes would pay for every store. This experiment makes
 * that claim measurable: execution time under sequential consistency
 * normalized to weak consistency, per scheme.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S7",
                "sequential/weak consistency execution-time ratio", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left);
    const SchemeKind schemes[] = {SchemeKind::SC, SchemeKind::VC,
                                  SchemeKind::TPI, SchemeKind::HW};
    for (SchemeKind k : schemes)
        t.col(std::string(schemeName(k)) + " SC/WC");
    for (const std::string &name : workloads::benchmarkNames()) {
        t.row().cell(name);
        for (SchemeKind k : schemes) {
            MachineConfig weak = makeConfig(k);
            MachineConfig seq = makeConfig(k);
            seq.sequentialConsistency = true;
            sim::RunResult rw = runBenchmark(name, weak);
            sim::RunResult rs = runBenchmark(name, seq);
            requireSound(rw, name);
            requireSound(rs, name);
            t.cell(double(rs.cycles) / double(rw.cycles), 2);
        }
    }
    t.print(std::cout);
    std::cout << "\nwrite-through schemes (SC/VC/TPI) stall on every "
                 "store under sequential consistency; the write-back "
                 "directory mostly hits in M and is the least affected - "
                 "the paper's footnote, quantified.\n";
    return 0;
}
