/**
 * @file
 * S7: consistency-model sensitivity. The paper simulates weak
 * consistency and notes (footnote to the traffic discussion) that under
 * sequential consistency "both reads and writes are affected" - the
 * write-through schemes would pay for every store. This experiment makes
 * that claim measurable: execution time under sequential consistency
 * normalized to weak consistency, per scheme.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S7",
                "sequential/weak consistency execution-time ratio", cfg);

    const SchemeKind schemes[] = {SchemeKind::SC, SchemeKind::VC,
                                  SchemeKind::TPI, SchemeKind::HW};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S7");
    for (const std::string &name : names) {
        for (SchemeKind k : schemes) {
            MachineConfig weak = makeConfig(k);
            MachineConfig seq = makeConfig(k);
            seq.sequentialConsistency = true;
            sweep.add(name + "/" + schemeName(k) + "/wc", name, weak);
            sweep.add(name + "/" + schemeName(k) + "/sc", name, seq);
        }
    }
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left);
    for (SchemeKind k : schemes)
        t.col(std::string(schemeName(k)) + " SC/WC");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        t.row().cell(name);
        for (SchemeKind k : schemes) {
            (void)k;
            const sim::RunResult &rw = sweep[cell++];
            const sim::RunResult &rs = sweep[cell++];
            t.cell(double(rs.cycles) / double(rw.cycles), 2);
        }
    }
    t.print(std::cout);
    std::cout << "\nwrite-through schemes (SC/VC/TPI) stall on every "
                 "store under sequential consistency; the write-back "
                 "directory mostly hits in M and is the least affected - "
                 "the paper's footnote, quantified.\n";
    sweep.finish(std::cout);
    return 0;
}
