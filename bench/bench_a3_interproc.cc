/**
 * @file
 * A3: the value of interprocedural analysis. Earlier compiler-directed
 * schemes invalidated the whole cache at procedure boundaries to stay
 * safe across unanalyzed calls; the paper's complete interprocedural
 * analysis keeps marks precise and caches warm. We compare the paper's
 * mode against that prior-work behaviour (flush at every call entry and
 * return) on a call-structured workload.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "hir/builder.hh"
#include "workloads/workloads.hh"

namespace {

/**
 * A call-structured solver: each task calls helper procedures per
 * iteration (the dominant Fortran style the paper's interprocedural
 * analysis targets): a stencil kernel, an apply step, and a serial
 * bookkeeping routine between epochs.
 */
hscd::hir::Program
callHeavySolver(std::int64_t n, int steps)
{
    using namespace hscd;
    hir::ProgramBuilder b;
    b.param("N", n);
    b.array("U", {"N"});
    b.array("V", {"N"});
    b.array("HIST", {64});
    b.proc("MAIN", [&] {
        b.doserial("init", 0, n - 1, [&] { b.write("U", {b.v("init")}); });
        b.doserial("t", 0, steps - 1, [&] {
            b.doall("i", 1, n - 2, [&] {
                b.call("STENCIL");
                b.call("APPLY");
            });
            b.call("BOOKKEEP");
        });
    });
    b.proc("STENCIL", [&] {
        b.read("U", {b.v("i") - 1});
        b.read("U", {b.v("i")});
        b.read("U", {b.v("i") + 1});
        b.compute(4);
        b.write("V", {b.v("i")});
    });
    b.proc("APPLY", [&] {
        b.read("V", {b.v("i")});
        b.compute(2);
    });
    b.proc("BOOKKEEP", [&] {
        b.doserial("h", 0, 63, [&] {
            b.read("HIST", {b.v("h")});
            b.write("HIST", {b.v("h")});
        });
        b.doall("j", 1, b.p("N") - 2, [&] {
            b.read("V", {b.v("j")});
            b.write("U", {b.v("j")});
        });
    });
    return b.build();
}

} // namespace

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "A3",
                "interprocedural analysis vs flush-at-procedure-"
                "boundaries (prior HSCD schemes)", cfg);

    compiler::CompiledProgram cp =
        compiler::compileProgram(callHeavySolver(512, 6));
    std::cout << "workload: 512-point solver, 2 calls per task "
                 "iteration + serial bookkeeping procedure\n\n";

    TextTable t;
    t.col("scheme", TextTable::Align::Left)
        .col("mode", TextTable::Align::Left)
        .col("miss %")
        .col("cycles")
        .col("slowdown");
    for (SchemeKind k : {SchemeKind::SC, SchemeKind::TPI}) {
        Cycles base = 0;
        for (bool flush : {false, true}) {
            MachineConfig c = makeConfig(k);
            c.procs = 8;
            c.flushAtCalls = flush;
            sim::RunResult r = sim::simulate(cp, c);
            requireSound(r, "callHeavySolver");
            if (!flush)
                base = r.cycles;
            t.row()
                .cell(schemeName(k))
                .cell(flush ? "flush at calls (prior work)"
                            : "interprocedural (paper)")
                .cell(100.0 * r.readMissRate, 2)
                .cell(r.cycles)
                .cell(double(r.cycles) / double(base), 2);
        }
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nthe interprocedural row keeps helper-procedure data "
                 "cached across the two calls per iteration; flushing at "
                 "every boundary forfeits all of it.\n";
    return 0;
}
