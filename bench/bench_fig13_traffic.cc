/**
 * @file
 * F13: network traffic per scheme - read fetches, write-throughs /
 * write-backs, and coherence transactions, in words per 100 references.
 * Reproduces the paper's TRFD observation: write-through redundant
 * writes blow up TPI's traffic until the write buffer is organized as a
 * cache.
 */

#include <iostream>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "F13",
                "network traffic breakdown (words per 100 references)",
                cfg);

    const SchemeKind schemes[] = {SchemeKind::Base, SchemeKind::SC,
                                  SchemeKind::TPI, SchemeKind::HW};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "F13");
    for (const std::string &name : names)
        for (SchemeKind k : schemes)
            sweep.add(name, makeConfig(k));
    // The TRFD write-buffer ablation rides along in the same sweep.
    MachineConfig coal = makeConfig(SchemeKind::TPI);
    coal.writeBufferAsCache = true;
    std::size_t plainCell =
        sweep.add("TRFD/TPI/plain-wb", "TRFD", makeConfig(SchemeKind::TPI));
    std::size_t coalCell = sweep.add("TRFD/TPI/coalescing-wb", "TRFD", coal);
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("scheme", TextTable::Align::Left)
        .col("read")
        .col("write")
        .col("wback")
        .col("coher")
        .col("total");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        for (SchemeKind k : schemes) {
            const sim::RunResult &r = sweep[cell++];
            double refs = double(r.reads + r.writes) / 100.0;
            double rd = double(r.readWords) / refs;
            double wr = double(r.writeWords) / refs;
            double wb = double(r.writebackWords) / refs;
            double co = double(r.coherencePackets) / refs;
            t.row()
                .cell(name)
                .cell(schemeName(k))
                .cell(rd, 1)
                .cell(wr, 1)
                .cell(wb, 1)
                .cell(co, 1)
                .cell(rd + wr + wb + co, 1);
        }
        t.rule();
    }
    t.print(std::cout);

    std::cout << "\nTRFD redundant-write elimination (cache-organized "
                 "write buffer, [9][10]):\n";
    TextTable w;
    w.col("TPI variant", TextTable::Align::Left)
        .col("write packets")
        .col("reduction");
    const sim::RunResult &rp = sweep[plainCell];
    const sim::RunResult &rc = sweep[coalCell];
    w.row().cell("plain write buffer").cell(rp.writePackets).cell("-");
    w.row()
        .cell("write buffer as cache")
        .cell(rc.writePackets)
        .cell(csprintf("%.1fx", double(rp.writePackets) /
                                     double(rc.writePackets ? rc.writePackets
                                                            : 1)));
    w.print(std::cout);
    sweep.finish(std::cout);
    return 0;
}
