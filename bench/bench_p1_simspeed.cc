/**
 * @file
 * P1: simulator throughput microbenchmarks (google-benchmark): how many
 * simulated memory references per second each subsystem sustains.
 */

#include <benchmark/benchmark.h>

#include "compiler/analysis.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;

namespace {

const compiler::CompiledProgram &
jacobi()
{
    static compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microJacobi(256, 4));
    return cp;
}

void
BM_SimulateScheme(benchmark::State &state)
{
    MachineConfig cfg;
    cfg.scheme = static_cast<SchemeKind>(state.range(0));
    cfg.fastPath = state.range(1) != 0;
    cfg.procs = 8;
    Counter refs = 0;
    for (auto _ : state) {
        sim::RunResult r = sim::simulate(jacobi(), cfg);
        refs += r.reads + r.writes;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["refs/s"] = benchmark::Counter(
        double(refs), benchmark::Counter::kIsRate);
}

void
BM_CompileBenchmark(benchmark::State &state)
{
    const auto names = workloads::benchmarkNames();
    const std::string name = names[std::size_t(state.range(0))];
    for (auto _ : state) {
        compiler::CompiledProgram cp = compiler::compileProgram(
            workloads::buildBenchmark(name, 1));
        benchmark::DoNotOptimize(cp.program.refCount());
    }
    state.SetLabel(name);
}

void
BM_MarkingOnly(benchmark::State &state)
{
    hir::Program prog = workloads::buildBenchmark("QCD2", 1);
    compiler::EpochGraph graph = compiler::EpochGraph::build(prog);
    for (auto _ : state) {
        compiler::Marking m = compiler::Marking::run(prog, graph);
        benchmark::DoNotOptimize(m.stats().timeRead);
    }
}

} // namespace

// Second argument selects the execution path: 1 = epoch-stream fast path
// (the default in MachineConfig), 0 = legacy per-access HIR interpreter,
// kept measurable so speedups are attributable.
BENCHMARK(BM_SimulateScheme)
    ->ArgsProduct({{int(SchemeKind::Base), int(SchemeKind::SC),
                    int(SchemeKind::TPI), int(SchemeKind::HW),
                    int(SchemeKind::VC)},
                   {1, 0}});
BENCHMARK(BM_CompileBenchmark)->DenseRange(0, 5);
BENCHMARK(BM_MarkingOnly);

BENCHMARK_MAIN();
