/**
 * @file
 * P1: simulator throughput microbenchmarks (google-benchmark): how many
 * simulated memory references per second each subsystem sustains.
 */

#include <benchmark/benchmark.h>

#include "compiler/analysis.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;

namespace {

const compiler::CompiledProgram &
jacobi()
{
    static compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microJacobi(256, 4));
    return cp;
}

void
BM_SimulateScheme(benchmark::State &state)
{
    MachineConfig cfg;
    cfg.scheme = static_cast<SchemeKind>(state.range(0));
    cfg.procs = 8;
    Counter refs = 0;
    for (auto _ : state) {
        sim::RunResult r = sim::simulate(jacobi(), cfg);
        refs += r.reads + r.writes;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["refs/s"] = benchmark::Counter(
        double(refs), benchmark::Counter::kIsRate);
}

void
BM_CompileBenchmark(benchmark::State &state)
{
    const auto names = workloads::benchmarkNames();
    const std::string name = names[std::size_t(state.range(0))];
    for (auto _ : state) {
        compiler::CompiledProgram cp = compiler::compileProgram(
            workloads::buildBenchmark(name, 1));
        benchmark::DoNotOptimize(cp.program.refCount());
    }
    state.SetLabel(name);
}

void
BM_MarkingOnly(benchmark::State &state)
{
    hir::Program prog = workloads::buildBenchmark("QCD2", 1);
    compiler::EpochGraph graph = compiler::EpochGraph::build(prog);
    for (auto _ : state) {
        compiler::Marking m = compiler::Marking::run(prog, graph);
        benchmark::DoNotOptimize(m.stats().timeRead);
    }
}

} // namespace

BENCHMARK(BM_SimulateScheme)
    ->Arg(int(SchemeKind::Base))
    ->Arg(int(SchemeKind::SC))
    ->Arg(int(SchemeKind::TPI))
    ->Arg(int(SchemeKind::HW));
BENCHMARK(BM_CompileBenchmark)->DenseRange(0, 5);
BENCHMARK(BM_MarkingOnly);

BENCHMARK_MAIN();
