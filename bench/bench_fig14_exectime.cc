/**
 * @file
 * F14: parallel execution time of the four schemes, normalized to the
 * full-map hardware directory (HW = 1.0). The paper's headline: TPI is
 * comparable to HW despite needing no directory.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "F14",
                "normalized parallel execution time (HW = 1.0)", cfg);

    const SchemeKind schemes[] = {SchemeKind::Base, SchemeKind::SC,
                                  SchemeKind::VC, SchemeKind::TPI,
                                  SchemeKind::HW};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "F14");
    for (const std::string &name : names)
        for (SchemeKind k : schemes)
            sweep.add(name, makeConfig(k));
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("BASE")
        .col("SC")
        .col("VC")
        .col("TPI")
        .col("HW")
        .col("HW cycles");
    double worst = 0, sum = 0;
    int n = 0;
    std::size_t cell = 0;
    for (const std::string &name : names) {
        Cycles hw = 0;
        double cells[5] = {0, 0, 0, 0, 0};
        int idx = 0;
        for (SchemeKind k : schemes) {
            const sim::RunResult &r = sweep[cell++];
            if (k == SchemeKind::HW)
                hw = r.cycles;
            cells[idx++] = double(r.cycles);
        }
        t.row().cell(name);
        for (int i = 0; i < 5; ++i)
            t.cell(cells[i] / double(hw), 2);
        t.cell(hw);
        double ratio = cells[3] / double(hw);
        worst = std::max(worst, ratio);
        sum += ratio;
        ++n;
    }
    t.print(std::cout);
    std::cout << csprintf(
        "\nTPI/HW geomean-ish average %.2f, worst %.2f - the HSCD "
        "scheme tracks the directory without directory storage.\n",
        sum / n, worst);
    sweep.finish(std::cout);
    return 0;
}
