#include "sweep.hh"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/strutil.hh"
#include "verify/diagnostic.hh"

namespace hscd {
namespace bench {

namespace {

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::cerr
        << "usage: " << argv0
        << " [--jobs N] [--json PATH] [--fault SPEC] [--timeout-ms N]\n"
        << "       [--checkpoint PATH] [--resume] [--trace-out PATH]\n"
        << "       [--metrics SPEC] [--metrics-out PATH] [--cell SUBSTR]\n"
        << "       [--profile]\n"
        << "  --jobs N, -j N  run sweep cells on N threads (default: all\n"
        << "                  hardware threads; 1 = serial). The output\n"
        << "                  is identical at any N, modulo the trailing\n"
        << "                  wall-clock line.\n"
        << "  --json PATH     also write machine-readable results JSON\n"
        << "  --fault SPEC    inject faults into every cell; SPEC is\n"
        << "                  RATE[:SEED[:SITES]] (see fault/plan.hh).\n"
        << "                  Each cell derives its own seed from the\n"
        << "                  campaign seed and the cell index.\n"
        << "  --timeout-ms N  abandon any cell still running after N ms\n"
        << "                  (recorded as a structured per-cell error)\n"
        << "  --checkpoint P  journal each completed cell to P so an\n"
        << "                  interrupted sweep can be restarted\n"
        << "  --resume        skip cells already journaled in the\n"
        << "                  --checkpoint file; the final output is\n"
        << "                  byte-identical to an uninterrupted run\n"
        << "  --trace-out P   write a Chrome/Perfetto trace_event JSON\n"
        << "                  timeline of the observed cell to P (open\n"
        << "                  in ui.perfetto.dev or chrome://tracing)\n"
        << "  --metrics SPEC  sample counter snapshots of the observed\n"
        << "                  cell; SPEC is epoch[:K] or cycles:N, with\n"
        << "                  an optional :cap=M ring bound\n"
        << "  --metrics-out P write the metrics series to P (default\n"
        << "                  metrics.json)\n"
        << "  --cell SUBSTR   observe the first cell whose label\n"
        << "                  contains SUBSTR (default: the first cell)\n"
        << "  --profile       record per-cell phase wall-clock + RSS in\n"
        << "                  the --json output (timings are machine-\n"
        << "                  dependent; restored --resume cells report\n"
        << "                  zero)\n"
        << "  --help, -h      this text\n";
    std::exit(code);
}

using obs::jsonEscape;

// ---------------------------------------------------------------------
// Checkpoint journal encoding.
//
// The journal is line-oriented so a kill -9 can tear at most the final
// line: a header naming the sweep's identity hash, then one
// whitespace-separated record per completed cell, appended and flushed
// as each cell finishes. Every RunResult field round-trips bit-exactly
// (doubles travel as their IEEE bit patterns), which is what lets a
// resumed sweep reproduce byte-identical JSON without re-running
// finished cells. A record that fails to decode - the torn tail of an
// interrupted writer - is simply re-run.
// ---------------------------------------------------------------------

constexpr const char *kJournalMagic = "hscd-sweep-journal v1";

/** Whitespace-free token encoding; the empty string becomes "-". */
std::string
escapeTok(const std::string &s)
{
    if (s.empty())
        return "-";
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        if (c == '%' || c <= ' ' || c == 0x7f || (out.empty() && c == '-'))
            out += csprintf("%%%02x", unsigned(c));
        else
            out += static_cast<char>(c);
    }
    return out;
}

std::string
unescapeTok(const std::string &t)
{
    if (t == "-")
        return "";
    std::string out;
    out.reserve(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i] == '%' && i + 2 < t.size()) {
            out += static_cast<char>(
                std::strtoul(t.substr(i + 1, 2).c_str(), nullptr, 16));
            i += 2;
        } else {
            out += t[i];
        }
    }
    return out;
}

std::string
doubleBits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return csprintf("%016x", u);
}

/** Strict token reader: any malformed/missing token poisons the line. */
struct TokenReader
{
    explicit TokenReader(const std::string &line) : in(line) {}

    std::string
    tok()
    {
        std::string t;
        if (!(in >> t))
            ok = false;
        return t;
    }

    std::uint64_t
    u64(int base = 10)
    {
        const std::string t = tok();
        if (!ok)
            return 0;
        char *end = nullptr;
        std::uint64_t v = std::strtoull(t.c_str(), &end, base);
        if (end == t.c_str() || *end != '\0')
            ok = false;
        return v;
    }

    double
    f64()
    {
        std::uint64_t u = u64(16);
        double v = 0;
        std::memcpy(&v, &u, sizeof(v));
        return v;
    }

    std::string str() { return unescapeTok(tok()); }

    std::istringstream in;
    bool ok = true;
};

void
encodeResult(std::ostream &s, const sim::RunResult &r)
{
    auto u = [&](std::uint64_t v) { s << ' ' << v; };
    auto d = [&](double v) { s << ' ' << doubleBits(v); };
    auto str = [&](const std::string &v) { s << ' ' << escapeTok(v); };

    u(r.cycles); u(r.epochs); u(r.parallelEpochs); u(r.tasks);
    u(r.reads); u(r.writes); u(r.readHits); u(r.readMisses);
    d(r.readMissRate); d(r.avgMissLatency);
    u(r.missCold); u(r.missReplacement); u(r.missTrueShare);
    u(r.missFalseShare); u(r.missConservative); u(r.missTagReset);
    u(r.missUncached);
    u(r.timeReads); u(r.timeReadHits); u(r.bypassReads);
    u(r.readPackets); u(r.writePackets); u(r.coherencePackets);
    u(r.writebackPackets);
    u(r.readWords); u(r.writeWords); u(r.writebackWords);
    u(r.trafficPackets); u(r.trafficWords);
    u(r.busyMax); d(r.busyAvg); u(r.serialCycles);
    u(r.oracleViolations); u(r.doallViolations);
    u(r.firstViolations.size());
    for (const sim::OracleViolation &v : r.firstViolations) {
        u(v.addr); u(v.ref); u(v.seen); u(v.expected);
        u(v.epoch); u(v.proc);
    }
    u(r.shadowViolations);
    u(r.firstShadowViolations.size());
    for (const sim::ShadowViolation &v : r.firstShadowViolations) {
        u(v.addr); u(v.ref); u(v.proc); u(v.epoch);
        u(v.writerProc); u(v.writerEpoch);
    }
    u(static_cast<std::uint64_t>(r.abort.kind));
    str(r.abort.reason);
    u(r.abort.cycle); u(r.abort.epoch); u(r.abort.proc);
    str(r.abort.snapshot);
    u(r.faultsInjected); u(r.faultsRecovered); u(r.faultRetries);
}

bool
decodeResult(TokenReader &in, sim::RunResult &r)
{
    // Caps torn/corrupt length prefixes before they become allocations.
    constexpr std::uint64_t kMaxViolations = 1u << 20;

    r.cycles = in.u64(); r.epochs = in.u64();
    r.parallelEpochs = in.u64(); r.tasks = in.u64();
    r.reads = in.u64(); r.writes = in.u64();
    r.readHits = in.u64(); r.readMisses = in.u64();
    r.readMissRate = in.f64(); r.avgMissLatency = in.f64();
    r.missCold = in.u64(); r.missReplacement = in.u64();
    r.missTrueShare = in.u64(); r.missFalseShare = in.u64();
    r.missConservative = in.u64(); r.missTagReset = in.u64();
    r.missUncached = in.u64();
    r.timeReads = in.u64(); r.timeReadHits = in.u64();
    r.bypassReads = in.u64();
    r.readPackets = in.u64(); r.writePackets = in.u64();
    r.coherencePackets = in.u64(); r.writebackPackets = in.u64();
    r.readWords = in.u64(); r.writeWords = in.u64();
    r.writebackWords = in.u64();
    r.trafficPackets = in.u64(); r.trafficWords = in.u64();
    r.busyMax = in.u64(); r.busyAvg = in.f64();
    r.serialCycles = in.u64();
    r.oracleViolations = in.u64(); r.doallViolations = in.u64();

    std::uint64_t n = in.u64();
    if (!in.ok || n > kMaxViolations)
        return false;
    r.firstViolations.resize(n);
    for (sim::OracleViolation &v : r.firstViolations) {
        v.addr = in.u64();
        v.ref = static_cast<hir::RefId>(in.u64());
        v.seen = in.u64(); v.expected = in.u64();
        v.epoch = in.u64();
        v.proc = static_cast<ProcId>(in.u64());
    }
    r.shadowViolations = in.u64();
    n = in.u64();
    if (!in.ok || n > kMaxViolations)
        return false;
    r.firstShadowViolations.resize(n);
    for (sim::ShadowViolation &v : r.firstShadowViolations) {
        v.addr = in.u64();
        v.ref = static_cast<hir::RefId>(in.u64());
        v.proc = static_cast<ProcId>(in.u64());
        v.epoch = in.u64();
        v.writerProc = static_cast<ProcId>(in.u64());
        v.writerEpoch = in.u64();
    }
    r.abort.kind = static_cast<fault::AbortKind>(in.u64());
    r.abort.reason = in.str();
    r.abort.cycle = in.u64(); r.abort.epoch = in.u64();
    r.abort.proc = static_cast<std::uint32_t>(in.u64());
    r.abort.snapshot = in.str();
    r.faultsInjected = in.u64(); r.faultsRecovered = in.u64();
    r.faultRetries = in.u64();
    return in.ok;
}

} // namespace

SweepOptions
SweepOptions::parse(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": " << flag
                          << " requires an argument\n";
                usage(argv[0], verify::ExitUsage);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], verify::ExitSuccess);
        } else if (arg == "--jobs" || arg == "-j") {
            const std::string v = value("--jobs");
            char *end = nullptr;
            unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                std::cerr << argv[0] << ": bad --jobs value '" << v
                          << "'\n";
                usage(argv[0], verify::ExitUsage);
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else if (arg == "--fault") {
            const std::string v = value("--fault");
            try {
                opts.fault = fault::FaultPlan::parse(v);
            } catch (const FatalError &) {
                usage(argv[0], verify::ExitUsage);
            }
        } else if (arg == "--timeout-ms") {
            const std::string v = value("--timeout-ms");
            char *end = nullptr;
            double ms = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || ms < 0) {
                std::cerr << argv[0] << ": bad --timeout-ms value '" << v
                          << "'\n";
                usage(argv[0], verify::ExitUsage);
            }
            opts.timeoutMs = ms;
        } else if (arg == "--checkpoint") {
            opts.checkpointPath = value("--checkpoint");
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--trace-out") {
            opts.traceOut = value("--trace-out");
        } else if (arg == "--metrics") {
            opts.metricsSpec = value("--metrics");
            try {
                obs::MetricsSpec::parse(opts.metricsSpec);
            } catch (const FatalError &) {
                usage(argv[0], verify::ExitUsage);
            }
        } else if (arg == "--metrics-out") {
            opts.metricsOut = value("--metrics-out");
        } else if (arg == "--cell") {
            opts.observeCell = value("--cell");
        } else if (arg == "--profile") {
            opts.profile = true;
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "'\n";
            usage(argv[0], verify::ExitUsage);
        }
    }
    if (opts.resume && opts.checkpointPath.empty()) {
        std::cerr << argv[0] << ": --resume requires --checkpoint\n";
        usage(argv[0], verify::ExitUsage);
    }
    return opts;
}

Sweep::Sweep(SweepOptions opts, std::string experiment)
    : _opts(std::move(opts)), _experiment(std::move(experiment))
{
}

std::size_t
Sweep::add(const std::string &benchmark, const MachineConfig &cfg,
           int scale, bool affinity)
{
    return add(benchmark + "/" + schemeName(cfg.scheme), benchmark, cfg,
               scale, affinity);
}

std::size_t
Sweep::add(std::string label, const std::string &benchmark,
           const MachineConfig &cfg, int scale, bool affinity)
{
    hscd_assert(!_ran, "Sweep::add() after run()");
    Cell c;
    c.label = std::move(label);
    c.benchmark = benchmark;
    c.scheme = schemeName(cfg.scheme);
    c.scale = scale;
    c.affinity = affinity;
    MachineConfig cell_cfg = cfg;
    if (_opts.fault.enabled())
        cell_cfg.fault = fault::planForCell(_opts.fault, _cells.size());
    c.cfg = cell_cfg;
    c.hasCfg = true;
    const bool prof = _opts.profile;
    c.runCell = [benchmark, cell_cfg, scale, affinity, prof] {
        if (!prof)
            return runBenchmark(benchmark, cell_cfg, scale, affinity);
        RunObservers o;
        o.profile = true;
        return runBenchmarkObserved(benchmark, cell_cfg, scale, affinity,
                                    o);
    };
    _cells.push_back(std::move(c));
    return _cells.size() - 1;
}

std::size_t
Sweep::addCustom(std::string label, std::function<sim::RunResult()> runCell)
{
    hscd_assert(!_ran, "Sweep::add() after run()");
    Cell c;
    c.label = std::move(label);
    c.runCell = std::move(runCell);
    _cells.push_back(std::move(c));
    return _cells.size() - 1;
}

std::uint64_t
Sweep::journalIdentity() const
{
    // FNV-1a over everything that determines what the cells compute, so
    // a journal from a different sweep (or the same sweep with a
    // different fault axis) is rejected instead of silently reused.
    // Deliberately excludes jobs/timeout/json path: those may change
    // between the interrupted run and the resume.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mixByte = [&](unsigned char b) {
        h = (h ^ b) * 0x100000001b3ull;
    };
    auto mix = [&](const std::string &s) {
        for (unsigned char b : s)
            mixByte(b);
        mixByte(0xff); // separator
    };
    auto mixU = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<unsigned char>(v >> (8 * i)));
    };
    mix(_experiment);
    mixU(_cells.size());
    for (const Cell &c : _cells) {
        mix(c.label);
        mix(c.benchmark);
        mix(c.scheme);
        mixU(static_cast<std::uint64_t>(c.scale));
        mixU(c.affinity ? 1 : 0);
    }
    mix(_opts.fault.str());
    return h;
}

Sweep::Outcome
Sweep::runGuarded(std::size_t i) const
{
    auto runCaught = [](const std::function<sim::RunResult()> &fn) {
        Outcome o;
        try {
            o.result = fn();
        } catch (const std::exception &e) {
            o.error = e.what();
            if (o.error.empty())
                o.error = "unhandled exception";
        } catch (...) {
            o.error = "unhandled non-standard exception";
        }
        return o;
    };

    if (_opts.timeoutMs <= 0)
        return runCaught(_cells[i].runCell);

    // Per-cell isolation: run the cell on its own thread and abandon it
    // when the budget expires. The abandoned thread is detached - it
    // keeps only the shared state alive and its eventual result is
    // discarded. (C++ offers no portable preemptive cancellation; the
    // simulator-side watchdog bounds how long the orphan can spin.)
    struct Shared
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        Outcome o;
    };
    auto sh = std::make_shared<Shared>();
    const std::function<sim::RunResult()> fn = _cells[i].runCell;
    std::thread worker([sh, fn, runCaught] {
        Outcome o = runCaught(fn);
        {
            std::lock_guard<std::mutex> lk(sh->m);
            sh->o = std::move(o);
            sh->done = true;
        }
        sh->cv.notify_all();
    });

    std::unique_lock<std::mutex> lk(sh->m);
    const bool finished = sh->cv.wait_for(
        lk, std::chrono::duration<double, std::milli>(_opts.timeoutMs),
        [&] { return sh->done; });
    if (finished) {
        lk.unlock();
        worker.join();
        return sh->o;
    }
    lk.unlock();
    worker.detach();
    Outcome o;
    o.error = csprintf("timeout: cell still running after %.0f ms",
                       _opts.timeoutMs);
    return o;
}

void
Sweep::setupObservers()
{
    if (_opts.traceOut.empty() && _opts.metricsSpec.empty())
        return;

    // Pick the observed cell: first label containing --cell, else 0.
    std::size_t idx = 0;
    if (!_opts.observeCell.empty()) {
        idx = _cells.size();
        for (std::size_t i = 0; i < _cells.size(); ++i) {
            if (_cells[i].label.find(_opts.observeCell) !=
                std::string::npos) {
                idx = i;
                break;
            }
        }
        if (idx == _cells.size())
            fatal("--cell '%s' matches no cell label",
                  _opts.observeCell);
    }
    if (_cells.empty())
        return;
    if (!_cells[idx].hasCfg) {
        warn("cell '%s' is a custom cell; --trace-out/--metrics ignored",
             _cells[idx].label);
        return;
    }

    if (!_opts.traceOut.empty())
        _timeline = std::make_unique<obs::Timeline>();
    if (!_opts.metricsSpec.empty())
        _metrics = std::make_unique<obs::MetricsRecorder>(
            obs::MetricsSpec::parse(_opts.metricsSpec));
    _obsIndex = idx;

    const Cell &c = _cells[idx];
    RunObservers o;
    o.timeline = _timeline.get();
    o.metrics = _metrics.get();
    o.profile = _opts.profile;
    _cells[idx].runCell = [c, o] {
        return runBenchmarkObserved(c.benchmark, c.cfg, c.scale,
                                    c.affinity, o);
    };
}

obs::Provenance
Sweep::provenance(const std::string &schema) const
{
    obs::Provenance p;
    p.schema = schema;
    p.tool = _experiment;
    p.configHash = journalIdentity();
    p.faultSpec = _opts.fault.enabled() ? _opts.fault.str()
                                        : std::string("off");
    p.jobs = _opts.jobs ? _opts.jobs : hardwareJobs();
    return p;
}

void
Sweep::run()
{
    hscd_assert(!_ran, "Sweep::run() is single-shot");
    _ran = true;
    setupObservers();

    const auto t0 = std::chrono::steady_clock::now();

    // Warm the compile cache serially: each distinct program compiles
    // exactly once instead of racing first-touch compiles on the pool.
    std::set<std::tuple<std::string, int, bool>> keys;
    for (const Cell &c : _cells)
        if (!c.benchmark.empty() &&
            keys.emplace(c.benchmark, c.scale, c.affinity).second)
            compiledBenchmark(c.benchmark, c.scale, c.affinity);

    // Resume: collect outcomes a prior interrupted run already
    // journaled, keyed by cell index.
    std::vector<Outcome> restored(_cells.size());
    std::vector<char> have(_cells.size(), 0);
    const std::uint64_t identity = journalIdentity();
    bool journal_has_header = false;
    if (_opts.resume && !_opts.checkpointPath.empty()) {
        std::ifstream f(_opts.checkpointPath);
        std::string line;
        if (f && std::getline(f, line)) {
            TokenReader hdr(line);
            const std::string magic1 = hdr.tok(), magic2 = hdr.tok();
            const std::uint64_t id = hdr.u64(16);
            if (!hdr.ok ||
                magic1 + " " + magic2 != std::string(kJournalMagic))
                fatal("'%s' is not a sweep checkpoint journal",
                      _opts.checkpointPath);
            if (id != identity)
                fatal("checkpoint journal '%s' was written by a "
                      "different sweep (identity %016x, expected %016x)",
                      _opts.checkpointPath, id, identity);
            journal_has_header = true;
            std::size_t loaded = 0, torn = 0;
            while (std::getline(f, line)) {
                TokenReader in(line);
                const std::uint64_t idx = in.u64();
                Outcome o;
                if (!in.ok || idx >= _cells.size() ||
                    !decodeResult(in, o.result)) {
                    ++torn; // interrupted writer's tail: re-run the cell
                    continue;
                }
                o.error = in.str();
                if (!in.ok) {
                    ++torn;
                    continue;
                }
                restored[idx] = std::move(o);
                have[idx] = 1;
                ++loaded;
            }
            inform("resume: %d of %d cells restored from '%s'%s", loaded,
                   _cells.size(), _opts.checkpointPath,
                   torn ? csprintf(" (%d torn records re-run)", torn)
                        : std::string());
        }
    }

    // The observed cell must actually execute to fill its recorders; a
    // journaled result can't reproduce the event stream.
    if (_obsIndex < have.size() && have[_obsIndex]) {
        have[_obsIndex] = 0;
        inform("resume: re-running observed cell '%s' to record "
               "observability artifacts", _cells[_obsIndex].label);
    }

    std::ofstream journal;
    std::mutex journal_mtx;
    if (!_opts.checkpointPath.empty()) {
        journal.open(_opts.checkpointPath,
                     journal_has_header ? std::ios::app : std::ios::trunc);
        if (!journal)
            fatal("cannot write checkpoint journal '%s'",
                  _opts.checkpointPath);
        if (!journal_has_header) {
            journal << kJournalMagic << ' ' << csprintf("%016x", identity)
                    << '\n';
            journal.flush();
        }
    }

    _results = parallelMap(
        _opts.jobs, _cells.size(), [&](std::size_t i) {
            if (have[i])
                return restored[i];
            Outcome o = runGuarded(i);
            if (journal.is_open()) {
                std::ostringstream rec;
                rec << i;
                encodeResult(rec, o.result);
                rec << ' ' << escapeTok(o.error);
                std::lock_guard<std::mutex> lk(journal_mtx);
                journal << rec.str() << '\n';
                journal.flush();
            }
            return o;
        });

    _wallMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
}

const sim::RunResult &
Sweep::operator[](std::size_t i) const
{
    hscd_assert(_ran && i < _results.size(), "sweep cell %d not run", i);
    return _results[i].result;
}

const std::string &
Sweep::error(std::size_t i) const
{
    hscd_assert(_ran && i < _results.size(), "sweep cell %d not run", i);
    return _results[i].error;
}

void
Sweep::requireAllSound() const
{
    for (std::size_t i = 0; i < _results.size(); ++i) {
        if (!_results[i].error.empty()) {
            warn("%s: harness error: %s", _cells[i].label,
                 _results[i].error);
            std::exit(verify::ExitInternal);
        }
        requireSound(_results[i].result, _cells[i].label);
    }
}

void
Sweep::finish(std::ostream &os) const
{
    writeJson();
    writeObservability(os);
    // Deliberately the only --jobs-dependent output line.
    os << csprintf("[sweep %s] %d cells, jobs=%d, %.0f ms\n",
                   _experiment, _cells.size(),
                   _opts.jobs ? _opts.jobs : hardwareJobs(), _wallMs);
}

void
Sweep::writeObservability(std::ostream &os) const
{
    if (_obsIndex >= _cells.size())
        return;
    const Cell &c = _cells[_obsIndex];
    if (_timeline) {
        std::ofstream f(_opts.traceOut);
        if (!f)
            fatal("cannot write timeline to '%s'", _opts.traceOut);
        _timeline->writePerfetto(f, provenance("hscd-timeline"),
                                 c.cfg.procs, _experiment + "/" + c.label,
                                 timelineNaming());
        os << csprintf("[obs %s] timeline of '%s': %d events "
                       "(%d dropped) -> %s\n",
                       _experiment, c.label, _timeline->events().size(),
                       _timeline->dropped(), _opts.traceOut);
    }
    if (_metrics) {
        std::ofstream f(_opts.metricsOut);
        if (!f)
            fatal("cannot write metrics to '%s'", _opts.metricsOut);
        _metrics->writeJson(f, provenance("hscd-metrics"));
        os << csprintf("[obs %s] metrics of '%s': %d rows "
                       "(%d dropped) -> %s\n",
                       _experiment, c.label, _metrics->size(),
                       _metrics->dropped(), _opts.metricsOut);
    }
}

void
Sweep::writeJson() const
{
    if (_opts.jsonPath.empty())
        return;
    hscd_assert(_ran, "writeJson() before run()");
    std::ofstream f(_opts.jsonPath);
    if (!f)
        fatal("cannot write JSON results to '%s'", _opts.jsonPath);

    f << "{\n  \"provenance\": " << provenance("hscd-sweep").json(2)
      << ",\n";
    f << "  \"experiment\": \"" << jsonEscape(_experiment) << "\",\n";
    f << "  \"cells\": [\n";
    for (std::size_t i = 0; i < _cells.size(); ++i) {
        const Cell &c = _cells[i];
        const sim::RunResult &r = _results[i].result;
        f << "    {\n";
        f << "      \"label\": \"" << jsonEscape(c.label) << "\",\n";
        if (!c.benchmark.empty()) {
            f << "      \"benchmark\": \"" << jsonEscape(c.benchmark)
              << "\",\n";
            f << "      \"scheme\": \"" << jsonEscape(c.scheme)
              << "\",\n";
            f << "      \"scale\": " << c.scale << ",\n";
            f << "      \"affinity\": " << (c.affinity ? "true" : "false")
              << ",\n";
        }
        f << "      \"fingerprint\": \""
          << csprintf("%016x", r.fingerprint()) << "\",\n";
        f << "      \"cycles\": " << r.cycles << ",\n";
        f << "      \"epochs\": " << r.epochs << ",\n";
        f << "      \"parallel_epochs\": " << r.parallelEpochs << ",\n";
        f << "      \"tasks\": " << r.tasks << ",\n";
        f << "      \"reads\": " << r.reads << ",\n";
        f << "      \"writes\": " << r.writes << ",\n";
        f << "      \"read_hits\": " << r.readHits << ",\n";
        f << "      \"read_misses\": " << r.readMisses << ",\n";
        f << "      \"read_miss_rate\": "
          << csprintf("%.17g", r.readMissRate) << ",\n";
        f << "      \"avg_miss_latency\": "
          << csprintf("%.17g", r.avgMissLatency) << ",\n";
        f << "      \"miss_cold\": " << r.missCold << ",\n";
        f << "      \"miss_replacement\": " << r.missReplacement << ",\n";
        f << "      \"miss_true_share\": " << r.missTrueShare << ",\n";
        f << "      \"miss_false_share\": " << r.missFalseShare << ",\n";
        f << "      \"miss_conservative\": " << r.missConservative
          << ",\n";
        f << "      \"miss_tag_reset\": " << r.missTagReset << ",\n";
        f << "      \"miss_uncached\": " << r.missUncached << ",\n";
        f << "      \"time_reads\": " << r.timeReads << ",\n";
        f << "      \"time_read_hits\": " << r.timeReadHits << ",\n";
        f << "      \"bypass_reads\": " << r.bypassReads << ",\n";
        f << "      \"read_packets\": " << r.readPackets << ",\n";
        f << "      \"write_packets\": " << r.writePackets << ",\n";
        f << "      \"coherence_packets\": " << r.coherencePackets
          << ",\n";
        f << "      \"writeback_packets\": " << r.writebackPackets
          << ",\n";
        f << "      \"read_words\": " << r.readWords << ",\n";
        f << "      \"write_words\": " << r.writeWords << ",\n";
        f << "      \"writeback_words\": " << r.writebackWords << ",\n";
        f << "      \"traffic_packets\": " << r.trafficPackets << ",\n";
        f << "      \"traffic_words\": " << r.trafficWords << ",\n";
        f << "      \"busy_max\": " << r.busyMax << ",\n";
        f << "      \"busy_avg\": " << csprintf("%.17g", r.busyAvg)
          << ",\n";
        f << "      \"serial_cycles\": " << r.serialCycles << ",\n";
        f << "      \"oracle_violations\": " << r.oracleViolations
          << ",\n";
        f << "      \"doall_violations\": " << r.doallViolations;
        // Robustness fields are emitted only when present so fault-free
        // sweeps keep their historical byte-identical JSON.
        if (r.shadowViolations != 0)
            f << ",\n      \"shadow_violations\": " << r.shadowViolations;
        if (r.faultsInjected || r.faultsRecovered || r.faultRetries) {
            f << ",\n      \"faults_injected\": " << r.faultsInjected;
            f << ",\n      \"faults_recovered\": " << r.faultsRecovered;
            f << ",\n      \"fault_retries\": " << r.faultRetries;
        }
        if (r.aborted()) {
            f << ",\n      \"abort\": {\n";
            f << "        \"kind\": \"" << fault::abortKindName(r.abort.kind)
              << "\",\n";
            f << "        \"reason\": \"" << jsonEscape(r.abort.reason)
              << "\",\n";
            f << "        \"cycle\": " << r.abort.cycle << ",\n";
            f << "        \"epoch\": " << r.abort.epoch << ",\n";
            f << "        \"proc\": " << r.abort.proc << "\n";
            f << "      }";
        }
        if (!_results[i].error.empty())
            f << ",\n      \"error\": \""
              << jsonEscape(_results[i].error) << "\"";
        // Wall-clock phase profile: only under --profile (timings are
        // machine-dependent, so byte-determinism contracts don't cover
        // profiled output).
        if (r.profile.any())
            f << ",\n      \"profile\": " << r.profile.json();
        f << "\n    }" << (i + 1 < _cells.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace bench
} // namespace hscd
