#include "sweep.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <tuple>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/strutil.hh"

namespace hscd {
namespace bench {

namespace {

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::cerr
        << "usage: " << argv0 << " [--jobs N] [--json PATH]\n"
        << "  --jobs N, -j N  run sweep cells on N threads (default: all\n"
        << "                  hardware threads; 1 = serial). The output\n"
        << "                  is identical at any N, modulo the trailing\n"
        << "                  wall-clock line.\n"
        << "  --json PATH     also write machine-readable results JSON\n"
        << "  --help, -h      this text\n";
    std::exit(code);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x",
                                unsigned(static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    return out;
}

} // namespace

SweepOptions
SweepOptions::parse(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": " << flag
                          << " requires an argument\n";
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg == "--jobs" || arg == "-j") {
            const std::string v = value("--jobs");
            char *end = nullptr;
            unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                std::cerr << argv[0] << ": bad --jobs value '" << v
                          << "'\n";
                usage(argv[0], 2);
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "'\n";
            usage(argv[0], 2);
        }
    }
    return opts;
}

Sweep::Sweep(SweepOptions opts, std::string experiment)
    : _opts(std::move(opts)), _experiment(std::move(experiment))
{
}

std::size_t
Sweep::add(const std::string &benchmark, const MachineConfig &cfg,
           int scale, bool affinity)
{
    return add(benchmark + "/" + schemeName(cfg.scheme), benchmark, cfg,
               scale, affinity);
}

std::size_t
Sweep::add(std::string label, const std::string &benchmark,
           const MachineConfig &cfg, int scale, bool affinity)
{
    hscd_assert(!_ran, "Sweep::add() after run()");
    Cell c;
    c.label = std::move(label);
    c.benchmark = benchmark;
    c.scheme = schemeName(cfg.scheme);
    c.scale = scale;
    c.affinity = affinity;
    c.runCell = [benchmark, cfg, scale, affinity] {
        return runBenchmark(benchmark, cfg, scale, affinity);
    };
    _cells.push_back(std::move(c));
    return _cells.size() - 1;
}

std::size_t
Sweep::addCustom(std::string label, std::function<sim::RunResult()> runCell)
{
    hscd_assert(!_ran, "Sweep::add() after run()");
    Cell c;
    c.label = std::move(label);
    c.runCell = std::move(runCell);
    _cells.push_back(std::move(c));
    return _cells.size() - 1;
}

void
Sweep::run()
{
    hscd_assert(!_ran, "Sweep::run() is single-shot");
    _ran = true;

    const auto t0 = std::chrono::steady_clock::now();

    // Warm the compile cache serially: each distinct program compiles
    // exactly once instead of racing first-touch compiles on the pool.
    std::set<std::tuple<std::string, int, bool>> keys;
    for (const Cell &c : _cells)
        if (!c.benchmark.empty() &&
            keys.emplace(c.benchmark, c.scale, c.affinity).second)
            compiledBenchmark(c.benchmark, c.scale, c.affinity);

    _results = parallelMap(_opts.jobs, _cells.size(), [this](std::size_t i) {
        return _cells[i].runCell();
    });

    _wallMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
}

const sim::RunResult &
Sweep::operator[](std::size_t i) const
{
    hscd_assert(_ran && i < _results.size(), "sweep cell %d not run", i);
    return _results[i];
}

void
Sweep::requireAllSound() const
{
    for (std::size_t i = 0; i < _results.size(); ++i)
        requireSound(_results[i], _cells[i].label);
}

void
Sweep::finish(std::ostream &os) const
{
    writeJson();
    // Deliberately the only --jobs-dependent output line.
    os << csprintf("[sweep %s] %d cells, jobs=%d, %.0f ms\n",
                   _experiment, _cells.size(),
                   _opts.jobs ? _opts.jobs : hardwareJobs(), _wallMs);
}

void
Sweep::writeJson() const
{
    if (_opts.jsonPath.empty())
        return;
    hscd_assert(_ran, "writeJson() before run()");
    std::ofstream f(_opts.jsonPath);
    if (!f)
        fatal("cannot write JSON results to '%s'", _opts.jsonPath);

    f << "{\n  \"experiment\": \"" << jsonEscape(_experiment) << "\",\n";
    f << "  \"cells\": [\n";
    for (std::size_t i = 0; i < _cells.size(); ++i) {
        const Cell &c = _cells[i];
        const sim::RunResult &r = _results[i];
        f << "    {\n";
        f << "      \"label\": \"" << jsonEscape(c.label) << "\",\n";
        if (!c.benchmark.empty()) {
            f << "      \"benchmark\": \"" << jsonEscape(c.benchmark)
              << "\",\n";
            f << "      \"scheme\": \"" << jsonEscape(c.scheme)
              << "\",\n";
            f << "      \"scale\": " << c.scale << ",\n";
            f << "      \"affinity\": " << (c.affinity ? "true" : "false")
              << ",\n";
        }
        f << "      \"fingerprint\": \""
          << csprintf("%016x", r.fingerprint()) << "\",\n";
        f << "      \"cycles\": " << r.cycles << ",\n";
        f << "      \"epochs\": " << r.epochs << ",\n";
        f << "      \"parallel_epochs\": " << r.parallelEpochs << ",\n";
        f << "      \"tasks\": " << r.tasks << ",\n";
        f << "      \"reads\": " << r.reads << ",\n";
        f << "      \"writes\": " << r.writes << ",\n";
        f << "      \"read_hits\": " << r.readHits << ",\n";
        f << "      \"read_misses\": " << r.readMisses << ",\n";
        f << "      \"read_miss_rate\": "
          << csprintf("%.17g", r.readMissRate) << ",\n";
        f << "      \"avg_miss_latency\": "
          << csprintf("%.17g", r.avgMissLatency) << ",\n";
        f << "      \"miss_cold\": " << r.missCold << ",\n";
        f << "      \"miss_replacement\": " << r.missReplacement << ",\n";
        f << "      \"miss_true_share\": " << r.missTrueShare << ",\n";
        f << "      \"miss_false_share\": " << r.missFalseShare << ",\n";
        f << "      \"miss_conservative\": " << r.missConservative
          << ",\n";
        f << "      \"miss_tag_reset\": " << r.missTagReset << ",\n";
        f << "      \"miss_uncached\": " << r.missUncached << ",\n";
        f << "      \"time_reads\": " << r.timeReads << ",\n";
        f << "      \"time_read_hits\": " << r.timeReadHits << ",\n";
        f << "      \"bypass_reads\": " << r.bypassReads << ",\n";
        f << "      \"read_packets\": " << r.readPackets << ",\n";
        f << "      \"write_packets\": " << r.writePackets << ",\n";
        f << "      \"coherence_packets\": " << r.coherencePackets
          << ",\n";
        f << "      \"writeback_packets\": " << r.writebackPackets
          << ",\n";
        f << "      \"read_words\": " << r.readWords << ",\n";
        f << "      \"write_words\": " << r.writeWords << ",\n";
        f << "      \"writeback_words\": " << r.writebackWords << ",\n";
        f << "      \"traffic_packets\": " << r.trafficPackets << ",\n";
        f << "      \"traffic_words\": " << r.trafficWords << ",\n";
        f << "      \"busy_max\": " << r.busyMax << ",\n";
        f << "      \"busy_avg\": " << csprintf("%.17g", r.busyAvg)
          << ",\n";
        f << "      \"serial_cycles\": " << r.serialCycles << ",\n";
        f << "      \"oracle_violations\": " << r.oracleViolations
          << ",\n";
        f << "      \"doall_violations\": " << r.doallViolations << "\n";
        f << "    }" << (i + 1 < _cells.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace bench
} // namespace hscd
