#include "sweep.hh"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include <csignal>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/strutil.hh"
#include "serve/journal.hh"
#include "verify/diagnostic.hh"

namespace hscd {
namespace bench {

namespace {

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::cerr
        << "usage: " << argv0
        << " [--jobs N] [--json PATH] [--fault SPEC] [--timeout-ms N]\n"
        << "       [--deadline-ms N] [--checkpoint PATH] [--resume]\n"
        << "       [--trace-out PATH] [--metrics SPEC] [--metrics-out "
           "PATH]\n"
        << "       [--cell SUBSTR] [--profile]\n"
        << "  --jobs N, -j N  run sweep cells on N threads (default: all\n"
        << "                  hardware threads; 1 = serial). The output\n"
        << "                  is identical at any N, modulo the trailing\n"
        << "                  wall-clock line.\n"
        << "  --json PATH     also write machine-readable results JSON\n"
        << "  --fault SPEC    inject faults into every cell; SPEC is\n"
        << "                  RATE[:SEED[:SITES]] (see fault/plan.hh).\n"
        << "                  Each cell derives its own seed from the\n"
        << "                  campaign seed and the cell index.\n"
        << "  --timeout-ms N  abandon any cell still running after N ms\n"
        << "                  (recorded as a structured per-cell error)\n"
        << "  --deadline-ms N whole-campaign wall-clock budget: cells\n"
        << "                  not started when it expires are skipped,\n"
        << "                  completed cells stay checkpointed, and the\n"
        << "                  sweep exits with the structured-abort code\n"
        << "                  (" << int(verify::ExitAbort)
        << ") instead of running over\n"
        << "  --checkpoint P  journal each completed cell to P so an\n"
        << "                  interrupted sweep can be restarted\n"
        << "  --resume        skip cells already journaled in the\n"
        << "                  --checkpoint file; the final output is\n"
        << "                  byte-identical to an uninterrupted run\n"
        << "  --trace-out P   write a Chrome/Perfetto trace_event JSON\n"
        << "                  timeline of the observed cell to P (open\n"
        << "                  in ui.perfetto.dev or chrome://tracing)\n"
        << "  --metrics SPEC  sample counter snapshots of the observed\n"
        << "                  cell; SPEC is epoch[:K] or cycles:N, with\n"
        << "                  an optional :cap=M ring bound\n"
        << "  --metrics-out P write the metrics series to P (default\n"
        << "                  metrics.json)\n"
        << "  --cell SUBSTR   observe the first cell whose label\n"
        << "                  contains SUBSTR (default: the first cell)\n"
        << "  --profile       record per-cell phase wall-clock + RSS in\n"
        << "                  the --json output (timings are machine-\n"
        << "                  dependent; restored --resume cells report\n"
        << "                  zero)\n"
        << "  --help, -h      this text\n";
    std::exit(code);
}

using obs::jsonEscape;

// Checkpoint journal encoding: the line-oriented format introduced in
// PR 4 now lives in serve/journal.{hh,cc}, shared with the campaign
// server's durable work queue so the two implementations cannot drift.
// The sweep keeps its own magic; the server refuses sweep checkpoints
// as foreign and vice versa.
using serve::TokenReader;
using serve::decodeResult;
using serve::encodeResult;
using serve::escapeTok;
using serve::parseJournalHeader;

constexpr const char *kJournalMagic = "hscd-sweep-journal v1";

// SIGTERM/SIGINT -> verify::ExitCode contract for the sweep CLIs: the
// first signal requests a graceful stop (in-flight cells finish and are
// journaled, remaining cells are skipped, the process exits
// verify::ExitAbort = "interrupted with checkpoint"); a second signal
// aborts immediately with the same code (async-signal-safe _exit).
volatile std::sig_atomic_t g_sweepInterrupted = 0;

extern "C" void
sweepSignalHandler(int)
{
    if (g_sweepInterrupted)
        std::_Exit(verify::ExitAbort);
    g_sweepInterrupted = 1;
}

} // namespace

SweepOptions
SweepOptions::parse(int argc, char **argv)
{
    SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": " << flag
                          << " requires an argument\n";
                usage(argv[0], verify::ExitUsage);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], verify::ExitSuccess);
        } else if (arg == "--jobs" || arg == "-j") {
            const std::string v = value("--jobs");
            char *end = nullptr;
            unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                std::cerr << argv[0] << ": bad --jobs value '" << v
                          << "'\n";
                usage(argv[0], verify::ExitUsage);
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--json") {
            opts.jsonPath = value("--json");
        } else if (arg == "--fault") {
            const std::string v = value("--fault");
            try {
                opts.fault = fault::FaultPlan::parse(v);
            } catch (const FatalError &) {
                usage(argv[0], verify::ExitUsage);
            }
        } else if (arg == "--timeout-ms") {
            const std::string v = value("--timeout-ms");
            char *end = nullptr;
            double ms = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || ms < 0) {
                std::cerr << argv[0] << ": bad --timeout-ms value '" << v
                          << "'\n";
                usage(argv[0], verify::ExitUsage);
            }
            opts.timeoutMs = ms;
        } else if (arg == "--deadline-ms") {
            const std::string v = value("--deadline-ms");
            char *end = nullptr;
            double ms = std::strtod(v.c_str(), &end);
            if (end == v.c_str() || *end != '\0' || ms < 0) {
                std::cerr << argv[0] << ": bad --deadline-ms value '"
                          << v << "'\n";
                usage(argv[0], verify::ExitUsage);
            }
            opts.deadlineMs = ms;
        } else if (arg == "--checkpoint") {
            opts.checkpointPath = value("--checkpoint");
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--trace-out") {
            opts.traceOut = value("--trace-out");
        } else if (arg == "--metrics") {
            opts.metricsSpec = value("--metrics");
            try {
                obs::MetricsSpec::parse(opts.metricsSpec);
            } catch (const FatalError &) {
                usage(argv[0], verify::ExitUsage);
            }
        } else if (arg == "--metrics-out") {
            opts.metricsOut = value("--metrics-out");
        } else if (arg == "--cell") {
            opts.observeCell = value("--cell");
        } else if (arg == "--profile") {
            opts.profile = true;
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "'\n";
            usage(argv[0], verify::ExitUsage);
        }
    }
    if (opts.resume && opts.checkpointPath.empty()) {
        std::cerr << argv[0] << ": --resume requires --checkpoint\n";
        usage(argv[0], verify::ExitUsage);
    }
    // Every sweep CLI funnels through here, so this is where the
    // SIGTERM/SIGINT -> ExitAbort contract is installed.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = sweepSignalHandler;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    return opts;
}

Sweep::Sweep(SweepOptions opts, std::string experiment)
    : _opts(std::move(opts)), _experiment(std::move(experiment))
{
}

std::size_t
Sweep::add(const std::string &benchmark, const MachineConfig &cfg,
           int scale, bool affinity)
{
    return add(benchmark + "/" + schemeName(cfg.scheme), benchmark, cfg,
               scale, affinity);
}

std::size_t
Sweep::add(std::string label, const std::string &benchmark,
           const MachineConfig &cfg, int scale, bool affinity)
{
    hscd_assert(!_ran, "Sweep::add() after run()");
    Cell c;
    c.label = std::move(label);
    c.benchmark = benchmark;
    c.scheme = schemeName(cfg.scheme);
    c.scale = scale;
    c.affinity = affinity;
    MachineConfig cell_cfg = cfg;
    if (_opts.fault.enabled())
        cell_cfg.fault = fault::planForCell(_opts.fault, _cells.size());
    c.cfg = cell_cfg;
    c.hasCfg = true;
    const bool prof = _opts.profile;
    c.runCell = [benchmark, cell_cfg, scale, affinity, prof] {
        if (!prof)
            return runBenchmark(benchmark, cell_cfg, scale, affinity);
        RunObservers o;
        o.profile = true;
        return runBenchmarkObserved(benchmark, cell_cfg, scale, affinity,
                                    o);
    };
    _cells.push_back(std::move(c));
    return _cells.size() - 1;
}

std::size_t
Sweep::addCustom(std::string label, std::function<sim::RunResult()> runCell)
{
    hscd_assert(!_ran, "Sweep::add() after run()");
    Cell c;
    c.label = std::move(label);
    c.runCell = std::move(runCell);
    _cells.push_back(std::move(c));
    return _cells.size() - 1;
}

std::uint64_t
Sweep::journalIdentity() const
{
    // FNV-1a over everything that determines what the cells compute, so
    // a journal from a different sweep (or the same sweep with a
    // different fault axis) is rejected instead of silently reused.
    // Deliberately excludes jobs/timeout/json path: those may change
    // between the interrupted run and the resume.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mixByte = [&](unsigned char b) {
        h = (h ^ b) * 0x100000001b3ull;
    };
    auto mix = [&](const std::string &s) {
        for (unsigned char b : s)
            mixByte(b);
        mixByte(0xff); // separator
    };
    auto mixU = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            mixByte(static_cast<unsigned char>(v >> (8 * i)));
    };
    mix(_experiment);
    mixU(_cells.size());
    for (const Cell &c : _cells) {
        mix(c.label);
        mix(c.benchmark);
        mix(c.scheme);
        mixU(static_cast<std::uint64_t>(c.scale));
        mixU(c.affinity ? 1 : 0);
    }
    mix(_opts.fault.str());
    return h;
}

Sweep::Outcome
Sweep::runGuarded(std::size_t i) const
{
    auto runCaught = [](const std::function<sim::RunResult()> &fn) {
        Outcome o;
        try {
            o.result = fn();
        } catch (const std::exception &e) {
            o.error = e.what();
            if (o.error.empty())
                o.error = "unhandled exception";
        } catch (...) {
            o.error = "unhandled non-standard exception";
        }
        return o;
    };

    if (_opts.timeoutMs <= 0)
        return runCaught(_cells[i].runCell);

    // Per-cell isolation: run the cell on its own thread and abandon it
    // when the budget expires. The abandoned thread is detached - it
    // keeps only the shared state alive and its eventual result is
    // discarded. (C++ offers no portable preemptive cancellation; the
    // simulator-side watchdog bounds how long the orphan can spin.)
    struct Shared
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        Outcome o;
    };
    auto sh = std::make_shared<Shared>();
    const std::function<sim::RunResult()> fn = _cells[i].runCell;
    std::thread worker([sh, fn, runCaught] {
        Outcome o = runCaught(fn);
        {
            std::lock_guard<std::mutex> lk(sh->m);
            sh->o = std::move(o);
            sh->done = true;
        }
        sh->cv.notify_all();
    });

    std::unique_lock<std::mutex> lk(sh->m);
    const bool finished = sh->cv.wait_for(
        lk, std::chrono::duration<double, std::milli>(_opts.timeoutMs),
        [&] { return sh->done; });
    if (finished) {
        lk.unlock();
        worker.join();
        return sh->o;
    }
    lk.unlock();
    worker.detach();
    Outcome o;
    o.error = csprintf("timeout: cell still running after %.0f ms",
                       _opts.timeoutMs);
    return o;
}

void
Sweep::setupObservers()
{
    if (_opts.traceOut.empty() && _opts.metricsSpec.empty())
        return;

    // Pick the observed cell: first label containing --cell, else 0.
    std::size_t idx = 0;
    if (!_opts.observeCell.empty()) {
        idx = _cells.size();
        for (std::size_t i = 0; i < _cells.size(); ++i) {
            if (_cells[i].label.find(_opts.observeCell) !=
                std::string::npos) {
                idx = i;
                break;
            }
        }
        if (idx == _cells.size())
            fatal("--cell '%s' matches no cell label",
                  _opts.observeCell);
    }
    if (_cells.empty())
        return;
    if (!_cells[idx].hasCfg) {
        warn("cell '%s' is a custom cell; --trace-out/--metrics ignored",
             _cells[idx].label);
        return;
    }

    if (!_opts.traceOut.empty())
        _timeline = std::make_unique<obs::Timeline>();
    if (!_opts.metricsSpec.empty())
        _metrics = std::make_unique<obs::MetricsRecorder>(
            obs::MetricsSpec::parse(_opts.metricsSpec));
    _obsIndex = idx;

    const Cell &c = _cells[idx];
    RunObservers o;
    o.timeline = _timeline.get();
    o.metrics = _metrics.get();
    o.profile = _opts.profile;
    _cells[idx].runCell = [c, o] {
        return runBenchmarkObserved(c.benchmark, c.cfg, c.scale,
                                    c.affinity, o);
    };
}

obs::Provenance
Sweep::provenance(const std::string &schema) const
{
    obs::Provenance p;
    p.schema = schema;
    p.tool = _experiment;
    p.configHash = journalIdentity();
    p.faultSpec = _opts.fault.enabled() ? _opts.fault.str()
                                        : std::string("off");
    p.jobs = _opts.jobs ? _opts.jobs : hardwareJobs();
    return p;
}

void
Sweep::run()
{
    hscd_assert(!_ran, "Sweep::run() is single-shot");
    _ran = true;
    setupObservers();

    const auto t0 = std::chrono::steady_clock::now();

    // Warm the compile cache serially: each distinct program compiles
    // exactly once instead of racing first-touch compiles on the pool.
    std::set<std::tuple<std::string, int, bool>> keys;
    for (const Cell &c : _cells)
        if (!c.benchmark.empty() &&
            keys.emplace(c.benchmark, c.scale, c.affinity).second)
            compiledBenchmark(c.benchmark, c.scale, c.affinity);

    // Resume: collect outcomes a prior interrupted run already
    // journaled, keyed by cell index.
    std::vector<Outcome> restored(_cells.size());
    std::vector<char> have(_cells.size(), 0);
    const std::uint64_t identity = journalIdentity();
    bool journal_has_header = false;
    if (_opts.resume && !_opts.checkpointPath.empty()) {
        std::ifstream f(_opts.checkpointPath);
        std::string line;
        if (f && std::getline(f, line)) {
            // Strict header parse: a header torn anywhere - even inside
            // the 16-hex identity - is structurally invalid and the
            // file is rejected as "not a journal", never misparsed as a
            // shorter foreign identity.
            std::uint64_t id = 0;
            if (!parseJournalHeader(line, kJournalMagic, id))
                fatal("'%s' is not a sweep checkpoint journal",
                      _opts.checkpointPath);
            if (id != identity)
                fatal("checkpoint journal '%s' was written by a "
                      "different sweep (identity %016x, expected %016x)",
                      _opts.checkpointPath, id, identity);
            journal_has_header = true;
            std::size_t loaded = 0, torn = 0;
            while (std::getline(f, line)) {
                TokenReader in(line);
                const std::uint64_t idx = in.u64();
                Outcome o;
                if (!in.ok || idx >= _cells.size() ||
                    !decodeResult(in, o.result)) {
                    ++torn; // interrupted writer's tail: re-run the cell
                    continue;
                }
                o.error = in.str();
                if (!in.ok) {
                    ++torn;
                    continue;
                }
                restored[idx] = std::move(o);
                have[idx] = 1;
                ++loaded;
            }
            inform("resume: %d of %d cells restored from '%s'%s", loaded,
                   _cells.size(), _opts.checkpointPath,
                   torn ? csprintf(" (%d torn records re-run)", torn)
                        : std::string());
        }
    }

    // The observed cell must actually execute to fill its recorders; a
    // journaled result can't reproduce the event stream.
    if (_obsIndex < have.size() && have[_obsIndex]) {
        have[_obsIndex] = 0;
        inform("resume: re-running observed cell '%s' to record "
               "observability artifacts", _cells[_obsIndex].label);
    }

    std::ofstream journal;
    std::mutex journal_mtx;
    if (!_opts.checkpointPath.empty()) {
        journal.open(_opts.checkpointPath,
                     journal_has_header ? std::ios::app : std::ios::trunc);
        if (!journal)
            fatal("cannot write checkpoint journal '%s'",
                  _opts.checkpointPath);
        if (!journal_has_header) {
            journal << serve::journalHeader(kJournalMagic, identity)
                    << '\n';
            journal.flush();
        }
    }

    // Whole-campaign deadline: cells that have not *started* when the
    // budget expires are skipped with a transient error (never
    // journaled - a future --resume should re-run them), and the
    // process later exits verify::ExitAbort instead of running over.
    // The same transient path implements graceful SIGINT/SIGTERM.
    const auto deadlineAt =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double, std::milli>(
                     _opts.deadlineMs));

    _results = parallelMap(
        _opts.jobs, _cells.size(), [&](std::size_t i) {
            if (have[i])
                return restored[i];
            if (g_sweepInterrupted) {
                Outcome o;
                o.error = "interrupted: cell skipped (checkpointed "
                          "cells are journaled)";
                o.transient = true;
                return o;
            }
            if (_opts.deadlineMs > 0 &&
                std::chrono::steady_clock::now() >= deadlineAt) {
                Outcome o;
                o.error = csprintf(
                    "deadline: campaign budget of %.0f ms expired "
                    "before this cell started",
                    _opts.deadlineMs);
                o.transient = true;
                return o;
            }
            Outcome o = runGuarded(i);
            if (journal.is_open()) {
                std::ostringstream rec;
                rec << i;
                encodeResult(rec, o.result);
                rec << ' ' << escapeTok(o.error);
                std::lock_guard<std::mutex> lk(journal_mtx);
                journal << rec.str() << '\n';
                journal.flush();
            }
            return o;
        });

    _wallMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
}

const sim::RunResult &
Sweep::operator[](std::size_t i) const
{
    hscd_assert(_ran && i < _results.size(), "sweep cell %d not run", i);
    return _results[i].result;
}

const std::string &
Sweep::error(std::size_t i) const
{
    hscd_assert(_ran && i < _results.size(), "sweep cell %d not run", i);
    return _results[i].error;
}

void
Sweep::exitIfAborted() const
{
    std::size_t skipped = 0;
    for (const Outcome &o : _results)
        if (o.transient)
            ++skipped;
    if (!skipped)
        return;
    const char *why =
        g_sweepInterrupted ? "interrupted" : "deadline expired";
    std::cerr << csprintf(
        "[sweep %s] %s: %d of %d cells skipped%s\n", _experiment, why,
        skipped, _results.size(),
        _opts.checkpointPath.empty()
            ? ""
            : " (completed cells journaled; restart with --resume)");
    std::exit(verify::ExitAbort);
}

void
Sweep::requireAllSound() const
{
    // A structured abort (signal / --deadline-ms) outranks soundness
    // checking: skipped cells hold no results to verify.
    exitIfAborted();
    for (std::size_t i = 0; i < _results.size(); ++i) {
        if (!_results[i].error.empty()) {
            warn("%s: harness error: %s", _cells[i].label,
                 _results[i].error);
            std::exit(verify::ExitInternal);
        }
        requireSound(_results[i].result, _cells[i].label);
    }
}

void
Sweep::finish(std::ostream &os) const
{
    writeJson();
    writeObservability(os);
    // Deliberately the only --jobs-dependent output line.
    os << csprintf("[sweep %s] %d cells, jobs=%d, %.0f ms\n",
                   _experiment, _cells.size(),
                   _opts.jobs ? _opts.jobs : hardwareJobs(), _wallMs);
    // After the artifacts are on disk: an interrupted or over-deadline
    // sweep exits with the structured-abort code, never 0.
    exitIfAborted();
}

void
Sweep::writeObservability(std::ostream &os) const
{
    if (_obsIndex >= _cells.size())
        return;
    const Cell &c = _cells[_obsIndex];
    if (_timeline) {
        std::ofstream f(_opts.traceOut);
        if (!f)
            fatal("cannot write timeline to '%s'", _opts.traceOut);
        _timeline->writePerfetto(f, provenance("hscd-timeline"),
                                 c.cfg.procs, _experiment + "/" + c.label,
                                 timelineNaming());
        os << csprintf("[obs %s] timeline of '%s': %d events "
                       "(%d dropped) -> %s\n",
                       _experiment, c.label, _timeline->events().size(),
                       _timeline->dropped(), _opts.traceOut);
    }
    if (_metrics) {
        std::ofstream f(_opts.metricsOut);
        if (!f)
            fatal("cannot write metrics to '%s'", _opts.metricsOut);
        _metrics->writeJson(f, provenance("hscd-metrics"));
        os << csprintf("[obs %s] metrics of '%s': %d rows "
                       "(%d dropped) -> %s\n",
                       _experiment, c.label, _metrics->size(),
                       _metrics->dropped(), _opts.metricsOut);
    }
}

void
Sweep::writeJson() const
{
    if (_opts.jsonPath.empty())
        return;
    hscd_assert(_ran, "writeJson() before run()");
    std::ofstream f(_opts.jsonPath);
    if (!f)
        fatal("cannot write JSON results to '%s'", _opts.jsonPath);

    f << "{\n  \"provenance\": " << provenance("hscd-sweep").json(2)
      << ",\n";
    f << "  \"experiment\": \"" << jsonEscape(_experiment) << "\",\n";
    f << "  \"cells\": [\n";
    for (std::size_t i = 0; i < _cells.size(); ++i) {
        const Cell &c = _cells[i];
        const sim::RunResult &r = _results[i].result;
        f << "    {\n";
        f << "      \"label\": \"" << jsonEscape(c.label) << "\",\n";
        if (!c.benchmark.empty()) {
            f << "      \"benchmark\": \"" << jsonEscape(c.benchmark)
              << "\",\n";
            f << "      \"scheme\": \"" << jsonEscape(c.scheme)
              << "\",\n";
            f << "      \"scale\": " << c.scale << ",\n";
            f << "      \"affinity\": " << (c.affinity ? "true" : "false")
              << ",\n";
        }
        serve::writeResultCellJson(f, r, _results[i].error);
        f << "\n    }" << (i + 1 < _cells.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
}

} // namespace bench
} // namespace hscd
