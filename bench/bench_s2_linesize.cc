/**
 * @file
 * S2: cache line size sweep. Word-granularity TPI has no false sharing
 * at any line size; the line-granularity directory accumulates
 * false-sharing misses as lines widen.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S2",
                "line-size sweep: miss rate and false sharing", cfg);

    const unsigned lines[] = {4u, 16u, 64u};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S2");
    for (const std::string &name : names) {
        for (unsigned line : lines) {
            MachineConfig ctpi = makeConfig(SchemeKind::TPI);
            ctpi.lineBytes = line;
            MachineConfig chw = makeConfig(SchemeKind::HW);
            chw.lineBytes = line;
            sweep.add(name + "/TPI/" + std::to_string(line) + "B", name,
                      ctpi);
            sweep.add(name + "/HW/" + std::to_string(line) + "B", name,
                      chw);
        }
    }
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("line B")
        .col("TPI miss%")
        .col("HW miss%")
        .col("HW false%")
        .col("TPI falseShare");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        for (unsigned line : lines) {
            const sim::RunResult &rt = sweep[cell++];
            const sim::RunResult &rh = sweep[cell++];
            double hw_false =
                rh.readMisses ? 100.0 * double(rh.missFalseShare) /
                                    double(rh.readMisses)
                              : 0.0;
            t.row()
                .cell(name)
                .cell(line)
                .cell(100.0 * rt.readMissRate, 2)
                .cell(100.0 * rh.readMissRate, 2)
                .cell(hw_false, 1)
                .cell(rt.missFalseShare);
        }
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nTPI's false-sharing column must be identically zero "
                 "(coherence is per word).\n";
    sweep.finish(std::cout);
    return 0;
}
