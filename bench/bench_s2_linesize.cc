/**
 * @file
 * S2: cache line size sweep. Word-granularity TPI has no false sharing
 * at any line size; the line-granularity directory accumulates
 * false-sharing misses as lines widen.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S2",
                "line-size sweep: miss rate and false sharing", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("line B")
        .col("TPI miss%")
        .col("HW miss%")
        .col("HW false%")
        .col("TPI falseShare");
    for (const std::string &name : workloads::benchmarkNames()) {
        for (unsigned line : {4u, 16u, 64u}) {
            MachineConfig ctpi = makeConfig(SchemeKind::TPI);
            ctpi.lineBytes = line;
            MachineConfig chw = makeConfig(SchemeKind::HW);
            chw.lineBytes = line;
            sim::RunResult rt = runBenchmark(name, ctpi);
            sim::RunResult rh = runBenchmark(name, chw);
            requireSound(rt, name);
            requireSound(rh, name);
            double hw_false =
                rh.readMisses ? 100.0 * double(rh.missFalseShare) /
                                    double(rh.readMisses)
                              : 0.0;
            t.row()
                .cell(name)
                .cell(line)
                .cell(100.0 * rt.readMissRate, 2)
                .cell(100.0 * rh.readMissRate, 2)
                .cell(hw_false, 1)
                .cell(rt.missFalseShare);
        }
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nTPI's false-sharing column must be identically zero "
                 "(coherence is per word).\n";
    return 0;
}
