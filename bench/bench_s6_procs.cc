/**
 * @file
 * S6: processor-count scaling, 4 to 64 processors. The paper argues the
 * HSCD scheme suits large-scale machines where directory storage becomes
 * prohibitive; here we check the performance side - the TPI/HW execution
 * time ratio should stay flat (or improve) as the machine grows while
 * Figure 5 (bench_fig5_storage) shows the directory cost exploding.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S6", "processor-count scaling", cfg);

    const unsigned counts[] = {4u, 16u, 64u};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S6");
    for (const std::string &name : names) {
        for (unsigned procs : counts) {
            MachineConfig ct = makeConfig(SchemeKind::TPI);
            ct.procs = procs;
            MachineConfig ch = makeConfig(SchemeKind::HW);
            ch.procs = procs;
            sweep.add(name + "/TPI/p" + std::to_string(procs), name, ct);
            sweep.add(name + "/HW/p" + std::to_string(procs), name, ch);
        }
    }
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("procs")
        .col("TPI cycles")
        .col("HW cycles")
        .col("TPI/HW")
        .col("TPI speedup")
        .col("net load");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        Cycles tpi_base = 0;
        for (unsigned procs : counts) {
            const sim::RunResult &rt = sweep[cell++];
            const sim::RunResult &rh = sweep[cell++];
            if (procs == 4)
                tpi_base = rt.cycles;
            t.row()
                .cell(name)
                .cell(procs)
                .cell(rt.cycles)
                .cell(rh.cycles)
                .cell(double(rt.cycles) / double(rh.cycles), 2)
                .cell(double(tpi_base) / double(rt.cycles) * 4.0, 1)
                .cell(double(rt.trafficPackets) / double(rt.cycles), 3);
        }
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nspeedup is relative to 4 processors (ideal: equals "
                 "the processor count). TPI/HW staying near 1.0 at 64 "
                 "procs, with no directory DRAM, is the paper's "
                 "large-scale argument.\n";
    sweep.finish(std::cout);
    return 0;
}
