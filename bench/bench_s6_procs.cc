/**
 * @file
 * S6: processor-count scaling, 4 to 64 processors. The paper argues the
 * HSCD scheme suits large-scale machines where directory storage becomes
 * prohibitive; here we check the performance side - the TPI/HW execution
 * time ratio should stay flat (or improve) as the machine grows while
 * Figure 5 (bench_fig5_storage) shows the directory cost exploding.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S6", "processor-count scaling", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("procs")
        .col("TPI cycles")
        .col("HW cycles")
        .col("TPI/HW")
        .col("TPI speedup")
        .col("net load");
    for (const std::string &name : workloads::benchmarkNames()) {
        Cycles tpi_base = 0;
        for (unsigned procs : {4u, 16u, 64u}) {
            MachineConfig ct = makeConfig(SchemeKind::TPI);
            ct.procs = procs;
            MachineConfig ch = makeConfig(SchemeKind::HW);
            ch.procs = procs;
            sim::RunResult rt = runBenchmark(name, ct);
            sim::RunResult rh = runBenchmark(name, ch);
            requireSound(rt, name);
            requireSound(rh, name);
            if (procs == 4)
                tpi_base = rt.cycles;
            t.row()
                .cell(name)
                .cell(procs)
                .cell(rt.cycles)
                .cell(rh.cycles)
                .cell(double(rt.cycles) / double(rh.cycles), 2)
                .cell(double(tpi_base) / double(rt.cycles) * 4.0, 1)
                .cell(double(rt.trafficPackets) / double(rt.cycles), 3);
        }
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nspeedup is relative to 4 processors (ideal: equals "
                 "the processor count). TPI/HW staying near 1.0 at 64 "
                 "procs, with no directory DRAM, is the paper's "
                 "large-scale argument.\n";
    return 0;
}
