/**
 * @file
 * S1: timetag-width sensitivity. The paper claims a 4-bit or 8-bit
 * timetag is enough; narrower tags wrap often, and every two-phase reset
 * invalidates a phase worth of cached words.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S1",
                "TPI miss rate vs timetag width (Section 4 sensitivity)",
                cfg);

    const unsigned widths[] = {2u, 3u, 4u, 8u, 16u};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S1");
    for (const std::string &name : names) {
        for (unsigned bits : widths) {
            MachineConfig c = makeConfig(SchemeKind::TPI);
            c.timetagBits = bits;
            sweep.add(name + "/TPI/" + std::to_string(bits) + "b", name, c);
        }
    }
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left);
    for (unsigned bits : widths)
        t.col(std::to_string(bits) + "-bit %");
    t.col("resets@2b").col("cycles 2b/8b");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        t.row().cell(name);
        Counter resets2 = 0;
        Cycles cy2 = 0, cy8 = 0;
        for (unsigned bits : widths) {
            const sim::RunResult &r = sweep[cell++];
            t.cell(100.0 * r.readMissRate, 2);
            if (bits == 2) {
                resets2 = r.missTagReset;
                cy2 = r.cycles;
            }
            if (bits == 8)
                cy8 = r.cycles;
        }
        t.cell(resets2);
        t.cell(double(cy2) / double(cy8), 3);
    }
    t.print(std::cout);
    std::cout << "\nthe 4-bit and 8-bit columns should be essentially "
                 "identical (the paper's claim); 2-bit tags pay for "
                 "frequent two-phase resets.\n";
    sweep.finish(std::cout);
    return 0;
}
