/**
 * @file
 * Figure 11: read miss rates of BASE / SC / TPI / HW on the six
 * benchmarks with the default 64 KB direct-mapped cache.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "F11",
                "read miss rates per scheme (paper Figure 11)", cfg);

    const SchemeKind schemes[] = {SchemeKind::Base, SchemeKind::SC,
                                  SchemeKind::VC, SchemeKind::TPI,
                                  SchemeKind::HW};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "F11");
    for (const std::string &name : names)
        for (SchemeKind k : schemes)
            sweep.add(name, makeConfig(k));
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left);
    for (SchemeKind k : schemes)
        t.col(std::string(schemeName(k)) + " %");
    t.col("TPI/HW");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        t.row().cell(name);
        double tpi = 0, hw = 0;
        for (SchemeKind k : schemes) {
            const sim::RunResult &r = sweep[cell++];
            t.cell(100.0 * r.readMissRate, 2);
            if (k == SchemeKind::TPI)
                tpi = r.readMissRate;
            if (k == SchemeKind::HW)
                hw = r.readMissRate;
        }
        t.cell(hw > 0 ? tpi / hw : 0.0, 2);
    }
    t.print(std::cout);
    std::cout << "\nBASE misses on every shared read by construction; "
                 "TPI tracks HW within a small factor while SC pays for "
                 "every marked read (paper's Figure 11 shape).\n";
    sweep.finish(std::cout);
    return 0;
}
