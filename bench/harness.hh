/**
 * @file
 * Shared harness for the experiment binaries: Figure 8 configuration
 * header, cached benchmark compilation, and run helpers.
 */

#ifndef HSCD_BENCH_HARNESS_HH
#define HSCD_BENCH_HARNESS_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "compiler/analysis.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "sim/machine.hh"

namespace hscd {
namespace bench {

/** The paper's Figure 8 defaults for one scheme. */
MachineConfig makeConfig(SchemeKind scheme);

/** Print the experiment banner plus the Figure 8 configuration table. */
void printHeader(std::ostream &os, const std::string &experiment,
                 const std::string &what, const MachineConfig &cfg);

/** Shared ownership of a compiled program (see compiledBenchmark). */
using CompiledProgramPtr = std::shared_ptr<const compiler::CompiledProgram>;

/**
 * Compile (and cache) a named Perfect-Club-like benchmark. @p affinity
 * selects the serial-affinity compilation mode. Thread-safe: sweep
 * workers may first-touch concurrently. The cache is LRU-bounded (see
 * setCompiledCacheBudget) so a long-lived campaign server cannot grow
 * without bound; the returned shared_ptr keeps a program alive across
 * eviction, so holders are never dangled.
 */
CompiledProgramPtr compiledBenchmark(const std::string &name,
                                     int scale = 2, bool affinity = true);

/** Monotonic counters + occupancy of the compile cache (for /stats). */
struct CompiledCacheStats
{
    std::uint64_t hits = 0;      ///< served from cache
    std::uint64_t builds = 0;    ///< compiled fresh (misses)
    std::uint64_t evictions = 0; ///< LRU evictions past the budget
    std::size_t resident = 0;    ///< programs currently cached
    std::size_t budget = 0;      ///< current budget (entries)
};

CompiledCacheStats compiledCacheStats();

/**
 * Bound the compile cache to @p maxPrograms entries (least recently
 * used evicted first). The default budget is 64; 0 restores it.
 */
void setCompiledCacheBudget(std::size_t maxPrograms);

/**
 * Run one benchmark under one configuration. Thread-safe and
 * deterministic: concurrent calls simulate on independent Machines and
 * produce the same RunResult as a serial call.
 */
sim::RunResult runBenchmark(const std::string &name,
                            const MachineConfig &cfg, int scale = 2,
                            bool affinity = true);

/** Observability attachments for one instrumented run (all optional). */
struct RunObservers
{
    obs::Timeline *timeline = nullptr;       ///< Perfetto event recorder
    obs::MetricsRecorder *metrics = nullptr; ///< time-series sampler
    bool profile = false;                    ///< fill RunResult::profile
};

/**
 * runBenchmark() with observers attached. With profile on, the returned
 * RunResult::profile breaks the wall clock into compile (HIR build +
 * marking; ~0 when the compile cache is already warm), schedule
 * (machine construction), stream-build, and execute phases, plus peak
 * RSS. Not thread-safe with respect to the recorders: callers
 * instrument one run at a time (the sweep engine observes one cell).
 */
sim::RunResult runBenchmarkObserved(const std::string &name,
                                    const MachineConfig &cfg, int scale,
                                    bool affinity, const RunObservers &o);

/** Default display-name mapping for Timeline::writePerfetto. */
obs::Timeline::Naming timelineNaming();

/**
 * Fail loudly if a run violated coherence or aborted - every experiment
 * doubles as an end-to-end check. Exits with verify::ExitViolation (3)
 * on an oracle/shadow/race violation and verify::ExitAbort (4) on a
 * structured abort, so callers can tell a detected failure from the
 * usage-error exit (2).
 */
void requireSound(const sim::RunResult &r, const std::string &label);

} // namespace bench
} // namespace hscd

#endif // HSCD_BENCH_HARNESS_HH
