/**
 * @file
 * S5: the Section 5 design considerations - task scheduling and
 * migration. Shows (a) that TPI's inter-task locality depends on an
 * affine schedule but its correctness never does, and (b) that the
 * serial-affinity compilation assumption is unsound once serial tasks
 * migrate, while affinity-free compilation stays coherent at a modest
 * Time-Read cost.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "hir/builder.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

namespace {

/**
 * A program whose serial epochs carry real serial-to-serial reuse (a
 * bookkeeping array only the serial task touches): with the affinity
 * assumption those reads are unmarked; without it they become
 * Time-Reads.
 */
hscd::hir::Program
serialReuseDemo()
{
    using namespace hscd;
    hir::ProgramBuilder b;
    b.array("BOOK", {256}); // serial bookkeeping state
    b.array("FLD", {256});  // parallel field
    b.proc("MAIN", [&] {
        b.doserial("t", 0, 19, [&] {
            b.doserial("k", 0, 255, [&] { b.write("BOOK", {b.v("k")}); });
            b.doall("i", 0, 255, [&] {
                b.read("FLD", {b.v("i")});
                b.write("FLD", {b.v("i")});
            });
            b.doserial("k2", 0, 255, [&] { b.read("BOOK", {b.v("k2")}); });
        });
    });
    return b.build();
}

} // namespace

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S5",
                "scheduling and task migration (paper Section 5)", cfg);

    const SchedPolicy policies[] = {SchedPolicy::Block, SchedPolicy::Cyclic,
                                    SchedPolicy::Dynamic};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S5");
    for (const std::string &name : names) {
        for (SchedPolicy s : policies) {
            MachineConfig c = makeConfig(SchemeKind::TPI);
            c.sched = s;
            c.dynamicChunk = 2;
            sweep.add(name, c);
        }
    }

    // (b) cells: the serial-reuse demo compiled with and without the
    // affinity assumption, at migration rates 0 and 1. The compiled
    // programs live in main() and outlive the sweep.
    std::vector<compiler::CompiledProgram> demo;
    for (bool affinity : {true, false}) {
        compiler::AnalysisOptions aopts;
        aopts.assumeSerialAffinity = affinity;
        demo.push_back(compiler::compileProgram(serialReuseDemo(), aopts));
    }
    struct DemoCell
    {
        bool affinity;
        double rate;
        std::size_t cell;
    };
    std::vector<DemoCell> demoCells;
    for (bool affinity : {true, false}) {
        const compiler::CompiledProgram &cp = demo[affinity ? 0 : 1];
        for (double rate : {0.0, 1.0}) {
            MachineConfig c = makeConfig(SchemeKind::TPI);
            c.procs = 8;
            c.migrationRate = rate;
            std::size_t idx = sweep.addCustom(
                csprintf("serial-reuse/%s/rate=%.1f",
                         affinity ? "affinity" : "migration-safe", rate),
                [&cp, c] { return sim::simulate(cp, c); });
            demoCells.push_back({affinity, rate, idx});
        }
    }
    sweep.run();

    std::cout << "(a) DOALL schedule vs TPI Time-Read hit rate:\n";
    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("block hit%")
        .col("cyclic hit%")
        .col("dynamic hit%");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        t.row().cell(name);
        for (SchedPolicy s : policies) {
            (void)s;
            const sim::RunResult &r = sweep[cell++];
            requireSound(r, name);
            double hit = r.timeReads ? 100.0 * double(r.timeReadHits) /
                                           double(r.timeReads)
                                     : 0.0;
            t.cell(hit, 1);
        }
    }
    t.print(std::cout);

    std::cout << "\n(b) serial-task migration vs the affinity "
                 "assumption (serial-reuse demo, migration rate 1.0):\n";
    TextTable m;
    m.col("compilation", TextTable::Align::Left)
        .col("migration")
        .col("stale reads")
        .col("time-reads")
        .col("cycles");
    for (const DemoCell &dc : demoCells) {
        const sim::RunResult &r = sweep[dc.cell];
        m.row()
            .cell(dc.affinity ? "affinity assumed" : "migration-safe")
            .cell(dc.rate, 1)
            .cell(r.oracleViolations)
            .cell(r.timeReads)
            .cell(r.cycles);
        if (!dc.affinity && r.oracleViolations) {
            warn("migration-safe compilation must be coherent");
            return 2;
        }
        if (dc.affinity && dc.rate == 0.0 && r.oracleViolations) {
            warn("affinity compilation must be sound without "
                 "migration");
            return 2;
        }
    }
    m.print(std::cout);
    std::cout << "\nthe affinity-compiled row demonstrates WHY the "
                 "assumption must be dropped when the runtime migrates "
                 "serial tasks; the migration-safe row stays at zero "
                 "stale reads.\n";
    sweep.finish(std::cout);
    return 0;
}
