/**
 * @file
 * F9: compiler reference-marking statistics per benchmark - how many
 * static reads end up Normal (read-only / covered / affinity), Time-Read
 * (with which distances), or Bypass. This is the compile-time side of
 * the study (the paper's discussion of conservative marking).
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "F9",
                "static reference marking per benchmark", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("epochs")
        .col("reads")
        .col("writes")
        .col("read-only")
        .col("covered")
        .col("affinity")
        .col("time-read")
        .col("bypass")
        .col("%marked");
    for (const std::string &name : workloads::benchmarkNames()) {
        const CompiledProgramPtr prog = compiledBenchmark(name);
        const compiler::CompiledProgram &cp = *prog;
        const compiler::MarkingStats &st = cp.marking.stats();
        double marked =
            st.reads ? 100.0 * double(st.timeRead + st.bypass) /
                           double(st.reads)
                     : 0.0;
        t.row()
            .cell(name)
            .cell(std::uint64_t(cp.graph.nodes().size()))
            .cell(st.reads)
            .cell(st.writes)
            .cell(st.readOnly)
            .cell(st.covered)
            .cell(st.affinity)
            .cell(st.timeRead)
            .cell(st.bypass)
            .cell(marked, 1);
    }
    t.print(std::cout);

    std::cout << "\nTime-Read distance histogram (static references):\n";
    TextTable h;
    h.col("benchmark", TextTable::Align::Left);
    for (int d = 0; d <= 6; ++d)
        h.col("d=" + std::to_string(d));
    h.col("d>6");
    for (const std::string &name : workloads::benchmarkNames()) {
        const CompiledProgramPtr prog = compiledBenchmark(name);
        const compiler::CompiledProgram &cp = *prog;
        const auto &hist = cp.marking.stats().distanceHist;
        h.row().cell(name);
        std::uint64_t tail = 0;
        for (std::size_t d = 7; d < hist.size(); ++d)
            tail += hist[d];
        for (int d = 0; d <= 6; ++d)
            h.cell(hist[std::size_t(d)]);
        h.cell(tail);
    }
    h.print(std::cout);
    std::cout << "\nsmall distances dominate: a 4- or 8-bit timetag "
                 "window comfortably covers them (paper Section 4).\n";
    return 0;
}
