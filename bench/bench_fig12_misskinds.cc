/**
 * @file
 * F12: decomposition of read misses into cold / replacement / true
 * sharing / false sharing (HW, Tullsen-Eggers) / conservative-compiler
 * (SC, TPI) / tag-reset classes. The paper's central claim: HW's
 * unnecessary misses come from false sharing, TPI's from conservative
 * marking, and the two are comparable.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

namespace {

void
emit(TextTable &t, const std::string &name, SchemeKind k,
     const sim::RunResult &r)
{
    auto pct = [&](Counter c) {
        return r.readMisses ? 100.0 * double(c) / double(r.readMisses)
                            : 0.0;
    };
    t.row()
        .cell(name)
        .cell(schemeName(k))
        .cell(r.readMisses)
        .cell(pct(r.missCold), 1)
        .cell(pct(r.missReplacement), 1)
        .cell(pct(r.missTrueShare), 1)
        .cell(pct(r.missFalseShare), 1)
        .cell(pct(r.missConservative), 1)
        .cell(pct(r.missTagReset), 1)
        .cell(100.0 * double(r.unnecessaryMisses()) /
                  double(r.readMisses ? r.readMisses : 1),
              1);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "F12",
                "read miss decomposition (percent of read misses)", cfg);

    const SchemeKind schemes[] = {SchemeKind::SC, SchemeKind::TPI,
                                  SchemeKind::HW};
    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "F12");
    for (const std::string &name : names)
        for (SchemeKind k : schemes)
            sweep.add(name, makeConfig(k));
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("scheme", TextTable::Align::Left)
        .col("misses")
        .col("cold%")
        .col("repl%")
        .col("true%")
        .col("false%")
        .col("consv%")
        .col("tag%")
        .col("unnecessary%");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        for (SchemeKind k : schemes)
            emit(t, name, k, sweep[cell++]);
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nunnecessary = false sharing (HW) + conservative "
                 "refetches (SC/TPI); the paper finds the two schemes "
                 "pay comparable unnecessary-miss taxes.\n";
    sweep.finish(std::cout);
    return 0;
}
