/**
 * @file
 * F12: decomposition of read misses into cold / replacement / true
 * sharing / false sharing (HW, Tullsen-Eggers) / conservative-compiler
 * (SC, TPI) / tag-reset classes. The paper's central claim: HW's
 * unnecessary misses come from false sharing, TPI's from conservative
 * marking, and the two are comparable.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

namespace {

void
emit(TextTable &t, const std::string &name, SchemeKind k,
     const sim::RunResult &r)
{
    auto pct = [&](Counter c) {
        return r.readMisses ? 100.0 * double(c) / double(r.readMisses)
                            : 0.0;
    };
    t.row()
        .cell(name)
        .cell(schemeName(k))
        .cell(r.readMisses)
        .cell(pct(r.missCold), 1)
        .cell(pct(r.missReplacement), 1)
        .cell(pct(r.missTrueShare), 1)
        .cell(pct(r.missFalseShare), 1)
        .cell(pct(r.missConservative), 1)
        .cell(pct(r.missTagReset), 1)
        .cell(100.0 * double(r.unnecessaryMisses()) /
                  double(r.readMisses ? r.readMisses : 1),
              1);
}

} // namespace

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "F12",
                "read miss decomposition (percent of read misses)", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("scheme", TextTable::Align::Left)
        .col("misses")
        .col("cold%")
        .col("repl%")
        .col("true%")
        .col("false%")
        .col("consv%")
        .col("tag%")
        .col("unnecessary%");
    for (const std::string &name : workloads::benchmarkNames()) {
        for (SchemeKind k :
             {SchemeKind::SC, SchemeKind::TPI, SchemeKind::HW})
        {
            sim::RunResult r = runBenchmark(name, makeConfig(k));
            requireSound(r, name);
            emit(t, name, k, r);
        }
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nunnecessary = false sharing (HW) + conservative "
                 "refetches (SC/TPI); the paper finds the two schemes "
                 "pay comparable unnecessary-miss taxes.\n";
    return 0;
}
