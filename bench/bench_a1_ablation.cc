/**
 * @file
 * A1: ablation of the TPI mechanism itself - which part of the design
 * buys the performance? Three variants per benchmark:
 *
 *   full          - Time-Read(d) check with promotion (the paper),
 *   no-promotion  - passing Time-Reads do not refresh the timetag,
 *   no-distance   - the compiler's distance operand is ignored (every
 *                   Time-Read behaves as d = 0, i.e. "validated this
 *                   epoch or refetch"), which is the hardware-only lower
 *                   bound on compiler support.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "A1",
                "TPI mechanism ablation (design-choice study)", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("variant", TextTable::Align::Left)
        .col("miss %")
        .col("time-read hit %")
        .col("cycles")
        .col("vs full");
    for (const std::string &name : workloads::benchmarkNames()) {
        Cycles full_cycles = 0;
        for (int variant = 0; variant < 3; ++variant) {
            MachineConfig c = makeConfig(SchemeKind::TPI);
            const char *label = "full";
            if (variant == 1) {
                c.tpiPromoteOnHit = false;
                label = "no-promotion";
            } else if (variant == 2) {
                c.tpiUseDistance = false;
                label = "no-distance";
            }
            sim::RunResult r = runBenchmark(name, c);
            requireSound(r, name);
            if (variant == 0)
                full_cycles = r.cycles;
            double hit = r.timeReads ? 100.0 * double(r.timeReadHits) /
                                           double(r.timeReads)
                                     : 0.0;
            t.row()
                .cell(name)
                .cell(label)
                .cell(100.0 * r.readMissRate, 2)
                .cell(hit, 1)
                .cell(r.cycles)
                .cell(double(r.cycles) / double(full_cycles), 2);
        }
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nno-distance collapses Time-Read hits to spatial "
                 "side-fills only: the compiler's epoch-distance operand "
                 "is what makes the timetags useful. no-promotion decays "
                 "once the reuse distance exceeds the marked d.\n";
    return 0;
}
