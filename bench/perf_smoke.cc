/**
 * @file
 * Perf-regression smoke gate for the simulation core (ctest label
 * "perf", see CMakePresets.json preset of the same name).
 *
 * Measures sustained simulated references per second for every scheme
 * on the P1 microbenchmark workload (fast path on) and compares against
 * the committed baseline in BENCH_p1.json. The first run - no baseline
 * file - writes one and only warns; afterwards the test fails when any
 * scheme drops more than 30% below its recorded rate, and ratchets the
 * baseline up when a run beats it. Rates are the best of several short
 * trials, and the ctest entry is RUN_SERIAL, so transient machine load
 * does not fail the gate.
 *
 * The file format is deliberately trivial (one "NAME": rate pair per
 * scheme) so this stays dependency-free; it is not a general JSON
 * parser.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "compiler/analysis.hh"
#include "obs/metrics.hh"
#include "obs/timeline.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace hscd;

namespace {

constexpr double kFailBelowFraction = 0.70; ///< fail under 70% of baseline
constexpr double kObsOverheadLimitPct = 2.0; ///< observability cost ceiling

const SchemeKind kSchemes[] = {SchemeKind::Base, SchemeKind::SC,
                               SchemeKind::TPI, SchemeKind::HW,
                               SchemeKind::VC};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/** Best-of-trials sustained refs/s for one scheme. */
double
measure(const compiler::CompiledProgram &cp, SchemeKind k)
{
    MachineConfig cfg;
    cfg.scheme = k;
    cfg.procs = 8;
    cfg.fastPath = true;
    (void)sim::simulate(cp, cfg); // warm up (builds the cached stream)

    double best = 0;
    for (int trial = 0; trial < 5; ++trial) {
        Counter refs = 0;
        double t0 = now(), elapsed = 0;
        do {
            sim::RunResult r = sim::simulate(cp, cfg);
            refs += r.reads + r.writes;
            elapsed = now() - t0;
        } while (elapsed < 0.06);
        best = std::max(best, double(refs) / elapsed);
    }
    return best;
}

std::map<std::string, double>
readBaseline(const std::string &path)
{
    std::map<std::string, double> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    while (std::getline(in, line)) {
        std::size_t q1 = line.find('"');
        if (q1 == std::string::npos)
            continue;
        std::size_t q2 = line.find('"', q1 + 1);
        std::size_t colon = line.find(':', q2);
        if (q2 == std::string::npos || colon == std::string::npos)
            continue;
        out[line.substr(q1 + 1, q2 - q1 - 1)] =
            std::strtod(line.c_str() + colon + 1, nullptr);
    }
    return out;
}

bool
writeBaseline(const std::string &path,
              const std::map<std::string, double> &rates)
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << "{\n";
    std::size_t i = 0;
    for (const auto &[name, rate] : rates) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.0f", rate);
        os << "  \"" << name << "\": " << buf
           << (++i == rates.size() ? "\n" : ",\n");
    }
    os << "}\n";
    return bool(os);
}

/**
 * Observability-disabled overhead on TPI, percent (negative = noise).
 *
 * A disabled run pays only the branch guards in front of the hooks, so
 * the gate compares two configurations that differ in nothing else:
 * observers fully detached (null pointers) versus "armed but idle" - a
 * metrics recorder attached with an Off spec (every due-gate short-
 * circuits without recording) plus profiling (two clock reads per run).
 * The delta is the guard cost itself, and the gate catches the real
 * regression class: sampling or event work creeping in front of the
 * off-gates. Paired, interleaved, best-of-@p trials per side.
 */
double
obsOverheadPercent(const compiler::CompiledProgram &cp, int trials)
{
    MachineConfig cfg;
    cfg.scheme = SchemeKind::TPI;
    cfg.procs = 8;
    cfg.fastPath = true;
    (void)sim::simulate(cp, cfg); // warm up (builds the cached stream)

    auto rate = [&](bool armed) {
        Counter refs = 0;
        double t0 = now(), elapsed = 0;
        do {
            sim::Machine m(cp, cfg);
            obs::MetricsRecorder idle(obs::MetricsSpec{}); // mode Off
            if (armed) {
                m.setMetrics(&idle);
                m.enableProfiling(true);
            }
            sim::RunResult r = m.run();
            refs += r.reads + r.writes;
            elapsed = now() - t0;
        } while (elapsed < 0.06);
        return double(refs) / elapsed;
    };

    double bestOff = 0, bestOn = 0;
    for (int t = 0; t < trials; ++t) { // interleaved: shares load drift
        bestOff = std::max(bestOff, rate(false));
        bestOn = std::max(bestOn, rate(true));
    }
    return 100.0 * (1.0 - bestOn / bestOff);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : "BENCH_p1.json";
    compiler::CompiledProgram cp =
        compiler::compileProgram(workloads::microJacobi(256, 4));

    std::map<std::string, double> baseline = readBaseline(path);
    std::map<std::string, double> measured;
    for (SchemeKind k : kSchemes)
        measured[schemeName(k)] = measure(cp, k);

    bool regressed = false;
    std::map<std::string, double> next = baseline;
    for (const auto &[name, rate] : measured) {
        auto it = baseline.find(name);
        if (it == baseline.end()) {
            std::printf("perf_smoke: %-5s %12.0f refs/s (no baseline - "
                        "recording)\n",
                        name.c_str(), rate);
            next[name] = rate;
            continue;
        }
        double floor = it->second * kFailBelowFraction;
        std::printf("perf_smoke: %-5s %12.0f refs/s (baseline %.0f, "
                    "floor %.0f)%s\n",
                    name.c_str(), rate, it->second, floor,
                    rate < floor ? "  REGRESSION" : "");
        if (rate < floor)
            regressed = true;
        else if (rate > it->second * 1.05)
            next[name] = rate; // ratchet up, but ignore run-to-run jitter
    }

    // Observability gate: with every observer off, the layer may cost
    // at most kObsOverheadLimitPct of TPI throughput. Perf gates this
    // tight are noise-prone, so a failing first estimate is confirmed
    // with a longer re-measure before it can fail the run.
    double obsPct = obsOverheadPercent(cp, 5);
    if (obsPct > kObsOverheadLimitPct)
        obsPct = obsOverheadPercent(cp, 12);
    std::printf("perf_smoke: obs-off overhead %+.2f%% (limit %.1f%%)%s\n",
                obsPct, kObsOverheadLimitPct,
                obsPct > kObsOverheadLimitPct ? "  REGRESSION" : "");
    if (obsPct > kObsOverheadLimitPct) {
        std::fprintf(stderr,
                     "perf_smoke: FAIL - disabled observability hooks "
                     "cost %.2f%% of TPI throughput on the P1 workload "
                     "(limit %.1f%%). The off-gates must stay in front "
                     "of all sampling work; see src/obs/.\n",
                     obsPct, kObsOverheadLimitPct);
        return 1;
    }

    if (regressed) {
        std::fprintf(stderr,
                     "perf_smoke: FAIL - at least one scheme is >%.0f%% "
                     "below its recorded refs/s baseline (%s). If the "
                     "slowdown is intentional, delete the file and rerun "
                     "to re-record.\n",
                     100.0 * (1.0 - kFailBelowFraction), path.c_str());
        return 1;
    }
    if (next != baseline && !writeBaseline(path, next))
        std::fprintf(stderr,
                     "perf_smoke: warning: could not write %s "
                     "(read-only checkout?)\n",
                     path.c_str());
    return 0;
}
