/**
 * @file
 * S4: write-policy ablation for the write-through schemes. Organizing
 * the write buffer as a small cache (Alpha 21164 style) removes the
 * redundant write-through packets, which matters most for TRFD's
 * accumulation loops.
 */

#include <iostream>
#include <vector>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness.hh"
#include "sweep.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main(int argc, char **argv)
{
    SweepOptions opts = SweepOptions::parse(argc, argv);
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S4",
                "write buffer ablation: plain vs cache-organized", cfg);

    const std::vector<std::string> names = workloads::benchmarkNames();

    Sweep sweep(opts, "S4");
    for (const std::string &name : names) {
        MachineConfig plain = makeConfig(SchemeKind::TPI);
        MachineConfig coal = makeConfig(SchemeKind::TPI);
        coal.writeBufferAsCache = true;
        sweep.add(name + "/TPI/plain-wb", name, plain);
        sweep.add(name + "/TPI/coalescing-wb", name, coal);
    }
    sweep.run();
    sweep.requireAllSound();

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("plain writes")
        .col("coalesced writes")
        .col("reduction")
        .col("cycles plain")
        .col("cycles coalesced");
    std::size_t cell = 0;
    for (const std::string &name : names) {
        const sim::RunResult &rp = sweep[cell++];
        const sim::RunResult &rc = sweep[cell++];
        t.row()
            .cell(name)
            .cell(rp.writePackets)
            .cell(rc.writePackets)
            .cell(csprintf("%.2fx",
                           double(rp.writePackets) /
                               double(rc.writePackets ? rc.writePackets
                                                      : 1)))
            .cell(rp.cycles)
            .cell(rc.cycles);
    }
    t.print(std::cout);
    std::cout << "\nTRFD should show by far the largest reduction "
                 "(repeated accumulation into the same words).\n";
    sweep.finish(std::cout);
    return 0;
}
