/**
 * @file
 * S4: write-policy ablation for the write-through schemes. Organizing
 * the write buffer as a small cache (Alpha 21164 style) removes the
 * redundant write-through packets, which matters most for TRFD's
 * accumulation loops.
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "harness.hh"
#include "workloads/workloads.hh"

using namespace hscd;
using namespace hscd::bench;

int
main()
{
    MachineConfig cfg = makeConfig(SchemeKind::TPI);
    printHeader(std::cout, "S4",
                "write buffer ablation: plain vs cache-organized", cfg);

    TextTable t;
    t.col("benchmark", TextTable::Align::Left)
        .col("plain writes")
        .col("coalesced writes")
        .col("reduction")
        .col("cycles plain")
        .col("cycles coalesced");
    for (const std::string &name : workloads::benchmarkNames()) {
        MachineConfig plain = makeConfig(SchemeKind::TPI);
        MachineConfig coal = makeConfig(SchemeKind::TPI);
        coal.writeBufferAsCache = true;
        sim::RunResult rp = runBenchmark(name, plain);
        sim::RunResult rc = runBenchmark(name, coal);
        requireSound(rp, name);
        requireSound(rc, name);
        t.row()
            .cell(name)
            .cell(rp.writePackets)
            .cell(rc.writePackets)
            .cell(csprintf("%.2fx",
                           double(rp.writePackets) /
                               double(rc.writePackets ? rc.writePackets
                                                      : 1)))
            .cell(rp.cycles)
            .cell(rc.cycles);
    }
    t.print(std::cout);
    std::cout << "\nTRFD should show by far the largest reduction "
                 "(repeated accumulation into the same words).\n";
    return 0;
}
