#include "compiler/analysis.hh"

namespace hscd {
namespace compiler {

CompiledProgram
compileProgram(hir::Program prog, const AnalysisOptions &opts)
{
    CompiledProgram out;
    out.graph = EpochGraph::build(prog, opts.symbolicParams);
    out.marking = Marking::run(prog, out.graph, opts);
    out.summaries = summarizeProcedures(prog);
    out.options = opts;
    out.program = std::move(prog);
    return out;
}

} // namespace compiler
} // namespace hscd
