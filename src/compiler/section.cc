#include "compiler/section.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace compiler {

std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    a = a < 0 ? -a : a;
    b = b < 0 ? -b : b;
    while (b) {
        std::int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

std::int64_t
DimTriplet::count() const
{
    if (empty())
        return 0;
    return (hi - lo) / (stride > 0 ? stride : 1) + 1;
}

bool
DimTriplet::mayOverlap(const DimTriplet &o) const
{
    if (empty() || o.empty())
        return false;
    // Bounding ranges must intersect.
    if (hi < o.lo || o.hi < lo)
        return false;
    // Elements are lo + k*stride and o.lo + m*o.stride; a common value
    // requires (o.lo - lo) divisible by gcd(stride, o.stride). When the
    // residues differ the sections are provably disjoint; otherwise we
    // conservatively report overlap (the smallest common element could in
    // principle lie outside the range intersection).
    std::int64_t g = gcd64(stride, o.stride);
    if (g > 1 && ((o.lo - lo) % g) != 0)
        return false;
    return true;
}

bool
DimTriplet::contains(const DimTriplet &o) const
{
    if (o.empty())
        return true;
    if (empty())
        return false;
    if (o.lo < lo || o.hi > hi)
        return false;
    // Every element of o must land on our lattice.
    std::int64_t s = stride > 0 ? stride : 1;
    if (s == 1)
        return true;
    if ((o.lo - lo) % s != 0)
        return false;
    if (o.count() == 1)
        return true;
    return o.stride % s == 0;
}

DimTriplet
DimTriplet::hull(const DimTriplet &o) const
{
    if (empty())
        return o;
    if (o.empty())
        return *this;
    DimTriplet out;
    out.lo = std::min(lo, o.lo);
    out.hi = std::max(hi, o.hi);
    std::int64_t g = gcd64(stride, o.stride);
    g = gcd64(g, o.lo - lo);
    out.stride = g > 0 ? g : 1;
    return out;
}

std::string
DimTriplet::str() const
{
    if (empty())
        return "<empty>";
    if (lo == hi)
        return std::to_string(lo);
    if (stride == 1)
        return csprintf("%d:%d", lo, hi);
    return csprintf("%d:%d:%d", lo, hi, stride);
}

RegularSection
RegularSection::whole(const hir::ArrayDecl &decl, hir::ArrayId id)
{
    std::vector<DimTriplet> dims;
    dims.reserve(decl.dims.size());
    for (std::int64_t extent : decl.dims)
        dims.push_back(DimTriplet{0, extent - 1, 1});
    return RegularSection(id, std::move(dims));
}

bool
RegularSection::empty() const
{
    if (_dims.empty())
        return true;
    for (const DimTriplet &d : _dims)
        if (d.empty())
            return true;
    return false;
}

bool
RegularSection::mayOverlap(const RegularSection &o) const
{
    if (_array != o._array || empty() || o.empty())
        return false;
    hscd_assert(_dims.size() == o._dims.size(),
                "section rank mismatch on same array");
    for (std::size_t d = 0; d < _dims.size(); ++d)
        if (!_dims[d].mayOverlap(o._dims[d]))
            return false;
    return true;
}

bool
RegularSection::contains(const RegularSection &o) const
{
    if (o.empty())
        return true;
    if (_array != o._array || empty())
        return false;
    for (std::size_t d = 0; d < _dims.size(); ++d)
        if (!_dims[d].contains(o._dims[d]))
            return false;
    return true;
}

RegularSection
RegularSection::hull(const RegularSection &o) const
{
    if (empty())
        return o;
    if (o.empty())
        return *this;
    hscd_assert(_array == o._array, "hull across different arrays");
    std::vector<DimTriplet> dims;
    dims.reserve(_dims.size());
    for (std::size_t d = 0; d < _dims.size(); ++d)
        dims.push_back(_dims[d].hull(o._dims[d]));
    return RegularSection(_array, std::move(dims));
}

std::string
RegularSection::str() const
{
    std::string out = csprintf("arr%d(", _array);
    for (std::size_t d = 0; d < _dims.size(); ++d)
        out += (d ? ", " : "") + _dims[d].str();
    return out + ")";
}

void
SectionSet::add(const RegularSection &s)
{
    if (s.empty())
        return;
    for (RegularSection &t : _terms) {
        if (t.contains(s))
            return;
        if (s.contains(t)) {
            t = s;
            return;
        }
    }
    _terms.push_back(s);
    if (_terms.size() > _maxTerms)
        widen();
}

void
SectionSet::widen()
{
    // Merge the first same-array pair; fall back to merging the last two
    // same-array terms found. (Terms over different arrays never merge.)
    for (std::size_t i = 0; i < _terms.size(); ++i) {
        for (std::size_t j = i + 1; j < _terms.size(); ++j) {
            if (_terms[i].array() == _terms[j].array()) {
                _terms[i] = _terms[i].hull(_terms[j]);
                _terms.erase(_terms.begin() +
                             static_cast<std::ptrdiff_t>(j));
                return;
            }
        }
    }
}

void
SectionSet::unionWith(const SectionSet &o)
{
    for (const RegularSection &s : o._terms)
        add(s);
}

bool
SectionSet::mayOverlap(const RegularSection &s) const
{
    for (const RegularSection &t : _terms)
        if (t.mayOverlap(s))
            return true;
    return false;
}

bool
SectionSet::mayOverlap(const SectionSet &o) const
{
    for (const RegularSection &t : o._terms)
        if (mayOverlap(t))
            return true;
    return false;
}

std::string
SectionSet::str() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < _terms.size(); ++i)
        out += (i ? ", " : "") + _terms[i].str();
    return out + "}";
}

} // namespace compiler
} // namespace hscd
