/**
 * @file
 * The epoch flow graph [21]: the program partitioned into boundary-free
 * code segments with control-flow edges weighted by the number of epoch
 * boundaries crossed (0 within an epoch, 1 across a DOALL entry/exit or an
 * explicit barrier).
 *
 * Nodes are either serial segments (executed by processor 0) or DOALL
 * nodes (whose statements execute once per iteration, distributed over the
 * processors). Procedure calls are virtually inlined, so a static
 * reference (RefId) may occur in several nodes; the marking pass joins
 * conservatively over the occurrences — this is exactly the
 * interprocedural conservatism the paper describes.
 */

#ifndef HSCD_COMPILER_EPOCH_GRAPH_HH
#define HSCD_COMPILER_EPOCH_GRAPH_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "compiler/secbuild.hh"
#include "compiler/section.hh"
#include "hir/program.hh"

namespace hscd {
namespace compiler {

/** A static reference as it occurs in one epoch node. */
struct RefOccur
{
    hir::RefId ref = hir::invalidRef;
    const hir::ArrayRefStmt *stmt = nullptr;
    /** Enclosing loops, outermost first (including the DOALL, if any). */
    std::vector<LoopCtx> loops;
    bool inCritical = false;
    bool conditional = false;
    /**
     * True when an earlier same-task write to the identical affine
     * location dominates this read within the same epoch (array data-flow
     * coverage). Only meaningful for reads.
     */
    bool covered = false;
    /** Section over the full iteration space of the enclosing loops. */
    RegularSection section;
};

using NodeId = std::uint32_t;
constexpr NodeId invalidNode = static_cast<NodeId>(-1);
constexpr std::uint32_t unreachableDist =
    std::numeric_limits<std::uint32_t>::max();

/** Edge with a boundary weight of 0 or 1. */
struct EpochEdge
{
    NodeId to = invalidNode;
    std::uint32_t weight = 0;
};

struct EpochNode
{
    NodeId id = invalidNode;
    bool parallel = false;
    /** DOALL index variable (parallel nodes only). */
    std::string parallelVar;
    /** Contains post/wait: cross-task same-word traffic is legal here. */
    bool hasSync = false;
    std::vector<RefOccur> refs;
    std::vector<EpochEdge> succs;

    std::string label() const;
};

/**
 * May @p r (a read) and @p w (a write) of one DOALL node touch the same
 * word from two different tasks within a single epoch instance? False
 * when some dimension proves the same task (equal coefficient on the
 * DOALL index, zero constant difference) or proves no collision on the
 * iteration lattice.
 */
bool mayCrossTaskCollide(const RefOccur &r, const RefOccur &w,
                         const std::string &par_var);

class EpochGraph
{
  public:
    /**
     * Partition @p prog into the epoch flow graph. With
     * @p symbolic_params the analysis uses declared parameter ranges
     * instead of the bound values.
     */
    static EpochGraph build(const hir::Program &prog,
                            bool symbolic_params = false);

    const std::vector<EpochNode> &nodes() const { return _nodes; }
    NodeId entry() const { return 0; }

    /**
     * Minimum number of epoch boundaries on any path from @p from to
     * @p to (0 means "possibly within the same dynamic epoch");
     * unreachableDist when no path exists.
     */
    std::uint32_t distance(NodeId from, NodeId to) const;

    /**
     * Minimum boundary count around any cycle through @p n back to @p n;
     * unreachableDist when n is not in a cycle. Cycles always cross at
     * least one boundary.
     */
    std::uint32_t cycleDistance(NodeId n) const;

    /** Human-readable dump for the explorer example / diagnostics. */
    std::string str() const;

  private:
    friend class GraphBuilder;

    void computeDistances();

    std::vector<EpochNode> _nodes;
    /** _dist[a][b]: min boundary weight a -> b (0-1 BFS). */
    std::vector<std::vector<std::uint32_t>> _dist;
};

} // namespace compiler
} // namespace hscd

#endif // HSCD_COMPILER_EPOCH_GRAPH_HH
