#include "compiler/summary.hh"

#include "common/log.hh"

namespace hscd {
namespace compiler {

using hir::ArrayRefStmt;
using hir::CallStmt;
using hir::CriticalStmt;
using hir::IfUnknownStmt;
using hir::LoopStmt;
using hir::Program;
using hir::StmtKind;
using hir::StmtList;

namespace {

class Summarizer
{
  public:
    explicit Summarizer(const Program &prog)
        : _prog(prog), _out(prog.procedures().size()),
          _state(prog.procedures().size(), 0)
    {}

    std::vector<ProcSummary>
    run()
    {
        for (hir::ProcIndex p = 0; p < _prog.procedures().size(); ++p)
            summarize(p);
        return std::move(_out);
    }

  private:
    void
    summarize(hir::ProcIndex p)
    {
        if (_state[p] == 2)
            return;
        hscd_assert(_state[p] == 0, "call cycle reached the summarizer");
        _state[p] = 1;
        ProcSummary &sum = _out[p];
        VarRangeEnv env(_prog);
        std::vector<LoopCtx> loops;
        walk(_prog.procedures()[p].body, sum, env, loops, p);
        _state[p] = 2;
    }

    void
    walk(const StmtList &body, ProcSummary &sum, VarRangeEnv &env,
         std::vector<LoopCtx> &loops, hir::ProcIndex p)
    {
        for (const auto &s : body) {
            switch (s->kind()) {
              case StmtKind::ArrayRef: {
                const auto &r = static_cast<const ArrayRefStmt &>(*s);
                RegularSection sec = sectionForRef(_prog, r, loops, env);
                if (r.isWrite)
                    sum.mod.add(sec);
                else
                    sum.use.add(sec);
                ++sum.directRefs;
                ++sum.totalRefs;
                break;
              }
              case StmtKind::Loop: {
                const auto &l = static_cast<const LoopStmt &>(*s);
                if (l.parallel)
                    sum.hasBoundary = true;
                LoopCtx ctx{l.var, l.lo, l.hi, l.step, l.parallel};
                env.push(ctx);
                loops.push_back(ctx);
                walk(l.body, sum, env, loops, p);
                loops.pop_back();
                env.pop();
                break;
              }
              case StmtKind::IfUnknown: {
                const auto &br = static_cast<const IfUnknownStmt &>(*s);
                walk(br.thenBody, sum, env, loops, p);
                walk(br.elseBody, sum, env, loops, p);
                break;
              }
              case StmtKind::Call: {
                const auto &c = static_cast<const CallStmt &>(*s);
                summarize(c.callee);
                const ProcSummary &callee = _out[c.callee];
                sum.mod.unionWith(callee.mod);
                sum.use.unionWith(callee.use);
                sum.hasBoundary |= callee.hasBoundary;
                sum.totalRefs += callee.totalRefs;
                break;
              }
              case StmtKind::Critical: {
                const auto &c = static_cast<const CriticalStmt &>(*s);
                walk(c.body, sum, env, loops, p);
                break;
              }
              case StmtKind::Barrier:
                sum.hasBoundary = true;
                break;
              case StmtKind::Sync:
              case StmtKind::Compute:
                break;
            }
        }
    }

    const Program &_prog;
    std::vector<ProcSummary> _out;
    std::vector<int> _state;
};

} // namespace

std::vector<ProcSummary>
summarizeProcedures(const Program &prog)
{
    return Summarizer(prog).run();
}

bool
summariesMayWrite(const std::vector<ProcSummary> &summaries,
                  const RegularSection &section)
{
    for (const ProcSummary &s : summaries)
        if (s.mod.mayOverlap(section))
            return true;
    return false;
}

bool
summariesMayWrite(const std::vector<ProcSummary> &summaries,
                  const hir::Program &prog, hir::ArrayId array)
{
    return summariesMayWrite(
        summaries, RegularSection::whole(prog.array(array), array));
}

} // namespace compiler
} // namespace hscd
