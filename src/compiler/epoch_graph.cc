#include "compiler/epoch_graph.hh"

#include <deque>
#include <map>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace compiler {

using hir::ArrayRefStmt;
using hir::BarrierStmt;
using hir::CallStmt;
using hir::CriticalStmt;
using hir::IfUnknownStmt;
using hir::IntExpr;
using hir::LoopStmt;
using hir::Program;
using hir::Range;
using hir::Stmt;
using hir::StmtKind;
using hir::StmtList;

/**
 * See epoch_graph.hh.
 *
 * Returns false when some dimension proves both references always land in
 * the same task (equal coefficient on the DOALL index and zero constant
 * difference), or proves different tasks can never collide (constant
 * difference not a multiple of the coefficient).
 */
bool
mayCrossTaskCollide(const RefOccur &r, const RefOccur &w,
                     const std::string &par_var)
{
    const auto &rs = r.stmt->subs;
    const auto &ws = w.stmt->subs;
    hscd_assert(rs.size() == ws.size(), "rank mismatch");
    // DOALL index values form the lattice lo + k*step: two distinct
    // tasks' indices differ by a nonzero multiple of the step.
    std::int64_t step = 1;
    for (const LoopCtx &lc : r.loops) {
        if (lc.parallel && lc.var == par_var) {
            step = lc.step;
            break;
        }
    }
    for (std::size_t d = 0; d < rs.size(); ++d) {
        std::int64_t cr = rs[d].coeff(par_var);
        std::int64_t cw = ws[d].coeff(par_var);
        if (cr == 0 || cw == 0 || cr != cw)
            continue;
        auto delta = rs[d].constantDifference(ws[d]);
        if (!delta)
            continue; // residual varies; cannot separate tasks here
        if (*delta == 0)
            return false; // same task, same location in this dim
        if (*delta % cr != 0)
            return false; // not on the coefficient lattice
        if ((*delta / cr) % step != 0)
            return false; // off the iteration lattice: no collision
        // delta = cr*step*m, m != 0: the read touches another task's
        // element; a legal DOALL cannot do that, but the compiler stays
        // conservative and reports a conflict.
        return true;
    }
    // No dimension separates the tasks: conservative conflict.
    return true;
}


std::string
EpochNode::label() const
{
    if (parallel)
        return csprintf("E%d(DOALL %s)", id, parallelVar);
    return csprintf("E%d(serial)", id);
}

namespace {

/** Set of locations definitely written by the current task so far. */
class CoverState
{
  public:
    void
    add(hir::ArrayId array, const std::vector<IntExpr> &subs)
    {
        for (const IntExpr &e : subs)
            if (e.hasUnknown())
                return; // can't prove the same location later
        if (!covers(array, subs))
            _writes.emplace_back(array, subs);
    }

    bool
    covers(hir::ArrayId array, const std::vector<IntExpr> &subs) const
    {
        for (const auto &[a, s] : _writes)
            if (a == array && s == subs)
                return true;
        return false;
    }

    void clear() { _writes.clear(); }
    std::size_t size() const { return _writes.size(); }

    /** Drop entries added after @p snapshot whose subscripts use @p var,
     *  or all of them when the loop may execute zero times. */
    void
    filterLoopExit(std::size_t snapshot, const std::string &var,
                   bool at_least_one_trip)
    {
        std::size_t keep = snapshot;
        for (std::size_t i = snapshot; i < _writes.size(); ++i) {
            bool uses_var = false;
            for (const IntExpr &e : _writes[i].second)
                if (e.coeff(var) != 0)
                    uses_var = true;
            if (!uses_var && at_least_one_trip) {
                if (keep != i)
                    _writes[keep] = std::move(_writes[i]);
                ++keep;
            }
        }
        _writes.resize(keep);
    }

    /** Keep only entries present in both (post-branch join). */
    void
    intersectWith(const CoverState &o)
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < _writes.size(); ++i) {
            if (o.covers(_writes[i].first, _writes[i].second)) {
                if (keep != i)
                    _writes[keep] = std::move(_writes[i]);
                ++keep;
            }
        }
        _writes.resize(keep);
    }

  private:
    std::vector<std::pair<hir::ArrayId, std::vector<IntExpr>>> _writes;
};

} // namespace

/** Builds the epoch flow graph by structural walk with virtual inlining. */
class GraphBuilder
{
  public:
    GraphBuilder(const Program &prog, bool symbolic_params)
        : _prog(prog), _env(prog, symbolic_params)
    {
        _procBoundary.resize(prog.procedures().size(), -1);
    }

    EpochGraph
    run()
    {
        _cur = newNode(false);
        walk(_prog.main().body);
        _graph.computeDistances();
        return std::move(_graph);
    }

  private:
    NodeId
    newNode(bool parallel, const std::string &var = "")
    {
        EpochNode n;
        n.id = static_cast<NodeId>(_graph._nodes.size());
        n.parallel = parallel;
        n.parallelVar = var;
        _graph._nodes.push_back(std::move(n));
        return _graph._nodes.back().id;
    }

    void
    link(NodeId from, NodeId to, std::uint32_t w)
    {
        _graph._nodes[from].succs.push_back(EpochEdge{to, w});
    }

    bool
    procHasBoundary(hir::ProcIndex p)
    {
        if (_procBoundary[p] >= 0)
            return _procBoundary[p] != 0;
        _procBoundary[p] = 0; // acyclic call graph: safe to seed
        bool b = listHasBoundary(_prog.procedures()[p].body);
        _procBoundary[p] = b ? 1 : 0;
        return b;
    }

    bool
    listHasBoundary(const StmtList &body)
    {
        for (const auto &s : body) {
            switch (s->kind()) {
              case StmtKind::Loop: {
                const auto &l = static_cast<const LoopStmt &>(*s);
                if (l.parallel || listHasBoundary(l.body))
                    return true;
                break;
              }
              case StmtKind::Barrier:
                return true;
              case StmtKind::IfUnknown: {
                const auto &br = static_cast<const IfUnknownStmt &>(*s);
                if (listHasBoundary(br.thenBody) ||
                    listHasBoundary(br.elseBody))
                    return true;
                break;
              }
              case StmtKind::Call: {
                const auto &c = static_cast<const CallStmt &>(*s);
                if (procHasBoundary(c.callee))
                    return true;
                break;
              }
              case StmtKind::Critical: {
                const auto &c = static_cast<const CriticalStmt &>(*s);
                if (listHasBoundary(c.body))
                    return true;
                break;
              }
              default:
                break;
            }
        }
        return false;
    }

    /** Is the loop guaranteed to execute at least one iteration? */
    bool
    atLeastOneTrip(const LoopStmt &l) const
    {
        auto lo = _env.rangeOf(l.lo);
        auto hi = _env.rangeOf(l.hi);
        return lo && hi && hi->lo >= lo->hi;
    }

    void
    addRef(const ArrayRefStmt &ref)
    {
        RefOccur occ;
        occ.ref = ref.id;
        occ.stmt = &ref;
        occ.loops = _loops;
        occ.inCritical = _criticalDepth > 0;
        occ.conditional = _condDepth > 0;
        occ.section = sectionForRef(_prog, ref, _loops, _env);
        if (ref.isWrite) {
            if (_criticalDepth > 0) {
                _criticalCover.add(ref.array, ref.subs);
                _nodeCriticalWrites[_cur].add(occ.section);
            } else {
                _cover.add(ref.array, ref.subs);
            }
        } else {
            occ.covered = _criticalDepth > 0
                              ? _criticalCover.covers(ref.array, ref.subs)
                              : _cover.covers(ref.array, ref.subs);
        }
        _graph._nodes[_cur].refs.push_back(std::move(occ));
    }

    void
    pushLoopVar(const LoopStmt &l)
    {
        LoopCtx ctx{l.var, l.lo, l.hi, l.step, l.parallel};
        _env.push(ctx);
        _loops.push_back(std::move(ctx));
    }

    void
    popLoopVar()
    {
        _env.pop();
        _loops.pop_back();
    }

    void
    walk(const StmtList &body)
    {
        for (const auto &s : body)
            walkStmt(*s);
    }

    void
    walkStmt(const Stmt &s)
    {
        switch (s.kind()) {
          case StmtKind::ArrayRef:
            addRef(static_cast<const ArrayRefStmt &>(s));
            break;
          case StmtKind::Compute:
            break;
          case StmtKind::Loop:
            walkLoop(static_cast<const LoopStmt &>(s));
            break;
          case StmtKind::IfUnknown:
            walkIf(static_cast<const IfUnknownStmt &>(s));
            break;
          case StmtKind::Call: {
            const auto &c = static_cast<const CallStmt &>(s);
            walk(_prog.procedures()[c.callee].body);
            break;
          }
          case StmtKind::Critical: {
            const auto &c = static_cast<const CriticalStmt &>(s);
            ++_criticalDepth;
            if (_criticalDepth == 1)
                _criticalCover.clear();
            walk(c.body);
            --_criticalDepth;
            if (_criticalDepth == 0)
                _criticalCover.clear();
            break;
          }
          case StmtKind::Barrier: {
            NodeId next = newNode(false);
            link(_cur, next, 1);
            _cur = next;
            _cover.clear();
            break;
          }
          case StmtKind::Sync:
            _graph._nodes[_cur].hasSync = true;
            break;
        }
    }

    void
    walkLoop(const LoopStmt &l)
    {
        const bool demoted = l.parallel && _inParallel;
        if (demoted)
            warn("nested DOALL '%s' treated as serial (inner parallelism "
                 "is not exploited)", l.var);

        if (l.parallel && !_inParallel) {
            // A DOALL: its own epoch, bracketed by boundaries.
            NodeId p = newNode(true, l.var);
            link(_cur, p, 1);
            _cur = p;
            pushLoopVar(l);
            CoverState saved = std::move(_cover);
            _cover.clear();
            _inParallel = true;
            walk(l.body);
            _inParallel = false;
            _cover.clear();
            popLoopVar();
            NodeId after = newNode(false);
            link(p, after, 1);
            _cur = after;
            (void)saved; // coverage does not survive epoch boundaries
            return;
        }

        const bool boundary = !_inParallel && listHasBoundary(l.body);
        if (!boundary) {
            // Entirely inside the current epoch.
            pushLoopVar(l);
            std::size_t snapshot = _cover.size();
            walk(l.body);
            _cover.filterLoopExit(snapshot, l.var, atLeastOneTrip(l));
            popLoopVar();
            return;
        }

        // Serial loop spanning epochs.
        NodeId pre = _cur;
        NodeId head = newNode(false);
        link(pre, head, 0);
        _cur = head;
        _cover.clear();
        pushLoopVar(l);
        walk(l.body);
        popLoopVar();
        NodeId tail = _cur;
        link(tail, head, 0); // next iteration
        NodeId exit = newNode(false);
        link(tail, exit, 0);
        if (!atLeastOneTrip(l))
            link(pre, exit, 0); // zero-trip bypass
        _cur = exit;
        _cover.clear();
    }

    void
    walkIf(const IfUnknownStmt &br)
    {
        const bool boundary = !_inParallel && (listHasBoundary(br.thenBody) ||
                                               listHasBoundary(br.elseBody));
        if (!boundary) {
            ++_condDepth;
            CoverState entry = _cover;
            walk(br.thenBody);
            CoverState then_out = std::move(_cover);
            _cover = entry;
            walk(br.elseBody);
            _cover.intersectWith(then_out);
            --_condDepth;
            return;
        }

        NodeId base = _cur;
        _cover.clear();

        NodeId then_entry = newNode(false);
        link(base, then_entry, 0);
        _cur = then_entry;
        walk(br.thenBody);
        NodeId then_out = _cur;

        NodeId else_out = base;
        if (!br.elseBody.empty()) {
            NodeId else_entry = newNode(false);
            link(base, else_entry, 0);
            _cur = else_entry;
            _cover.clear();
            walk(br.elseBody);
            else_out = _cur;
        }

        NodeId join = newNode(false);
        link(then_out, join, 0);
        link(else_out, join, 0);
        _cur = join;
        _cover.clear();
    }

  public:
    /** Per-node sections written inside critical sections (post-filter). */
    std::map<NodeId, SectionSet> _nodeCriticalWrites;

  private:
    const Program &_prog;
    EpochGraph _graph;
    NodeId _cur = invalidNode;
    std::vector<LoopCtx> _loops;
    VarRangeEnv _env;
    int _criticalDepth = 0;
    int _condDepth = 0;
    bool _inParallel = false;
    CoverState _cover;
    CoverState _criticalCover;
    std::vector<int> _procBoundary;
};

EpochGraph
EpochGraph::build(const Program &prog, bool symbolic_params)
{
    GraphBuilder b(prog, symbolic_params);
    EpochGraph g = b.run();

    // Coverage post-filter: a non-critical covered read loses its coverage
    // when a critical-section write in the same epoch may touch the same
    // location (lock-serialized writers may intervene between the covering
    // write and the read).
    for (auto &[node, writes] : b._nodeCriticalWrites) {
        for (RefOccur &occ : g._nodes[node].refs) {
            if (!occ.stmt->isWrite && occ.covered && !occ.inCritical &&
                writes.mayOverlap(occ.section))
                occ.covered = false;
        }
    }

    // Post/wait epochs: another task's write to the covered word may be
    // ordered between the covering write and the read, so coverage only
    // survives when no other task can collide on the word.
    for (EpochNode &node : g._nodes) {
        if (!node.hasSync || !node.parallel)
            continue;
        for (RefOccur &occ : node.refs) {
            if (occ.stmt->isWrite || !occ.covered)
                continue;
            for (const RefOccur &w : node.refs) {
                if (!w.stmt->isWrite ||
                    w.stmt->array != occ.stmt->array)
                    continue;
                if (mayCrossTaskCollide(occ, w, node.parallelVar)) {
                    occ.covered = false;
                    break;
                }
            }
        }
    }
    return g;
}

void
EpochGraph::computeDistances()
{
    const std::size_t n = _nodes.size();
    _dist.assign(n, std::vector<std::uint32_t>(n, unreachableDist));
    for (NodeId src = 0; src < n; ++src) {
        auto &dist = _dist[src];
        std::deque<NodeId> dq;
        dist[src] = 0;
        dq.push_back(src);
        while (!dq.empty()) {
            NodeId u = dq.front();
            dq.pop_front();
            for (const EpochEdge &e : _nodes[u].succs) {
                std::uint32_t nd = dist[u] + e.weight;
                if (nd < dist[e.to]) {
                    dist[e.to] = nd;
                    if (e.weight == 0)
                        dq.push_front(e.to);
                    else
                        dq.push_back(e.to);
                }
            }
        }
    }
}

std::uint32_t
EpochGraph::distance(NodeId from, NodeId to) const
{
    return _dist[from][to];
}

std::uint32_t
EpochGraph::cycleDistance(NodeId n) const
{
    std::uint32_t best = unreachableDist;
    for (const EpochEdge &e : _nodes[n].succs) {
        std::uint32_t back = _dist[e.to][n];
        if (back != unreachableDist && e.weight + back < best)
            best = e.weight + back;
    }
    return best;
}

std::string
EpochGraph::str() const
{
    std::string out;
    for (const EpochNode &n : _nodes) {
        out += n.label() + ":";
        for (const EpochEdge &e : n.succs)
            out += csprintf(" ->E%d(w%d)", e.to, e.weight);
        out += csprintf("  [%d refs]\n", n.refs.size());
    }
    return out;
}

} // namespace compiler
} // namespace hscd
