/**
 * @file
 * Top-level compiler driver: runs epoch partitioning, interprocedural
 * summaries, and Time-Read marking, bundling everything the simulator
 * needs alongside the program itself.
 */

#ifndef HSCD_COMPILER_ANALYSIS_HH
#define HSCD_COMPILER_ANALYSIS_HH

#include <memory>

#include "compiler/epoch_graph.hh"
#include "compiler/marking.hh"
#include "compiler/summary.hh"

namespace hscd {
namespace compiler {

/** A program plus every compile-time artifact of the coherence pass. */
struct CompiledProgram
{
    hir::Program program;
    EpochGraph graph;
    Marking marking;
    std::vector<ProcSummary> summaries;
    AnalysisOptions options;

    /**
     * Lazily-built simulator-side artifacts (the epoch-stream cache of
     * src/sim/stream.cc). Type-erased so the compiler layer stays
     * independent of sim; guarded by a sim-side mutex, and tied to this
     * program's lifetime so cached streams can never dangle.
     */
    mutable std::shared_ptr<void> simCache;
};

/** Run the whole pass pipeline (takes ownership of @p prog). */
CompiledProgram compileProgram(hir::Program prog,
                               const AnalysisOptions &opts = {});

} // namespace compiler
} // namespace hscd

#endif // HSCD_COMPILER_ANALYSIS_HH
