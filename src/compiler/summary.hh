/**
 * @file
 * Interprocedural side-effect analysis: per-procedure MOD/USE section
 * summaries propagated bottom-up over the call graph.
 *
 * Earlier HSCD schemes invalidated the whole cache at procedure
 * boundaries; the paper avoids that by summarizing each procedure's array
 * side effects so callers can reason across call sites. The epoch-graph
 * builder inlines calls for maximum precision, but these summaries are the
 * paper's stated mechanism and are also what a separate-compilation
 * implementation would use; the explorer example prints them.
 */

#ifndef HSCD_COMPILER_SUMMARY_HH
#define HSCD_COMPILER_SUMMARY_HH

#include <vector>

#include "compiler/secbuild.hh"

namespace hscd {
namespace compiler {

struct ProcSummary
{
    SectionSet mod;   ///< sections possibly written
    SectionSet use;   ///< sections possibly read
    bool hasBoundary = false; ///< contains a DOALL or barrier (transitively)
    std::uint32_t directRefs = 0;  ///< refs in the procedure body itself
    std::uint32_t totalRefs = 0;   ///< refs including callees
};

/** Compute summaries for every procedure (bottom-up over call graph). */
std::vector<ProcSummary> summarizeProcedures(const hir::Program &prog);

/**
 * Interprocedural query hooks over the computed summaries, used by the
 * verifier's precision analyses as cheap pre-filters: before solving a
 * per-array dataflow problem, a pass asks whether any procedure could
 * write the array at all (summaries are may-MOD, so "no" is a proof).
 */
bool summariesMayWrite(const std::vector<ProcSummary> &summaries,
                       const RegularSection &section);
bool summariesMayWrite(const std::vector<ProcSummary> &summaries,
                       const hir::Program &prog, hir::ArrayId array);

} // namespace compiler
} // namespace hscd

#endif // HSCD_COMPILER_SUMMARY_HH
