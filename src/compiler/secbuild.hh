/**
 * @file
 * Shared helpers that turn a reference's affine subscripts plus its loop
 * context into a bounded regular section. Used by the epoch flow graph
 * builder and by the interprocedural summary pass.
 */

#ifndef HSCD_COMPILER_SECBUILD_HH
#define HSCD_COMPILER_SECBUILD_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compiler/section.hh"
#include "hir/program.hh"

namespace hscd {
namespace compiler {

/** One enclosing loop of a reference occurrence. */
struct LoopCtx
{
    std::string var;
    hir::IntExpr lo;
    hir::IntExpr hi;
    std::int64_t step = 1;
    bool parallel = false;
};

/**
 * Variable ranges visible at a program point. A mapped nullopt means the
 * variable is live but its range is unknown (unanalyzable bounds).
 */
class VarRangeEnv
{
  public:
    /**
     * Seed with the program's parameters: their concrete values, or
     * their declared ranges when @p symbolic_params is set (one marking
     * for every size in range).
     */
    explicit VarRangeEnv(const hir::Program &prog,
                         bool symbolic_params = false);
    VarRangeEnv() = default;

    /** Enter a loop: bind its index from the bound expressions. */
    void push(const LoopCtx &loop);
    /** Leave the innermost loop, restoring any shadowed binding. */
    void pop();

    /** Conservative range of @p e; nullopt for unknowns/unbound vars. */
    std::optional<hir::Range> rangeOf(const hir::IntExpr &e) const;

  private:
    std::map<std::string, std::optional<hir::Range>> _ranges;
    std::vector<std::pair<std::string, std::optional<std::optional<hir::Range>>>>
        _saves;
};

/**
 * Section over the full iteration space of @p loops for one reference.
 * Unknown or unbounded subscripts widen to the whole dimension.
 */
RegularSection sectionForRef(const hir::Program &prog,
                             const hir::ArrayRefStmt &ref,
                             const std::vector<LoopCtx> &loops,
                             const VarRangeEnv &env);

} // namespace compiler
} // namespace hscd

#endif // HSCD_COMPILER_SECBUILD_HH
