/**
 * @file
 * Stale-reference detection and Time-Read marking.
 *
 * For every static read reference the pass decides how the hardware must
 * treat it:
 *
 *  - Normal: provably fresh (read-only data, intra-task coverage by the
 *    task's own dominating write, or serial-to-serial processor affinity).
 *  - TimeRead(d): potentially stale; the latest conflicting write by a
 *    possibly-different processor lies at least d epoch boundaries back,
 *    so the TPI hardware may hit iff the word's timetag >= EC - d.
 *  - Bypass: must always fetch from memory (lock-protected data).
 *
 * The same marking drives both the TPI and the SC schemes; SC simply
 * cannot exploit the distance operand and refetches every marked read.
 */

#ifndef HSCD_COMPILER_MARKING_HH
#define HSCD_COMPILER_MARKING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"
#include "compiler/epoch_graph.hh"

namespace hscd {
namespace compiler {

enum class MarkKind : std::uint8_t
{
    Normal,
    TimeRead,
    Bypass,
};

enum class MarkReason : std::uint8_t
{
    WriteRef,        ///< writes carry no read mark
    ReadOnly,        ///< no conflicting write reaches this read
    Covered,         ///< dominated by the task's own write (same location)
    SerialAffinity,  ///< all threats and the read execute on processor 0
    Stale,           ///< cross-epoch conflicting write
    SameEpoch,       ///< possibly-conflicting write in the same epoch
    Critical,        ///< lock-protected data
    SyncOrdered,     ///< data passed through post/wait synchronization
};

struct Mark
{
    MarkKind kind = MarkKind::Normal;
    MarkReason reason = MarkReason::ReadOnly;
    /** TimeRead epoch distance (valid when kind == TimeRead). */
    std::uint32_t distance = 0;

    std::string str() const;
};

/**
 * Total severity order over marks: Normal < TimeRead (stricter, i.e.
 * smaller, distances are more severe) < Bypass. The marking pass joins
 * occurrences with it, and the verifier compares compiler marks against
 * oracle requirements with the same scalar, so "weaker/stronger" means
 * one thing everywhere.
 */
std::uint64_t markSeverity(MarkKind kind, std::uint32_t distance);

struct AnalysisOptions
{
    /**
     * Serial epochs are pinned to processor 0, so serial writes cannot
     * leave another processor's copy stale for a serial read. Turn off
     * when the runtime may migrate serial epochs (Section 5 study).
     */
    bool assumeSerialAffinity = true;
    /** Cap for marked distances (the hardware window is bounded anyway). */
    std::uint32_t maxDistance = 255;
    /**
     * Timetag width of the target hardware. Distances saturate to the
     * widest encodable operand, 2^bits - 1: emitting a larger one would
     * rely on the hardware clamping it, which is a contract violation
     * the GRAPH002 lint rejects. Saturating down is always sound — a
     * smaller distance only makes the Time-Read more conservative.
     */
    unsigned timetagBits = 8;
    /**
     * Analyze against declared parameter ranges instead of the bound
     * values: one conservative marking serves every problem size in
     * range (separate-compilation style).
     */
    bool symbolicParams = false;
};

struct MarkingStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t normal = 0;
    std::uint64_t timeRead = 0;
    std::uint64_t bypass = 0;
    std::uint64_t readOnly = 0;
    std::uint64_t covered = 0;
    std::uint64_t affinity = 0;
    /** Histogram of TimeRead distances (index d, capped at 16). */
    std::vector<std::uint64_t> distanceHist = std::vector<std::uint64_t>(17);
};

class Marking
{
  public:
    /** Run the marking over a built epoch graph. */
    static Marking run(const hir::Program &prog, const EpochGraph &graph,
                       const AnalysisOptions &opts = {});

    // Hot loop: the executor consults the mark table once per simulated
    // reference, so release builds skip the bounds check.
    const Mark &
    mark(hir::RefId id) const
    {
        hscd_dassert(id < _marks.size(), "mark for unknown ref %d", id);
        return _marks[id];
    }
    const std::vector<Mark> &marks() const { return _marks; }
    const MarkingStats &stats() const { return _stats; }

    /** Per-reference table for the explorer example. */
    std::string describe(const hir::Program &prog) const;

    /**
     * Replace one reference's mark. Verification hook: tests build
     * deliberately under-marked programs to prove the soundness oracle
     * and the shadow-epoch detector fire, and `hscd_lint --tighten`
     * rewrites proven-over-conservative marks to the minimal sound
     * ones. Call recomputeStats() after a batch of overrides.
     */
    void overrideMark(hir::RefId id, const Mark &m) { _marks.at(id) = m; }

    /** Rebuild the statistics from the current per-reference marks. */
    void recomputeStats(const hir::Program &prog);

  private:
    std::vector<Mark> _marks;
    MarkingStats _stats;
};

} // namespace compiler
} // namespace hscd

#endif // HSCD_COMPILER_MARKING_HH
