#include "compiler/secbuild.hh"

namespace hscd {
namespace compiler {

using hir::IntExpr;
using hir::Range;

VarRangeEnv::VarRangeEnv(const hir::Program &prog, bool symbolic_params)
{
    for (const auto &[name, value] : prog.params().vars()) {
        _ranges[name] = symbolic_params ? prog.paramRange(name)
                                        : Range{value, value};
    }
}

void
VarRangeEnv::push(const LoopCtx &loop)
{
    auto lo = rangeOf(loop.lo);
    auto hi = rangeOf(loop.hi);
    auto it = _ranges.find(loop.var);
    if (it != _ranges.end())
        _saves.emplace_back(loop.var, it->second);
    else
        _saves.emplace_back(loop.var, std::nullopt);
    if (lo && hi)
        _ranges[loop.var] = Range{lo->lo, hi->hi};
    else
        _ranges[loop.var] = std::nullopt;
}

void
VarRangeEnv::pop()
{
    auto [var, saved] = std::move(_saves.back());
    _saves.pop_back();
    if (saved)
        _ranges[var] = *saved;
    else
        _ranges.erase(var);
}

std::optional<Range>
VarRangeEnv::rangeOf(const IntExpr &e) const
{
    if (e.hasUnknown())
        return std::nullopt;
    std::map<std::string, Range> known;
    for (const auto &[v, r] : _ranges)
        if (r)
            known[v] = *r;
    return e.range(known);
}

RegularSection
sectionForRef(const hir::Program &prog, const hir::ArrayRefStmt &ref,
              const std::vector<LoopCtx> &loops, const VarRangeEnv &env)
{
    std::vector<DimTriplet> dims;
    dims.reserve(ref.subs.size());
    for (std::size_t d = 0; d < ref.subs.size(); ++d) {
        const IntExpr &e = ref.subs[d];
        auto r = env.rangeOf(e);
        if (!r) {
            dims.push_back(
                DimTriplet{0, prog.array(ref.array).dims[d] - 1, 1});
            continue;
        }
        DimTriplet t{r->lo, r->hi, 1};
        // Exactly one loop variable => strided access pattern.
        std::string loop_var;
        int loop_vars = 0;
        for (const std::string &v : e.variables()) {
            for (const LoopCtx &lc : loops) {
                if (lc.var == v) {
                    ++loop_vars;
                    loop_var = v;
                    break;
                }
            }
        }
        if (loop_vars == 1) {
            std::int64_t step = 1;
            for (const LoopCtx &lc : loops)
                if (lc.var == loop_var)
                    step = lc.step;
            std::int64_t c = e.coeff(loop_var);
            std::int64_t s = (c < 0 ? -c : c) * step;
            if (s > 1)
                t.stride = s;
        }
        dims.push_back(t);
    }
    return RegularSection(ref.array, std::move(dims));
}

} // namespace compiler
} // namespace hscd
