/**
 * @file
 * Bounded regular array sections.
 *
 * The array data-flow analysis summarizes the elements a reference (or a
 * whole epoch / procedure) may touch as a product of per-dimension
 * triplets lo:hi:stride, the classic "bounded regular section" form. All
 * operations are conservative in the may-analysis direction: overlap may
 * report true for disjoint sections, never false for overlapping ones.
 */

#ifndef HSCD_COMPILER_SECTION_HH
#define HSCD_COMPILER_SECTION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hir/program.hh"

namespace hscd {
namespace compiler {

/** One dimension of a section: {lo..hi step stride}, inclusive. */
struct DimTriplet
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    std::int64_t stride = 1;

    bool empty() const { return lo > hi; }
    std::int64_t count() const;

    /** May this triplet and @p o share an element? Conservative. */
    bool mayOverlap(const DimTriplet &o) const;

    /** Does this triplet contain every element of @p o? (must-analysis) */
    bool contains(const DimTriplet &o) const;

    /** Smallest triplet covering both (stride degrades to gcd). */
    DimTriplet hull(const DimTriplet &o) const;

    bool operator==(const DimTriplet &o) const = default;

    std::string str() const;
};

/** Product of per-dimension triplets over one array. */
class RegularSection
{
  public:
    RegularSection() = default;
    RegularSection(hir::ArrayId array, std::vector<DimTriplet> dims)
        : _array(array), _dims(std::move(dims))
    {}

    /** The whole array. */
    static RegularSection whole(const hir::ArrayDecl &decl,
                                hir::ArrayId id);

    hir::ArrayId array() const { return _array; }
    const std::vector<DimTriplet> &dims() const { return _dims; }

    bool empty() const;
    bool mayOverlap(const RegularSection &o) const;
    bool contains(const RegularSection &o) const;
    RegularSection hull(const RegularSection &o) const;

    bool operator==(const RegularSection &o) const = default;

    std::string str() const;

  private:
    hir::ArrayId _array = hir::invalidArray;
    std::vector<DimTriplet> _dims;
};

/**
 * A may-set of sections per array, with a bounded number of disjuncts;
 * exceeding the bound widens by hulling the closest pair.
 */
class SectionSet
{
  public:
    explicit SectionSet(std::size_t max_terms = 8)
        : _maxTerms(max_terms)
    {}

    void add(const RegularSection &s);
    void unionWith(const SectionSet &o);

    bool mayOverlap(const RegularSection &s) const;
    bool mayOverlap(const SectionSet &o) const;

    bool empty() const { return _terms.empty(); }
    const std::vector<RegularSection> &terms() const { return _terms; }

    std::string str() const;

  private:
    void widen();

    std::size_t _maxTerms;
    std::vector<RegularSection> _terms;
};

/** gcd helper shared with the dependence tests. */
std::int64_t gcd64(std::int64_t a, std::int64_t b);

} // namespace compiler
} // namespace hscd

#endif // HSCD_COMPILER_SECTION_HH
