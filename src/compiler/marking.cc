#include "compiler/marking.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace compiler {

std::string
Mark::str() const
{
    switch (kind) {
      case MarkKind::Normal:
        switch (reason) {
          case MarkReason::WriteRef:
            return "write";
          case MarkReason::Covered:
            return "normal(covered)";
          case MarkReason::SerialAffinity:
            return "normal(affinity)";
          default:
            return "normal(read-only)";
        }
      case MarkKind::TimeRead:
        return csprintf("time-read(d=%d)", distance);
      case MarkKind::Bypass:
        return reason == MarkReason::SyncOrdered ? "bypass(sync)"
                                                 : "bypass(critical)";
    }
    return "?";
}

std::uint64_t
markSeverity(MarkKind kind, std::uint32_t distance)
{
    switch (kind) {
      case MarkKind::Normal:
        return 0;
      case MarkKind::TimeRead:
        return std::uint64_t{1} +
               (std::uint64_t{1} << 32) / (std::uint64_t{distance} + 1);
      case MarkKind::Bypass:
        return ~std::uint64_t{0};
    }
    return 0;
}

namespace {

/** Flat view of one occurrence with its owning node. */
struct Occ
{
    const RefOccur *occ;
    const EpochNode *node;
};

} // namespace

Marking
Marking::run(const hir::Program &prog, const EpochGraph &graph,
             const AnalysisOptions &opts)
{
    Marking result;
    result._marks.assign(prog.refCount(),
                         Mark{MarkKind::Normal, MarkReason::ReadOnly, 0});

    // Gather flat occurrence lists.
    std::vector<Occ> reads, writes;
    for (const EpochNode &node : graph.nodes()) {
        for (const RefOccur &occ : node.refs) {
            if (occ.stmt->isWrite)
                writes.push_back({&occ, &node});
            else
                reads.push_back({&occ, &node});
        }
    }

    // Writes keep the default write mark.
    for (const Occ &w : writes)
        result._marks[w.occ->ref] =
            Mark{MarkKind::Normal, MarkReason::WriteRef, 0};

    std::vector<bool> assigned(prog.refCount(), false);

    auto severity = [](const Mark &m) {
        return markSeverity(m.kind, m.distance);
    };

    for (const Occ &r : reads) {
        Mark m;
        if (r.occ->covered) {
            m = Mark{MarkKind::Normal, MarkReason::Covered, 0};
        } else if (r.occ->inCritical) {
            m = Mark{MarkKind::Bypass, MarkReason::Critical, 0};
        } else {
            std::uint32_t best = unreachableDist;
            bool any = false;
            bool affinity_skipped = false;
            bool critical_same_node = false;
            bool sync_same_node = false;
            for (const Occ &w : writes) {
                if (w.occ->stmt->array != r.occ->stmt->array)
                    continue;
                if (!w.occ->section.mayOverlap(r.occ->section))
                    continue;

                // Serial epochs are pinned to processor 0: a serial write
                // can never leave a serial read's own copy stale (the
                // write-allocate write-through cache keeps the writer's
                // copy current). Per-threat exclusion keeps mixed
                // serial/parallel writer sets precise.
                if (opts.assumeSerialAffinity && !w.node->parallel &&
                    !r.node->parallel)
                {
                    affinity_skipped = true;
                    continue;
                }

                std::uint32_t d = unreachableDist;
                if (w.node == r.node) {
                    // Same static epoch. (a) same-instance conflicts:
                    if (r.node->parallel) {
                        if (w.occ->inCritical ||
                            mayCrossTaskCollide(*r.occ, *w.occ,
                                                r.node->parallelVar))
                        {
                            d = 0;
                            if (w.occ->inCritical)
                                critical_same_node = true;
                            // With post/wait in the epoch, another task
                            // may legally write this word mid-epoch: a
                            // TT == EC copy could still predate it.
                            if (r.node->hasSync)
                                sync_same_node = true;
                        }
                    }
                    // (b) cross-instance around a cycle:
                    std::uint32_t dc = graph.cycleDistance(r.node->id);
                    d = std::min(d, dc);
                } else {
                    d = graph.distance(w.node->id, r.node->id);
                }
                if (d == unreachableDist)
                    continue;
                any = true;
                best = std::min(best, d);
            }

            if (!any) {
                m = Mark{MarkKind::Normal,
                         affinity_skipped ? MarkReason::SerialAffinity
                                          : MarkReason::ReadOnly,
                         0};
            } else if (critical_same_node && best == 0) {
                // Same-epoch lock-protected writers: only a full bypass is
                // safe (a TT == EC copy may still predate the last writer).
                m = Mark{MarkKind::Bypass, MarkReason::Critical, 0};
            } else if (sync_same_node && best == 0) {
                m = Mark{MarkKind::Bypass, MarkReason::SyncOrdered, 0};
            } else {
                // Saturate to what the timetag width can encode: the
                // compiler must not emit an operand it would need the
                // hardware to clamp for it (GRAPH002 checks this).
                const std::uint32_t max_encodable =
                    opts.timetagBits >= 32
                        ? ~std::uint32_t{0}
                        : (std::uint32_t{1} << opts.timetagBits) - 1;
                m = Mark{MarkKind::TimeRead,
                         best == 0 ? MarkReason::SameEpoch
                                   : MarkReason::Stale,
                         std::min({best, opts.maxDistance,
                                   max_encodable})};
            }
        }

        Mark &joined = result._marks[r.occ->ref];
        if (!assigned[r.occ->ref] || severity(m) > severity(joined)) {
            joined = m;
            assigned[r.occ->ref] = true;
        }
    }

    result.recomputeStats(prog);
    return result;
}

void
Marking::recomputeStats(const hir::Program &prog)
{
    MarkingStats &st = _stats;
    st = MarkingStats{};
    for (hir::RefId id = 0; id < prog.refCount(); ++id) {
        const Mark &m = _marks[id];
        if (m.reason == MarkReason::WriteRef) {
            ++st.writes;
            continue;
        }
        ++st.reads;
        switch (m.kind) {
          case MarkKind::Normal:
            ++st.normal;
            if (m.reason == MarkReason::Covered)
                ++st.covered;
            else if (m.reason == MarkReason::SerialAffinity)
                ++st.affinity;
            else
                ++st.readOnly;
            break;
          case MarkKind::TimeRead: {
            ++st.timeRead;
            std::size_t bin =
                std::min<std::size_t>(m.distance,
                                      st.distanceHist.size() - 1);
            ++st.distanceHist[bin];
            break;
          }
          case MarkKind::Bypass:
            ++st.bypass;
            break;
        }
    }
}

std::string
Marking::describe(const hir::Program &prog) const
{
    std::string out;
    for (hir::RefId id = 0; id < prog.refCount(); ++id) {
        const hir::RefInfo &info = prog.refInfo(id);
        std::string subs;
        for (std::size_t i = 0; i < info.stmt->subs.size(); ++i)
            subs += (i ? "," : "") + info.stmt->subs[i].str();
        out += csprintf("ref %-3d %s %s(%s): %s\n", id,
                        info.stmt->isWrite ? "W" : "R",
                        prog.array(info.stmt->array).name, subs,
                        _marks[id].str());
    }
    return out;
}

} // namespace compiler
} // namespace hscd
