/**
 * @file
 * Structured run termination for unrecoverable faults.
 *
 * When retries are exhausted or the watchdog trips, the simulation must
 * stop with a diagnosis instead of spinning or dying on an assert. Sites
 * throw RunAbort; the executor catches it at the top of the dispatch
 * loop, attaches a post-mortem snapshot, and returns a RunResult whose
 * outcome is Abort. Callers (harness, sweep, faultcheck) treat that as a
 * first-class result: detected failure, never a silently wrong answer.
 */

#ifndef HSCD_FAULT_ABORT_HH
#define HSCD_FAULT_ABORT_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hscd {
namespace fault {

enum class AbortKind : std::uint8_t
{
    None,      ///< Run completed normally.
    Protocol,  ///< Reliable delivery exhausted its retry budget.
    Watchdog,  ///< No forward progress for watchdogStallOps operations.
    Deadlock,  ///< Processors parked on flags that can never post.
};

const char *abortKindName(AbortKind k);

/** Post-mortem record embedded in RunResult. */
struct AbortInfo
{
    AbortKind kind = AbortKind::None;
    /** One-line diagnosis from the throwing site. */
    std::string reason;
    /** Machine state at the point of death. */
    std::uint64_t cycle = 0;
    std::uint64_t epoch = 0;
    std::uint32_t proc = 0;
    /** Multi-line snapshot: per-proc times, parked set, scheme state. */
    std::string snapshot;

    bool aborted() const { return kind != AbortKind::None; }

    bool operator==(const AbortInfo &) const = default;
};

/** Thrown by fault sites; caught by the executor, never escapes run(). */
struct RunAbort : std::runtime_error
{
    explicit RunAbort(AbortInfo info_)
        : std::runtime_error(info_.reason), info(std::move(info_))
    {}

    AbortInfo info;
};

} // namespace fault
} // namespace hscd

#endif // HSCD_FAULT_ABORT_HH
