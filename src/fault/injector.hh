/**
 * @file
 * FaultInjector: deterministic, counter-based fault draws.
 *
 * Each injection site keeps a monotonic opportunity counter; every draw
 * hashes (campaign seed, site, counter) through splitmix64. The sequence
 * of faults therefore depends only on the order of injection
 * opportunities inside one simulated machine — which is fixed by the
 * deterministic executor — and never on wall clock, sweep job count, or
 * address-space layout. Re-running the same (workload, config,
 * fault_seed) replays the exact same faults.
 *
 * The injector deliberately has no reference to simulator state: sites
 * ask "does a fault fire here?" and apply the consequence themselves, so
 * the blast radius of each fault kind is visible at its call site.
 */

#ifndef HSCD_FAULT_INJECTOR_HH
#define HSCD_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "fault/plan.hh"

namespace hscd {
namespace fault {

/**
 * One pre-planned firing for scripted injection: the @p nth call to
 * fire(site) (1-based, counting fire() calls only, not draw()s) fires,
 * and the draw() that follows returns @p payload verbatim. Scripts give
 * a caller (the model-checker counterexample replayer) cycle-exact
 * control over which injection opportunity faults and with what effect,
 * instead of searching rate/seed space for a sequence that happens to
 * match.
 */
struct ScriptedFault
{
    Site site = Site::NetDrop;
    std::uint64_t fireIndex = 0;
    std::uint64_t payload = 0;
};

/** Aggregate outcome counters harvested into RunResult. */
struct FaultStats
{
    std::uint64_t injected[kNumSites] = {};
    /** Faults the protocol absorbed (NACK repair, epoch resync, ...). */
    std::uint64_t recovered = 0;
    /** Message retransmissions performed by reliable delivery. */
    std::uint64_t retries = 0;

    std::uint64_t
    totalInjected() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t v : injected)
            n += v;
        return n;
    }
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : _plan(plan) {}

    const FaultPlan &plan() const { return _plan; }

    /**
     * Arm scripted injection. Scripted firings are checked on top of the
     * plan's probabilistic draws (normally combined with rate 0, so the
     * script is the entire fault sequence) and ignore the plan's site
     * mask: the script says exactly what fires, nothing else does.
     */
    void
    script(std::vector<ScriptedFault> s)
    {
        _script = std::move(s);
    }

    bool scripted() const { return !_script.empty(); }

    /**
     * One injection opportunity at @p site: advance that site's counter
     * and report whether a fault fires. Counted in stats when it does.
     */
    bool
    fire(Site site)
    {
        const unsigned i = static_cast<unsigned>(site);
        const std::uint64_t draw = hash(site, ++_counter[i]);
        if (!_script.empty() && scriptHit(site, ++_fires[i])) {
            _stats.injected[i]++;
            return true;
        }
        if (!_plan.siteEnabled(site))
            return false;
        // Top 53 bits -> uniform [0, 1), same mapping as Rng::real().
        const bool hit = (draw >> 11) * (1.0 / 9007199254740992.0)
                         < _plan.rate;
        if (hit)
            _stats.injected[i]++;
        return hit;
    }

    /**
     * Deterministic payload bits for a fault that already fired (which
     * bit to flip, how long a delay, ...). Advances the site counter.
     * A scripted firing's payload is returned verbatim by the draw()
     * that follows it.
     */
    std::uint64_t
    draw(Site site)
    {
        const unsigned i = static_cast<unsigned>(site);
        if (_pendingValid[i]) {
            _pendingValid[i] = false;
            return _pending[i];
        }
        return hash(site, ++_counter[i]);
    }

    void noteRecovered() { _stats.recovered++; }
    void noteRetry() { _stats.retries++; }

    const FaultStats &stats() const { return _stats; }

  private:
    std::uint64_t
    hash(Site site, std::uint64_t counter) const
    {
        // Distinct sites get distinct streams even at equal counters.
        std::uint64_t s = _plan.seed
            ^ (0xa076'1d64'78bd'642full * (static_cast<unsigned>(site) + 1))
            ^ counter;
        return splitmix(s);
    }

    static std::uint64_t
    splitmix(std::uint64_t &state)
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Scripted firing lookup: does entry (site, nth fire) exist? */
    bool
    scriptHit(Site site, std::uint64_t nth)
    {
        for (const ScriptedFault &f : _script) {
            if (f.site == site && f.fireIndex == nth) {
                const unsigned i = static_cast<unsigned>(site);
                _pending[i] = f.payload;
                _pendingValid[i] = true;
                return true;
            }
        }
        return false;
    }

    FaultPlan _plan;
    std::uint64_t _counter[kNumSites] = {};
    /** fire() calls per site (scripted-mode opportunity index). */
    std::uint64_t _fires[kNumSites] = {};
    std::vector<ScriptedFault> _script;
    std::uint64_t _pending[kNumSites] = {};
    bool _pendingValid[kNumSites] = {};
    FaultStats _stats;
};

} // namespace fault
} // namespace hscd

#endif // HSCD_FAULT_INJECTOR_HH
