#include "fault/abort.hh"

#include "common/log.hh"

namespace hscd {
namespace fault {

const char *
abortKindName(AbortKind k)
{
    switch (k) {
      case AbortKind::None:
        return "none";
      case AbortKind::Protocol:
        return "protocol";
      case AbortKind::Watchdog:
        return "watchdog";
      case AbortKind::Deadlock:
        return "deadlock";
    }
    panic("bad AbortKind %d", static_cast<int>(k));
}

} // namespace fault
} // namespace hscd
