#include "fault/plan.hh"

#include <cstdlib>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/strutil.hh"

namespace hscd {
namespace fault {

namespace {

const char *const kSiteNames[kNumSites] = {
    "net.drop", "net.dup", "net.delay", "net.reorder",
    "mem.tag",  "mem.epoch", "dir.presence",
};

/** Map one SITES token to its mask bits, or 0 if unrecognised. */
unsigned
parseSiteToken(const std::string &tok)
{
    if (tok == "all")
        return kSitesAll;
    if (tok == "net")
        return kSitesNet;
    if (tok == "mem")
        return kSitesMem;
    if (tok == "dir")
        return kSitesDir;
    for (unsigned i = 0; i < kNumSites; i++) {
        if (tok == kSiteNames[i])
            return 1u << i;
    }
    return 0;
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        out.push_back(s.substr(start, pos - start));
        if (pos == std::string::npos)
            break;
        start = pos + 1;
    }
    return out;
}

} // namespace

const char *
siteName(Site s)
{
    const unsigned i = static_cast<unsigned>(s);
    hscd_assert(i < kNumSites, "bad fault site %u", i);
    return kSiteNames[i];
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    const std::vector<std::string> parts = splitOn(spec, ':');
    if (parts.size() > 3 || parts[0].empty())
        fatal("bad --fault spec '%s': want RATE[:SEED[:SITES]]", spec);

    FaultPlan plan;
    char *end = nullptr;
    plan.rate = std::strtod(parts[0].c_str(), &end);
    if (*end != '\0' || plan.rate < 0.0 || plan.rate > 1.0)
        fatal("bad --fault rate '%s': want a probability in [0, 1]",
              parts[0]);

    if (parts.size() >= 2 && !parts[1].empty()) {
        plan.seed = std::strtoull(parts[1].c_str(), &end, 0);
        if (*end != '\0')
            fatal("bad --fault seed '%s'", parts[1]);
    }

    if (parts.size() >= 3) {
        plan.sites = 0;
        for (const std::string &tok : splitOn(parts[2], ',')) {
            const unsigned bits = parseSiteToken(tok);
            if (!bits)
                fatal("bad --fault site '%s': want all, net, mem, dir, "
                      "or a site name like net.drop", tok);
            plan.sites |= bits;
        }
    }
    return plan;
}

std::string
FaultPlan::str() const
{
    std::string sites_str;
    if (sites == kSitesAll) {
        sites_str = "all";
    } else {
        for (unsigned i = 0; i < kNumSites; i++) {
            if (!(sites & (1u << i)))
                continue;
            if (!sites_str.empty())
                sites_str += ',';
            sites_str += kSiteNames[i];
        }
        if (sites_str.empty())
            sites_str = "none";
    }
    return csprintf("%g:%d:%s", rate, seed, sites_str);
}

FaultPlan
planForCell(const FaultPlan &plan, std::uint64_t index)
{
    FaultPlan cell = plan;
    // splitmix output is a bijection of (seed + offset), so distinct cell
    // indices can never collapse onto the same derived seed stream.
    std::uint64_t s = plan.seed + 0x9e3779b97f4a7c15ull * index;
    cell.seed = splitmix64(s);
    return cell;
}

} // namespace fault
} // namespace hscd
