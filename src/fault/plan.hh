/**
 * @file
 * FaultPlan: the user-facing description of a fault-injection campaign.
 *
 * A plan is (seed, rate, site mask). It is deliberately tiny and
 * dependency-free so MachineConfig can embed one by value: the plan is
 * part of a run's identity, and any failure it provokes reproduces
 * byte-identically from (workload, config, fault_seed) alone.
 *
 * Sites name the injection points threaded through the memory and
 * network layers:
 *
 *  - net.drop     a coherence/protocol message is lost in the network
 *                 and must be retransmitted (bounded exponential
 *                 backoff; exhaustion is a structured protocol abort)
 *  - net.dup      a message is delivered twice (idempotent protocols
 *                 absorb it; it still costs traffic)
 *  - net.delay    a message is queued behind cross traffic for extra
 *                 cycles
 *  - net.reorder  a message is overtaken by younger traffic; in a
 *                 one-message-at-a-time simulation this manifests as a
 *                 (larger) delivery delay on the overtaken message
 *  - mem.tag      a stored cache tag bit flips: a TPI timetag (or the
 *                 word valid bit), or an SC line valid bit
 *  - mem.epoch    a processor's epoch-counter register is corrupted; the
 *                 barrier broadcast detects the mismatch and the
 *                 processor recovers by flash-invalidating its cache
 *  - dir.presence a directory presence bit flips: a spurious bit is
 *                 NACKed and repaired on the next invalidation, a
 *                 cleared bit leaves a stale sharer the soundness
 *                 oracles must catch
 */

#ifndef HSCD_FAULT_PLAN_HH
#define HSCD_FAULT_PLAN_HH

#include <cstdint>
#include <string>

namespace hscd {
namespace fault {

/** One class of injection point. Also indexes the per-site counters. */
enum class Site : std::uint8_t
{
    NetDrop,
    NetDup,
    NetDelay,
    NetReorder,
    MemTagFlip,
    MemEpochFlip,
    DirPresenceFlip,
};

constexpr unsigned kNumSites = 7;

const char *siteName(Site s);

/** Site-mask bits (1 << Site). */
constexpr unsigned
siteBit(Site s)
{
    return 1u << static_cast<unsigned>(s);
}

constexpr unsigned kSitesNet =
    siteBit(Site::NetDrop) | siteBit(Site::NetDup) |
    siteBit(Site::NetDelay) | siteBit(Site::NetReorder);
constexpr unsigned kSitesMem =
    siteBit(Site::MemTagFlip) | siteBit(Site::MemEpochFlip);
constexpr unsigned kSitesDir = siteBit(Site::DirPresenceFlip);
constexpr unsigned kSitesAll = kSitesNet | kSitesMem | kSitesDir;

struct FaultPlan
{
    /** Per-opportunity injection probability; 0 disables everything. */
    double rate = 0.0;
    /** Campaign seed; every draw derives from it deterministically. */
    std::uint64_t seed = 1;
    /** Which Site classes may fire (kSites* combinations). */
    unsigned sites = kSitesAll;

    bool enabled() const { return rate > 0.0 && sites != 0; }
    bool siteEnabled(Site s) const { return (sites & siteBit(s)) != 0; }

    /**
     * Parse a `--fault=` axis spec: `RATE[:SEED[:SITES]]` where SITES is
     * a comma-separated list of `net`, `mem`, `dir`, `all`, or an
     * individual site name (`net.drop`, `mem.tag`, ...). fatal() on
     * malformed input.
     */
    static FaultPlan parse(const std::string &spec);

    std::string str() const;

    bool operator==(const FaultPlan &) const = default;
};

/**
 * Derive the per-cell plan for cell @p index of a sweep: same rate and
 * sites, but an independent seed, so a sweep's cells exercise different
 * fault sequences while each remains individually reproducible.
 */
FaultPlan planForCell(const FaultPlan &plan, std::uint64_t index);

} // namespace fault
} // namespace hscd

#endif // HSCD_FAULT_PLAN_HH
