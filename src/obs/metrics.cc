#include "obs/metrics.hh"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace obs {

namespace {

/** Field-name list, expanded from the schema X-macro. */
const char *const kFieldNames[] = {
#define HSCD_METRIC_NAME(name) #name,
    HSCD_METRIC_U64_FIELDS(HSCD_METRIC_NAME)
#undef HSCD_METRIC_NAME
    "networkLoad",
};
constexpr std::size_t kNumFields =
    sizeof(kFieldNames) / sizeof(kFieldNames[0]);

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        v = v * 10 + std::uint64_t(c - '0');
    }
    out = v;
    return true;
}

/** Render a double so it round-trips exactly and never uses exponents a
 *  strict reader would choke on; load fractions are small and benign. */
std::string
renderDouble(double v)
{
    std::string s = csprintf("%.9g", v);
    return s;
}

} // namespace

MetricsSpec
MetricsSpec::parse(const std::string &s)
{
    MetricsSpec spec;
    if (s.empty() || s == "off")
        return spec;

    // Split on ':' into mode, optional count, optional cap=N (cap may
    // appear as any later component).
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
        if (c == ':') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);

    const std::string &mode = parts[0];
    if (mode == "epoch") {
        spec.mode = Mode::Epoch;
    } else if (mode == "cycles") {
        spec.mode = Mode::Cycles;
    } else {
        fatal("bad --metrics spec '%s': mode must be 'epoch' or 'cycles'",
              s);
    }

    bool sawEvery = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &p = parts[i];
        if (p.rfind("cap=", 0) == 0) {
            std::uint64_t cap = 0;
            if (!parseU64(p.substr(4), cap) || cap == 0)
                fatal("bad --metrics spec '%s': cap must be a positive "
                      "integer", s);
            spec.cap = static_cast<std::size_t>(cap);
        } else if (!sawEvery) {
            if (!parseU64(p, spec.every) || spec.every == 0)
                fatal("bad --metrics spec '%s': interval must be a "
                      "positive integer", s);
            sawEvery = true;
        } else {
            fatal("bad --metrics spec '%s': unexpected component '%s'",
                  s, p);
        }
    }
    if (spec.mode == Mode::Cycles && !sawEvery)
        fatal("bad --metrics spec '%s': 'cycles' needs an interval, "
              "e.g. cycles:5000", s);
    return spec;
}

std::string
MetricsSpec::str() const
{
    switch (mode) {
      case Mode::Off:
        return "off";
      case Mode::Epoch:
        return every == 1 ? csprintf("epoch:cap=%d", cap)
                          : csprintf("epoch:%d:cap=%d", every, cap);
      case Mode::Cycles:
        return csprintf("cycles:%d:cap=%d", every, cap);
    }
    return "off";
}

MetricsRecorder::MetricsRecorder(MetricsSpec spec) : _spec(spec)
{
    _ring.reserve(std::min<std::size_t>(_spec.cap, 1024));
    if (_spec.mode == MetricsSpec::Mode::Cycles)
        _nextAt = _spec.every;
}

void
MetricsRecorder::record(const MetricSample &s)
{
    if (_ring.size() < _spec.cap) {
        _ring.push_back(s);
    } else {
        _ring[_head] = s;
        _head = (_head + 1) % _spec.cap;
        _full = true;
        ++_dropped;
    }
    if (_spec.mode == MetricsSpec::Mode::Cycles) {
        // Advance past the sample's cycle so bursty reference streams
        // produce one row per interval, not one per reference.
        while (_nextAt <= s.cycle)
            _nextAt += _spec.every;
    }
}

std::vector<MetricSample>
MetricsRecorder::rows() const
{
    if (!_full)
        return _ring;
    std::vector<MetricSample> out;
    out.reserve(_ring.size());
    for (std::size_t i = 0; i < _ring.size(); ++i)
        out.push_back(_ring[(_head + i) % _ring.size()]);
    return out;
}

std::size_t
MetricsRecorder::size() const
{
    return _ring.size();
}

void
MetricsRecorder::writeJson(std::ostream &os, const Provenance &prov) const
{
    os << "{\n";
    os << "  \"provenance\": " << prov.json(2) << ",\n";
    os << csprintf("  \"spec\": \"%s\",\n", jsonEscape(_spec.str()));
    os << csprintf("  \"dropped\": %d,\n", _dropped);
    os << "  \"fields\": [";
    for (std::size_t i = 0; i < kNumFields; ++i)
        os << (i ? ", " : "") << '"' << kFieldNames[i] << '"';
    os << "],\n";
    os << "  \"rows\": [";
    const auto ordered = rows();
    for (std::size_t i = 0; i < ordered.size(); ++i) {
        const MetricSample &r = ordered[i];
        os << (i ? ",\n    [" : "\n    [");
        bool first = true;
#define HSCD_METRIC_EMIT(name)                                               \
        os << (first ? "" : ", ") << r.name;                                 \
        first = false;
        HSCD_METRIC_U64_FIELDS(HSCD_METRIC_EMIT)
#undef HSCD_METRIC_EMIT
        (void)first;
        os << ", " << renderDouble(r.networkLoad) << "]";
    }
    os << "\n  ]\n";
    os << "}\n";
}

bool
readMetricsJson(std::istream &is, std::vector<MetricSample> &rows,
                std::string *spec_str)
{
    rows.clear();
    std::string line;
    bool sawFields = false;
    bool inRows = false;
    while (std::getline(is, line)) {
        // Trim leading whitespace.
        std::size_t b = line.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        std::string t = line.substr(b);

        if (spec_str && t.rfind("\"spec\":", 0) == 0) {
            std::size_t q1 = t.find('"', 7);
            std::size_t q2 = q1 == std::string::npos
                ? std::string::npos : t.find('"', q1 + 1);
            if (q2 != std::string::npos)
                *spec_str = t.substr(q1 + 1, q2 - q1 - 1);
        }

        if (t.rfind("\"fields\":", 0) == 0) {
            // Validate the schema matches ours, field for field.
            std::vector<std::string> names;
            std::size_t pos = t.find('[');
            while (pos != std::string::npos) {
                std::size_t q1 = t.find('"', pos);
                if (q1 == std::string::npos)
                    break;
                std::size_t q2 = t.find('"', q1 + 1);
                if (q2 == std::string::npos)
                    break;
                names.push_back(t.substr(q1 + 1, q2 - q1 - 1));
                pos = q2 + 1;
            }
            if (names.size() != kNumFields)
                return false;
            for (std::size_t i = 0; i < kNumFields; ++i)
                if (names[i] != kFieldNames[i])
                    return false;
            sawFields = true;
            continue;
        }

        if (t.rfind("\"rows\":", 0) == 0) {
            inRows = true;
            continue;
        }
        if (!inRows)
            continue;
        if (t[0] == ']' || t[0] == '}') {
            inRows = false;
            continue;
        }
        if (t[0] != '[')
            continue;

        // Parse one numeric row.
        std::vector<double> vals;
        std::size_t i = 1;
        while (i < t.size() && t[i] != ']') {
            while (i < t.size() && (t[i] == ' ' || t[i] == ','))
                ++i;
            std::size_t j = i;
            while (j < t.size() && t[j] != ',' && t[j] != ']')
                ++j;
            if (j > i) {
                try {
                    vals.push_back(std::stod(t.substr(i, j - i)));
                } catch (...) {
                    return false;
                }
            }
            i = j;
        }
        if (vals.size() != kNumFields)
            return false;
        MetricSample s;
        std::size_t k = 0;
#define HSCD_METRIC_READ(name)                                               \
        s.name = static_cast<std::uint64_t>(vals[k++]);
        HSCD_METRIC_U64_FIELDS(HSCD_METRIC_READ)
#undef HSCD_METRIC_READ
        s.networkLoad = vals[k];
        rows.push_back(s);
    }
    return sawFields;
}

} // namespace obs
} // namespace hscd
