/**
 * @file
 * Time-series metrics: an interval sampler that snapshots simulator
 * counters per epoch (or per N simulated cycles) into a bounded ring
 * buffer, exported as a compact column-oriented JSON series.
 *
 * The executor owns the sampling sites (epoch boundaries and the
 * per-reference hot loop); this module owns the spec grammar, the ring,
 * and the schema. Samples carry *cumulative* counters - consumers
 * (hscd_inspect, plots) diff adjacent rows for per-interval rates, so a
 * capped ring that dropped its oldest rows still yields exact deltas
 * inside the retained window.
 *
 * Spec grammar (the `--metrics=` argument):
 *
 *     epoch            sample at every epoch boundary
 *     epoch:K          sample every K-th epoch boundary
 *     cycles:N         sample at the first reference >= each N-cycle mark
 *     ...[:cap=M]      keep at most M newest rows (default 65536)
 */

#ifndef HSCD_OBS_METRICS_HH
#define HSCD_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/provenance.hh"

namespace hscd {
namespace obs {

/**
 * One metrics row. Every field is cumulative-since-run-start except
 * `networkLoad` (the offered load of the most recently closed network
 * window) and `writePending` (outstanding write-drain cycles summed
 * over processors at the sample point).
 *
 * The X-macro is the single source of truth for the schema: the JSON
 * writer, the reader, and the field-name list all expand from it, so
 * they cannot drift apart.
 */
#define HSCD_METRIC_U64_FIELDS(X)                                            \
    X(epoch)                                                                 \
    X(cycle)                                                                 \
    X(reads)                                                                 \
    X(writes)                                                                \
    X(readMisses)                                                            \
    X(missCold)                                                              \
    X(missReplacement)                                                       \
    X(missTrueShare)                                                         \
    X(missFalseShare)                                                        \
    X(missConservative)                                                      \
    X(missTagReset)                                                          \
    X(missUncached)                                                          \
    X(timeReads)                                                             \
    X(timeReadHits)                                                          \
    X(bypassReads)                                                           \
    X(trafficPackets)                                                        \
    X(trafficWords)                                                          \
    X(tagResets)                                                             \
    X(faultsInjected)                                                        \
    X(writePending)

struct MetricSample
{
#define HSCD_METRIC_DECL(name) std::uint64_t name = 0;
    HSCD_METRIC_U64_FIELDS(HSCD_METRIC_DECL)
#undef HSCD_METRIC_DECL
    double networkLoad = 0;

    bool operator==(const MetricSample &) const = default;
};

/** Parsed `--metrics=` spec. */
struct MetricsSpec
{
    enum class Mode : std::uint8_t { Off, Epoch, Cycles };

    Mode mode = Mode::Off;
    std::uint64_t every = 1;     ///< K epochs / N cycles between samples
    std::size_t cap = 65536;     ///< ring capacity (newest rows win)

    bool enabled() const { return mode != Mode::Off; }

    /** Parse the grammar above; fatal() on a malformed spec. */
    static MetricsSpec parse(const std::string &s);
    /** Canonical round-trippable spelling. */
    std::string str() const;

    bool operator==(const MetricsSpec &) const = default;
};

/** Bounded recorder for metric samples (newest `cap` rows retained). */
class MetricsRecorder
{
  public:
    explicit MetricsRecorder(MetricsSpec spec);

    const MetricsSpec &spec() const { return _spec; }

    /** Epoch-mode gate: sample at this boundary? */
    bool
    dueEpoch(EpochId epoch) const
    {
        return _spec.mode == MetricsSpec::Mode::Epoch &&
               epoch % _spec.every == 0;
    }

    /** Cycles-mode gate (hot path: one compare when a recorder is
     *  attached; record() advances the next threshold). */
    bool
    dueCycle(Cycles now) const
    {
        return _spec.mode == MetricsSpec::Mode::Cycles && now >= _nextAt;
    }

    void record(const MetricSample &s);

    /** Retained rows, oldest first. */
    std::vector<MetricSample> rows() const;
    std::size_t size() const;
    /** Rows evicted by the ring cap. */
    std::uint64_t dropped() const { return _dropped; }

    /** Emit the JSON series (schema "hscd-metrics"). */
    void writeJson(std::ostream &os, const Provenance &prov) const;

  private:
    MetricsSpec _spec;
    std::vector<MetricSample> _ring;
    std::size_t _head = 0;        ///< insert slot once the ring is full
    bool _full = false;
    std::uint64_t _dropped = 0;
    Cycles _nextAt = 0;           ///< cycles mode: next sample threshold
};

/**
 * Parse a metrics JSON file produced by writeJson (rigid format - not a
 * general JSON parser). Returns false on any schema mismatch; on
 * success fills @p rows (and @p spec_str when non-null).
 */
bool readMetricsJson(std::istream &is, std::vector<MetricSample> &rows,
                     std::string *spec_str = nullptr);

} // namespace obs
} // namespace hscd

#endif // HSCD_OBS_METRICS_HH
