/**
 * @file
 * Self-profiling: scoped wall-clock probes around the compile ->
 * schedule -> stream-build -> execute phases plus a peak-RSS sample,
 * so a BENCH_p1-style regression is attributable to a phase.
 *
 * PhaseProfile rides inside RunResult. Wall-clock times are
 * nondeterministic, so the struct is deliberately invisible to the
 * determinism contract: operator== always returns true, and it is
 * excluded from RunResult::fingerprint() and the sweep journal (a
 * resumed cell reports a zero profile).
 */

#ifndef HSCD_OBS_PROFILE_HH
#define HSCD_OBS_PROFILE_HH

#include <cstdint>
#include <string>

namespace hscd {
namespace obs {

struct PhaseProfile
{
    double compileMs = 0;   ///< HIR build + marking analysis
    double scheduleMs = 0;  ///< task-stream scheduling
    double streamMs = 0;    ///< epoch-stream program build (fast path)
    double execMs = 0;      ///< simulation proper
    std::uint64_t rssPeakKb = 0;  ///< ru_maxrss at end of run

    bool any() const
    {
        return compileMs != 0 || scheduleMs != 0 || streamMs != 0 ||
               execMs != 0 || rssPeakKb != 0;
    }

    /** Render as a one-line JSON object. */
    std::string json() const;

    /**
     * Always equal: profiles are wall-clock noise and must not perturb
     * RunResult's defaulted equality (fastpath-equivalence and
     * determinism suites compare RunResults directly).
     */
    bool operator==(const PhaseProfile &) const { return true; }
};

/** Milliseconds from a monotonic clock. */
double nowMs();

/** Peak RSS of this process in KiB (0 where unsupported). */
std::uint64_t currentRssPeakKb();

/** Scoped timer: adds the elapsed wall time to *slot on destruction.
 *  A null slot makes the probe a no-op (the disabled path). */
class PhaseTimer
{
  public:
    explicit PhaseTimer(double *slot)
        : _slot(slot), _start(slot ? nowMs() : 0) {}
    ~PhaseTimer()
    {
        if (_slot)
            *_slot += nowMs() - _start;
    }
    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    double *_slot;
    double _start;
};

} // namespace obs
} // namespace hscd

#endif // HSCD_OBS_PROFILE_HH
