#include "obs/timeline.hh"

#include <istream>
#include <ostream>

#include "common/strutil.hh"

namespace hscd {
namespace obs {

Timeline::Timeline(std::size_t capEvents) : _cap(capEvents)
{
}

void
Timeline::procSpan(ProcId p, EpochId e, Cycles begin, Cycles end)
{
    Event ev;
    ev.kind = Kind::ProcSpan;
    ev.track = p;
    ev.epoch = e;
    ev.ts = begin;
    ev.dur = end - begin;
    _events.push_back(ev);
}

void
Timeline::missFlow(ProcId p, EpochId e, Addr addr, Cycles ts, Cycles stall,
                   std::uint8_t cls, std::uint8_t mark,
                   std::uint64_t distance)
{
    if (_events.size() >= _cap) {
        ++_dropped;
        return;
    }
    Event ev;
    ev.kind = Kind::MissFlow;
    ev.sub = cls;
    ev.mark = mark;
    ev.track = p;
    ev.epoch = e;
    ev.ts = ts;
    ev.dur = stall;
    ev.addr = addr;
    ev.arg = distance;
    _events.push_back(ev);
}

void
Timeline::resetWindow(EpochId e, Cycles begin, Cycles dur)
{
    Event ev;
    ev.kind = Kind::ResetWindow;
    ev.epoch = e;
    ev.ts = begin;
    ev.dur = dur;
    _events.push_back(ev);
}

void
Timeline::instant(InstantKind k, std::uint32_t track, EpochId e, Cycles ts,
                  std::uint64_t arg)
{
    Event ev;
    ev.kind = Kind::Instant;
    ev.sub = static_cast<std::uint8_t>(k);
    ev.track = track;
    ev.epoch = e;
    ev.ts = ts;
    ev.arg = arg;
    _events.push_back(ev);
}

namespace {

std::string
fallbackName(const char *prefix, std::uint8_t v)
{
    return csprintf("%s%d", prefix, unsigned(v));
}

const char *
instantName(Timeline::InstantKind k)
{
    switch (k) {
      case Timeline::InstantKind::TagReset: return "tag-reset";
      case Timeline::InstantKind::FaultInjected: return "fault-injected";
      case Timeline::InstantKind::FaultRecovered: return "fault-recovered";
      case Timeline::InstantKind::Abort: return "abort";
    }
    return "instant";
}

} // namespace

void
Timeline::writePerfetto(std::ostream &os, const Provenance &prov,
                        unsigned procs, const std::string &label,
                        const Naming &naming) const
{
    auto clsName = [&](std::uint8_t v) {
        return naming.missClass ? naming.missClass(v)
                                : fallbackName("cls", v);
    };
    auto markName = [&](std::uint8_t v) {
        return naming.markKind ? naming.markKind(v)
                               : fallbackName("mark", v);
    };

    const unsigned pid = 1;
    const std::uint32_t mem = memTrack(procs);

    os << "{\n";
    os << "  \"provenance\": " << prov.json(2) << ",\n";
    os << "  \"displayTimeUnit\": \"ms\",\n";
    os << csprintf("  \"droppedEvents\": %d,\n", _dropped);
    os << "  \"traceEvents\": [\n";

    // Metadata: name the process and every track.
    os << csprintf("    {\"ph\": \"M\", \"pid\": %d, \"name\": "
                   "\"process_name\", \"args\": {\"name\": \"%s\"}}",
                   pid, jsonEscape(label));
    for (unsigned p = 0; p < procs; ++p) {
        os << csprintf(",\n    {\"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
                       "\"name\": \"thread_name\", \"args\": {\"name\": "
                       "\"proc %d\"}}", pid, p, p);
        os << csprintf(",\n    {\"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
                       "\"name\": \"thread_sort_index\", \"args\": "
                       "{\"sort_index\": %d}}", pid, p, p);
    }
    os << csprintf(",\n    {\"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
                   "\"name\": \"thread_name\", \"args\": {\"name\": "
                   "\"memory/directory\"}}", pid, mem);
    os << csprintf(",\n    {\"ph\": \"M\", \"pid\": %d, \"tid\": %d, "
                   "\"name\": \"thread_sort_index\", \"args\": "
                   "{\"sort_index\": %d}}", pid, mem, mem);

    std::uint64_t flowId = 0;
    for (const Event &ev : _events) {
        switch (ev.kind) {
          case Kind::ProcSpan:
            os << csprintf(",\n    {\"ph\": \"X\", \"pid\": %d, "
                           "\"tid\": %d, \"ts\": %d, \"dur\": %d, "
                           "\"cat\": \"epoch\", \"name\": \"epoch %d\", "
                           "\"args\": {\"epoch\": %d}}",
                           pid, ev.track, ev.ts, ev.dur, ev.epoch,
                           ev.epoch);
            break;
          case Kind::MissFlow: {
            ++flowId;
            const std::string cls = clsName(ev.sub);
            // Service slice on the memory track...
            os << csprintf(",\n    {\"ph\": \"X\", \"pid\": %d, "
                           "\"tid\": %d, \"ts\": %d, \"dur\": %d, "
                           "\"cat\": \"protocol\", "
                           "\"name\": \"miss %#x (%s)\", "
                           "\"args\": {\"proc\": %d, \"epoch\": %d, "
                           "\"addr\": \"%#x\", \"class\": \"%s\", "
                           "\"mark\": \"%s\", \"distance\": %d}}",
                           pid, mem, ev.ts, ev.dur ? ev.dur : Cycles(1),
                           ev.addr, cls, ev.track, ev.epoch, ev.addr,
                           cls, markName(ev.mark), ev.arg);
            // ...and a request->reply arrow from the proc's epoch span.
            os << csprintf(",\n    {\"ph\": \"s\", \"pid\": %d, "
                           "\"tid\": %d, \"ts\": %d, \"cat\": "
                           "\"protocol\", \"name\": \"msg\", "
                           "\"id\": %d}",
                           pid, ev.track, ev.ts, flowId);
            os << csprintf(",\n    {\"ph\": \"f\", \"bp\": \"e\", "
                           "\"pid\": %d, \"tid\": %d, \"ts\": %d, "
                           "\"cat\": \"protocol\", \"name\": \"msg\", "
                           "\"id\": %d}",
                           pid, mem, ev.ts + (ev.dur ? ev.dur : Cycles(1)),
                           flowId);
            break;
          }
          case Kind::ResetWindow:
            os << csprintf(",\n    {\"ph\": \"X\", \"pid\": %d, "
                           "\"tid\": %d, \"ts\": %d, \"dur\": %d, "
                           "\"cat\": \"reset\", "
                           "\"name\": \"two-phase reset\", "
                           "\"args\": {\"epoch\": %d}}",
                           pid, mem, ev.ts, ev.dur ? ev.dur : Cycles(1),
                           ev.epoch);
            break;
          case Kind::Instant: {
            const auto k = static_cast<InstantKind>(ev.sub);
            os << csprintf(",\n    {\"ph\": \"i\", \"pid\": %d, "
                           "\"tid\": %d, \"ts\": %d, \"s\": \"t\", "
                           "\"cat\": \"event\", \"name\": \"%s\", "
                           "\"args\": {\"epoch\": %d, \"arg\": %d}}",
                           pid, ev.track, ev.ts, instantName(k),
                           ev.epoch, ev.arg);
            break;
          }
        }
    }

    os << "\n  ]\n";
    os << "}\n";
}

bool
readPerfettoCounts(std::istream &is, PerfettoCounts &counts)
{
    counts = PerfettoCounts{};
    std::string line;
    bool sawEvents = false;
    while (std::getline(is, line)) {
        if (line.find("\"traceEvents\"") != std::string::npos)
            sawEvents = true;
        std::size_t pos = line.find("\"ph\": \"");
        if (pos == std::string::npos)
            continue;
        char ph = line[pos + 7];
        switch (ph) {
          case 'M': ++counts.metadata; break;
          case 'X': ++counts.slices; break;
          case 's': ++counts.flowStarts; break;
          case 'f': ++counts.flowEnds; break;
          case 'i': ++counts.instants; break;
          default: break;
        }
    }
    return sawEvents;
}

} // namespace obs
} // namespace hscd
