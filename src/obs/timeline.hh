/**
 * @file
 * Structured event timeline: spans and instants recorded during a run
 * and exported as Chrome/Perfetto `trace_event` JSON (the `--trace-out=`
 * artifact, loadable in ui.perfetto.dev or chrome://tracing).
 *
 * The recorder is deliberately ignorant of the mem/compiler layers: it
 * stores plain integers (track ids, epoch ids, cycle timestamps, raw
 * enum values). The executor - the single code path shared by the
 * interpreter and the epoch-stream fast path - is the only producer, so
 * the two execution modes emit identical event streams by construction;
 * a test asserts `events()` equality directly.
 *
 * Track layout in the exported trace:
 *   tid 0..P-1   processor tracks (epoch spans, miss flow origins)
 *   tid P        memory/directory track (miss service slices, two-phase
 *                reset windows, fault/abort instants)
 *
 * Protocol-message "arrows" are flow events: an `s` (flow start) bound
 * to the requesting processor's enclosing epoch span and an `f` (flow
 * end, bp:"e") bound to the miss-service slice on the memory track.
 * One simulated cycle is rendered as one microsecond.
 */

#ifndef HSCD_OBS_TIMELINE_HH
#define HSCD_OBS_TIMELINE_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/provenance.hh"

namespace hscd {
namespace obs {

class Timeline
{
  public:
    enum class Kind : std::uint8_t {
        ProcSpan,       ///< one epoch of one processor (dur = exec time)
        MissFlow,       ///< a read miss: request->reply protocol message
        ResetWindow,    ///< two-phase timetag reset stall window
        Instant,        ///< point event, see InstantKind in `sub`
    };

    enum class InstantKind : std::uint8_t {
        TagReset,       ///< epoch counter entered a new timetag phase
        FaultInjected,  ///< fault site fired (arg = cumulative count)
        FaultRecovered, ///< retry/NACK recovered a dropped message
        Abort,          ///< structured abort ended the run
    };

    /**
     * One recorded event; plain integers only so defaulted equality is
     * exact and the fastpath-vs-interpreter test can compare vectors.
     */
    struct Event
    {
        Kind kind = Kind::Instant;
        std::uint8_t sub = 0;      ///< InstantKind, or raw MissClass
        std::uint8_t mark = 0;     ///< MissFlow: raw MarkKind
        std::uint32_t track = 0;   ///< proc id; memTrack() for memory
        EpochId epoch = 0;
        Cycles ts = 0;
        Cycles dur = 0;
        Addr addr = 0;
        std::uint64_t arg = 0;     ///< MissFlow: marking distance

        bool operator==(const Event &) const = default;
    };

    /** Maps raw enum values to display names for the Perfetto export;
     *  the caller (which links the mem layer) supplies real names. */
    struct Naming
    {
        std::function<std::string(std::uint8_t)> missClass;
        std::function<std::string(std::uint8_t)> markKind;
    };

    explicit Timeline(std::size_t capEvents = 1u << 20);

    /** Record one processor executing one epoch over [begin, end). */
    void procSpan(ProcId p, EpochId e, Cycles begin, Cycles end);
    /** Record a read-miss protocol message serviced over `stall`
     *  cycles starting at `ts` on processor `p`. */
    void missFlow(ProcId p, EpochId e, Addr addr, Cycles ts, Cycles stall,
                  std::uint8_t cls, std::uint8_t mark,
                  std::uint64_t distance);
    /** Record a two-phase reset stall window at an epoch boundary. */
    void resetWindow(EpochId e, Cycles begin, Cycles dur);
    void instant(InstantKind k, std::uint32_t track, EpochId e, Cycles ts,
                 std::uint64_t arg = 0);

    const std::vector<Event> &events() const { return _events; }
    /** MissFlow events discarded by the cap (spans/instants are never
     *  dropped - they are bounded by epochs, not references). */
    std::uint64_t dropped() const { return _dropped; }

    /** Memory/directory track id for a machine with @p procs procs. */
    static std::uint32_t memTrack(unsigned procs) { return procs; }

    /** Emit trace_event JSON. @p label names the process. */
    void writePerfetto(std::ostream &os, const Provenance &prov,
                       unsigned procs, const std::string &label,
                       const Naming &naming = {}) const;

  private:
    std::vector<Event> _events;
    std::size_t _cap;
    std::uint64_t _dropped = 0;
};

/**
 * Count trace_event records of each phase type in a Perfetto JSON file
 * written by Timeline::writePerfetto - the schema round-trip check used
 * by tests and `hscd_inspect summary`. Returns false if the file does
 * not look like one of ours.
 */
struct PerfettoCounts
{
    std::uint64_t metadata = 0;   ///< ph:"M"
    std::uint64_t slices = 0;     ///< ph:"X"
    std::uint64_t flowStarts = 0; ///< ph:"s"
    std::uint64_t flowEnds = 0;   ///< ph:"f"
    std::uint64_t instants = 0;   ///< ph:"i"
};
bool readPerfettoCounts(std::istream &is, PerfettoCounts &counts);

} // namespace obs
} // namespace hscd

#endif // HSCD_OBS_TIMELINE_HH
