/**
 * @file
 * Provenance headers for machine-readable artifacts.
 *
 * Every JSON file the toolchain emits (sweep results, metrics series,
 * Perfetto timelines, fault campaigns, lint reports) starts with a
 * self-describing provenance object: which schema and version the file
 * follows, which tool wrote it, a hash of the configuration that shaped
 * the data, the fault-injection spec, and the `--jobs` value. Archived
 * results then stay auditable ("which config produced this table?") and
 * resumable artifacts can be rejected when their provenance mismatches.
 *
 * Determinism note: every field except `jobs` is independent of the
 * thread count. The `jobs` field is, by design, the only JSON content
 * allowed to differ between otherwise byte-identical `--jobs` runs
 * (the stdout analogue is the sweep wall-clock line).
 */

#ifndef HSCD_OBS_PROVENANCE_HH
#define HSCD_OBS_PROVENANCE_HH

#include <cstdint>
#include <string>

namespace hscd {
namespace obs {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** FNV-1a over a byte string (the provenance config-hash primitive). */
std::uint64_t fnv1a(const std::string &s,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

struct Provenance
{
    /** Schema identifier, e.g. "hscd-sweep". */
    std::string schema;
    /** Schema version; bump on any incompatible field change. */
    unsigned version = 1;
    /** Producing tool / experiment, e.g. "bench_fig14" or "F14". */
    std::string tool;
    /** FNV-1a hash of the configuration that shaped the data. */
    std::uint64_t configHash = 0;
    /** Fault-injection spec ("off" when disabled). */
    std::string faultSpec = "off";
    /** Worker threads used to produce the artifact (0 = hardware). */
    unsigned jobs = 0;

    /**
     * Render as a JSON object (no trailing newline), each line prefixed
     * with @p pad spaces; the first line carries no prefix so the object
     * can follow a `"provenance": ` key.
     */
    std::string json(unsigned pad = 2) const;
};

} // namespace obs
} // namespace hscd

#endif // HSCD_OBS_PROVENANCE_HH
