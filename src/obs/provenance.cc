#include "obs/provenance.hh"

#include "common/strutil.hh"

namespace hscd {
namespace obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x",
                                unsigned(static_cast<unsigned char>(c)));
            else
                out += c;
        }
    }
    return out;
}

std::uint64_t
fnv1a(const std::string &s, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (unsigned char b : s) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
Provenance::json(unsigned pad) const
{
    const std::string p(pad, ' ');
    std::string out = "{\n";
    out += p + csprintf("  \"schema\": \"%s/%d\",\n", jsonEscape(schema),
                        version);
    out += p + csprintf("  \"tool\": \"%s\",\n", jsonEscape(tool));
    out += p + csprintf("  \"config_hash\": \"%016x\",\n", configHash);
    out += p + csprintf("  \"fault\": \"%s\",\n", jsonEscape(faultSpec));
    out += p + csprintf("  \"jobs\": %d\n", jobs);
    out += p + "}";
    return out;
}

} // namespace obs
} // namespace hscd
