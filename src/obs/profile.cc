#include "obs/profile.hh"

#include <chrono>

#include <sys/resource.h>

#include "common/strutil.hh"

namespace hscd {
namespace obs {

double
nowMs()
{
    using namespace std::chrono;
    return duration<double, std::milli>(
        steady_clock::now().time_since_epoch()).count();
}

std::uint64_t
currentRssPeakKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // ru_maxrss is KiB on Linux, bytes on some BSDs; we only build on
    // Linux so report it as-is.
    return static_cast<std::uint64_t>(ru.ru_maxrss);
}

std::string
PhaseProfile::json() const
{
    return csprintf("{\"compile_ms\": %.3f, \"schedule_ms\": %.3f, "
                    "\"stream_ms\": %.3f, \"exec_ms\": %.3f, "
                    "\"rss_peak_kb\": %d}",
                    compileMs, scheduleMs, streamMs, execMs, rssPeakKb);
}

} // namespace obs
} // namespace hscd
