#include "hir/builder.hh"

#include <cctype>
#include <string>

#include "common/log.hh"

namespace hscd {
namespace hir {

ProgramBuilder::ProgramBuilder() = default;

ProgramBuilder &
ProgramBuilder::param(const std::string &name, std::int64_t value)
{
    hscd_assert(!_inProc, "param() outside procedure bodies only");
    _prog._params.bind(name, value);
    return *this;
}

ProgramBuilder &
ProgramBuilder::param(const std::string &name, std::int64_t value,
                      std::int64_t lo, std::int64_t hi)
{
    if (lo > hi || value < lo || value > hi)
        fatal("param %s: value %d outside declared range [%d, %d]",
              name, value, lo, hi);
    param(name, value);
    _prog._paramRanges[name] = Range{lo, hi};
    return *this;
}

ProgramBuilder &
ProgramBuilder::array(const std::string &name,
                      const std::vector<std::string> &dims)
{
    std::vector<std::int64_t> extents;
    extents.reserve(dims.size());
    for (const std::string &d : dims) {
        if (!d.empty() &&
            (std::isdigit(static_cast<unsigned char>(d[0])) || d[0] == '-'))
        {
            extents.push_back(std::stoll(d));
        } else {
            auto val = _prog._params.lookup(d);
            if (!val)
                fatal("array %s: dimension '%s' is not a bound param",
                      name, d);
            extents.push_back(*val);
        }
    }
    return array(name, extents);
}

ProgramBuilder &
ProgramBuilder::array(const std::string &name,
                      const std::vector<std::int64_t> &dims)
{
    hscd_assert(!_built, "builder already finalized");
    for (const ArrayDecl &a : _prog._arrays)
        if (a.name == name)
            fatal("array '%s' declared twice", name);
    for (std::int64_t d : dims)
        if (d <= 0)
            fatal("array '%s' has non-positive extent %d", name, d);
    _prog._arrays.push_back(ArrayDecl{name, dims, 0});
    return *this;
}

IntExpr
ProgramBuilder::unknown()
{
    return IntExpr::unknown(_nextUnknown++);
}

ProgramBuilder &
ProgramBuilder::proc(const std::string &name, const BodyFn &fn)
{
    hscd_assert(!_inProc, "nested proc() definitions are not allowed");
    hscd_assert(!_built, "builder already finalized");
    for (const Procedure &p : _prog._procs)
        if (p.name == name)
            fatal("procedure '%s' defined twice", name);
    _prog._procs.push_back(Procedure{name, {}});
    _currentProc = static_cast<ProcIndex>(_prog._procs.size() - 1);
    _inProc = true;
    pushBody(&_prog._procs.back().body, fn);
    _inProc = false;
    return *this;
}

void
ProgramBuilder::emit(StmtPtr stmt)
{
    hscd_assert(!_bodyStack.empty(),
                "statements may only be emitted inside proc()");
    _bodyStack.back()->push_back(std::move(stmt));
}

void
ProgramBuilder::pushBody(StmtList *list, const BodyFn &fn)
{
    _bodyStack.push_back(list);
    if (fn)
        fn();
    _bodyStack.pop_back();
}

void
ProgramBuilder::doall(const std::string &var, IntExpr lo, IntExpr hi,
                      const BodyFn &body, std::int64_t step)
{
    hscd_assert(step > 0, "loop step must be positive");
    auto loop = std::make_unique<LoopStmt>(var, std::move(lo),
                                           std::move(hi), step, true);
    LoopStmt *raw = loop.get();
    emit(std::move(loop));
    pushBody(&raw->body, body);
}

void
ProgramBuilder::doserial(const std::string &var, IntExpr lo, IntExpr hi,
                         const BodyFn &body, std::int64_t step)
{
    hscd_assert(step > 0, "loop step must be positive");
    auto loop = std::make_unique<LoopStmt>(var, std::move(lo),
                                           std::move(hi), step, false);
    LoopStmt *raw = loop.get();
    emit(std::move(loop));
    pushBody(&raw->body, body);
}

RefId
ProgramBuilder::ref(const std::string &array, std::vector<IntExpr> subs,
                    bool is_write)
{
    ArrayId id = _prog.findArray(array);
    if (subs.size() != _prog.array(id).dims.size())
        fatal("array %s: %d subscripts for %d dimensions", array,
              subs.size(), _prog.array(id).dims.size());
    RefId rid = _prog._refCount++;
    auto stmt = std::make_unique<ArrayRefStmt>(id, std::move(subs),
                                               is_write, rid);
    _prog._refs.push_back(RefInfo{stmt.get(), _currentProc});
    emit(std::move(stmt));
    return rid;
}

RefId
ProgramBuilder::read(const std::string &array, std::vector<IntExpr> subs)
{
    return ref(array, std::move(subs), false);
}

RefId
ProgramBuilder::write(const std::string &array, std::vector<IntExpr> subs)
{
    return ref(array, std::move(subs), true);
}

void
ProgramBuilder::compute(Cycles cycles)
{
    emit(std::make_unique<ComputeStmt>(cycles));
}

void
ProgramBuilder::call(const std::string &proc_name)
{
    auto stmt = std::make_unique<CallStmt>(static_cast<ProcIndex>(-1));
    _callFixups.emplace_back(stmt.get(), proc_name);
    emit(std::move(stmt));
}

void
ProgramBuilder::barrier()
{
    emit(std::make_unique<BarrierStmt>());
}

void
ProgramBuilder::post(IntExpr flag)
{
    emit(std::make_unique<SyncStmt>(true, std::move(flag)));
}

void
ProgramBuilder::wait(IntExpr flag)
{
    emit(std::make_unique<SyncStmt>(false, std::move(flag)));
}

void
ProgramBuilder::critical(const BodyFn &body)
{
    auto stmt = std::make_unique<CriticalStmt>();
    CriticalStmt *raw = stmt.get();
    emit(std::move(stmt));
    pushBody(&raw->body, body);
}

void
ProgramBuilder::ifUnknown(TakePolicy policy, const BodyFn &then_body,
                          const BodyFn &else_body)
{
    auto stmt = std::make_unique<IfUnknownStmt>(policy, _nextIf++);
    IfUnknownStmt *raw = stmt.get();
    emit(std::move(stmt));
    pushBody(&raw->thenBody, then_body);
    if (else_body)
        pushBody(&raw->elseBody, else_body);
}

void
ProgramBuilder::validateBody(const StmtList &body, bool in_parallel,
                             std::vector<int> &call_state,
                             ProcIndex proc) const
{
    for (const StmtPtr &s : body) {
        switch (s->kind()) {
          case StmtKind::Loop: {
            const auto &loop = static_cast<const LoopStmt &>(*s);
            validateBody(loop.body, in_parallel || loop.parallel, call_state,
                         proc);
            break;
          }
          case StmtKind::Barrier:
            if (in_parallel)
                fatal("barrier inside a DOALL body (procedure %s)",
                      _prog._procs[proc].name);
            break;
          case StmtKind::IfUnknown: {
            const auto &br = static_cast<const IfUnknownStmt &>(*s);
            validateBody(br.thenBody, in_parallel, call_state, proc);
            validateBody(br.elseBody, in_parallel, call_state, proc);
            break;
          }
          case StmtKind::Critical: {
            const auto &cs = static_cast<const CriticalStmt &>(*s);
            for (const StmtPtr &inner : cs.body) {
                if (inner->kind() == StmtKind::Loop &&
                    static_cast<const LoopStmt &>(*inner).parallel)
                    fatal("DOALL inside a critical section");
                if (inner->kind() == StmtKind::Sync)
                    fatal("post/wait inside a critical section would "
                          "deadlock");
            }
            validateBody(cs.body, in_parallel, call_state, proc);
            break;
          }
          case StmtKind::Call: {
            const auto &call = static_cast<const CallStmt &>(*s);
            ProcIndex callee = call.callee;
            if (call_state[callee] == 1)
                fatal("recursive call cycle through procedure '%s'",
                      _prog._procs[callee].name);
            if (call_state[callee] == 0) {
                call_state[callee] = 1;
                validateBody(_prog._procs[callee].body, in_parallel,
                             call_state, callee);
                call_state[callee] = 2;
            }
            break;
          }
          default:
            break;
        }
    }
}

void
ProgramBuilder::validate() const
{
    bool has_main = false;
    for (const Procedure &p : _prog._procs)
        if (p.name == "MAIN")
            has_main = true;
    if (!has_main)
        fatal("program has no MAIN procedure");

    // DFS from MAIN detects call cycles; every procedure revisited from a
    // parallel context is checked there too (call_state is reset so both
    // serial and parallel visits validate).
    std::vector<int> call_state(_prog._procs.size(), 0);
    ProcIndex main_idx = _prog.findProcedure("MAIN");
    call_state[main_idx] = 1;
    validateBody(_prog._procs[main_idx].body, false, call_state, main_idx);
}

Program
ProgramBuilder::build()
{
    hscd_assert(!_built, "build() called twice");
    for (auto &[stmt, name] : _callFixups)
        stmt->callee = _prog.findProcedure(name);
    _prog._mainIndex = _prog.findProcedure("MAIN");
    validate();
    _prog.layout(256);
    _built = true;
    return std::move(_prog);
}

} // namespace hir
} // namespace hscd
