#include "hir/program.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace hir {

ArrayId
Program::findArray(const std::string &name) const
{
    for (ArrayId i = 0; i < _arrays.size(); ++i)
        if (_arrays[i].name == name)
            return i;
    fatal("no array named '%s'", name);
}

Range
Program::paramRange(const std::string &name) const
{
    auto it = _paramRanges.find(name);
    if (it != _paramRanges.end())
        return it->second;
    auto v = _params.lookup(name);
    hscd_assert(v.has_value(), "no param named '%s'", name);
    return Range{*v, *v};
}

ProcIndex
Program::findProcedure(const std::string &name) const
{
    for (ProcIndex i = 0; i < _procs.size(); ++i)
        if (_procs[i].name == name)
            return i;
    fatal("no procedure named '%s'", name);
}

void
Program::layout(Addr align)
{
    hscd_assert(isPowerOf2(align), "alignment must be a power of two");
    Addr next = align; // keep address 0 unused
    for (ArrayDecl &a : _arrays) {
        a.base = next;
        next = roundUp(next + a.sizeBytes(), align);
    }
    _dataBytes = next;
}

Addr
Program::elementAddr(ArrayId id, const std::vector<std::int64_t> &idx)
    const
{
    const ArrayDecl &a = _arrays.at(id);
    hscd_assert(idx.size() == a.dims.size(),
                "array %s: %d subscripts, %d dims", a.name, idx.size(),
                a.dims.size());
    // Column-major: first subscript varies fastest.
    std::int64_t linear = 0;
    std::int64_t mult = 1;
    for (std::size_t d = 0; d < idx.size(); ++d) {
        if (idx[d] < 0 || idx[d] >= a.dims[d])
            panic("array %s: subscript %d out of range [0,%d) in dim %d",
                  a.name, idx[d], a.dims[d], d);
        linear += idx[d] * mult;
        mult *= a.dims[d];
    }
    return a.base + Addr(linear) * wordBytes;
}

std::string
Program::describeAddr(Addr addr) const
{
    for (const ArrayDecl &a : _arrays) {
        if (addr >= a.base && addr < a.base + a.sizeBytes()) {
            std::int64_t linear = (addr - a.base) / wordBytes;
            std::string subs;
            for (std::size_t d = 0; d < a.dims.size(); ++d) {
                if (d)
                    subs += ",";
                subs += std::to_string(linear % a.dims[d]);
                linear /= a.dims[d];
            }
            return a.name + "(" + subs + ")";
        }
    }
    return csprintf("<unmapped:0x%x>", addr);
}

} // namespace hir
} // namespace hscd
