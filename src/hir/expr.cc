#include "hir/expr.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {
namespace hir {

std::uint64_t
Env::mixHash(std::uint64_t seed) const
{
    // Order-insensitive: combine per-binding hashes commutatively so the
    // result doesn't depend on binding insertion order.
    std::uint64_t acc = seed * 0x9e3779b97f4a7c15ULL;
    for (const auto &[name, value] : _vars) {
        std::uint64_t h = 1469598103934665603ULL;
        for (char c : name)
            h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
        h ^= static_cast<std::uint64_t>(value) + 0x9e3779b97f4a7c15ULL +
             (h << 6) + (h >> 2);
        acc += h * 0xff51afd7ed558ccdULL;
    }
    acc ^= acc >> 33;
    acc *= 0xc4ceb9fe1a85ec53ULL;
    acc ^= acc >> 33;
    return acc;
}

IntExpr
IntExpr::constant(std::int64_t c)
{
    IntExpr e;
    e._konst = c;
    return e;
}

IntExpr
IntExpr::var(const std::string &name)
{
    IntExpr e;
    e._coeffs.emplace_back(name, 1);
    return e;
}

IntExpr
IntExpr::unknown(std::uint32_t id)
{
    IntExpr e;
    e._unknown = true;
    e._unknownId = id;
    return e;
}

void
IntExpr::addTerm(const std::string &var, std::int64_t coeff)
{
    auto it = std::lower_bound(
        _coeffs.begin(), _coeffs.end(), var,
        [](const auto &kv, const std::string &v) { return kv.first < v; });
    if (it != _coeffs.end() && it->first == var) {
        it->second += coeff;
        if (it->second == 0)
            _coeffs.erase(it);
    } else if (coeff != 0) {
        _coeffs.insert(it, {var, coeff});
    }
}

IntExpr
IntExpr::operator+(const IntExpr &o) const
{
    IntExpr out = *this;
    out._konst += o._konst;
    for (const auto &[v, c] : o._coeffs)
        out.addTerm(v, c);
    if (o._unknown) {
        hscd_assert(!out._unknown || out._unknownId == o._unknownId,
                    "cannot combine two distinct unknowns");
        out._unknown = true;
        out._unknownId = o._unknownId;
    }
    return out;
}

IntExpr
IntExpr::operator-(const IntExpr &o) const
{
    hscd_assert(!o._unknown, "cannot subtract an unknown expression");
    IntExpr out = *this;
    out._konst -= o._konst;
    for (const auto &[v, c] : o._coeffs)
        out.addTerm(v, -c);
    return out;
}

IntExpr
IntExpr::operator*(std::int64_t k) const
{
    hscd_assert(!_unknown || k == 1 || k == 0,
                "cannot scale an unknown expression");
    IntExpr out;
    if (k == 0)
        return out;
    out._konst = _konst * k;
    for (const auto &[v, c] : _coeffs)
        out._coeffs.emplace_back(v, c * k);
    out._unknown = _unknown;
    out._unknownId = _unknownId;
    return out;
}

IntExpr
IntExpr::operator+(std::int64_t k) const
{
    IntExpr out = *this;
    out._konst += k;
    return out;
}

IntExpr
IntExpr::operator-(std::int64_t k) const
{
    IntExpr out = *this;
    out._konst -= k;
    return out;
}

std::int64_t
IntExpr::coeff(const std::string &var) const
{
    for (const auto &[v, c] : _coeffs)
        if (v == var)
            return c;
    return 0;
}

std::vector<std::string>
IntExpr::variables() const
{
    std::vector<std::string> out;
    out.reserve(_coeffs.size());
    for (const auto &[v, c] : _coeffs) {
        (void)c;
        out.push_back(v);
    }
    return out;
}

bool
IntExpr::operator==(const IntExpr &o) const
{
    return _konst == o._konst && _coeffs == o._coeffs &&
           _unknown == o._unknown &&
           (!_unknown || _unknownId == o._unknownId);
}

std::optional<std::int64_t>
IntExpr::constantDifference(const IntExpr &o) const
{
    if (_unknown || o._unknown)
        return std::nullopt;
    if (_coeffs != o._coeffs)
        return std::nullopt;
    return _konst - o._konst;
}

std::int64_t
IntExpr::eval(const Env &env, std::int64_t unknown_modulus) const
{
    std::int64_t acc = _konst;
    for (const auto &[v, c] : _coeffs) {
        auto val = env.lookup(v);
        if (!val)
            panic("IntExpr::eval: unbound variable '%s' in %s", v, str());
        acc += c * *val;
    }
    if (_unknown) {
        std::uint64_t h = env.mixHash(_unknownId + 0x51ed270b);
        if (unknown_modulus > 0)
            acc += static_cast<std::int64_t>(
                h % static_cast<std::uint64_t>(unknown_modulus));
        else
            acc += static_cast<std::int64_t>(h & 0xffff);
    }
    return acc;
}

std::optional<Range>
IntExpr::range(const std::map<std::string, Range> &var_ranges) const
{
    if (_unknown)
        return std::nullopt;
    Range r{_konst, _konst};
    for (const auto &[v, c] : _coeffs) {
        auto it = var_ranges.find(v);
        if (it == var_ranges.end())
            return std::nullopt;
        const Range &vr = it->second;
        if (c >= 0) {
            r.lo += c * vr.lo;
            r.hi += c * vr.hi;
        } else {
            r.lo += c * vr.hi;
            r.hi += c * vr.lo;
        }
    }
    return r;
}

IntExpr
IntExpr::substitute(const std::string &var, std::int64_t value) const
{
    IntExpr out = *this;
    for (auto it = out._coeffs.begin(); it != out._coeffs.end(); ++it) {
        if (it->first == var) {
            out._konst += it->second * value;
            out._coeffs.erase(it);
            break;
        }
    }
    return out;
}

std::string
IntExpr::str() const
{
    std::string out;
    for (const auto &[v, c] : _coeffs) {
        if (!out.empty())
            out += c >= 0 ? " + " : " - ";
        else if (c < 0)
            out += "-";
        std::int64_t mag = c < 0 ? -c : c;
        if (mag != 1)
            out += std::to_string(mag) + "*";
        out += v;
    }
    if (_unknown) {
        if (!out.empty())
            out += " + ";
        out += csprintf("f%d(.)", _unknownId);
    }
    if (_konst != 0 || out.empty()) {
        if (!out.empty())
            out += _konst >= 0 ? " + " : " - ";
        else if (_konst < 0)
            out += "-";
        out += std::to_string(_konst < 0 ? -_konst : _konst);
    }
    return out;
}

} // namespace hir
} // namespace hscd
