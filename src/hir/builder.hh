/**
 * @file
 * Fluent construction of HIR programs.
 *
 * Example:
 * @code
 *   ProgramBuilder b;
 *   b.param("N", 128);
 *   b.array("A", {"N"});
 *   b.array("B", {"N"});
 *   b.proc("MAIN", [&] {
 *       b.doall("i", 0, b.p("N") - 1, [&] {
 *           b.read("B", {b.v("i")});
 *           b.compute(4);
 *           b.write("A", {b.v("i")});
 *       });
 *   });
 *   hir::Program prog = b.build();
 * @endcode
 */

#ifndef HSCD_HIR_BUILDER_HH
#define HSCD_HIR_BUILDER_HH

#include <functional>
#include <string>
#include <vector>

#include "hir/program.hh"

namespace hscd {
namespace hir {

class ProgramBuilder
{
  public:
    using BodyFn = std::function<void()>;

    ProgramBuilder();

    /** Bind a program-level constant (problem size). */
    ProgramBuilder &param(const std::string &name, std::int64_t value);

    /**
     * Bind a constant AND declare its compile-time range [lo, hi]:
     * symbolic compilation (AnalysisOptions::symbolicParams) marks the
     * program for every size in range, not just the bound value.
     */
    ProgramBuilder &param(const std::string &name, std::int64_t value,
                          std::int64_t lo, std::int64_t hi);

    /**
     * Declare a global array. Each dimension is either a literal extent or
     * the name of a previously bound param.
     */
    ProgramBuilder &array(const std::string &name,
                          const std::vector<std::string> &dims);
    ProgramBuilder &array(const std::string &name,
                          const std::vector<std::int64_t> &dims);
    /** Brace-friendly: array("A", {"N", "16"}). */
    ProgramBuilder &
    array(const std::string &name,
          std::initializer_list<const char *> dims)
    {
        return array(name,
                     std::vector<std::string>(dims.begin(), dims.end()));
    }
    /** Brace-friendly: array("A", {64, 16}). */
    ProgramBuilder &
    array(const std::string &name, std::initializer_list<std::int64_t> dims)
    {
        return array(name,
                     std::vector<std::int64_t>(dims.begin(), dims.end()));
    }

    /** Expression helpers. */
    IntExpr v(const std::string &name) const { return IntExpr::var(name); }
    IntExpr c(std::int64_t k) const { return IntExpr::constant(k); }
    /** A param is just a variable bound at program scope. */
    IntExpr p(const std::string &name) const { return IntExpr::var(name); }
    /** Fresh compile-time-opaque expression. */
    IntExpr unknown();

    /** Define a procedure whose body is built inside @p fn. */
    ProgramBuilder &proc(const std::string &name, const BodyFn &fn);

    // --- statement emitters; valid only inside a proc() body ------------

    void doall(const std::string &var, IntExpr lo, IntExpr hi,
               const BodyFn &body, std::int64_t step = 1);

    void doserial(const std::string &var, IntExpr lo, IntExpr hi,
                  const BodyFn &body, std::int64_t step = 1);

    /** Emit a read of array element; returns the reference id. */
    RefId read(const std::string &array, std::vector<IntExpr> subs);
    /** Emit a write of array element; returns the reference id. */
    RefId write(const std::string &array, std::vector<IntExpr> subs);

    void compute(Cycles cycles);
    void call(const std::string &proc_name);
    void barrier();
    /** Post a synchronization flag (release: drains the write buffer). */
    void post(IntExpr flag);
    /** Block until the flag has been posted in this epoch. */
    void wait(IntExpr flag);
    void critical(const BodyFn &body);
    void ifUnknown(TakePolicy policy, const BodyFn &then_body,
                   const BodyFn &else_body = nullptr);

    /**
     * Finalize: resolve calls, validate structure (acyclic call graph, no
     * barriers inside DOALLs, DOALLs only at serial nesting), lay out the
     * address space, and return the immutable program.
     */
    Program build();

  private:
    void emit(StmtPtr stmt);
    void pushBody(StmtList *list, const BodyFn &fn);
    RefId ref(const std::string &array, std::vector<IntExpr> subs,
              bool is_write);
    void validate() const;
    void validateBody(const StmtList &body, bool in_parallel,
                      std::vector<int> &call_state, ProcIndex proc) const;

    Program _prog;
    std::vector<StmtList *> _bodyStack;
    ProcIndex _currentProc = 0;
    bool _inProc = false;
    std::vector<std::pair<CallStmt *, std::string>> _callFixups;
    std::uint32_t _nextUnknown = 0;
    std::uint32_t _nextIf = 0;
    bool _built = false;
};

} // namespace hir
} // namespace hscd

#endif // HSCD_HIR_BUILDER_HH
