/**
 * @file
 * Whole-program container: global arrays, procedures, reference table,
 * and the shared-address-space layout.
 */

#ifndef HSCD_HIR_PROGRAM_HH
#define HSCD_HIR_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "hir/stmt.hh"

namespace hscd {
namespace hir {

/** Bytes per simulated machine word (the paper uses 32-bit words). */
constexpr Addr wordBytes = 4;

/** A global (shared) array. Elements are one word each, column-major. */
struct ArrayDecl
{
    std::string name;
    std::vector<std::int64_t> dims;  ///< extent per dimension, 0-based idx
    Addr base = 0;                   ///< assigned by Program::layout()

    std::int64_t
    elements() const
    {
        std::int64_t n = 1;
        for (std::int64_t d : dims)
            n *= d;
        return n;
    }

    Addr sizeBytes() const { return Addr(elements()) * wordBytes; }
};

/** A procedure: a name plus a structured statement body. */
struct Procedure
{
    std::string name;
    StmtList body;
};

/** Location info for each static reference site (for diagnostics). */
struct RefInfo
{
    const ArrayRefStmt *stmt = nullptr;
    ProcIndex proc = 0;
};

/**
 * A whole program. Built via ProgramBuilder; immutable afterwards.
 */
class Program
{
  public:
    Program() = default;

    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    const std::vector<ArrayDecl> &arrays() const { return _arrays; }
    const std::vector<Procedure> &procedures() const { return _procs; }
    const Procedure &main() const { return _procs.at(_mainIndex); }
    ProcIndex mainIndex() const { return _mainIndex; }

    const ArrayDecl &array(ArrayId id) const { return _arrays.at(id); }
    ArrayId findArray(const std::string &name) const;
    ProcIndex findProcedure(const std::string &name) const;

    std::uint32_t refCount() const { return _refCount; }
    const RefInfo &refInfo(RefId id) const { return _refs.at(id); }

    /** Program-level constant bindings (problem sizes etc.). */
    const Env &params() const { return _params; }

    /**
     * Declared compile-time range of a parameter (defaults to its bound
     * value). Symbolic compilation analyzes against these ranges so one
     * marking serves every problem size in range.
     */
    Range paramRange(const std::string &name) const;

    /** Total bytes of shared data. */
    Addr dataBytes() const { return _dataBytes; }

    /**
     * Address of an array element given concrete 0-based subscripts
     * (column-major). Panics when a subscript is out of range.
     */
    Addr elementAddr(ArrayId id, const std::vector<std::int64_t> &idx)
        const;

    /** Word index within the shared space (addr / wordBytes). */
    static std::uint64_t wordOf(Addr a) { return a / wordBytes; }

    /** Reverse-map an address to "ARRAY(i,j)" for diagnostics. */
    std::string describeAddr(Addr a) const;

  private:
    friend class ProgramBuilder;

    /** Assign base addresses; called once by the builder. */
    void layout(Addr align);

    std::vector<ArrayDecl> _arrays;
    std::vector<Procedure> _procs;
    ProcIndex _mainIndex = 0;
    std::vector<RefInfo> _refs;
    std::uint32_t _refCount = 0;
    Env _params;
    std::map<std::string, Range> _paramRanges;
    Addr _dataBytes = 0;
};

} // namespace hir
} // namespace hscd

#endif // HSCD_HIR_PROGRAM_HH
