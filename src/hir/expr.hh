/**
 * @file
 * Affine integer expressions for array subscripts and loop bounds.
 *
 * An IntExpr is kept in affine normal form: konst + sum(coeff_i * var_i),
 * where variables are loop indices or program parameters. Expressions the
 * compiler cannot analyze (the paper's X(f(i)) case) carry an "unknown"
 * term: they still evaluate deterministically at run time (a hash of the
 * unknown id and the live variable bindings), but the compiler must treat
 * their value as unconstrained.
 */

#ifndef HSCD_HIR_EXPR_HH
#define HSCD_HIR_EXPR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hscd {
namespace hir {

/** Variable environment used when evaluating expressions. */
class Env
{
  public:
    void
    bind(const std::string &name, std::int64_t value)
    {
        for (auto &kv : _vars) {
            if (kv.first == name) {
                kv.second = value;
                return;
            }
        }
        _vars.emplace_back(name, value);
    }

    /** Remove the innermost binding of @p name. */
    void
    unbind(const std::string &name)
    {
        for (auto it = _vars.rbegin(); it != _vars.rend(); ++it) {
            if (it->first == name) {
                _vars.erase(std::next(it).base());
                return;
            }
        }
    }

    std::optional<std::int64_t>
    lookup(const std::string &name) const
    {
        for (auto it = _vars.rbegin(); it != _vars.rend(); ++it)
            if (it->first == name)
                return it->second;
        return std::nullopt;
    }

    const std::vector<std::pair<std::string, std::int64_t>> &
    vars() const
    {
        return _vars;
    }

    /** Order-insensitive hash of the current bindings. */
    std::uint64_t mixHash(std::uint64_t seed) const;

  private:
    std::vector<std::pair<std::string, std::int64_t>> _vars;
};

/** Inclusive integer interval; used by compile-time range analysis. */
struct Range
{
    std::int64_t lo = 0;
    std::int64_t hi = 0;

    bool contains(std::int64_t v) const { return v >= lo && v <= hi; }
    bool operator==(const Range &o) const = default;
};

class IntExpr
{
  public:
    /** Zero. */
    IntExpr() = default;

    /** Implicit from integer literals: loop bounds like doall("i",0,N-1). */
    IntExpr(std::int64_t c) : _konst(c) {}
    IntExpr(int c) : _konst(c) {}

    static IntExpr constant(std::int64_t c);
    static IntExpr var(const std::string &name);
    /** A compile-time-unanalyzable value, e.g. an index array access. */
    static IntExpr unknown(std::uint32_t id);

    IntExpr operator+(const IntExpr &o) const;
    IntExpr operator-(const IntExpr &o) const;
    IntExpr operator*(std::int64_t k) const;
    IntExpr operator+(std::int64_t k) const;
    IntExpr operator-(std::int64_t k) const;

    bool isConstant() const { return _coeffs.empty() && !_unknown; }
    bool hasUnknown() const { return _unknown; }
    std::int64_t constantValue() const { return _konst; }
    std::uint32_t unknownId() const { return _unknownId; }

    /** Coefficient of @p var (0 if absent). */
    std::int64_t coeff(const std::string &var) const;

    /** All variables with nonzero coefficient, sorted. */
    std::vector<std::string> variables() const;

    /** Structural equality of affine forms (unknowns compare by id). */
    bool operator==(const IntExpr &o) const;

    /**
     * Difference known at compile time: this - o as a constant, when both
     * are affine with identical coefficients and no unknowns.
     */
    std::optional<std::int64_t> constantDifference(const IntExpr &o) const;

    /**
     * Evaluate under @p env. Every variable must be bound; unknown terms
     * hash (id, bindings) into [0, unknown_modulus) and add the result.
     */
    std::int64_t eval(const Env &env, std::int64_t unknown_modulus = 0)
        const;

    /**
     * Compile-time value range given variable ranges; nullopt when the
     * expression has unknowns or an unbound variable.
     */
    std::optional<Range>
    range(const std::map<std::string, Range> &var_ranges) const;

    /** Substitute a constant for @p var. */
    IntExpr substitute(const std::string &var, std::int64_t value) const;

    /** Render, e.g. "2*i + j - 1" or "f17(i)". */
    std::string str() const;

  private:
    // Sorted by variable name; no zero coefficients stored.
    std::vector<std::pair<std::string, std::int64_t>> _coeffs;
    std::int64_t _konst = 0;
    bool _unknown = false;
    std::uint32_t _unknownId = 0;

    void addTerm(const std::string &var, std::int64_t coeff);
};

} // namespace hir
} // namespace hscd

#endif // HSCD_HIR_EXPR_HH
