#include "hir/printer.hh"

#include <sstream>

#include "common/strutil.hh"

namespace hscd {
namespace hir {

namespace {

class Printer
{
  public:
    Printer(std::ostream &os, const Program &prog,
            const PrintOptions &opts)
        : _os(os), _prog(prog), _opts(opts)
    {}

    void
    body(const StmtList &list, int depth)
    {
        for (const StmtPtr &s : list)
            stmt(*s, depth);
    }

  private:
    void
    indent(int depth)
    {
        _os << std::string(std::size_t(depth) * _opts.indentWidth, ' ');
    }

    void
    stmt(const Stmt &s, int depth)
    {
        switch (s.kind()) {
          case StmtKind::ArrayRef: {
            const auto &r = static_cast<const ArrayRefStmt &>(s);
            indent(depth);
            std::string subs;
            for (std::size_t i = 0; i < r.subs.size(); ++i)
                subs += (i ? ", " : "") + r.subs[i].str();
            const std::string access =
                _prog.array(r.array).name + "(" + subs + ")";
            if (r.isWrite)
                _os << access << " = ...";
            else
                _os << "... = " << access;
            if (_opts.showRefIds)
                _os << "    ! ref " << r.id;
            _os << "\n";
            break;
          }
          case StmtKind::Compute: {
            const auto &c = static_cast<const ComputeStmt &>(s);
            indent(depth);
            _os << "COMPUTE " << c.cycles << " cycles\n";
            break;
          }
          case StmtKind::Loop: {
            const auto &l = static_cast<const LoopStmt &>(s);
            indent(depth);
            _os << (l.parallel ? "DOALL " : "DO ") << l.var << " = "
                << l.lo.str() << ", " << l.hi.str();
            if (l.step != 1)
                _os << ", " << l.step;
            _os << "\n";
            body(l.body, depth + 1);
            indent(depth);
            _os << (l.parallel ? "END DOALL" : "END DO") << "\n";
            break;
          }
          case StmtKind::IfUnknown: {
            const auto &br = static_cast<const IfUnknownStmt &>(s);
            indent(depth);
            _os << "IF (unknown#" << br.id << ") THEN\n";
            body(br.thenBody, depth + 1);
            if (!br.elseBody.empty()) {
                indent(depth);
                _os << "ELSE\n";
                body(br.elseBody, depth + 1);
            }
            indent(depth);
            _os << "END IF\n";
            break;
          }
          case StmtKind::Call: {
            const auto &c = static_cast<const CallStmt &>(s);
            indent(depth);
            _os << "CALL " << _prog.procedures()[c.callee].name << "\n";
            break;
          }
          case StmtKind::Critical: {
            const auto &cs = static_cast<const CriticalStmt &>(s);
            indent(depth);
            _os << "CRITICAL\n";
            body(cs.body, depth + 1);
            indent(depth);
            _os << "END CRITICAL\n";
            break;
          }
          case StmtKind::Barrier:
            indent(depth);
            _os << "BARRIER\n";
            break;
          case StmtKind::Sync: {
            const auto &sy = static_cast<const SyncStmt &>(s);
            indent(depth);
            _os << (sy.isPost ? "POST(" : "WAIT(") << sy.flag.str()
                << ")\n";
            break;
          }
        }
    }

    std::ostream &_os;
    const Program &_prog;
    const PrintOptions &_opts;
};

} // namespace

void
printProcedure(std::ostream &os, const Program &prog, ProcIndex proc,
               const PrintOptions &opts)
{
    const Procedure &p = prog.procedures().at(proc);
    os << (proc == prog.mainIndex() ? "PROGRAM " : "SUBROUTINE ")
       << p.name << "\n";
    Printer printer(os, prog, opts);
    printer.body(p.body, 1);
    os << "END\n";
}

void
printProgram(std::ostream &os, const Program &prog,
             const PrintOptions &opts)
{
    for (const auto &[name, value] : prog.params().vars())
        os << "PARAMETER (" << name << " = " << value << ")\n";
    for (const ArrayDecl &a : prog.arrays()) {
        os << "REAL " << a.name << "(";
        for (std::size_t d = 0; d < a.dims.size(); ++d)
            os << (d ? "," : "") << a.dims[d];
        os << csprintf(")    ! base 0x%x\n", a.base);
    }
    os << "\n";
    for (ProcIndex i = 0; i < prog.procedures().size(); ++i) {
        printProcedure(os, prog, i, opts);
        os << "\n";
    }
}

std::string
programToString(const Program &prog, const PrintOptions &opts)
{
    std::ostringstream os;
    printProgram(os, prog, opts);
    return os.str();
}

} // namespace hir
} // namespace hscd
