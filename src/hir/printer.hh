/**
 * @file
 * Pseudo-Fortran pretty printer for HIR programs; used by the
 * compiler-explorer example and for test diagnostics.
 */

#ifndef HSCD_HIR_PRINTER_HH
#define HSCD_HIR_PRINTER_HH

#include <ostream>
#include <string>

#include "hir/program.hh"

namespace hscd {
namespace hir {

/** Options controlling the dump. */
struct PrintOptions
{
    bool showRefIds = true;   ///< annotate refs with their RefId
    int indentWidth = 2;
};

/** Print one procedure. */
void printProcedure(std::ostream &os, const Program &prog,
                    ProcIndex proc, const PrintOptions &opts = {});

/** Print the whole program (arrays, params, all procedures). */
void printProgram(std::ostream &os, const Program &prog,
                  const PrintOptions &opts = {});

/** Convenience: whole program as a string. */
std::string programToString(const Program &prog,
                            const PrintOptions &opts = {});

} // namespace hir
} // namespace hscd

#endif // HSCD_HIR_PRINTER_HH
