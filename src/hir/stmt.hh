/**
 * @file
 * Statement nodes of the parallel-program IR.
 *
 * The IR models what the Polaris parallelizer hands to the coherence
 * compiler: structured code made of serial DO loops, DOALL loops, array
 * reads/writes with affine (or unknown) subscripts, procedure calls,
 * critical sections, explicit barriers, and compile-time-opaque branches.
 */

#ifndef HSCD_HIR_STMT_HH
#define HSCD_HIR_STMT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "hir/expr.hh"

namespace hscd {
namespace hir {

/** Index of an array in Program's symbol table. */
using ArrayId = std::uint32_t;
/** Unique id of a static memory reference (read or write site). */
using RefId = std::uint32_t;
/** Index of a procedure in Program's procedure table. */
using ProcIndex = std::uint32_t;

constexpr ArrayId invalidArray = static_cast<ArrayId>(-1);
constexpr RefId invalidRef = static_cast<RefId>(-1);

enum class StmtKind
{
    ArrayRef,     ///< read or write of an array element
    Compute,      ///< opaque ALU work costing N cycles
    Loop,         ///< serial DO or parallel DOALL
    IfUnknown,    ///< branch whose predicate the compiler cannot analyze
    Call,         ///< call of another procedure (globals only)
    Critical,     ///< lock-protected section
    Barrier,      ///< explicit epoch boundary
    Sync,         ///< post/wait point-to-point synchronization
};

/** How an IfUnknown branch resolves at run time (compiler can't see it). */
enum class TakePolicy
{
    Always,      ///< then-branch every time
    Never,       ///< else-branch every time
    Alternate,   ///< then on even trip counts, else on odd
    Hash,        ///< deterministic pseudo-random on the live bindings
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

class Stmt
{
  public:
    explicit Stmt(StmtKind kind) : _kind(kind) {}
    virtual ~Stmt() = default;

    Stmt(const Stmt &) = delete;
    Stmt &operator=(const Stmt &) = delete;

    StmtKind kind() const { return _kind; }

  private:
    StmtKind _kind;
};

/** An array element read or write. */
class ArrayRefStmt : public Stmt
{
  public:
    ArrayRefStmt(ArrayId array, std::vector<IntExpr> subs, bool is_write,
                 RefId id)
        : Stmt(StmtKind::ArrayRef), array(array), subs(std::move(subs)),
          isWrite(is_write), id(id)
    {}

    ArrayId array;
    std::vector<IntExpr> subs;
    bool isWrite;
    RefId id;
};

/** Opaque computation consuming processor cycles. */
class ComputeStmt : public Stmt
{
  public:
    explicit ComputeStmt(Cycles cycles)
        : Stmt(StmtKind::Compute), cycles(cycles)
    {}

    Cycles cycles;
};

/** DO / DOALL loop. Bounds are inclusive; step is a positive constant. */
class LoopStmt : public Stmt
{
  public:
    LoopStmt(std::string var, IntExpr lo, IntExpr hi, std::int64_t step,
             bool parallel)
        : Stmt(StmtKind::Loop), var(std::move(var)), lo(std::move(lo)),
          hi(std::move(hi)), step(step), parallel(parallel)
    {}

    std::string var;
    IntExpr lo;
    IntExpr hi;
    std::int64_t step;
    bool parallel;
    StmtList body;
};

/** Two-way branch on a predicate the compiler must treat as opaque. */
class IfUnknownStmt : public Stmt
{
  public:
    explicit IfUnknownStmt(TakePolicy policy, std::uint32_t id)
        : Stmt(StmtKind::IfUnknown), policy(policy), id(id)
    {}

    TakePolicy policy;
    std::uint32_t id;
    StmtList thenBody;
    StmtList elseBody;
};

/** Call of another procedure. Procedures share the global arrays. */
class CallStmt : public Stmt
{
  public:
    explicit CallStmt(ProcIndex callee)
        : Stmt(StmtKind::Call), callee(callee)
    {}

    ProcIndex callee;
};

/** Lock-protected section (single global lock, as in DOALL reductions). */
class CriticalStmt : public Stmt
{
  public:
    CriticalStmt() : Stmt(StmtKind::Critical) {}

    StmtList body;
};

/** Explicit epoch boundary in serial code. */
class BarrierStmt : public Stmt
{
  public:
    BarrierStmt() : Stmt(StmtKind::Barrier) {}
};

/**
 * Point-to-point synchronization between concurrent tasks of one epoch
 * (the paper's "threads with inter-thread communication"). A post
 * carries release semantics (the poster's write buffer drains first);
 * waits block until the flag has been posted in the current epoch. The
 * flag expression is evaluated per dynamic instance, so doacross-style
 * pipelines post/wait on their iteration number.
 */
class SyncStmt : public Stmt
{
  public:
    SyncStmt(bool is_post, IntExpr flag)
        : Stmt(StmtKind::Sync), isPost(is_post), flag(std::move(flag))
    {}

    bool isPost;
    IntExpr flag;
};

/** Checked downcast helpers. */
template <typename T>
const T *
stmtAs(const Stmt &s)
{
    return dynamic_cast<const T *>(&s);
}

} // namespace hir
} // namespace hscd

#endif // HSCD_HIR_STMT_HH
