#include "mem/vc_scheme.hh"

#include "common/log.hh"

namespace hscd {
namespace mem {

using compiler::MarkKind;

VcScheme::VcScheme(const MachineConfig &cfg, MainMemory &memory,
                   net::Network &network, stats::StatGroup *parent)
    : CoherenceScheme(cfg, memory, network, parent),
      _history(cfg.procs, Addr(memory.words()) * 4, cfg.lineBytes)
{
    _caches.reserve(cfg.procs);
    _wbuf.reserve(cfg.procs);
    for (unsigned p = 0; p < cfg.procs; ++p) {
        _caches.emplace_back(cfg, Addr(memory.words()) * 4);
        _wbuf.emplace_back(cfg.writeBufferAsCache,
                           cfg.writeBufferCacheWords);
    }
}

std::uint64_t &
VcScheme::cvnSlot(std::uint32_t array)
{
    hscd_assert(array != static_cast<std::uint32_t>(-1),
                "VC needs the owning array of every reference");
    if (array >= _cvn.size())
        _cvn.resize(array + 1, 0);
    return _cvn[array];
}

std::uint64_t
VcScheme::cvn(std::uint32_t array) const
{
    return array < _cvn.size() ? _cvn[array] : 0;
}

VcScheme::Cache::Line &
VcScheme::fill(ProcId proc, const MemOp &op)
{
    Cache &cache = _caches[proc];
    Addr base = cache.lineAddr(op.addr);
    Cache::Line *frame = cache.lookup(op.addr, op.now);
    if (!frame) {
        frame = &cache.victim(op.addr, op.now);
        if (frame->valid)
            _history.record(proc, frame->base, LineEvent::Evicted);
    }
    Cache::Line &line = *frame;
    line.valid = true;
    line.base = base;
    line.lastUse = op.now;
    line.meta.arrayId = op.arrayId;
    std::uint64_t version = cvnSlot(op.arrayId);
    for (unsigned w = 0; w < cache.wordsPerLine(); ++w) {
        line.stamps[w] = _mem.read(base + Addr(w) * 4);
        line.words[w].valid = true;
        line.words[w].bvn = version;
    }
    _history.record(proc, base, LineEvent::Cached);
    ++_stats.readPackets;
    _stats.readWords += cache.wordsPerLine();
    _net.addTraffic(1, cache.wordsPerLine());
    return line;
}

AccessResult
VcScheme::miss(const MemOp &op, MissClass cls, unsigned widx)
{
    AccessResult res;
    Cache::Line &line = fill(op.proc, op);
    ++_stats.readMisses;
    _stats.classify(cls);
    res.hit = false;
    res.cls = cls;
    res.stall = lineFetchLatency() +
                reliableSend(op.proc, op.now, "line fetch");
    res.observed = line.stamps[widx];
    _stats.missLatency.sample(double(res.stall));
    return res;
}

AccessResult
VcScheme::access(const MemOp &op)
{
    AccessResult res;
    Cache &cache = _caches[op.proc];
    unsigned widx = cache.wordIndex(op.addr);
    std::uint64_t version = cvnSlot(op.arrayId);

    if (op.write) {
        ++_stats.writes;
        _writtenArrays.insert(op.arrayId);
        Cache::Line *line = cache.lookup(op.addr, op.now);
        if (!line) {
            ++_stats.writeMisses;
            line = &fill(op.proc, op);
        }
        line->stamps[widx] = op.stamp;
        line->words[widx].valid = true;
        // The writer's copy survives the next version bump - unless the
        // write is lock-/sync-ordered, where a later lock owner may
        // produce a newer value within the same version.
        line->words[widx].bvn = op.critical ? version : version + 1;
        _mem.write(op.addr, op.stamp);
        Cycles extra = 0;
        if (!_wbuf[op.proc].noteWrite(op.addr)) {
            ++_stats.writePackets;
            ++_stats.writeWords;
            _net.addTraffic(1, 1);
            extra = reliableSend(op.proc, op.now, "write-through");
        }
        res.stall = finishWrite(op.proc, op.now,
                                _cfg.writeLatencyCycles +
                                    _net.contentionDelay(1) + extra);
        return res;
    }

    ++_stats.reads;
    Cache::Line *line = cache.lookup(op.addr, op.now);

    if (op.mark == MarkKind::Bypass) {
        ++_stats.bypassReads;
        ++_stats.readMisses;
        MissClass cls;
        if (line && line->words[widx].valid) {
            cls = line->stamps[widx] == _mem.read(op.addr)
                      ? MissClass::Conservative
                      : MissClass::TrueShare;
        } else {
            cls = _history.classifyAbsent(op.proc, op.addr);
        }
        _stats.classify(cls);
        ++_stats.readPackets;
        ++_stats.readWords;
        _net.addTraffic(1, 1);
        res.hit = false;
        res.cls = cls;
        res.stall = wordFetchLatency() +
                    reliableSend(op.proc, op.now, "bypass word fetch");
        res.observed = _mem.read(op.addr);
        if (line)
            line->stamps[widx] = res.observed;
        _stats.missLatency.sample(double(res.stall));
        return res;
    }

    // VC has no distance operand: Normal and Time-Read reads are the
    // same load; validity is the per-variable version comparison.
    if (op.mark == MarkKind::TimeRead)
        ++_stats.timeReads;
    if (line && line->words[widx].valid &&
        line->words[widx].bvn >= version)
    {
        ++_stats.readHits;
        if (op.mark == MarkKind::TimeRead)
            ++_stats.timeReadHits;
        res.hit = true;
        res.stall = _cfg.hitCycles;
        res.observed = line->stamps[widx];
        return res;
    }

    MissClass cls;
    if (line && line->words[widx].valid) {
        cls = line->stamps[widx] == _mem.read(op.addr)
                  ? MissClass::Conservative
                  : MissClass::TrueShare;
    } else {
        cls = _history.classifyAbsent(op.proc, op.addr);
    }
    return miss(op, cls, widx);
}

Cycles
VcScheme::epochBoundary(EpochId new_epoch)
{
    CoherenceScheme::epochBoundary(new_epoch);
    for (WriteBuffer &wb : _wbuf)
        wb.drain();
    for (std::uint32_t a : _writtenArrays)
        ++cvnSlot(a);
    _writtenArrays.clear();
    return 0;
}

void
VcScheme::migrationDrain(ProcId p)
{
    _wbuf[p].drain();
}

void
VcScheme::flushCache(ProcId p)
{
    _caches[p].forEachLine([&](Cache::Line &line) {
        _history.record(p, line.base, LineEvent::Evicted);
        line.valid = false;
    });
}

} // namespace mem
} // namespace hscd
