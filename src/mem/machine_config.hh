/**
 * @file
 * Machine configuration (the paper's Figure 8 defaults).
 *
 * CPU: single-issue, 1-cycle ALU ops. Cache: 64 KB direct-mapped,
 * 4-word (16-byte) lines, 1-cycle hit, 100-cycle base miss latency,
 * 8-bit timetags, 128-cycle two-phase reset. Network: analytic
 * Kruskal-Snir model for a buffered multistage network, 16 processors.
 */

#ifndef HSCD_MEM_MACHINE_CONFIG_HH
#define HSCD_MEM_MACHINE_CONFIG_HH

#include <string>

#include "common/config.hh"
#include "common/types.hh"
#include "fault/plan.hh"

namespace hscd {

/** Which coherence scheme a Machine instantiates. */
enum class SchemeKind
{
    Base,       ///< shared data uncached
    SC,         ///< software cache-bypass
    TPI,        ///< two-phase invalidation (the paper's proposal)
    HW,         ///< full-map directory, 3-state invalidation protocol
    VC,         ///< version control (Cheong-Veidenbaum [14] comparator)
};

/** Interconnect topology for the analytic contention model. */
enum class Topology
{
    MIN,       ///< buffered multistage network (Kruskal-Snir [24])
    Torus3D,   ///< T3D-like 3-D torus with dimension-order routing
};

/** How DOALL iterations are assigned to processors. */
enum class SchedPolicy
{
    Block,      ///< contiguous chunks
    Cyclic,     ///< round robin
    Dynamic,    ///< self-scheduling in chunks, by availability
};

struct MachineConfig
{
    unsigned procs = 16;
    std::uint64_t cacheBytes = 64 * 1024;
    unsigned lineBytes = 16;          ///< 4 32-bit words
    unsigned assoc = 1;               ///< direct-mapped
    Cycles hitCycles = 1;
    Cycles baseMissCycles = 100;      ///< unloaded remote access
    Cycles wordTransferCycles = 12;   ///< per extra word on the line
    unsigned timetagBits = 8;
    Cycles twoPhaseResetCycles = 128;
    Cycles barrierCycles = 40;        ///< epoch boundary synchronization
    Cycles writeLatencyCycles = 60;   ///< write-through completion
    unsigned networkRadix = 2;        ///< switch radix of the MIN
    Topology topology = Topology::MIN;
    double maxNetworkLoad = 0.95;     ///< clamp for the analytic model
    SchemeKind scheme = SchemeKind::TPI;
    SchedPolicy sched = SchedPolicy::Block;
    unsigned dynamicChunk = 4;        ///< iterations per dynamic grab
    Cycles lockCycles = 30;           ///< critical-section acquire cost
    /** 0 = full-map directory; >0 = DirNB-i limited pointers. */
    unsigned directoryPtrs = 0;
    Cycles directoryOverflowCycles = 50; ///< software-handler penalty
    Cycles dirtyMissExtraCycles = 40; ///< 3-hop forwarded miss extra
    /** Organize the write buffer as a small cache (redundant-write
     *  elimination, Alpha 21164 style [9,10]). */
    bool writeBufferAsCache = false;
    unsigned writeBufferCacheWords = 64;
    /** Probability that a task migrates mid-epoch (Section 5 study). */
    double migrationRate = 0.0;
    std::uint64_t migrationSeed = 12345;
    /**
     * Ablations of the TPI mechanism (both default on):
     *  - promotion: a passing Time-Read refreshes the word's timetag,
     *    which is what carries inter-task locality forward;
     *  - distance: the Time-Read instruction carries the compiler's
     *    epoch-distance operand; without it every Time-Read behaves as
     *    d = 0 (hardware degenerates to per-epoch validity).
     */
    bool tpiPromoteOnHit = true;
    bool tpiUseDistance = true;
    /**
     * Prior-work baseline (Cheong/Veidenbaum-era schemes): flash-
     * invalidate the processor's cache at every procedure entry and
     * return instead of doing interprocedural analysis. Applies to the
     * compiler-directed schemes (SC/TPI) only.
     */
    bool flushAtCalls = false;
    Cycles callFlushCycles = 10;
    /**
     * Consistency model. Weak (the paper's choice): writes retire into
     * the (infinite) write buffer in one cycle and only barriers/posts
     * wait for them. Sequential: every write stalls the processor for
     * its full completion latency - the paper's footnote that "both
     * reads and writes are affected" under SC, made measurable.
     */
    bool sequentialConsistency = false;
    /**
     * Shadow-epoch race detector: the executor tracks the last writer
     * (value stamp, processor, epoch) of every shared word and flags any
     * cache hit that observes an older value than the freshest write.
     * A hit that violates this is a coherence bug: either the marking
     * let a stale copy satisfy a read, or the scheme vouched for a word
     * it should not have. Off by default (verification runs only).
     */
    bool shadowEpochCheck = false;
    /**
     * Epoch-stream fast path: compile the program's per-processor
     * reference sequences into flat streams once (cached on the
     * CompiledProgram) and drive a devirtualized per-scheme access loop
     * from them, instead of re-walking HIR statements per reference.
     * Produces byte-identical RunResults; the interpreted path is kept
     * compiled (fastPath = false) as the equivalence-test oracle, and is
     * also used automatically whenever a program/config combination is
     * ineligible for streaming (dynamic self-scheduling, alternating
     * branches inside DOALL bodies).
     */
    bool fastPath = true;
    /**
     * Deterministic fault injection (off by default: rate 0). When the
     * plan is enabled the Machine owns a FaultInjector and threads it
     * through the network model and the coherence scheme; faults then
     * fire from counter-based draws so any failure replays exactly from
     * (workload, config, fault_seed). See src/fault/plan.hh for sites.
     */
    fault::FaultPlan fault;
    /** Cycles before the first retransmission of a lost message. */
    Cycles faultAckTimeoutCycles = 50;
    /** Retransmissions before reliable delivery gives up (Protocol
     *  abort); backoff doubles after each attempt. */
    unsigned faultMaxRetries = 4;
    /**
     * Watchdog: abort with a post-mortem snapshot if the executor
     * processes this many operations without any processor's clock
     * advancing (livelock / deadlock detector). 0 disables.
     */
    std::uint64_t watchdogStallOps = 1ull << 22;

    unsigned wordsPerLine() const { return lineBytes / 4; }
    std::uint64_t lines() const { return cacheBytes / lineBytes; }
    std::uint64_t sets() const { return lines() / assoc; }

    /** Schema for key=value command lines (benches/examples). */
    static Params params();
    /** Build from parsed params. */
    static MachineConfig fromParams(const Params &p);
    /** Validate invariants (power-of-two sizes etc.); fatal on error. */
    void validate() const;

    std::string str() const;
};

/** Parse "base|sc|tpi|hw". */
SchemeKind parseScheme(const std::string &s);
const char *schemeName(SchemeKind k);

/** Parse "min|torus3d". */
Topology parseTopology(const std::string &s);
const char *topologyName(Topology t);

/** Parse "block|cyclic|dynamic". */
SchedPolicy parseSched(const std::string &s);
const char *schedName(SchedPolicy p);

} // namespace hscd

#endif // HSCD_MEM_MACHINE_CONFIG_HH
