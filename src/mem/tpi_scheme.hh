/**
 * @file
 * TPI: the Two-Phase Invalidation scheme (the paper's proposal).
 *
 * Hardware state: one epoch counter per processor (all advance together
 * at epoch boundaries) and an n-bit timetag per cache word. Semantics:
 *
 *  - write:            word.tt := EC (write-through, write-allocate)
 *  - line fill:        accessed word.tt := EC, other words := EC - 1
 *                      (guards intra-epoch RAW/WAR between tasks)
 *  - Time-Read(d):     hit iff word valid and word.tt >= EC - d;
 *                      on hit promote word.tt := EC (inter-task locality)
 *  - normal read:      hit iff word valid (compiler proved freshness)
 *  - bypass read:      always fetch the word from memory
 *  - two-phase reset:  when EC crosses a phase boundary (every 2^(n-1)
 *                      epochs) all words older than one phase are
 *                      invalidated in the background (128-cycle stall),
 *                      keeping the modular timetag comparison unambiguous.
 *
 * Timetags are stored unbounded internally, but the two-phase reset is
 * applied exactly as the n-bit hardware would, so narrow tags genuinely
 * lose cached data (the Section 4 sensitivity experiment).
 */

#ifndef HSCD_MEM_TPI_SCHEME_HH
#define HSCD_MEM_TPI_SCHEME_HH

#include <vector>

#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/line_history.hh"
#include "mem/write_buffer.hh"

namespace hscd {
namespace mem {

/** Per-word TPI state. */
struct TpiWord
{
    EpochId tt = 0;
    bool valid = false;
};

class TpiScheme final : public CoherenceScheme
{
  public:
    TpiScheme(const MachineConfig &cfg, MainMemory &memory,
              net::Network &network, stats::StatGroup *parent);

    AccessResult access(const MemOp &op) override;
    Cycles epochBoundary(EpochId new_epoch) override;
    void migrationDrain(ProcId p) override;
    void flushCache(ProcId p) override;

    /** Timetag window: one phase = 2^(n-1) epochs. */
    EpochId phaseLength() const { return _phase; }

    std::string postMortem() const override;

  private:
    using Cache = CacheArray<TpiWord, NoMeta>;

    Cache::Line &fill(ProcId proc, Addr addr, Cycles now);
    AccessResult miss(const MemOp &op, MissClass cls, unsigned widx);
    /** Fault site mem.tag: maybe flip a timetag/valid bit of @p line. */
    void maybeCorruptTag(Cache::Line *line);

    std::vector<Cache> _caches;
    std::vector<WriteBuffer> _wbuf;
    LineHistory _history;
    EpochId _phase;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_TPI_SCHEME_HH
