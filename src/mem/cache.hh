/**
 * @file
 * Generic set-associative cache array with per-word metadata.
 *
 * The coherence schemes differ in what they must remember per word (TPI:
 * timetags) and per line (HW: MSI state), so the array is templated over
 * both. Value stamps per word are always kept: they are the simulated
 * "data" the coherence oracle checks.
 */

#ifndef HSCD_MEM_CACHE_HH
#define HSCD_MEM_CACHE_HH

#include <functional>
#include <vector>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "mem/machine_config.hh"
#include "mem/memory.hh"

namespace hscd {
namespace mem {

/** Empty metadata for schemes that need none. */
struct NoMeta
{
};

template <typename WordMeta = NoMeta, typename LineMeta = NoMeta>
class CacheArray
{
  public:
    struct Line
    {
        bool valid = false;
        Addr base = 0;                 ///< line-aligned address
        Cycles lastUse = 0;            ///< for LRU
        LineMeta meta{};
        std::vector<WordMeta> words;
        std::vector<ValueStamp> stamps;
    };

    CacheArray(const MachineConfig &cfg)
        : _lineBytes(cfg.lineBytes), _assoc(cfg.assoc),
          _sets(cfg.sets()),
          _lines(_sets * _assoc)
    {
        hscd_assert(isPowerOf2(_sets), "set count must be a power of two");
        for (Line &l : _lines) {
            l.words.resize(cfg.wordsPerLine());
            l.stamps.resize(cfg.wordsPerLine());
        }
    }

    Addr lineAddr(Addr a) const { return a & ~Addr(_lineBytes - 1); }
    unsigned wordIndex(Addr a) const { return (a % _lineBytes) / 4; }
    unsigned wordsPerLine() const
    {
        return static_cast<unsigned>(_lineBytes / 4);
    }

    /** Find a valid line holding @p addr; updates LRU on hit. */
    Line *
    lookup(Addr addr, Cycles now)
    {
        Addr base = lineAddr(addr);
        std::size_t set = setOf(base);
        for (unsigned w = 0; w < _assoc; ++w) {
            Line &l = _lines[set * _assoc + w];
            if (l.valid && l.base == base) {
                if (now > l.lastUse)
                    l.lastUse = now;
                return &l;
            }
        }
        return nullptr;
    }

    const Line *
    peek(Addr addr) const
    {
        Addr base = lineAddr(addr);
        std::size_t set = setOf(base);
        for (unsigned w = 0; w < _assoc; ++w) {
            const Line &l = _lines[set * _assoc + w];
            if (l.valid && l.base == base)
                return &l;
        }
        return nullptr;
    }

    /**
     * Choose a victim frame for @p addr (LRU among the set; invalid frames
     * first). The caller inspects the returned line (valid => eviction)
     * and then initializes it.
     */
    Line &
    victim(Addr addr, Cycles now)
    {
        Addr base = lineAddr(addr);
        std::size_t set = setOf(base);
        Line *best = nullptr;
        for (unsigned w = 0; w < _assoc; ++w) {
            Line &l = _lines[set * _assoc + w];
            if (!l.valid)
                return l;
            if (!best || l.lastUse < best->lastUse)
                best = &l;
        }
        (void)now;
        return *best;
    }

    /** Invalidate every line for which @p pred returns true. */
    void
    invalidateIf(const std::function<bool(Line &)> &pred)
    {
        for (Line &l : _lines)
            if (l.valid && pred(l))
                l.valid = false;
    }

    /** Visit every valid line. */
    void
    forEachLine(const std::function<void(Line &)> &fn)
    {
        for (Line &l : _lines)
            if (l.valid)
                fn(l);
    }

    std::size_t lineCount() const { return _lines.size(); }

  private:
    std::size_t setOf(Addr base) const
    {
        return (base / _lineBytes) & (_sets - 1);
    }

    unsigned _lineBytes;
    unsigned _assoc;
    std::size_t _sets;
    std::vector<Line> _lines;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_CACHE_HH
