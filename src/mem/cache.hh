/**
 * @file
 * Generic set-associative cache array with per-word metadata.
 *
 * The coherence schemes differ in what they must remember per word (TPI:
 * timetags) and per line (HW: MSI state), so the array is templated over
 * both. Value stamps per word are always kept: they are the simulated
 * "data" the coherence oracle checks.
 */

#ifndef HSCD_MEM_CACHE_HH
#define HSCD_MEM_CACHE_HH

#include <vector>

#include "common/bitutil.hh"
#include "common/log.hh"
#include "mem/machine_config.hh"
#include "mem/memory.hh"

namespace hscd {
namespace mem {

/** Empty metadata for schemes that need none. */
struct NoMeta
{
};

template <typename WordMeta = NoMeta, typename LineMeta = NoMeta>
class CacheArray
{
  public:
    struct Line
    {
        bool valid = false;
        Addr base = 0;                 ///< line-aligned address
        Cycles lastUse = 0;            ///< for LRU
        LineMeta meta{};
        /**
         * wordsPerLine() entries each, aliasing the array's flat backing
         * stores. Two big allocations per cache instead of two small ones
         * per line: Machine construction happens once per simulated run,
         * and tens of thousands of per-line vector allocations dominated
         * short runs' wall clock.
         */
        WordMeta *words = nullptr;
        ValueStamp *stamps = nullptr;
    };

    /**
     * @param data_bytes upper bound on simulated addresses, or 0 for
     * none. setOf() masks the line index by the set count, so when the
     * whole address range maps into the first N sets, the remaining sets
     * are unreachable and need not be allocated. Capping the set count at
     * the next power of two >= N leaves the set of every reachable
     * address unchanged while making construction cost proportional to
     * the program's footprint instead of the configured cache size —
     * which matters because a Machine is built per simulated run.
     */
    CacheArray(const MachineConfig &cfg, Addr data_bytes = 0)
        : _lineBytes(cfg.lineBytes), _assoc(cfg.assoc),
          _sets(reachableSets(cfg, data_bytes)),
          _lines(_sets * _assoc),
          _wordStore(_lines.size() * cfg.wordsPerLine()),
          _stampStore(_lines.size() * cfg.wordsPerLine())
    {
        hscd_assert(isPowerOf2(_sets), "set count must be a power of two");
        const unsigned wpl = cfg.wordsPerLine();
        for (std::size_t i = 0; i < _lines.size(); ++i) {
            _lines[i].words = _wordStore.data() + i * wpl;
            _lines[i].stamps = _stampStore.data() + i * wpl;
        }
    }

    // Lines alias the backing stores; moving is safe (the stores' heap
    // buffers move wholesale) but copying would alias the source.
    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;
    CacheArray(CacheArray &&) = default;
    CacheArray &operator=(CacheArray &&) = default;

    Addr lineAddr(Addr a) const { return a & ~Addr(_lineBytes - 1); }
    unsigned wordIndex(Addr a) const { return (a % _lineBytes) / 4; }
    unsigned wordsPerLine() const
    {
        return static_cast<unsigned>(_lineBytes / 4);
    }

    /** Find a valid line holding @p addr; updates LRU on hit. */
    Line *
    lookup(Addr addr, Cycles now)
    {
        Addr base = lineAddr(addr);
        std::size_t set = setOf(base);
        for (unsigned w = 0; w < _assoc; ++w) {
            Line &l = _lines[set * _assoc + w];
            if (l.valid && l.base == base) {
                if (now > l.lastUse)
                    l.lastUse = now;
                return &l;
            }
        }
        return nullptr;
    }

    const Line *
    peek(Addr addr) const
    {
        Addr base = lineAddr(addr);
        std::size_t set = setOf(base);
        for (unsigned w = 0; w < _assoc; ++w) {
            const Line &l = _lines[set * _assoc + w];
            if (l.valid && l.base == base)
                return &l;
        }
        return nullptr;
    }

    /**
     * Choose a victim frame for @p addr (LRU among the set; invalid frames
     * first). The caller inspects the returned line (valid => eviction)
     * and then initializes it.
     */
    Line &
    victim(Addr addr, Cycles now)
    {
        Addr base = lineAddr(addr);
        std::size_t set = setOf(base);
        Line *best = nullptr;
        for (unsigned w = 0; w < _assoc; ++w) {
            Line &l = _lines[set * _assoc + w];
            if (!l.valid)
                return l;
            if (!best || l.lastUse < best->lastUse)
                best = &l;
        }
        (void)now;
        return *best;
    }

    /**
     * Invalidate every line for which @p pred returns true. Templated
     * (not std::function) so scheme epoch-boundary sweeps inline the
     * predicate instead of paying an indirect call per line.
     */
    template <typename Pred>
    void
    invalidateIf(Pred &&pred)
    {
        for (Line &l : _lines)
            if (l.valid && pred(l))
                l.valid = false;
    }

    /** Visit every valid line. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (Line &l : _lines)
            if (l.valid)
                fn(l);
    }

    /** Visit every valid line, read-only (post-mortem snapshots). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn) const
    {
        for (const Line &l : _lines)
            if (l.valid)
                fn(l);
    }

    std::size_t lineCount() const { return _lines.size(); }

  private:
    static std::size_t
    reachableSets(const MachineConfig &cfg, Addr data_bytes)
    {
        std::size_t sets = cfg.sets();
        if (data_bytes == 0)
            return sets;
        Addr data_lines = divCeil(data_bytes, cfg.lineBytes);
        std::size_t reachable = std::size_t{1} << ceilLog2(data_lines);
        return reachable < sets ? reachable : sets;
    }

    std::size_t setOf(Addr base) const
    {
        return (base / _lineBytes) & (_sets - 1);
    }

    unsigned _lineBytes;
    unsigned _assoc;
    std::size_t _sets;
    std::vector<Line> _lines;
    std::vector<WordMeta> _wordStore;
    std::vector<ValueStamp> _stampStore;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_CACHE_HH
