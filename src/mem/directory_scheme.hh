/**
 * @file
 * HW: full-map directory scheme with a three-state (invalid, read-shared,
 * write-exclusive) invalidation protocol [8, 3] and write-back caches.
 *
 * A DirNB-i limited-pointer variant (configured with directoryPtrs > 0)
 * models LimitLess-style directories [2]: overflow beyond i sharers traps
 * to software (a fixed cycle penalty) and broadcasts invalidations.
 *
 * False sharing is classified with the Tullsen-Eggers method [34]: an
 * invalidation whose triggering write hits a word the victim never
 * accessed since the fill is a false-sharing invalidation, and the
 * victim's next miss on that block counts as a false-sharing miss.
 */

#ifndef HSCD_MEM_DIRECTORY_SCHEME_HH
#define HSCD_MEM_DIRECTORY_SCHEME_HH

#include <vector>

#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/line_history.hh"

namespace hscd {
namespace mem {

/** Per-cache-line MSI metadata. */
struct MsiLine
{
    bool dirty = false;           ///< write-exclusive (M)
    std::uint64_t accessedMask = 0; ///< words touched since fill
};

/** Directory entry for one memory line. */
struct DirEntry
{
    enum class State : std::uint8_t { Uncached, Shared, Modified };

    State state = State::Uncached;
    std::uint64_t sharers = 0;    ///< presence bits (full map)
    ProcId owner = invalidProc;   ///< valid in Modified
    /** DirNB-i: pointer overflow happened since the last reset. */
    bool overflowed = false;
};

class DirectoryScheme final : public CoherenceScheme
{
  public:
    DirectoryScheme(const MachineConfig &cfg, MainMemory &memory,
                    net::Network &network, stats::StatGroup *parent);

    AccessResult access(const MemOp &op) override;

    /** For tests: inspect directory state of the line holding addr. */
    const DirEntry &dirEntry(Addr addr) const;

    std::string postMortem() const override;

  private:
    using Cache = CacheArray<NoMeta, MsiLine>;

    DirEntry &entry(Addr addr);
    std::size_t lineIndex(Addr addr) const
    {
        return addr / _cfg.lineBytes;
    }

    /** Write @p proc's cached line back to memory. */
    void writeBack(ProcId proc, Cache::Line &line);
    /** Invalidate every sharer except @p except; returns count. */
    unsigned invalidateSharers(DirEntry &e, Addr base, ProcId except,
                               unsigned written_word);
    /** Downgrade a Modified owner to Shared, flushing to memory. */
    void downgradeOwner(DirEntry &e, Addr base);
    /** Fetch the line into @p proc's cache (memory must be current). */
    Cache::Line &fill(ProcId proc, Addr addr, Cycles now);
    /** DirNB-i software-handler penalty when sharers exceed pointers. */
    Cycles overflowPenalty(DirEntry &e);
    /** Fault site dir.presence: maybe flip a presence bit of @p e. */
    void maybeCorruptEntry(DirEntry &e);

    std::vector<Cache> _caches;
    std::vector<DirEntry> _dir;
    LineHistory _history;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_DIRECTORY_SCHEME_HH
