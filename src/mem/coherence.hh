/**
 * @file
 * Coherence-scheme interface and shared machinery (statistics, write
 * pipeline, miss classification, latency model).
 *
 * The executor drives a scheme with one call per memory reference and one
 * call per epoch boundary; everything else (caches, directory, write
 * buffers, timetags) lives behind this interface.
 */

#ifndef HSCD_MEM_COHERENCE_HH
#define HSCD_MEM_COHERENCE_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "compiler/marking.hh"
#include "fault/abort.hh"
#include "fault/injector.hh"
#include "mem/machine_config.hh"
#include "mem/memory.hh"
#include "network/kruskal_snir.hh"

namespace hscd {
namespace mem {

/** Why a miss happened (for the Figure 12 decomposition). */
enum class MissClass : std::uint8_t
{
    None,          ///< it was a hit
    Cold,          ///< first touch by this processor
    Replacement,   ///< line was evicted earlier (capacity/conflict)
    TrueShare,     ///< refetched data that really was stale
    FalseShare,    ///< HW: invalidated by a write to another word
    Conservative,  ///< TPI/SC: refetched data that was actually fresh
    TagReset,      ///< TPI: invalidated by timetag wrap (two-phase reset)
    Uncached,      ///< BASE: shared data is never cached
};

const char *missClassName(MissClass c);

/** One memory reference as the executor issues it. */
struct MemOp
{
    ProcId proc = 0;
    Addr addr = 0;
    bool write = false;
    /** Owning array (hir::ArrayId); per-variable schemes (VC) need it. */
    std::uint32_t arrayId = static_cast<std::uint32_t>(-1);
    compiler::MarkKind mark = compiler::MarkKind::Normal;
    std::uint32_t distance = 0;   ///< TimeRead operand
    ValueStamp stamp = 0;         ///< new value (writes)
    Cycles now = 0;
    /**
     * Reference executes under the lock. Lock-ordered writers may follow
     * within the same epoch, so TPI must not vouch for such a word beyond
     * EC - 1.
     */
    bool critical = false;
};

/** What the processor observes. */
struct AccessResult
{
    bool hit = false;
    Cycles stall = 1;             ///< cycles the processor waits
    ValueStamp observed = 0;      ///< value stamp seen (reads)
    MissClass cls = MissClass::None;
};

/**
 * Common statistics every scheme keeps.
 */
struct SchemeStats
{
    explicit SchemeStats(stats::StatGroup *parent);

    stats::StatGroup group;
    stats::Scalar reads;
    stats::Scalar writes;
    stats::Scalar readHits;
    stats::Scalar readMisses;
    stats::Scalar writeMisses;      ///< allocations triggered by writes
    stats::Scalar missCold;
    stats::Scalar missReplacement;
    stats::Scalar missTrueShare;
    stats::Scalar missFalseShare;
    stats::Scalar missConservative;
    stats::Scalar missTagReset;
    stats::Scalar missUncached;
    stats::Scalar timeReads;
    stats::Scalar timeReadHits;
    stats::Scalar bypassReads;
    stats::Scalar readPackets;
    stats::Scalar readWords;
    stats::Scalar writePackets;
    stats::Scalar writeWords;
    stats::Scalar coherencePackets;  ///< invalidations, acks, forwards
    stats::Scalar writebackPackets;
    stats::Scalar writebackWords;
    stats::Scalar invalidationsSent;
    stats::Scalar tagResets;
    stats::Average missLatency;

    void classify(MissClass c);
};

class CoherenceScheme
{
  public:
    CoherenceScheme(const MachineConfig &cfg, MainMemory &memory,
                    net::Network &network, stats::StatGroup *parent);
    virtual ~CoherenceScheme() = default;

    CoherenceScheme(const CoherenceScheme &) = delete;
    CoherenceScheme &operator=(const CoherenceScheme &) = delete;

    /** Perform one reference; updates all state and stats. */
    virtual AccessResult access(const MemOp &op) = 0;

    /**
     * All processors cross an epoch boundary together. Returns the
     * per-processor stall charged on top of the barrier (e.g. TPI's
     * two-phase reset).
     */
    virtual Cycles epochBoundary(EpochId new_epoch);

    /** Weak consistency: cycle at which proc's last write completes. */
    Cycles writeDrainTime(ProcId p) const { return _writeDone[p]; }

    /** A task migrated away from @p p mid-epoch: drain its writes. */
    virtual void migrationDrain(ProcId p) { (void)p; }

    /**
     * Flash-invalidate @p p's whole cache (the prior-work procedure-
     * boundary behaviour; no-op for schemes that don't need it).
     */
    virtual void flushCache(ProcId p) { (void)p; }

    const SchemeStats &stats() const { return _stats; }
    const MachineConfig &config() const { return _cfg; }

    /**
     * Attach the machine's fault injector (also handed to the network by
     * the Machine). Schemes with protocol state additionally arm their
     * own corruption sites; nullptr keeps every fault path compiled out
     * of the hot loop behind one branch.
     */
    void setFaultInjector(fault::FaultInjector *inj) { _fault = inj; }

    /**
     * One-page description of protocol state for post-mortem snapshots
     * (directory owners/sharers, epoch counters, ...). Base version
     * reports only the write pipeline.
     */
    virtual std::string postMortem() const;

    /** Total misses across classes. */
    Counter totalMisses() const;
    /** Read miss rate (readMisses / reads). */
    double readMissRate() const;

  protected:
    /** Unloaded + contended latency of a line fetch from memory. */
    Cycles lineFetchLatency() const;
    /** Latency of a single-word remote access. */
    Cycles wordFetchLatency() const;
    /** Record a completed write for the drain deadline. */
    void noteWrite(ProcId p, Cycles now, Cycles latency);
    /**
     * Retire a write of cost @p latency under the configured consistency
     * model; returns the processor-visible stall (1 when buffered).
     */
    Cycles finishWrite(ProcId p, Cycles now, Cycles latency);

    /**
     * Push one protocol message through the network with reliable
     * delivery: a dropped message is retransmitted after a bounded
     * exponential ack timeout (faultAckTimeoutCycles << attempt), each
     * retry costing a coherence packet; exhausting faultMaxRetries
     * throws a Protocol RunAbort carrying a post-mortem. Returns the
     * extra latency the sender observed (0 on a perfect network).
     */
    Cycles reliableSend(ProcId p, Cycles now, const char *what);

    const MachineConfig &_cfg;
    MainMemory &_mem;
    net::Network &_net;
    SchemeStats _stats;
    fault::FaultInjector *_fault = nullptr;
    EpochId _epoch = 0;
    std::vector<Cycles> _writeDone;
};

/** Factory: instantiate the scheme selected by @p cfg. */
std::unique_ptr<CoherenceScheme>
makeScheme(const MachineConfig &cfg, MainMemory &memory,
           net::Network &network, stats::StatGroup *parent);

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_COHERENCE_HH
