/**
 * @file
 * SC scheme: software cache-bypass.
 *
 * Compiler-marked potentially-stale reads invalidate the cached block and
 * reload it from memory (the MIPS R10000 "index writeback invalidate +
 * load" sequence [23]); unmarked reads hit normally. Writes are
 * write-through write-allocate. No hardware timetags: every marked read
 * refetches, so inter-task temporal locality is lost - exactly the
 * limitation TPI's timetags remove.
 */

#ifndef HSCD_MEM_SC_SCHEME_HH
#define HSCD_MEM_SC_SCHEME_HH

#include <vector>

#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/line_history.hh"
#include "mem/write_buffer.hh"

namespace hscd {
namespace mem {

class ScScheme final : public CoherenceScheme
{
  public:
    ScScheme(const MachineConfig &cfg, MainMemory &memory,
             net::Network &network, stats::StatGroup *parent);

    AccessResult access(const MemOp &op) override;
    Cycles epochBoundary(EpochId new_epoch) override;
    void migrationDrain(ProcId p) override;
    void flushCache(ProcId p) override;

  private:
    using Cache = CacheArray<NoMeta, NoMeta>;

    /** Fetch the line holding @p addr into @p proc's cache. */
    Cache::Line &fill(ProcId proc, Addr addr, Cycles now);

    std::vector<Cache> _caches;
    std::vector<WriteBuffer> _wbuf;
    LineHistory _history;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_SC_SCHEME_HH
