#include "mem/machine_config.hh"

#include "common/bitutil.hh"
#include "common/log.hh"
#include "common/strutil.hh"

namespace hscd {

SchemeKind
parseScheme(const std::string &s)
{
    const std::string v = toLower(trim(s));
    if (v == "base")
        return SchemeKind::Base;
    if (v == "sc")
        return SchemeKind::SC;
    if (v == "tpi")
        return SchemeKind::TPI;
    if (v == "hw" || v == "dir" || v == "directory")
        return SchemeKind::HW;
    if (v == "vc" || v == "version")
        return SchemeKind::VC;
    fatal("unknown scheme '%s' (expected base|sc|tpi|hw|vc)", s);
}

const char *
schemeName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::Base:
        return "BASE";
      case SchemeKind::SC:
        return "SC";
      case SchemeKind::TPI:
        return "TPI";
      case SchemeKind::HW:
        return "HW";
      case SchemeKind::VC:
        return "VC";
    }
    return "?";
}

Topology
parseTopology(const std::string &s)
{
    const std::string v = toLower(trim(s));
    if (v == "min" || v == "omega" || v == "banyan")
        return Topology::MIN;
    if (v == "torus3d" || v == "torus" || v == "t3d")
        return Topology::Torus3D;
    fatal("unknown network '%s' (expected min|torus3d)", s);
}

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::MIN:
        return "MIN";
      case Topology::Torus3D:
        return "torus3d";
    }
    return "?";
}

SchedPolicy
parseSched(const std::string &s)
{
    const std::string v = toLower(trim(s));
    if (v == "block")
        return SchedPolicy::Block;
    if (v == "cyclic")
        return SchedPolicy::Cyclic;
    if (v == "dynamic")
        return SchedPolicy::Dynamic;
    fatal("unknown schedule '%s' (expected block|cyclic|dynamic)", s);
}

const char *
schedName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::Block:
        return "block";
      case SchedPolicy::Cyclic:
        return "cyclic";
      case SchedPolicy::Dynamic:
        return "dynamic";
    }
    return "?";
}

Params
MachineConfig::params()
{
    Params p;
    p.define("procs", "16", "number of processors")
        .define("cache_kb", "64", "per-processor cache size in KB")
        .define("line_bytes", "16", "cache line size in bytes")
        .define("assoc", "1", "cache associativity (1 = direct-mapped)")
        .define("timetag_bits", "8", "TPI per-word timetag width")
        .define("scheme", "tpi", "coherence scheme: base|sc|tpi|hw")
        .define("sched", "block", "DOALL schedule: block|cyclic|dynamic")
        .define("base_miss", "100", "unloaded miss latency in cycles")
        .define("word_transfer", "12", "extra cycles per line word")
        .define("two_phase_reset", "128", "two-phase reset stall cycles")
        .define("barrier", "40", "barrier cost in cycles")
        .define("write_latency", "60", "write-through completion cycles")
        .define("dir_ptrs", "0", "0=full-map, else DirNB-i pointer count")
        .define("wbuf_cache", "false", "write buffer organized as a cache")
        .define("migration_rate", "0.0", "per-task migration probability")
        .define("seq_consistency", "false",
                "sequential instead of weak consistency")
        .define("shadow_check", "false",
                "shadow-epoch race detector: flag stale cache hits")
        .define("fastpath", "true",
                "epoch-stream fast path (false = interpreted oracle)")
        .define("network", "min",
                "interconnect topology: min|torus3d")
        .define("fault", "0",
                "fault injection: RATE[:SEED[:SITES]], 0 = off")
        .define("fault_timeout", "50",
                "cycles before a lost message is retransmitted")
        .define("fault_retries", "4",
                "retransmissions before a protocol abort")
        .define("watchdog_ops", "4194304",
                "ops without progress before a watchdog abort, 0 = off");
    return p;
}

MachineConfig
MachineConfig::fromParams(const Params &p)
{
    MachineConfig c;
    c.procs = static_cast<unsigned>(p.getUint("procs"));
    c.cacheBytes = p.getUint("cache_kb") * 1024;
    c.lineBytes = static_cast<unsigned>(p.getUint("line_bytes"));
    c.assoc = static_cast<unsigned>(p.getUint("assoc"));
    c.timetagBits = static_cast<unsigned>(p.getUint("timetag_bits"));
    c.scheme = parseScheme(p.getString("scheme"));
    c.sched = parseSched(p.getString("sched"));
    c.baseMissCycles = p.getUint("base_miss");
    c.wordTransferCycles = p.getUint("word_transfer");
    c.twoPhaseResetCycles = p.getUint("two_phase_reset");
    c.barrierCycles = p.getUint("barrier");
    c.writeLatencyCycles = p.getUint("write_latency");
    c.directoryPtrs = static_cast<unsigned>(p.getUint("dir_ptrs"));
    c.writeBufferAsCache = p.getBool("wbuf_cache");
    c.migrationRate = p.getDouble("migration_rate");
    c.sequentialConsistency = p.getBool("seq_consistency");
    c.shadowEpochCheck = p.getBool("shadow_check");
    c.fastPath = p.getBool("fastpath");
    c.topology = parseTopology(p.getString("network"));
    c.fault = fault::FaultPlan::parse(p.getString("fault"));
    c.faultAckTimeoutCycles = p.getUint("fault_timeout");
    c.faultMaxRetries = static_cast<unsigned>(p.getUint("fault_retries"));
    c.watchdogStallOps = p.getUint("watchdog_ops");
    c.validate();
    return c;
}

void
MachineConfig::validate() const
{
    if (procs == 0 || procs > 4096)
        fatal("procs must be in [1, 4096], got %d", procs);
    if (!isPowerOf2(lineBytes) || lineBytes < 4)
        fatal("line_bytes must be a power of two >= 4, got %d", lineBytes);
    if (!isPowerOf2(cacheBytes) || cacheBytes < lineBytes)
        fatal("cache size must be a power of two >= line size");
    if (assoc == 0 || lines() % assoc != 0)
        fatal("associativity %d does not divide %d lines", assoc, lines());
    if (timetagBits < 2 || timetagBits > 32)
        fatal("timetag_bits must be in [2, 32], got %d", timetagBits);
    if (migrationRate < 0.0 || migrationRate > 1.0)
        fatal("migration_rate must be in [0, 1]");
    if (fault.rate < 0.0 || fault.rate > 1.0)
        fatal("fault rate must be in [0, 1]");
    if (fault.enabled() && faultAckTimeoutCycles == 0)
        fatal("fault_timeout must be nonzero when faults are enabled");
}

std::string
MachineConfig::str() const
{
    return csprintf(
        "%s: %d procs, %dKB %d-way, %dB lines, %d-bit tags, sched=%s",
        schemeName(scheme), procs, cacheBytes / 1024, assoc, lineBytes,
        timetagBits, schedName(sched));
}

} // namespace hscd
