#include "mem/base_scheme.hh"

namespace hscd {
namespace mem {

BaseScheme::BaseScheme(const MachineConfig &cfg, MainMemory &memory,
                       net::Network &network, stats::StatGroup *parent)
    : CoherenceScheme(cfg, memory, network, parent)
{
    _wbuf.reserve(cfg.procs);
    for (unsigned p = 0; p < cfg.procs; ++p)
        _wbuf.emplace_back(cfg.writeBufferAsCache,
                           cfg.writeBufferCacheWords);
}

AccessResult
BaseScheme::access(const MemOp &op)
{
    AccessResult res;
    if (op.write) {
        ++_stats.writes;
        _mem.write(op.addr, op.stamp);
        Cycles extra = 0;
        if (!_wbuf[op.proc].noteWrite(op.addr)) {
            ++_stats.writePackets;
            ++_stats.writeWords;
            _net.addTraffic(1, 1);
            extra = reliableSend(op.proc, op.now, "write-through");
        }
        res.hit = false;
        res.stall = finishWrite(op.proc, op.now,
                                _cfg.writeLatencyCycles +
                                    _net.contentionDelay(1) + extra);
        return res;
    }

    ++_stats.reads;
    ++_stats.readMisses;
    _stats.classify(MissClass::Uncached);
    ++_stats.readPackets;
    ++_stats.readWords;
    _net.addTraffic(1, 1);
    res.hit = false;
    res.cls = MissClass::Uncached;
    res.stall = wordFetchLatency() +
                reliableSend(op.proc, op.now, "word fetch");
    res.observed = _mem.read(op.addr);
    _stats.missLatency.sample(double(res.stall));
    return res;
}

Cycles
BaseScheme::epochBoundary(EpochId new_epoch)
{
    for (WriteBuffer &wb : _wbuf)
        wb.drain();
    return CoherenceScheme::epochBoundary(new_epoch);
}

void
BaseScheme::migrationDrain(ProcId p)
{
    _wbuf[p].drain();
}

} // namespace mem
} // namespace hscd
