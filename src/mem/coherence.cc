#include "mem/coherence.hh"

#include "common/log.hh"
#include "mem/base_scheme.hh"
#include "mem/directory_scheme.hh"
#include "mem/sc_scheme.hh"
#include "mem/tpi_scheme.hh"
#include "mem/vc_scheme.hh"

namespace hscd {
namespace mem {

const char *
missClassName(MissClass c)
{
    switch (c) {
      case MissClass::None:
        return "hit";
      case MissClass::Cold:
        return "cold";
      case MissClass::Replacement:
        return "replacement";
      case MissClass::TrueShare:
        return "true-share";
      case MissClass::FalseShare:
        return "false-share";
      case MissClass::Conservative:
        return "conservative";
      case MissClass::TagReset:
        return "tag-reset";
      case MissClass::Uncached:
        return "uncached";
    }
    return "?";
}

SchemeStats::SchemeStats(stats::StatGroup *parent)
    : group("scheme", parent),
      reads(&group, "reads", "shared-data read references"),
      writes(&group, "writes", "shared-data write references"),
      readHits(&group, "read_hits", "read references served by the cache"),
      readMisses(&group, "read_misses", "read references going remote"),
      writeMisses(&group, "write_misses", "write-allocate line fetches"),
      missCold(&group, "miss_cold", "first-touch misses"),
      missReplacement(&group, "miss_replacement",
                      "capacity/conflict re-fetches"),
      missTrueShare(&group, "miss_true_share",
                    "necessary coherence misses"),
      missFalseShare(&group, "miss_false_share",
                     "HW: invalidated by writes to other words"),
      missConservative(&group, "miss_conservative",
                       "TPI/SC: refetch of actually-fresh data"),
      missTagReset(&group, "miss_tag_reset",
                   "TPI: invalidated by timetag wrap"),
      missUncached(&group, "miss_uncached", "BASE: uncached shared data"),
      timeReads(&group, "time_reads", "reads executed as Time-Read"),
      timeReadHits(&group, "time_read_hits",
                   "Time-Reads satisfied by the cache"),
      bypassReads(&group, "bypass_reads", "reads forced to memory"),
      readPackets(&group, "read_packets", "network packets for reads"),
      readWords(&group, "read_words", "data words fetched"),
      writePackets(&group, "write_packets", "network packets for writes"),
      writeWords(&group, "write_words", "data words written through"),
      coherencePackets(&group, "coherence_packets",
                       "invalidations, acks, forwards"),
      writebackPackets(&group, "writeback_packets", "write-back packets"),
      writebackWords(&group, "writeback_words", "write-back data words"),
      invalidationsSent(&group, "invalidations",
                        "directory invalidation messages"),
      tagResets(&group, "tag_resets", "two-phase reset events"),
      missLatency(&group, "miss_latency", "average read miss latency")
{
}

void
SchemeStats::classify(MissClass c)
{
    switch (c) {
      case MissClass::None:
        break;
      case MissClass::Cold:
        ++missCold;
        break;
      case MissClass::Replacement:
        ++missReplacement;
        break;
      case MissClass::TrueShare:
        ++missTrueShare;
        break;
      case MissClass::FalseShare:
        ++missFalseShare;
        break;
      case MissClass::Conservative:
        ++missConservative;
        break;
      case MissClass::TagReset:
        ++missTagReset;
        break;
      case MissClass::Uncached:
        ++missUncached;
        break;
    }
}

CoherenceScheme::CoherenceScheme(const MachineConfig &cfg,
                                 MainMemory &memory, net::Network &network,
                                 stats::StatGroup *parent)
    : _cfg(cfg), _mem(memory), _net(network), _stats(parent),
      _writeDone(cfg.procs, 0)
{
}

Cycles
CoherenceScheme::epochBoundary(EpochId new_epoch)
{
    _epoch = new_epoch;
    return 0;
}

Cycles
CoherenceScheme::lineFetchLatency() const
{
    return _cfg.baseMissCycles +
           Cycles(_cfg.wordsPerLine() - 1) * _cfg.wordTransferCycles +
           _net.contentionDelay(2);
}

Cycles
CoherenceScheme::wordFetchLatency() const
{
    return _cfg.baseMissCycles + _net.contentionDelay(2);
}

void
CoherenceScheme::noteWrite(ProcId p, Cycles now, Cycles latency)
{
    Cycles done = now + latency;
    if (done > _writeDone[p])
        _writeDone[p] = done;
}

Cycles
CoherenceScheme::finishWrite(ProcId p, Cycles now, Cycles latency)
{
    if (_cfg.sequentialConsistency)
        return latency; // the processor waits for the write itself
    noteWrite(p, now, latency);
    return 1;
}

std::string
CoherenceScheme::postMortem() const
{
    std::string out = csprintf("scheme %s epoch %d\n",
                               schemeName(_cfg.scheme), _epoch);
    for (ProcId p = 0; p < _cfg.procs; p++) {
        if (_writeDone[p])
            out += csprintf("  proc %d: writes drain at cycle %d\n", p,
                            _writeDone[p]);
    }
    return out;
}

Cycles
CoherenceScheme::reliableSend(ProcId p, Cycles now, const char *what)
{
    if (!_fault)
        return 0;
    net::MsgFate fate = _net.deliver();
    Cycles extra = 0;
    unsigned attempt = 0;
    while (fate.copies == 0) {
        if (attempt >= _cfg.faultMaxRetries) {
            fault::AbortInfo info;
            info.kind = fault::AbortKind::Protocol;
            info.reason = csprintf(
                "%s from proc %d lost %d times; retry budget exhausted",
                what, p, attempt + 1);
            info.cycle = now + extra;
            info.epoch = _epoch;
            info.proc = p;
            info.snapshot = postMortem();
            throw fault::RunAbort(std::move(info));
        }
        // Wait out the ack timeout, doubling each attempt, and resend.
        extra += _cfg.faultAckTimeoutCycles << attempt;
        ++attempt;
        _fault->noteRetry();
        ++_stats.coherencePackets;
        _net.addTraffic(1, 0);
        fate = _net.deliver();
    }
    if (attempt > 0)
        _fault->noteRecovered();
    if (fate.copies > 1) {
        // Duplicate delivery: the protocol absorbs the second copy (all
        // messages are idempotent) but it still loaded the network.
        _stats.coherencePackets += fate.copies - 1;
        _net.addTraffic(fate.copies - 1, 0);
    }
    return extra + fate.extraDelay;
}

Counter
CoherenceScheme::totalMisses() const
{
    return _stats.readMisses.value() + _stats.writeMisses.value();
}

double
CoherenceScheme::readMissRate() const
{
    Counter r = _stats.reads.value();
    return r ? double(_stats.readMisses.value()) / double(r) : 0.0;
}

std::unique_ptr<CoherenceScheme>
makeScheme(const MachineConfig &cfg, MainMemory &memory,
           net::Network &network, stats::StatGroup *parent)
{
    switch (cfg.scheme) {
      case SchemeKind::Base:
        return std::make_unique<BaseScheme>(cfg, memory, network, parent);
      case SchemeKind::SC:
        return std::make_unique<ScScheme>(cfg, memory, network, parent);
      case SchemeKind::TPI:
        return std::make_unique<TpiScheme>(cfg, memory, network, parent);
      case SchemeKind::HW:
        return std::make_unique<DirectoryScheme>(cfg, memory, network,
                                                 parent);
      case SchemeKind::VC:
        return std::make_unique<VcScheme>(cfg, memory, network, parent);
    }
    panic("unreachable scheme kind");
}

} // namespace mem
} // namespace hscd
