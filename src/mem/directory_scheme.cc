#include "mem/directory_scheme.hh"

#include <bit>

#include "common/log.hh"

namespace hscd {
namespace mem {

DirectoryScheme::DirectoryScheme(const MachineConfig &cfg,
                                 MainMemory &memory, net::Network &network,
                                 stats::StatGroup *parent)
    : CoherenceScheme(cfg, memory, network, parent),
      _dir(memory.words() * 4 / cfg.lineBytes + 1),
      _history(cfg.procs, Addr(memory.words()) * 4, cfg.lineBytes)
{
    hscd_assert(cfg.procs <= 64,
                "full-map presence bits limited to 64 processors here");
    _caches.reserve(cfg.procs);
    for (unsigned p = 0; p < cfg.procs; ++p)
        _caches.emplace_back(cfg, Addr(memory.words()) * 4);
}

DirEntry &
DirectoryScheme::entry(Addr addr)
{
    hscd_dassert(lineIndex(addr) < _dir.size(),
                 "directory entry for %d beyond %d lines", addr,
                 _dir.size());
    return _dir[lineIndex(addr)];
}

const DirEntry &
DirectoryScheme::dirEntry(Addr addr) const
{
    hscd_dassert(lineIndex(addr) < _dir.size(),
                 "directory entry for %d beyond %d lines", addr,
                 _dir.size());
    return _dir[lineIndex(addr)];
}

void
DirectoryScheme::writeBack(ProcId proc, Cache::Line &line)
{
    Cache &cache = _caches[proc];
    for (unsigned w = 0; w < cache.wordsPerLine(); ++w)
        _mem.write(line.base + Addr(w) * 4, line.stamps[w]);
    line.meta.dirty = false;
    ++_stats.writebackPackets;
    _stats.writebackWords += cache.wordsPerLine();
    _net.addTraffic(1, cache.wordsPerLine());
}

unsigned
DirectoryScheme::invalidateSharers(DirEntry &e, Addr base, ProcId except,
                                   unsigned written_word)
{
    unsigned count = 0;
    std::uint64_t bits = e.sharers;
    for (ProcId q = 0; bits; ++q, bits >>= 1) {
        if (!(bits & 1) || q == except)
            continue;
        Cache::Line *line = _caches[q].lookup(base, 0);
        if (!line && _fault) {
            // Presence bit without a cached line: on a perfect machine
            // this is a protocol bug, under fault injection it is the
            // signature of a flipped directory bit. The phantom sharer
            // NACKs the invalidation and the directory repairs itself.
            e.sharers &= ~(std::uint64_t{1} << q);
            _fault->noteRecovered();
            _stats.coherencePackets += 2; // invalidation + NACK
            _net.addTraffic(2, 0);
            continue;
        }
        hscd_assert(line, "directory presence bit without a cached line");
        if (line->meta.dirty)
            writeBack(q, *line);
        const bool used =
            line->meta.accessedMask & (std::uint64_t{1} << written_word);
        _history.record(q, base,
                        used ? LineEvent::InvalidatedTrue
                             : LineEvent::InvalidatedFalse);
        line->valid = false;
        ++count;
    }
    e.sharers &= std::uint64_t{1} << except;
    _stats.invalidationsSent += count;
    _stats.coherencePackets += 2 * count; // invalidation + ack
    _net.addTraffic(2 * count, 0);
    return count;
}

void
DirectoryScheme::downgradeOwner(DirEntry &e, Addr base)
{
    Cache::Line *line = _caches[e.owner].lookup(base, 0);
    hscd_assert(line && line->meta.dirty, "stale directory owner");
    writeBack(e.owner, *line);
    e.state = DirEntry::State::Shared;
    e.owner = invalidProc;
    _stats.coherencePackets += 2; // forward request + response
    _net.addTraffic(2, 0);
}

void
DirectoryScheme::maybeCorruptEntry(DirEntry &e)
{
    if (!_fault || !_fault->fire(fault::Site::DirPresenceFlip))
        return;
    // Flip one presence bit. A spuriously-set bit is repaired by the
    // NACK path in invalidateSharers; a cleared bit leaves a sharer the
    // directory forgot, whose next stale hit the soundness oracles must
    // flag (this is the "silently wrong" hazard hscd_faultcheck hunts).
    e.sharers ^=
        std::uint64_t{1} << (_fault->draw(fault::Site::DirPresenceFlip) %
                             _cfg.procs);
}

Cycles
DirectoryScheme::overflowPenalty(DirEntry &e)
{
    if (_cfg.directoryPtrs == 0)
        return 0;
    unsigned sharers = static_cast<unsigned>(std::popcount(e.sharers));
    if (sharers <= _cfg.directoryPtrs) {
        e.overflowed = false;
        return 0;
    }
    // Software handler services the pointer overflow (LimitLess style).
    e.overflowed = true;
    ++_stats.coherencePackets;
    _net.addTraffic(1, 0);
    return _cfg.directoryOverflowCycles;
}

DirectoryScheme::Cache::Line &
DirectoryScheme::fill(ProcId proc, Addr addr, Cycles now)
{
    Cache &cache = _caches[proc];
    Addr base = cache.lineAddr(addr);
    Cache::Line &line = cache.victim(addr, now);
    if (line.valid) {
        // Evict: tell the directory, write back if we own it.
        DirEntry &v = entry(line.base);
        if (line.meta.dirty) {
            writeBack(proc, line);
            v.state = DirEntry::State::Uncached;
            v.owner = invalidProc;
            v.sharers = 0;
        } else {
            v.sharers &= ~(std::uint64_t{1} << proc);
            if (v.sharers == 0)
                v.state = DirEntry::State::Uncached;
        }
        _history.record(proc, line.base, LineEvent::Evicted);
    }
    line.valid = true;
    line.base = base;
    line.lastUse = now;
    line.meta.dirty = false;
    line.meta.accessedMask = 0;
    for (unsigned w = 0; w < cache.wordsPerLine(); ++w)
        line.stamps[w] = _mem.read(base + Addr(w) * 4);
    _history.record(proc, base, LineEvent::Cached);
    ++_stats.readPackets;
    _stats.readWords += cache.wordsPerLine();
    _net.addTraffic(1, cache.wordsPerLine());
    return line;
}

AccessResult
DirectoryScheme::access(const MemOp &op)
{
    AccessResult res;
    Cache &cache = _caches[op.proc];
    unsigned widx = cache.wordIndex(op.addr);
    Addr base = cache.lineAddr(op.addr);
    const std::uint64_t self = std::uint64_t{1} << op.proc;

    if (!op.write) {
        ++_stats.reads;
        if (Cache::Line *line = cache.lookup(op.addr, op.now)) {
            line->meta.accessedMask |= std::uint64_t{1} << widx;
            ++_stats.readHits;
            res.hit = true;
            res.stall = _cfg.hitCycles;
            res.observed = line->stamps[widx];
            return res;
        }

        DirEntry &e = entry(base);
        maybeCorruptEntry(e);
        Cycles latency = lineFetchLatency();
        latency += reliableSend(op.proc, op.now, "read line request");
        if (e.state == DirEntry::State::Modified) {
            hscd_assert(e.owner != op.proc,
                        "modified owner missed its own line");
            downgradeOwner(e, base);
            latency += _cfg.dirtyMissExtraCycles;
        }
        MissClass cls = _history.classifyAbsent(op.proc, op.addr);
        Cache::Line &line = fill(op.proc, op.addr, op.now);
        line.meta.accessedMask = std::uint64_t{1} << widx;
        e.sharers |= self;
        e.state = DirEntry::State::Shared;
        latency += overflowPenalty(e);

        ++_stats.readMisses;
        _stats.classify(cls);
        res.hit = false;
        res.cls = cls;
        res.stall = latency;
        res.observed = line.stamps[widx];
        _stats.missLatency.sample(double(latency));
        return res;
    }

    ++_stats.writes;
    Cache::Line *line = cache.lookup(op.addr, op.now);
    DirEntry &e = entry(base);

    if (line && line->meta.dirty) {
        // Write hit in M: cheapest path.
        line->stamps[widx] = op.stamp;
        line->meta.accessedMask |= std::uint64_t{1} << widx;
        res.hit = true;
        res.stall = _cfg.hitCycles;
        return res;
    }

    if (line) {
        // Write hit in S: upgrade needs invalidations (weak consistency:
        // buffered, the processor does not stall).
        maybeCorruptEntry(e);
        Cycles extra = reliableSend(op.proc, op.now, "upgrade request");
        unsigned n = invalidateSharers(e, base, op.proc, widx);
        e.state = DirEntry::State::Modified;
        e.owner = op.proc;
        e.sharers = self;
        line->meta.dirty = true;
        line->stamps[widx] = op.stamp;
        line->meta.accessedMask |= std::uint64_t{1} << widx;
        res.hit = true;
        res.stall = finishWrite(op.proc, op.now,
                                _cfg.writeLatencyCycles +
                                    _net.contentionDelay(2) + Cycles(n) +
                                    extra);
        return res;
    }

    // Write miss: fetch exclusive.
    maybeCorruptEntry(e);
    Cycles latency = lineFetchLatency();
    latency += reliableSend(op.proc, op.now, "exclusive line request");
    if (e.state == DirEntry::State::Modified) {
        hscd_assert(e.owner != op.proc,
                    "modified owner missed its own line");
        Cache::Line *owned = _caches[e.owner].lookup(base, 0);
        hscd_assert(owned && owned->meta.dirty, "stale directory owner");
        writeBack(e.owner, *owned);
        const bool used =
            owned->meta.accessedMask & (std::uint64_t{1} << widx);
        _history.record(e.owner, base,
                        used ? LineEvent::InvalidatedTrue
                             : LineEvent::InvalidatedFalse);
        owned->valid = false;
        e.sharers = 0;
        _stats.coherencePackets += 2;
        ++_stats.invalidationsSent;
        _net.addTraffic(2, 0);
        latency += _cfg.dirtyMissExtraCycles;
    } else if (e.state == DirEntry::State::Shared) {
        invalidateSharers(e, base, op.proc, widx);
        e.sharers = 0;
    }

    ++_stats.writeMisses;
    Cache::Line &filled = fill(op.proc, op.addr, op.now);
    filled.meta.dirty = true;
    filled.stamps[widx] = op.stamp;
    filled.meta.accessedMask = std::uint64_t{1} << widx;
    e.state = DirEntry::State::Modified;
    e.owner = op.proc;
    e.sharers = self;
    latency += overflowPenalty(e);

    res.hit = false;
    res.stall = finishWrite(op.proc, op.now, latency);
    return res;
}

std::string
DirectoryScheme::postMortem() const
{
    std::string out = CoherenceScheme::postMortem();
    unsigned shown = 0;
    for (std::size_t i = 0; i < _dir.size() && shown < 32; ++i) {
        const DirEntry &e = _dir[i];
        if (e.state == DirEntry::State::Uncached)
            continue;
        out += csprintf(
            "  line %#x: %s sharers=%#x owner=%d\n", i * _cfg.lineBytes,
            e.state == DirEntry::State::Modified ? "M" : "S", e.sharers,
            e.owner == invalidProc ? -1 : int(e.owner));
        ++shown;
    }
    return out;
}

} // namespace mem
} // namespace hscd
