#include "mem/storage_model.hh"

#include "common/strutil.hh"

namespace hscd {
namespace mem {

StorageOverhead
fullMapOverhead(const StorageParams &p)
{
    StorageOverhead o;
    o.cacheSramBits = 2.0 * double(p.cacheBlocks) * double(p.procs);
    o.memoryDramBits = double(p.procs + 2) * double(p.memBlocks) *
                       double(p.procs);
    return o;
}

StorageOverhead
limitlessOverhead(const StorageParams &p)
{
    StorageOverhead o;
    o.cacheSramBits = 2.0 * double(p.cacheBlocks) * double(p.procs);
    o.memoryDramBits = double(p.limitlessPtrs + 2) * double(p.memBlocks) *
                       double(p.procs);
    return o;
}

StorageOverhead
tpiOverhead(const StorageParams &p)
{
    StorageOverhead o;
    o.cacheSramBits = double(p.timetagBits) * double(p.wordsPerBlock) *
                      double(p.cacheBlocks) * double(p.procs);
    o.memoryDramBits = 0;
    return o;
}

std::string
formatBits(double bits)
{
    double bytes = bits / 8.0;
    const char *unit = "B";
    if (bytes >= 1024.0 * 1024.0 * 1024.0) {
        bytes /= 1024.0 * 1024.0 * 1024.0;
        unit = "GB";
    } else if (bytes >= 1024.0 * 1024.0) {
        bytes /= 1024.0 * 1024.0;
        unit = "MB";
    } else if (bytes >= 1024.0) {
        bytes /= 1024.0;
        unit = "KB";
    }
    return csprintf("%.1f %s", bytes, unit);
}

} // namespace mem
} // namespace hscd
