/**
 * @file
 * VC: the version-control scheme of Cheong and Veidenbaum [14], the
 * HSCD predecessor the paper's related work (and Lilja's survey [26])
 * compares against directories.
 *
 * Coherence is tracked per shared VARIABLE (array): every processor
 * keeps a current version number CVN(X) per array, advanced identically
 * at each epoch boundary where X was written; every cache word stores
 * the version it was born under (BVN). Semantics:
 *
 *  - read fill:   word.bvn := CVN(X)
 *  - write:       word.bvn := CVN(X) + 1  (the version being produced;
 *                 the writer keeps its copy across the next bump)
 *  - read:        hit iff the word is valid and bvn >= CVN(X)
 *  - boundary:    CVN(X)++ for every array written in the ended epoch
 *
 * No per-reference distance operand is needed, but invalidation is
 * per-variable: one write anywhere in an array ages every processor's
 * copies of the whole array - precisely the coarseness TPI's per-word
 * timetags remove. Lock-protected data still uses the compiler's bypass
 * marks, and lock-/sync-ordered writes are born at CVN (not CVN+1) so a
 * later lock owner's update cannot hide behind the writer's copy.
 */

#ifndef HSCD_MEM_VC_SCHEME_HH
#define HSCD_MEM_VC_SCHEME_HH

#include <set>
#include <vector>

#include "mem/cache.hh"
#include "mem/coherence.hh"
#include "mem/line_history.hh"
#include "mem/write_buffer.hh"

namespace hscd {
namespace mem {

/** Per-word VC state. */
struct VcWord
{
    std::uint64_t bvn = 0;
    bool valid = false;
};

/** Per-line VC state: the owning array (lines never span arrays). */
struct VcLine
{
    std::uint32_t arrayId = static_cast<std::uint32_t>(-1);
};

class VcScheme final : public CoherenceScheme
{
  public:
    VcScheme(const MachineConfig &cfg, MainMemory &memory,
             net::Network &network, stats::StatGroup *parent);

    AccessResult access(const MemOp &op) override;
    Cycles epochBoundary(EpochId new_epoch) override;
    void migrationDrain(ProcId p) override;
    void flushCache(ProcId p) override;

    /** Current version of @p array (for tests). */
    std::uint64_t cvn(std::uint32_t array) const;

  private:
    using Cache = CacheArray<VcWord, VcLine>;

    Cache::Line &fill(ProcId proc, const MemOp &op);
    AccessResult miss(const MemOp &op, MissClass cls, unsigned widx);
    std::uint64_t &cvnSlot(std::uint32_t array);

    std::vector<Cache> _caches;
    std::vector<WriteBuffer> _wbuf;
    LineHistory _history;
    /** CVN table, grown on demand (identical on every processor). */
    mutable std::vector<std::uint64_t> _cvn;
    /** Arrays written during the current epoch. */
    std::set<std::uint32_t> _writtenArrays;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_VC_SCHEME_HH
