/**
 * @file
 * Write buffer models for the write-through schemes.
 *
 * Plain mode is an infinite FIFO: every write produces a through packet.
 * Cache mode organizes the buffer as a small direct-mapped cache of
 * recently written words (as in the DEC Alpha 21164 [15]); a write that
 * hits a buffered-and-not-yet-drained word is coalesced and produces no
 * new network traffic, which is the redundant-write elimination of Chen
 * and Veidenbaum [9, 10]. The buffer drains at epoch boundaries.
 */

#ifndef HSCD_MEM_WRITE_BUFFER_HH
#define HSCD_MEM_WRITE_BUFFER_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace hscd {
namespace mem {

class WriteBuffer
{
  public:
    WriteBuffer(bool as_cache, unsigned slots)
        : _asCache(as_cache), _tags(as_cache ? slots : 0, 0),
          _valid(as_cache ? slots : 0, false)
    {}

    /**
     * Record a write of @p addr. Returns true when the write coalesces
     * with a buffered one (no new packet needed).
     */
    bool
    noteWrite(Addr addr)
    {
        if (!_asCache)
            return false;
        std::size_t slot = (addr / 4) % _tags.size();
        if (_valid[slot] && _tags[slot] == addr)
            return true;
        _tags[slot] = addr;
        _valid[slot] = true;
        return false;
    }

    /** Epoch boundary (or migration): everything must go out. */
    void
    drain()
    {
        std::fill(_valid.begin(), _valid.end(), false);
    }

  private:
    bool _asCache;
    std::vector<Addr> _tags;
    std::vector<bool> _valid;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_WRITE_BUFFER_HH
