/**
 * @file
 * Per-processor, per-memory-line history used to classify misses
 * (cold / replacement / true vs. false sharing / tag reset).
 */

#ifndef HSCD_MEM_LINE_HISTORY_HH
#define HSCD_MEM_LINE_HISTORY_HH

#include <vector>

#include "common/types.hh"
#include "mem/coherence.hh"

namespace hscd {
namespace mem {

enum class LineEvent : std::uint8_t
{
    NeverCached,
    Cached,
    Evicted,
    InvalidatedTrue,   ///< invalidating write hit a word we had used
    InvalidatedFalse,  ///< invalidating write hit a word we had not used
    InvalidatedTag,    ///< TPI two-phase reset victim
};

class LineHistory
{
  public:
    LineHistory(unsigned procs, Addr data_bytes, unsigned line_bytes)
        : _lineBytes(line_bytes),
          _state(procs,
                 std::vector<LineEvent>(data_bytes / line_bytes + 1,
                                        LineEvent::NeverCached))
    {}

    LineEvent
    state(ProcId p, Addr addr) const
    {
        return _state[p][index(addr)];
    }

    void
    record(ProcId p, Addr addr, LineEvent e)
    {
        _state[p][index(addr)] = e;
    }

    /** Classify a miss that found no line in the cache. */
    MissClass
    classifyAbsent(ProcId p, Addr addr) const
    {
        switch (state(p, addr)) {
          case LineEvent::NeverCached:
            return MissClass::Cold;
          case LineEvent::Evicted:
            return MissClass::Replacement;
          case LineEvent::InvalidatedTrue:
            return MissClass::TrueShare;
          case LineEvent::InvalidatedFalse:
            return MissClass::FalseShare;
          case LineEvent::InvalidatedTag:
            return MissClass::TagReset;
          case LineEvent::Cached:
            // The frame was reused without an eviction record (should not
            // happen, but classify conservatively as replacement).
            return MissClass::Replacement;
        }
        return MissClass::Cold;
    }

  private:
    std::size_t index(Addr addr) const { return addr / _lineBytes; }

    unsigned _lineBytes;
    std::vector<std::vector<LineEvent>> _state;
};

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_LINE_HISTORY_HH
