/**
 * @file
 * Analytic storage-overhead model (the paper's Figure 5).
 *
 * Parameters follow the paper: P processors, L words per memory block,
 * C cache blocks per node, M memory blocks per node, i LimitLess
 * pointers, and the TPI timetag width (8 bits per word by default).
 *
 *   Full-map directory [8]:  cache 2*C*P bits (SRAM),
 *                            memory (P+2)*M*P bits (DRAM)
 *   LimitLess DirNB-i [2]:   cache 2*C*P bits (SRAM),
 *                            memory (i+2)*M*P bits (DRAM)
 *   TPI (this paper):        cache t*L*C*P bits (SRAM), no DRAM overhead
 *
 * The TPI overhead is proportional to the cache size only, which is the
 * paper's core cost argument.
 */

#ifndef HSCD_MEM_STORAGE_MODEL_HH
#define HSCD_MEM_STORAGE_MODEL_HH

#include <cstdint>
#include <string>

namespace hscd {
namespace mem {

struct StorageParams
{
    std::uint64_t procs = 1024;        ///< P
    std::uint64_t wordsPerBlock = 4;   ///< L
    std::uint64_t cacheBlocks = 16384; ///< C (256 KB node cache, 16B blocks)
    std::uint64_t memBlocks = 524288;  ///< M (8 MB node memory, 16B blocks)
    unsigned limitlessPtrs = 10;       ///< i
    unsigned timetagBits = 8;          ///< t
};

struct StorageOverhead
{
    double cacheSramBits = 0;
    double memoryDramBits = 0;

    double totalBits() const { return cacheSramBits + memoryDramBits; }
};

StorageOverhead fullMapOverhead(const StorageParams &p);
StorageOverhead limitlessOverhead(const StorageParams &p);
StorageOverhead tpiOverhead(const StorageParams &p);

/** Render a bit count as "4.0 MB" / "64.5 GB". */
std::string formatBits(double bits);

} // namespace mem
} // namespace hscd

#endif // HSCD_MEM_STORAGE_MODEL_HH
