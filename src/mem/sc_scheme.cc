#include "mem/sc_scheme.hh"

namespace hscd {
namespace mem {

using compiler::MarkKind;

ScScheme::ScScheme(const MachineConfig &cfg, MainMemory &memory,
                   net::Network &network, stats::StatGroup *parent)
    : CoherenceScheme(cfg, memory, network, parent),
      _history(cfg.procs, Addr(memory.words()) * 4, cfg.lineBytes)
{
    _caches.reserve(cfg.procs);
    _wbuf.reserve(cfg.procs);
    for (unsigned p = 0; p < cfg.procs; ++p) {
        _caches.emplace_back(cfg, Addr(memory.words()) * 4);
        _wbuf.emplace_back(cfg.writeBufferAsCache,
                           cfg.writeBufferCacheWords);
    }
}

ScScheme::Cache::Line &
ScScheme::fill(ProcId proc, Addr addr, Cycles now)
{
    Cache &cache = _caches[proc];
    Addr base = cache.lineAddr(addr);
    Cache::Line &line = cache.victim(addr, now);
    if (line.valid)
        _history.record(proc, line.base, LineEvent::Evicted);
    line.valid = true;
    line.base = base;
    line.lastUse = now;
    for (unsigned w = 0; w < cache.wordsPerLine(); ++w)
        line.stamps[w] = _mem.read(base + Addr(w) * 4);
    _history.record(proc, base, LineEvent::Cached);
    ++_stats.readPackets;
    _stats.readWords += cache.wordsPerLine();
    _net.addTraffic(1, cache.wordsPerLine());
    return line;
}

AccessResult
ScScheme::access(const MemOp &op)
{
    AccessResult res;
    Cache &cache = _caches[op.proc];
    unsigned widx = cache.wordIndex(op.addr);

    if (op.write) {
        ++_stats.writes;
        Cache::Line *line = cache.lookup(op.addr, op.now);
        if (!line) {
            // Write-allocate: bring the line in (off the critical path).
            ++_stats.writeMisses;
            line = &fill(op.proc, op.addr, op.now);
        }
        line->stamps[widx] = op.stamp;
        _mem.write(op.addr, op.stamp);
        Cycles extra = 0;
        if (!_wbuf[op.proc].noteWrite(op.addr)) {
            ++_stats.writePackets;
            ++_stats.writeWords;
            _net.addTraffic(1, 1);
            extra = reliableSend(op.proc, op.now, "write-through");
        }
        res.stall = finishWrite(op.proc, op.now,
                                _cfg.writeLatencyCycles +
                                    _net.contentionDelay(1) + extra);
        return res;
    }

    ++_stats.reads;
    const bool marked = op.mark != MarkKind::Normal;
    if (marked) {
        ++_stats.timeReads; // SC executes the same marked set
        Cache::Line *line = cache.lookup(op.addr, op.now);
        MissClass cls;
        if (line) {
            cls = line->stamps[widx] == _mem.read(op.addr)
                      ? MissClass::Conservative
                      : MissClass::TrueShare;
            line->valid = false; // block invalidate
        } else {
            cls = _history.classifyAbsent(op.proc, op.addr);
        }
        Cache::Line &fresh = fill(op.proc, op.addr, op.now);
        ++_stats.readMisses;
        _stats.classify(cls);
        res.hit = false;
        res.cls = cls;
        res.stall = lineFetchLatency() +
                    reliableSend(op.proc, op.now, "marked refetch");
        res.observed = fresh.stamps[widx];
        _stats.missLatency.sample(double(res.stall));
        return res;
    }

    Cache::Line *hitLine = cache.lookup(op.addr, op.now);
    if (hitLine && _fault && _fault->fire(fault::Site::MemTagFlip)) {
        // SC keeps no per-word tags, so the stored-bit flip lands on the
        // line valid bit: the copy is lost and refetched. Always
        // recoverable - normal reads were compiler-proven fresh, and the
        // refetch can only observe newer data.
        hitLine->valid = false;
        hitLine = nullptr;
        _fault->noteRecovered();
    }
    if (hitLine) {
        ++_stats.readHits;
        res.hit = true;
        res.stall = _cfg.hitCycles;
        res.observed = hitLine->stamps[widx];
        return res;
    }

    MissClass cls = _history.classifyAbsent(op.proc, op.addr);
    Cache::Line &line = fill(op.proc, op.addr, op.now);
    ++_stats.readMisses;
    _stats.classify(cls);
    res.hit = false;
    res.cls = cls;
    res.stall = lineFetchLatency() +
                reliableSend(op.proc, op.now, "line fetch");
    res.observed = line.stamps[widx];
    _stats.missLatency.sample(double(res.stall));
    return res;
}

Cycles
ScScheme::epochBoundary(EpochId new_epoch)
{
    for (WriteBuffer &wb : _wbuf)
        wb.drain();
    return CoherenceScheme::epochBoundary(new_epoch);
}

void
ScScheme::migrationDrain(ProcId p)
{
    _wbuf[p].drain();
}

void
ScScheme::flushCache(ProcId p)
{
    _caches[p].forEachLine([&](Cache::Line &line) {
        _history.record(p, line.base, LineEvent::Evicted);
        line.valid = false;
    });
}

} // namespace mem
} // namespace hscd
